// Tests for vote/timeout aggregation: thresholds, dedup, equivocation
// evidence, TC high-QC tracking, garbage collection.

#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "quorum/vote_aggregator.h"

namespace bamboo {
namespace {

types::VoteMsg vote(types::NodeId voter, types::View view,
                    const crypto::Digest& hash, types::Height height = 1) {
  types::VoteMsg v;
  v.view = view;
  v.height = height;
  v.block_hash = hash;
  v.sig.signer = voter;
  return v;
}

types::TimeoutMsg timeout(types::NodeId sender, types::View view,
                          types::View qc_view) {
  types::TimeoutMsg t;
  t.view = view;
  t.high_qc.view = qc_view;
  t.sig.signer = sender;
  return t;
}

TEST(VoteAggregator, QcAtQuorum) {
  quorum::VoteAggregator agg(4);  // quorum 3
  const auto h = crypto::Sha256::hash("b");
  EXPECT_FALSE(agg.add(vote(0, 1, h)).has_value());
  EXPECT_FALSE(agg.add(vote(1, 1, h)).has_value());
  const auto qc = agg.add(vote(2, 1, h));
  ASSERT_TRUE(qc.has_value());
  EXPECT_EQ(qc->view, 1u);
  EXPECT_EQ(qc->block_hash, h);
  EXPECT_EQ(qc->sigs.size(), 3u);
}

TEST(VoteAggregator, QcFormedOnlyOnce) {
  quorum::VoteAggregator agg(4);
  const auto h = crypto::Sha256::hash("b");
  agg.add(vote(0, 1, h));
  agg.add(vote(1, 1, h));
  ASSERT_TRUE(agg.add(vote(2, 1, h)).has_value());
  EXPECT_FALSE(agg.add(vote(3, 1, h)).has_value());  // late vote: no new QC
}

TEST(VoteAggregator, DuplicateVotesIgnored) {
  quorum::VoteAggregator agg(4);
  const auto h = crypto::Sha256::hash("b");
  agg.add(vote(0, 1, h));
  agg.add(vote(0, 1, h));
  agg.add(vote(0, 1, h));
  EXPECT_EQ(agg.duplicate_count(), 2u);
  EXPECT_FALSE(agg.add(vote(1, 1, h)).has_value());  // still only 2 voters
}

TEST(VoteAggregator, EquivocationDetectedAndNotCounted) {
  quorum::VoteAggregator agg(4);
  const auto h1 = crypto::Sha256::hash("b1");
  const auto h2 = crypto::Sha256::hash("b2");
  agg.add(vote(0, 1, h1));
  agg.add(vote(0, 1, h2));  // same voter, same view, different block
  EXPECT_EQ(agg.equivocation_count(), 1u);
  // The equivocating vote must not count toward the other block's quorum.
  agg.add(vote(1, 1, h2));
  EXPECT_FALSE(agg.add(vote(2, 1, h2)).has_value());
  ASSERT_TRUE(agg.add(vote(3, 1, h2)).has_value());
}

TEST(VoteAggregator, SameVoterDifferentViewsOk) {
  quorum::VoteAggregator agg(4);
  const auto h1 = crypto::Sha256::hash("b1");
  const auto h2 = crypto::Sha256::hash("b2");
  agg.add(vote(0, 1, h1));
  agg.add(vote(0, 2, h2));
  EXPECT_EQ(agg.equivocation_count(), 0u);
}

TEST(VoteAggregator, SeparateBucketsPerBlock) {
  quorum::VoteAggregator agg(7);  // quorum 5
  const auto h1 = crypto::Sha256::hash("b1");
  const auto h2 = crypto::Sha256::hash("b2");
  for (types::NodeId n = 0; n < 4; ++n) agg.add(vote(n, 3, h1));
  for (types::NodeId n = 4; n < 7; ++n) agg.add(vote(n, 3, h2));
  // 4 + 3 votes, but no single block reached 5.
  EXPECT_EQ(agg.quorum(), 5u);
}

TEST(VoteAggregator, GcDropsOldViews) {
  quorum::VoteAggregator agg(4);
  const auto h = crypto::Sha256::hash("b");
  agg.add(vote(0, 1, h));
  agg.add(vote(1, 1, h));
  agg.gc_below(2);
  // Votes were erased: the third vote alone cannot form a QC.
  EXPECT_FALSE(agg.add(vote(2, 1, h)).has_value());
}

TEST(TimeoutAggregator, TcAtQuorumCarriesHighestQc) {
  quorum::TimeoutAggregator agg(4);
  EXPECT_FALSE(agg.add(timeout(0, 5, 2)).has_value());
  EXPECT_FALSE(agg.add(timeout(1, 5, 4)).has_value());
  const auto tc = agg.add(timeout(2, 5, 3));
  ASSERT_TRUE(tc.has_value());
  EXPECT_EQ(tc->view, 5u);
  EXPECT_EQ(tc->high_qc.view, 4u);  // max of the reported QCs
  EXPECT_EQ(tc->sigs.size(), 3u);
  ASSERT_EQ(tc->reported_qc_views.size(), 3u);
}

TEST(TimeoutAggregator, DuplicateSendersIgnored) {
  quorum::TimeoutAggregator agg(4);
  agg.add(timeout(0, 5, 1));
  agg.add(timeout(0, 5, 1));
  agg.add(timeout(0, 5, 2));
  EXPECT_EQ(agg.count(5), 1u);
  EXPECT_FALSE(agg.add(timeout(1, 5, 1)).has_value());
}

TEST(TimeoutAggregator, TcFormedOncePerView) {
  quorum::TimeoutAggregator agg(4);
  agg.add(timeout(0, 5, 1));
  agg.add(timeout(1, 5, 1));
  ASSERT_TRUE(agg.add(timeout(2, 5, 1)).has_value());
  EXPECT_FALSE(agg.add(timeout(3, 5, 1)).has_value());
}

TEST(TimeoutAggregator, ViewsAreIndependent) {
  quorum::TimeoutAggregator agg(4);
  agg.add(timeout(0, 5, 1));
  agg.add(timeout(1, 5, 1));
  agg.add(timeout(0, 6, 1));
  EXPECT_EQ(agg.count(5), 2u);
  EXPECT_EQ(agg.count(6), 1u);
  EXPECT_EQ(agg.count(7), 0u);
}

TEST(TimeoutAggregator, GcDropsOldViews) {
  quorum::TimeoutAggregator agg(4);
  agg.add(timeout(0, 5, 1));
  agg.gc_below(6);
  EXPECT_EQ(agg.count(5), 0u);
}

TEST(VoteAggregator, MismatchedHeightCannotPoisonQc) {
  // Regression: the bucket height used to be overwritten by every vote, so
  // a Byzantine vote carrying a wrong height for the right block could
  // poison the formed QC's height. The height is now pinned at bucket
  // creation and a mismatch is Byzantine evidence, not a quorum vote.
  quorum::VoteAggregator agg(4);
  const auto h = crypto::Sha256::hash("b");
  agg.add(vote(0, 1, h, 5));
  agg.add(vote(1, 1, h, 9));  // lies about the block's height
  EXPECT_EQ(agg.equivocation_count(), 1u);
  // The lying vote did not count toward quorum: two more honest votes are
  // still needed, and the QC carries the pinned height.
  EXPECT_FALSE(agg.add(vote(2, 1, h, 5)).has_value());
  const auto qc = agg.add(vote(3, 1, h, 5));
  ASSERT_TRUE(qc.has_value());
  EXPECT_EQ(qc->height, 5u);
  EXPECT_EQ(qc->sigs.size(), 3u);
}

TEST(TimeoutAggregator, CountKeepsGrowingAfterTcFormed) {
  // Regression: the certificate must stop accumulating signatures once
  // formed, but count() (which drives the f+1 early-join rule) still has
  // to see every distinct sender.
  quorum::TimeoutAggregator agg(4);
  agg.add(timeout(0, 5, 1));
  agg.add(timeout(1, 5, 1));
  const auto tc = agg.add(timeout(2, 5, 1));
  ASSERT_TRUE(tc.has_value());
  EXPECT_EQ(tc->sigs.size(), 3u);
  EXPECT_FALSE(agg.add(timeout(3, 5, 9)).has_value());
  EXPECT_EQ(agg.count(5), 4u);
}

TEST(TimeoutAggregator, LargeClusterQuorum) {
  quorum::TimeoutAggregator agg(32);  // quorum 22
  for (types::NodeId n = 0; n < 21; ++n) {
    EXPECT_FALSE(agg.add(timeout(n, 9, n)).has_value());
  }
  const auto tc = agg.add(timeout(21, 9, 0));
  ASSERT_TRUE(tc.has_value());
  EXPECT_EQ(tc->high_qc.view, 20u);
}

}  // namespace
}  // namespace bamboo
