// Tests for the certificate-verification pipeline: CertVerifier structural
// and HMAC checks on hand-crafted QCs/TCs, the forge-qc Byzantine strategy
// end-to-end (forged certificates must be rejected and counted, never
// committed), strategy cost-model sanity, and determinism of the simulated
// multi-worker verify pool.

#include <gtest/gtest.h>

#include <string>

#include "client/workload.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "harness/experiment.h"
#include "quorum/cert_verifier.h"
#include "types/certificates.h"

namespace bamboo {
namespace {

using quorum::CertCheck;
using quorum::CertVerifier;

constexpr std::uint32_t kN = 4;  // quorum 3

/// A QC for (view, hash) signed honestly by replicas [0, signers).
types::QuorumCert signed_qc(const crypto::KeyStore& keys, types::View view,
                            const crypto::Digest& hash,
                            std::uint32_t signers = 3) {
  types::QuorumCert qc;
  qc.view = view;
  qc.height = 1;
  qc.block_hash = hash;
  const crypto::Digest digest = types::vote_digest(view, hash);
  for (std::uint32_t i = 0; i < signers; ++i) {
    qc.sigs.push_back(keys.sign(i, digest));
  }
  return qc;
}

/// A TC for `view` whose i-th signer honestly reports reported[i]; the
/// embedded high_qc must be supplied by the caller.
types::TimeoutCert signed_tc(const crypto::KeyStore& keys, types::View view,
                             std::vector<types::View> reported,
                             types::QuorumCert high_qc) {
  types::TimeoutCert tc;
  tc.view = view;
  tc.reported_qc_views = std::move(reported);
  tc.high_qc = std::move(high_qc);
  for (std::uint32_t i = 0; i < tc.reported_qc_views.size(); ++i) {
    tc.sigs.push_back(
        keys.sign(i, types::timeout_digest(view, tc.reported_qc_views[i])));
  }
  return tc;
}

class CertVerifierTest : public ::testing::Test {
 protected:
  crypto::KeyStore keys{42, kN};
  CertVerifier verifier{keys, kN};
  crypto::Digest h = crypto::Sha256::hash("block");
};

TEST_F(CertVerifierTest, ValidQcPasses) {
  EXPECT_EQ(verifier.check_qc(signed_qc(keys, 3, h)), CertCheck::kOk);
}

TEST_F(CertVerifierTest, GenesisQcValidByConvention) {
  EXPECT_EQ(verifier.check_qc(types::QuorumCert{}), CertCheck::kOk);
}

TEST_F(CertVerifierTest, TooFewSigsRejected) {
  EXPECT_EQ(verifier.check_qc(signed_qc(keys, 3, h, 2)),
            CertCheck::kTooFewSigs);
  types::QuorumCert empty;
  empty.view = 3;  // non-genesis, zero signatures
  EXPECT_EQ(verifier.check_qc(empty), CertCheck::kTooFewSigs);
}

TEST_F(CertVerifierTest, SignerOutOfRangeRejected) {
  auto qc = signed_qc(keys, 3, h);
  qc.sigs[1].signer = kN + 3;
  EXPECT_EQ(verifier.check_qc(qc), CertCheck::kSignerOutOfRange);
}

TEST_F(CertVerifierTest, DuplicateSignerRejected) {
  // Three signatures but only two distinct replicas: not a quorum, even
  // though both of signer 0's tags verify.
  auto qc = signed_qc(keys, 3, h);
  qc.sigs[2] = qc.sigs[0];
  EXPECT_EQ(verifier.check_qc(qc), CertCheck::kDuplicateSigner);
}

TEST_F(CertVerifierTest, ForgedTagRejected) {
  auto qc = signed_qc(keys, 3, h);
  qc.sigs[1].tag = crypto::Sha256::hash("not a real signature");
  EXPECT_EQ(verifier.check_qc(qc), CertCheck::kBadSignature);
}

TEST_F(CertVerifierTest, TamperedFieldsBreakEverySignature) {
  // Signatures bind (view, block_hash): altering either after signing must
  // invalidate the certificate.
  auto qc = signed_qc(keys, 3, h);
  qc.view = 4;
  EXPECT_EQ(verifier.check_qc(qc), CertCheck::kBadSignature);
  qc = signed_qc(keys, 3, h);
  qc.block_hash = crypto::Sha256::hash("other block");
  EXPECT_EQ(verifier.check_qc(qc), CertCheck::kBadSignature);
}

TEST_F(CertVerifierTest, ReusedVerifierStateIsClean) {
  // The epoch-tagged dedup scratch must not leak between calls: the same
  // signers passing once cannot trip the duplicate check later.
  const auto qc = signed_qc(keys, 3, h);
  EXPECT_EQ(verifier.check_qc(qc), CertCheck::kOk);
  EXPECT_EQ(verifier.check_qc(qc), CertCheck::kOk);
}

TEST_F(CertVerifierTest, ValidTcPasses) {
  const auto tc =
      signed_tc(keys, 5, {1, 3, 0}, signed_qc(keys, 3, h));
  EXPECT_EQ(verifier.check_tc(tc), CertCheck::kOk);
}

TEST_F(CertVerifierTest, TcReportedViewsMustMatchSigs) {
  auto tc = signed_tc(keys, 5, {1, 3, 0}, signed_qc(keys, 3, h));
  tc.reported_qc_views.push_back(2);  // 4 reports, 3 signatures
  EXPECT_EQ(verifier.check_tc(tc), CertCheck::kMalformed);
}

TEST_F(CertVerifierTest, TcHighQcMustBeMaxReported) {
  // AggQC invariant: the embedded high_qc must be the freshest QC any
  // signer reported. A stale or inflated high_qc is malformed.
  auto tc = signed_tc(keys, 5, {1, 3, 0}, signed_qc(keys, 2, h));
  EXPECT_EQ(verifier.check_tc(tc), CertCheck::kMalformed);
  tc = signed_tc(keys, 5, {1, 3, 0}, signed_qc(keys, 4, h));
  EXPECT_EQ(verifier.check_tc(tc), CertCheck::kMalformed);
}

TEST_F(CertVerifierTest, TcForgedTimeoutSigRejected) {
  auto tc = signed_tc(keys, 5, {1, 3, 0}, signed_qc(keys, 3, h));
  tc.sigs[0].tag = crypto::Sha256::hash("junk");
  EXPECT_EQ(verifier.check_tc(tc), CertCheck::kBadSignature);
}

TEST_F(CertVerifierTest, TcLyingReportRejected) {
  // Signer 1 signed "my high QC is view 3" but the TC claims it reported
  // view 2: the tag no longer matches the per-signer timeout digest.
  auto tc = signed_tc(keys, 5, {1, 3, 0}, signed_qc(keys, 3, h));
  tc.reported_qc_views[1] = 2;
  tc.high_qc = signed_qc(keys, 2, h);  // keep the max-invariant intact
  EXPECT_EQ(verifier.check_tc(tc), CertCheck::kBadSignature);
}

TEST_F(CertVerifierTest, TcBadEmbeddedHighQcRejected) {
  auto bad_qc = signed_qc(keys, 3, h);
  bad_qc.sigs[2].tag = crypto::Sha256::hash("junk");
  const auto tc = signed_tc(keys, 5, {1, 3, 0}, bad_qc);
  EXPECT_EQ(verifier.check_tc(tc), CertCheck::kBadSignature);
}

// ---------------------------------------------------------------------------
// End-to-end: the verification pipeline inside full runs
// ---------------------------------------------------------------------------

harness::RunSpec e2e_spec(const std::string& protocol) {
  core::Config cfg;
  cfg.protocol = protocol;
  cfg.n_replicas = 4;
  cfg.bsize = 400;
  cfg.psize = 128;
  cfg.memsize = 200000;
  cfg.seed = 11;
  client::WorkloadConfig wl;
  wl.mode = client::LoadMode::kClosedLoop;
  wl.concurrency = 256;
  harness::RunSpec spec;
  spec.cfg = cfg;
  spec.workload = wl;
  spec.opts.warmup_s = 0.25;
  spec.opts.measure_s = 0.75;
  return spec;
}

TEST(VerifyPipeline, HonestRunVerifiesAndRejectsNothing) {
  const harness::RunResult r = harness::execute(e2e_spec("hotstuff"));
  EXPECT_GT(r.certs_verified, 0u);
  EXPECT_EQ(r.certs_rejected, 0u);
  EXPECT_TRUE(r.consistent);
}

TEST(VerifyPipeline, ForgeQcAttackIsRejectedEndToEnd) {
  // A Byzantine leader proposing off a stale parent under a forged QC (fake
  // HMAC tags from a full quorum of signer ids) must have every forged
  // certificate dropped at the receivers: the forgeries are counted, no
  // safety violation occurs, and the honest majority keeps committing.
  harness::RunSpec spec = e2e_spec("hotstuff");
  spec.cfg.byz_no = 1;
  spec.cfg.strategy = "forge-qc";
  const harness::RunResult r = harness::execute(spec);
  EXPECT_GT(r.certs_rejected, 0u);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_TRUE(r.consistent);
  EXPECT_GT(r.throughput_tps, 0.0);
}

TEST(VerifyPipeline, ForgeQcRejectedUnderEveryStrategy) {
  // The verify *strategy* changes only the simulated cost, never the
  // verdict: forgeries are rejected under batch and amortized-qc too.
  for (const char* strategy : {"batch", "amortized-qc"}) {
    harness::RunSpec spec = e2e_spec("hotstuff");
    spec.cfg.byz_no = 1;
    spec.cfg.strategy = "forge-qc";
    spec.cfg.verify_strategy = strategy;
    spec.cfg.cpu_verify_per_sig = sim::microseconds(10);
    const harness::RunResult r = harness::execute(spec);
    EXPECT_GT(r.certs_rejected, 0u) << strategy;
    EXPECT_EQ(r.safety_violations, 0u) << strategy;
    EXPECT_TRUE(r.consistent) << strategy;
  }
}

TEST(VerifyPipeline, VerifySurchargeCostsThroughput) {
  // Charging per-signature certificate verification must make the run
  // CPU-bound and commit less than the free-verification baseline.
  const harness::RunResult base = harness::execute(e2e_spec("hotstuff"));
  harness::RunSpec loaded = e2e_spec("hotstuff");
  loaded.cfg.verify_strategy = "eager";
  loaded.cfg.cpu_verify_per_sig = sim::microseconds(320);
  const harness::RunResult r = harness::execute(loaded);
  EXPECT_LT(r.throughput_tps, base.throughput_tps);
  EXPECT_TRUE(r.consistent);
}

TEST(VerifyPipeline, WorkerPoolRunsAreDeterministic) {
  // A multi-worker verify pool must stay bit-deterministic: the same spec
  // executed twice yields field-identical results.
  harness::RunSpec spec = e2e_spec("2chs");
  spec.cfg.cpu_workers = 4;
  spec.cfg.verify_strategy = "batch";
  spec.cfg.cpu_verify_per_sig = sim::microseconds(40);
  const harness::RunResult a = harness::execute(spec);
  const harness::RunResult b = harness::execute(spec);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.consistent);
  EXPECT_GT(a.certs_verified, 0u);
}

TEST(VerifyPipeline, ExtraWorkersRelieveCpuPressure) {
  // Under a heavy eager surcharge, adding simulated verify workers must
  // not hurt throughput (the pool drains the same queue concurrently).
  harness::RunSpec spec = e2e_spec("hotstuff");
  spec.cfg.verify_strategy = "eager";
  spec.cfg.cpu_verify_per_sig = sim::microseconds(320);
  const harness::RunResult w1 = harness::execute(spec);
  spec.cfg.cpu_workers = 4;
  const harness::RunResult w4 = harness::execute(spec);
  EXPECT_GE(w4.throughput_tps, w1.throughput_tps);
  EXPECT_TRUE(w4.consistent);
}

}  // namespace
}  // namespace bamboo
