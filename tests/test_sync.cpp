// Tests for the recovery & state-sync subsystem (sync/syncer.h): the
// batched chain-sync protocol (locator -> parent-first response), the
// outstanding-request lifecycle (dedupe, timeout, peer rotation, bounded
// retries, expiry), rejection of duplicate/stale/Byzantine responses, and
// the end-to-end recovery path through the churn engine (partition under
// ambient loss -> heal -> batched catch-up with populated sync_* /
// recovery_ms columns).

#include <gtest/gtest.h>

#include <vector>

#include "crypto/sha256.h"

#include "client/workload.h"
#include "core/churn.h"
#include "forest/block_forest.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "sim/simulator.h"
#include "sync/syncer.h"
#include "types/messages.h"

namespace bamboo {
namespace {

using forest::AddResult;
using forest::BlockForest;
using types::BlockPtr;

BlockPtr child_of(const BlockPtr& parent, types::View view) {
  types::Block::Fields f;
  f.parent_hash = parent->hash();
  f.view = view;
  f.height = parent->height() + 1;
  f.proposer = 0;
  f.justify.view = parent->view();
  f.justify.height = parent->height();
  f.justify.block_hash = parent->hash();
  return std::make_shared<const types::Block>(std::move(f));
}

/// A Syncer wired to a local forest with captured sends: the unit-test
/// harness for the state machine (no cluster, no network).
struct SyncerRig {
  struct Sent {
    types::NodeId to;
    types::MessagePtr msg;
  };

  sim::Simulator sim{7};
  BlockForest forest;
  std::vector<Sent> sent;
  sync::Syncer syncer;

  explicit SyncerRig(sync::Syncer::Settings settings, types::NodeId id = 0,
                     std::uint32_t n_replicas = 4)
      : syncer(sim, forest, settings, id, n_replicas,
               sync::Syncer::Hooks{
                   [this](types::NodeId to, types::MessagePtr msg) {
                     sent.push_back({to, std::move(msg)});
                   },
                   [this](const BlockPtr& block, types::NodeId) {
                     return forest.add(block);
                   },
                   /*verify_qc=*/{},         // unset = accept
                   /*install_snapshot=*/{}}) {}

  [[nodiscard]] const types::ChainRequestMsg& request_at(std::size_t i) const {
    return std::get<types::ChainRequestMsg>(*sent.at(i).msg);
  }
};

/// Genesis + a chain of `n` blocks; returns the blocks tip-last.
std::vector<BlockPtr> make_chain(std::size_t n) {
  std::vector<BlockPtr> chain;
  BlockPtr cursor = types::Block::genesis();
  for (std::size_t i = 0; i < n; ++i) {
    cursor = child_of(cursor, static_cast<types::View>(i + 1));
    chain.push_back(cursor);
  }
  return chain;
}

types::ChainResponseMsg response_of(std::vector<BlockPtr> blocks) {
  types::ChainResponseMsg resp;
  resp.blocks = std::move(blocks);
  return resp;
}

// ---------------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------------

TEST(SyncerServer, ServesBatchedRangeParentFirst) {
  SyncerRig server({/*batch=*/1});
  const auto chain = make_chain(10);
  for (const BlockPtr& b : chain) server.forest.add(b);

  types::ChainRequestMsg req;
  req.want_hash = chain[9]->hash();  // height 10
  req.committed_height = 2;          // requester holds heights 0..2
  req.batch = 4;
  server.syncer.on_request(req, 1);

  ASSERT_EQ(server.sent.size(), 1u);
  const auto& resp = std::get<types::ChainResponseMsg>(*server.sent[0].msg);
  ASSERT_EQ(resp.blocks.size(), 4u);
  // Parent-first, ending at the wanted hash.
  EXPECT_EQ(resp.blocks[0]->height(), 7u);
  EXPECT_EQ(resp.blocks[3]->hash(), chain[9]->hash());
  for (std::size_t i = 1; i < resp.blocks.size(); ++i) {
    EXPECT_EQ(resp.blocks[i]->parent_hash(), resp.blocks[i - 1]->hash());
  }
  EXPECT_EQ(server.syncer.stats().requests_served, 1u);
  EXPECT_EQ(server.syncer.stats().blocks_served, 4u);
}

TEST(SyncerServer, StopsAtTheRequestersCommittedHeight) {
  SyncerRig server({1});
  const auto chain = make_chain(5);
  for (const BlockPtr& b : chain) server.forest.add(b);

  types::ChainRequestMsg req;
  req.want_hash = chain[4]->hash();  // height 5
  req.committed_height = 3;          // only 4 and 5 are missing
  req.batch = 64;
  server.syncer.on_request(req, 2);
  ASSERT_EQ(server.sent.size(), 1u);
  const auto& resp = std::get<types::ChainResponseMsg>(*server.sent[0].msg);
  ASSERT_EQ(resp.blocks.size(), 2u);
  EXPECT_EQ(resp.blocks[0]->height(), 4u);
}

TEST(SyncerServer, UnknownWantIsSilentlyIgnored) {
  SyncerRig server({1});
  types::ChainRequestMsg req;
  req.want_hash = crypto::Sha256::hash("nowhere");
  server.syncer.on_request(req, 1);
  EXPECT_TRUE(server.sent.empty());
}

// ---------------------------------------------------------------------------
// Requester lifecycle
// ---------------------------------------------------------------------------

TEST(SyncerRequester, DedupesInFlightFetches) {
  SyncerRig rig({/*batch=*/4});
  const auto chain = make_chain(3);
  rig.syncer.request(chain[2]->hash(), 1);
  rig.syncer.request(chain[2]->hash(), 2);  // same hash, different trigger
  EXPECT_EQ(rig.sent.size(), 1u);
  EXPECT_EQ(rig.sent[0].to, 1u);
  EXPECT_EQ(rig.syncer.in_flight(), 1u);
  // The locator carries our committed height and the batch cap.
  EXPECT_EQ(rig.request_at(0).committed_height, 0u);
  EXPECT_EQ(rig.request_at(0).batch, 4u);
}

TEST(SyncerRequester, IgnoresSelfClientsAndPresentHashes) {
  SyncerRig rig({1}, /*id=*/0, /*n_replicas=*/4);
  const auto chain = make_chain(2);
  rig.forest.add(chain[0]);
  rig.syncer.request(chain[0]->hash(), 1);  // already present
  rig.syncer.request(chain[1]->hash(), 0);  // self
  rig.syncer.request(chain[1]->hash(), 4);  // client endpoint
  EXPECT_TRUE(rig.sent.empty());
}

TEST(SyncerRequester, TimeoutRotatesPastTheDeadPeerAndExpires) {
  SyncerRig rig({/*batch=*/1, /*timeout=*/sim::milliseconds(50),
                 /*retries=*/2});
  const auto chain = make_chain(1);
  rig.syncer.request(chain[0]->hash(), 2);
  ASSERT_EQ(rig.sent.size(), 1u);
  EXPECT_EQ(rig.sent[0].to, 2u);

  rig.sim.run_for(sim::milliseconds(60));  // first timeout
  ASSERT_EQ(rig.sent.size(), 2u);
  EXPECT_EQ(rig.sent[1].to, 3u);  // rotated past the dead peer

  rig.sim.run_for(sim::milliseconds(50));  // second timeout
  ASSERT_EQ(rig.sent.size(), 3u);
  EXPECT_EQ(rig.sent[2].to, 1u);  // 0 is self: skipped

  rig.sim.run_for(sim::milliseconds(50));  // retries exhausted
  EXPECT_EQ(rig.sent.size(), 3u);
  EXPECT_EQ(rig.syncer.in_flight(), 0u);  // expired, not wedged
  EXPECT_EQ(rig.syncer.stats().timeouts, 3u);
  EXPECT_EQ(rig.syncer.stats().retries, 2u);
  EXPECT_EQ(rig.syncer.stats().exhausted, 1u);

  // A later trigger starts a FRESH fetch — loss cannot wedge recovery.
  rig.syncer.request(chain[0]->hash(), 2);
  EXPECT_EQ(rig.sent.size(), 4u);
}

TEST(SyncerRequester, ResponseCancelsTheTimer) {
  SyncerRig rig({1, sim::milliseconds(50), 3});
  const auto chain = make_chain(1);
  rig.syncer.request(chain[0]->hash(), 1);
  rig.syncer.on_response(response_of({chain[0]}), 1);
  EXPECT_TRUE(rig.forest.contains(chain[0]->hash()));
  EXPECT_EQ(rig.syncer.in_flight(), 0u);
  rig.sim.run_for(sim::milliseconds(200));
  EXPECT_EQ(rig.sent.size(), 1u);  // no retry fired
  EXPECT_EQ(rig.syncer.stats().timeouts, 0u);
}

TEST(SyncerRequester, AppliesBatchAndContinuesBelowTheGap) {
  // Forest holds genesis; the gap is 1..6 and the batch is 3: the first
  // response leaves its range orphaned and the syncer walks further down
  // with a new locator to the same peer.
  SyncerRig rig({/*batch=*/3, sim::milliseconds(100), 3});
  const auto chain = make_chain(6);
  rig.syncer.request(chain[5]->hash(), 2);
  ASSERT_EQ(rig.sent.size(), 1u);

  rig.syncer.on_response(response_of({chain[3], chain[4], chain[5]}), 2);
  EXPECT_EQ(rig.forest.orphan_count(), 3u);  // buffered, not connected
  ASSERT_EQ(rig.sent.size(), 2u);            // continuation fetch
  EXPECT_EQ(rig.sent[1].to, 2u);
  EXPECT_EQ(rig.request_at(1).want_hash, chain[2]->hash());

  rig.syncer.on_response(response_of({chain[0], chain[1], chain[2]}), 2);
  // The deeper range connects and flushes the buffered orphans.
  EXPECT_EQ(rig.forest.orphan_count(), 0u);
  for (const BlockPtr& b : chain) EXPECT_TRUE(rig.forest.contains(b->hash()));
  EXPECT_EQ(rig.syncer.stats().blocks_applied, 6u);
  EXPECT_EQ(rig.syncer.in_flight(), 0u);
  EXPECT_GT(rig.syncer.stats().bytes_received, 0u);
}

// ---------------------------------------------------------------------------
// Byzantine / stale responses
// ---------------------------------------------------------------------------

TEST(SyncerRejects, DuplicateAndStaleResponses) {
  SyncerRig rig({1});
  const auto chain = make_chain(1);
  rig.syncer.request(chain[0]->hash(), 1);
  rig.syncer.on_response(response_of({chain[0]}), 1);
  EXPECT_EQ(rig.syncer.stats().responses_applied, 1u);

  // A duplicate of a satisfied fetch (e.g. from a slower peer) is stale.
  rig.syncer.on_response(response_of({chain[0]}), 2);
  EXPECT_EQ(rig.syncer.stats().responses_rejected, 1u);
  EXPECT_EQ(rig.syncer.stats().responses_applied, 1u);
}

TEST(SyncerRejects, UnrequestedBlocksNeverTouchTheForest) {
  SyncerRig rig({1});
  const auto chain = make_chain(3);
  // Nothing was requested: a pushy Byzantine peer is ignored wholesale.
  rig.syncer.on_response(response_of({chain[0], chain[1], chain[2]}), 3);
  EXPECT_EQ(rig.syncer.stats().responses_rejected, 1u);
  EXPECT_EQ(rig.forest.size(), 1u);  // genesis only
  EXPECT_EQ(rig.forest.orphan_count(), 0u);
}

TEST(SyncerRejects, UnchainedBatchIsRejectedWholesale) {
  SyncerRig rig({4});
  const auto chain = make_chain(4);
  rig.syncer.request(chain[3]->hash(), 1);
  // blocks[1] does not extend blocks[0]: the batch is not one chain.
  rig.syncer.on_response(response_of({chain[0], chain[2], chain[3]}), 1);
  EXPECT_EQ(rig.syncer.stats().responses_rejected, 1u);
  EXPECT_EQ(rig.forest.size(), 1u);
  EXPECT_EQ(rig.forest.orphan_count(), 0u);
  // The fetch entry survives for the honest retry.
  EXPECT_EQ(rig.syncer.in_flight(), 1u);
}

TEST(SyncerRejects, ResponsesBeyondTheRequestedBatchCap) {
  // An honest responder never exceeds the locator's batch cap; a
  // Byzantine one shipping a huge (validly chained) range is rejected
  // before any of it touches the forest.
  SyncerRig rig({/*batch=*/2});
  const auto chain = make_chain(5);
  rig.syncer.request(chain[4]->hash(), 1);
  rig.syncer.on_response(
      response_of({chain[0], chain[1], chain[2], chain[3], chain[4]}), 1);
  EXPECT_EQ(rig.syncer.stats().responses_rejected, 1u);
  EXPECT_EQ(rig.forest.size(), 1u);  // genesis only
  EXPECT_EQ(rig.syncer.in_flight(), 1u);
}

TEST(SyncerRejects, InvalidBlockAbortsTheRestOfTheBatch) {
  SyncerRig rig({4});
  const auto good = make_chain(1);

  // A height-lying child: parent links to genesis but height skips ahead.
  types::Block::Fields f;
  f.parent_hash = types::Block::genesis()->hash();
  f.view = 1;
  f.height = 7;  // must be 1
  f.proposer = 0;
  const auto liar = std::make_shared<const types::Block>(std::move(f));
  const auto liar_child = child_of(liar, 2);

  rig.syncer.request(liar_child->hash(), 1);
  rig.syncer.on_response(response_of({liar, liar_child}), 1);
  EXPECT_EQ(rig.syncer.stats().blocks_rejected, 1u);
  EXPECT_FALSE(rig.forest.contains(liar->hash()));
  EXPECT_FALSE(rig.forest.contains(liar_child->hash()));
  EXPECT_EQ(rig.syncer.in_flight(), 0u);
  (void)good;
}

TEST(SyncerRequester, StopCancelsEverything) {
  SyncerRig rig({1, sim::milliseconds(20), 5});
  const auto chain = make_chain(2);
  rig.syncer.request(chain[0]->hash(), 1);
  rig.syncer.request(chain[1]->hash(), 2);
  rig.syncer.stop();
  EXPECT_EQ(rig.syncer.in_flight(), 0u);
  rig.sim.run_for(sim::milliseconds(200));
  EXPECT_EQ(rig.sent.size(), 2u);  // no timer ever fired a retry
}

// ---------------------------------------------------------------------------
// Pipelined sync (parallel segment fetches)
// ---------------------------------------------------------------------------

TEST(SyncerPipelined, FansOutParallelSegmentFetchesAcrossPeers) {
  // Gap of 10 below the first fetched batch, batch 2, pipeline 3: after
  // the first response the syncer keeps the serial walk AND opens two
  // segment fetches (skip 2 and 4) on rotated peers — one round trip now
  // fills three segments of the gap.
  SyncerRig rig({/*batch=*/2, sim::milliseconds(100), /*retries=*/3,
                 /*pipeline=*/3});
  const auto chain = make_chain(12);
  rig.syncer.request(chain[11]->hash(), 1);
  ASSERT_EQ(rig.sent.size(), 1u);

  rig.syncer.on_response(response_of({chain[10], chain[11]}), 1);
  ASSERT_EQ(rig.sent.size(), 4u);  // serial continuation + 2 segments
  // Serial walk: next locator for the parent of the fetched bottom.
  EXPECT_EQ(rig.request_at(1).want_hash, chain[9]->hash());
  EXPECT_EQ(rig.request_at(1).skip, 0u);
  // Segments: same want hash, ascending skips, rotating peers.
  EXPECT_EQ(rig.request_at(2).want_hash, chain[9]->hash());
  EXPECT_EQ(rig.request_at(2).skip, 2u);
  EXPECT_EQ(rig.sent[2].to, 1u);
  EXPECT_EQ(rig.request_at(3).skip, 4u);
  EXPECT_EQ(rig.sent[3].to, 2u);
  // In flight: the original (still-orphaned) want, the serial
  // continuation, and the two segments.
  EXPECT_EQ(rig.syncer.in_flight(), 4u);

  // A segment response (top block is NOT the want hash) is matched by its
  // (want, skip) echo, lands in the orphan buffer, and retires its entry.
  types::ChainResponseMsg seg = response_of({chain[6], chain[7]});
  seg.want_hash = chain[9]->hash();
  seg.skip = 2;
  rig.syncer.on_response(seg, 1);
  EXPECT_EQ(rig.forest.orphan_count(), 4u);  // 2 tip blocks + this segment
  EXPECT_EQ(rig.syncer.in_flight(), 3u);
  EXPECT_EQ(rig.syncer.stats().blocks_applied, 4u);
}

TEST(SyncerPipelined, SegmentResponsesRequireAMatchingEcho) {
  SyncerRig rig({/*batch=*/2, sim::milliseconds(100), 3, /*pipeline=*/3});
  const auto chain = make_chain(12);
  rig.syncer.request(chain[11]->hash(), 1);
  rig.syncer.on_response(response_of({chain[10], chain[11]}), 1);
  ASSERT_EQ(rig.syncer.in_flight(), 4u);

  // A Byzantine peer echoing a skip that was never requested is rejected
  // wholesale — segment entries only accept their own (want, skip).
  types::ChainResponseMsg bogus = response_of({chain[4], chain[5]});
  bogus.want_hash = chain[9]->hash();
  bogus.skip = 6;  // requested skips are 2 and 4
  rig.syncer.on_response(bogus, 1);
  EXPECT_EQ(rig.syncer.stats().responses_rejected, 1u);
  EXPECT_EQ(rig.syncer.in_flight(), 4u);
}

// ---------------------------------------------------------------------------
// Snapshot state transfer
// ---------------------------------------------------------------------------

types::QuorumCert qc_certifying(const BlockPtr& b) {
  types::QuorumCert qc;
  qc.view = b->view();
  qc.height = b->height();
  qc.block_hash = b->hash();
  return qc;
}

/// A rig with the full client-side hook set: QC verification (verdict
/// settable per test) and snapshot install into the local forest.
struct SnapshotRig {
  sim::Simulator sim{7};
  BlockForest forest;
  std::vector<SyncerRig::Sent> sent;
  bool qc_verdict = true;
  sync::Syncer syncer;

  explicit SnapshotRig(sync::Syncer::Settings settings, types::NodeId id = 0,
                       std::uint32_t n_replicas = 4)
      : syncer(sim, forest, settings, id, n_replicas,
               sync::Syncer::Hooks{
                   [this](types::NodeId to, types::MessagePtr msg) {
                     sent.push_back({to, std::move(msg)});
                   },
                   [this](const BlockPtr& block, types::NodeId) {
                     return forest.add(block);
                   },
                   [this](const types::QuorumCert&) { return qc_verdict; },
                   [this](const BlockPtr& anchor,
                          const types::QuorumCert& qc,
                          const std::vector<crypto::Digest>& hashes) {
                     return forest.install_snapshot(anchor, qc, hashes);
                   }}) {}
};

/// Build a server rig whose forest committed the first `committed` blocks
/// of `chain` (tip certified, as on_snapshot_request requires).
void commit_prefix(SyncerRig& server, const std::vector<BlockPtr>& chain,
                   std::size_t committed) {
  for (const BlockPtr& b : chain) server.forest.add(b);
  server.forest.add_qc(qc_certifying(chain[committed - 1]));
  ASSERT_TRUE(server.forest.commit(chain[committed - 1]->hash()).has_value());
  ASSERT_EQ(server.forest.committed_height(), committed);
}

/// Drive a client into snapshot mode: request the tip of `chain`, serve
/// the top `batch` blocks, and return the captured SnapshotRequestMsg.
types::SnapshotRequestMsg trigger_snapshot(SnapshotRig& client,
                                           const std::vector<BlockPtr>& chain,
                                           std::uint32_t batch,
                                           types::NodeId peer) {
  client.syncer.request(chain.back()->hash(), peer);
  std::vector<BlockPtr> top(chain.end() - batch, chain.end());
  client.syncer.on_response(response_of(std::move(top)), peer);
  EXPECT_TRUE(client.syncer.snapshot_in_flight());
  return std::get<types::SnapshotRequestMsg>(*client.sent.back().msg);
}

TEST(SnapshotServer, ServesChunkedCommittedChainWithCertifiedAnchor) {
  SyncerRig server({/*batch=*/4, sim::milliseconds(100), 3, 1,
                    /*snapshot_gap=*/8, /*snapshot_chunk=*/128});
  const auto chain = make_chain(12);
  commit_prefix(server, chain, 10);

  types::SnapshotRequestMsg req;
  req.want_hash = chain[11]->hash();
  req.committed_height = 0;
  server.syncer.on_snapshot_request(req, 1);

  // 11 committed hashes (genesis..height 10), 128/32 = 4 per chunk ->
  // 3 self-describing chunks, all bound to the same root, the final one
  // carrying the certified anchor.
  ASSERT_EQ(server.sent.size(), 3u);
  EXPECT_EQ(server.syncer.stats().snapshots_served, 1u);
  const crypto::Digest root =
      sync::Syncer::snapshot_root(server.forest.committed_hashes());
  std::vector<crypto::Digest> reassembled;
  for (std::size_t i = 0; i < server.sent.size(); ++i) {
    EXPECT_EQ(server.sent[i].to, 1u);
    const auto& chunk =
        std::get<types::SnapshotChunkMsg>(*server.sent[i].msg);
    EXPECT_EQ(chunk.seq, i);
    EXPECT_EQ(chunk.total, 3u);
    EXPECT_EQ(chunk.root, root);
    EXPECT_EQ(chunk.base_height, i * 4);
    reassembled.insert(reassembled.end(), chunk.hashes.begin(),
                       chunk.hashes.end());
    if (i + 1 < server.sent.size()) {
      EXPECT_FALSE(chunk.anchor);
    } else {
      ASSERT_TRUE(chunk.anchor);
      EXPECT_EQ(chunk.anchor->hash(), chain[9]->hash());
      EXPECT_EQ(chunk.anchor_qc.block_hash, chain[9]->hash());
    }
  }
  EXPECT_EQ(reassembled, server.forest.committed_hashes());

  // A requester already at (or past) our committed tip gets nothing —
  // its own chain-sync timer will route it elsewhere.
  server.sent.clear();
  req.committed_height = 10;
  server.syncer.on_snapshot_request(req, 1);
  EXPECT_TRUE(server.sent.empty());
}

TEST(SnapshotTransfer, ClientInstallsValidSnapshotAndResumesChainSync) {
  const sync::Syncer::Settings settings{/*batch=*/4, sim::milliseconds(100),
                                        /*retries=*/3, /*pipeline=*/1,
                                        /*snapshot_gap=*/8,
                                        /*snapshot_chunk=*/128};
  const auto chain = make_chain(40);
  SyncerRig server(settings, /*id=*/1);
  commit_prefix(server, chain, 30);
  SnapshotRig client(settings);

  const auto req = trigger_snapshot(client, chain, settings.batch, 1);
  EXPECT_EQ(req.committed_height, 0u);
  EXPECT_EQ(client.syncer.stats().snapshots_requested, 1u);

  // The server chunks its committed-hash chain (31 hashes, 4 per 128-byte
  // chunk -> 8 chunks) and anchors the final chunk with its certified tip.
  server.syncer.on_snapshot_request(req, 0);
  EXPECT_EQ(server.syncer.stats().snapshots_served, 1u);
  ASSERT_EQ(server.sent.size(), 8u);
  const auto& last =
      std::get<types::SnapshotChunkMsg>(*server.sent.back().msg);
  ASSERT_TRUE(last.anchor);
  EXPECT_EQ(last.anchor->hash(), chain[29]->hash());
  EXPECT_EQ(last.anchor_qc.block_hash, chain[29]->hash());

  const std::size_t before = client.sent.size();
  for (const auto& out : server.sent) {
    client.syncer.on_snapshot_chunk(
        std::get<types::SnapshotChunkMsg>(*out.msg), 1);
  }
  // Installed: the committed prefix jumped to the anchor without fetching
  // a single body below it, and chain-sync resumed above the anchor.
  EXPECT_EQ(client.syncer.stats().snapshots_installed, 1u);
  EXPECT_EQ(client.syncer.stats().snapshots_rejected, 0u);
  EXPECT_FALSE(client.syncer.snapshot_in_flight());
  EXPECT_EQ(client.forest.committed_height(), 30u);
  ASSERT_GT(client.sent.size(), before);
  const auto& resume =
      std::get<types::ChainRequestMsg>(*client.sent.back().msg);
  EXPECT_EQ(resume.committed_height, 30u);
}

TEST(SnapshotTransfer, TamperedChunkIsRejectedAndRotatesToHonestPeer) {
  const sync::Syncer::Settings settings{/*batch=*/4, sim::milliseconds(100),
                                        /*retries=*/3, /*pipeline=*/1,
                                        /*snapshot_gap=*/8,
                                        /*snapshot_chunk=*/128};
  const auto chain = make_chain(40);
  SyncerRig server(settings, /*id=*/2);
  commit_prefix(server, chain, 30);
  SnapshotRig client(settings);

  const auto req = trigger_snapshot(client, chain, settings.batch, 1);
  server.syncer.on_snapshot_request(req, 0);
  ASSERT_GE(server.sent.size(), 2u);

  // Peer 1 is Byzantine: it swaps one committed hash mid-stream. The
  // reassembled chain fails the root check, the whole transfer is
  // rejected, and the retry rotates to peer 2.
  for (std::size_t i = 0; i < server.sent.size(); ++i) {
    auto chunk = std::get<types::SnapshotChunkMsg>(*server.sent[i].msg);
    if (i == 1) chunk.hashes[0] = crypto::Sha256::hash("forged history");
    client.syncer.on_snapshot_chunk(chunk, 1);
  }
  EXPECT_EQ(client.syncer.stats().snapshots_rejected, 1u);
  EXPECT_EQ(client.syncer.stats().snapshots_installed, 0u);
  EXPECT_EQ(client.forest.committed_height(), 0u);  // nothing adopted
  EXPECT_TRUE(client.syncer.snapshot_in_flight());
  const auto retry =
      std::get<types::SnapshotRequestMsg>(*client.sent.back().msg);
  EXPECT_EQ(client.sent.back().to, 2u);  // rotated off the liar

  // The honest peer serves the same snapshot; this time it installs.
  server.sent.clear();
  server.syncer.on_snapshot_request(retry, 0);
  for (const auto& out : server.sent) {
    client.syncer.on_snapshot_chunk(
        std::get<types::SnapshotChunkMsg>(*out.msg), 2);
  }
  EXPECT_EQ(client.syncer.stats().snapshots_installed, 1u);
  EXPECT_EQ(client.forest.committed_height(), 30u);
}

TEST(SnapshotTransfer, UnverifiableAnchorQcRejectsTheSnapshot) {
  const sync::Syncer::Settings settings{/*batch=*/4, sim::milliseconds(100),
                                        /*retries=*/3, /*pipeline=*/1,
                                        /*snapshot_gap=*/8,
                                        /*snapshot_chunk=*/128};
  const auto chain = make_chain(40);
  SyncerRig server(settings, /*id=*/1);
  commit_prefix(server, chain, 30);
  SnapshotRig client(settings);
  client.qc_verdict = false;  // CertVerifier refuses the anchor QC

  const auto req = trigger_snapshot(client, chain, settings.batch, 1);
  server.syncer.on_snapshot_request(req, 0);
  for (const auto& out : server.sent) {
    client.syncer.on_snapshot_chunk(
        std::get<types::SnapshotChunkMsg>(*out.msg), 1);
  }
  // Shape and root were fine — only the certificate failed. Nothing may
  // be installed on the strength of an unverifiable QC.
  EXPECT_EQ(client.syncer.stats().snapshots_rejected, 1u);
  EXPECT_EQ(client.syncer.stats().snapshots_installed, 0u);
  EXPECT_EQ(client.forest.committed_height(), 0u);
}

TEST(SnapshotTransfer, UnsolicitedChunksNeverTouchTheForest) {
  SnapshotRig client({/*batch=*/4, sim::milliseconds(100), 3, 1,
                      /*snapshot_gap=*/8, /*snapshot_chunk=*/128});
  types::SnapshotChunkMsg chunk;
  chunk.seq = 0;
  chunk.total = 1;
  chunk.hashes = {types::Block::genesis()->hash()};
  client.syncer.on_snapshot_chunk(chunk, 3);
  EXPECT_EQ(client.syncer.stats().responses_rejected, 1u);
  EXPECT_EQ(client.syncer.stats().snapshot_chunks_received, 0u);
  EXPECT_EQ(client.forest.committed_height(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end recovery through the churn engine
// ---------------------------------------------------------------------------

harness::RunSpec recovery_spec(std::uint32_t sync_batch) {
  harness::RunSpec spec;
  spec.cfg.n_replicas = 4;
  spec.cfg.bsize = 100;
  spec.cfg.memsize = 200000;
  spec.cfg.seed = 33;
  spec.cfg.link_loss = 0.02;  // ambient loss: retries must carry recovery
  spec.cfg.sync_batch = sync_batch;
  spec.cfg.sync_timeout = sim::milliseconds(80);
  spec.cfg.sync_retries = 4;
  // 3|1: the majority keeps its quorum and commits through the window,
  // replica 3 misses all of it and must range-fetch it back after heal.
  spec.cfg.churn = "partition@0.2s:groups=0-1-2|3;heal@0.6s";
  spec.workload.mode = client::LoadMode::kClosedLoop;
  spec.workload.concurrency = 64;
  spec.opts.warmup_s = 0.1;
  spec.opts.measure_s = 1.1;
  return spec;
}

TEST(SyncRecovery, PartitionedMinorityCatchesUpViaBatchedSync) {
  // The ISSUE's end-to-end bar: a 2|2 partition under ambient link loss,
  // healed mid-run — the minority misses the majority's window and must
  // fetch it back; sync_* and recovery_ms must be populated.
  const auto r = harness::execute(recovery_spec(/*sync_batch=*/6));
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GT(r.blocks_committed, 0u);
  EXPECT_GT(r.sync_requests, 0u);
  EXPECT_GT(r.sync_blocks, 0u);
  EXPECT_GT(r.sync_bytes, 0u);
  // One heal event with laggards -> one recovery measurement, bounded by
  // the post-heal window.
  EXPECT_GT(r.recovery_ms, 0.0);
  EXPECT_LE(r.recovery_ms, 700.0);
}

TEST(SyncRecovery, RecoveryColumnsReachPersistedRecords) {
  const auto spec = recovery_spec(6);
  const auto result = harness::execute(spec);
  const auto rec = harness::report::make_run_record("t", "a", "s", 0, spec,
                                                    0, 1, result);
  const std::string row = harness::report::csv_row(rec);
  const auto json = harness::report::to_json(rec);
  const auto back = harness::report::record_from_json(json);
  EXPECT_EQ(back.result.sync_requests, result.sync_requests);
  EXPECT_EQ(back.result.sync_blocks, result.sync_blocks);
  EXPECT_EQ(back.result.sync_bytes, result.sync_bytes);
  EXPECT_DOUBLE_EQ(back.result.recovery_ms, result.recovery_ms);
  EXPECT_EQ(back.prov.sync_batch, 6u);
  EXPECT_EQ(back.prov.sync_retries, 4u);
  EXPECT_DOUBLE_EQ(back.prov.sync_timeout_ms, 80.0);
  // The CSV row has one cell per column.
  std::size_t cells = 1;
  bool quoted = false;
  for (char c : row) {
    if (c == '"') quoted = !quoted;
    if (c == ',' && !quoted) ++cells;
  }
  EXPECT_EQ(cells, harness::report::csv_columns().size());
}

TEST(SyncRecovery, DeterministicAcrossThreadCountsAndBatches) {
  std::vector<harness::RunSpec> grid = {recovery_spec(1), recovery_spec(4),
                                        recovery_spec(16)};
  harness::ParallelRunner one(1);
  harness::ParallelRunner four(4);
  const auto a = one.run(grid);
  const auto b = four.run(grid);
  EXPECT_EQ(a, b);
}

TEST(SyncRecovery, CrashedPeerCannotWedgeRecovery) {
  // Replica 3 misses a window alone, then a majority peer dies right at
  // the heal: fetches routed at the corpse must rotate, not stall.
  harness::RunSpec spec = recovery_spec(4);
  spec.cfg.churn =
      "partition@0.2s:groups=0-1-2|3;heal@0.6s;crash@0.62s:replica=1";
  const auto r = harness::execute(spec);
  EXPECT_TRUE(r.consistent);
  EXPECT_GT(r.sync_blocks, 0u);
  EXPECT_GT(r.recovery_ms, 0.0);
}

TEST(SyncRecovery, LaggardCrashingRightAfterHealAbandonsTheEvent) {
  // The only laggard dies 10 ms after the heal: nothing ever catches up,
  // so the event is unmeasurable and must NOT report a tiny recovery_ms.
  harness::RunSpec spec = recovery_spec(4);
  spec.cfg.churn =
      "partition@0.2s:groups=0-1-2|3;heal@0.6s;crash@0.61s:replica=3";
  const auto r = harness::execute(spec);
  EXPECT_TRUE(r.consistent);
  EXPECT_DOUBLE_EQ(r.recovery_ms, 0.0);
}

TEST(SyncRecovery, EmptyChurnLeavesRecoveryColumnsZero) {
  harness::RunSpec spec = recovery_spec(1);
  spec.cfg.churn.clear();
  spec.cfg.link_loss = 0;
  const auto r = harness::execute(spec);
  EXPECT_DOUBLE_EQ(r.recovery_ms, 0.0);
}

/// recovery_spec tuned so the 0.4 s outage opens a REAL commit gap. Under
/// round-robin the partitioned replica still gets elected every 4th view
/// and the majority all but stalls on its timeouts (~2 blocks committed
/// per outage) — far too small a gap to discriminate the accelerators. A
/// static leader inside the majority keeps the commit pipe full, so the
/// healed laggard faces tens-to-hundreds of missing blocks.
harness::RunSpec open_loop_recovery_spec(std::uint32_t sync_batch) {
  harness::RunSpec spec = recovery_spec(sync_batch);
  spec.cfg.election = "static:0";  // keep committing while 3 is gone
  spec.cfg.link_loss = 0;          // isolate the accelerator from retry noise
  spec.workload.mode = client::LoadMode::kOpenLoop;
  spec.workload.arrival_rate_tps = 4000;
  return spec;
}

TEST(SyncRecovery, PipelinedSyncNeedsFewerLocatorRounds) {
  // Small batches across a real gap: the serial walk pays one link round
  // trip per batch; the pipelined fan-out covers several segments per
  // round, so the laggard catches up in strictly fewer serial rounds —
  // visible as lower heal-to-caught-up latency once links cost something.
  harness::RunSpec serial = open_loop_recovery_spec(/*sync_batch=*/2);
  serial.cfg.delay = sim::milliseconds(3);  // make round trips measurable
  harness::RunSpec piped = serial;
  piped.cfg.sync_pipeline = 8;

  const auto a = harness::execute(serial);
  const auto b = harness::execute(piped);
  ASSERT_GT(a.recovery_ms, 0.0);
  ASSERT_GT(b.recovery_ms, 0.0);
  EXPECT_LT(b.recovery_ms, a.recovery_ms);
  EXPECT_TRUE(b.consistent);
  EXPECT_EQ(b.safety_violations, 0u);
  EXPECT_GT(b.sync_blocks, 0u);
}

TEST(SyncRecovery, SnapshotTransferCarriesLongOutageRecovery) {
  // A small snapshot threshold guarantees the healed laggard's gap
  // qualifies: recovery must ride the snapshot path (installed >= 1, the
  // traffic columns populated) and still converge to a consistent chain.
  harness::RunSpec spec = open_loop_recovery_spec(/*sync_batch=*/8);
  spec.cfg.snapshot_gap = 8;
  spec.cfg.snapshot_chunk = 256;
  const auto r = harness::execute(spec);
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GE(r.snapshots_installed, 1u);
  EXPECT_GT(r.snapshot_chunks, 0u);
  EXPECT_GT(r.snapshot_bytes, 0u);
  EXPECT_GT(r.recovery_ms, 0.0);
  EXPECT_EQ(r.snapshots_rejected, 0u);  // honest peers only
}

TEST(SyncRecovery, AcceleratorsAreDeterministicAcrossThreadCounts) {
  harness::RunSpec piped = open_loop_recovery_spec(2);
  piped.cfg.sync_pipeline = 8;
  piped.cfg.delay = sim::milliseconds(3);
  harness::RunSpec snap = open_loop_recovery_spec(8);
  snap.cfg.snapshot_gap = 8;
  snap.cfg.snapshot_chunk = 256;
  harness::RunSpec both = open_loop_recovery_spec(4);
  both.cfg.sync_pipeline = 2;
  both.cfg.snapshot_gap = 12;
  std::vector<harness::RunSpec> grid = {piped, snap, both};
  harness::ParallelRunner one(1);
  harness::ParallelRunner four(4);
  EXPECT_EQ(one.run(grid), four.run(grid));
}

}  // namespace
}  // namespace bamboo
