// Tests for the recovery & state-sync subsystem (sync/syncer.h): the
// batched chain-sync protocol (locator -> parent-first response), the
// outstanding-request lifecycle (dedupe, timeout, peer rotation, bounded
// retries, expiry), rejection of duplicate/stale/Byzantine responses, and
// the end-to-end recovery path through the churn engine (partition under
// ambient loss -> heal -> batched catch-up with populated sync_* /
// recovery_ms columns).

#include <gtest/gtest.h>

#include <vector>

#include "crypto/sha256.h"

#include "client/workload.h"
#include "core/churn.h"
#include "forest/block_forest.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "sim/simulator.h"
#include "sync/syncer.h"
#include "types/messages.h"

namespace bamboo {
namespace {

using forest::AddResult;
using forest::BlockForest;
using types::BlockPtr;

BlockPtr child_of(const BlockPtr& parent, types::View view) {
  types::Block::Fields f;
  f.parent_hash = parent->hash();
  f.view = view;
  f.height = parent->height() + 1;
  f.proposer = 0;
  f.justify.view = parent->view();
  f.justify.height = parent->height();
  f.justify.block_hash = parent->hash();
  return std::make_shared<const types::Block>(std::move(f));
}

/// A Syncer wired to a local forest with captured sends: the unit-test
/// harness for the state machine (no cluster, no network).
struct SyncerRig {
  struct Sent {
    types::NodeId to;
    types::MessagePtr msg;
  };

  sim::Simulator sim{7};
  BlockForest forest;
  std::vector<Sent> sent;
  sync::Syncer syncer;

  explicit SyncerRig(sync::Syncer::Settings settings, types::NodeId id = 0,
                     std::uint32_t n_replicas = 4)
      : syncer(sim, forest, settings, id, n_replicas,
               sync::Syncer::Hooks{
                   [this](types::NodeId to, types::MessagePtr msg) {
                     sent.push_back({to, std::move(msg)});
                   },
                   [this](const BlockPtr& block, types::NodeId) {
                     return forest.add(block);
                   }}) {}

  [[nodiscard]] const types::ChainRequestMsg& request_at(std::size_t i) const {
    return std::get<types::ChainRequestMsg>(*sent.at(i).msg);
  }
};

/// Genesis + a chain of `n` blocks; returns the blocks tip-last.
std::vector<BlockPtr> make_chain(std::size_t n) {
  std::vector<BlockPtr> chain;
  BlockPtr cursor = types::Block::genesis();
  for (std::size_t i = 0; i < n; ++i) {
    cursor = child_of(cursor, static_cast<types::View>(i + 1));
    chain.push_back(cursor);
  }
  return chain;
}

types::ChainResponseMsg response_of(std::vector<BlockPtr> blocks) {
  types::ChainResponseMsg resp;
  resp.blocks = std::move(blocks);
  return resp;
}

// ---------------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------------

TEST(SyncerServer, ServesBatchedRangeParentFirst) {
  SyncerRig server({/*batch=*/1});
  const auto chain = make_chain(10);
  for (const BlockPtr& b : chain) server.forest.add(b);

  types::ChainRequestMsg req;
  req.want_hash = chain[9]->hash();  // height 10
  req.committed_height = 2;          // requester holds heights 0..2
  req.batch = 4;
  server.syncer.on_request(req, 1);

  ASSERT_EQ(server.sent.size(), 1u);
  const auto& resp = std::get<types::ChainResponseMsg>(*server.sent[0].msg);
  ASSERT_EQ(resp.blocks.size(), 4u);
  // Parent-first, ending at the wanted hash.
  EXPECT_EQ(resp.blocks[0]->height(), 7u);
  EXPECT_EQ(resp.blocks[3]->hash(), chain[9]->hash());
  for (std::size_t i = 1; i < resp.blocks.size(); ++i) {
    EXPECT_EQ(resp.blocks[i]->parent_hash(), resp.blocks[i - 1]->hash());
  }
  EXPECT_EQ(server.syncer.stats().requests_served, 1u);
  EXPECT_EQ(server.syncer.stats().blocks_served, 4u);
}

TEST(SyncerServer, StopsAtTheRequestersCommittedHeight) {
  SyncerRig server({1});
  const auto chain = make_chain(5);
  for (const BlockPtr& b : chain) server.forest.add(b);

  types::ChainRequestMsg req;
  req.want_hash = chain[4]->hash();  // height 5
  req.committed_height = 3;          // only 4 and 5 are missing
  req.batch = 64;
  server.syncer.on_request(req, 2);
  ASSERT_EQ(server.sent.size(), 1u);
  const auto& resp = std::get<types::ChainResponseMsg>(*server.sent[0].msg);
  ASSERT_EQ(resp.blocks.size(), 2u);
  EXPECT_EQ(resp.blocks[0]->height(), 4u);
}

TEST(SyncerServer, UnknownWantIsSilentlyIgnored) {
  SyncerRig server({1});
  types::ChainRequestMsg req;
  req.want_hash = crypto::Sha256::hash("nowhere");
  server.syncer.on_request(req, 1);
  EXPECT_TRUE(server.sent.empty());
}

// ---------------------------------------------------------------------------
// Requester lifecycle
// ---------------------------------------------------------------------------

TEST(SyncerRequester, DedupesInFlightFetches) {
  SyncerRig rig({/*batch=*/4});
  const auto chain = make_chain(3);
  rig.syncer.request(chain[2]->hash(), 1);
  rig.syncer.request(chain[2]->hash(), 2);  // same hash, different trigger
  EXPECT_EQ(rig.sent.size(), 1u);
  EXPECT_EQ(rig.sent[0].to, 1u);
  EXPECT_EQ(rig.syncer.in_flight(), 1u);
  // The locator carries our committed height and the batch cap.
  EXPECT_EQ(rig.request_at(0).committed_height, 0u);
  EXPECT_EQ(rig.request_at(0).batch, 4u);
}

TEST(SyncerRequester, IgnoresSelfClientsAndPresentHashes) {
  SyncerRig rig({1}, /*id=*/0, /*n_replicas=*/4);
  const auto chain = make_chain(2);
  rig.forest.add(chain[0]);
  rig.syncer.request(chain[0]->hash(), 1);  // already present
  rig.syncer.request(chain[1]->hash(), 0);  // self
  rig.syncer.request(chain[1]->hash(), 4);  // client endpoint
  EXPECT_TRUE(rig.sent.empty());
}

TEST(SyncerRequester, TimeoutRotatesPastTheDeadPeerAndExpires) {
  SyncerRig rig({/*batch=*/1, /*timeout=*/sim::milliseconds(50),
                 /*retries=*/2});
  const auto chain = make_chain(1);
  rig.syncer.request(chain[0]->hash(), 2);
  ASSERT_EQ(rig.sent.size(), 1u);
  EXPECT_EQ(rig.sent[0].to, 2u);

  rig.sim.run_for(sim::milliseconds(60));  // first timeout
  ASSERT_EQ(rig.sent.size(), 2u);
  EXPECT_EQ(rig.sent[1].to, 3u);  // rotated past the dead peer

  rig.sim.run_for(sim::milliseconds(50));  // second timeout
  ASSERT_EQ(rig.sent.size(), 3u);
  EXPECT_EQ(rig.sent[2].to, 1u);  // 0 is self: skipped

  rig.sim.run_for(sim::milliseconds(50));  // retries exhausted
  EXPECT_EQ(rig.sent.size(), 3u);
  EXPECT_EQ(rig.syncer.in_flight(), 0u);  // expired, not wedged
  EXPECT_EQ(rig.syncer.stats().timeouts, 3u);
  EXPECT_EQ(rig.syncer.stats().retries, 2u);
  EXPECT_EQ(rig.syncer.stats().exhausted, 1u);

  // A later trigger starts a FRESH fetch — loss cannot wedge recovery.
  rig.syncer.request(chain[0]->hash(), 2);
  EXPECT_EQ(rig.sent.size(), 4u);
}

TEST(SyncerRequester, ResponseCancelsTheTimer) {
  SyncerRig rig({1, sim::milliseconds(50), 3});
  const auto chain = make_chain(1);
  rig.syncer.request(chain[0]->hash(), 1);
  rig.syncer.on_response(response_of({chain[0]}), 1);
  EXPECT_TRUE(rig.forest.contains(chain[0]->hash()));
  EXPECT_EQ(rig.syncer.in_flight(), 0u);
  rig.sim.run_for(sim::milliseconds(200));
  EXPECT_EQ(rig.sent.size(), 1u);  // no retry fired
  EXPECT_EQ(rig.syncer.stats().timeouts, 0u);
}

TEST(SyncerRequester, AppliesBatchAndContinuesBelowTheGap) {
  // Forest holds genesis; the gap is 1..6 and the batch is 3: the first
  // response leaves its range orphaned and the syncer walks further down
  // with a new locator to the same peer.
  SyncerRig rig({/*batch=*/3, sim::milliseconds(100), 3});
  const auto chain = make_chain(6);
  rig.syncer.request(chain[5]->hash(), 2);
  ASSERT_EQ(rig.sent.size(), 1u);

  rig.syncer.on_response(response_of({chain[3], chain[4], chain[5]}), 2);
  EXPECT_EQ(rig.forest.orphan_count(), 3u);  // buffered, not connected
  ASSERT_EQ(rig.sent.size(), 2u);            // continuation fetch
  EXPECT_EQ(rig.sent[1].to, 2u);
  EXPECT_EQ(rig.request_at(1).want_hash, chain[2]->hash());

  rig.syncer.on_response(response_of({chain[0], chain[1], chain[2]}), 2);
  // The deeper range connects and flushes the buffered orphans.
  EXPECT_EQ(rig.forest.orphan_count(), 0u);
  for (const BlockPtr& b : chain) EXPECT_TRUE(rig.forest.contains(b->hash()));
  EXPECT_EQ(rig.syncer.stats().blocks_applied, 6u);
  EXPECT_EQ(rig.syncer.in_flight(), 0u);
  EXPECT_GT(rig.syncer.stats().bytes_received, 0u);
}

// ---------------------------------------------------------------------------
// Byzantine / stale responses
// ---------------------------------------------------------------------------

TEST(SyncerRejects, DuplicateAndStaleResponses) {
  SyncerRig rig({1});
  const auto chain = make_chain(1);
  rig.syncer.request(chain[0]->hash(), 1);
  rig.syncer.on_response(response_of({chain[0]}), 1);
  EXPECT_EQ(rig.syncer.stats().responses_applied, 1u);

  // A duplicate of a satisfied fetch (e.g. from a slower peer) is stale.
  rig.syncer.on_response(response_of({chain[0]}), 2);
  EXPECT_EQ(rig.syncer.stats().responses_rejected, 1u);
  EXPECT_EQ(rig.syncer.stats().responses_applied, 1u);
}

TEST(SyncerRejects, UnrequestedBlocksNeverTouchTheForest) {
  SyncerRig rig({1});
  const auto chain = make_chain(3);
  // Nothing was requested: a pushy Byzantine peer is ignored wholesale.
  rig.syncer.on_response(response_of({chain[0], chain[1], chain[2]}), 3);
  EXPECT_EQ(rig.syncer.stats().responses_rejected, 1u);
  EXPECT_EQ(rig.forest.size(), 1u);  // genesis only
  EXPECT_EQ(rig.forest.orphan_count(), 0u);
}

TEST(SyncerRejects, UnchainedBatchIsRejectedWholesale) {
  SyncerRig rig({4});
  const auto chain = make_chain(4);
  rig.syncer.request(chain[3]->hash(), 1);
  // blocks[1] does not extend blocks[0]: the batch is not one chain.
  rig.syncer.on_response(response_of({chain[0], chain[2], chain[3]}), 1);
  EXPECT_EQ(rig.syncer.stats().responses_rejected, 1u);
  EXPECT_EQ(rig.forest.size(), 1u);
  EXPECT_EQ(rig.forest.orphan_count(), 0u);
  // The fetch entry survives for the honest retry.
  EXPECT_EQ(rig.syncer.in_flight(), 1u);
}

TEST(SyncerRejects, ResponsesBeyondTheRequestedBatchCap) {
  // An honest responder never exceeds the locator's batch cap; a
  // Byzantine one shipping a huge (validly chained) range is rejected
  // before any of it touches the forest.
  SyncerRig rig({/*batch=*/2});
  const auto chain = make_chain(5);
  rig.syncer.request(chain[4]->hash(), 1);
  rig.syncer.on_response(
      response_of({chain[0], chain[1], chain[2], chain[3], chain[4]}), 1);
  EXPECT_EQ(rig.syncer.stats().responses_rejected, 1u);
  EXPECT_EQ(rig.forest.size(), 1u);  // genesis only
  EXPECT_EQ(rig.syncer.in_flight(), 1u);
}

TEST(SyncerRejects, InvalidBlockAbortsTheRestOfTheBatch) {
  SyncerRig rig({4});
  const auto good = make_chain(1);

  // A height-lying child: parent links to genesis but height skips ahead.
  types::Block::Fields f;
  f.parent_hash = types::Block::genesis()->hash();
  f.view = 1;
  f.height = 7;  // must be 1
  f.proposer = 0;
  const auto liar = std::make_shared<const types::Block>(std::move(f));
  const auto liar_child = child_of(liar, 2);

  rig.syncer.request(liar_child->hash(), 1);
  rig.syncer.on_response(response_of({liar, liar_child}), 1);
  EXPECT_EQ(rig.syncer.stats().blocks_rejected, 1u);
  EXPECT_FALSE(rig.forest.contains(liar->hash()));
  EXPECT_FALSE(rig.forest.contains(liar_child->hash()));
  EXPECT_EQ(rig.syncer.in_flight(), 0u);
  (void)good;
}

TEST(SyncerRequester, StopCancelsEverything) {
  SyncerRig rig({1, sim::milliseconds(20), 5});
  const auto chain = make_chain(2);
  rig.syncer.request(chain[0]->hash(), 1);
  rig.syncer.request(chain[1]->hash(), 2);
  rig.syncer.stop();
  EXPECT_EQ(rig.syncer.in_flight(), 0u);
  rig.sim.run_for(sim::milliseconds(200));
  EXPECT_EQ(rig.sent.size(), 2u);  // no timer ever fired a retry
}

// ---------------------------------------------------------------------------
// End-to-end recovery through the churn engine
// ---------------------------------------------------------------------------

harness::RunSpec recovery_spec(std::uint32_t sync_batch) {
  harness::RunSpec spec;
  spec.cfg.n_replicas = 4;
  spec.cfg.bsize = 100;
  spec.cfg.memsize = 200000;
  spec.cfg.seed = 33;
  spec.cfg.link_loss = 0.02;  // ambient loss: retries must carry recovery
  spec.cfg.sync_batch = sync_batch;
  spec.cfg.sync_timeout = sim::milliseconds(80);
  spec.cfg.sync_retries = 4;
  // 3|1: the majority keeps its quorum and commits through the window,
  // replica 3 misses all of it and must range-fetch it back after heal.
  spec.cfg.churn = "partition@0.2s:groups=0-1-2|3;heal@0.6s";
  spec.workload.mode = client::LoadMode::kClosedLoop;
  spec.workload.concurrency = 64;
  spec.opts.warmup_s = 0.1;
  spec.opts.measure_s = 1.1;
  return spec;
}

TEST(SyncRecovery, PartitionedMinorityCatchesUpViaBatchedSync) {
  // The ISSUE's end-to-end bar: a 2|2 partition under ambient link loss,
  // healed mid-run — the minority misses the majority's window and must
  // fetch it back; sync_* and recovery_ms must be populated.
  const auto r = harness::execute(recovery_spec(/*sync_batch=*/6));
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GT(r.blocks_committed, 0u);
  EXPECT_GT(r.sync_requests, 0u);
  EXPECT_GT(r.sync_blocks, 0u);
  EXPECT_GT(r.sync_bytes, 0u);
  // One heal event with laggards -> one recovery measurement, bounded by
  // the post-heal window.
  EXPECT_GT(r.recovery_ms, 0.0);
  EXPECT_LE(r.recovery_ms, 700.0);
}

TEST(SyncRecovery, RecoveryColumnsReachPersistedRecords) {
  const auto spec = recovery_spec(6);
  const auto result = harness::execute(spec);
  const auto rec = harness::report::make_run_record("t", "a", "s", 0, spec,
                                                    0, 1, result);
  const std::string row = harness::report::csv_row(rec);
  const auto json = harness::report::to_json(rec);
  const auto back = harness::report::record_from_json(json);
  EXPECT_EQ(back.result.sync_requests, result.sync_requests);
  EXPECT_EQ(back.result.sync_blocks, result.sync_blocks);
  EXPECT_EQ(back.result.sync_bytes, result.sync_bytes);
  EXPECT_DOUBLE_EQ(back.result.recovery_ms, result.recovery_ms);
  EXPECT_EQ(back.prov.sync_batch, 6u);
  EXPECT_EQ(back.prov.sync_retries, 4u);
  EXPECT_DOUBLE_EQ(back.prov.sync_timeout_ms, 80.0);
  // The CSV row has one cell per column.
  std::size_t cells = 1;
  bool quoted = false;
  for (char c : row) {
    if (c == '"') quoted = !quoted;
    if (c == ',' && !quoted) ++cells;
  }
  EXPECT_EQ(cells, harness::report::csv_columns().size());
}

TEST(SyncRecovery, DeterministicAcrossThreadCountsAndBatches) {
  std::vector<harness::RunSpec> grid = {recovery_spec(1), recovery_spec(4),
                                        recovery_spec(16)};
  harness::ParallelRunner one(1);
  harness::ParallelRunner four(4);
  const auto a = one.run(grid);
  const auto b = four.run(grid);
  EXPECT_EQ(a, b);
}

TEST(SyncRecovery, CrashedPeerCannotWedgeRecovery) {
  // Replica 3 misses a window alone, then a majority peer dies right at
  // the heal: fetches routed at the corpse must rotate, not stall.
  harness::RunSpec spec = recovery_spec(4);
  spec.cfg.churn =
      "partition@0.2s:groups=0-1-2|3;heal@0.6s;crash@0.62s:replica=1";
  const auto r = harness::execute(spec);
  EXPECT_TRUE(r.consistent);
  EXPECT_GT(r.sync_blocks, 0u);
  EXPECT_GT(r.recovery_ms, 0.0);
}

TEST(SyncRecovery, LaggardCrashingRightAfterHealAbandonsTheEvent) {
  // The only laggard dies 10 ms after the heal: nothing ever catches up,
  // so the event is unmeasurable and must NOT report a tiny recovery_ms.
  harness::RunSpec spec = recovery_spec(4);
  spec.cfg.churn =
      "partition@0.2s:groups=0-1-2|3;heal@0.6s;crash@0.61s:replica=3";
  const auto r = harness::execute(spec);
  EXPECT_TRUE(r.consistent);
  EXPECT_DOUBLE_EQ(r.recovery_ms, 0.0);
}

TEST(SyncRecovery, EmptyChurnLeavesRecoveryColumnsZero) {
  harness::RunSpec spec = recovery_spec(1);
  spec.cfg.churn.clear();
  spec.cfg.link_loss = 0;
  const auto r = harness::execute(spec);
  EXPECT_DOUBLE_EQ(r.recovery_ms, 0.0);
}

}  // namespace
}  // namespace bamboo
