// Tests for the harness::report subsystem: golden-file byte-for-byte checks
// of the CSV and JSON emitters (fixtures under tests/golden/; regenerate
// with BAMBOO_UPDATE_GOLDEN=1), lossless JSON round-trip, ArtifactWriter
// directory layout + manifest, and the shard-merge fold.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/report.h"
#include "util/json.h"

#ifndef BAMBOO_GOLDEN_DIR
#define BAMBOO_GOLDEN_DIR "tests/golden"
#endif

namespace bamboo {
namespace {

namespace fs = std::filesystem;
using harness::report::Record;

harness::RunSpec fixture_spec() {
  harness::RunSpec spec;
  spec.cfg.protocol = "hotstuff";
  spec.cfg.n_replicas = 8;
  spec.cfg.byz_no = 2;
  spec.cfg.strategy = "forking";
  spec.cfg.election = "roundrobin";
  spec.cfg.bsize = 400;
  spec.cfg.psize = 128;
  spec.cfg.memsize = 200000;
  spec.cfg.delay = sim::milliseconds(5);
  spec.cfg.delay_jitter = sim::milliseconds(1);
  spec.cfg.timeout = sim::milliseconds(100);
  spec.cfg.seed = 42;
  spec.workload.concurrency = 1024;
  spec.workload.arrival_rate_tps = 1500.5;
  spec.opts.warmup_s = 0.25;
  spec.opts.measure_s = 1.5;
  spec.offered = 1024;
  return spec;
}

harness::RunResult fixture_result(int rep) {
  harness::RunResult r;
  const double shift = rep;
  r.throughput_tps = 72123.125 + 100 * shift;
  r.latency_ms_mean = 56.0625 + shift;
  r.latency_ms_p50 = 54.5 + shift;
  r.latency_ms_p99 = 91.75 + shift;
  r.cgr_per_view = 0.875 + 0.01 * shift;
  r.cgr_per_block = 0.9375;
  r.block_interval = 3.25 - 0.125 * shift;
  r.measured_s = 1.5;
  r.latency_samples = 108000 + 10 * static_cast<std::uint64_t>(rep);
  r.views = 270;
  r.blocks_committed = 268;
  r.blocks_received = 271;
  r.blocks_forked = 3;
  r.timeouts = 1;
  r.rejected = 7;
  r.net_bytes = 123456789 + static_cast<std::uint64_t>(rep);
  r.consistent = true;
  r.safety_violations = 0;
  return r;
}

/// The fixed record set both golden fixtures serialize: three run rows plus
/// the aggregate folded from them.
std::vector<Record> fixture_records() {
  const harness::RunSpec spec = fixture_spec();
  std::vector<Record> records;
  std::vector<harness::RunResult> results;
  for (int rep = 0; rep < 3; ++rep) {
    results.push_back(fixture_result(rep));
    records.push_back(harness::report::make_run_record(
        "fig12_scalability", "fig12_scalability", "HS", 4, spec,
        static_cast<std::uint32_t>(rep), 3, results.back()));
  }
  records.push_back(harness::report::make_aggregate_record(
      "fig12_scalability", "fig12_scalability", "HS", 4, spec, results));
  return records;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << path
                  << " (regenerate with BAMBOO_UPDATE_GOLDEN=1)";
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

void check_golden(const std::string& name, const std::string& serialized) {
  const fs::path path = fs::path(BAMBOO_GOLDEN_DIR) / name;
  if (std::getenv("BAMBOO_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << serialized;
    GTEST_SKIP() << "updated " << path;
  }
  EXPECT_EQ(serialized, read_file(path))
      << name << " drifted from the checked-in fixture; if the schema "
      << "change is intentional, regenerate with BAMBOO_UPDATE_GOLDEN=1";
}

// ---------------------------------------------------------------------------
// Golden files
// ---------------------------------------------------------------------------

TEST(ReportGolden, CsvEmitterMatchesFixtureByteForByte) {
  harness::report::CsvSink sink;
  for (const Record& r : fixture_records()) sink.add(r);
  check_golden("report.csv", sink.serialize());
}

TEST(ReportGolden, JsonEmitterMatchesFixtureByteForByte) {
  harness::report::JsonSink sink;
  for (const Record& r : fixture_records()) sink.add(r);
  check_golden("report.json", sink.serialize());
}

// ---------------------------------------------------------------------------
// Schema / round-trip
// ---------------------------------------------------------------------------

TEST(ReportSchema, CsvRowHasOneCellPerColumn) {
  const std::string row =
      harness::report::csv_row(fixture_records().front());
  // Fixture values contain no embedded commas, so counting is exact.
  const std::size_t cells =
      static_cast<std::size_t>(std::count(row.begin(), row.end(), ',')) + 1;
  EXPECT_EQ(cells, harness::report::csv_columns().size());
  EXPECT_EQ(harness::report::csv_header(),
            [] {
              std::string joined;
              for (const auto& c : harness::report::csv_columns()) {
                if (!joined.empty()) joined += ',';
                joined += c;
              }
              return joined;
            }());
}

TEST(ReportSchema, JsonRoundTripIsLossless) {
  const std::vector<Record> records = fixture_records();
  harness::report::JsonSink sink;
  for (const Record& r : records) sink.add(r);
  const auto reparsed =
      harness::report::records_from_json_text(sink.serialize());
  ASSERT_EQ(reparsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(reparsed[i], records[i]) << "record " << i;
  }
}

TEST(ReportSchema, SingleRecordJsonRoundTrip) {
  const Record original = fixture_records().back();  // the aggregate row
  const util::Json j =
      util::Json::parse(harness::report::to_json(original).dump());
  EXPECT_EQ(harness::report::record_from_json(j), original);
}

TEST(ReportSchema, FullWidthSeedsRoundTripThroughJson) {
  // Seeds above 2^53 are not exactly representable as doubles; the JSON
  // emitter writes them as decimal strings so nothing is lost.
  Record r = fixture_records().front();
  r.prov.base_seed = 9007199254740993ull;  // 2^53 + 1
  r.prov.seed = r.prov.base_seed + 1;
  const util::Json j = util::Json::parse(harness::report::to_json(r).dump());
  EXPECT_EQ(harness::report::record_from_json(j), r);
}

TEST(ReportSchema, AggregateRowCarriesCis) {
  const Record agg = fixture_records().back();
  EXPECT_EQ(agg.kind, "aggregate");
  EXPECT_EQ(agg.reps, 3u);
  EXPECT_GT(agg.ci.throughput_tps, 0.0);
  EXPECT_GT(agg.ci.latency_ms_mean, 0.0);
  EXPECT_EQ(agg.prov.seed, agg.prov.base_seed);
  // Run rows carry the shifted per-rep seed.
  const Record run1 = fixture_records()[1];
  EXPECT_EQ(run1.prov.seed, run1.prov.base_seed + 1);
  EXPECT_EQ(run1.ci, harness::report::CiSet{});
}

TEST(ReportSchema, CsvEscapesSeparatorsAndQuotes) {
  Record r = fixture_records().front();
  r.series = "odd,\"series\"";
  const std::string row = harness::report::csv_row(r);
  EXPECT_NE(row.find("\"odd,\"\"series\"\"\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// ArtifactWriter
// ---------------------------------------------------------------------------

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("bamboo_report_test_" + std::to_string(::getpid()));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

TEST(ArtifactWriter, WritesOneFilePerArtifactAndFormatPlusManifest) {
  TempDir tmp;
  harness::report::ArtifactWriter writer(tmp.path.string(), "fig12",
                                         {"csv", "json"});
  for (const Record& r : fixture_records()) writer.add("fig12", r);
  writer.add_table("fig12.timeline", {"t_s", "ktx_s"},
                   {{"0.0", "71.5"}, {"0.5", "72.0"}});
  const auto files = writer.finish();

  // 2 formats x 2 artifacts + manifest.
  ASSERT_EQ(files.size(), 5u);
  EXPECT_TRUE(fs::exists(tmp.path / "fig12.csv"));
  EXPECT_TRUE(fs::exists(tmp.path / "fig12.json"));
  EXPECT_TRUE(fs::exists(tmp.path / "fig12.timeline.csv"));
  EXPECT_TRUE(fs::exists(tmp.path / "fig12.timeline.json"));
  EXPECT_TRUE(fs::exists(tmp.path / "manifest.json"));

  const util::Json manifest =
      util::Json::parse(read_file(tmp.path / "manifest.json"));
  EXPECT_EQ(manifest.get_string("bench", ""), "fig12");
  const util::Json* artifacts = manifest.find("artifacts");
  ASSERT_NE(artifacts, nullptr);
  ASSERT_EQ(artifacts->as_array().size(), 2u);
  EXPECT_EQ(artifacts->as_array()[0].get_string("name", ""), "fig12");

  // Records re-read from disk are the records that were written.
  const auto reparsed = harness::report::records_from_json_text(
      read_file(tmp.path / "fig12.json"));
  EXPECT_EQ(reparsed, fixture_records());
}

TEST(ArtifactWriter, ShardTagsEveryFilename) {
  TempDir tmp;
  harness::report::ArtifactWriter writer(tmp.path.string(), "fig12",
                                         {"json"}, harness::Shard{1, 3});
  writer.add("fig12", fixture_records().front());
  writer.finish();
  EXPECT_TRUE(fs::exists(tmp.path / "fig12.shard2of3.json"));
  EXPECT_TRUE(fs::exists(tmp.path / "manifest.shard2of3.json"));
  EXPECT_FALSE(fs::exists(tmp.path / "fig12.json"));
}

TEST(ArtifactWriter, DisabledWriterIsANoOp) {
  harness::report::ArtifactWriter writer("", "fig12", {"csv", "json"});
  EXPECT_FALSE(writer.enabled());
  writer.add("fig12", fixture_records().front());
  EXPECT_TRUE(writer.finish().empty());
}

// ---------------------------------------------------------------------------
// Shard merge
// ---------------------------------------------------------------------------

TEST(MergeRecords, RegeneratesExactlyTheUnshardedRows) {
  // Unsharded emission: per spec, run rows then the aggregate row.
  const harness::RunSpec spec = fixture_spec();
  std::vector<Record> unsharded;
  std::vector<Record> shards[3];
  for (std::uint32_t s = 0; s < 2; ++s) {
    std::vector<harness::RunResult> results;
    for (std::uint32_t rep = 0; rep < 3; ++rep) {
      results.push_back(fixture_result(static_cast<int>(s * 3 + rep)));
      const Record run = harness::report::make_run_record(
          "fig12", "fig12", "HS", s, spec, rep, 3, results.back());
      unsharded.push_back(run);
      // Deal job s*3+rep to shard (job % 3), like run_repeated_grid.
      shards[(s * 3 + rep) % 3].push_back(run);
    }
    unsharded.push_back(harness::report::make_aggregate_record(
        "fig12", "fig12", "HS", s, spec, results));
  }

  // Union the shard files in arbitrary order; merge must reorder and
  // regenerate the aggregates bit-for-bit.
  std::vector<Record> rows;
  for (int i = 2; i >= 0; --i) {
    rows.insert(rows.end(), shards[i].begin(), shards[i].end());
  }
  const std::vector<Record> merged = harness::report::merge_records(rows);
  ASSERT_EQ(merged.size(), unsharded.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i], unsharded[i]) << "row " << i;
  }
}

TEST(MergeRecords, DropsStaleAggregateRowsAndRefolds) {
  std::vector<Record> rows = fixture_records();  // 3 runs + 1 aggregate
  Record stale = rows.back();
  stale.result.throughput_tps = -1;  // lies; must be recomputed, not copied
  rows.back() = stale;
  const auto merged = harness::report::merge_records(rows);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged.back(), fixture_records().back());
}

TEST(MergeRecords, ThrowsOnDuplicateRep) {
  std::vector<Record> rows = fixture_records();
  rows.push_back(rows.front());
  EXPECT_THROW(harness::report::merge_records(rows), std::invalid_argument);
}

TEST(MergeRecords, ThrowsOnMissingRep) {
  std::vector<Record> rows = fixture_records();
  rows.erase(rows.begin() + 1);  // drop rep 1 of 3
  EXPECT_THROW(harness::report::merge_records(rows), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Timeline records (Fig. 15 buckets as flat rows)
// ---------------------------------------------------------------------------

std::vector<Record> fixture_timeline(std::uint32_t spec_index) {
  harness::RunSpec spec = fixture_spec();
  spec.timeline_bucket_s = 0.5;
  harness::RunOutput out;
  out.bucket_start_s = {0.0, 0.5, 1.0};
  out.tx_per_s = {71500.0, 72000.0 + spec_index, 70250.0};
  return harness::report::make_timeline_records(
      "fig15", "fig15_timeline", "t10-HS", spec_index, spec, out);
}

TEST(TimelineRecords, CarryBucketsAsFlatRows) {
  const std::vector<Record> rows = fixture_timeline(2);
  ASSERT_EQ(rows.size(), 3u);
  for (std::uint32_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].kind, "timeline");
    EXPECT_EQ(rows[i].rep, i);  // bucket index
    EXPECT_EQ(rows[i].spec_index, 2u);
    EXPECT_DOUBLE_EQ(rows[i].prov.offered, 0.5 * i);  // bucket start
    EXPECT_DOUBLE_EQ(rows[i].result.measured_s, 0.5);  // bucket width
  }
  EXPECT_DOUBLE_EQ(rows[1].result.throughput_tps, 72002.0);
  // Lossless through the JSON path like any other record.
  const util::Json j =
      util::Json::parse(harness::report::to_json(rows[1]).dump());
  EXPECT_EQ(harness::report::record_from_json(j), rows[1]);
}

TEST(MergeRecords, TimelineRowsPassThroughInBucketOrder) {
  // Two specs' timelines arriving from different shards, interleaved and
  // out of order, alongside a run/aggregate group in another artifact.
  std::vector<Record> rows = fixture_records();
  const std::vector<Record> t0 = fixture_timeline(0);
  const std::vector<Record> t1 = fixture_timeline(1);
  rows.insert(rows.end(), {t1[2], t0[1], t1[0], t0[0], t1[1], t0[2]});

  const std::vector<Record> merged = harness::report::merge_records(rows);
  // 3 runs + regenerated aggregate + 6 timeline rows.
  ASSERT_EQ(merged.size(), 10u);
  std::vector<Record> timeline;
  for (const Record& r : merged) {
    if (r.kind == "timeline") timeline.push_back(r);
  }
  const std::vector<Record> expected = {t0[0], t0[1], t0[2],
                                        t1[0], t1[1], t1[2]};
  EXPECT_EQ(timeline, expected);
}

TEST(MergeRecords, ThrowsOnDuplicateTimelineBucket) {
  std::vector<Record> rows = fixture_timeline(0);
  rows.push_back(rows[1]);
  EXPECT_THROW(harness::report::merge_records(rows), std::invalid_argument);
}

}  // namespace
}  // namespace bamboo
