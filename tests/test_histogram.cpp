// Tests for the log-scale latency histogram (util/histogram.h): bucket
// index math at the octave boundaries, exact quantiles on the sub-64us
// exact range, merge associativity (the property that makes sharded
// aggregates bit-identical to unsharded runs), and the sparse wire codec.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/histogram.h"

namespace bamboo::util {
namespace {

// ---------------------------------------------------------------------------
// Bucket index math
// ---------------------------------------------------------------------------

TEST(Histogram, SubSixtyFourMicrosecondsIsExact) {
  // The first 64 buckets are width-1: every value below 64 us round-trips.
  for (std::uint64_t us = 0; us < 64; ++us) {
    EXPECT_EQ(LatencyHistogram::index_of(us), us);
    EXPECT_EQ(LatencyHistogram::value_of(static_cast<std::uint32_t>(us)), us);
  }
}

TEST(Histogram, FirstOctaveIsAlsoExact) {
  // 64..127 us: the first log octave's 64 sub-buckets are still width-1.
  for (std::uint64_t us = 64; us < 128; ++us) {
    const std::uint32_t index = LatencyHistogram::index_of(us);
    EXPECT_EQ(index, us);
    EXPECT_EQ(LatencyHistogram::value_of(index), us);
  }
}

TEST(Histogram, IndexIsMonotoneAcrossOctaveBoundaries) {
  std::uint32_t prev = LatencyHistogram::index_of(0);
  for (std::uint64_t us = 1; us < 1 << 14; ++us) {
    const std::uint32_t index = LatencyHistogram::index_of(us);
    EXPECT_GE(index, prev) << "non-monotone at " << us << " us";
    // The bucket's representative value never exceeds the member.
    EXPECT_LE(LatencyHistogram::value_of(index), us);
    prev = index;
  }
}

TEST(Histogram, RelativeErrorBoundedBySubBucketWidth) {
  // Log-linear bucketing: representative error < 1/64 of the value.
  for (std::uint64_t us : {130u, 1000u, 4097u, 65535u, 1000000u}) {
    const std::uint64_t rep =
        LatencyHistogram::value_of(LatencyHistogram::index_of(us));
    EXPECT_LE(rep, us);
    EXPECT_LT(us - rep, us / 64 + 1);
  }
}

// ---------------------------------------------------------------------------
// Quantiles
// ---------------------------------------------------------------------------

TEST(Histogram, ExactQuantilesOnExactRange) {
  // 1..100 us: all in the exact range, so quantiles are exact order
  // statistics (rank = ceil(q * n)).
  LatencyHistogram h;
  for (int us = 1; us <= 100; ++us) h.add(us / 1000.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 0.050);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.099);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 0.100);
  EXPECT_DOUBLE_EQ(h.quantile(0.01), 0.001);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.100);
}

TEST(Histogram, QuantileOfSingleValue) {
  LatencyHistogram h;
  h.add(0.042);  // 42 us
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 0.042);
  }
}

TEST(Histogram, NegativeLatencyClampsToZeroBucket) {
  LatencyHistogram h;
  h.add(-1.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// Merge: associativity and shard bit-identity
// ---------------------------------------------------------------------------

std::vector<double> sample_latencies() {
  std::vector<double> ms;
  for (int i = 1; i <= 500; ++i) ms.push_back(0.37 * i);
  ms.push_back(12345.678);
  ms.push_back(0.0001);
  return ms;
}

TEST(Histogram, MergeMatchesSingleHistogram) {
  const auto ms = sample_latencies();
  LatencyHistogram whole;
  for (double v : ms) whole.add(v);

  // Any shard split merges back to the identical histogram.
  for (std::size_t shards : {2u, 3u, 7u}) {
    std::vector<LatencyHistogram> parts(shards);
    for (std::size_t i = 0; i < ms.size(); ++i) parts[i % shards].add(ms[i]);
    LatencyHistogram merged;
    for (const auto& p : parts) merged.merge(p);
    EXPECT_EQ(merged, whole);
    EXPECT_EQ(merged.encode(), whole.encode());
  }
}

TEST(Histogram, MergeIsAssociative) {
  LatencyHistogram a, b, c;
  for (int i = 0; i < 50; ++i) a.add(0.1 * i);
  for (int i = 0; i < 50; ++i) b.add(3.0 + 0.5 * i);
  for (int i = 0; i < 50; ++i) c.add(100.0 * i);

  LatencyHistogram ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  LatencyHistogram bc = b;
  bc.merge(c);
  LatencyHistogram a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c.encode(), a_bc.encode());
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(Histogram, EncodeDecodeRoundTrips) {
  LatencyHistogram h;
  for (double v : sample_latencies()) h.add(v);
  const LatencyHistogram back = LatencyHistogram::decode(h.encode());
  EXPECT_EQ(back, h);
  EXPECT_EQ(back.count(), h.count());
  EXPECT_DOUBLE_EQ(back.quantile(0.999), h.quantile(0.999));
}

TEST(Histogram, EmptyEncodesToEmptyString) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.encode(), "");
  EXPECT_TRUE(LatencyHistogram::decode("").empty());
}

TEST(Histogram, DecodeRejectsMalformedInput) {
  EXPECT_THROW(LatencyHistogram::decode("abc"), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram::decode("1:"), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram::decode(":5"), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram::decode("1:0"), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram::decode("1:2;x:3"), std::invalid_argument);
}

}  // namespace
}  // namespace bamboo::util
