// Tests for the analytic model (§V): order statistics against Monte-Carlo
// and known values, M/D/1 behaviour, per-protocol structure.

#include <gtest/gtest.h>

#include <cmath>

#include "model/order_stats.h"
#include "model/perf_model.h"
#include "util/rng.h"

namespace bamboo {
namespace {

TEST(OrderStats, MedianOfOddSampleIsZero) {
  // E[X_(2:3)] of standard normals = 0 by symmetry.
  EXPECT_NEAR(model::normal_order_statistic(2, 3), 0.0, 1e-6);
  EXPECT_NEAR(model::normal_order_statistic(3, 5), 0.0, 1e-6);
}

TEST(OrderStats, KnownTabulatedValues) {
  // Classic tabulated expectations (Teichroew 1956): E[max of 2] = 1/sqrt(pi),
  // E[max of 3] ~ 0.84628, E[max of 5] ~ 1.16296.
  EXPECT_NEAR(model::normal_order_statistic(2, 2), 0.5641895835, 1e-6);
  EXPECT_NEAR(model::normal_order_statistic(3, 3), 0.8462843753, 1e-6);
  EXPECT_NEAR(model::normal_order_statistic(5, 5), 1.1629644736, 1e-6);
}

TEST(OrderStats, SymmetryMinMax) {
  EXPECT_NEAR(model::normal_order_statistic(1, 4),
              -model::normal_order_statistic(4, 4), 1e-9);
}

TEST(OrderStats, MonotonicInK) {
  double prev = -1e9;
  for (std::uint32_t k = 1; k <= 7; ++k) {
    const double v = model::normal_order_statistic(k, 7);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(OrderStats, ScalesWithMeanAndStddev) {
  const double base = model::normal_order_statistic(3, 4);
  EXPECT_NEAR(model::normal_order_statistic(3, 4, 10.0, 2.0),
              10.0 + 2.0 * base, 1e-9);
}

TEST(OrderStats, MatchesMonteCarlo) {
  util::Rng rng(5);
  for (const auto& [k, n] : {std::pair{2u, 3u}, {5u, 7u}, {21u, 31u}}) {
    const double exact = model::normal_order_statistic(k, n, 1.0, 0.25);
    const double mc =
        model::normal_order_statistic_mc(k, n, 1.0, 0.25, 200000, rng);
    EXPECT_NEAR(exact, mc, 0.01) << "k=" << k << " n=" << n;
  }
}

TEST(OrderStats, RejectsBadIndices) {
  EXPECT_THROW(static_cast<void>(model::normal_order_statistic(0, 3)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(model::normal_order_statistic(4, 3)),
               std::invalid_argument);
}

TEST(QuorumDelay, MatchesPaperFormula) {
  // N=4: the (ceil(8/3)-1) = 2nd order statistic of 3 delays.
  const double expected = model::normal_order_statistic(2, 3, 1.0, 0.1);
  EXPECT_NEAR(model::quorum_delay(4, 1.0, 0.1), expected, 1e-9);
  // Grows with cluster size (later order statistic of more draws).
  EXPECT_GT(model::quorum_delay(32, 1.0, 0.1),
            model::quorum_delay(4, 1.0, 0.1));
}

class PerfModelTest : public ::testing::Test {
 protected:
  core::Config base_cfg() {
    core::Config cfg;
    cfg.n_replicas = 4;
    cfg.bsize = 400;
    return cfg;
  }
};

TEST_F(PerfModelTest, CommitLatencyOrdering) {
  // t_commit: HS = 2*t_s; 2CHS and SL = t_s (§V-C3, §V-D).
  const model::PerfModel hs(base_cfg(), "hotstuff");
  const model::PerfModel chs(base_cfg(), "2chs");
  const model::PerfModel sl(base_cfg(), "streamlet");
  EXPECT_NEAR(hs.t_commit_ms(), 2.0 * hs.t_s_ms(), 1e-9);
  EXPECT_NEAR(chs.t_commit_ms(), chs.t_s_ms(), 1e-9);
  EXPECT_NEAR(sl.t_commit_ms(), sl.t_s_ms(), 1e-9);
  // Same t_s across HS/2CHS (identical view structure).
  EXPECT_NEAR(hs.t_s_ms(), chs.t_s_ms(), 1e-9);
  // HotStuff therefore predicts strictly higher latency at equal load.
  EXPECT_GT(hs.latency_ms(10000), chs.latency_ms(10000));
}

TEST_F(PerfModelTest, LatencyMonotonicInLoad) {
  const model::PerfModel pm(base_cfg(), "hotstuff");
  double prev = 0;
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double lat = pm.latency_ms(frac * pm.saturation_tps());
    EXPECT_GT(lat, prev);
    prev = lat;
  }
}

TEST_F(PerfModelTest, DivergesAtSaturation) {
  const model::PerfModel pm(base_cfg(), "hotstuff");
  EXPECT_TRUE(std::isinf(pm.w_q_ms(pm.saturation_tps() * 1.01)));
  EXPECT_TRUE(std::isinf(pm.latency_ms(pm.saturation_tps() * 1.5)));
  EXPECT_LT(pm.w_q_ms(pm.saturation_tps() * 0.5), 1e6);
}

TEST_F(PerfModelTest, BiggerBlocksRaiseSaturation) {
  auto cfg = base_cfg();
  cfg.bsize = 100;
  const model::PerfModel small(cfg, "hotstuff");
  cfg.bsize = 400;
  const model::PerfModel large(cfg, "hotstuff");
  EXPECT_GT(large.saturation_tps(), small.saturation_tps());
}

TEST_F(PerfModelTest, PayloadLowersSaturation) {
  auto cfg = base_cfg();
  const model::PerfModel p0(cfg, "hotstuff");
  cfg.psize = 1024;
  const model::PerfModel p1024(cfg, "hotstuff");
  EXPECT_LT(p1024.saturation_tps(), p0.saturation_tps());
  EXPECT_GT(p1024.t_nic_block_ms(), p0.t_nic_block_ms());
}

TEST_F(PerfModelTest, StreamletPaysForEchoes) {
  const model::PerfModel hs(base_cfg(), "hotstuff");
  const model::PerfModel sl(base_cfg(), "streamlet");
  EXPECT_LT(sl.saturation_tps(), hs.saturation_tps());
}

TEST_F(PerfModelTest, AddedRttRaisesLatencyFloor) {
  auto cfg = base_cfg();
  const model::PerfModel fast(cfg, "hotstuff");
  cfg.rtt_mean = sim::milliseconds(11);  // d5: +5ms each way on the RTT
  const model::PerfModel slow(cfg, "hotstuff");
  EXPECT_GT(slow.latency_ms(1000), fast.latency_ms(1000) + 5.0);
}

TEST_F(PerfModelTest, MoreReplicasMoreTurnWait) {
  auto cfg = base_cfg();
  const model::PerfModel n4(cfg, "hotstuff");
  cfg.n_replicas = 32;
  const model::PerfModel n32(cfg, "hotstuff");
  EXPECT_GT(n32.turn_wait_ms(), n4.turn_wait_ms());
  EXPECT_LT(n32.saturation_tps(), n4.saturation_tps());
}

}  // namespace
}  // namespace bamboo
