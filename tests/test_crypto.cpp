// SHA-256 against NIST/FIPS 180-4 test vectors, HMAC-SHA256 against RFC
// 4231, and the simulated signature scheme.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "util/hex.h"

namespace bamboo {
namespace {

std::string hex_of(const crypto::Digest& d) { return crypto::to_hex(d); }

// ---------------------------------------------------------------------------
// SHA-256 vectors
// ---------------------------------------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(
      hex_of(crypto::Sha256::hash("")),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(
      hex_of(crypto::Sha256::hash("abc")),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      hex_of(crypto::Sha256::hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, LongerVector) {
  EXPECT_EQ(
      hex_of(crypto::Sha256::hash(
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
          "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256, MillionAs) {
  crypto::Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(
      hex_of(h.finish()),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  crypto::Sha256 h;
  for (char c : msg) {
    h.update(std::string_view(&c, 1));
  }
  EXPECT_EQ(h.finish(), crypto::Sha256::hash(msg));
}

TEST(Sha256, BoundaryLengths) {
  // Exercise the padding edge cases around the 55/56/64 byte boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string msg(len, 'x');
    crypto::Sha256 a;
    a.update(msg);
    crypto::Sha256 b;
    b.update(msg.substr(0, len / 2));
    b.update(msg.substr(len / 2));
    EXPECT_EQ(a.finish(), b.finish()) << "length " << len;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  crypto::Sha256 h;
  h.update("garbage");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(
      hex_of(h.finish()),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, IntegerAbsorption) {
  crypto::Sha256 a;
  a.update_u64(0x0807060504030201ULL);
  crypto::Sha256 b;
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 4, 5, 6, 7, 8};
  b.update(bytes);
  EXPECT_EQ(a.finish(), b.finish());
}

TEST(Sha256, MidstateResumeMatchesFull) {
  // Capturing the compression state on a block boundary and resuming must
  // reproduce the one-shot digest exactly — the contract behind the
  // KeyStore's cached HMAC ipad/opad prefixes.
  const std::string prefix(64, 'p');
  for (std::size_t suffix_len : {0u, 1u, 32u, 63u, 64u, 200u}) {
    const std::string suffix(suffix_len, 's');
    crypto::Sha256 head;
    head.update(prefix);
    crypto::Sha256 resumed(head.midstate());
    resumed.update(suffix);
    EXPECT_EQ(resumed.finish(), crypto::Sha256::hash(prefix + suffix))
        << suffix_len;
  }
}

// ---------------------------------------------------------------------------
// HMAC-SHA256 (RFC 4231)
// ---------------------------------------------------------------------------

TEST(HmacSha256, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const std::string msg = "Hi There";
  const auto mac = crypto::hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(
      hex_of(mac),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  const auto mac = crypto::hmac_sha256(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(
      hex_of(mac),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, LongKeyIsHashed) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const auto mac = crypto::hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(
      hex_of(mac),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// ---------------------------------------------------------------------------
// Simulated signatures
// ---------------------------------------------------------------------------

TEST(KeyStore, SignVerifyRoundTrip) {
  crypto::KeyStore keys(1234, 4);
  const auto digest = crypto::Sha256::hash("message");
  const auto sig = keys.sign(2, digest);
  EXPECT_EQ(sig.signer, 2u);
  EXPECT_TRUE(keys.verify(sig, digest));
}

TEST(KeyStore, RejectsTamperedMessage) {
  crypto::KeyStore keys(1234, 4);
  const auto sig = keys.sign(1, crypto::Sha256::hash("message"));
  EXPECT_FALSE(keys.verify(sig, crypto::Sha256::hash("other message")));
}

TEST(KeyStore, RejectsForgedSigner) {
  crypto::KeyStore keys(1234, 4);
  const auto digest = crypto::Sha256::hash("message");
  auto sig = keys.sign(1, digest);
  sig.signer = 3;  // claim someone else signed it
  EXPECT_FALSE(keys.verify(sig, digest));
}

TEST(KeyStore, RejectsUnknownSigner) {
  crypto::KeyStore keys(1234, 4);
  const auto digest = crypto::Sha256::hash("m");
  auto sig = keys.sign(0, digest);
  sig.signer = 17;  // out of range
  EXPECT_FALSE(keys.verify(sig, digest));
}

TEST(KeyStore, DistinctNodesDistinctSignatures) {
  crypto::KeyStore keys(1234, 4);
  const auto digest = crypto::Sha256::hash("m");
  EXPECT_NE(keys.sign(0, digest).tag, keys.sign(1, digest).tag);
}

TEST(KeyStore, DistinctClustersDistinctKeys) {
  crypto::KeyStore a(1, 4);
  crypto::KeyStore b(2, 4);
  const auto digest = crypto::Sha256::hash("m");
  EXPECT_NE(a.sign(0, digest).tag, b.sign(0, digest).tag);
  EXPECT_FALSE(b.verify(a.sign(0, digest), digest));
}

TEST(KeyStore, DeterministicAcrossInstances) {
  crypto::KeyStore a(7, 4);
  crypto::KeyStore b(7, 4);
  const auto digest = crypto::Sha256::hash("m");
  EXPECT_EQ(a.sign(3, digest).tag, b.sign(3, digest).tag);
}

}  // namespace
}  // namespace bamboo
