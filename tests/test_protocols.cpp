// Unit tests for the four safety protocols' rules on hand-crafted chains,
// including the paper's Fig. 2 commit scenario and the Fig. 5/6 attack
// preconditions.

#include <gtest/gtest.h>

#include "core/safety.h"
#include "protocols/fast_hotstuff.h"
#include "protocols/hotstuff.h"
#include "protocols/registry.h"
#include "protocols/streamlet.h"

namespace bamboo {
namespace {

using types::BlockPtr;
using types::QuorumCert;
using types::View;

/// Builds chains in a forest and exercises the Safety rules directly.
class ProtocolFixture : public ::testing::Test {
 protected:
  forest::BlockForest forest;
  core::Config cfg;
  View current_view = 1;

  core::ProtocolContext ctx() {
    return core::ProtocolContext{0, current_view, forest, cfg};
  }

  QuorumCert qc_of(const BlockPtr& b) {
    QuorumCert qc;
    qc.view = b->view();
    qc.height = b->height();
    qc.block_hash = b->hash();
    qc.sigs.resize(3);
    return qc;
  }

  /// Add a child of `parent` at `view` whose justify certifies `justified`
  /// (defaults to the parent: the honest case). Recording the justify QC in
  /// the forest — as the replica engine does on receipt — certifies the
  /// justified block as a side effect; pass record_justify=false to model
  /// QCs that have not been delivered yet.
  BlockPtr add_block(const BlockPtr& parent, View view,
                     BlockPtr justified = nullptr,
                     bool record_justify = true) {
    if (!justified) justified = parent;
    types::Block::Fields f;
    f.parent_hash = parent->hash();
    f.view = view;
    f.height = parent->height() + 1;
    f.proposer = static_cast<types::NodeId>(view % 4);
    f.justify = justified->is_genesis() ? types::Block::genesis_qc()
                                        : qc_of(justified);
    auto block = std::make_shared<const types::Block>(std::move(f));
    EXPECT_EQ(forest.add(block), forest::AddResult::kAdded);
    if (record_justify) forest.add_qc(block->justify());
    return block;
  }

  /// Certify a block and feed the QC through the protocol's state-update;
  /// returns the protocol's commit target for that QC.
  std::optional<crypto::Digest> certify(core::SafetyProtocol& proto,
                                        const BlockPtr& b) {
    const QuorumCert qc = qc_of(b);
    forest.add_qc(qc);
    auto context = ctx();
    proto.update_state(qc, context);
    return proto.commit_target(qc, context);
  }

  types::ProposalMsg proposal_of(const BlockPtr& b,
                                 std::optional<types::TimeoutCert> tc = {}) {
    types::ProposalMsg p;
    p.block = b;
    p.tc = std::move(tc);
    return p;
  }
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, KnowsAllProtocols) {
  for (const auto& name : protocols::protocol_names()) {
    EXPECT_EQ(protocols::make_protocol(name)->name(), name);
  }
  EXPECT_EQ(protocols::make_protocol("hs")->name(), "hotstuff");
  EXPECT_EQ(protocols::make_protocol("ohs")->name(), "hotstuff");
  EXPECT_EQ(protocols::make_protocol("sl")->name(), "streamlet");
  EXPECT_EQ(protocols::make_protocol("fhs")->name(), "fasthotstuff");
  EXPECT_THROW(protocols::make_protocol("pbft"), std::invalid_argument);
}

TEST(Registry, ForkDepthsMatchPaper) {
  EXPECT_EQ(protocols::make_protocol("hotstuff")->fork_depth(), 2u);
  EXPECT_EQ(protocols::make_protocol("2chs")->fork_depth(), 1u);
  EXPECT_EQ(protocols::make_protocol("streamlet")->fork_depth(), 0u);
  EXPECT_EQ(protocols::make_protocol("fasthotstuff")->fork_depth(), 0u);
}

TEST(Registry, MessagePatterns) {
  EXPECT_FALSE(protocols::make_protocol("hotstuff")->broadcast_votes());
  EXPECT_TRUE(protocols::make_protocol("streamlet")->broadcast_votes());
  EXPECT_TRUE(protocols::make_protocol("streamlet")->echo_messages());
  EXPECT_FALSE(protocols::make_protocol("2chs")->echo_messages());
}

// ---------------------------------------------------------------------------
// HotStuff
// ---------------------------------------------------------------------------

class HotStuffRules : public ProtocolFixture {
 protected:
  protocols::HotStuff hs;
};

TEST_F(HotStuffRules, ProposesOnHighQc) {
  const auto b1 = add_block(types::Block::genesis(), 1);
  forest.add_qc(qc_of(b1));
  const auto plan = hs.plan_proposal(2, ctx());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->parent->hash(), b1->hash());
  EXPECT_EQ(plan->justify.block_hash, b1->hash());
}

TEST_F(HotStuffRules, VotesOnlyOncePerView) {
  const auto b1 = add_block(types::Block::genesis(), 1);
  current_view = 1;
  EXPECT_TRUE(hs.should_vote(proposal_of(b1), ctx()));
  hs.did_vote(*b1);
  EXPECT_EQ(hs.last_voted_view(), 1u);
  EXPECT_FALSE(hs.should_vote(proposal_of(b1), ctx()));
}

TEST_F(HotStuffRules, LockMovesToTwoChainHead) {
  const auto b1 = add_block(types::Block::genesis(), 1);
  const auto b2 = add_block(b1, 2);
  certify(hs, b1);
  EXPECT_EQ(hs.locked_view(), 0u);  // one-chain only: no lock yet
  certify(hs, b2);                  // two-chain b1 <- b2: lock on b1
  EXPECT_EQ(hs.locked_view(), 1u);
}

TEST_F(HotStuffRules, VotingRuleEnforcesLock) {
  // Build and lock on b1: chain b1(v1) <- b2(v2), both certified.
  const auto b1 = add_block(types::Block::genesis(), 1);
  const auto b2 = add_block(b1, 2);
  certify(hs, b2);
  ASSERT_EQ(hs.locked_view(), 1u);

  // A fork from genesis with a stale justify must be rejected...
  const auto fork = add_block(types::Block::genesis(), 3,
                              types::Block::genesis());
  EXPECT_FALSE(hs.should_vote(proposal_of(fork), ctx()));

  // ...but a block extending the lock is accepted,
  const auto b3 = add_block(b2, 4);
  EXPECT_TRUE(hs.should_vote(proposal_of(b3), ctx()));

  // ...and so is a conflicting block with a *newer* justify (liveness rule:
  // justify view > lock view).
  const auto b2b = add_block(b1, 5, b1);  // extends lock b1 itself
  EXPECT_TRUE(hs.should_vote(proposal_of(b2b), ctx()));
}

TEST_F(HotStuffRules, Figure2CommitScenario) {
  // Paper Fig. 2: b_v1 <- b_v2 <- b_v3 <- b_v4 <- b_v5 where view 2's QC
  // never formed, so b_v3 carries QC_v1 as its justify while its parent is
  // b_v2. When b_v4 is certified, b_v1 is NOT committed: the three-chain
  // ending at b_v4 breaks because b_v3's justify does not certify its
  // direct parent ("b_v3 is not its directed descendent one-chain"). Once
  // b_v5 is certified, the direct chain b_v3 <- b_v4 <- b_v5 commits b_v3
  // and all preceding blocks (b_v2, b_v1).
  const auto b1 = add_block(types::Block::genesis(), 1);
  const auto b2 = add_block(b1, 2);
  const auto b3 = add_block(b2, 3, b1);  // justify skips to QC_v1
  const auto b4 = add_block(b3, 4);
  const auto b5 = add_block(b4, 5);

  EXPECT_EQ(certify(hs, b3), std::nullopt);
  EXPECT_EQ(certify(hs, b4), std::nullopt);  // broken link at b3: no commit
  const auto target = certify(hs, b5);       // b3 <- b4 <- b5: commit b3
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, b3->hash());

  const auto chain = forest.commit(*target);
  ASSERT_TRUE(chain.has_value());
  ASSERT_EQ(chain->size(), 3u);  // b1, b2, b3 commit together
  EXPECT_EQ((*chain)[0]->hash(), b1->hash());
  EXPECT_EQ((*chain)[2]->hash(), b3->hash());
}

TEST_F(HotStuffRules, HappyPathCommitsContinuously) {
  BlockPtr prev = add_block(types::Block::genesis(), 1);
  certify(hs, prev);
  std::size_t commits = 0;
  for (View v = 2; v <= 10; ++v) {
    const auto b = add_block(prev, v);
    const auto target = certify(hs, b);
    if (target) {
      const auto chain = forest.commit(*target);
      ASSERT_TRUE(chain.has_value());
      commits += chain->size();
    }
    prev = b;
  }
  // Views 1..10 all certified: blocks 1..8 committed (tail of 2 pending).
  EXPECT_EQ(commits, 8u);
}

TEST_F(HotStuffRules, Figure6SilenceAttackTimeline) {
  // Fig. 6: B1(v1) <- B2(v2) <- B3(v3); the view-4 leader withholds B4 and
  // QC_3; the view-5 leader builds B5 on B2 (highest public QC). B3 is
  // overwritten; B1/B2 commit only once the post-fork chain re-establishes
  // a three-chain on top of B2.
  const auto b1 = add_block(types::Block::genesis(), 1);
  const auto b2 = add_block(b1, 2);
  const auto b3 = add_block(b2, 3);
  certify(hs, b2);

  const auto b5 = add_block(b2, 5, b2);  // fork over b3, justify QC_2
  const auto b6 = add_block(b5, 6);
  const auto b7 = add_block(b6, 7);

  // B1 <- B2 <- B5 is a direct three-chain: certifying B5 commits B1.
  const auto t1 = certify(hs, b5);
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(*t1, b1->hash());
  ASSERT_TRUE(forest.commit(*t1).has_value());

  // B2 <- B5 <- B6 then commits B2 (B3, its other child, still lingers).
  const auto t2 = certify(hs, b6);
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(*t2, b2->hash());
  ASSERT_TRUE(forest.commit(*t2).has_value());

  // Once B5 commits, the conflicting sibling B3 is overwritten for good.
  const auto t3 = certify(hs, b7);
  ASSERT_TRUE(t3.has_value());
  EXPECT_EQ(*t3, b5->hash());
  ASSERT_TRUE(forest.commit(*t3).has_value());
  const auto dropped = forest.prune();
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->hash(), b3->hash());  // B3 overwritten
}

// ---------------------------------------------------------------------------
// Two-chain HotStuff
// ---------------------------------------------------------------------------

class TwoChainRules : public ProtocolFixture {
 protected:
  protocols::TwoChainHotStuff chs;
};

TEST_F(TwoChainRules, LockMovesToHighestCertified) {
  const auto b1 = add_block(types::Block::genesis(), 1);
  certify(chs, b1);
  EXPECT_EQ(chs.locked_view(), 1u);  // lock on the one-chain head itself
}

TEST_F(TwoChainRules, CommitsWithTwoChain) {
  const auto b1 = add_block(types::Block::genesis(), 1);
  const auto b2 = add_block(b1, 2);
  EXPECT_EQ(certify(chs, b1), std::nullopt);
  const auto target = certify(chs, b2);  // two-chain (1,2): commit b1
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, b1->hash());
}

TEST_F(TwoChainRules, GapBlocksCommitUntilConsecutivePair) {
  const auto b1 = add_block(types::Block::genesis(), 1);
  const auto b3 = add_block(b1, 3);  // view 2 timed out
  EXPECT_EQ(certify(chs, b1), std::nullopt);
  EXPECT_EQ(certify(chs, b3), std::nullopt);  // (1,3): not consecutive
  const auto b4 = add_block(b3, 4);
  const auto target = certify(chs, b4);  // (3,4): commits b3 and prefix
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, b3->hash());
}

TEST_F(TwoChainRules, StricterLockThanHotStuff) {
  // After certifying b2, 2CHS locks on b2 (one-chain head) while HotStuff
  // locks on b1 (two-chain head) — the source of the fork_depth gap.
  protocols::HotStuff hs;
  const auto b1 = add_block(types::Block::genesis(), 1);
  const auto b2 = add_block(b1, 2);
  certify(chs, b2);
  certify(hs, b2);
  EXPECT_EQ(chs.locked_view(), 2u);
  EXPECT_EQ(hs.locked_view(), 1u);
}

// ---------------------------------------------------------------------------
// Streamlet
// ---------------------------------------------------------------------------

class StreamletRules : public ProtocolFixture {
 protected:
  protocols::Streamlet sl;
};

TEST_F(StreamletRules, ProposesOnLongestNotarizedChain) {
  const auto b1 = add_block(types::Block::genesis(), 1);
  const auto b2 = add_block(b1, 2);
  forest.add_qc(qc_of(b1));
  forest.add_qc(qc_of(b2));
  const auto fork = add_block(types::Block::genesis(), 3);
  forest.add_qc(qc_of(fork));  // shorter notarized chain

  const auto plan = sl.plan_proposal(4, ctx());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->parent->hash(), b2->hash());
}

TEST_F(StreamletRules, RejectsVotesOffTheLongestChain) {
  const auto b1 = add_block(types::Block::genesis(), 1);
  const auto b2 = add_block(b1, 2);
  forest.add_qc(qc_of(b1));
  forest.add_qc(qc_of(b2));

  // A proposal extending genesis (shorter notarized chain) is rejected —
  // this is what makes Streamlet immune to the forking attack (Fig. 13).
  const auto fork = add_block(types::Block::genesis(), 3);
  EXPECT_FALSE(sl.should_vote(proposal_of(fork), ctx()));

  // A proposal on the longest notarized tip is accepted.
  const auto b3 = add_block(b2, 4);
  EXPECT_TRUE(sl.should_vote(proposal_of(b3), ctx()));
}

TEST_F(StreamletRules, RejectsUncertifiedParent) {
  const auto b1 = add_block(types::Block::genesis(), 1);
  // b2 claims to justify b1 but that QC never reached us.
  const auto b2 = add_block(b1, 2, nullptr, /*record_justify=*/false);
  ASSERT_FALSE(forest.is_certified(b1->hash()));
  EXPECT_FALSE(sl.should_vote(proposal_of(b2), ctx()));
}

TEST_F(StreamletRules, OneVotePerView) {
  const auto b1 = add_block(types::Block::genesis(), 1);
  EXPECT_TRUE(sl.should_vote(proposal_of(b1), ctx()));
  sl.did_vote(*b1);
  EXPECT_FALSE(sl.should_vote(proposal_of(b1), ctx()));
}

TEST_F(StreamletRules, CommitsFirstTwoOfThreeConsecutive) {
  // Chain at views 2,3,4 (the 0->2 gap keeps genesis out of any trio).
  // Constructing each block records its justify, so b2 and b3 are already
  // notarized; notarizing b4 completes (2,3,4) and commits the first two.
  const auto b2 = add_block(types::Block::genesis(), 2);
  const auto b3 = add_block(b2, 3);
  EXPECT_EQ(certify(sl, b3), std::nullopt);  // (0,2,3) has a gap: no commit
  const auto b4 = add_block(b3, 4);
  const auto target = certify(sl, b4);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, b3->hash());
  const auto chain = forest.commit(*target);
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->size(), 2u);  // b2 and b3
}

TEST_F(StreamletRules, GenesisCountsAsNotarizedEpochZero) {
  // Streamlet's genesis is notarized at epoch 0, so views (0,1,2) form a
  // legitimate trio committing b1.
  const auto b1 = add_block(types::Block::genesis(), 1);
  const auto b2 = add_block(b1, 2);
  certify(sl, b1);
  const auto target = certify(sl, b2);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, b1->hash());
}

TEST_F(StreamletRules, GapBreaksTheTrio) {
  const auto b1 = add_block(types::Block::genesis(), 1);
  const auto b2 = add_block(b1, 2);
  const auto b4 = add_block(b2, 4);  // view 3 silent
  certify(sl, b1);
  certify(sl, b2);
  EXPECT_EQ(certify(sl, b4), std::nullopt);  // (1,2,4): no commit
  const auto b5 = add_block(b4, 5);
  const auto b6 = add_block(b5, 6);
  certify(sl, b5);
  const auto target = certify(sl, b6);  // (4,5,6): commit b5 & prefix
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, b5->hash());
}

TEST_F(StreamletRules, OutOfOrderQcCompletesTrio) {
  // The middle QC arriving last must still trigger the commit (votes are
  // broadcast in Streamlet, so QCs complete in any order). Built at views
  // 2,3,4 with undelivered justifies, then certified 2, 4, 3.
  const auto b2 = add_block(types::Block::genesis(), 2, nullptr, false);
  const auto b3 = add_block(b2, 3, nullptr, false);
  const auto b4 = add_block(b3, 4, nullptr, false);
  EXPECT_EQ(certify(sl, b2), std::nullopt);
  EXPECT_EQ(certify(sl, b4), std::nullopt);  // b3 not certified yet
  const auto target = certify(sl, b3);       // completes (2,3,4)
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, b3->hash());
}

// ---------------------------------------------------------------------------
// Fast-HotStuff
// ---------------------------------------------------------------------------

class FastHotStuffRules : public ProtocolFixture {
 protected:
  protocols::FastHotStuff fhs;
};

TEST_F(FastHotStuffRules, HappyPathNeedsFreshDirectJustify) {
  const auto b1 = add_block(types::Block::genesis(), 1);
  const auto b2 = add_block(b1, 2);
  current_view = 2;
  EXPECT_TRUE(fhs.should_vote(proposal_of(b2), ctx()));

  // A stale-ancestor fork (the forking attack) fails the freshness check:
  // justify view 1, block view 3 — not consecutive, and no TC.
  const auto fork = add_block(b1, 3, b1);
  current_view = 3;
  EXPECT_FALSE(fhs.should_vote(proposal_of(fork), ctx()));
}

TEST_F(FastHotStuffRules, ViewChangeNeedsAggQcProof) {
  const auto b1 = add_block(types::Block::genesis(), 1);
  const auto b3 = add_block(b1, 3, b1);  // after a timeout of view 2
  current_view = 3;

  // Without a TC the gap proposal is rejected.
  EXPECT_FALSE(fhs.should_vote(proposal_of(b3), ctx()));

  // With a TC whose AggQC proves QC_1 was the highest among 2f+1: accept.
  types::TimeoutCert tc;
  tc.view = 2;
  tc.reported_qc_views = {1, 1, 0};
  tc.high_qc = qc_of(b1);
  EXPECT_TRUE(fhs.should_vote(proposal_of(b3, tc), ctx()));

  // A TC showing somebody reported a higher QC than the justify: reject.
  // Certificate verification (quorum/cert_verifier.h) guarantees
  // high_qc.view == max(reported_qc_views) on every TC a replica accepts,
  // so the hand-built TC maintains that invariant here.
  types::TimeoutCert stale_tc;
  stale_tc.view = 2;
  stale_tc.reported_qc_views = {1, 2, 0};  // someone saw a QC for view 2
  stale_tc.high_qc.view = 2;
  EXPECT_FALSE(fhs.should_vote(proposal_of(b3, stale_tc), ctx()));

  // A TC for the wrong view: reject.
  types::TimeoutCert wrong_view_tc;
  wrong_view_tc.view = 1;
  wrong_view_tc.reported_qc_views = {1};
  EXPECT_FALSE(fhs.should_vote(proposal_of(b3, wrong_view_tc), ctx()));
}

TEST_F(FastHotStuffRules, TwoChainConsecutiveCommit) {
  const auto b1 = add_block(types::Block::genesis(), 1);
  const auto b2 = add_block(b1, 2);
  EXPECT_EQ(certify(fhs, b1), std::nullopt);
  const auto target = certify(fhs, b2);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, b1->hash());

  // A gap pair does not commit.
  const auto b4 = add_block(b2, 4, b2);
  EXPECT_EQ(certify(fhs, b4), std::nullopt);
}

}  // namespace
}  // namespace bamboo
