// Unit tests for sim::InlineFunction — the small-buffer move-only callable
// behind EventQueue::Callback — and for the queue behaviors that depend on
// its semantics (capture destruction on cancel, move-out at fire).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/inline_function.h"

namespace bamboo::sim {
namespace {

using Fn = InlineFunction<64>;

TEST(InlineFunction, EmptyAndBool) {
  Fn f;
  EXPECT_FALSE(static_cast<bool>(f));
  Fn g = nullptr;
  EXPECT_FALSE(static_cast<bool>(g));
  g = [] {};
  EXPECT_TRUE(static_cast<bool>(g));
  g.reset();
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InlineFunction, InvokesCapture) {
  int hits = 0;
  Fn f = [&hits] { ++hits; };
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, CaptureSizeSelectsStorage) {
  // The hot-path captures ([this, slot], [this, id]) must be inline; a
  // capture bigger than the buffer must transparently go to the heap.
  struct Small {
    void* p;
    std::uint32_t slot;
    void operator()() const {}
  };
  struct Exact {
    std::array<std::byte, 64> bytes;
    void operator()() const {}
  };
  struct Huge {
    std::array<std::byte, 65> bytes;
    void operator()() const {}
  };
  static_assert(Fn::stores_inline<Small>());
  static_assert(Fn::stores_inline<Exact>());
  static_assert(!Fn::stores_inline<Huge>());

  // Both storage classes must still invoke correctly.
  int hits = 0;
  std::array<std::byte, 100> pad{};
  Fn heap = [&hits, pad] {
    (void)pad;
    ++hits;
  };
  static_assert(!Fn::stores_inline<decltype([&hits, pad] {
    (void)pad;
    ++hits;
  })>());
  heap();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunction, ThrowingMoveFallsBackToHeap) {
  // A capture whose move may throw cannot live inline: relocation (buffer
  // moves) must be noexcept. std::function's move is noexcept, but a
  // user type with a throwing move constructor is legal.
  struct ThrowingMove {
    ThrowingMove() = default;
    ThrowingMove(ThrowingMove&&) noexcept(false) {}
    void operator()() const {}
  };
  static_assert(!Fn::stores_inline<ThrowingMove>());
  Fn f = ThrowingMove{};
  EXPECT_TRUE(static_cast<bool>(f));
  f();
}

TEST(InlineFunction, MoveOnlyCaptures) {
  // std::function rejects move-only captures at compile time; the event
  // queue's callbacks are never copied, so InlineFunction supports them.
  auto owned = std::make_unique<int>(42);
  int seen = 0;
  Fn f = [owned = std::move(owned), &seen] { seen = *owned; };
  f();
  EXPECT_EQ(seen, 42);
}

TEST(InlineFunction, MoveTransfersStateAndEmptiesSource) {
  int hits = 0;
  Fn a = [&hits] { ++hits; };
  Fn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  Fn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, DestroysCaptureExactlyOnce) {
  // Covers the non-trivial inline destructor path and move-assign over a
  // live capture (which must destroy the overwritten one).
  auto counter = std::make_shared<int>(0);
  {
    Fn f = [counter] { ++*counter; };
    EXPECT_EQ(counter.use_count(), 2);
    Fn g = std::move(f);
    EXPECT_EQ(counter.use_count(), 2);  // relocated, not duplicated
    g = [] {};                          // overwrite destroys the capture
    EXPECT_EQ(counter.use_count(), 1);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineFunction, HeapCaptureDestroyed) {
  auto counter = std::make_shared<int>(0);
  std::array<std::byte, 128> pad{};
  {
    Fn f = [counter, pad] { (void)pad; };
    EXPECT_EQ(counter.use_count(), 2);
    Fn g = std::move(f);  // heap cell ownership moves with the pointer
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InlineFunction, WrapsStdFunction) {
  // Call sites that still build a std::function (churn repeats, CPU-cost
  // closures) hand it to the scheduler as a capture; it must wrap cleanly.
  int hits = 0;
  std::function<void()> inner = [&hits] { ++hits; };
  static_assert(Fn::stores_inline<std::function<void()>>());
  Fn f = std::move(inner);
  f();
  EXPECT_EQ(hits, 1);
}

// --- EventQueue integration -----------------------------------------------

TEST(EventQueueCallback, CancelDestroysCaptureImmediately) {
  // cancel() must release whatever the capture owns right away, not when
  // the tombstone eventually surfaces from the heap.
  EventQueue q;
  auto counter = std::make_shared<int>(0);
  q.schedule(10, [] {});  // keeps the heap nonempty around the cancel
  const EventId id = q.schedule(5, [counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(counter.use_count(), 1);
  EXPECT_FALSE(q.cancel(id));  // double-cancel stays a no-op
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueCallback, PopMovesCaptureOut) {
  EventQueue q;
  auto counter = std::make_shared<int>(0);
  q.schedule(1, [counter] { ++*counter; });
  {
    EventQueue::Fired fired = q.pop();
    EXPECT_EQ(counter.use_count(), 2);  // owned by fired.fn now
    fired.fn();
  }
  EXPECT_EQ(*counter, 1);
  EXPECT_EQ(counter.use_count(), 1);  // slot holds no residue
}

TEST(EventQueueCallback, MoveOnlyCaptureThroughQueue) {
  EventQueue q;
  auto payload = std::make_unique<int>(7);
  int seen = 0;
  q.schedule(1, [payload = std::move(payload), &seen] { seen = *payload; });
  auto fired = q.pop();
  fired.fn();
  EXPECT_EQ(seen, 7);
}

TEST(EventQueueCallback, FifoAmongEqualTimestampsStillHolds) {
  // The POD-heap restructure must preserve the deterministic tie-break.
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule(42, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    auto fired = q.pop();
    fired.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

}  // namespace
}  // namespace bamboo::sim
