// Tests for the multi-leader substrate: the width-W election with epoch
// rotation, per-slot pacemaker timers, slot-keyed vote aggregation, the
// protocol/election compatibility guard, and FnF-BFT end-to-end commits.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "client/workload.h"
#include "crypto/sha256.h"
#include "election/leader_election.h"
#include "harness/cluster.h"
#include "harness/experiment.h"
#include "pacemaker/pacemaker.h"
#include "quorum/vote_aggregator.h"

namespace bamboo {
namespace {

// ---------------------------------------------------------------------------
// MultiLeaderElection
// ---------------------------------------------------------------------------

TEST(MultiLeaderElection, WidthAndDistinctSlotLeaders) {
  const auto e = election::make_election("multi:3", 7, 42);
  EXPECT_EQ(e->width(), 3u);
  EXPECT_EQ(e->name(), "multi-leader");
  for (types::View v = 1; v <= 20; ++v) {
    const auto set = e->leader_set(v);
    ASSERT_EQ(set.size(), 3u);
    std::set<types::NodeId> uniq(set.begin(), set.end());
    // Width <= n: every slot of a view gets a distinct replica.
    EXPECT_EQ(uniq.size(), 3u);
    for (types::Slot s = 0; s < 3; ++s) {
      EXPECT_EQ(set[s], e->slot_leader(v, s));
      EXPECT_LT(set[s], 7u);
    }
    // slot_leader(v, 0) is the view's primary leader.
    EXPECT_EQ(e->leader(v), set[0]);
  }
}

TEST(MultiLeaderElection, EpochRotationShiftsTheSet) {
  const auto e = election::make_election("multi:2:4", 5, 0);
  const auto members = [&](types::View v) {
    const auto set = e->leader_set(v);
    return std::set<types::NodeId>(set.begin(), set.end());
  };
  // Views 1..4 share epoch 0's membership: ids strided n/width = 2 apart.
  const auto first = members(1);
  EXPECT_EQ(first, (std::set<types::NodeId>{0, 2}));
  for (types::View v = 2; v <= 4; ++v) EXPECT_EQ(members(v), first);
  // ...but the slot ORDER rotates every view, so no single member holds
  // the view-closing final slot for a whole epoch.
  EXPECT_NE(e->leader_set(1), e->leader_set(2));
  EXPECT_EQ(e->slot_leader(1, 1), e->slot_leader(2, 0));
  // Views 5..8 are epoch 1: the membership shifts by one id.
  const auto second = members(5);
  EXPECT_EQ(second, (std::set<types::NodeId>{1, 3}));
  // Over enough epochs every replica leads some slot.
  std::set<types::NodeId> seen;
  for (types::View v = 1; v <= 40; ++v) {
    for (const auto id : e->leader_set(v)) seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(MultiLeaderElection, SpecParsing) {
  EXPECT_EQ(election::make_election("multi:1", 4, 0)->width(), 1u);
  EXPECT_EQ(election::make_election("multi:4", 4, 0)->width(), 4u);
  EXPECT_THROW(election::make_election("multi:0", 4, 0),
               std::invalid_argument);
  EXPECT_THROW(election::make_election("multi:5", 4, 0),
               std::invalid_argument);  // width > n
  EXPECT_THROW(election::make_election("multi:2:0", 4, 0),
               std::invalid_argument);  // epoch_len < 1
  EXPECT_THROW(election::make_election("multi:x", 4, 0),
               std::invalid_argument);
  EXPECT_THROW(election::make_election("multi:", 4, 0),
               std::invalid_argument);
}

TEST(MultiLeaderElection, SingleLeaderElectionsReportWidthOne) {
  for (const char* spec : {"roundrobin", "hash", "static:2"}) {
    const auto e = election::make_election(spec, 4, 7);
    EXPECT_EQ(e->width(), 1u) << spec;
    // Default slot_leader/leader_set fall back to leader(view).
    EXPECT_EQ(e->slot_leader(3, 0), e->leader(3)) << spec;
    EXPECT_EQ(e->leader_set(3), std::vector<types::NodeId>{e->leader(3)})
        << spec;
  }
}

// ---------------------------------------------------------------------------
// Pacemaker: per-slot timers
// ---------------------------------------------------------------------------

struct PmHarness {
  sim::Simulator sim{1};
  std::vector<types::View> timeouts_broadcast;
  std::vector<std::pair<types::View, pacemaker::AdvanceReason>> entered;
  std::unique_ptr<pacemaker::Pacemaker> pm;

  explicit PmHarness(pacemaker::Pacemaker::Settings settings) {
    pm = std::make_unique<pacemaker::Pacemaker>(
        sim, settings,
        pacemaker::Pacemaker::Callbacks{
            [this](types::View v) { timeouts_broadcast.push_back(v); },
            [this](types::View v, pacemaker::AdvanceReason r) {
              entered.emplace_back(v, r);
            }});
  }
};

TEST(PacemakerSlots, EarliestSlotTimerTimesTheViewOut) {
  PmHarness h({sim::milliseconds(100), 1.0, sim::seconds(10), 3});
  h.pm->start(1);
  h.sim.run_for(sim::milliseconds(99));
  EXPECT_TRUE(h.timeouts_broadcast.empty());
  // Slot 0's deadline (1x base) fires first and re-arms the whole ladder.
  h.sim.run_for(sim::milliseconds(2));
  EXPECT_EQ(h.timeouts_broadcast.size(), 1u);
  EXPECT_EQ(h.pm->slot_timeouts(), 1u);
  EXPECT_EQ(h.pm->current_view(), 1u);  // timeouts alone never advance
}

TEST(PacemakerSlots, SlotQcCancelsElapsedSlotTimers) {
  PmHarness h({sim::milliseconds(100), 1.0, sim::seconds(10), 3});
  h.pm->start(1);
  h.sim.run_for(sim::milliseconds(60));
  h.pm->on_slot_qc(1, 0);  // slot 0 certified: its timer is cancelled
  EXPECT_EQ(h.pm->current_view(), 1u);  // mid-view QC does not advance
  // Later slots re-anchor to the QC: slot 1 now has one base window from
  // t = 60ms, so its deadline is 160ms (not 2x base from view entry).
  h.sim.run_for(sim::milliseconds(90));  // t = 150ms
  EXPECT_TRUE(h.timeouts_broadcast.empty());
  h.sim.run_for(sim::milliseconds(20));  // t = 170ms
  EXPECT_EQ(h.timeouts_broadcast.size(), 1u);
  EXPECT_EQ(h.pm->slot_timeouts(), 1u);
}

TEST(PacemakerSlots, SlotQcCatchesLaggingReplicaUpIntoView) {
  PmHarness h({sim::milliseconds(100), 1.0, sim::seconds(10), 2});
  h.pm->start(1);
  h.pm->on_slot_qc(3, 0);  // cluster is at view 3; join it, not view 4
  EXPECT_EQ(h.pm->current_view(), 3u);
  ASSERT_EQ(h.entered.size(), 2u);
  EXPECT_EQ(h.entered[1].first, 3u);
  EXPECT_EQ(h.entered[1].second, pacemaker::AdvanceReason::kQuorumCert);
  // Stale slot QCs are ignored.
  h.pm->on_slot_qc(2, 0);
  EXPECT_EQ(h.pm->current_view(), 3u);
  EXPECT_EQ(h.entered.size(), 2u);
}

TEST(PacemakerSlots, FinalSlotQcStillAdvancesViaOnQc) {
  PmHarness h({sim::milliseconds(100), 1.0, sim::seconds(10), 2});
  h.pm->start(1);
  h.pm->on_qc(1);  // the final slot's QC goes through the legacy path
  EXPECT_EQ(h.pm->current_view(), 2u);
  EXPECT_EQ(h.pm->views_via_qc(), 1u);
}

// ---------------------------------------------------------------------------
// VoteAggregator: slot-keyed buckets
// ---------------------------------------------------------------------------

types::VoteMsg slot_vote(types::NodeId voter, types::View view,
                         types::Slot slot, const crypto::Digest& hash) {
  types::VoteMsg v;
  v.view = view;
  v.slot = slot;
  v.height = 1;
  v.block_hash = hash;
  v.sig.signer = voter;
  return v;
}

TEST(VoteAggregatorSlots, QcCarriesTheSlot) {
  quorum::VoteAggregator agg(4);
  const auto h = crypto::Sha256::hash("b");
  agg.add(slot_vote(0, 1, 2, h));
  agg.add(slot_vote(1, 1, 2, h));
  const auto qc = agg.add(slot_vote(2, 1, 2, h));
  ASSERT_TRUE(qc.has_value());
  EXPECT_EQ(qc->view, 1u);
  EXPECT_EQ(qc->slot, 2u);
}

TEST(VoteAggregatorSlots, SameVoterDifferentSlotsNotEquivocation) {
  quorum::VoteAggregator agg(4);
  const auto h1 = crypto::Sha256::hash("b1");
  const auto h2 = crypto::Sha256::hash("b2");
  agg.add(slot_vote(0, 1, 0, h1));
  agg.add(slot_vote(0, 1, 1, h2));  // a different slot: legitimate
  EXPECT_EQ(agg.equivocation_count(), 0u);
  // Both votes count toward their own slots' quorums.
  agg.add(slot_vote(1, 1, 1, h2));
  EXPECT_TRUE(agg.add(slot_vote(2, 1, 1, h2)).has_value());
}

TEST(VoteAggregatorSlots, SameSlotDifferentBlocksIsEquivocation) {
  quorum::VoteAggregator agg(4);
  const auto h1 = crypto::Sha256::hash("b1");
  const auto h2 = crypto::Sha256::hash("b2");
  agg.add(slot_vote(0, 1, 1, h1));
  agg.add(slot_vote(0, 1, 1, h2));
  EXPECT_EQ(agg.equivocation_count(), 1u);
}

// The regression the ISSUE's fix item asks for: the same voter
// equivocating in two consecutive views is counted once per view — the
// counter is cumulative across views and must not reset when view 2's
// buckets open (nor when view 1's are garbage-collected).
TEST(VoteAggregatorSlots, EquivocationAcrossConsecutiveViewsAccumulates) {
  quorum::VoteAggregator agg(4);
  const auto h1 = crypto::Sha256::hash("b1");
  const auto h2 = crypto::Sha256::hash("b2");
  const auto h3 = crypto::Sha256::hash("b3");
  const auto h4 = crypto::Sha256::hash("b4");
  agg.add(slot_vote(0, 1, 0, h1));
  agg.add(slot_vote(0, 1, 0, h2));  // equivocation #1 (view 1)
  EXPECT_EQ(agg.equivocation_count(), 1u);
  agg.add(slot_vote(0, 2, 0, h3));
  agg.add(slot_vote(0, 2, 0, h4));  // equivocation #2 (view 2)
  EXPECT_EQ(agg.equivocation_count(), 2u);
  // GC of the old view keeps the cumulative evidence counter.
  agg.gc_below(2);
  EXPECT_EQ(agg.equivocation_count(), 2u);
  // Every further conflicting vote in a live view is more evidence.
  agg.add(slot_vote(0, 2, 0, h1));
  EXPECT_EQ(agg.equivocation_count(), 3u);
}

// ---------------------------------------------------------------------------
// Cluster: protocol/election width compatibility
// ---------------------------------------------------------------------------

TEST(MultiLeaderCluster, FnfRequiresMultiElection) {
  core::Config cfg;
  cfg.protocol = "fnfbft";
  cfg.election = "roundrobin";
  harness::Cluster cluster(cfg);
  EXPECT_THROW(cluster.start(), std::invalid_argument);
}

TEST(MultiLeaderCluster, SingleLeaderProtocolRejectsMultiElection) {
  core::Config cfg;
  cfg.protocol = "hotstuff";
  cfg.election = "multi:2";
  harness::Cluster cluster(cfg);
  EXPECT_THROW(cluster.start(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// FnF-BFT end-to-end
// ---------------------------------------------------------------------------

harness::RunResult run_fnf(std::uint32_t n, std::uint32_t width,
                           std::uint64_t seed, const std::string& churn = "",
                           std::uint32_t byz_no = 0,
                           const std::string& strategy = "silence") {
  harness::RunSpec spec;
  spec.cfg.protocol = "fnfbft";
  spec.cfg.election = "multi:" + std::to_string(width);
  spec.cfg.n_replicas = n;
  spec.cfg.seed = seed;
  spec.cfg.churn = churn;
  spec.cfg.byz_no = byz_no;
  spec.cfg.strategy = strategy;
  spec.workload.concurrency = 32;
  spec.opts.warmup_s = 0.3;
  spec.opts.measure_s = 0.7;
  return harness::execute(spec);
}

TEST(FnfBft, CommitsAndStaysConsistent) {
  const auto r = run_fnf(4, 2, 1);
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GT(r.blocks_committed, 0u);
  EXPECT_GT(r.throughput_tps, 0.0);
}

TEST(FnfBft, WiderSetsStillCommit) {
  for (const std::uint32_t width : {3u, 4u}) {
    const auto r = run_fnf(7, width, 2);
    EXPECT_TRUE(r.consistent) << "width " << width;
    EXPECT_GT(r.blocks_committed, 0u) << "width " << width;
  }
}

TEST(FnfBft, Deterministic) {
  const auto a = run_fnf(4, 2, 9);
  const auto b = run_fnf(4, 2, 9);
  EXPECT_EQ(a, b);
}

TEST(FnfBft, SurvivesForkingLeaders) {
  const auto r = run_fnf(7, 3, 3, "", 2, "forking");
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GT(r.blocks_committed, 0u);
}

}  // namespace
}  // namespace bamboo
