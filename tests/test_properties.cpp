// Property-style sweeps across environment dimensions the other test files
// do not cover: network delay x protocol, election scheme x protocol,
// payload/block-size grids, and pacemaker backoff — always asserting the
// same core invariants (prefix-consistent commits, no duplicate tx
// commits, zero refused commits, progress under synchrony).

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "client/workload.h"
#include "harness/cluster.h"

namespace bamboo {
namespace {

struct Invariants {
  bool consistent = true;
  std::uint64_t violations = 0;
  std::uint64_t duplicate_commits = 0;
  std::uint64_t committed_blocks = 0;
  std::uint64_t completed = 0;
};

Invariants run(core::Config cfg, double sim_s = 0.6,
               std::uint32_t concurrency = 48) {
  harness::Cluster cluster(std::move(cfg));
  auto seen = std::make_shared<std::set<types::TxId>>();
  auto dups = std::make_shared<std::uint64_t>(0);
  core::Replica::Hooks hooks;
  hooks.on_commit_block = [seen, dups](const types::BlockPtr& b, types::View,
                                       sim::Time) {
    for (const auto& tx : b->txns()) {
      if (!seen->insert(tx.id).second) ++(*dups);
    }
  };
  cluster.set_hooks(0, std::move(hooks));

  client::WorkloadConfig wl;
  wl.concurrency = concurrency;
  wl.session_timeout = sim::milliseconds(500);
  client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                cluster.config(), wl);
  driver.install();
  cluster.start();
  driver.start();
  cluster.simulator().run_for(sim::from_seconds(sim_s));

  Invariants inv;
  inv.consistent = cluster.check_consistency().consistent;
  inv.duplicate_commits = *dups;
  inv.committed_blocks = cluster.observer().stats().blocks_committed;
  inv.completed = driver.stats().completed;
  for (types::NodeId id = 0; id < cluster.size(); ++id) {
    inv.violations += cluster.replica(id).stats().safety_violations;
  }
  return inv;
}

void expect_safe_and_live(const Invariants& inv) {
  EXPECT_TRUE(inv.consistent);
  EXPECT_EQ(inv.violations, 0u);
  EXPECT_EQ(inv.duplicate_commits, 0u);
  EXPECT_GT(inv.committed_blocks, 10u);
  EXPECT_GT(inv.completed, 50u);
}

// --- protocol x added network delay ----------------------------------------

using DelayParam = std::tuple<std::string, int>;
class DelayGrid : public ::testing::TestWithParam<DelayParam> {};

TEST_P(DelayGrid, SafeAndLiveUnderDelay) {
  const auto& [protocol, delay_ms] = GetParam();
  core::Config cfg;
  cfg.protocol = protocol;
  cfg.bsize = 100;
  cfg.delay = sim::milliseconds(delay_ms);
  cfg.delay_jitter = sim::milliseconds(delay_ms > 0 ? 1 : 0);
  cfg.seed = 101;
  expect_safe_and_live(run(cfg, delay_ms > 0 ? 1.2 : 0.6));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DelayGrid,
    ::testing::Combine(::testing::Values("hotstuff", "2chs", "streamlet",
                                         "fasthotstuff"),
                       ::testing::Values(0, 5, 10)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_d" +
             std::to_string(std::get<1>(info.param));
    });

// --- protocol x election scheme ---------------------------------------------

using ElectionParam = std::tuple<std::string, std::string>;
class ElectionGrid : public ::testing::TestWithParam<ElectionParam> {};

TEST_P(ElectionGrid, SafeAndLiveUnderAnySchedule) {
  const auto& [protocol, election] = GetParam();
  core::Config cfg;
  cfg.protocol = protocol;
  cfg.election = election;
  cfg.bsize = 100;
  cfg.seed = 202;
  const auto inv = run(cfg);
  if (election == "static:1") {
    // Bamboo's mempools are local and a replica only proposes its own
    // clients' transactions when it leads; under a static leader only
    // ~1/N of requests (those routed to the leader) ever complete. Safety
    // and chain progress still hold.
    EXPECT_TRUE(inv.consistent);
    EXPECT_EQ(inv.violations, 0u);
    EXPECT_EQ(inv.duplicate_commits, 0u);
    EXPECT_GT(inv.committed_blocks, 10u);
    EXPECT_GT(inv.completed, 10u);
  } else {
    expect_safe_and_live(inv);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ElectionGrid,
    ::testing::Combine(::testing::Values("hotstuff", "2chs", "streamlet",
                                         "fasthotstuff"),
                       ::testing::Values("roundrobin", "hash", "static:1")),
    [](const auto& info) {
      std::string e = std::get<1>(info.param);
      for (char& c : e) {
        if (c == ':') c = '_';
      }
      return std::get<0>(info.param) + "_" + e;
    });

// --- block size / payload grid (HotStuff) -----------------------------------

using ShapeParam = std::tuple<std::uint32_t, std::uint32_t>;
class ShapeGrid : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(ShapeGrid, SafeAndLiveAcrossBatchShapes) {
  const auto& [bsize, psize] = GetParam();
  core::Config cfg;
  cfg.bsize = bsize;
  cfg.psize = psize;
  cfg.seed = 303;
  expect_safe_and_live(run(cfg));
}

INSTANTIATE_TEST_SUITE_P(Grid, ShapeGrid,
                         ::testing::Combine(::testing::Values(1u, 50u, 800u),
                                            ::testing::Values(0u, 1024u)),
                         [](const auto& info) {
                           return "b" + std::to_string(std::get<0>(info.param)) +
                                  "_p" + std::to_string(std::get<1>(info.param));
                         });

// --- assorted single properties ----------------------------------------------

TEST(Properties, ExponentialBackoffSurvivesCrashStorm) {
  core::Config cfg;
  cfg.protocol = "hotstuff";
  cfg.n_replicas = 7;
  cfg.byz_no = 2;
  cfg.strategy = "crash";
  cfg.timeout = sim::milliseconds(10);
  cfg.timeout_backoff = 1.5;  // exponential pacemaker backoff enabled
  cfg.bsize = 50;
  cfg.seed = 404;
  const auto inv = run(cfg, 1.2);
  EXPECT_TRUE(inv.consistent);
  EXPECT_EQ(inv.violations, 0u);
  EXPECT_GT(inv.committed_blocks, 5u);
}

TEST(Properties, SingleReplicaDegenerateClusterCommits) {
  // n=1: quorum of 1, every view self-certifies. Degenerate but legal.
  core::Config cfg;
  cfg.n_replicas = 1;
  cfg.bsize = 20;
  cfg.seed = 505;
  const auto inv = run(cfg, 0.3, 8);
  EXPECT_TRUE(inv.consistent);
  EXPECT_GT(inv.committed_blocks, 10u);
}

TEST(Properties, MixedAttackersStaySafe) {
  // byz_no replicas all run the configured strategy; combine with a crash
  // by flipping one of them mid-run.
  core::Config cfg;
  cfg.protocol = "2chs";
  cfg.n_replicas = 7;
  cfg.byz_no = 1;
  cfg.strategy = "forking";
  cfg.timeout = sim::milliseconds(30);
  cfg.bsize = 100;
  cfg.seed = 606;

  harness::Cluster cluster(cfg);
  client::WorkloadConfig wl;
  wl.concurrency = 48;
  wl.session_timeout = sim::milliseconds(500);
  client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                cluster.config(), wl);
  driver.install();
  cluster.simulator().schedule_at(sim::from_seconds(0.3), [&cluster] {
    cluster.crash_replica(1);  // honest crash on top of the forking byz
  });
  cluster.start();
  driver.start();
  cluster.simulator().run_for(sim::from_seconds(1.0));

  EXPECT_TRUE(cluster.check_consistency().consistent);
  EXPECT_GT(cluster.observer().stats().blocks_committed, 10u);
}

TEST(Properties, ThroughputScalesWithOfferedLoadBelowSaturation) {
  core::Config cfg;
  cfg.bsize = 400;
  cfg.seed = 707;
  const auto low = run(cfg, 0.5, 32);
  const auto high = run(cfg, 0.5, 256);
  EXPECT_GT(high.completed, low.completed * 3);
}

}  // namespace
}  // namespace bamboo
