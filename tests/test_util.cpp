// Tests for src/util: RNG determinism and distributions, statistics,
// hex codec, JSON parser, logging.

#include <gtest/gtest.h>

#include <cmath>

#include "util/hex.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"

namespace bamboo {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  util::Rng a(42);
  util::Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  util::Rng a(1);
  util::Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  util::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  util::Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 5);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  util::Rng rng(11);
  util::RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  util::Rng rng(13);
  util::RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  util::Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

// ---------------------------------------------------------------------------
// RunningStats / Samples / TimelineCounter
// ---------------------------------------------------------------------------

TEST(RunningStats, BasicMoments) {
  util::RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  util::RunningStats a;
  util::RunningStats b;
  util::RunningStats combined;
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.gaussian(10, 3);
    (i % 2 == 0 ? a : b).add(v);
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-6);
}

TEST(RunningStats, EmptyIsZero) {
  util::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.ci95(), 0.0);
}

TEST(RunningStats, KnownValuesSmallSample) {
  // {1, 2, 3, 4}: mean 2.5, sample variance 5/3, ci95 = t_{0.975,3} σ/√4.
  util::RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.variance(), 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(5.0 / 3.0));
  EXPECT_DOUBLE_EQ(s.ci95(), 3.182 * std::sqrt(5.0 / 3.0) / 2.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStats, Ci95NeedsTwoSamples) {
  util::RunningStats s;
  s.add(7.0);
  EXPECT_EQ(s.ci95(), 0.0);
  s.add(9.0);
  // Two samples: σ = √2, ci = t_{0.975,1} √2 / √2 = 12.706.
  EXPECT_DOUBLE_EQ(s.ci95(), 12.706);
}

TEST(RunningStats, StudentTCriticalValues) {
  EXPECT_DOUBLE_EQ(util::t_critical_95(1), 12.706);
  EXPECT_DOUBLE_EQ(util::t_critical_95(2), 4.303);
  EXPECT_DOUBLE_EQ(util::t_critical_95(4), 2.776);
  EXPECT_DOUBLE_EQ(util::t_critical_95(30), 2.042);
  EXPECT_DOUBLE_EQ(util::t_critical_95(35), 2.021);
  EXPECT_DOUBLE_EQ(util::t_critical_95(50), 2.000);
  EXPECT_DOUBLE_EQ(util::t_critical_95(100), 1.980);
  EXPECT_DOUBLE_EQ(util::t_critical_95(1000), 1.96);
  // Monotone non-increasing in df.
  for (std::size_t df = 2; df <= 200; ++df) {
    EXPECT_LE(util::t_critical_95(df), util::t_critical_95(df - 1)) << df;
  }
}

TEST(RunningStats, MergeKnownValues) {
  // {1,2} ⊕ {3,4,5} must equal the one-pass stats of {1..5}:
  // count 5, mean 3, sample variance 2.5, min 1, max 5, sum 15.
  util::RunningStats a;
  a.add(1.0);
  a.add(2.0);
  util::RunningStats b;
  b.add(3.0);
  b.add(4.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.variance(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  EXPECT_DOUBLE_EQ(a.sum(), 15.0);
  EXPECT_DOUBLE_EQ(a.ci95(), 2.776 * std::sqrt(2.5) / std::sqrt(5.0));
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  util::RunningStats s;
  for (double v : {2.0, 4.0, 6.0}) s.add(v);
  const double mean = s.mean();
  const double var = s.variance();

  util::RunningStats empty;
  s.merge(empty);  // rhs empty: unchanged
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_DOUBLE_EQ(s.variance(), var);

  util::RunningStats target;  // lhs empty: adopts rhs wholesale
  target.merge(s);
  EXPECT_EQ(target.count(), 3u);
  EXPECT_DOUBLE_EQ(target.mean(), mean);
  EXPECT_DOUBLE_EQ(target.variance(), var);
  EXPECT_DOUBLE_EQ(target.min(), 2.0);
  EXPECT_DOUBLE_EQ(target.max(), 6.0);
}

TEST(RunningStats, MergeIsAssociativeToFloatingPointTolerance) {
  util::Rng rng(31);
  util::RunningStats a, b, c;
  for (int i = 0; i < 100; ++i) a.add(rng.gaussian(10, 3));
  for (int i = 0; i < 57; ++i) b.add(rng.gaussian(-4, 1));
  for (int i = 0; i < 23; ++i) c.add(rng.exponential(0.5));

  util::RunningStats left = a;  // (a ⊕ b) ⊕ c
  left.merge(b);
  left.merge(c);
  util::RunningStats bc = b;  // a ⊕ (b ⊕ c)
  bc.merge(c);
  util::RunningStats right = a;
  right.merge(bc);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_NEAR(left.mean(), right.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), right.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), right.min());
  EXPECT_DOUBLE_EQ(left.max(), right.max());
}

TEST(Samples, ExactPercentiles) {
  util::Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.p99(), 99.01, 0.01);
}

TEST(Samples, MeanAndStddev) {
  util::Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Timeline, BucketsAndRates) {
  util::TimelineCounter t(0.5, 10.0);
  t.add(0.1);
  t.add(0.2);
  t.add(0.9);
  t.add(9.99);
  t.add(11.0);  // beyond horizon: ignored
  EXPECT_DOUBLE_EQ(t.rate(0), 4.0);  // 2 events / 0.5s
  EXPECT_DOUBLE_EQ(t.rate(1), 2.0);
  EXPECT_DOUBLE_EQ(t.rate(19), 2.0);
  EXPECT_DOUBLE_EQ(t.bucket_start(3), 1.5);
}

// ---------------------------------------------------------------------------
// Hex
// ---------------------------------------------------------------------------

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x00, 0x01, 0xab, 0xff, 0x7f};
  const std::string hex = util::to_hex(bytes);
  EXPECT_EQ(hex, "0001abff7f");
  const auto back = util::from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes);
}

TEST(Hex, AcceptsUppercase) {
  const auto bytes = util::from_hex("DEADBEEF");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(util::to_hex(*bytes), "deadbeef");
}

TEST(Hex, RejectsOddLength) {
  EXPECT_FALSE(util::from_hex("abc").has_value());
}

TEST(Hex, RejectsNonHex) {
  EXPECT_FALSE(util::from_hex("zz").has_value());
}

TEST(Hex, EmptyIsEmpty) {
  const auto bytes = util::from_hex("");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_TRUE(bytes->empty());
}

// ---------------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(util::Json::parse("null").is_null());
  EXPECT_EQ(util::Json::parse("true").as_bool(), true);
  EXPECT_EQ(util::Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(util::Json::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(util::Json::parse("-17").as_number(), -17.0);
  EXPECT_DOUBLE_EQ(util::Json::parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(util::Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const auto j = util::Json::parse(
      R"({"bsize": 400, "peers": [1, 2, 3], "net": {"delay": 5.5}})");
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.get_int("bsize", 0), 400);
  const util::Json* peers = j.find("peers");
  ASSERT_NE(peers, nullptr);
  ASSERT_TRUE(peers->is_array());
  EXPECT_EQ(peers->as_array().size(), 3u);
  const util::Json* net = j.find("net");
  ASSERT_NE(net, nullptr);
  EXPECT_DOUBLE_EQ(net->get_number("delay", 0), 5.5);
}

TEST(Json, StringEscapes) {
  const auto j = util::Json::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(j.as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, UnicodeEscapesUtf8) {
  const auto j = util::Json::parse(R"("é中")");
  EXPECT_EQ(j.as_string(), "\xc3\xa9\xe4\xb8\xad");
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_THROW(util::Json::parse("{} x"), util::JsonError);
}

TEST(Json, RejectsMalformed) {
  EXPECT_THROW(util::Json::parse("{"), util::JsonError);
  EXPECT_THROW(util::Json::parse("[1,"), util::JsonError);
  EXPECT_THROW(util::Json::parse("tru"), util::JsonError);
  EXPECT_THROW(util::Json::parse("1."), util::JsonError);
  EXPECT_THROW(util::Json::parse("\"abc"), util::JsonError);
  EXPECT_THROW(util::Json::parse("{\"a\" 1}"), util::JsonError);
}

TEST(Json, ErrorCarriesPosition) {
  try {
    util::Json::parse("{\n  \"a\": ]\n}");
    FAIL() << "expected JsonError";
  } catch (const util::JsonError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Json, DumpRoundTrip) {
  const std::string doc =
      R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null},"e":-3})";
  const auto j = util::Json::parse(doc);
  const auto reparsed = util::Json::parse(j.dump());
  EXPECT_EQ(reparsed.dump(), j.dump());
  EXPECT_EQ(j.dump(), doc);
}

TEST(Json, GettersFallBack) {
  const auto j = util::Json::parse(R"({"present": 5})");
  EXPECT_EQ(j.get_int("present", 0), 5);
  EXPECT_EQ(j.get_int("absent", 42), 42);
  EXPECT_EQ(j.get_string("absent", "dflt"), "dflt");
  EXPECT_TRUE(j.get_bool("absent", true));
}

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

TEST(Logging, LevelFiltering) {
  auto& logger = util::Logger::instance();
  const auto prev = logger.level();
  logger.set_level(util::LogLevel::kError);
  EXPECT_FALSE(logger.enabled(util::LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(util::LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(util::LogLevel::kError));
  logger.set_level(prev);
}

}  // namespace
}  // namespace bamboo
