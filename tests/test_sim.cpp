// Tests for the discrete-event simulation kernel: event ordering,
// cancellation, clock semantics, determinism.

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace bamboo {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(sim::milliseconds(3), 3'000'000);
  EXPECT_EQ(sim::microseconds(5), 5'000);
  EXPECT_EQ(sim::seconds(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(sim::to_milliseconds(sim::milliseconds(7)), 7.0);
  EXPECT_DOUBLE_EQ(sim::to_seconds(sim::seconds(4)), 4.0);
  EXPECT_EQ(sim::from_seconds(1.5), 1'500'000'000);
  EXPECT_EQ(sim::from_milliseconds(0.5), 500'000);
}

TEST(EventQueue, FiresInTimeOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto fired = q.pop();
    fired.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimestamps) {
  sim::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  sim::EventQueue q;
  bool fired = false;
  const auto id = q.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  sim::EventQueue q;
  const auto id = q.schedule(10, [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));  // already fired
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(999999));  // unknown id
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  sim::EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] { order.push_back(1); });
  const auto id = q.schedule(20, [&] { order.push_back(2); });
  q.schedule(30, [&] { order.push_back(3); });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  sim::EventQueue q;
  const auto id = q.schedule(10, [] {});
  q.schedule(20, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  sim::Simulator s;
  sim::Time seen = -1;
  s.schedule_at(100, [&] { seen = s.now(); });
  s.run_all();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(s.now(), 100);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  sim::Simulator s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.schedule_at(30, [&] { ++count; });
  s.run_until(20);
  EXPECT_EQ(count, 2);  // events at exactly the deadline run
  EXPECT_EQ(s.now(), 20);
  s.run_until(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.now(), 100);  // clock advances to deadline even if idle
}

TEST(Simulator, ScheduleAfterIsRelative) {
  sim::Simulator s;
  std::vector<sim::Time> at;
  s.schedule_at(50, [&] {
    s.schedule_after(25, [&] { at.push_back(s.now()); });
  });
  s.run_all();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], 75);
}

TEST(Simulator, PastEventsClampToNow) {
  sim::Simulator s;
  s.schedule_at(100, [&] {
    s.schedule_at(10, [&] { EXPECT_EQ(s.now(), 100); });
  });
  s.run_all();
}

TEST(Simulator, NestedSchedulingRunsInOrder) {
  sim::Simulator s;
  std::vector<int> order;
  s.schedule_at(10, [&] {
    order.push_back(1);
    s.schedule_after(5, [&] { order.push_back(3); });
    s.schedule_after(1, [&] { order.push_back(2); });
  });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelViaSimulator) {
  sim::Simulator s;
  bool fired = false;
  const auto id = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  sim::Simulator s;
  EXPECT_FALSE(s.step());
  s.schedule_at(5, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(s.events_executed(), 1u);
}

TEST(Simulator, DeterministicWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator s(seed);
    std::vector<double> values;
    for (int i = 0; i < 100; ++i) {
      s.schedule_after(
          static_cast<sim::Duration>(s.rng().uniform(0, 1000)),
          [&values, &s] { values.push_back(s.rng().gaussian()); });
    }
    s.run_all();
    return values;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

}  // namespace
}  // namespace bamboo
