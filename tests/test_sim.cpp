// Tests for the discrete-event simulation kernel: event ordering,
// cancellation, clock semantics, determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace bamboo {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(sim::milliseconds(3), 3'000'000);
  EXPECT_EQ(sim::microseconds(5), 5'000);
  EXPECT_EQ(sim::seconds(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(sim::to_milliseconds(sim::milliseconds(7)), 7.0);
  EXPECT_DOUBLE_EQ(sim::to_seconds(sim::seconds(4)), 4.0);
  EXPECT_EQ(sim::from_seconds(1.5), 1'500'000'000);
  EXPECT_EQ(sim::from_milliseconds(0.5), 500'000);
}

TEST(EventQueue, FiresInTimeOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto fired = q.pop();
    fired.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimestamps) {
  sim::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  sim::EventQueue q;
  bool fired = false;
  const auto id = q.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  sim::EventQueue q;
  const auto id = q.schedule(10, [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));  // already fired
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(999999));  // unknown id
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  sim::EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] { order.push_back(1); });
  const auto id = q.schedule(20, [&] { order.push_back(2); });
  q.schedule(30, [&] { order.push_back(3); });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  sim::EventQueue q;
  const auto id = q.schedule(10, [] {});
  q.schedule(20, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), 20);
}

TEST(EventQueue, NextTimeAfterCancellingEveryHead) {
  sim::EventQueue q;
  const auto a = q.schedule(10, [] {});
  const auto b = q.schedule(20, [] {});
  q.schedule(30, [] {});
  EXPECT_TRUE(q.cancel(a));
  EXPECT_TRUE(q.cancel(b));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 30);  // sheds two stacked tombstones
}

TEST(EventQueue, DoubleCancelReturnsFalse) {
  sim::EventQueue q;
  const auto id = q.schedule(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StaleIdCannotCancelRecycledSlot) {
  // Generation stamps: an id for a fired/cancelled event must stay dead
  // even after its internal storage slot is reused by a new event.
  sim::EventQueue q;
  const auto old_id = q.schedule(10, [] {});
  q.pop();  // fires; the slot is free for reuse
  const auto new_id = q.schedule(20, [] {});
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(q.cancel(old_id));  // stale handle: no-op...
  EXPECT_EQ(q.size(), 1u);         // ...and the new event survives
  EXPECT_TRUE(q.cancel(new_id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireWithInterleavedReuse) {
  sim::EventQueue q;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(q.schedule(i, [] {}));
  for (int i = 0; i < 8; ++i) q.pop();
  // Heavy slot reuse after the drain.
  std::vector<sim::EventId> fresh;
  for (int i = 0; i < 8; ++i) fresh.push_back(q.schedule(100 + i, [] {}));
  for (const auto id : ids) EXPECT_FALSE(q.cancel(id));
  for (const auto id : fresh) EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeCountsOnlyLiveEvents) {
  sim::EventQueue q;
  const auto a = q.schedule(10, [] {});
  q.schedule(20, [] {});
  const auto c = q.schedule(30, [] {});
  EXPECT_EQ(q.size(), 3u);
  q.cancel(a);
  q.cancel(c);
  EXPECT_EQ(q.size(), 1u);  // tombstones may linger; size() must not count them
  q.pop();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.total_scheduled(), 3u);
}

TEST(EventQueue, FifoPreservedAcrossCancellationsAtSameInstant) {
  sim::EventQueue q;
  std::vector<int> order;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(q.schedule(5, [&order, i] { order.push_back(i); }));
  }
  // Cancel every odd event; the even ones must still fire in issue order.
  for (int i = 1; i < 10; i += 2) EXPECT_TRUE(q.cancel(ids[static_cast<size_t>(i)]));
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(EventQueue, ChurnStressMatchesSequentialOrder) {
  // Deterministic schedule/cancel/pop churn: everything that was not
  // cancelled fires exactly once, in (time, issue-order) order.
  sim::EventQueue q;
  std::vector<int> fired;
  std::vector<sim::EventId> ids;
  std::vector<int> expected;
  for (int round = 0; round < 50; ++round) {
    for (int j = 0; j < 4; ++j) {
      const int tag = round * 4 + j;
      ids.push_back(q.schedule((tag * 37) % 97, [&fired, tag] {
        fired.push_back(tag);
      }));
    }
    if (round % 3 == 0) q.cancel(ids[ids.size() - 2]);
    if (round % 7 == 0 && !q.empty()) q.pop().fn();
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired.size(), 200u - 17u);  // 17 rounds cancelled one event
  // No duplicates: every tag fires at most once.
  std::vector<int> sorted = fired;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(Simulator, ClockAdvancesWithEvents) {
  sim::Simulator s;
  sim::Time seen = -1;
  s.schedule_at(100, [&] { seen = s.now(); });
  s.run_all();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(s.now(), 100);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  sim::Simulator s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.schedule_at(30, [&] { ++count; });
  s.run_until(20);
  EXPECT_EQ(count, 2);  // events at exactly the deadline run
  EXPECT_EQ(s.now(), 20);
  s.run_until(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.now(), 100);  // clock advances to deadline even if idle
}

TEST(Simulator, ScheduleAfterIsRelative) {
  sim::Simulator s;
  std::vector<sim::Time> at;
  s.schedule_at(50, [&] {
    s.schedule_after(25, [&] { at.push_back(s.now()); });
  });
  s.run_all();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], 75);
}

TEST(Simulator, PastEventsClampToNow) {
  sim::Simulator s;
  s.schedule_at(100, [&] {
    s.schedule_at(10, [&] { EXPECT_EQ(s.now(), 100); });
  });
  s.run_all();
}

TEST(Simulator, NestedSchedulingRunsInOrder) {
  sim::Simulator s;
  std::vector<int> order;
  s.schedule_at(10, [&] {
    order.push_back(1);
    s.schedule_after(5, [&] { order.push_back(3); });
    s.schedule_after(1, [&] { order.push_back(2); });
  });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelViaSimulator) {
  sim::Simulator s;
  bool fired = false;
  const auto id = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  sim::Simulator s;
  EXPECT_FALSE(s.step());
  s.schedule_at(5, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(s.events_executed(), 1u);
}

TEST(Simulator, DeterministicWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator s(seed);
    std::vector<double> values;
    for (int i = 0; i < 100; ++i) {
      s.schedule_after(
          static_cast<sim::Duration>(s.rng().uniform(0, 1000)),
          [&values, &s] { values.push_back(s.rng().gaussian()); });
    }
    s.run_all();
    return values;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

}  // namespace
}  // namespace bamboo
