// Tests for the network-churn engine (core/churn.h + the harness
// executor): DSL parse/format for every event kind, the canonical
// round-trip property provenance relies on, strict rejection of
// malformed / half-specified schedules (the bug the old FaultPlan had),
// and end-to-end behavior of scheduled degrade / partition / burst /
// fluctuation events through execute().

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "client/workload.h"
#include "core/churn.h"
#include "core/config.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "util/rng.h"

namespace bamboo {
namespace {

using core::ChurnEvent;
using core::ChurnKind;
using core::ChurnSchedule;
using core::ChurnTarget;

// ---------------------------------------------------------------------------
// DSL parsing
// ---------------------------------------------------------------------------

TEST(ChurnDsl, EmptyScheduleParses) {
  EXPECT_TRUE(core::parse_churn("").empty());
  EXPECT_TRUE(core::parse_churn("  ").empty());
  EXPECT_EQ(core::canonical_churn(""), "");
}

TEST(ChurnDsl, ParsesTheIssueExample) {
  const auto s = core::parse_churn(
      "degrade@2s:link=0-3:+40ms;partition@4s:groups=0-1|2-3;heal@6s");
  ASSERT_EQ(s.size(), 3u);

  EXPECT_EQ(s[0].kind, ChurnKind::kLinkDegrade);
  EXPECT_DOUBLE_EQ(s[0].at_s, 2.0);
  EXPECT_EQ(s[0].target, ChurnTarget::kLink);
  EXPECT_EQ(s[0].a, 0u);
  EXPECT_EQ(s[0].b, 3u);
  EXPECT_FALSE(s[0].directed);
  EXPECT_DOUBLE_EQ(s[0].extra_ms, 40.0);

  EXPECT_EQ(s[1].kind, ChurnKind::kPartitionStart);
  EXPECT_DOUBLE_EQ(s[1].at_s, 4.0);
  ASSERT_EQ(s[1].groups.size(), 2u);
  EXPECT_EQ(s[1].groups[0], (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(s[1].groups[1], (std::vector<std::uint32_t>{2, 3}));

  EXPECT_EQ(s[2].kind, ChurnKind::kPartitionHeal);
  EXPECT_DOUBLE_EQ(s[2].at_s, 6.0);
}

TEST(ChurnDsl, ParsesEveryTargetForm) {
  const auto directed = core::parse_churn("degrade@1s:link=2>0:+5ms");
  EXPECT_EQ(directed[0].target, ChurnTarget::kLink);
  EXPECT_TRUE(directed[0].directed);
  EXPECT_EQ(directed[0].a, 2u);
  EXPECT_EQ(directed[0].b, 0u);

  const auto replica = core::parse_churn("degrade@1s:replica=3:+5ms");
  EXPECT_EQ(replica[0].target, ChurnTarget::kReplica);
  EXPECT_EQ(replica[0].a, 3u);

  const auto region = core::parse_churn("degrade@1s:region=1/3:+5ms");
  EXPECT_EQ(region[0].target, ChurnTarget::kRegion);
  EXPECT_EQ(region[0].region, 1u);
  EXPECT_EQ(region[0].regions, 3u);

  const auto leader = core::parse_churn("degrade@1s:leader:+5ms");
  EXPECT_EQ(leader[0].target, ChurnTarget::kLeader);
  EXPECT_EQ(leader[0].a, 0u);

  const auto leader2 = core::parse_churn("degrade@1s:leader=2:+5ms");
  EXPECT_EQ(leader2[0].target, ChurnTarget::kLeader);
  EXPECT_EQ(leader2[0].a, 2u);

  const auto follow = core::parse_churn("degrade@1s:leader=follow:+5ms");
  EXPECT_EQ(follow[0].target, ChurnTarget::kLeaderFollow);
  const auto follow_restore = core::parse_churn("restore@2s:leader=follow");
  EXPECT_EQ(follow_restore[0].target, ChurnTarget::kLeaderFollow);
  EXPECT_EQ(core::canonical_churn("degrade@1s:leader=follow:+5ms"),
            "degrade@1s:leader=follow:+5ms");

  // No target = every link, mirroring restore/burst.
  const auto all = core::parse_churn("degrade@1s:+5ms");
  EXPECT_EQ(all[0].target, ChurnTarget::kAll);
  EXPECT_EQ(core::canonical_churn("degrade@1s:+5ms"), "degrade@1s:+5ms");
}

TEST(ChurnDsl, ParsesUnitsAndNegativeDeltas) {
  const auto s = core::parse_churn("degrade@500ms:link=0-1:-2500ms");
  EXPECT_DOUBLE_EQ(s[0].at_s, 0.5);
  EXPECT_DOUBLE_EQ(s[0].extra_ms, -2500.0);
  const auto t = core::parse_churn("burst@1s:loss=0.5:for=250ms");
  EXPECT_DOUBLE_EQ(t[0].for_s, 0.25);
}

TEST(ChurnDsl, ParsesFluctBurstCrashSilence) {
  const auto s = core::parse_churn(
      "fluct@6s:for=6s:lo=10ms:hi=100ms;"
      "burst@2s:replica=1:loss=0.9:for=1s;"
      "crash@3s:replica=2;silence@4s:replica=1");
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0].kind, ChurnKind::kFluctuation);
  EXPECT_DOUBLE_EQ(s[0].for_s, 6.0);
  EXPECT_DOUBLE_EQ(s[0].lo_ms, 10.0);
  EXPECT_DOUBLE_EQ(s[0].hi_ms, 100.0);
  EXPECT_EQ(s[1].kind, ChurnKind::kLossBurst);
  EXPECT_DOUBLE_EQ(s[1].loss, 0.9);
  EXPECT_EQ(s[2].kind, ChurnKind::kCrash);
  EXPECT_EQ(s[2].a, 2u);
  EXPECT_EQ(s[3].kind, ChurnKind::kSilence);
  EXPECT_EQ(s[3].a, 1u);
}

TEST(ChurnDsl, ParsesRegionPartitions) {
  const auto s = core::parse_churn("partition@4s:regions=0|1-2:of=3");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].regions, 3u);
  ASSERT_EQ(s[0].groups.size(), 2u);
  EXPECT_EQ(s[0].groups[0], (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(s[0].groups[1], (std::vector<std::uint32_t>{1, 2}));
}

TEST(ChurnDsl, ParsesAndRejectsPeriodicEvents) {
  // every=<dur> re-fires degrade/restore/burst/fluct until end-of-run.
  const auto s = core::parse_churn(
      "degrade@1s:link=0-1:+30ms:every=2s;restore@2s:link=0-1:every=2s;"
      "burst@0.5s:replica=3:loss=0.5:for=250ms:every=1s;"
      "fluct@1s:for=0.5s:lo=5ms:hi=20ms:every=3s");
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s[0].every_s, 2.0);
  EXPECT_DOUBLE_EQ(s[1].every_s, 2.0);
  EXPECT_DOUBLE_EQ(s[2].every_s, 1.0);
  EXPECT_DOUBLE_EQ(s[3].every_s, 3.0);
  // every= accepted in any position, canonicalized to the tail.
  EXPECT_EQ(core::canonical_churn("degrade@1s:every=2s:link=0-1:+30ms"),
            "degrade@1s:link=0-1:+30ms:every=2s");

  // Rejected on partition/heal/crash/silence, and degenerate periods.
  for (const char* dsl :
       {"partition@2s:groups=0-1|2-3:every=2s", "heal@2s:every=2s",
        "crash@2s:replica=1:every=2s", "silence@2s:replica=1:every=2s",
        "degrade@1s:link=0-1:+5ms:every=0s",
        "degrade@1s:link=0-1:+5ms:every=1s:every=2s"}) {
    EXPECT_THROW(static_cast<void>(core::parse_churn(dsl)),
                 std::invalid_argument)
        << dsl;
  }
}

TEST(ChurnDsl, ParsesTimeoutTriggersAndCrashRestart) {
  // '@timeout' replaces the wall-clock instant with "the first pacemaker
  // timeout observed anywhere in the cluster".
  const auto cond = core::parse_churn("crash@timeout:replica=1");
  ASSERT_EQ(cond.size(), 1u);
  EXPECT_EQ(cond[0].kind, ChurnKind::kCrash);
  EXPECT_TRUE(cond[0].on_timeout);
  EXPECT_DOUBLE_EQ(cond[0].at_s, 0.0);
  EXPECT_EQ(cond[0].a, 1u);

  const auto deg = core::parse_churn("degrade@timeout:leader=follow:+40ms");
  EXPECT_TRUE(deg[0].on_timeout);
  EXPECT_EQ(deg[0].target, ChurnTarget::kLeaderFollow);
  EXPECT_DOUBLE_EQ(deg[0].extra_ms, 40.0);

  // crash-restart: fail-stop + rebuild from the durable store after an
  // optional downtime (for= reuses the window-length argument).
  const auto cr = core::parse_churn("crash-restart@0.2s:replica=1:for=0.1s");
  ASSERT_EQ(cr.size(), 1u);
  EXPECT_EQ(cr[0].kind, ChurnKind::kCrashRestart);
  EXPECT_FALSE(cr[0].on_timeout);
  EXPECT_EQ(cr[0].target, ChurnTarget::kReplica);
  EXPECT_EQ(cr[0].a, 1u);
  EXPECT_DOUBLE_EQ(cr[0].for_s, 0.1);

  const auto instant = core::parse_churn("crash-restart@timeout:replica=2");
  EXPECT_TRUE(instant[0].on_timeout);
  EXPECT_DOUBLE_EQ(instant[0].for_s, 0.0);  // downtime defaults to 0

  // Both features are canonical fixed points (the provenance property).
  for (const char* dsl :
       {"crash@timeout:replica=1", "degrade@timeout:leader=follow:+40ms",
        "crash-restart@0.2s:replica=1:for=0.1s",
        "crash-restart@timeout:replica=2"}) {
    EXPECT_EQ(core::canonical_churn(dsl), dsl) << dsl;
  }

  // Strictness: '@timeout' only on degrade/crash/crash-restart and only
  // one-shot; crash-restart takes replica= plus an optional for= only.
  for (const char* dsl :
       {"heal@timeout",                           // kind without @timeout
        "silence@timeout:replica=1",              // ditto
        "restore@timeout:replica=1",              // ditto
        "burst@timeout:loss=0.5:for=1s",          // ditto
        "fluct@timeout:for=1s:lo=1ms:hi=2ms",     // ditto
        "partition@timeout:groups=0-1|2-3",       // ditto
        "crash@timeout:replica=1:every=2s",       // conditional + periodic
        "degrade@timeout:link=0-1:+5ms:every=1s", // ditto
        "crash-restart@2s",                       // missing replica=
        "crash-restart@2s:replica=1:every=2s",    // one-shot kind
        "crash-restart@2s:replica=1:loss=0.5",    // unknown argument
        "crash-restart@2s:link=0-1",              // wrong target kind
        "crash-restart@2s:replica=1:for=0s",      // degenerate downtime
        "crash-restart@2s:replica=1:for=-1s"}) {  // negative downtime
    EXPECT_THROW(static_cast<void>(core::parse_churn(dsl)),
                 std::invalid_argument)
        << dsl;
  }
}

TEST(ChurnDsl, RejectsLeaderFollowOutsideDegradeRestore) {
  for (const char* dsl :
       {"burst@1s:leader=follow:loss=0.5:for=1s",
        "crash@1s:leader=follow", "silence@1s:leader=follow"}) {
    EXPECT_THROW(static_cast<void>(core::parse_churn(dsl)),
                 std::invalid_argument)
        << dsl;
  }
}

TEST(ChurnDsl, RejectsMalformedSchedules) {
  const std::vector<const char*> bad = {
      "nonsense@2s",                        // unknown kind
      "degrade",                            // no @time
      "degrade@2:link=0-1:+5ms",            // missing time unit
      "degrade@2s:link=0-1",                // degrade without delta
      "crash@2s:replica=4294967296",        // id beyond uint32
      "burst@2s:loss=0.1:loss=0.9:for=1s",  // duplicate loss=
      "fluct@2s:for=1s:for=2s:lo=1ms:hi=2ms",  // duplicate for=
      "fluct@2s:for=1s:lo=1ms:lo=2ms:hi=3ms",  // duplicate lo=
      "degrade@2s:link=0:+5ms",             // malformed link
      "degrade@2s:link=1-1:+5ms",           // self-link
      "degrade@-2s:link=0-1:+5ms",          // negative time
      "degrade@2s:region=3/3:+5ms",         // region id out of range
      "restore@2s:+5ms",                    // restore takes no delta
      "partition@2s",                       // partition without groups
      "partition@2s:groups=0-1",            // a single group
      "partition@2s:regions=0|1",           // regions without of=
      "partition@2s:groups=0-1|2:of=3",     // of= with groups form
      "heal@2s:groups=0|1",                 // heal takes no args
      "burst@2s:loss=0.5",                  // burst without for=
      "burst@2s:for=1s",                    // burst without loss=
      "burst@2s:loss=1.5:for=1s",           // loss out of range
      "burst@2s:loss=0.5:for=0s",           // empty window
      "crash@2s",                           // crash without replica=
      "crash@2s:link=0-1",                  // wrong target kind
      "degrade@2s:link=0-1:+5ms;",          // stray ';'
      "degrade@2s:link=0-1:+5ms:whatever",  // unknown argument
  };
  for (const char* dsl : bad) {
    EXPECT_THROW(static_cast<void>(core::parse_churn(dsl)),
                 std::invalid_argument)
        << dsl;
  }
}

TEST(ChurnDsl, RejectsNonFiniteNumbers) {
  // strtod accepts "nan"/"inf", but every range check compares false
  // against NaN and inf defeats the time bounds — the strict parser
  // must reject them outright (and so must topology specs, which share
  // the parser helper).
  for (const char* dsl :
       {"burst@1s:loss=nan:for=1s", "degrade@infs:link=0-1:+40ms",
        "degrade@1s:link=0-1:+nanms", "fluct@1s:for=infs:lo=1ms:hi=2ms"}) {
    EXPECT_THROW(static_cast<void>(core::parse_churn(dsl)),
                 std::invalid_argument)
        << dsl;
  }
}

TEST(ChurnDsl, RejectsHalfSpecifiedFluctuationWindows) {
  // The old FaultPlan silently ignored a half-specified window; the DSL
  // refuses every partial combination instead.
  for (const char* dsl :
       {"fluct@2s:lo=10ms:hi=100ms", "fluct@2s:for=3s:hi=100ms",
        "fluct@2s:for=3s:lo=10ms", "fluct@2s:for=3s:lo=100ms:hi=10ms",
        "fluct@2s"}) {
    EXPECT_THROW(static_cast<void>(core::parse_churn(dsl)),
                 std::invalid_argument)
        << dsl;
  }
}

TEST(ChurnDsl, ConfigValidateRejectsBadChurn) {
  core::Config cfg;
  cfg.churn = "degrade@2s:link=0-1:+5ms";
  EXPECT_NO_THROW(cfg.validate());
  cfg.churn = "fluct@2s:lo=10ms";  // half-specified
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.churn = "garbage";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ChurnDsl, ConfigValidateRejectsBadGilbertElliott) {
  core::Config cfg;
  cfg.ge_p = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = core::Config{};
  cfg.ge_loss_bad = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = core::Config{};
  cfg.ge_p = 0.1;
  cfg.ge_r = 0.5;
  EXPECT_NO_THROW(cfg.validate());
}

// ---------------------------------------------------------------------------
// Canonical round-trip (the provenance property)
// ---------------------------------------------------------------------------

/// Generate one random valid event of each kind family.
ChurnEvent random_event(util::Rng& rng) {
  ChurnEvent ev;
  ev.at_s = rng.uniform(0.0, 30.0);
  const auto pick_every = [&] {
    if (rng.bernoulli(0.5)) ev.every_s = rng.uniform(0.1, 10.0);
  };
  const auto pick_follow = [&] {
    ev.target = ChurnTarget::kLeaderFollow;
    ev.a = 0;
  };
  const auto pick_target = [&](bool allow_all) {
    const int choice =
        static_cast<int>(rng.uniform_u64(allow_all ? 5 : 4)) +
        (allow_all ? 0 : 1);
    switch (choice) {
      case 0:
        ev.target = ChurnTarget::kAll;
        break;
      case 1:
        ev.target = ChurnTarget::kLink;
        ev.a = static_cast<std::uint32_t>(rng.uniform_u64(8));
        ev.b = (ev.a + 1 + static_cast<std::uint32_t>(rng.uniform_u64(7))) % 9;
        if (ev.a == ev.b) ev.b = (ev.b + 1) % 9;
        ev.directed = rng.bernoulli(0.5);
        break;
      case 2:
        ev.target = ChurnTarget::kReplica;
        ev.a = static_cast<std::uint32_t>(rng.uniform_u64(8));
        break;
      case 3:
        ev.target = ChurnTarget::kRegion;
        ev.regions = 2 + static_cast<std::uint32_t>(rng.uniform_u64(4));
        ev.region = static_cast<std::uint32_t>(rng.uniform_u64(ev.regions));
        break;
      default:
        ev.target = ChurnTarget::kLeader;
        ev.a = static_cast<std::uint32_t>(rng.uniform_u64(4));
        break;
    }
  };
  // Conditional triggers are one-shot and carry no wall-clock time.
  const auto pick_timeout_trigger = [&] {
    if (rng.bernoulli(0.25)) {
      ev.on_timeout = true;
      ev.at_s = 0;
    }
  };
  switch (rng.uniform_u64(9)) {
    case 0:
      ev.kind = ChurnKind::kLinkDegrade;
      // kAll allowed (no-target degrade = every link); degrade may also
      // follow the rotating leader and/or repeat.
      if (rng.bernoulli(0.2)) {
        pick_follow();
      } else {
        pick_target(true);
      }
      ev.extra_ms = rng.uniform(-20.0, 120.0);
      pick_timeout_trigger();
      if (!ev.on_timeout) pick_every();  // @timeout forbids every=
      break;
    case 1:
      ev.kind = ChurnKind::kLinkRestore;
      if (rng.bernoulli(0.2)) {
        pick_follow();
      } else {
        pick_target(true);
      }
      pick_every();
      break;
    case 2: {
      ev.kind = ChurnKind::kPartitionStart;
      // 2-3 groups of distinct ids dealt round-robin.
      const std::size_t n_groups = 2 + rng.uniform_u64(2);
      const std::uint32_t members = 2 + static_cast<std::uint32_t>(
                                            rng.uniform_u64(6));
      ev.groups.resize(n_groups);
      for (std::uint32_t id = 0; id < members + n_groups; ++id) {
        ev.groups[id % n_groups].push_back(id);
      }
      if (rng.bernoulli(0.5)) ev.regions = 16;  // region form, ids < 16
      break;
    }
    case 3:
      ev.kind = ChurnKind::kPartitionHeal;
      break;
    case 4:
      ev.kind = ChurnKind::kLossBurst;
      pick_target(true);
      ev.loss = rng.uniform(0.0, 0.999);
      ev.for_s = rng.uniform(0.01, 10.0);
      pick_every();
      break;
    case 5:
      ev.kind = ChurnKind::kFluctuation;
      ev.for_s = rng.uniform(0.01, 10.0);
      ev.lo_ms = rng.uniform(0.0, 50.0);
      ev.hi_ms = ev.lo_ms + rng.uniform(0.0, 100.0);
      pick_every();
      break;
    case 6:
      ev.kind = ChurnKind::kCrash;
      ev.target = ChurnTarget::kReplica;
      ev.a = static_cast<std::uint32_t>(rng.uniform_u64(8));
      pick_timeout_trigger();
      break;
    case 7:
      ev.kind = ChurnKind::kCrashRestart;
      ev.target = ChurnTarget::kReplica;
      ev.a = static_cast<std::uint32_t>(rng.uniform_u64(8));
      if (rng.bernoulli(0.5)) ev.for_s = rng.uniform(0.01, 5.0);
      pick_timeout_trigger();
      break;
    default:
      ev.kind = ChurnKind::kSilence;
      ev.target = ChurnTarget::kReplica;
      ev.a = static_cast<std::uint32_t>(rng.uniform_u64(8));
      break;
  }
  return ev;
}

TEST(ChurnRoundTrip, RandomSchedulesSurviveFormatParseExactly) {
  // The provenance property: any schedule, serialized to its canonical
  // DSL (what report::Provenance stores) and re-parsed, yields an
  // identical FaultPlan — including bit-exact doubles.
  util::Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    ChurnSchedule schedule;
    const std::size_t n = 1 + rng.uniform_u64(6);
    for (std::size_t i = 0; i < n; ++i) schedule.push_back(random_event(rng));

    const std::string dsl = core::format_churn(schedule);
    const ChurnSchedule reparsed = core::parse_churn(dsl);
    ASSERT_EQ(reparsed, schedule) << "trial " << trial << ": " << dsl;
    // Canonical form is a fixed point.
    EXPECT_EQ(core::canonical_churn(dsl), dsl) << dsl;

    harness::FaultPlan plan{schedule};
    harness::FaultPlan replan{reparsed};
    EXPECT_EQ(plan, replan);
  }
}

TEST(ChurnRoundTrip, ProvenanceCarriesTheCanonicalForm) {
  harness::RunSpec spec;
  // Messy but valid spelling: ms times, bare leader, trailing spaces.
  spec.cfg.churn = " degrade@2500ms:leader:+40ms ;heal@4s";
  const auto prov = harness::report::provenance_of(spec);
  EXPECT_EQ(prov.churn, "degrade@2.5s:leader=0:+40ms;heal@4s");
  EXPECT_EQ(core::parse_churn(prov.churn), core::parse_churn(spec.cfg.churn));
}

// ---------------------------------------------------------------------------
// Engine end-to-end
// ---------------------------------------------------------------------------

harness::RunSpec churn_spec(const std::string& dsl) {
  harness::RunSpec spec;
  spec.cfg.n_replicas = 4;
  spec.cfg.bsize = 100;
  spec.cfg.memsize = 200000;
  spec.cfg.seed = 21;
  spec.cfg.churn = dsl;
  spec.workload.mode = client::LoadMode::kClosedLoop;
  spec.workload.concurrency = 64;
  spec.opts.warmup_s = 0.1;
  spec.opts.measure_s = 0.6;
  return spec;
}

TEST(ChurnEngine, DslAndProgrammaticScheduleAreEquivalent) {
  const std::string dsl = "degrade@0.2s:leader=0:+10ms;restore@0.4s:leader=0";
  const auto via_dsl = harness::execute(churn_spec(dsl));

  harness::RunSpec programmatic = churn_spec("");
  programmatic.faults.schedule = core::parse_churn(dsl);
  const auto via_plan = harness::execute(programmatic);
  EXPECT_EQ(via_dsl, via_plan);
}

TEST(ChurnEngine, DegradeSlowsAndRestoreRecovers) {
  const auto baseline = harness::execute(churn_spec(""));
  // Degrade EVERY replica's links for the whole window (each inter-replica
  // link gains 2 x 10 ms one-way, kept below the 100 ms view timer):
  // latency must rise.
  const auto degraded = harness::execute(churn_spec(
      "degrade@0.1s:replica=0:+10ms;degrade@0.1s:replica=1:+10ms;"
      "degrade@0.1s:replica=2:+10ms;degrade@0.1s:replica=3:+10ms"));
  EXPECT_GT(degraded.latency_ms_mean, baseline.latency_ms_mean + 5.0);
  EXPECT_TRUE(degraded.consistent);
  // Degrade + immediate restore before measurement: back to baseline-ish
  // (not bit-identical — the restore callbacks shift no RNG, but the
  // degraded warm-up leaves different in-flight state).
  const auto restored = harness::execute(churn_spec(
      "degrade@0.01s:replica=0:+10ms;restore@0.02s"));
  EXPECT_LT(restored.latency_ms_mean, degraded.latency_ms_mean);
  EXPECT_TRUE(restored.consistent);
}

TEST(ChurnEngine, PartitionStallsCommitsUntilHeal) {
  // 2|2 split of a 4-replica cluster: no side has a quorum of 3, so
  // commits stop inside the window and resume after heal.
  const auto split = harness::execute(
      churn_spec("partition@0.2s:groups=0-1|2-3;heal@0.45s"));
  const auto healthy = harness::execute(churn_spec(""));
  EXPECT_LT(split.blocks_committed, healthy.blocks_committed);
  EXPECT_GT(split.timeouts, 0u);
  EXPECT_GT(split.blocks_committed, 0u);  // resumed after heal
  EXPECT_TRUE(split.consistent);
  EXPECT_EQ(split.safety_violations, 0u);

  // A permanent partition (never healed) commits even less.
  const auto permanent =
      harness::execute(churn_spec("partition@0.2s:groups=0-1|2-3"));
  EXPECT_LT(permanent.blocks_committed, split.blocks_committed);
  EXPECT_TRUE(permanent.consistent);
}

TEST(ChurnEngine, RegionPartitionMatchesExplicitGroups) {
  // 4 replicas in 2 round-robin regions: region 0 = {0, 2}, region 1 =
  // {1, 3} — the regions form must behave exactly like the expanded one.
  const auto by_region = harness::execute(
      churn_spec("partition@0.2s:regions=0|1:of=2;heal@0.4s"));
  const auto by_groups = harness::execute(
      churn_spec("partition@0.2s:groups=0-2|1-3;heal@0.4s"));
  EXPECT_EQ(by_region, by_groups);
}

TEST(ChurnEngine, LossBurstIsTransient) {
  // A total-ish loss burst on the leader's links dents throughput while
  // it lasts; the baseline loss (0) must be restored afterwards.
  harness::RunSpec spec =
      churn_spec("burst@0.2s:replica=0:loss=0.95:for=0.2s");
  const auto burst = harness::execute(spec);
  const auto healthy = harness::execute(churn_spec(""));
  EXPECT_LT(burst.blocks_committed, healthy.blocks_committed);
  EXPECT_GT(burst.blocks_committed, 0u);
  EXPECT_TRUE(burst.consistent);
}

TEST(ChurnEngine, FluctuationEventMatchesLegacyTimelineSpec) {
  // The fig15 shape, expressed once through timeline_spec (which now
  // emits churn DSL) and once as a hand-written DSL string: identical.
  core::Config cfg;
  cfg.bsize = 100;
  cfg.seed = 9;
  client::WorkloadConfig wl;
  wl.mode = client::LoadMode::kOpenLoop;
  wl.arrival_rate_tps = 2000;

  const auto spec = harness::timeline_spec(
      cfg, wl, /*horizon=*/1.2, /*bucket=*/0.3, /*fluct_start=*/0.3,
      /*fluct_end=*/0.6, sim::milliseconds(10), sim::milliseconds(40),
      /*crash_at=*/0.9, 3, harness::FaultKind::kSilence);
  EXPECT_EQ(spec.cfg.churn,
            "fluct@0.3s:for=0.3s:lo=10ms:hi=40ms;silence@0.9s:replica=3");

  harness::RunSpec manual = spec;
  manual.cfg.churn = "fluct@0.3s:for=0.3s:lo=10ms:hi=40ms;"
                     "silence@0.9s:replica=3";
  const auto a = harness::execute_full(spec);
  const auto b = harness::execute_full(manual);
  EXPECT_EQ(a.result, b.result);
  EXPECT_EQ(a.tx_per_s, b.tx_per_s);
}

TEST(ChurnEngine, Fig15StyleScheduleIsPinned) {
  // The fig15 shape through the churn engine, pinned to values captured
  // after the engine was verified bit-identical to the pre-churn
  // install_fault_plan (bench_fig15_responsiveness stdout diffed clean
  // pre/post refactor at smoke and default scale). Guards future drift.
  core::Config cfg;
  cfg.bsize = 100;
  cfg.seed = 9;
  client::WorkloadConfig wl;
  wl.mode = client::LoadMode::kOpenLoop;
  wl.arrival_rate_tps = 2000;
  const auto spec = harness::timeline_spec(
      cfg, wl, /*horizon=*/1.2, /*bucket=*/0.3, /*fluct_start=*/0.3,
      /*fluct_end=*/0.6, sim::milliseconds(10), sim::milliseconds(40),
      /*crash_at=*/0.9, 3, harness::FaultKind::kSilence);
  const auto out = harness::execute_full(spec);
  EXPECT_DOUBLE_EQ(out.result.throughput_tps, 1491.6666666666667);
  EXPECT_DOUBLE_EQ(out.result.latency_ms_mean, 62.877549871508371);
  EXPECT_DOUBLE_EQ(out.result.latency_ms_p99, 304.04000600999979);
  EXPECT_EQ(out.result.views, 446u);
  EXPECT_EQ(out.result.blocks_committed, 441u);
  EXPECT_EQ(out.result.net_bytes, 2226560u);
  EXPECT_EQ(out.result.latency_samples, 1790u);
  EXPECT_EQ(out.result.timeouts, 6u);
  const std::vector<double> expected_buckets = {2096.666666666667, 190.0,
                                                3630.0, 50.0};
  EXPECT_EQ(out.tx_per_s, expected_buckets);
}

TEST(ChurnEngine, HalfSpecifiedTimelineWindowThrows) {
  core::Config cfg;
  client::WorkloadConfig wl;
  EXPECT_THROW(static_cast<void>(harness::timeline_spec(
                   cfg, wl, 1.0, 0.25, /*fluct_start=*/0.5,
                   /*fluct_end=*/0.2, 0, 0, -1, 0)),
               std::invalid_argument);
}

TEST(ChurnEngine, OutOfRangeIdsThrowAtInstall) {
  // Parseable but impossible for a 4-replica cluster: rejected when the
  // schedule is installed, before any event runs.
  for (const char* dsl :
       {"crash@0.1s:replica=9", "degrade@0.1s:link=0-11:+5ms",
        "partition@0.1s:groups=0-1|2-9", "degrade@0.1s:leader=7:+5ms"}) {
    EXPECT_THROW(static_cast<void>(harness::execute(churn_spec(dsl))),
                 std::invalid_argument)
        << dsl;
  }
}

TEST(ChurnEngine, ProgrammaticRegionTargetIsRangeChecked) {
  // A hand-built event can skip the DSL parser's guards: regions
  // defaults to 0, which must throw at install time, not SIGFPE on the
  // modulo.
  harness::RunSpec spec = churn_spec("");
  core::ChurnEvent ev;
  ev.kind = core::ChurnKind::kLinkDegrade;
  ev.at_s = 0.1;
  ev.target = core::ChurnTarget::kRegion;  // regions left at 0
  ev.extra_ms = 5;
  spec.faults.schedule = {ev};
  EXPECT_THROW(static_cast<void>(harness::execute(spec)),
               std::invalid_argument);

  core::ChurnEvent part;
  part.kind = core::ChurnKind::kPartitionStart;
  part.at_s = 0.1;
  part.regions = 2;
  part.groups = {{0}, {5}};  // region id 5 out of range for 2 regions
  spec.faults.schedule = {part};
  EXPECT_THROW(static_cast<void>(harness::execute(spec)),
               std::invalid_argument);
}

TEST(ChurnEngine, NestedWindowsDoNotCancelTheOuterOne) {
  // A shorter window fully inside a longer one (same knob, same value):
  // when the inner one ends, the outer must stay in force — so the run
  // is bit-identical to the outer window alone. Before the active-window
  // bookkeeping, the inner end restored the BASELINE and silently cut
  // the outer window short.
  const auto burst_outer = harness::execute(
      churn_spec("burst@0.15s:replica=0:loss=0.9:for=0.5s"));
  const auto burst_nested = harness::execute(
      churn_spec("burst@0.15s:replica=0:loss=0.9:for=0.5s;"
                 "burst@0.2s:replica=0:loss=0.9:for=0.1s"));
  EXPECT_EQ(burst_outer, burst_nested);

  const auto fluct_outer = harness::execute(
      churn_spec("fluct@0.15s:for=0.5s:lo=5ms:hi=25ms"));
  const auto fluct_nested = harness::execute(
      churn_spec("fluct@0.15s:for=0.5s:lo=5ms:hi=25ms;"
                 "fluct@0.2s:for=0.1s:lo=5ms:hi=25ms"));
  EXPECT_EQ(fluct_outer, fluct_nested);
}

TEST(ChurnEngine, ProgrammaticScheduleReachesProvenance) {
  // Provenance records the EFFECTIVE schedule: programmatic FaultPlan
  // events followed by the cfg.churn DSL.
  harness::RunSpec spec = churn_spec("heal@4s");
  spec.faults.schedule = core::parse_churn("crash@2s:replica=1");
  const auto prov = harness::report::provenance_of(spec);
  EXPECT_EQ(prov.churn, "crash@2s:replica=1;heal@4s");
}

TEST(ChurnEngine, CrashEventMatchesClusterCrash) {
  // The crash event goes through the same Cluster::crash_replica the old
  // FaultPlan used — silence likewise.
  const auto crash = harness::execute(churn_spec("crash@0.3s:replica=3"));
  EXPECT_TRUE(crash.consistent);
  EXPECT_GT(crash.blocks_committed, 0u);
  const auto silence = harness::execute(churn_spec("silence@0.3s:replica=3"));
  EXPECT_TRUE(silence.consistent);
  EXPECT_NE(crash, silence);
}

TEST(ChurnEngine, TimeoutTriggerIsPureObservationUntilItFires) {
  // A healthy 4-replica run under the 100 ms view timer sees no pacemaker
  // timeouts, so an armed '@timeout' crash never fires — and the poll is
  // pure observation, so the run is bit-identical to the unarmed baseline.
  const auto baseline = harness::execute(churn_spec(""));
  ASSERT_EQ(baseline.timeouts, 0u);
  const auto armed = harness::execute(churn_spec("crash@timeout:replica=3"));
  EXPECT_EQ(armed, baseline);
}

TEST(ChurnEngine, TimeoutTriggerFiresOnFirstObservedTimeout) {
  // A 2|2 partition forces timeouts; the armed conditional crash then
  // takes replica 3 down for good, so the cluster limps on 3 replicas
  // after heal and commits strictly less than the partition alone.
  const auto split = harness::execute(
      churn_spec("partition@0.2s:groups=0-1|2-3;heal@0.35s"));
  ASSERT_GT(split.timeouts, 0u);
  const auto conditional = harness::execute(churn_spec(
      "partition@0.2s:groups=0-1|2-3;heal@0.35s;crash@timeout:replica=3"));
  EXPECT_LT(conditional.blocks_committed, split.blocks_committed);
  EXPECT_GT(conditional.blocks_committed, 0u);
  EXPECT_TRUE(conditional.consistent);
  EXPECT_EQ(conditional.safety_violations, 0u);
}

TEST(ChurnEngine, CrashRestartRebuildsAndResumesCommits) {
  // crash-restart = crash + rebuild-from-store: the restarted replica
  // rejoins, so the run counts one restart and keeps committing; a plain
  // crash of the same replica counts none.
  const auto crashed = harness::execute(churn_spec("crash@0.25s:replica=3"));
  EXPECT_EQ(crashed.restarts, 0u);
  const auto restarted = harness::execute(
      churn_spec("crash-restart@0.25s:replica=3:for=0.15s"));
  EXPECT_EQ(restarted.restarts, 1u);
  EXPECT_TRUE(restarted.consistent);
  EXPECT_EQ(restarted.safety_violations, 0u);
  EXPECT_GT(restarted.blocks_committed, 0u);
}

TEST(ChurnEngine, ChurnScheduleIsDeterministicAcrossThreadCounts) {
  // The acceptance bar: a nonempty schedule is bit-identical across
  // --threads values (sharding reuses the same per-spec execution).
  std::vector<harness::RunSpec> grid;
  for (const char* dsl :
       {"degrade@0.2s:leader=0:+15ms;restore@0.4s:leader=0",
        "partition@0.2s:groups=0-1|2-3;heal@0.4s",
        "burst@0.2s:replica=2:loss=0.8:for=0.2s",
        "fluct@0.2s:for=0.2s:lo=5ms:hi=25ms;crash@0.5s:replica=3",
        "partition@0.2s:groups=0-1|2-3;heal@0.35s;crash@timeout:replica=3",
        "crash-restart@0.25s:replica=3:for=0.15s"}) {
    grid.push_back(churn_spec(dsl));
  }
  harness::ParallelRunner one(1);
  harness::ParallelRunner four(4);
  const auto a = one.run(grid);
  const auto b = four.run(grid);
  EXPECT_EQ(a, b);
}

TEST(ChurnEngine, LeaderFollowDegradesTheRotatingLeader) {
  // With round-robin rotation, degrading only replica 0's uplink
  // (leader=0) hurts 1 view in 4; leader=follow moves the degradation
  // with the rotation and hurts EVERY view, so it must cost more.
  const auto baseline = harness::execute(churn_spec(""));
  const auto pinned =
      harness::execute(churn_spec("degrade@0.15s:leader=0:+15ms"));
  const auto follow =
      harness::execute(churn_spec("degrade@0.15s:leader=follow:+15ms"));
  EXPECT_GT(pinned.latency_ms_mean, baseline.latency_ms_mean);
  EXPECT_GT(follow.latency_ms_mean, pinned.latency_ms_mean);
  EXPECT_TRUE(follow.consistent);

  // restore:leader=follow stops the following and heals the carrier.
  const auto restored = harness::execute(churn_spec(
      "degrade@0.15s:leader=follow:+15ms;restore@0.3s:leader=follow"));
  EXPECT_LT(restored.latency_ms_mean, follow.latency_ms_mean);
  EXPECT_TRUE(restored.consistent);
}

TEST(ChurnEngine, LeaderFollowIsDeterministicAcrossThreadCounts) {
  std::vector<harness::RunSpec> grid = {
      churn_spec("degrade@0.15s:leader=follow:+15ms"),
      churn_spec("degrade@0.15s:leader=follow:+10ms;"
                 "restore@0.4s:leader=follow"),
  };
  harness::ParallelRunner one(1);
  harness::ParallelRunner four(4);
  EXPECT_EQ(one.run(grid), four.run(grid));
}

TEST(ChurnEngine, ProgrammaticLeaderFollowOnBurstThrowsAtInstall) {
  // The DSL parser rejects it; a programmatic schedule must be caught at
  // install time instead of silently resolving to nothing.
  harness::RunSpec spec = churn_spec("");
  core::ChurnEvent ev;
  ev.kind = core::ChurnKind::kLossBurst;
  ev.at_s = 0.1;
  ev.target = core::ChurnTarget::kLeaderFollow;
  ev.loss = 0.5;
  ev.for_s = 0.1;
  spec.faults.schedule = {ev};
  EXPECT_THROW(static_cast<void>(harness::execute(spec)),
               std::invalid_argument);
}

TEST(ChurnEngine, PeriodicBurstRefiresUntilEndOfRun) {
  // One 0.1 s burst at 0.15 s dents one window; the same burst with
  // every=0.15s keeps re-firing, so it must lose strictly more blocks.
  const auto once = harness::execute(
      churn_spec("burst@0.15s:replica=0:loss=0.95:for=0.1s"));
  const auto repeating = harness::execute(
      churn_spec("burst@0.15s:replica=0:loss=0.95:for=0.1s:every=0.15s"));
  const auto healthy = harness::execute(churn_spec(""));
  EXPECT_LT(once.blocks_committed, healthy.blocks_committed);
  EXPECT_LT(repeating.blocks_committed, once.blocks_committed);
  EXPECT_TRUE(repeating.consistent);

  // Repetition is deterministic across thread counts like everything else.
  std::vector<harness::RunSpec> grid = {
      churn_spec("burst@0.15s:replica=0:loss=0.9:for=0.1s:every=0.2s"),
      churn_spec("degrade@0.1s:link=0-1:+20ms:every=0.2s;"
                 "restore@0.2s:link=0-1:every=0.2s"),
  };
  harness::ParallelRunner one(1);
  harness::ParallelRunner four(4);
  EXPECT_EQ(one.run(grid), four.run(grid));
}

TEST(ChurnEngine, GilbertElliottRunsAreDeterministicAndDegrade) {
  harness::RunSpec ge = churn_spec("");
  ge.cfg.ge_p = 0.05;
  ge.cfg.ge_r = 0.3;
  ge.cfg.ge_loss_bad = 0.9;
  const auto a = harness::execute(ge);
  const auto b = harness::execute(ge);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.consistent);
  const auto clean = harness::execute(churn_spec(""));
  EXPECT_LT(a.blocks_committed, clean.blocks_committed);
}

}  // namespace
}  // namespace bamboo
