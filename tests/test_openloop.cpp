// Tests for the open-loop load engine and mempool backpressure: the
// arrival DSL, Poisson/fixed/burst/trace schedules, the million-client
// session population, admission accounting in RunResult, determinism
// across repeats and thread counts, and — critically — pinned captures
// proving the default closed-loop paths draw the exact same schedule as
// before the open-loop engine existed.

#include <gtest/gtest.h>

#include <stdexcept>

#include "client/workload.h"
#include "harness/experiment.h"
#include "harness/runner.h"

namespace bamboo {
namespace {

// ---------------------------------------------------------------------------
// Arrival DSL
// ---------------------------------------------------------------------------

TEST(ArrivalDsl, ParsesEveryProcessKind) {
  EXPECT_EQ(client::parse_arrival("").kind,
            client::ArrivalProcess::Kind::kPoisson);
  EXPECT_EQ(client::parse_arrival("poisson").kind,
            client::ArrivalProcess::Kind::kPoisson);
  EXPECT_EQ(client::parse_arrival("fixed").kind,
            client::ArrivalProcess::Kind::kFixed);

  const auto burst = client::parse_arrival("burst:1x0.5,4x0.1");
  EXPECT_EQ(burst.kind, client::ArrivalProcess::Kind::kBurst);
  ASSERT_EQ(burst.phases.size(), 2u);
  EXPECT_DOUBLE_EQ(burst.phases[1].value, 4.0);
  EXPECT_DOUBLE_EQ(burst.cycle_s, 0.6);

  const auto trace = client::parse_arrival("trace:500@1,2000@0.5");
  EXPECT_EQ(trace.kind, client::ArrivalProcess::Kind::kTrace);
  ASSERT_EQ(trace.phases.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.phases[0].value, 500.0);
}

TEST(ArrivalDsl, RejectsHalfSpecifiedAndMalformedSpecs) {
  // The churn-DSL strictness contract: half-specified throws, never
  // silently defaults.
  EXPECT_THROW(client::parse_arrival("burst"), std::invalid_argument);
  EXPECT_THROW(client::parse_arrival("burst:"), std::invalid_argument);
  EXPECT_THROW(client::parse_arrival("burst:2"), std::invalid_argument);
  EXPECT_THROW(client::parse_arrival("burst:2x"), std::invalid_argument);
  EXPECT_THROW(client::parse_arrival("burst:2x0.5,"), std::invalid_argument);
  EXPECT_THROW(client::parse_arrival("burst:0x0.5"), std::invalid_argument);
  EXPECT_THROW(client::parse_arrival("trace"), std::invalid_argument);
  EXPECT_THROW(client::parse_arrival("trace:100"), std::invalid_argument);
  EXPECT_THROW(client::parse_arrival("trace:-5@1"), std::invalid_argument);
  EXPECT_THROW(client::parse_arrival("bogus"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Open-loop schedules
// ---------------------------------------------------------------------------

harness::RunSpec open_spec(const std::string& arrival, double rate_tps,
                           std::uint64_t seed = 7) {
  harness::RunSpec spec;
  spec.cfg.protocol = "hotstuff";
  spec.cfg.bsize = 100;
  spec.cfg.seed = seed;
  spec.workload.mode = client::LoadMode::kOpenLoop;
  spec.workload.arrival = arrival;
  spec.workload.arrival_rate_tps = rate_tps;
  spec.opts.warmup_s = 0.2;
  spec.opts.measure_s = 1.0;
  return spec;
}

TEST(OpenLoop, PoissonOfferedRateMatchesLambda) {
  // First-moment check: over a 1 s window at λ = 5000/s the measured
  // offered rate concentrates near λ (sd ≈ √5000 ≈ 71/s, so ±5% is > 3σ).
  const harness::RunResult r = harness::execute(open_spec("poisson", 5000));
  EXPECT_NEAR(r.offered_tps, 5000, 250);
  EXPECT_GT(r.throughput_tps, 0);
}

TEST(OpenLoop, FixedArrivalsAreMetronomic) {
  // Deterministic 1/λ spacing: the window holds λ·t ± 1 arrivals exactly.
  const harness::RunResult r = harness::execute(open_spec("fixed", 2000));
  EXPECT_NEAR(r.offered_tps * r.measured_s, 2000 * r.measured_s, 2.0);
}

TEST(OpenLoop, BurstRaisesOfferedAboveBase) {
  // 4x multiplier half the cycle: mean offered ≈ 2.5x base.
  const harness::RunResult r =
      harness::execute(open_spec("burst:1x0.1,4x0.1", 2000));
  EXPECT_GT(r.offered_tps, 2000 * 1.8);
  EXPECT_LT(r.offered_tps, 2000 * 3.2);
}

TEST(OpenLoop, TraceReplayIsDeterministic) {
  const harness::RunSpec spec = open_spec("trace:1000@0.5,4000@0.5", 1000);
  const harness::RunResult a = harness::execute(spec);
  const harness::RunResult b = harness::execute(spec);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.latency_hist.empty());
}

TEST(OpenLoop, ClientPopulationKeepsDeterminismAndSpreadsSessions) {
  harness::RunSpec spec = open_spec("poisson", 3000);
  spec.workload.client_population = 1'000'000;
  const harness::RunResult a = harness::execute(spec);
  const harness::RunResult b = harness::execute(spec);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.throughput_tps, 0);
}

// ---------------------------------------------------------------------------
// Histogram plumbing in RunResult
// ---------------------------------------------------------------------------

TEST(OpenLoop, HistogramQuantilesTrackSampleQuantiles) {
  const harness::RunResult r = harness::execute(open_spec("poisson", 3000));
  ASSERT_GT(r.latency_samples, 100u);
  // Same underlying completions, two estimators: the histogram quantile
  // is within its bucket resolution (1/64) of the sorted-sample one.
  EXPECT_NEAR(r.hist_p50_ms, r.latency_ms_p50, r.latency_ms_p50 * 0.05);
  EXPECT_NEAR(r.hist_p99_ms, r.latency_ms_p99, r.latency_ms_p99 * 0.05);
  EXPECT_GE(r.hist_p999_ms, r.hist_p99_ms);
  EXPECT_GE(r.hist_p99_ms, r.hist_p50_ms);
}

// ---------------------------------------------------------------------------
// Admission accounting (mempool backpressure -> RunResult)
// ---------------------------------------------------------------------------

TEST(OpenLoop, OverloadAgainstBoundedPoolRejects) {
  // Load spreads uniformly over the 4 replica pools, so overload needs
  // λ/4 to outrun each pool's drain rate: deep overload + a tiny pool.
  harness::RunSpec spec = open_spec("poisson", 80000);
  spec.cfg.memsize = 500;
  const harness::RunResult r = harness::execute(spec);
  EXPECT_GT(r.mem_admitted, 0u);
  EXPECT_GT(r.mem_rejected, 0u);
  // Goodput decouples from offered load: the overload signature.
  EXPECT_LT(r.throughput_tps, r.offered_tps);
}

TEST(OpenLoop, AdmissionPolicyReachesReplicaPools) {
  harness::RunSpec spec = open_spec("poisson", 80000);
  spec.cfg.memsize = 500;
  spec.cfg.admission = "priority:0.2";
  const harness::RunResult r = harness::execute(spec);
  // The reserve shrinks the add_new capacity, so rejections start earlier.
  EXPECT_GT(r.mem_rejected, 0u);
  EXPECT_EQ(r.safety_violations, 0u);
}

TEST(ClosedLoop, BackoffHintDelaysRetriesWithoutStalling) {
  harness::RunSpec spec;
  spec.cfg.protocol = "hotstuff";
  spec.cfg.bsize = 100;
  spec.cfg.memsize = 50;
  spec.cfg.admission = "backoff:10";
  spec.cfg.seed = 5;
  // ~concurrency/4 outstanding per replica pool >> its 50-slot capacity.
  spec.workload.concurrency = 800;
  spec.opts.warmup_s = 0.2;
  spec.opts.measure_s = 1.0;
  const harness::RunResult r = harness::execute(spec);
  EXPECT_GT(r.mem_rejected, 0u);     // the pool pushed back
  EXPECT_GT(r.throughput_tps, 0);    // clients kept making progress
  EXPECT_TRUE(r.consistent);
}

// ---------------------------------------------------------------------------
// Determinism across repeats and thread counts
// ---------------------------------------------------------------------------

TEST(OpenLoop, ThreadCountDoesNotChangeResults) {
  std::vector<harness::RunSpec> grid;
  grid.push_back(open_spec("poisson", 4000));
  grid.push_back(open_spec("burst:1x0.1,3x0.1", 3000));
  grid.push_back(open_spec("trace:2000@0.4,6000@0.4", 1000));
  grid[1].workload.client_population = 1'000'000;
  grid[1].cfg.memsize = 500;

  harness::ParallelRunner one(harness::RunnerOptions{1});
  harness::ParallelRunner four(harness::RunnerOptions{4});
  const auto a = one.run_repeated_grid(grid, 2, {});
  const auto b = four.run_repeated_grid(grid, 2, {});
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].result, b.jobs[i].result) << "job " << i;
  }
}

// ---------------------------------------------------------------------------
// Pinned compatibility: the defaults draw the legacy schedule
// ---------------------------------------------------------------------------

TEST(PinnedOpenLoop, ExplicitDefaultsMatchImplicitDefaults) {
  // arrival="poisson", client_population=0, admission="drop" must be
  // no-ops: bit-identical RunResults to a spec that never mentions them.
  harness::RunSpec implicit;
  implicit.cfg.protocol = "hotstuff";
  implicit.cfg.seed = 42;
  implicit.workload.concurrency = 32;
  implicit.opts.warmup_s = 0.2;
  implicit.opts.measure_s = 0.8;

  harness::RunSpec explicit_spec = implicit;
  explicit_spec.workload.arrival = "poisson";
  explicit_spec.workload.client_population = 0;
  explicit_spec.cfg.admission = "drop";
  EXPECT_EQ(harness::execute(implicit), harness::execute(explicit_spec));

  // Same for the legacy open loop.
  harness::RunSpec open_implicit = implicit;
  open_implicit.workload.mode = client::LoadMode::kOpenLoop;
  open_implicit.workload.arrival_rate_tps = 2000;
  harness::RunSpec open_explicit = open_implicit;
  open_explicit.workload.arrival = "poisson";
  open_explicit.cfg.admission = "drop";
  EXPECT_EQ(harness::execute(open_implicit),
            harness::execute(open_explicit));
}

}  // namespace
}  // namespace bamboo
