// Liveness regression suite (PR 9): commits must RESUME after the two
// canonical recovery scenarios — a partition that heals, and a fail-stop
// leader crash the quorum survives — for every registered protocol
// family, including the multi-leader FnF-BFT.
//
// The resume tests place the whole disturbance inside the warm-up window
// and measure strictly after it: any protocol whose pacemaker, sync path
// or (for FnF-BFT) slot-repair pipeline fails to restart the chain shows
// up as a zero-commit measurement window.
//
// The Pinned suite captures one full recovery trajectory per protocol on
// a fixed seed, byte-stable across runs and thread counts (the same
// discipline as test_perf_pinned.cpp): a behavior change in the pacemaker
// slot timers, the stuck-slot probe, the churn engine or the sync path
// moves these counters and must be re-recorded DELIBERATELY (generator
// pattern, DESIGN.md) with the diff called out in the PR.

#include <gtest/gtest.h>

#include <string>

#include "client/workload.h"
#include "harness/experiment.h"

namespace bamboo {
namespace {

struct Proto {
  const char* protocol;
  const char* election;
};

const Proto kProtocols[] = {
    {"hotstuff", "roundrobin"},     {"2chs", "roundrobin"},
    {"streamlet", "roundrobin"},    {"fasthotstuff", "roundrobin"},
    {"fnfbft", "multi:2"},
};

harness::RunSpec recovery_spec(const Proto& p, const std::string& churn) {
  harness::RunSpec spec;
  spec.cfg.protocol = p.protocol;
  spec.cfg.election = p.election;
  spec.cfg.n_replicas = 4;
  spec.cfg.seed = 7;
  spec.cfg.churn = churn;
  spec.workload.concurrency = 32;
  spec.opts.warmup_s = 0.4;
  spec.opts.measure_s = 0.6;
  return spec;
}

// --- commits resume after the disturbance ---------------------------------

TEST(LivenessResume, AfterPartitionHeals) {
  // 2-2 split: neither side holds a quorum of 3, so the chain stalls until
  // the heal at 0.3 s; the measurement window [0.4, 1.0] is entirely
  // post-heal.
  for (const Proto& p : kProtocols) {
    const auto r = harness::execute(
        recovery_spec(p, "partition@0.1s:groups=0-1|2-3;heal@0.3s"));
    EXPECT_TRUE(r.consistent) << p.protocol;
    EXPECT_EQ(r.safety_violations, 0u) << p.protocol;
    EXPECT_GT(r.blocks_committed, 0u)
        << p.protocol << ": no commits after the partition healed";
  }
}

TEST(LivenessResume, AfterLeaderCrash) {
  // Replica 1 leads views (and, for FnF-BFT, slots) on rotation; its
  // fail-stop leaves a 3-of-4 quorum that must keep committing through
  // the dead leader's turns (timeout/TC or slot repair, per protocol).
  for (const Proto& p : kProtocols) {
    const auto r =
        harness::execute(recovery_spec(p, "crash@0.2s:replica=1"));
    EXPECT_TRUE(r.consistent) << p.protocol;
    EXPECT_EQ(r.safety_violations, 0u) << p.protocol;
    EXPECT_GT(r.blocks_committed, 0u)
        << p.protocol << ": no commits after the leader crash";
  }
}

// --- pinned recovery trajectories, one per protocol -----------------------

harness::RunResult pinned_run(const Proto& p) {
  return harness::execute(
      recovery_spec(p, "partition@0.1s:groups=0-1|2-3;heal@0.3s"));
}

TEST(LivenessPinned, Hotstuff) {
  const auto r = pinned_run(kProtocols[0]);
  EXPECT_EQ(r.views, 442u);
  EXPECT_EQ(r.blocks_committed, 441u);
  EXPECT_EQ(r.timeouts, 3u);
  EXPECT_EQ(r.latency_samples, 2046u);
  EXPECT_EQ(r.net_bytes, 2151545u);
  EXPECT_EQ(r.certs_verified, 1339u);
  EXPECT_EQ(r.certs_rejected, 0u);
  EXPECT_NEAR(r.recovery_ms, 5.0, 1e-9);
  EXPECT_TRUE(r.consistent);
}

TEST(LivenessPinned, TwoChainHotstuff) {
  const auto r = pinned_run(kProtocols[1]);
  EXPECT_EQ(r.views, 439u);
  EXPECT_EQ(r.blocks_committed, 439u);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_EQ(r.latency_samples, 2467u);
  EXPECT_EQ(r.net_bytes, 2419386u);
  EXPECT_EQ(r.certs_verified, 1317u);
  EXPECT_EQ(r.certs_rejected, 0u);
  EXPECT_NEAR(r.recovery_ms, 5.0, 1e-9);
  EXPECT_TRUE(r.consistent);
}

TEST(LivenessPinned, Streamlet) {
  const auto r = pinned_run(kProtocols[2]);
  EXPECT_EQ(r.views, 287u);
  EXPECT_EQ(r.blocks_committed, 287u);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_EQ(r.latency_samples, 2040u);
  EXPECT_EQ(r.net_bytes, 9296619u);
  EXPECT_EQ(r.certs_verified, 4305u);
  EXPECT_EQ(r.certs_rejected, 0u);
  EXPECT_NEAR(r.recovery_ms, 5.0, 1e-9);
  EXPECT_TRUE(r.consistent);
}

TEST(LivenessPinned, FastHotstuff) {
  const auto r = pinned_run(kProtocols[3]);
  EXPECT_EQ(r.views, 439u);
  EXPECT_EQ(r.blocks_committed, 439u);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_EQ(r.latency_samples, 2467u);
  EXPECT_EQ(r.net_bytes, 2419386u);
  EXPECT_EQ(r.certs_verified, 1317u);
  EXPECT_EQ(r.certs_rejected, 0u);
  EXPECT_NEAR(r.recovery_ms, 5.0, 1e-9);
  EXPECT_TRUE(r.consistent);
}

TEST(LivenessPinned, FnfBft) {
  const auto r = pinned_run(kProtocols[4]);
  // Two slots per view: committed blocks run ahead of views — the
  // multi-leader capture also pins the slot pipeline's shape.
  EXPECT_EQ(r.views, 259u);
  EXPECT_EQ(r.blocks_committed, 518u);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_EQ(r.latency_samples, 956u);
  EXPECT_EQ(r.net_bytes, 1980374u);
  EXPECT_EQ(r.certs_verified, 3105u);
  EXPECT_EQ(r.certs_rejected, 0u);
  EXPECT_DOUBLE_EQ(r.recovery_ms, 0.0);
  EXPECT_TRUE(r.consistent);
}

}  // namespace
}  // namespace bamboo
