// Cross-protocol safety-conformance harness (PR 9).
//
// Every registered protocol family — the three paper baselines, the
// Fast-HotStuff variant and the multi-leader FnF-BFT — is driven through
// the same grid of adversarial scenarios, 10 seeds per cell (5 protocols
// x 4 scenarios x 10 seeds = 200 full simulated runs). The invariants are
// the ones the paper's safety arguments actually promise, checked on
// every run:
//
//   * no two honest replicas commit conflicting blocks at any height, and
//     committed chains are prefix-consistent (Cluster::check_consistency
//     compares committed hashes level by level across all honest
//     replicas);
//   * replicas flag zero internal safety violations;
//   * every certificate that entered a decision was verifier-accepted —
//     scenarios without a certificate forger must see zero rejected
//     certs, and the forge-qc scenario must see the CertVerifier actually
//     refusing forgeries (a vacuously-green verifier is a bug);
//   * liveness floor: scenarios that leave a correct quorum with time to
//     act commit at least one block.
//
// Runs are intentionally small (n = 4, f = 1, ~0.8 s simulated) so the
// whole 200-run grid stays inside the `conformance` ctest budget; the
// point is breadth across protocol x scenario x seed, not depth per run.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "client/workload.h"
#include "harness/experiment.h"

namespace bamboo {
namespace {

struct ProtoSpec {
  const char* protocol;
  const char* election;  ///< FnF-BFT needs a multi-leader election
};

struct ScenarioSpec {
  const char* label;
  std::uint32_t byz;
  const char* strategy;
  const char* churn;
  bool expect_commits;       ///< a correct quorum has time to act
  bool expect_cert_rejects;  ///< the scenario fields a certificate forger
};

const ProtoSpec kProtocols[] = {
    {"hotstuff", "roundrobin"},     {"2chs", "roundrobin"},
    {"streamlet", "roundrobin"},    {"fasthotstuff", "roundrobin"},
    {"fnfbft", "multi:2"},
};

// Times are simulated seconds from run start; the measurement window is
// [0.1, 0.8], so the partition heals and the loss burst ends with time
// left for the chain to move again.
const ScenarioSpec kScenarios[] = {
    {"forking-leader", 1, "forking", "", true, false},
    {"forge-qc", 1, "forge-qc", "", true, true},
    {"partition-heal", 0, "silence",
     "partition@0.2s:groups=0-1|2-3;heal@0.45s", true, false},
    {"bursty-loss", 0, "silence", "burst@0.15s:loss=0.3:for=0.2s", true,
     false},
};

class Conformance
    : public ::testing::TestWithParam<std::tuple<ProtoSpec, ScenarioSpec>> {};

std::string param_name(
    const ::testing::TestParamInfo<Conformance::ParamType>& info) {
  std::string name = std::string(std::get<0>(info.param).protocol) + "_" +
                     std::get<1>(info.param).label;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

TEST_P(Conformance, SafetyInvariantsHoldAcrossSeeds) {
  const auto& [proto, scenario] = GetParam();

  std::uint64_t total_commits = 0;
  std::uint64_t total_cert_rejects = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    harness::RunSpec spec;
    spec.cfg.protocol = proto.protocol;
    spec.cfg.election = proto.election;
    spec.cfg.n_replicas = 4;
    spec.cfg.byz_no = scenario.byz;
    spec.cfg.strategy = scenario.strategy;
    spec.cfg.churn = scenario.churn;
    spec.cfg.seed = seed;
    spec.workload.concurrency = 32;
    spec.opts.warmup_s = 0.1;
    spec.opts.measure_s = 0.7;

    const harness::RunResult r = harness::execute(spec);
    ASSERT_TRUE(r.consistent)
        << proto.protocol << " / " << scenario.label << " seed " << seed
        << ": honest replicas committed conflicting chains";
    ASSERT_EQ(r.safety_violations, 0u)
        << proto.protocol << " / " << scenario.label << " seed " << seed;
    if (!scenario.expect_cert_rejects) {
      // No forger in this scenario: a rejected certificate would mean the
      // verifier refused an honest quorum's signatures.
      ASSERT_EQ(r.certs_rejected, 0u)
          << proto.protocol << " / " << scenario.label << " seed " << seed;
    }
    total_commits += r.blocks_committed;
    total_cert_rejects += r.certs_rejected;
  }

  if (scenario.expect_commits) {
    EXPECT_GT(total_commits, 0u)
        << proto.protocol << " / " << scenario.label
        << ": no seed committed anything — liveness regression";
  }
  if (scenario.expect_cert_rejects) {
    EXPECT_GT(total_cert_rejects, 0u)
        << proto.protocol << " / " << scenario.label
        << ": the forge-qc adversary ran but the CertVerifier never "
           "rejected a certificate — the check is vacuous";
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, Conformance,
                         ::testing::Combine(::testing::ValuesIn(kProtocols),
                                            ::testing::ValuesIn(kScenarios)),
                         param_name);

}  // namespace
}  // namespace bamboo
