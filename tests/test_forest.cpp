// Tests for the block forest (the paper's data module): insertion, orphan
// buffering, QC tracking, commits, pruning, longest-notarized-tip.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "forest/block_forest.h"
#include "util/rng.h"

namespace bamboo {
namespace {

using forest::AddResult;
using forest::BlockForest;
using types::BlockPtr;

BlockPtr child_of(const BlockPtr& parent, types::View view,
                  types::NodeId proposer = 0) {
  types::Block::Fields f;
  f.parent_hash = parent->hash();
  f.view = view;
  f.height = parent->height() + 1;
  f.proposer = proposer;
  f.justify.view = parent->view();
  f.justify.height = parent->height();
  f.justify.block_hash = parent->hash();
  return std::make_shared<const types::Block>(std::move(f));
}

types::QuorumCert qc_for(const BlockPtr& b) {
  types::QuorumCert qc;
  qc.view = b->view();
  qc.height = b->height();
  qc.block_hash = b->hash();
  qc.sigs.resize(3);
  return qc;
}

class ForestFixture : public ::testing::Test {
 protected:
  BlockForest forest;
  BlockPtr genesis = types::Block::genesis();
};

TEST_F(ForestFixture, StartsWithCommittedGenesis) {
  EXPECT_TRUE(forest.contains(genesis->hash()));
  EXPECT_EQ(forest.committed_tip()->hash(), genesis->hash());
  EXPECT_EQ(forest.committed_height(), 0u);
  EXPECT_EQ(forest.high_qc().view, types::kGenesisView);
  EXPECT_EQ(forest.longest_certified_tip()->hash(), genesis->hash());
}

TEST_F(ForestFixture, AddConnectsChild) {
  const auto b1 = child_of(genesis, 1);
  EXPECT_EQ(forest.add(b1), AddResult::kAdded);
  EXPECT_TRUE(forest.contains(b1->hash()));
  EXPECT_EQ(forest.get(b1->hash())->view(), 1u);
  const auto children = forest.children(genesis->hash());
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0]->hash(), b1->hash());
}

TEST_F(ForestFixture, DuplicateAddIsDetected) {
  const auto b1 = child_of(genesis, 1);
  EXPECT_EQ(forest.add(b1), AddResult::kAdded);
  EXPECT_EQ(forest.add(b1), AddResult::kDuplicate);
}

TEST_F(ForestFixture, WrongHeightIsInvalid) {
  types::Block::Fields f;
  f.parent_hash = genesis->hash();
  f.view = 1;
  f.height = 5;  // must be 1
  f.proposer = 0;
  const auto bad = std::make_shared<const types::Block>(std::move(f));
  EXPECT_EQ(forest.add(bad), AddResult::kInvalid);
}

TEST_F(ForestFixture, OrphanBufferedAndFlushed) {
  const auto b1 = child_of(genesis, 1);
  const auto b2 = child_of(b1, 2);
  EXPECT_EQ(forest.add(b2), AddResult::kOrphaned);
  EXPECT_FALSE(forest.contains(b2->hash()));
  EXPECT_EQ(forest.orphan_count(), 1u);
  ASSERT_EQ(forest.missing_parents().size(), 1u);
  EXPECT_EQ(forest.missing_parents()[0], b1->hash());

  EXPECT_EQ(forest.add(b1), AddResult::kAdded);
  EXPECT_TRUE(forest.contains(b2->hash()));  // flushed automatically
  EXPECT_EQ(forest.orphan_count(), 0u);
}

TEST_F(ForestFixture, OrphanChainFlushesRecursively) {
  const auto b1 = child_of(genesis, 1);
  const auto b2 = child_of(b1, 2);
  const auto b3 = child_of(b2, 3);
  EXPECT_EQ(forest.add(b3), AddResult::kOrphaned);
  EXPECT_EQ(forest.add(b2), AddResult::kOrphaned);
  EXPECT_EQ(forest.add(b1), AddResult::kAdded);
  EXPECT_TRUE(forest.contains(b2->hash()));
  EXPECT_TRUE(forest.contains(b3->hash()));
}

TEST_F(ForestFixture, ExtendsWalksParents) {
  const auto b1 = child_of(genesis, 1);
  const auto b2 = child_of(b1, 2);
  const auto fork = child_of(genesis, 3);
  forest.add(b1);
  forest.add(b2);
  forest.add(fork);
  EXPECT_TRUE(forest.extends(b2->hash(), genesis->hash()));
  EXPECT_TRUE(forest.extends(b2->hash(), b1->hash()));
  EXPECT_TRUE(forest.extends(b1->hash(), b1->hash()));  // reflexive
  EXPECT_FALSE(forest.extends(b2->hash(), fork->hash()));
  EXPECT_FALSE(forest.extends(b1->hash(), b2->hash()));  // wrong direction
}

TEST_F(ForestFixture, AncestorWalk) {
  const auto b1 = child_of(genesis, 1);
  const auto b2 = child_of(b1, 2);
  const auto b3 = child_of(b2, 3);
  forest.add(b1);
  forest.add(b2);
  forest.add(b3);
  EXPECT_EQ(forest.ancestor(b3, 0)->hash(), b3->hash());
  EXPECT_EQ(forest.ancestor(b3, 1)->hash(), b2->hash());
  EXPECT_EQ(forest.ancestor(b3, 2)->hash(), b1->hash());
  EXPECT_EQ(forest.ancestor(b3, 3)->hash(), genesis->hash());
  EXPECT_EQ(forest.ancestor(b3, 4), nullptr);
}

TEST_F(ForestFixture, QcTrackingAndHighQc) {
  const auto b1 = child_of(genesis, 1);
  forest.add(b1);
  EXPECT_FALSE(forest.is_certified(b1->hash()));
  EXPECT_TRUE(forest.add_qc(qc_for(b1)));
  EXPECT_TRUE(forest.is_certified(b1->hash()));
  EXPECT_EQ(forest.high_qc().view, 1u);
  EXPECT_EQ(forest.high_qc_block()->hash(), b1->hash());
  EXPECT_FALSE(forest.add_qc(qc_for(b1)));  // duplicate
}

TEST_F(ForestFixture, LongestCertifiedTipFollowsQcs) {
  const auto b1 = child_of(genesis, 1);
  const auto b2 = child_of(b1, 2);
  const auto fork = child_of(genesis, 3);
  forest.add(b1);
  forest.add(b2);
  forest.add(fork);

  forest.add_qc(qc_for(fork));
  EXPECT_EQ(forest.longest_certified_tip()->hash(), fork->hash());

  forest.add_qc(qc_for(b1));
  // Same height (1): tie breaks toward the higher view (fork, view 3).
  EXPECT_EQ(forest.longest_certified_tip()->hash(), fork->hash());

  forest.add_qc(qc_for(b2));
  EXPECT_EQ(forest.longest_certified_tip()->hash(), b2->hash());
}

TEST_F(ForestFixture, CommitReturnsAscendingChain) {
  const auto b1 = child_of(genesis, 1);
  const auto b2 = child_of(b1, 2);
  const auto b3 = child_of(b2, 3);
  forest.add(b1);
  forest.add(b2);
  forest.add(b3);

  const auto chain = forest.commit(b2->hash());
  ASSERT_TRUE(chain.has_value());
  ASSERT_EQ(chain->size(), 2u);
  EXPECT_EQ((*chain)[0]->hash(), b1->hash());
  EXPECT_EQ((*chain)[1]->hash(), b2->hash());
  EXPECT_EQ(forest.committed_height(), 2u);
  EXPECT_EQ(forest.committed_hash_at(1), b1->hash());
  EXPECT_EQ(forest.committed_hash_at(2), b2->hash());
  EXPECT_EQ(forest.committed_hash_at(3), std::nullopt);
}

TEST_F(ForestFixture, RecommitIsEmptyNotError) {
  const auto b1 = child_of(genesis, 1);
  forest.add(b1);
  ASSERT_TRUE(forest.commit(b1->hash()).has_value());
  const auto again = forest.commit(b1->hash());
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->empty());
}

TEST_F(ForestFixture, ConflictingCommitIsRefused) {
  const auto b1 = child_of(genesis, 1);
  const auto fork = child_of(genesis, 2);
  const auto fork2 = child_of(fork, 3);
  forest.add(b1);
  forest.add(fork);
  forest.add(fork2);
  ASSERT_TRUE(forest.commit(b1->hash()).has_value());
  // fork2 does not extend the committed tip b1: must refuse.
  EXPECT_FALSE(forest.commit(fork2->hash()).has_value());
  // And a conflicting block at the committed height as well.
  EXPECT_FALSE(forest.commit(fork->hash()).has_value());
}

TEST_F(ForestFixture, PruneDropsForkedBranchesAndReturnsThem) {
  const auto b1 = child_of(genesis, 1);
  const auto fork = child_of(genesis, 2, /*proposer=*/3);
  const auto b2 = child_of(b1, 3);
  forest.add(b1);
  forest.add(fork);
  forest.add(b2);
  forest.commit(b1->hash());

  const auto dropped = forest.prune();
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->hash(), fork->hash());
  EXPECT_FALSE(forest.contains(fork->hash()));
  EXPECT_TRUE(forest.contains(b1->hash()));  // committed chain kept
  EXPECT_TRUE(forest.contains(b2->hash()));  // descendant of tip kept
}

TEST_F(ForestFixture, PruneDropsDescendantsOfForkedBranches) {
  const auto b1 = child_of(genesis, 1);
  const auto fork = child_of(genesis, 2);
  const auto fork_child = child_of(fork, 4);
  forest.add(b1);
  forest.add(fork);
  forest.add(fork_child);
  forest.commit(b1->hash());

  const auto dropped = forest.prune();
  EXPECT_EQ(dropped.size(), 2u);
  EXPECT_FALSE(forest.contains(fork->hash()));
  EXPECT_FALSE(forest.contains(fork_child->hash()));
}

TEST_F(ForestFixture, PruneRepairsLongestCertifiedTip) {
  const auto b1 = child_of(genesis, 1);
  const auto fork = child_of(genesis, 2);
  const auto fork_child = child_of(fork, 3);
  forest.add(b1);
  forest.add(fork);
  forest.add(fork_child);
  forest.add_qc(qc_for(fork_child));  // certified tip is on the fork
  EXPECT_EQ(forest.longest_certified_tip()->hash(), fork_child->hash());

  forest.add_qc(qc_for(b1));
  forest.commit(b1->hash());
  forest.prune();
  // The certified fork is gone; the tip must fall back to the main chain.
  EXPECT_EQ(forest.longest_certified_tip()->hash(), b1->hash());
}

TEST_F(ForestFixture, CommitOfUnknownBlockFails) {
  const auto b1 = child_of(genesis, 1);
  EXPECT_FALSE(forest.commit(b1->hash()).has_value());
}

TEST_F(ForestFixture, QcBeforeBlockIsRememberedOnConnect) {
  const auto b1 = child_of(genesis, 1);
  forest.add_qc(qc_for(b1));  // QC arrives first
  EXPECT_TRUE(forest.is_certified(b1->hash()));
  EXPECT_EQ(forest.high_qc_block(), nullptr);
  forest.add(b1);
  EXPECT_EQ(forest.high_qc_block()->hash(), b1->hash());
  EXPECT_EQ(forest.longest_certified_tip()->hash(), b1->hash());
}

TEST_F(ForestFixture, DeepChainCommitCollapsesPrefix) {
  BlockPtr tip = genesis;
  std::vector<BlockPtr> blocks;
  for (types::View v = 1; v <= 50; ++v) {
    tip = child_of(tip, v);
    blocks.push_back(tip);
    forest.add(tip);
  }
  const auto chain = forest.commit(tip->hash());
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->size(), 50u);
  EXPECT_EQ(forest.committed_height(), 50u);
  for (types::Height h = 1; h <= 50; ++h) {
    EXPECT_EQ(forest.committed_hash_at(h), blocks[h - 1]->hash());
  }
}

TEST_F(ForestFixture, BufferedReportsOrphansUntilTheyConnect) {
  const auto b1 = child_of(genesis, 1);
  const auto b2 = child_of(b1, 2);
  EXPECT_EQ(forest.add(b2), AddResult::kOrphaned);
  EXPECT_TRUE(forest.buffered(b2->hash()));
  EXPECT_FALSE(forest.contains(b2->hash()));
  EXPECT_FALSE(forest.buffered(b1->hash()));
  forest.add(b1);
  EXPECT_FALSE(forest.buffered(b2->hash()));
  EXPECT_TRUE(forest.contains(b2->hash()));
}

TEST_F(ForestFixture, OrphanBufferPropertyUnderLongPartitionArrivals) {
  // A replica behind a long partition receives the missed range in an
  // arbitrary interleaving of proposals, sync batches and stragglers —
  // i.e. an arbitrary permutation, possibly with duplicates. Whatever
  // the order:
  //  * every block is either connected or buffered (never dropped),
  //  * missing_parents() names exactly the parents of disconnected
  //    subtrees — each either a known hash (a gap inside the range) or
  //    the not-yet-seen ancestor,
  //  * once all blocks arrived the forest is fully connected with an
  //    empty orphan buffer,
  //  * buffered() and contains() partition the seen, unconnected set.
  util::Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    BlockForest forest2;
    // A main chain of 40 with a short fork hanging off height 20 — the
    // shape a forking leader leaves behind a partition.
    std::vector<BlockPtr> blocks;
    BlockPtr tip = types::Block::genesis();
    for (types::View v = 1; v <= 40; ++v) {
      tip = child_of(tip, v);
      blocks.push_back(tip);
    }
    BlockPtr fork = blocks[19];
    for (types::View v = 41; v <= 44; ++v) {
      fork = child_of(fork, v);
      blocks.push_back(fork);
    }
    // Random arrival order with ~20% duplicated deliveries.
    std::vector<BlockPtr> arrivals = blocks;
    for (const BlockPtr& b : blocks) {
      if (rng.bernoulli(0.2)) arrivals.push_back(b);
    }
    for (std::size_t i = arrivals.size(); i > 1; --i) {
      std::swap(arrivals[i - 1], arrivals[rng.uniform_u64(i)]);
    }

    std::unordered_set<crypto::Digest> seen;
    for (const BlockPtr& b : arrivals) {
      forest2.add(b);
      seen.insert(b->hash());

      std::size_t connected = 0, buffered = 0;
      for (const BlockPtr& block : blocks) {
        if (seen.count(block->hash()) == 0) continue;
        const bool in_forest = forest2.contains(block->hash());
        const bool in_buffer = forest2.buffered(block->hash());
        EXPECT_NE(in_forest, in_buffer);  // exactly one, never both/neither
        connected += in_forest;
        buffered += in_buffer;
        // Connectivity invariant: a connected non-genesis block's parent
        // is connected too.
        if (in_forest) {
          EXPECT_TRUE(forest2.contains(block->parent_hash()));
        }
      }
      EXPECT_EQ(buffered, forest2.orphan_count());

      // missing_parents() lists exactly the parents of orphan buckets,
      // and none of them is a connected hash.
      for (const crypto::Digest& parent : forest2.missing_parents()) {
        EXPECT_FALSE(forest2.contains(parent));
      }
    }
    EXPECT_EQ(forest2.orphan_count(), 0u);
    EXPECT_TRUE(forest2.missing_parents().empty());
    for (const BlockPtr& b : blocks) {
      EXPECT_TRUE(forest2.contains(b->hash()));
      EXPECT_FALSE(forest2.buffered(b->hash()));
    }
  }
}

}  // namespace
}  // namespace bamboo
