// Tests for the bidirectional mempool: FIFO order, front recycling,
// dedup, capacity, committed-transaction tombstoning.

#include <gtest/gtest.h>

#include <stdexcept>

#include "mempool/mempool.h"

namespace bamboo {
namespace {

types::Transaction tx(types::TxId id) {
  types::Transaction t;
  t.id = id;
  return t;
}

TEST(Mempool, FifoOrder) {
  mempool::Mempool pool(100);
  for (types::TxId id = 1; id <= 5; ++id) EXPECT_TRUE(pool.add_new(tx(id)));
  const auto taken = pool.take(3);
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_EQ(taken[0].id, 1u);
  EXPECT_EQ(taken[1].id, 2u);
  EXPECT_EQ(taken[2].id, 3u);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(Mempool, TakeMoreThanAvailable) {
  mempool::Mempool pool(100);
  pool.add_new(tx(1));
  const auto taken = pool.take(10);
  EXPECT_EQ(taken.size(), 1u);
  EXPECT_TRUE(pool.empty());
}

TEST(Mempool, RejectsDuplicates) {
  mempool::Mempool pool(100);
  EXPECT_TRUE(pool.add_new(tx(1)));
  EXPECT_FALSE(pool.add_new(tx(1)));
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.rejected_count(), 1u);
}

TEST(Mempool, CapacityEnforced) {
  mempool::Mempool pool(3);
  for (types::TxId id = 1; id <= 3; ++id) EXPECT_TRUE(pool.add_new(tx(id)));
  EXPECT_FALSE(pool.add_new(tx(4)));
  EXPECT_EQ(pool.size(), 3u);
  // Taking frees capacity again.
  pool.take(1);
  EXPECT_TRUE(pool.add_new(tx(4)));
}

TEST(Mempool, RecycleGoesToFrontInOrder) {
  mempool::Mempool pool(100);
  pool.add_new(tx(10));
  pool.add_new(tx(11));
  // Transactions from a forked-out block are re-proposed first.
  EXPECT_EQ(pool.recycle({tx(1), tx(2), tx(3)}), 3u);
  const auto taken = pool.take(5);
  ASSERT_EQ(taken.size(), 5u);
  EXPECT_EQ(taken[0].id, 1u);
  EXPECT_EQ(taken[1].id, 2u);
  EXPECT_EQ(taken[2].id, 3u);
  EXPECT_EQ(taken[3].id, 10u);
  EXPECT_EQ(taken[4].id, 11u);
}

TEST(Mempool, RecycleSkipsPresentIds) {
  mempool::Mempool pool(100);
  pool.add_new(tx(1));
  EXPECT_EQ(pool.recycle({tx(1), tx(2)}), 1u);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(Mempool, RecycleSkipsCommitted) {
  mempool::Mempool pool(100);
  pool.add_new(tx(1));
  pool.mark_committed(1);
  // id 1 committed while pooled: recycling it again must be refused.
  EXPECT_EQ(pool.recycle({tx(1)}), 0u);
  EXPECT_EQ(pool.take(10).size(), 0u);  // the tombstoned tx is dropped
}

TEST(Mempool, MarkCommittedDropsPooledTx) {
  mempool::Mempool pool(100);
  pool.add_new(tx(1));
  pool.add_new(tx(2));
  pool.mark_committed(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto taken = pool.take(10);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].id, 2u);
}

TEST(Mempool, MarkCommittedUnknownIdIsNoop) {
  mempool::Mempool pool(100);
  pool.add_new(tx(1));
  pool.mark_committed(99);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, TombstoneFreesCapacity) {
  mempool::Mempool pool(2);
  pool.add_new(tx(1));
  pool.add_new(tx(2));
  pool.mark_committed(1);
  EXPECT_TRUE(pool.add_new(tx(3)));  // live size is 1, capacity 2
  const auto taken = pool.take(10);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].id, 2u);
  EXPECT_EQ(taken[1].id, 3u);
}

TEST(Mempool, ReAddAfterTakeIsAllowed) {
  mempool::Mempool pool(100);
  pool.add_new(tx(1));
  pool.take(1);
  EXPECT_TRUE(pool.add_new(tx(1)));
}

TEST(Mempool, RecycleRespectsCapacity) {
  mempool::Mempool pool(2);
  pool.add_new(tx(1));
  EXPECT_EQ(pool.recycle({tx(2), tx(3), tx(4)}), 1u);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(Mempool, CountersAccumulate) {
  mempool::Mempool pool(1);
  pool.add_new(tx(1));
  pool.add_new(tx(2));  // rejected: full
  pool.take(1);
  pool.recycle({tx(3)});
  EXPECT_EQ(pool.rejected_count(), 1u);
  EXPECT_EQ(pool.recycled_count(), 1u);
  EXPECT_EQ(pool.admitted_count(), 1u);
}

// ---------------------------------------------------------------------------
// Admission policies
// ---------------------------------------------------------------------------

TEST(Mempool, ParseAdmissionAcceptsTheThreePolicies) {
  const auto drop = mempool::parse_admission("drop");
  EXPECT_EQ(drop.policy, mempool::AdmissionPolicy::kDrop);
  EXPECT_EQ(mempool::parse_admission("").policy,
            mempool::AdmissionPolicy::kDrop);

  const auto backoff = mempool::parse_admission("backoff:12.5");
  EXPECT_EQ(backoff.policy, mempool::AdmissionPolicy::kBackoff);
  EXPECT_DOUBLE_EQ(backoff.backoff_ms, 12.5);

  const auto prio = mempool::parse_admission("priority:0.1");
  EXPECT_EQ(prio.policy, mempool::AdmissionPolicy::kPriority);
  EXPECT_DOUBLE_EQ(prio.reserve_frac, 0.1);
}

TEST(Mempool, ParseAdmissionRejectsHalfSpecifiedSpecs) {
  EXPECT_THROW(mempool::parse_admission("backoff"), std::invalid_argument);
  EXPECT_THROW(mempool::parse_admission("backoff:"), std::invalid_argument);
  EXPECT_THROW(mempool::parse_admission("backoff:0"), std::invalid_argument);
  EXPECT_THROW(mempool::parse_admission("priority"), std::invalid_argument);
  EXPECT_THROW(mempool::parse_admission("priority:1"), std::invalid_argument);
  EXPECT_THROW(mempool::parse_admission("priority:-0.1"),
               std::invalid_argument);
  EXPECT_THROW(mempool::parse_admission("fifo"), std::invalid_argument);
}

TEST(Mempool, PriorityReservesRecycleHeadroom) {
  // capacity 10, reserve 20% -> add_new sees 8 slots; recycle sees all 10.
  mempool::Mempool pool(10, mempool::parse_admission("priority:0.2"));
  for (std::uint64_t i = 1; i <= 10; ++i) pool.add_new(tx(i));
  EXPECT_EQ(pool.size(), 8u);
  EXPECT_EQ(pool.rejected_count(), 2u);
  // Recycled (in-flight, timed-out) transactions may use the reserve.
  EXPECT_EQ(pool.recycle({tx(11), tx(12), tx(13)}), 2u);
  EXPECT_EQ(pool.size(), 10u);
}

TEST(Mempool, BackoffPolicyStillBoundsCapacity) {
  // The backoff policy changes the client hint, not pool behavior.
  mempool::Mempool pool(2, mempool::parse_admission("backoff:5"));
  EXPECT_TRUE(pool.add_new(tx(1)));
  EXPECT_TRUE(pool.add_new(tx(2)));
  EXPECT_FALSE(pool.add_new(tx(3)));
  EXPECT_DOUBLE_EQ(pool.admission().backoff_ms, 5.0);
}

}  // namespace
}  // namespace bamboo
