// Tests for the bidirectional mempool: FIFO order, front recycling,
// dedup, capacity, committed-transaction tombstoning.

#include <gtest/gtest.h>

#include "mempool/mempool.h"

namespace bamboo {
namespace {

types::Transaction tx(types::TxId id) {
  types::Transaction t;
  t.id = id;
  return t;
}

TEST(Mempool, FifoOrder) {
  mempool::Mempool pool(100);
  for (types::TxId id = 1; id <= 5; ++id) EXPECT_TRUE(pool.add_new(tx(id)));
  const auto taken = pool.take(3);
  ASSERT_EQ(taken.size(), 3u);
  EXPECT_EQ(taken[0].id, 1u);
  EXPECT_EQ(taken[1].id, 2u);
  EXPECT_EQ(taken[2].id, 3u);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(Mempool, TakeMoreThanAvailable) {
  mempool::Mempool pool(100);
  pool.add_new(tx(1));
  const auto taken = pool.take(10);
  EXPECT_EQ(taken.size(), 1u);
  EXPECT_TRUE(pool.empty());
}

TEST(Mempool, RejectsDuplicates) {
  mempool::Mempool pool(100);
  EXPECT_TRUE(pool.add_new(tx(1)));
  EXPECT_FALSE(pool.add_new(tx(1)));
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.rejected_count(), 1u);
}

TEST(Mempool, CapacityEnforced) {
  mempool::Mempool pool(3);
  for (types::TxId id = 1; id <= 3; ++id) EXPECT_TRUE(pool.add_new(tx(id)));
  EXPECT_FALSE(pool.add_new(tx(4)));
  EXPECT_EQ(pool.size(), 3u);
  // Taking frees capacity again.
  pool.take(1);
  EXPECT_TRUE(pool.add_new(tx(4)));
}

TEST(Mempool, RecycleGoesToFrontInOrder) {
  mempool::Mempool pool(100);
  pool.add_new(tx(10));
  pool.add_new(tx(11));
  // Transactions from a forked-out block are re-proposed first.
  EXPECT_EQ(pool.recycle({tx(1), tx(2), tx(3)}), 3u);
  const auto taken = pool.take(5);
  ASSERT_EQ(taken.size(), 5u);
  EXPECT_EQ(taken[0].id, 1u);
  EXPECT_EQ(taken[1].id, 2u);
  EXPECT_EQ(taken[2].id, 3u);
  EXPECT_EQ(taken[3].id, 10u);
  EXPECT_EQ(taken[4].id, 11u);
}

TEST(Mempool, RecycleSkipsPresentIds) {
  mempool::Mempool pool(100);
  pool.add_new(tx(1));
  EXPECT_EQ(pool.recycle({tx(1), tx(2)}), 1u);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(Mempool, RecycleSkipsCommitted) {
  mempool::Mempool pool(100);
  pool.add_new(tx(1));
  pool.mark_committed(1);
  // id 1 committed while pooled: recycling it again must be refused.
  EXPECT_EQ(pool.recycle({tx(1)}), 0u);
  EXPECT_EQ(pool.take(10).size(), 0u);  // the tombstoned tx is dropped
}

TEST(Mempool, MarkCommittedDropsPooledTx) {
  mempool::Mempool pool(100);
  pool.add_new(tx(1));
  pool.add_new(tx(2));
  pool.mark_committed(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto taken = pool.take(10);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].id, 2u);
}

TEST(Mempool, MarkCommittedUnknownIdIsNoop) {
  mempool::Mempool pool(100);
  pool.add_new(tx(1));
  pool.mark_committed(99);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, TombstoneFreesCapacity) {
  mempool::Mempool pool(2);
  pool.add_new(tx(1));
  pool.add_new(tx(2));
  pool.mark_committed(1);
  EXPECT_TRUE(pool.add_new(tx(3)));  // live size is 1, capacity 2
  const auto taken = pool.take(10);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].id, 2u);
  EXPECT_EQ(taken[1].id, 3u);
}

TEST(Mempool, ReAddAfterTakeIsAllowed) {
  mempool::Mempool pool(100);
  pool.add_new(tx(1));
  pool.take(1);
  EXPECT_TRUE(pool.add_new(tx(1)));
}

TEST(Mempool, RecycleRespectsCapacity) {
  mempool::Mempool pool(2);
  pool.add_new(tx(1));
  EXPECT_EQ(pool.recycle({tx(2), tx(3), tx(4)}), 1u);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(Mempool, CountersAccumulate) {
  mempool::Mempool pool(1);
  pool.add_new(tx(1));
  pool.add_new(tx(2));  // rejected: full
  pool.take(1);
  pool.recycle({tx(3)});
  EXPECT_EQ(pool.rejected_count(), 1u);
  EXPECT_EQ(pool.recycled_count(), 1u);
}

}  // namespace
}  // namespace bamboo
