// Whole-cluster integration tests: safety (prefix-consistent committed
// chains, no duplicate transaction commits, zero safety violations),
// liveness (progress under synchrony, crash tolerance up to f), and the
// paper's two Byzantine attacks (§IV-A) with their protocol-specific
// signatures (Fig. 13/14).

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "client/workload.h"
#include "harness/cluster.h"
#include "harness/experiment.h"

namespace bamboo {
namespace {

struct RunOutcome {
  harness::Cluster::ConsistencyReport consistency;
  std::uint64_t observer_committed_blocks = 0;
  std::uint64_t observer_forked_blocks = 0;
  std::uint64_t safety_violations = 0;
  std::uint64_t duplicate_tx_commits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t client_completed = 0;
};

/// Run a cluster under closed-loop load for `sim_s` simulated seconds and
/// collect the invariant-relevant outcomes.
RunOutcome run_cluster(core::Config cfg, double sim_s = 1.0,
                       std::uint32_t concurrency = 64) {
  harness::Cluster cluster(std::move(cfg));

  auto seen_txs = std::make_shared<std::set<types::TxId>>();
  auto dups = std::make_shared<std::uint64_t>(0);
  core::Replica::Hooks hooks;
  hooks.on_commit_block = [seen_txs, dups](const types::BlockPtr& block,
                                           types::View, sim::Time) {
    for (const auto& tx : block->txns()) {
      if (!seen_txs->insert(tx.id).second) ++(*dups);
    }
  };
  cluster.set_hooks(0, std::move(hooks));

  client::WorkloadConfig wl;
  wl.mode = client::LoadMode::kClosedLoop;
  wl.concurrency = concurrency;
  client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                cluster.config(), wl);
  driver.install();
  cluster.start();
  driver.start();
  cluster.simulator().run_for(sim::from_seconds(sim_s));
  driver.stop();

  RunOutcome out;
  out.consistency = cluster.check_consistency();
  out.observer_committed_blocks = cluster.observer().stats().blocks_committed;
  out.observer_forked_blocks = cluster.observer().stats().blocks_forked;
  out.duplicate_tx_commits = *dups;
  out.timeouts = cluster.total_timeouts();
  out.client_completed = driver.stats().completed;
  for (types::NodeId id = 0; id < cluster.size(); ++id) {
    out.safety_violations += cluster.replica(id).stats().safety_violations;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parameterized safety sweep: protocol x attack x seed
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<std::string, std::string, std::uint64_t>;

class SafetySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SafetySweep, InvariantsHoldUnderAttack) {
  const auto& [protocol, strategy, seed] = GetParam();
  core::Config cfg;
  cfg.protocol = protocol;
  cfg.n_replicas = 4;
  cfg.byz_no = (strategy == "honest") ? 0 : 1;
  cfg.strategy = (strategy == "honest") ? "silence" : strategy;
  cfg.seed = seed;
  cfg.bsize = 100;
  cfg.timeout = sim::milliseconds(50);

  const RunOutcome out = run_cluster(cfg);

  // Safety: never violated, regardless of the attack.
  EXPECT_TRUE(out.consistency.consistent) << out.consistency.detail;
  EXPECT_EQ(out.safety_violations, 0u);
  EXPECT_EQ(out.duplicate_tx_commits, 0u);
  // Liveness: one Byzantine node out of 4 cannot stop chain progress. The
  // silence attack is timeout-bound (two 50 ms timeout rounds per attacker
  // leadership cycle at N=4), so its block floor is much lower; under
  // forking, transactions served by the perpetually-overwritten replicas
  // starve (the Fig. 13 latency explosion), so the completion floor is
  // low even though blocks commit briskly.
  if (strategy == "silence") {
    EXPECT_GT(out.observer_committed_blocks, 8u);
    EXPECT_GT(out.client_completed, 30u);
  } else {
    EXPECT_GT(out.observer_committed_blocks, 50u);
    EXPECT_GT(out.client_completed, 40u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, SafetySweep,
    ::testing::Combine(
        ::testing::Values("hotstuff", "2chs", "streamlet", "fasthotstuff"),
        ::testing::Values("honest", "forking", "silence"),
        ::testing::Values(1ull, 7ull, 42ull)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) +
             "_seed" + std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Liveness and crash tolerance
// ---------------------------------------------------------------------------

using ProtocolParam = std::string;

class ProtocolLiveness : public ::testing::TestWithParam<ProtocolParam> {};

TEST_P(ProtocolLiveness, ProgressInSynchrony) {
  core::Config cfg;
  cfg.protocol = GetParam();
  cfg.n_replicas = 4;
  const RunOutcome out = run_cluster(cfg);
  EXPECT_TRUE(out.consistency.consistent);
  EXPECT_GT(out.observer_committed_blocks, 100u);
  EXPECT_EQ(out.timeouts, 0u);  // happy path: no view changes
}

TEST_P(ProtocolLiveness, ToleratesFCrashes) {
  core::Config cfg;
  cfg.protocol = GetParam();
  cfg.n_replicas = 4;
  cfg.byz_no = 1;  // f = 1
  cfg.strategy = "crash";
  cfg.timeout = sim::milliseconds(20);
  const RunOutcome out = run_cluster(cfg);
  EXPECT_TRUE(out.consistency.consistent);
  EXPECT_GT(out.observer_committed_blocks, 20u);
  EXPECT_GT(out.timeouts, 0u);  // the crashed leader's views time out
}

TEST_P(ProtocolLiveness, HaltsBeyondF) {
  core::Config cfg;
  cfg.protocol = GetParam();
  cfg.n_replicas = 4;
  cfg.byz_no = 2;  // f + 1 crashes: no quorum possible
  cfg.strategy = "crash";
  cfg.timeout = sim::milliseconds(20);
  const RunOutcome out = run_cluster(cfg, 0.5);
  EXPECT_TRUE(out.consistency.consistent);  // safety holds even when stuck
  EXPECT_EQ(out.observer_committed_blocks, 0u);
  EXPECT_EQ(out.safety_violations, 0u);
}

TEST_P(ProtocolLiveness, SevenReplicasTolerateTwoCrashes) {
  core::Config cfg;
  cfg.protocol = GetParam();
  cfg.n_replicas = 7;
  cfg.byz_no = 2;  // f = 2
  cfg.strategy = "crash";
  cfg.timeout = sim::milliseconds(20);
  const RunOutcome out = run_cluster(cfg);
  EXPECT_TRUE(out.consistency.consistent);
  EXPECT_GT(out.observer_committed_blocks, 10u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolLiveness,
                         ::testing::Values("hotstuff", "2chs", "streamlet",
                                           "fasthotstuff"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Attack signatures (Fig. 13 / Fig. 14 mechanics at small scale)
// ---------------------------------------------------------------------------

TEST(ForkingAttack, HotStuffForksButStreamletDoesNot) {
  core::Config base;
  base.n_replicas = 4;
  base.byz_no = 1;
  base.strategy = "forking";
  base.bsize = 100;

  base.protocol = "hotstuff";
  const RunOutcome hs = run_cluster(base);
  EXPECT_GT(hs.observer_forked_blocks, 0u)
      << "the forking attacker must overwrite HotStuff blocks";
  EXPECT_TRUE(hs.consistency.consistent);

  base.protocol = "streamlet";
  const RunOutcome sl = run_cluster(base);
  EXPECT_EQ(sl.observer_forked_blocks, 0u)
      << "Streamlet's longest-chain vote rule is immune (Fig. 13)";

  base.protocol = "fasthotstuff";
  const RunOutcome fhs = run_cluster(base);
  EXPECT_EQ(fhs.observer_forked_blocks, 0u)
      << "Fast-HotStuff's fresh-justify vote rule is immune";
}

TEST(ForkingAttack, TwoChainForksLessThanHotStuff) {
  core::Config base;
  base.n_replicas = 8;
  base.byz_no = 2;
  base.strategy = "forking";
  base.bsize = 100;

  base.protocol = "hotstuff";
  const RunOutcome hs = run_cluster(base, 1.5);
  base.protocol = "2chs";
  const RunOutcome chs = run_cluster(base, 1.5);

  ASSERT_GT(hs.observer_committed_blocks, 0u);
  ASSERT_GT(chs.observer_committed_blocks, 0u);
  // The attacker overwrites 2 blocks per fork in HS but only 1 in 2CHS:
  // 2CHS must lose strictly fewer blocks (paper: "2CHS outperforms
  // HotStuff in all the metrics" under forking).
  EXPECT_LT(chs.observer_forked_blocks, hs.observer_forked_blocks);
}

TEST(SilenceAttack, OverwritesTailInHotStuffFamilies) {
  core::Config base;
  base.n_replicas = 4;
  base.byz_no = 1;
  base.strategy = "silence";
  base.bsize = 100;
  base.timeout = sim::milliseconds(30);

  base.protocol = "hotstuff";
  const RunOutcome hs = run_cluster(base);
  EXPECT_GT(hs.timeouts, 0u);
  EXPECT_GT(hs.observer_forked_blocks, 0u)
      << "the withheld QC must cost the previous block (Fig. 6)";

  base.protocol = "streamlet";
  const RunOutcome sl = run_cluster(base);
  EXPECT_GT(sl.timeouts, 0u);
  EXPECT_EQ(sl.observer_forked_blocks, 0u)
      << "broadcast votes mean no QC can be withheld (Fig. 14: CGR 1)";
}

TEST(SilenceAttack, DegradesThroughputInProportion) {
  core::Config base;
  base.protocol = "hotstuff";
  base.n_replicas = 4;
  base.bsize = 100;
  base.timeout = sim::milliseconds(30);

  base.byz_no = 0;
  const RunOutcome clean = run_cluster(base);
  base.byz_no = 1;
  const RunOutcome attacked = run_cluster(base);

  EXPECT_LT(attacked.client_completed, clean.client_completed);
  EXPECT_GT(attacked.client_completed, 0u);
}

// ---------------------------------------------------------------------------
// Recovery behaviours
// ---------------------------------------------------------------------------

TEST(Recovery, PartitionedReplicaCatchesUpViaBlockSync) {
  core::Config cfg;
  cfg.protocol = "hotstuff";
  cfg.n_replicas = 4;
  cfg.timeout = sim::milliseconds(50);
  harness::Cluster cluster(cfg);

  client::WorkloadConfig wl;
  wl.concurrency = 32;
  client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                cluster.config(), wl);
  driver.install();

  // Cut replica 3 off for 300 ms, then heal. Quorum is 3-of-4 so the rest
  // keep committing; replica 3 must chain-sync the blocks it missed.
  auto& simulator = cluster.simulator();
  simulator.schedule_at(sim::from_seconds(0.2), [&cluster] {
    cluster.network().set_partition({0, 0, 0, 1, 0, 0});
  });
  simulator.schedule_at(sim::from_seconds(0.5), [&cluster] {
    cluster.network().set_partition({});
  });

  cluster.start();
  driver.start();
  simulator.run_for(sim::from_seconds(1.5));

  const auto report = cluster.check_consistency();
  EXPECT_TRUE(report.consistent) << report.detail;
  const auto lag = cluster.replica(0).forest().committed_height() -
                   cluster.replica(3).forest().committed_height();
  EXPECT_LT(lag, 10u) << "replica 3 should catch up after healing";
  EXPECT_GT(cluster.replica(3).stats().blocks_committed, 0u);
}

TEST(Recovery, HotStuffSurvivesNetworkFluctuation) {
  core::Config cfg;
  cfg.protocol = "hotstuff";
  cfg.n_replicas = 4;
  cfg.timeout = sim::milliseconds(100);
  cfg.bsize = 100;

  client::WorkloadConfig wl;
  wl.mode = client::LoadMode::kOpenLoop;
  wl.arrival_rate_tps = 5000;

  const auto timeline = harness::run_responsiveness_timeline(
      cfg, wl, /*horizon_s=*/3.0, /*bucket_s=*/0.5,
      /*fluct_start_s=*/0.5, /*fluct_end_s=*/1.5, sim::milliseconds(10),
      sim::milliseconds(100), /*crash_at_s=*/-1, 0);

  EXPECT_TRUE(timeline.summary.consistent);
  // Throughput must resume after the fluctuation window ([2.0s, 3.0s)).
  ASSERT_GE(timeline.tx_per_s.size(), 6u);
  EXPECT_GT(timeline.tx_per_s[5], 1000.0);
}

TEST(Consistency, PerHeightHashesAgreeAcrossReplicas) {
  core::Config cfg;
  cfg.protocol = "2chs";
  cfg.n_replicas = 7;
  harness::Cluster cluster(cfg);
  client::WorkloadConfig wl;
  wl.concurrency = 32;
  client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                cluster.config(), wl);
  driver.install();
  cluster.start();
  driver.start();
  cluster.simulator().run_for(sim::from_seconds(1.0));

  // Explicit pairwise hash comparison at every committed height (the
  // paper's §III-A consistency check).
  const auto& reference = cluster.replica(0).forest();
  for (types::NodeId id = 1; id < cluster.size(); ++id) {
    const auto& other = cluster.replica(id).forest();
    const auto common =
        std::min(reference.committed_height(), other.committed_height());
    ASSERT_GT(common, 0u);
    for (types::Height h = 0; h <= common; ++h) {
      ASSERT_EQ(reference.committed_hash_at(h), other.committed_hash_at(h))
          << "replica " << id << " height " << h;
    }
  }
}

}  // namespace
}  // namespace bamboo
