// Tests for the WAN scenario engine (net/link_model.h, net/topology.h):
// distribution moments per family, per-link loss accounting, topology
// matrix generation for the named scenarios, registry behavior, and —
// critically — bit-compatibility of the default normal/uniform scenario
// with the pre-LinkModel transport (delay sequences and whole-run results
// pinned to values captured from the original implementation).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "client/workload.h"
#include "harness/experiment.h"
#include "net/network.h"
#include "net/topology.h"
#include "util/rng.h"
#include "util/stats.h"

namespace bamboo {
namespace {

constexpr double kMs = 1e6;  // ns per ms

types::MessagePtr small_msg() { return types::make_message(types::VoteMsg{}); }

// ---------------------------------------------------------------------------
// Distribution moments (seeded sampling)
// ---------------------------------------------------------------------------

util::RunningStats sample_many(const net::LinkSpec& link, int n = 20000,
                               std::uint64_t seed = 99) {
  util::Rng rng(seed);
  util::RunningStats stats;
  for (int i = 0; i < n; ++i) {
    stats.add(static_cast<double>(net::sample_delay(link, rng)));
  }
  return stats;
}

TEST(LinkModel, NormalMoments) {
  net::LinkSpec link;
  link.family = net::DelayFamily::kNormal;
  link.base = 1.0 * kMs;
  link.spread = 0.1 * kMs;
  const auto stats = sample_many(link);
  EXPECT_NEAR(stats.mean(), link.base, 0.02 * link.base);
  EXPECT_NEAR(stats.stddev(), link.spread, 0.05 * link.spread);
  EXPECT_DOUBLE_EQ(net::link_mean_ns(link), link.base);
}

TEST(LinkModel, NormalAdditiveComponent) {
  net::LinkSpec link;
  link.base = 1.0 * kMs;
  link.spread = 0.1 * kMs;
  link.add_mean = 5.0 * kMs;
  link.add_jitter = 1.0 * kMs;
  const auto stats = sample_many(link);
  EXPECT_NEAR(stats.mean(), 6.0 * kMs, 0.1 * kMs);
  // Independent normals: σ = √(0.1² + 1²) ms.
  EXPECT_NEAR(stats.stddev(), std::sqrt(1.01) * kMs, 0.05 * kMs);
  EXPECT_DOUBLE_EQ(net::link_mean_ns(link), 6.0 * kMs);
}

TEST(LinkModel, UniformMomentsAndBounds) {
  net::LinkSpec link;
  link.family = net::DelayFamily::kUniform;
  link.base = 0.5 * kMs;
  link.spread = 1.5 * kMs;
  const auto stats = sample_many(link);
  EXPECT_NEAR(stats.mean(), 1.0 * kMs, 0.02 * kMs);
  EXPECT_GE(stats.min(), link.base);
  EXPECT_LT(stats.max(), link.spread);
  // Uniform[a, b]: σ = (b − a)/√12.
  EXPECT_NEAR(stats.stddev(), kMs / std::sqrt(12.0), 0.02 * kMs);
  EXPECT_DOUBLE_EQ(net::link_mean_ns(link), 1.0 * kMs);
}

TEST(LinkModel, LogNormalMomentsMatchConfiguredMean) {
  net::LinkSpec link;
  link.family = net::DelayFamily::kLogNormal;
  link.base = 1.0 * kMs;
  link.shape = 0.5;
  const auto stats = sample_many(link);
  EXPECT_NEAR(stats.mean(), link.base, 0.03 * link.base);
  // LogNormal variance: mean²(e^{σ²} − 1).
  const double expected_sd = link.base * std::sqrt(std::exp(0.25) - 1.0);
  EXPECT_NEAR(stats.stddev(), expected_sd, 0.15 * expected_sd);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(LinkModel, ParetoMomentsAndHeavyTail) {
  net::LinkSpec link;
  link.family = net::DelayFamily::kPareto;
  link.base = 1.0 * kMs;
  link.shape = 3.0;
  const auto stats = sample_many(link);
  EXPECT_NEAR(stats.mean(), link.base, 0.05 * link.base);
  // Scale x_m = mean(α−1)/α is the distribution's minimum.
  const double xm = link.base * 2.0 / 3.0;
  EXPECT_GE(stats.min(), xm - 1);
  // Heavy tail: the max of 20k samples dwarfs the mean.
  EXPECT_GT(stats.max(), 4.0 * link.base);
}

TEST(LinkModel, NonNormalFamiliesKeepTheAddedDelayAndJitter) {
  // cfg.delay folds into the location and cfg.delay_jitter rides as a
  // zero-mean Normal component — a jittered condition must not silently
  // flatten when the family is swapped away from "normal".
  for (const char* family : {"uniform", "lognormal", "pareto"}) {
    net::NetConfig nc;
    nc.link_model = family;
    nc.added_delay = sim::milliseconds(5);
    nc.added_delay_jitter = sim::milliseconds(1);
    const net::LinkSpec link = net::base_link_spec(nc);
    EXPECT_DOUBLE_EQ(net::link_mean_ns(link), 0.5 * kMs + 5.0 * kMs)
        << family;
    EXPECT_DOUBLE_EQ(link.add_jitter, 1.0 * kMs) << family;
    const auto stats = sample_many(link);
    EXPECT_NEAR(stats.mean(), 5.5 * kMs, 0.15 * kMs) << family;
    EXPECT_GT(stats.stddev(), 0.9 * kMs) << family;  // jitter is present
  }
}

// ---------------------------------------------------------------------------
// Bit-compatibility with the pre-LinkModel transport
// ---------------------------------------------------------------------------

// The literals below were captured from the original implementation (the
// single global Normal sampler in SimNetwork) immediately before the
// LinkModel refactor. The default configuration must reproduce them
// bit-for-bit: same RNG draw sequence, same schedule, same results.

TEST(LinkModelCompat, DefaultDelaySequenceIsBitIdentical) {
  const std::vector<sim::Duration> expected = {
      582092, 652276, 450440, 527566, 483333, 506241, 474794, 551965};
  sim::Simulator s(7);
  net::NetConfig nc;  // defaults: rtt 1 ms, σ 100 µs, min 20 µs
  net::SimNetwork n(s, 2, nc);
  std::vector<sim::Duration> delays;
  n.set_handler(1, [&](const net::Envelope& e) {
    delays.push_back(s.now() - e.sent_at);
  });
  for (int i = 0; i < 8; ++i) {
    s.schedule_at(i * sim::milliseconds(1),
                  [&n] { n.send(0, 1, small_msg()); });
  }
  s.run_all();
  EXPECT_EQ(delays, expected);
}

TEST(LinkModelCompat, AddedDelaySequenceIsBitIdentical) {
  const std::vector<sim::Duration> expected = {
      7705514, 5810196, 5541513, 6179608, 5598016, 7409099, 6057447, 6251738};
  sim::Simulator s(7);
  net::NetConfig nc;
  nc.added_delay = sim::milliseconds(5);
  nc.added_delay_jitter = sim::milliseconds(1);
  net::SimNetwork n(s, 2, nc);
  std::vector<sim::Duration> delays;
  n.set_handler(1, [&](const net::Envelope& e) {
    delays.push_back(s.now() - e.sent_at);
  });
  for (int i = 0; i < 8; ++i) {
    s.schedule_at(i * sim::milliseconds(10),
                  [&n] { n.send(0, 1, small_msg()); });
  }
  s.run_all();
  EXPECT_EQ(delays, expected);
}

harness::RunSpec compat_spec(const std::string& protocol) {
  core::Config cfg;
  cfg.protocol = protocol;
  cfg.n_replicas = 4;
  cfg.bsize = 400;
  cfg.psize = 128;
  cfg.memsize = 200000;
  cfg.seed = 11;
  client::WorkloadConfig wl;
  wl.mode = client::LoadMode::kClosedLoop;
  wl.concurrency = 256;
  harness::RunSpec spec;
  spec.cfg = cfg;
  spec.workload = wl;
  spec.opts.warmup_s = 0.25;
  spec.opts.measure_s = 0.75;
  return spec;
}

TEST(LinkModelCompat, DefaultRunScheduleIsBitIdentical) {
  const harness::RunResult r = harness::execute(compat_spec("hotstuff"));
  EXPECT_DOUBLE_EQ(r.throughput_tps, 23634.666666666668);
  EXPECT_DOUBLE_EQ(r.latency_ms_mean, 10.833212898905604);
  EXPECT_DOUBLE_EQ(r.latency_ms_p99, 14.032111499999999);
  EXPECT_EQ(r.views, 448u);
  EXPECT_EQ(r.blocks_committed, 448u);
  EXPECT_EQ(r.blocks_received, 448u);
  EXPECT_EQ(r.net_bytes, 21635262u);
  EXPECT_EQ(r.latency_samples, 17726u);
}

TEST(LinkModelCompat, AddedDelayRunScheduleIsBitIdentical) {
  harness::RunSpec spec = compat_spec("streamlet");
  spec.cfg.delay = sim::milliseconds(5);
  spec.cfg.delay_jitter = sim::milliseconds(1);
  const harness::RunResult r = harness::execute(spec);
  EXPECT_DOUBLE_EQ(r.throughput_tps, 4550.666666666667);
  EXPECT_DOUBLE_EQ(r.latency_ms_mean, 56.078316580720703);
  EXPECT_DOUBLE_EQ(r.latency_ms_p99, 82.563470960000018);
  EXPECT_EQ(r.views, 66u);
  EXPECT_EQ(r.blocks_committed, 66u);
  EXPECT_EQ(r.net_bytes, 16416582u);
  EXPECT_EQ(r.latency_samples, 3413u);
}

// ---------------------------------------------------------------------------
// Loss accounting
// ---------------------------------------------------------------------------

TEST(LinkModel, LossDropsTheConfiguredFraction) {
  sim::Simulator s(5);
  net::NetConfig nc;
  nc.link_loss = 0.2;
  net::SimNetwork n(s, 2, nc);
  int delivered = 0;
  n.set_handler(1, [&](const net::Envelope&) { ++delivered; });
  const int sent = 5000;
  for (int i = 0; i < sent; ++i) {
    s.schedule_at(i * sim::microseconds(50),
                  [&n] { n.send(0, 1, small_msg()); });
  }
  s.run_all();
  EXPECT_EQ(delivered + static_cast<int>(n.messages_lost()), sent);
  EXPECT_EQ(n.messages_dropped(), n.messages_lost());
  EXPECT_NEAR(static_cast<double>(n.messages_lost()) / sent, 0.2, 0.02);
}

TEST(LinkModel, LossDrawHappensExactlyWhenLossIsPositive) {
  const auto arrivals_with = [](double loss) {
    sim::Simulator s(3);
    net::NetConfig nc;
    nc.link_loss = loss;
    net::SimNetwork n(s, 2, nc);
    std::vector<sim::Time> arrivals;
    n.set_handler(1, [&](const net::Envelope&) { arrivals.push_back(s.now()); });
    for (int i = 0; i < 100; ++i) {
      s.schedule_at(i * sim::microseconds(80),
                    [&n] { n.send(0, 1, small_msg()); });
    }
    s.run_all();
    return arrivals;
  };
  // A vanishing but positive loss consumes one Bernoulli draw per message
  // (dropping nothing at p = 1e-12), which shifts every delay draw after
  // the first — so the schedules must differ. At loss == 0 the draw is
  // skipped entirely: that schedule is pinned bit-exactly against the
  // pre-LinkModel capture by DefaultDelaySequenceIsBitIdentical above.
  const auto lossless = arrivals_with(0.0);
  const auto epsilon = arrivals_with(1e-12);
  EXPECT_EQ(lossless.size(), epsilon.size());  // nothing actually dropped
  EXPECT_NE(lossless, epsilon);
}

TEST(LinkModel, LossyRunStaysConsistent) {
  harness::RunSpec spec = compat_spec("hotstuff");
  spec.cfg.link_loss = 0.01;
  spec.opts.measure_s = 0.4;
  const harness::RunResult r = harness::execute(spec);
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GT(r.blocks_committed, 0u);
}

// ---------------------------------------------------------------------------
// Gilbert-Elliott bursty loss
// ---------------------------------------------------------------------------

// Classic two-state channel: P(good->bad) = p, P(bad->good) = r per
// message, loss rate k in good / h in bad. Stationary P(bad) = p/(p+r),
// stationary loss = (k*r + h*p)/(p+r), bad sojourns Geometric(r) with
// mean 1/r and variance (1-r)/r^2.

TEST(GilbertElliott, StationaryLossRateMatchesTheory) {
  net::LinkSpec link;
  link.ge_p = 0.05;
  link.ge_r = 0.25;
  link.ge_loss_good = 0;
  link.ge_loss_bad = 1.0;
  ASSERT_TRUE(link.gilbert_elliott_enabled());
  util::Rng rng(17);
  bool bad = false;
  const int n = 200000;
  int lost = 0;
  for (int i = 0; i < n; ++i) {
    if (net::gilbert_elliott_step(link, bad, rng)) ++lost;
  }
  // p/(p+r) = 0.05/0.30 = 1/6 of messages land in the bad (always-lose)
  // state.
  EXPECT_NEAR(static_cast<double>(lost) / n, 1.0 / 6.0, 0.01);
}

TEST(GilbertElliott, MixedLossRatesMatchTheory) {
  net::LinkSpec link;
  link.ge_p = 0.02;
  link.ge_r = 0.2;
  link.ge_loss_good = 0.1;
  link.ge_loss_bad = 0.9;
  util::Rng rng(18);
  bool bad = false;
  const int n = 200000;
  int lost = 0;
  for (int i = 0; i < n; ++i) {
    if (net::gilbert_elliott_step(link, bad, rng)) ++lost;
  }
  // (k*r + h*p)/(p+r) = (0.1*0.2 + 0.9*0.02)/0.22 ~ 17.27%.
  EXPECT_NEAR(static_cast<double>(lost) / n, (0.1 * 0.2 + 0.9 * 0.02) / 0.22,
              0.01);
}

TEST(GilbertElliott, BurstLengthMomentsAreGeometric) {
  // With loss_bad = 1 and loss_good = 0, loss bursts ARE the bad-state
  // sojourns: Geometric(r), mean 1/r, variance (1-r)/r^2.
  net::LinkSpec link;
  link.ge_p = 0.05;
  link.ge_r = 0.25;
  link.ge_loss_good = 0;
  link.ge_loss_bad = 1.0;
  util::Rng rng(19);
  bool bad = false;
  util::RunningStats bursts;
  int current = 0;
  for (int i = 0; i < 400000; ++i) {
    if (net::gilbert_elliott_step(link, bad, rng)) {
      ++current;
    } else if (current > 0) {
      bursts.add(current);
      current = 0;
    }
  }
  ASSERT_GT(bursts.count(), 1000u);
  EXPECT_NEAR(bursts.mean(), 1.0 / 0.25, 0.15);  // mean 4 messages
  const double expected_sd = std::sqrt((1.0 - 0.25) / (0.25 * 0.25));
  EXPECT_NEAR(bursts.stddev(), expected_sd, 0.2 * expected_sd);
}

TEST(GilbertElliott, LayersUnderBernoulliLoss) {
  // Both models on: survival = (1 - GE stationary loss)(1 - Bernoulli).
  sim::Simulator s(5);
  net::NetConfig nc;
  nc.ge_p = 0.3;
  nc.ge_r = 0.3;
  nc.ge_loss_bad = 1.0;
  nc.link_loss = 0.2;
  net::SimNetwork n(s, 2, nc);
  int delivered = 0;
  n.set_handler(1, [&](const net::Envelope&) { ++delivered; });
  const int sent = 20000;
  for (int i = 0; i < sent; ++i) {
    s.schedule_at(i * sim::microseconds(50),
                  [&n] { n.send(0, 1, small_msg()); });
  }
  s.run_all();
  EXPECT_EQ(delivered + static_cast<int>(n.messages_lost()), sent);
  // Stationary GE loss 0.5; combined drop 1 - 0.5*0.8 = 0.6.
  EXPECT_NEAR(static_cast<double>(n.messages_lost()) / sent, 0.6, 0.02);
}

TEST(GilbertElliott, DisabledChannelKeepsThePinnedSchedule) {
  // ge_p == 0 must consume no RNG: the default delay sequence is the
  // pre-churn pinned one even with ge_r / loss rates set.
  const std::vector<sim::Duration> expected = {
      582092, 652276, 450440, 527566, 483333, 506241, 474794, 551965};
  sim::Simulator s(7);
  net::NetConfig nc;
  nc.ge_p = 0;  // disabled
  nc.ge_r = 0.5;
  nc.ge_loss_good = 0.5;
  net::SimNetwork n(s, 2, nc);
  std::vector<sim::Duration> delays;
  n.set_handler(1, [&](const net::Envelope& e) {
    delays.push_back(s.now() - e.sent_at);
  });
  for (int i = 0; i < 8; ++i) {
    s.schedule_at(i * sim::milliseconds(1),
                  [&n] { n.send(0, 1, small_msg()); });
  }
  s.run_all();
  EXPECT_EQ(delays, expected);
}

TEST(GilbertElliott, PerLinkStateIsIndependent) {
  // Two directed links with a deterministic channel (p = r = ~1): each
  // link's state machine advances independently per ITS traffic, so the
  // 0->1 burst pattern is unaffected by interleaved 1->0 sends.
  sim::Simulator s(11);
  net::NetConfig nc;
  nc.ge_p = 0.999999;  // flip almost every message
  nc.ge_r = 0.999999;
  nc.ge_loss_bad = 1.0;
  net::SimNetwork n(s, 2, nc);
  int to1 = 0, to0 = 0;
  n.set_handler(1, [&](const net::Envelope&) { ++to1; });
  n.set_handler(0, [&](const net::Envelope&) { ++to0; });
  for (int i = 0; i < 1000; ++i) {
    s.schedule_at(i * sim::microseconds(200), [&n] {
      n.send(0, 1, small_msg());
      n.send(1, 0, small_msg());
    });
  }
  s.run_all();
  // Alternating good/bad per link: ~half of each direction delivered.
  EXPECT_NEAR(to1, 500, 25);
  EXPECT_NEAR(to0, 500, 25);
}

// ---------------------------------------------------------------------------
// Topology matrix generation
// ---------------------------------------------------------------------------

net::LinkSpec lan_base() {
  net::LinkSpec base;
  base.base = 0.5 * kMs;
  base.spread = 0.07 * kMs;
  return base;
}

TEST(Topology, UniformFillsEveryPairWithBase) {
  const auto m = net::make_topology("uniform", 4, 4, lan_base());
  EXPECT_EQ(m.size(), 4u);
  for (types::NodeId a = 0; a < 4; ++a) {
    for (types::NodeId b = 0; b < 4; ++b) {
      EXPECT_EQ(m.at(a, b), lan_base());
    }
  }
}

TEST(Topology, WanAddsHalfRttOnCrossRegionReplicaLinks) {
  // 6 replicas + 2 clients, 3 regions: region(i) = i % 3.
  const auto m = net::make_topology("wan:3:40", 8, 6, lan_base());
  const double lan = lan_base().base;
  // Same region (0 and 3): untouched.
  EXPECT_DOUBLE_EQ(m.at(0, 3).base, lan);
  // Cross region: +20 ms one-way, both directions.
  EXPECT_DOUBLE_EQ(m.at(0, 1).base, lan + 20.0 * kMs);
  EXPECT_DOUBLE_EQ(m.at(1, 0).base, lan + 20.0 * kMs);
  EXPECT_DOUBLE_EQ(m.at(2, 4).base, lan + 20.0 * kMs);
  // Client hosts (6, 7) keep base links in both directions.
  EXPECT_DOUBLE_EQ(m.at(6, 1).base, lan);
  EXPECT_DOUBLE_EQ(m.at(1, 7).base, lan);
}

TEST(Topology, WanRttListIndexesRingDistance) {
  // 4 regions, distance-1 RTT 40 ms, distance-2 RTT 120 ms.
  const auto m = net::make_topology("wan:4:40,120", 4, 4, lan_base());
  const double lan = lan_base().base;
  EXPECT_DOUBLE_EQ(m.at(0, 1).base, lan + 20.0 * kMs);   // distance 1
  EXPECT_DOUBLE_EQ(m.at(0, 2).base, lan + 60.0 * kMs);   // distance 2
  EXPECT_DOUBLE_EQ(m.at(0, 3).base, lan + 20.0 * kMs);   // ring: distance 1
}

TEST(Topology, SlowReplicaIsSymmetric) {
  const auto m = net::make_topology("slow-replica:2:15", 5, 4, lan_base());
  const double lan = lan_base().base;
  EXPECT_DOUBLE_EQ(m.at(2, 0).base, lan + 15.0 * kMs);
  EXPECT_DOUBLE_EQ(m.at(0, 2).base, lan + 15.0 * kMs);
  EXPECT_DOUBLE_EQ(m.at(2, 4).base, lan + 15.0 * kMs);  // client link too
  EXPECT_DOUBLE_EQ(m.at(0, 1).base, lan);               // bystanders
}

TEST(Topology, SlowLeaderIsOutboundOnly) {
  const auto m = net::make_topology("slow-leader:25", 4, 4, lan_base());
  const double lan = lan_base().base;
  EXPECT_DOUBLE_EQ(m.at(0, 1).base, lan + 25.0 * kMs);  // outbound: slow
  EXPECT_DOUBLE_EQ(m.at(1, 0).base, lan);               // inbound: fast
  EXPECT_DOUBLE_EQ(m.at(1, 2).base, lan);
  // Explicit leader id.
  const auto m2 = net::make_topology("slow-leader:25:2", 4, 4, lan_base());
  EXPECT_DOUBLE_EQ(m2.at(2, 0).base, lan + 25.0 * kMs);
  EXPECT_DOUBLE_EQ(m2.at(0, 2).base, lan);
}

TEST(Topology, ShiftRespectsUniformParameterization) {
  net::LinkSpec link;
  link.family = net::DelayFamily::kUniform;
  link.base = 1.0 * kMs;
  link.spread = 2.0 * kMs;
  net::shift_link(link, 10.0 * kMs);
  EXPECT_DOUBLE_EQ(link.base, 11.0 * kMs);
  EXPECT_DOUBLE_EQ(link.spread, 12.0 * kMs);
  EXPECT_DOUBLE_EQ(net::link_mean_ns(link), 11.5 * kMs);
}

TEST(Topology, BadSpecsThrow) {
  EXPECT_THROW(net::make_topology("nonsense", 4, 4, lan_base()),
               std::invalid_argument);
  EXPECT_THROW(net::make_topology("wan", 4, 4, lan_base()),
               std::invalid_argument);  // missing args
  EXPECT_THROW(net::make_topology("wan:3:abc", 4, 4, lan_base()),
               std::invalid_argument);  // bad number
  EXPECT_THROW(net::make_topology("slow-replica:9:10", 4, 4, lan_base()),
               std::invalid_argument);  // id out of range
  EXPECT_THROW(static_cast<void>(net::parse_delay_family("cauchy")),
               std::invalid_argument);
}

TEST(Topology, RegistryAcceptsCustomScenarioAndGuardsBuiltins) {
  net::register_topology("test-star", [](const net::TopologyContext& ctx) {
    // Every link to/from endpoint 0 doubled.
    net::LinkMatrix m(ctx.n_endpoints, ctx.base);
    for (types::NodeId other = 1; other < ctx.n_endpoints; ++other) {
      m.at(0, other).base *= 2;
      m.at(other, 0).base *= 2;
    }
    return m;
  });
  const auto m = net::make_topology("test-star", 3, 3, lan_base());
  EXPECT_DOUBLE_EQ(m.at(0, 1).base, 2 * lan_base().base);
  EXPECT_DOUBLE_EQ(m.at(1, 2).base, lan_base().base);
  const auto names = net::topology_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-star"), names.end());
  EXPECT_THROW(net::register_topology("wan", [](const net::TopologyContext&) {
                 return net::LinkMatrix();
               }),
               std::invalid_argument);
  EXPECT_THROW(net::register_topology("bad:name",
                                      [](const net::TopologyContext&) {
                                        return net::LinkMatrix();
                                      }),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// End-to-end scenarios through the harness
// ---------------------------------------------------------------------------

TEST(LinkModelEndToEnd, WanScenariosRunDeterministically) {
  for (const char* family : {"uniform", "lognormal", "pareto"}) {
    harness::RunSpec spec = compat_spec("hotstuff");
    spec.cfg.n_replicas = 6;
    spec.cfg.link_model = family;
    spec.cfg.topology = "wan:3:10";
    spec.cfg.timeout = sim::milliseconds(300);
    spec.opts.warmup_s = 0.1;
    spec.opts.measure_s = 0.4;
    const harness::RunResult a = harness::execute(spec);
    const harness::RunResult b = harness::execute(spec);
    EXPECT_EQ(a, b) << family;  // same seed => same schedule
    EXPECT_TRUE(a.consistent) << family;
    EXPECT_GT(a.blocks_committed, 0u) << family;
  }
}

TEST(LinkModelEndToEnd, WanDelaySlowsLatencyVersusLan) {
  harness::RunSpec lan = compat_spec("hotstuff");
  lan.opts.measure_s = 0.4;
  harness::RunSpec wan = lan;
  wan.cfg.topology = "wan:2:20";
  wan.cfg.timeout = sim::milliseconds(300);
  const harness::RunResult rl = harness::execute(lan);
  const harness::RunResult rw = harness::execute(wan);
  EXPECT_GT(rw.latency_ms_mean, rl.latency_ms_mean + 5.0);
}

TEST(LinkModelEndToEnd, UnknownModelThrowsAtClusterConstruction) {
  harness::RunSpec spec = compat_spec("hotstuff");
  spec.cfg.link_model = "cauchy";
  EXPECT_THROW(harness::execute(spec), std::invalid_argument);
  harness::RunSpec spec2 = compat_spec("hotstuff");
  spec2.cfg.topology = "moebius:3";
  EXPECT_THROW(harness::execute(spec2), std::invalid_argument);
}

}  // namespace
}  // namespace bamboo
