// Engine-level tests for the Replica: proposing, client handling,
// backpressure, view changes, chain sync, crash semantics, Byzantine
// behaviour switches.

#include <gtest/gtest.h>

#include "client/workload.h"
#include "harness/cluster.h"

namespace bamboo {
namespace {

core::Config small_config(const std::string& protocol = "hotstuff") {
  core::Config cfg;
  cfg.protocol = protocol;
  cfg.n_replicas = 4;
  cfg.bsize = 50;
  cfg.seed = 3;
  return cfg;
}

/// Run a cluster with closed-loop load for `seconds`.
struct LiveCluster {
  harness::Cluster cluster;
  client::WorkloadDriver driver;

  explicit LiveCluster(const core::Config& cfg, std::uint32_t concurrency = 32)
      : cluster(cfg),
        driver(cluster.simulator(), cluster.network(), cluster.config(),
               [&] {
                 client::WorkloadConfig wl;
                 wl.concurrency = concurrency;
                 return wl;
               }()) {
    driver.install();
  }

  void run(double seconds) {
    cluster.start();
    driver.start();
    cluster.simulator().run_for(sim::from_seconds(seconds));
  }
};

TEST(Replica, LeadersRotateAndPropose) {
  LiveCluster lc(small_config());
  lc.run(0.3);
  for (types::NodeId id = 0; id < 4; ++id) {
    EXPECT_GT(lc.cluster.replica(id).stats().blocks_proposed, 10u)
        << "replica " << id << " should lead every 4th view";
  }
}

TEST(Replica, CommittedBlocksCarryClientTransactions) {
  LiveCluster lc(small_config());
  lc.run(0.5);
  std::uint64_t committed_txs = 0;
  for (types::NodeId id = 0; id < 4; ++id) {
    committed_txs += lc.cluster.replica(id).stats().txs_committed;
  }
  EXPECT_GT(committed_txs, 100u);
  EXPECT_EQ(committed_txs, lc.driver.stats().completed);
}

TEST(Replica, HappyPathHasNoTimeoutsOrForks) {
  LiveCluster lc(small_config());
  lc.run(0.5);
  EXPECT_EQ(lc.cluster.total_timeouts(), 0u);
  EXPECT_EQ(lc.cluster.observer().stats().blocks_forked, 0u);
  EXPECT_EQ(lc.cluster.observer().stats().safety_violations, 0u);
}

TEST(Replica, MempoolRejectionsAreAnsweredAndRetried) {
  auto cfg = small_config();
  cfg.memsize = 8;  // tiny pool: rejections guaranteed
  LiveCluster lc(cfg, 128);
  lc.run(0.4);
  EXPECT_GT(lc.driver.stats().rejected, 0u);
  // The system still makes progress; rejected sessions retry.
  EXPECT_GT(lc.driver.stats().completed, 50u);
}

TEST(Replica, CrashStopsAllActivity) {
  LiveCluster lc(small_config());
  lc.cluster.start();
  lc.driver.start();
  lc.cluster.simulator().run_for(sim::from_seconds(0.1));
  lc.cluster.crash_replica(2);
  const auto proposed_at_crash = lc.cluster.replica(2).stats().blocks_proposed;
  lc.cluster.simulator().run_for(sim::from_seconds(0.3));
  EXPECT_TRUE(lc.cluster.replica(2).crashed());
  EXPECT_EQ(lc.cluster.replica(2).stats().blocks_proposed, proposed_at_crash);
  // The rest of the cluster keeps committing.
  EXPECT_GT(lc.cluster.observer().stats().blocks_committed, 20u);
}

TEST(Replica, SilenceSwitchMidRunStopsProposals) {
  LiveCluster lc(small_config());
  lc.cluster.start();
  lc.driver.start();
  lc.cluster.simulator().run_for(sim::from_seconds(0.2));
  lc.cluster.silence_replica(1);
  const auto proposed = lc.cluster.replica(1).stats().blocks_proposed;
  lc.cluster.simulator().run_for(sim::from_seconds(0.3));
  EXPECT_EQ(lc.cluster.replica(1).stats().blocks_proposed, proposed);
  // Unlike a crash, a silent replica keeps voting; consensus continues
  // with timeouts only at its leadership slots.
  EXPECT_GT(lc.cluster.replica(1).stats().votes_sent, 0u);
  EXPECT_GT(lc.cluster.total_timeouts(), 0u);
  EXPECT_GT(lc.cluster.observer().stats().blocks_committed, 20u);
}

TEST(Replica, BackpressureRejectsFloods) {
  auto cfg = small_config();
  cfg.cpu_queue_limit = 64;
  cfg.cpu_ingest_per_tx = sim::milliseconds(1);  // deliberately slow CPU
  harness::Cluster cluster(cfg);
  client::WorkloadConfig wl;
  wl.mode = client::LoadMode::kOpenLoop;
  wl.arrival_rate_tps = 50000;  // far beyond the crippled capacity
  client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                cluster.config(), wl);
  driver.install();
  cluster.start();
  driver.start();
  cluster.simulator().run_for(sim::from_seconds(0.2));
  std::uint64_t rejections = 0;
  for (types::NodeId id = 0; id < 4; ++id) {
    rejections += cluster.replica(id).stats().client_rejections;
  }
  EXPECT_GT(rejections, 0u);
}

TEST(Replica, StaticLeaderNeverRotates) {
  auto cfg = small_config();
  cfg.election = "static:1";
  LiveCluster lc(cfg);
  lc.run(0.3);
  EXPECT_GT(lc.cluster.replica(1).stats().blocks_proposed, 50u);
  EXPECT_EQ(lc.cluster.replica(0).stats().blocks_proposed, 0u);
  EXPECT_EQ(lc.cluster.replica(2).stats().blocks_proposed, 0u);
}

TEST(Replica, HashElectionStillLive) {
  auto cfg = small_config();
  cfg.election = "hash";
  LiveCluster lc(cfg);
  lc.run(0.4);
  EXPECT_GT(lc.cluster.observer().stats().blocks_committed, 50u);
  EXPECT_TRUE(lc.cluster.check_consistency().consistent);
}

TEST(Replica, FastHotStuffViewChangeCarriesTc) {
  // With a silent leader, FHS proposals after view changes must carry the
  // TC (AggQC) or honest replicas would refuse to vote; liveness proves
  // the plumbing works.
  auto cfg = small_config("fasthotstuff");
  cfg.byz_no = 1;
  cfg.strategy = "silence";
  cfg.timeout = sim::milliseconds(20);
  LiveCluster lc(cfg);
  lc.run(0.6);
  EXPECT_GT(lc.cluster.total_timeouts(), 0u);
  EXPECT_GT(lc.cluster.observer().stats().blocks_committed, 10u);
  EXPECT_TRUE(lc.cluster.check_consistency().consistent);
}

TEST(Replica, StreamletEchoMultipliesTraffic) {
  LiveCluster hs(small_config("hotstuff"));
  hs.run(0.2);
  const double hs_msgs =
      static_cast<double>(hs.cluster.network().messages_sent());
  LiveCluster sl(small_config("streamlet"));
  sl.run(0.2);
  const double sl_msgs =
      static_cast<double>(sl.cluster.network().messages_sent());
  const double hs_views = static_cast<double>(hs.cluster.observer().current_view());
  const double sl_views = static_cast<double>(sl.cluster.observer().current_view());
  ASSERT_GT(hs_views, 0);
  ASSERT_GT(sl_views, 0);
  // Per view, Streamlet sends several times more messages (broadcast votes
  // + echo of every first-seen message).
  EXPECT_GT(sl_msgs / sl_views, 2.5 * (hs_msgs / hs_views));
}

TEST(Replica, ObserverChainHashesMatchProposers) {
  LiveCluster lc(small_config());
  lc.run(0.3);
  const auto& forest = lc.cluster.observer().forest();
  // Every committed block's proposer must match the round-robin schedule.
  for (types::Height h = 1; h <= forest.committed_height(); ++h) {
    const auto hash = forest.committed_hash_at(h);
    ASSERT_TRUE(hash.has_value());
    const auto block = forest.get(*hash);
    if (!block) continue;  // pruned below the retention horizon
    EXPECT_EQ(block->proposer(),
              lc.cluster.election().leader(block->view()));
  }
}

}  // namespace
}  // namespace bamboo
