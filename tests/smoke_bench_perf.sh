#!/usr/bin/env bash
# Smoke test for the perf driver: a --quick run must produce a BENCH json
# that check_perf.py accepts, and a second --quick run gated against the
# first must pass with a wide-open tolerance (sanity of the compare path,
# not a perf assertion — both runs are on the same machine seconds apart).
set -euo pipefail

bench_perf=$1   # path to the bench_perf binary
check_perf=$2   # path to tools/check_perf.py
out_dir=$3      # scratch directory

rm -rf "$out_dir"
mkdir -p "$out_dir"

"$bench_perf" --quick --label smoke_a --out "$out_dir/smoke_a.json"
python3 "$check_perf" --validate "$out_dir/smoke_a.json"

"$bench_perf" --quick --label smoke_b --out "$out_dir/smoke_b.json" \
  --baseline "$out_dir/smoke_a.json"
python3 "$check_perf" --candidate "$out_dir/smoke_b.json" \
  --reference "$out_dir/smoke_a.json" --tolerance 0.9

echo "smoke_bench_perf OK"
