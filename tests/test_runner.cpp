// Tests for the parallel experiment engine: RunSpec/execute determinism,
// ParallelRunner thread-count invariance (a T-thread sweep must be
// bit-identical to the sequential one), multi-seed aggregation, the
// runner-based sweep overloads, and cross-process sharding (partition
// property + shard-merge bit-identity with single-process run_repeated).

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <stdexcept>
#include <utility>

#include "client/workload.h"
#include "harness/experiment.h"
#include "harness/runner.h"
#include "util/rng.h"

namespace bamboo {
namespace {

harness::RunSpec small_spec(std::uint64_t seed = 7) {
  harness::RunSpec spec;
  spec.cfg.bsize = 50;
  spec.cfg.seed = seed;
  spec.workload.concurrency = 32;
  spec.opts.warmup_s = 0.1;
  spec.opts.measure_s = 0.3;
  return spec;
}

// ---------------------------------------------------------------------------
// execute() determinism
// ---------------------------------------------------------------------------

TEST(Execute, SameSpecSameResultBitForBit) {
  const auto a = harness::execute(small_spec());
  const auto b = harness::execute(small_spec());
  EXPECT_EQ(a, b);
  EXPECT_GT(a.throughput_tps, 0);
  EXPECT_GT(a.net_bytes, 0u);
}

TEST(Execute, DifferentSeedsDiffer) {
  const auto a = harness::execute(small_spec(7));
  const auto b = harness::execute(small_spec(8));
  EXPECT_NE(a, b);
}

TEST(Execute, MatchesLegacyRunExperiment) {
  const auto spec = small_spec();
  const auto direct = harness::execute(spec);
  const auto legacy =
      harness::run_experiment(spec.cfg, spec.workload, spec.opts);
  EXPECT_EQ(direct, legacy);
}

TEST(ExecuteFull, TimelineMatchesLegacyResponsivenessRun) {
  core::Config cfg;
  cfg.bsize = 100;
  client::WorkloadConfig wl;
  wl.mode = client::LoadMode::kOpenLoop;
  wl.arrival_rate_tps = 2000;

  const auto spec = harness::timeline_spec(cfg, wl, /*horizon=*/1.0,
                                           /*bucket=*/0.25, 10, 11, 0, 0,
                                           /*crash_at=*/-1, 0);
  const auto out = harness::execute_full(spec);
  const auto legacy = harness::run_responsiveness_timeline(
      cfg, wl, 1.0, 0.25, 10, 11, 0, 0, -1, 0);
  EXPECT_EQ(out.result, legacy.summary);
  EXPECT_EQ(out.tx_per_s, legacy.tx_per_s);
  EXPECT_EQ(out.bucket_start_s, legacy.bucket_start_s);
  ASSERT_EQ(out.tx_per_s.size(), 4u);
}

// ---------------------------------------------------------------------------
// ParallelRunner
// ---------------------------------------------------------------------------

std::vector<harness::RunSpec> grid_specs() {
  std::vector<harness::RunSpec> specs;
  for (const char* protocol : {"hotstuff", "2chs", "streamlet"}) {
    for (std::uint32_t conc : {8u, 64u}) {
      auto spec = small_spec();
      spec.cfg.protocol = protocol;
      spec.workload.concurrency = conc;
      spec.offered = conc;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

TEST(ParallelRunner, ThreadCountDoesNotChangeResults) {
  const auto specs = grid_specs();
  harness::ParallelRunner sequential(1);
  harness::ParallelRunner pool4(4);
  harness::ParallelRunner pool7(7);  // more threads than one deal round
  const auto r1 = sequential.run(specs);
  const auto r4 = pool4.run(specs);
  const auto r7 = pool7.run(specs);
  ASSERT_EQ(r1.size(), specs.size());
  EXPECT_EQ(r1, r4);
  EXPECT_EQ(r1, r7);
}

TEST(ParallelRunner, ResultsOrderedBySpecIndex) {
  const auto specs = grid_specs();
  harness::ParallelRunner runner(4);
  const auto results = runner.run(specs);
  std::vector<harness::RunResult> reference;
  reference.reserve(specs.size());
  for (const auto& spec : specs) reference.push_back(harness::execute(spec));
  EXPECT_EQ(results, reference);
}

TEST(ParallelRunner, PropagatesRunExceptions) {
  auto spec = small_spec();
  spec.cfg.protocol = "no-such-protocol";
  harness::ParallelRunner runner(2);
  EXPECT_THROW(runner.run({spec, small_spec()}), std::invalid_argument);
}

TEST(ParallelRunner, EmptySpecListIsFine) {
  harness::ParallelRunner runner(4);
  EXPECT_TRUE(runner.run({}).empty());
}

TEST(ParallelRunner, ResolveThreadsPrecedence) {
  EXPECT_EQ(harness::ParallelRunner::resolve_threads(3), 3u);
  ::setenv("BAMBOO_THREADS", "5", 1);
  EXPECT_EQ(harness::ParallelRunner::resolve_threads(0), 5u);
  EXPECT_EQ(harness::ParallelRunner::resolve_threads(2), 2u);
  ::unsetenv("BAMBOO_THREADS");
  EXPECT_GE(harness::ParallelRunner::resolve_threads(0), 1u);
}

// ---------------------------------------------------------------------------
// Runner-based sweeps vs sequential sweeps
// ---------------------------------------------------------------------------

TEST(ParallelSweep, ClosedLoopBitIdenticalToSequential) {
  core::Config cfg;
  cfg.bsize = 50;
  client::WorkloadConfig wl;
  const std::vector<std::uint32_t> ladder = {8, 32, 64};
  const harness::RunOptions opts{0.1, 0.3};

  const auto seq = harness::sweep_closed_loop(cfg, wl, ladder, opts);
  harness::ParallelRunner runner(4);
  const auto par = harness::sweep_closed_loop(runner, cfg, wl, ladder, opts);
  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_DOUBLE_EQ(par[i].offered, seq[i].offered);
    EXPECT_EQ(par[i].result, seq[i].result) << "point " << i;
  }
}

TEST(ParallelSweep, OpenLoopBitIdenticalToSequential) {
  core::Config cfg;
  cfg.bsize = 50;
  client::WorkloadConfig wl;
  const std::vector<double> rates = {500.0, 2000.0};
  const harness::RunOptions opts{0.1, 0.3};

  const auto seq = harness::sweep_open_loop(cfg, wl, rates, opts);
  harness::ParallelRunner runner(4);
  const auto par = harness::sweep_open_loop(runner, cfg, wl, rates, opts);
  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(par[i].result, seq[i].result) << "point " << i;
  }
}

// ---------------------------------------------------------------------------
// Multi-seed aggregation
// ---------------------------------------------------------------------------

TEST(Aggregate, RepeatedRunsProduceStats) {
  harness::ParallelRunner runner(4);
  const auto agg = runner.run_repeated(small_spec(), 4, /*base_seed=*/100);
  EXPECT_EQ(agg.runs, 4u);
  ASSERT_EQ(agg.results.size(), 4u);
  EXPECT_TRUE(agg.all_consistent);
  EXPECT_EQ(agg.safety_violations, 0u);
  // Seeds differ, so throughput varies; the mean sits inside [min, max].
  EXPECT_GT(agg.throughput_tps.stats.min(), 0.0);
  EXPECT_GE(agg.throughput_tps.mean(), agg.throughput_tps.stats.min());
  EXPECT_LE(agg.throughput_tps.mean(), agg.throughput_tps.stats.max());
  EXPECT_GT(agg.throughput_tps.ci95(), 0.0);
  // Per-seed results are ordered and reproducible.
  EXPECT_EQ(agg.results[0], harness::execute(small_spec(100)));
  EXPECT_EQ(agg.results[3], harness::execute(small_spec(103)));
}

TEST(Aggregate, IndependentOfThreadCount) {
  harness::ParallelRunner one(1);
  harness::ParallelRunner four(4);
  const auto a = one.run_repeated(small_spec(), 3, 50);
  const auto b = four.run_repeated(small_spec(), 3, 50);
  EXPECT_EQ(a.results, b.results);
  EXPECT_DOUBLE_EQ(a.throughput_tps.mean(), b.throughput_tps.mean());
  EXPECT_DOUBLE_EQ(a.latency_ms_mean.ci95(), b.latency_ms_mean.ci95());
}

// ---------------------------------------------------------------------------
// Sharding
// ---------------------------------------------------------------------------

TEST(Shard, ParseAcceptsOneBasedIOverN) {
  const auto s = harness::Shard::parse("2/3");
  EXPECT_EQ(s.index, 1u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_TRUE(s.enabled());
  EXPECT_EQ(s.label(), "shard2of3");
  const auto whole = harness::Shard::parse("1/1");
  EXPECT_FALSE(whole.enabled());
  EXPECT_EQ(whole.label(), "");
}

TEST(Shard, ParseRejectsMalformedInput) {
  EXPECT_THROW(harness::Shard::parse("3"), std::invalid_argument);
  EXPECT_THROW(harness::Shard::parse("0/3"), std::invalid_argument);
  EXPECT_THROW(harness::Shard::parse("4/3"), std::invalid_argument);
  EXPECT_THROW(harness::Shard::parse("1/0"), std::invalid_argument);
  EXPECT_THROW(harness::Shard::parse("a/b"), std::invalid_argument);
  EXPECT_THROW(harness::Shard::parse("1/"), std::invalid_argument);
  EXPECT_THROW(harness::Shard::parse("/3"), std::invalid_argument);
  EXPECT_THROW(harness::Shard::parse("1x/3"), std::invalid_argument);
}

TEST(Shard, PartitionCoversEveryJobExactlyOnce) {
  // Property: for random grid sizes and every n in 1..8, the union of the
  // n shard slices is the full flattened job list with no overlap.
  util::Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const auto jobs = static_cast<std::size_t>(rng.uniform_int(1, 200));
    for (std::uint32_t n = 1; n <= 8; ++n) {
      std::vector<int> owners(jobs, 0);
      for (std::uint32_t i = 0; i < n; ++i) {
        const harness::Shard shard{i, n};
        for (std::size_t j = 0; j < jobs; ++j) {
          if (shard.owns(j)) ++owners[j];
        }
      }
      for (std::size_t j = 0; j < jobs; ++j) {
        ASSERT_EQ(owners[j], 1)
            << "job " << j << " of " << jobs << " with n=" << n;
      }
    }
  }
}

TEST(RunRepeatedGrid, UnshardedMatchesRunRepeatedBitForBit) {
  std::vector<harness::RunSpec> grid = {small_spec(7), small_spec(21)};
  grid[1].cfg.protocol = "2chs";
  harness::ParallelRunner runner(4);
  const auto grid_run = runner.run_repeated_grid(grid, 3);

  ASSERT_EQ(grid_run.jobs.size(), 6u);
  ASSERT_EQ(grid_run.aggregates.size(), 2u);
  for (std::size_t s = 0; s < grid.size(); ++s) {
    ASSERT_TRUE(grid_run.aggregates[s]);
    const auto reference = runner.run_repeated(grid[s], 3);
    EXPECT_EQ(grid_run.aggregates[s]->results, reference.results);
    EXPECT_EQ(grid_run.aggregates[s]->throughput_tps.mean(),
              reference.throughput_tps.mean());
    EXPECT_EQ(grid_run.aggregates[s]->latency_ms_mean.ci95(),
              reference.latency_ms_mean.ci95());
  }
}

TEST(RunRepeatedGrid, ShardUnionIsTheFullGridAndMergesBitForBit) {
  std::vector<harness::RunSpec> grid = {small_spec(7), small_spec(21),
                                        small_spec(35)};
  grid[1].workload.concurrency = 16;
  const std::uint32_t reps = 2;
  harness::ParallelRunner runner(2);

  // Union this shard count's slices: every (spec, rep) exactly once.
  const std::uint32_t n = 3;
  std::map<std::pair<std::uint32_t, std::uint32_t>, harness::RunResult> jobs;
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto shard_run =
        runner.run_repeated_grid(grid, reps, harness::Shard{i, n});
    for (const auto& job : shard_run.jobs) {
      const auto key = std::make_pair(job.spec_index, job.rep);
      ASSERT_EQ(jobs.count(key), 0u) << "overlapping shards";
      jobs.emplace(key, job.result);
    }
  }
  ASSERT_EQ(jobs.size(), grid.size() * reps);

  // Refold each spec's reps in rep order: bit-identical to the
  // single-process run_repeated under the same seeds.
  for (std::uint32_t s = 0; s < grid.size(); ++s) {
    harness::Aggregate merged;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      merged.add(jobs.at({s, rep}));
      merged.results.push_back(jobs.at({s, rep}));
    }
    const auto reference = runner.run_repeated(grid[s], reps);
    EXPECT_EQ(merged.results, reference.results);
    EXPECT_EQ(merged.throughput_tps.mean(), reference.throughput_tps.mean());
    EXPECT_EQ(merged.throughput_tps.ci95(), reference.throughput_tps.ci95());
    EXPECT_EQ(merged.latency_ms_p99.mean(), reference.latency_ms_p99.mean());
    EXPECT_EQ(merged.block_interval.ci95(), reference.block_interval.ci95());
  }
}

TEST(Aggregate, Ci95ShrinksWithMoreRuns) {
  util::RunningStats wide;
  harness::MetricSummary few;
  harness::MetricSummary many;
  for (int i = 0; i < 4; ++i) few.stats.add(10.0 + i);
  for (int i = 0; i < 64; ++i) many.stats.add(10.0 + (i % 4));
  EXPECT_GT(few.ci95(), many.ci95());
  EXPECT_EQ(harness::MetricSummary{}.ci95(), 0.0);
}

}  // namespace
}  // namespace bamboo
