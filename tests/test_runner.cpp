// Tests for the parallel experiment engine: RunSpec/execute determinism,
// ParallelRunner thread-count invariance (a T-thread sweep must be
// bit-identical to the sequential one), multi-seed aggregation, and the
// runner-based sweep overloads.

#include <gtest/gtest.h>

#include <cstdlib>

#include "client/workload.h"
#include "harness/experiment.h"
#include "harness/runner.h"

namespace bamboo {
namespace {

harness::RunSpec small_spec(std::uint64_t seed = 7) {
  harness::RunSpec spec;
  spec.cfg.bsize = 50;
  spec.cfg.seed = seed;
  spec.workload.concurrency = 32;
  spec.opts.warmup_s = 0.1;
  spec.opts.measure_s = 0.3;
  return spec;
}

// ---------------------------------------------------------------------------
// execute() determinism
// ---------------------------------------------------------------------------

TEST(Execute, SameSpecSameResultBitForBit) {
  const auto a = harness::execute(small_spec());
  const auto b = harness::execute(small_spec());
  EXPECT_EQ(a, b);
  EXPECT_GT(a.throughput_tps, 0);
  EXPECT_GT(a.net_bytes, 0u);
}

TEST(Execute, DifferentSeedsDiffer) {
  const auto a = harness::execute(small_spec(7));
  const auto b = harness::execute(small_spec(8));
  EXPECT_NE(a, b);
}

TEST(Execute, MatchesLegacyRunExperiment) {
  const auto spec = small_spec();
  const auto direct = harness::execute(spec);
  const auto legacy =
      harness::run_experiment(spec.cfg, spec.workload, spec.opts);
  EXPECT_EQ(direct, legacy);
}

TEST(ExecuteFull, TimelineMatchesLegacyResponsivenessRun) {
  core::Config cfg;
  cfg.bsize = 100;
  client::WorkloadConfig wl;
  wl.mode = client::LoadMode::kOpenLoop;
  wl.arrival_rate_tps = 2000;

  const auto spec = harness::timeline_spec(cfg, wl, /*horizon=*/1.0,
                                           /*bucket=*/0.25, 10, 11, 0, 0,
                                           /*crash_at=*/-1, 0);
  const auto out = harness::execute_full(spec);
  const auto legacy = harness::run_responsiveness_timeline(
      cfg, wl, 1.0, 0.25, 10, 11, 0, 0, -1, 0);
  EXPECT_EQ(out.result, legacy.summary);
  EXPECT_EQ(out.tx_per_s, legacy.tx_per_s);
  EXPECT_EQ(out.bucket_start_s, legacy.bucket_start_s);
  ASSERT_EQ(out.tx_per_s.size(), 4u);
}

// ---------------------------------------------------------------------------
// ParallelRunner
// ---------------------------------------------------------------------------

std::vector<harness::RunSpec> grid_specs() {
  std::vector<harness::RunSpec> specs;
  for (const char* protocol : {"hotstuff", "2chs", "streamlet"}) {
    for (std::uint32_t conc : {8u, 64u}) {
      auto spec = small_spec();
      spec.cfg.protocol = protocol;
      spec.workload.concurrency = conc;
      spec.offered = conc;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

TEST(ParallelRunner, ThreadCountDoesNotChangeResults) {
  const auto specs = grid_specs();
  harness::ParallelRunner sequential(1);
  harness::ParallelRunner pool4(4);
  harness::ParallelRunner pool7(7);  // more threads than one deal round
  const auto r1 = sequential.run(specs);
  const auto r4 = pool4.run(specs);
  const auto r7 = pool7.run(specs);
  ASSERT_EQ(r1.size(), specs.size());
  EXPECT_EQ(r1, r4);
  EXPECT_EQ(r1, r7);
}

TEST(ParallelRunner, ResultsOrderedBySpecIndex) {
  const auto specs = grid_specs();
  harness::ParallelRunner runner(4);
  const auto results = runner.run(specs);
  std::vector<harness::RunResult> reference;
  reference.reserve(specs.size());
  for (const auto& spec : specs) reference.push_back(harness::execute(spec));
  EXPECT_EQ(results, reference);
}

TEST(ParallelRunner, PropagatesRunExceptions) {
  auto spec = small_spec();
  spec.cfg.protocol = "no-such-protocol";
  harness::ParallelRunner runner(2);
  EXPECT_THROW(runner.run({spec, small_spec()}), std::invalid_argument);
}

TEST(ParallelRunner, EmptySpecListIsFine) {
  harness::ParallelRunner runner(4);
  EXPECT_TRUE(runner.run({}).empty());
}

TEST(ParallelRunner, ResolveThreadsPrecedence) {
  EXPECT_EQ(harness::ParallelRunner::resolve_threads(3), 3u);
  ::setenv("BAMBOO_THREADS", "5", 1);
  EXPECT_EQ(harness::ParallelRunner::resolve_threads(0), 5u);
  EXPECT_EQ(harness::ParallelRunner::resolve_threads(2), 2u);
  ::unsetenv("BAMBOO_THREADS");
  EXPECT_GE(harness::ParallelRunner::resolve_threads(0), 1u);
}

// ---------------------------------------------------------------------------
// Runner-based sweeps vs sequential sweeps
// ---------------------------------------------------------------------------

TEST(ParallelSweep, ClosedLoopBitIdenticalToSequential) {
  core::Config cfg;
  cfg.bsize = 50;
  client::WorkloadConfig wl;
  const std::vector<std::uint32_t> ladder = {8, 32, 64};
  const harness::RunOptions opts{0.1, 0.3};

  const auto seq = harness::sweep_closed_loop(cfg, wl, ladder, opts);
  harness::ParallelRunner runner(4);
  const auto par = harness::sweep_closed_loop(runner, cfg, wl, ladder, opts);
  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_DOUBLE_EQ(par[i].offered, seq[i].offered);
    EXPECT_EQ(par[i].result, seq[i].result) << "point " << i;
  }
}

TEST(ParallelSweep, OpenLoopBitIdenticalToSequential) {
  core::Config cfg;
  cfg.bsize = 50;
  client::WorkloadConfig wl;
  const std::vector<double> rates = {500.0, 2000.0};
  const harness::RunOptions opts{0.1, 0.3};

  const auto seq = harness::sweep_open_loop(cfg, wl, rates, opts);
  harness::ParallelRunner runner(4);
  const auto par = harness::sweep_open_loop(runner, cfg, wl, rates, opts);
  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(par[i].result, seq[i].result) << "point " << i;
  }
}

// ---------------------------------------------------------------------------
// Multi-seed aggregation
// ---------------------------------------------------------------------------

TEST(Aggregate, RepeatedRunsProduceStats) {
  harness::ParallelRunner runner(4);
  const auto agg = runner.run_repeated(small_spec(), 4, /*base_seed=*/100);
  EXPECT_EQ(agg.runs, 4u);
  ASSERT_EQ(agg.results.size(), 4u);
  EXPECT_TRUE(agg.all_consistent);
  EXPECT_EQ(agg.safety_violations, 0u);
  // Seeds differ, so throughput varies; the mean sits inside [min, max].
  EXPECT_GT(agg.throughput_tps.stats.min(), 0.0);
  EXPECT_GE(agg.throughput_tps.mean(), agg.throughput_tps.stats.min());
  EXPECT_LE(agg.throughput_tps.mean(), agg.throughput_tps.stats.max());
  EXPECT_GT(agg.throughput_tps.ci95(), 0.0);
  // Per-seed results are ordered and reproducible.
  EXPECT_EQ(agg.results[0], harness::execute(small_spec(100)));
  EXPECT_EQ(agg.results[3], harness::execute(small_spec(103)));
}

TEST(Aggregate, IndependentOfThreadCount) {
  harness::ParallelRunner one(1);
  harness::ParallelRunner four(4);
  const auto a = one.run_repeated(small_spec(), 3, 50);
  const auto b = four.run_repeated(small_spec(), 3, 50);
  EXPECT_EQ(a.results, b.results);
  EXPECT_DOUBLE_EQ(a.throughput_tps.mean(), b.throughput_tps.mean());
  EXPECT_DOUBLE_EQ(a.latency_ms_mean.ci95(), b.latency_ms_mean.ci95());
}

TEST(Aggregate, Ci95ShrinksWithMoreRuns) {
  util::RunningStats wide;
  harness::MetricSummary few;
  harness::MetricSummary many;
  for (int i = 0; i < 4; ++i) few.stats.add(10.0 + i);
  for (int i = 0; i < 64; ++i) many.stats.add(10.0 + (i % 4));
  EXPECT_GT(few.ci95(), many.ci95());
  EXPECT_EQ(harness::MetricSummary{}.ci95(), 0.0);
}

}  // namespace
}  // namespace bamboo
