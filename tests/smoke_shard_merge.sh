#!/usr/bin/env bash
# End-to-end check of the cluster-sharding pipeline: a 3-way --shard run of
# one bench, merged by bench_merge, must be bit-identical (diff -r) to the
# same bench run unsharded. Registered in ctest as smoke_shard_merge.
#
#   smoke_shard_merge.sh <bench-binary> <bench_merge-binary> <scratch-dir>
set -euo pipefail

bench="$1"
merge="$2"
dir="$3"

rm -rf "$dir"
mkdir -p "$dir"

common=(--reps 3 --duration 0.2 --threads 2 --seed 5 --format csv,json)

"$bench" "${common[@]}" --out "$dir/all" > /dev/null
"$bench" "${common[@]}" --shard 1/3 --out "$dir/shards" > /dev/null
"$bench" "${common[@]}" --shard 2/3 --out "$dir/shards" > /dev/null
"$bench" "${common[@]}" --shard 3/3 --out "$dir/shards" > /dev/null
"$merge" --out "$dir/merged" "$dir/shards" > /dev/null

diff -r "$dir/all" "$dir/merged"
echo "sharded merge is bit-identical to the unsharded run"
