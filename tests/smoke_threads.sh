#!/usr/bin/env bash
# Determinism check for a bench binary: the artifact directory written with
# --threads 1 must be bit-identical (diff -r) to the one written with
# --threads 4 — the engine's same-seed => same-schedule guarantee holds
# across worker-thread counts. Registered in ctest as smoke_threads_<bench>.
#
#   smoke_threads.sh <bench-binary> <scratch-dir>
set -euo pipefail

bench="$1"
dir="$2"

rm -rf "$dir"
mkdir -p "$dir"

common=(--reps 3 --duration 0.2 --seed 5 --format csv,json)

"$bench" "${common[@]}" --threads 1 --out "$dir/t1" > /dev/null
"$bench" "${common[@]}" --threads 4 --out "$dir/t4" > /dev/null

diff -r "$dir/t1" "$dir/t4"
echo "artifacts are bit-identical across thread counts"
