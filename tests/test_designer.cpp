// Tests for the custom-protocol registry and the Safety API extension
// point: a user-defined protocol runs through the full engine, and the
// harness's invariant checks expose an unsafe commit rule that the stock
// protocols survive.

#include <gtest/gtest.h>

#include "client/workload.h"
#include "harness/cluster.h"
#include "protocols/registry.h"

namespace bamboo {
namespace {

/// Deliberately unsafe: commits every certified block immediately.
class OneChain final : public core::SafetyProtocol {
 public:
  std::string name() const override { return "test-onechain"; }
  std::optional<core::ProposalPlan> plan_proposal(
      types::View, const core::ProtocolContext& ctx) override {
    const types::BlockPtr parent = ctx.forest.high_qc_block();
    if (!parent) return std::nullopt;
    return core::ProposalPlan{parent, ctx.forest.high_qc()};
  }
  bool should_vote(const types::ProposalMsg& p,
                   const core::ProtocolContext&) override {
    return p.block->view() > last_voted_ && p.block->justify_is_parent();
  }
  void did_vote(const types::Block& b) override {
    last_voted_ = std::max(last_voted_, b.view());
  }
  void update_state(const types::QuorumCert&,
                    const core::ProtocolContext&) override {}
  std::optional<crypto::Digest> commit_target(
      const types::QuorumCert& qc,
      const core::ProtocolContext& ctx) override {
    const auto block = ctx.forest.get(qc.block_hash);
    if (!block || block->height() <= ctx.forest.committed_height()) {
      return std::nullopt;
    }
    return qc.block_hash;
  }
  std::uint32_t fork_depth() const override { return 2; }
  std::uint32_t commit_chain_length() const override { return 1; }
  types::View locked_view() const override { return 0; }
  types::View last_voted_view() const override { return last_voted_; }

 private:
  types::View last_voted_ = 0;
};

struct Outcome {
  bool consistent;
  std::uint64_t violations;
  std::uint64_t committed;
};

Outcome run(const std::string& protocol, std::uint32_t byz) {
  core::Config cfg;
  cfg.protocol = protocol;
  cfg.n_replicas = 4;
  cfg.byz_no = byz;
  cfg.strategy = "forking";
  cfg.bsize = 100;
  cfg.seed = 33;
  harness::Cluster cluster(cfg);
  client::WorkloadConfig wl;
  wl.concurrency = 64;
  client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                cluster.config(), wl);
  driver.install();
  cluster.start();
  driver.start();
  cluster.simulator().run_for(sim::from_seconds(1.0));

  Outcome out{cluster.check_consistency().consistent, 0,
              cluster.observer().stats().blocks_committed};
  for (types::NodeId id = 0; id < cluster.size(); ++id) {
    out.violations += cluster.replica(id).stats().safety_violations;
  }
  return out;
}

class RegistryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    protocols::register_protocol(
        "test-onechain", [] { return std::make_unique<OneChain>(); });
  }
};

TEST_F(RegistryFixture, CustomProtocolIsFirstClass) {
  const auto proto = protocols::make_protocol("test-onechain");
  EXPECT_EQ(proto->name(), "test-onechain");
  const auto names = protocols::protocol_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-onechain"),
            names.end());
}

TEST_F(RegistryFixture, CannotShadowBuiltins) {
  EXPECT_THROW(protocols::register_protocol(
                   "hotstuff", [] { return std::make_unique<OneChain>(); }),
               std::invalid_argument);
  EXPECT_THROW(protocols::register_protocol("test-onechain", nullptr),
               std::invalid_argument);
}

TEST_F(RegistryFixture, CustomProtocolRunsHonestClusters) {
  const Outcome out = run("test-onechain", 0);
  EXPECT_TRUE(out.consistent);
  EXPECT_EQ(out.violations, 0u);
  EXPECT_GT(out.committed, 100u);  // one-chain commits are fast
}

TEST_F(RegistryFixture, HarnessCatchesUnsafeCommitRule) {
  // Under a forking leader, committing on one chain commits conflicting
  // blocks: the engine counts refused cross-chain commits and/or the
  // consistency check fails. The stock protocols survive the identical
  // attack.
  const Outcome unsafe = run("test-onechain", 1);
  EXPECT_TRUE(!unsafe.consistent || unsafe.violations > 0)
      << "a one-chain commit rule must break under forking";

  const Outcome hs = run("hotstuff", 1);
  EXPECT_TRUE(hs.consistent);
  EXPECT_EQ(hs.violations, 0u);
}

}  // namespace
}  // namespace bamboo
