// Tests for the harness layer: workload driver semantics (closed/open
// loop, retries, watchdogs, measurement windows), cluster construction,
// experiment metrics, and the table printer.

#include <gtest/gtest.h>

#include <sstream>

#include "client/workload.h"
#include "harness/cluster.h"
#include "harness/experiment.h"
#include "harness/table.h"

namespace bamboo {
namespace {

// ---------------------------------------------------------------------------
// TextTable
// ---------------------------------------------------------------------------

TEST(TextTable, AlignsColumns) {
  harness::TextTable table({"a", "long-header"});
  table.add_row({"wide-cell", "x"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("long-header"), std::string::npos);
  EXPECT_NE(text.find("wide-cell"), std::string::npos);
  // Three lines: header, rule, row.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(harness::TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(harness::TextTable::num(5, 0), "5");
  EXPECT_EQ(harness::TextTable::count(0), "0");
  EXPECT_EQ(harness::TextTable::count(999), "999");
  EXPECT_EQ(harness::TextTable::count(1000), "1,000");
  EXPECT_EQ(harness::TextTable::count(20096), "20,096");
  EXPECT_EQ(harness::TextTable::count(131275), "131,275");
  EXPECT_EQ(harness::TextTable::count(1234567890), "1,234,567,890");
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

TEST(Cluster, BuildsConfiguredTopology) {
  core::Config cfg;
  cfg.n_replicas = 7;
  cfg.protocol = "2chs";
  cfg.byz_no = 2;
  cfg.strategy = "forking";
  harness::Cluster cluster(cfg);
  cluster.start();
  EXPECT_EQ(cluster.size(), 7u);
  EXPECT_EQ(cluster.network().num_endpoints(), 7u + cfg.n_client_hosts);
  // Byzantine strategies applied to the top ids only.
  EXPECT_FALSE(cluster.replica(0).is_byzantine());
  EXPECT_FALSE(cluster.replica(4).is_byzantine());
  EXPECT_TRUE(cluster.replica(5).is_byzantine());
  EXPECT_TRUE(cluster.replica(6).is_byzantine());
  EXPECT_EQ(cluster.replica(3).safety().name(), "2chs");
}

TEST(Cluster, OhsProfileLowersIngestCost) {
  core::Config cfg;
  cfg.protocol = "ohs";
  harness::Cluster cluster(cfg);
  EXPECT_LT(cluster.config().cpu_ingest_per_tx, sim::microseconds(18));
  cluster.start();
  EXPECT_EQ(cluster.replica(0).safety().name(), "hotstuff");
}

TEST(Cluster, ConsistencyReportDetailsHeights) {
  core::Config cfg;
  harness::Cluster cluster(cfg);
  client::WorkloadConfig wl;
  wl.concurrency = 16;
  client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                cluster.config(), wl);
  driver.install();
  cluster.start();
  driver.start();
  cluster.simulator().run_for(sim::from_seconds(0.3));
  const auto report = cluster.check_consistency();
  EXPECT_TRUE(report.consistent);
  EXPECT_GT(report.max_committed_height, 0u);
  EXPECT_LE(report.min_committed_height, report.max_committed_height);
}

TEST(Cluster, SameSeedIsBitForBitReproducible) {
  auto run = [](std::uint64_t seed) {
    core::Config cfg;
    cfg.seed = seed;
    cfg.bsize = 50;
    harness::Cluster cluster(cfg);
    client::WorkloadConfig wl;
    wl.concurrency = 32;
    client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                  cluster.config(), wl);
    driver.install();
    cluster.start();
    driver.start();
    cluster.simulator().run_for(sim::from_seconds(0.4));
    return std::tuple{cluster.observer().stats().blocks_committed,
                      cluster.observer().current_view(),
                      driver.stats().completed,
                      cluster.network().bytes_sent()};
  };
  EXPECT_EQ(run(111), run(111));
  EXPECT_NE(run(111), run(222));
}

// ---------------------------------------------------------------------------
// Workload driver
// ---------------------------------------------------------------------------

TEST(Workload, ClosedLoopBoundsOutstandingRequests) {
  core::Config cfg;
  cfg.bsize = 50;
  harness::Cluster cluster(cfg);
  client::WorkloadConfig wl;
  wl.concurrency = 8;
  client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                cluster.config(), wl);
  driver.install();
  cluster.start();
  driver.start();
  cluster.simulator().run_for(sim::from_seconds(0.3));
  // Issued is always completed + in-flight (<= concurrency).
  EXPECT_LE(driver.stats().issued,
            driver.stats().completed + driver.stats().rejected + 8);
  EXPECT_GT(driver.stats().completed, 0u);
}

TEST(Workload, OpenLoopApproximatesPoissonRate) {
  core::Config cfg;
  cfg.bsize = 400;
  harness::Cluster cluster(cfg);
  client::WorkloadConfig wl;
  wl.mode = client::LoadMode::kOpenLoop;
  wl.arrival_rate_tps = 5000;
  client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                cluster.config(), wl);
  driver.install();
  cluster.start();
  driver.start();
  cluster.simulator().run_for(sim::from_seconds(1.0));
  EXPECT_NEAR(static_cast<double>(driver.stats().issued), 5000.0, 300.0);
}

TEST(Workload, MeasurementWindowExcludesWarmup) {
  core::Config cfg;
  cfg.bsize = 50;
  harness::Cluster cluster(cfg);
  client::WorkloadConfig wl;
  wl.concurrency = 16;
  client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                cluster.config(), wl);
  driver.install();
  cluster.start();
  driver.start();
  cluster.simulator().run_for(sim::from_seconds(0.2));
  const auto warmup_completed = driver.stats().completed;
  EXPECT_GT(warmup_completed, 0u);
  EXPECT_EQ(driver.measured_completed(), 0u);  // not measuring yet

  driver.begin_measurement();
  cluster.simulator().run_for(sim::from_seconds(0.2));
  driver.end_measurement();
  EXPECT_GT(driver.measured_completed(), 0u);
  EXPECT_LT(driver.measured_completed(), driver.stats().completed);
  EXPECT_NEAR(driver.measured_seconds(), 0.2, 1e-9);
  EXPECT_EQ(driver.latencies_ms().count(), driver.measured_completed());
}

TEST(Workload, WatchdogAbandonsStuckSessions) {
  core::Config cfg;
  cfg.bsize = 50;
  cfg.byz_no = 2;       // f+1 crashes: the cluster can never commit
  cfg.strategy = "crash";
  cfg.timeout = sim::milliseconds(20);
  harness::Cluster cluster(cfg);
  client::WorkloadConfig wl;
  wl.concurrency = 4;
  wl.session_timeout = sim::milliseconds(100);
  client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                cluster.config(), wl);
  driver.install();
  cluster.start();
  driver.start();
  cluster.simulator().run_for(sim::from_seconds(1.0));
  // Nothing commits, so every re-issue comes from the watchdog.
  EXPECT_EQ(driver.stats().completed, 0u);
  EXPECT_GT(driver.stats().abandoned, 20u);
  EXPECT_GT(driver.stats().issued, driver.stats().abandoned);
}

// ---------------------------------------------------------------------------
// run_experiment metrics
// ---------------------------------------------------------------------------

TEST(Experiment, MetricsAreInternallyConsistent) {
  core::Config cfg;
  cfg.bsize = 100;
  client::WorkloadConfig wl;
  wl.concurrency = 64;
  const auto r = harness::run_experiment(cfg, wl, {0.2, 0.6});
  EXPECT_NEAR(r.measured_s, 0.6, 1e-9);
  EXPECT_GT(r.throughput_tps, 0);
  EXPECT_GT(r.latency_samples, 0u);
  EXPECT_GE(r.latency_ms_p99, r.latency_ms_p50);
  EXPECT_GT(r.views, 0u);
  EXPECT_GT(r.blocks_committed, 0u);
  EXPECT_LE(r.cgr_per_view, 1.001);
  EXPECT_LE(r.cgr_per_block, 1.001);
  EXPECT_NEAR(r.block_interval, 3.0, 0.2);  // HotStuff happy path
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.safety_violations, 0u);
}

TEST(Experiment, SweepsReturnOnePointPerLevel) {
  core::Config cfg;
  cfg.bsize = 50;
  client::WorkloadConfig wl;
  const auto closed =
      harness::sweep_closed_loop(cfg, wl, {8, 32}, {0.1, 0.3});
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_DOUBLE_EQ(closed[0].offered, 8);
  EXPECT_DOUBLE_EQ(closed[1].offered, 32);
  // More clients => at least as much throughput below saturation.
  EXPECT_GE(closed[1].result.throughput_tps,
            closed[0].result.throughput_tps * 0.9);

  const auto open =
      harness::sweep_open_loop(cfg, wl, {500.0, 2000.0}, {0.1, 0.3});
  ASSERT_EQ(open.size(), 2u);
  EXPECT_GT(open[1].result.throughput_tps, open[0].result.throughput_tps);
}

TEST(Experiment, TimelineBucketsCoverHorizon) {
  core::Config cfg;
  cfg.bsize = 100;
  client::WorkloadConfig wl;
  wl.mode = client::LoadMode::kOpenLoop;
  wl.arrival_rate_tps = 2000;
  const auto t = harness::run_responsiveness_timeline(
      cfg, wl, /*horizon=*/1.0, /*bucket=*/0.25, /*fluct_start=*/10,
      /*fluct_end=*/11, 0, 0, /*crash_at=*/-1, 0);
  ASSERT_EQ(t.tx_per_s.size(), 4u);
  ASSERT_EQ(t.bucket_start_s.size(), 4u);
  EXPECT_DOUBLE_EQ(t.bucket_start_s[3], 0.75);
  // Steady state: every bucket near the offered rate.
  for (std::size_t i = 1; i < t.tx_per_s.size(); ++i) {
    EXPECT_NEAR(t.tx_per_s[i], 2000.0, 600.0) << "bucket " << i;
  }
  EXPECT_TRUE(t.summary.consistent);
}

}  // namespace
}  // namespace bamboo
