// Tests for the simulated transport: delay distribution, NIC serialization
// ordering, bandwidth effects, self-delivery, crash drops, partitions,
// fluctuation injection.

#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "util/stats.h"

namespace bamboo {
namespace {

types::MessagePtr small_msg() {
  return types::make_message(types::VoteMsg{});
}

types::MessagePtr big_msg(std::uint32_t ntx) {
  types::Block::Fields f;
  f.parent_hash = types::Block::genesis()->hash();
  f.view = 1;
  f.height = 1;
  f.txns.resize(ntx);
  types::ProposalMsg p;
  p.block = std::make_shared<const types::Block>(std::move(f));
  return types::make_message(std::move(p));
}

struct Receiver {
  std::vector<net::Envelope> got;
  void attach(net::SimNetwork& n, types::NodeId id) {
    n.set_handler(id, [this](const net::Envelope& e) { got.push_back(e); });
  }
};

TEST(Network, DeliversWithRttDistribution) {
  sim::Simulator s(1);
  net::NetConfig nc;
  nc.rtt_mean = sim::milliseconds(2);
  nc.rtt_stddev = sim::microseconds(200);
  nc.min_one_way = 0;
  net::SimNetwork n(s, 2, nc);

  util::RunningStats delays;
  n.set_handler(1, [&](const net::Envelope& e) {
    delays.add(sim::to_milliseconds(s.now() - e.sent_at));
  });
  // Spaced sends: bursts would measure NIC queueing on top of the link.
  for (int i = 0; i < 2000; ++i) {
    s.schedule_at(i * sim::microseconds(50),
                  [&n] { n.send(0, 1, small_msg()); });
  }
  s.run_all();

  ASSERT_EQ(delays.count(), 2000u);
  // One-way mean ~ rtt/2 = 1ms (plus negligible NIC time for a tiny msg).
  EXPECT_NEAR(delays.mean(), 1.0, 0.1);
  EXPECT_GT(delays.stddev(), 0.05);
}

TEST(Network, BandwidthSerializesLargeMessages) {
  sim::Simulator s(1);
  net::NetConfig nc;
  nc.bandwidth_bps = 1e9;
  nc.rtt_mean = 0;
  nc.rtt_stddev = 0;
  nc.min_one_way = sim::microseconds(1);
  net::SimNetwork n(s, 2, nc);

  sim::Time arrival = 0;
  n.set_handler(1, [&](const net::Envelope&) { arrival = s.now(); });
  const auto msg = big_msg(400);  // ~60 KB -> ~0.48 ms per NIC pass
  const auto bytes = types::wire_size(*msg);
  n.send(0, 1, msg);
  s.run_all();

  const double expected_ms = 2.0 * bytes * 8.0 / 1e9 * 1e3;  // both NICs
  EXPECT_NEAR(sim::to_milliseconds(arrival), expected_ms, 0.1);
}

TEST(Network, EgressQueueSerializesBackToBackSends) {
  sim::Simulator s(1);
  net::NetConfig nc;
  nc.bandwidth_bps = 1e9;
  nc.rtt_mean = 0;
  nc.rtt_stddev = 0;
  nc.min_one_way = sim::microseconds(1);
  net::SimNetwork n(s, 3, nc);

  std::vector<sim::Time> arrivals;
  Receiver r1;
  n.set_handler(1, [&](const net::Envelope&) { arrivals.push_back(s.now()); });
  n.set_handler(2, [&](const net::Envelope&) { arrivals.push_back(s.now()); });

  // Two large messages leave node 0 back to back: the second must wait for
  // the first to clear the sender NIC (broadcast fan-out cost).
  const auto msg = big_msg(400);
  const double per_pass_ms = types::wire_size(*msg) * 8.0 / 1e9 * 1e3;
  n.send(0, 1, msg);
  n.send(0, 2, msg);
  s.run_all();

  ASSERT_EQ(arrivals.size(), 2u);
  const double gap_ms =
      sim::to_milliseconds(arrivals[1]) - sim::to_milliseconds(arrivals[0]);
  EXPECT_NEAR(gap_ms, per_pass_ms, 0.05);
}

TEST(Network, SelfSendSkipsNic) {
  sim::Simulator s(1);
  net::NetConfig nc;
  nc.rtt_mean = sim::milliseconds(10);
  net::SimNetwork n(s, 2, nc);
  sim::Time arrival = -1;
  n.set_handler(0, [&](const net::Envelope&) { arrival = s.now(); });
  n.send(0, 0, big_msg(400));
  s.run_all();
  EXPECT_EQ(arrival, 0);  // immediate (same instant, next event)
}

TEST(Network, BroadcastReachesAllButSender) {
  sim::Simulator s(1);
  net::SimNetwork n(s, 5, net::NetConfig{});
  int received = 0;
  bool self_received = false;
  for (types::NodeId id = 0; id < 4; ++id) {
    n.set_handler(id, [&, id](const net::Envelope&) {
      ++received;
      if (id == 2) self_received = true;
    });
  }
  n.broadcast(2, 4, small_msg());  // replicas are [0, 4)
  s.run_all();
  EXPECT_EQ(received, 3);
  EXPECT_FALSE(self_received);
}

TEST(Network, DownNodeDropsTraffic) {
  sim::Simulator s(1);
  net::SimNetwork n(s, 2, net::NetConfig{});
  Receiver r;
  r.attach(n, 1);
  n.set_down(1, true);
  n.send(0, 1, small_msg());
  s.run_all();
  EXPECT_TRUE(r.got.empty());
  EXPECT_GT(n.messages_dropped(), 0u);

  n.set_down(1, false);
  n.send(0, 1, small_msg());
  s.run_all();
  EXPECT_EQ(r.got.size(), 1u);
}

TEST(Network, DownSenderDropsTraffic) {
  sim::Simulator s(1);
  net::SimNetwork n(s, 2, net::NetConfig{});
  Receiver r;
  r.attach(n, 1);
  n.set_down(0, true);
  n.send(0, 1, small_msg());
  s.run_all();
  EXPECT_TRUE(r.got.empty());
}

TEST(Network, PartitionBlocksCrossGroupTraffic) {
  sim::Simulator s(1);
  net::SimNetwork n(s, 4, net::NetConfig{});
  Receiver r1;
  Receiver r3;
  r1.attach(n, 1);
  r3.attach(n, 3);
  n.set_partition({0, 0, 1, 1});  // {0,1} vs {2,3}
  n.send(0, 1, small_msg());      // same group: delivered
  n.send(0, 3, small_msg());      // cross group: dropped
  s.run_all();
  EXPECT_EQ(r1.got.size(), 1u);
  EXPECT_TRUE(r3.got.empty());

  n.set_partition({});  // heal
  n.send(0, 3, small_msg());
  s.run_all();
  EXPECT_EQ(r3.got.size(), 1u);
}

TEST(Network, FluctuationAddsDelay) {
  sim::Simulator s(1);
  net::NetConfig nc;
  nc.rtt_mean = sim::microseconds(100);
  nc.rtt_stddev = 0;
  net::SimNetwork n(s, 2, nc);

  util::RunningStats delays;
  n.set_handler(1, [&](const net::Envelope& e) {
    delays.add(sim::to_milliseconds(s.now() - e.sent_at));
  });
  n.set_fluctuation(sim::milliseconds(10), sim::milliseconds(100));
  for (int i = 0; i < 500; ++i) {
    s.schedule_at(i * sim::microseconds(50),
                  [&n] { n.send(0, 1, small_msg()); });
  }
  s.run_all();

  EXPECT_GT(delays.min(), 9.9);
  EXPECT_LT(delays.max(), 100.5);
  EXPECT_NEAR(delays.mean(), 55.0, 5.0);

  // Clearing restores fast delivery.
  n.set_fluctuation(0, 0);
  util::RunningStats after;
  n.set_handler(1, [&](const net::Envelope& e) {
    after.add(sim::to_milliseconds(s.now() - e.sent_at));
  });
  n.send(0, 1, small_msg());
  s.run_all();
  EXPECT_LT(after.max(), 1.0);
}

TEST(Network, AddedDelayParameter) {
  sim::Simulator s(1);
  net::NetConfig nc;
  nc.rtt_mean = 0;
  nc.rtt_stddev = 0;
  nc.added_delay = sim::milliseconds(5);
  nc.added_delay_jitter = sim::milliseconds(1);
  net::SimNetwork n(s, 2, nc);

  util::RunningStats delays;
  n.set_handler(1, [&](const net::Envelope& e) {
    delays.add(sim::to_milliseconds(s.now() - e.sent_at));
  });
  for (int i = 0; i < 2000; ++i) {
    s.schedule_at(i * sim::microseconds(50),
                  [&n] { n.send(0, 1, small_msg()); });
  }
  s.run_all();
  EXPECT_NEAR(delays.mean(), 5.0, 0.2);   // "d5" = 5ms ± 1ms
  EXPECT_NEAR(delays.stddev(), 1.0, 0.2);
}

TEST(Network, ByteAccounting) {
  sim::Simulator s(1);
  net::SimNetwork n(s, 2, net::NetConfig{});
  n.set_handler(1, [](const net::Envelope&) {});
  const auto msg = small_msg();
  n.send(0, 1, msg);
  s.run_all();
  EXPECT_EQ(n.messages_sent(), 1u);
  EXPECT_EQ(n.bytes_sent(), types::wire_size(*msg));
}

}  // namespace
}  // namespace bamboo
