// Tests for the view-synchronization pacemaker: timers, QC/TC advancement,
// early join, backoff.

#include <gtest/gtest.h>

#include <vector>

#include "pacemaker/pacemaker.h"

namespace bamboo {
namespace {

struct Harness {
  sim::Simulator sim{1};
  std::vector<types::View> timeouts_broadcast;
  std::vector<std::pair<types::View, pacemaker::AdvanceReason>> entered;
  std::unique_ptr<pacemaker::Pacemaker> pm;

  explicit Harness(pacemaker::Pacemaker::Settings settings = {
                       sim::milliseconds(100), 1.0, sim::seconds(10)}) {
    pm = std::make_unique<pacemaker::Pacemaker>(
        sim, settings,
        pacemaker::Pacemaker::Callbacks{
            [this](types::View v) { timeouts_broadcast.push_back(v); },
            [this](types::View v, pacemaker::AdvanceReason r) {
              entered.emplace_back(v, r);
            }});
  }
};

TEST(Pacemaker, StartEntersInitialView) {
  Harness h;
  h.pm->start(1);
  ASSERT_EQ(h.entered.size(), 1u);
  EXPECT_EQ(h.entered[0].first, 1u);
  EXPECT_EQ(h.entered[0].second, pacemaker::AdvanceReason::kInitial);
  EXPECT_EQ(h.pm->current_view(), 1u);
}

TEST(Pacemaker, TimerFiresAndRebroadcastsWhileStuck) {
  Harness h;
  h.pm->start(1);
  h.sim.run_for(sim::milliseconds(350));
  // 100ms timeout, no progress: timeouts at 100, 200, 300.
  EXPECT_EQ(h.timeouts_broadcast.size(), 3u);
  for (const auto v : h.timeouts_broadcast) EXPECT_EQ(v, 1u);
  EXPECT_EQ(h.pm->current_view(), 1u);  // timeouts alone don't advance
  EXPECT_EQ(h.pm->timeouts_fired(), 3u);
}

TEST(Pacemaker, QcAdvancesAndResetsTimer) {
  Harness h;
  h.pm->start(1);
  h.sim.run_for(sim::milliseconds(60));
  h.pm->on_qc(1);
  EXPECT_EQ(h.pm->current_view(), 2u);
  ASSERT_EQ(h.entered.size(), 2u);
  EXPECT_EQ(h.entered[1].second, pacemaker::AdvanceReason::kQuorumCert);
  // Timer restarted: no timeout fires before 60 + 100.
  h.sim.run_for(sim::milliseconds(90));
  EXPECT_TRUE(h.timeouts_broadcast.empty());
  h.sim.run_for(sim::milliseconds(20));
  EXPECT_EQ(h.timeouts_broadcast.size(), 1u);
  EXPECT_EQ(h.timeouts_broadcast[0], 2u);
}

TEST(Pacemaker, StaleQcDoesNotAdvance) {
  Harness h;
  h.pm->start(5);
  h.pm->on_qc(3);  // would lead to view 4 < 5
  EXPECT_EQ(h.pm->current_view(), 5u);
  EXPECT_EQ(h.entered.size(), 1u);
}

TEST(Pacemaker, QcCanSkipViewsForward) {
  Harness h;
  h.pm->start(1);
  h.pm->on_qc(9);
  EXPECT_EQ(h.pm->current_view(), 10u);
}

TEST(Pacemaker, TcAdvances) {
  Harness h;
  h.pm->start(1);
  h.pm->on_tc(1);
  EXPECT_EQ(h.pm->current_view(), 2u);
  ASSERT_EQ(h.entered.size(), 2u);
  EXPECT_EQ(h.entered[1].second, pacemaker::AdvanceReason::kTimeoutCert);
  EXPECT_EQ(h.pm->views_via_tc(), 1u);
}

TEST(Pacemaker, JoinTimeoutFiresImmediately) {
  Harness h;
  h.pm->start(1);
  h.sim.run_for(sim::milliseconds(10));
  h.pm->join_timeout(1);
  EXPECT_EQ(h.timeouts_broadcast.size(), 1u);
  EXPECT_EQ(h.timeouts_broadcast[0], 1u);
}

TEST(Pacemaker, JoinTimeoutForFutureViewJumps) {
  Harness h;
  h.pm->start(1);
  h.pm->join_timeout(7);
  ASSERT_EQ(h.timeouts_broadcast.size(), 1u);
  EXPECT_EQ(h.timeouts_broadcast[0], 7u);
  EXPECT_EQ(h.pm->current_view(), 7u);
}

TEST(Pacemaker, JoinTimeoutIgnoresPastViews) {
  Harness h;
  h.pm->start(5);
  h.pm->join_timeout(3);
  EXPECT_TRUE(h.timeouts_broadcast.empty());
}

TEST(Pacemaker, StopSilencesTimers) {
  Harness h;
  h.pm->start(1);
  h.pm->stop();
  h.sim.run_for(sim::seconds(2));
  EXPECT_TRUE(h.timeouts_broadcast.empty());
  h.pm->on_qc(5);  // ignored after stop
  EXPECT_EQ(h.entered.size(), 1u);
}

TEST(Pacemaker, ExponentialBackoffStretchesTimeouts) {
  Harness h(pacemaker::Pacemaker::Settings{sim::milliseconds(100), 2.0,
                                           sim::seconds(10)});
  h.pm->start(1);
  // Timeouts at 100 (x1), then +200 (x2), then +400 (x4): 100, 300, 700.
  h.sim.run_for(sim::milliseconds(750));
  EXPECT_EQ(h.timeouts_broadcast.size(), 3u);
  EXPECT_EQ(h.pm->timeouts_fired(), 3u);
}

TEST(Pacemaker, BackoffResetsOnQcProgress) {
  Harness h(pacemaker::Pacemaker::Settings{sim::milliseconds(100), 2.0,
                                           sim::seconds(10)});
  h.pm->start(1);
  h.sim.run_for(sim::milliseconds(150));  // one timeout at 100
  EXPECT_EQ(h.timeouts_broadcast.size(), 1u);
  h.pm->on_qc(1);  // progress resets the backoff
  h.sim.run_for(sim::milliseconds(90));
  EXPECT_EQ(h.timeouts_broadcast.size(), 1u);  // < base timeout again
  h.sim.run_for(sim::milliseconds(20));
  EXPECT_EQ(h.timeouts_broadcast.size(), 2u);
}

TEST(Pacemaker, MaxTimeoutCaps) {
  Harness h(pacemaker::Pacemaker::Settings{sim::milliseconds(100), 10.0,
                                           sim::milliseconds(150)});
  h.pm->start(1);
  // Backoff would give 100, 1000, ... but the cap holds each at <= 150.
  h.sim.run_for(sim::milliseconds(500));
  EXPECT_GE(h.timeouts_broadcast.size(), 3u);
}

}  // namespace
}  // namespace bamboo
