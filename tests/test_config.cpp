// Tests for Config: defaults mirroring Table I, JSON round trip,
// validation, derived quantities, Byzantine assignment.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/config.h"

namespace bamboo {
namespace {

TEST(Config, TableIDefaults) {
  const core::Config cfg;
  EXPECT_EQ(cfg.n_replicas, 4u);
  EXPECT_EQ(cfg.election, "roundrobin");  // master 0 = rotating
  EXPECT_EQ(cfg.strategy, "silence");
  EXPECT_EQ(cfg.byz_no, 0u);
  EXPECT_EQ(cfg.bsize, 400u);
  EXPECT_EQ(cfg.psize, 0u);
  EXPECT_EQ(cfg.delay, 0);
  EXPECT_EQ(cfg.timeout, sim::milliseconds(100));
  EXPECT_DOUBLE_EQ(cfg.runtime_s, 30.0);
  EXPECT_EQ(cfg.concurrency, 10u);
}

TEST(Config, DerivedQuantities) {
  core::Config cfg;
  cfg.n_replicas = 7;
  EXPECT_EQ(cfg.f(), 2u);
  EXPECT_EQ(cfg.quorum(), 5u);
  EXPECT_EQ(cfg.num_endpoints(), 7u + cfg.n_client_hosts);
  EXPECT_EQ(cfg.client_endpoint(0), 7u);
  EXPECT_EQ(cfg.client_endpoint(1), 8u);
  EXPECT_EQ(cfg.client_endpoint(2), 7u);  // wraps over the 2 hosts
}

TEST(Config, ByzantineAssignmentSparesObserver) {
  core::Config cfg;
  cfg.n_replicas = 4;
  cfg.byz_no = 2;
  EXPECT_FALSE(cfg.is_byzantine(0));  // replica 0 is the observer
  EXPECT_FALSE(cfg.is_byzantine(1));
  EXPECT_TRUE(cfg.is_byzantine(2));
  EXPECT_TRUE(cfg.is_byzantine(3));
  cfg.byz_no = 0;
  for (types::NodeId id = 0; id < 4; ++id) EXPECT_FALSE(cfg.is_byzantine(id));
}

TEST(Config, ValidationCatchesNonsense) {
  core::Config cfg;
  cfg.n_replicas = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = core::Config{};
  cfg.byz_no = 5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = core::Config{};
  cfg.bsize = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = core::Config{};
  cfg.strategy = "teleport";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = core::Config{};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, StrategyParsing) {
  EXPECT_EQ(core::parse_strategy("silence"), core::ByzStrategy::kSilence);
  EXPECT_EQ(core::parse_strategy("forking"), core::ByzStrategy::kForking);
  EXPECT_EQ(core::parse_strategy("crash"), core::ByzStrategy::kCrash);
  EXPECT_EQ(core::parse_strategy("honest"), core::ByzStrategy::kHonest);
  EXPECT_THROW(static_cast<void>(core::parse_strategy("nope")),
               std::invalid_argument);
  EXPECT_STREQ(core::strategy_name(core::ByzStrategy::kForking), "forking");
}

TEST(Config, FromJsonOverrides) {
  const auto j = util::Json::parse(R"({
    "n": 8, "bsize": 100, "psize": 128, "delay": 5.0, "timeout": 50,
    "strategy": "forking", "byzNo": 2, "protocol": "streamlet",
    "concurrency": 64, "seed": 77, "rtt_ms": 2.0
  })");
  const auto cfg = core::Config::from_json(j);
  EXPECT_EQ(cfg.n_replicas, 8u);
  EXPECT_EQ(cfg.bsize, 100u);
  EXPECT_EQ(cfg.psize, 128u);
  EXPECT_EQ(cfg.delay, sim::milliseconds(5));
  EXPECT_EQ(cfg.timeout, sim::milliseconds(50));
  EXPECT_EQ(cfg.strategy, "forking");
  EXPECT_EQ(cfg.byz_no, 2u);
  EXPECT_EQ(cfg.protocol, "streamlet");
  EXPECT_EQ(cfg.concurrency, 64u);
  EXPECT_EQ(cfg.seed, 77u);
  EXPECT_EQ(cfg.rtt_mean, sim::milliseconds(2));
}

TEST(Config, WanScenarioFieldsRoundTripThroughJson) {
  const auto j = util::Json::parse(R"({
    "link_model": "pareto", "link_shape": 2.5, "link_loss": 0.05,
    "topology": "wan:3:40,120"
  })");
  const auto cfg = core::Config::from_json(j);
  EXPECT_EQ(cfg.link_model, "pareto");
  EXPECT_DOUBLE_EQ(cfg.link_shape, 2.5);
  EXPECT_DOUBLE_EQ(cfg.link_loss, 0.05);
  EXPECT_EQ(cfg.topology, "wan:3:40,120");
  const auto back = core::Config::from_json(cfg.to_json());
  EXPECT_EQ(back.link_model, cfg.link_model);
  EXPECT_DOUBLE_EQ(back.link_shape, cfg.link_shape);
  EXPECT_DOUBLE_EQ(back.link_loss, cfg.link_loss);
  EXPECT_EQ(back.topology, cfg.topology);
  // Defaults are the bit-compatible legacy network.
  const core::Config defaults;
  EXPECT_EQ(defaults.link_model, "normal");
  EXPECT_EQ(defaults.topology, "uniform");
  EXPECT_DOUBLE_EQ(defaults.link_loss, 0.0);
  // Loss is a probability; 1.0 would drop every message forever.
  core::Config bad;
  bad.link_loss = 1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Config, StorageAndSnapshotFieldsRoundTripThroughJson) {
  const auto j = util::Json::parse(R"({
    "sync_pipeline": 4, "snapshot_gap": 128, "snapshot_chunk": 1024,
    "store": "file", "retention": 512, "store_append_us": 50,
    "store_read_us": 10
  })");
  const auto cfg = core::Config::from_json(j);
  EXPECT_EQ(cfg.sync_pipeline, 4u);
  EXPECT_EQ(cfg.snapshot_gap, 128u);
  EXPECT_EQ(cfg.snapshot_chunk, 1024u);
  EXPECT_EQ(cfg.store, "file");
  EXPECT_EQ(cfg.retention, 512u);
  EXPECT_EQ(cfg.store_append_latency, sim::microseconds(50));
  EXPECT_EQ(cfg.store_read_latency, sim::microseconds(10));
  const auto back = core::Config::from_json(cfg.to_json());
  EXPECT_EQ(back.sync_pipeline, cfg.sync_pipeline);
  EXPECT_EQ(back.snapshot_gap, cfg.snapshot_gap);
  EXPECT_EQ(back.snapshot_chunk, cfg.snapshot_chunk);
  EXPECT_EQ(back.store, cfg.store);
  EXPECT_EQ(back.retention, cfg.retention);
  EXPECT_EQ(back.store_append_latency, cfg.store_append_latency);
  EXPECT_EQ(back.store_read_latency, cfg.store_read_latency);
  // Defaults are the byte-compatible legacy configuration: snapshots and
  // durability off.
  const core::Config defaults;
  EXPECT_EQ(defaults.sync_pipeline, 1u);
  EXPECT_EQ(defaults.snapshot_gap, 0u);
  EXPECT_EQ(defaults.store, "memory");
  EXPECT_EQ(defaults.retention, 0u);
  core::Config bad;
  bad.store = "cloud";
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  core::Config tiny;
  tiny.snapshot_chunk = 16;  // cannot hold a single 32-byte hash
  EXPECT_THROW(tiny.validate(), std::invalid_argument);
}

TEST(Config, FromJsonMasterCompatibility) {
  // Table I: master 0 means rotating leaders; nonzero pins a static leader.
  const auto rotating =
      core::Config::from_json(util::Json::parse(R"({"master": 0})"));
  EXPECT_EQ(rotating.election, "roundrobin");
  const auto pinned =
      core::Config::from_json(util::Json::parse(R"({"master": 2})"));
  EXPECT_EQ(pinned.election, "static:2");
}

TEST(Config, FromJsonDefaultsWhenAbsent) {
  const auto cfg = core::Config::from_json(util::Json::parse("{}"));
  EXPECT_EQ(cfg.n_replicas, 4u);
  EXPECT_EQ(cfg.bsize, 400u);
}

TEST(Config, FromJsonRejectsInvalid) {
  EXPECT_THROW(
      core::Config::from_json(util::Json::parse(R"({"bsize": 0})")),
      std::invalid_argument);
}

TEST(Config, AdmissionDslValidation) {
  // Same strictness as the churn DSL: half-specified or out-of-range
  // admission specs are rejected at validate() time, not at run time.
  core::Config cfg;
  EXPECT_NO_THROW(cfg.validate());  // default "drop"
  for (const char* good : {"drop", "backoff:5", "priority:0.25"}) {
    cfg = core::Config{};
    cfg.admission = good;
    EXPECT_NO_THROW(cfg.validate()) << good;
  }
  for (const char* bad : {"backoff", "backoff:", "backoff:0", "backoff:-2",
                          "priority", "priority:0", "priority:1",
                          "priority:2", "lifo"}) {
    cfg = core::Config{};
    cfg.admission = bad;
    EXPECT_THROW(cfg.validate(), std::invalid_argument) << bad;
  }
  // A mempool of zero capacity would reject everything silently; the
  // bounded-queue contract makes it a configuration error instead.
  cfg = core::Config{};
  cfg.memsize = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Config, AdmissionRoundTripsThroughJson) {
  core::Config cfg;
  cfg.admission = "backoff:7";
  const auto back = core::Config::from_json(cfg.to_json());
  EXPECT_EQ(back.admission, "backoff:7");
  EXPECT_THROW(core::Config::from_json(
                   util::Json::parse(R"({"admission": "priority"})")),
               std::invalid_argument);
}

TEST(Config, ToJsonRoundTrips) {
  core::Config cfg;
  cfg.n_replicas = 16;
  cfg.protocol = "2chs";
  cfg.bsize = 800;
  const auto back = core::Config::from_json(cfg.to_json());
  EXPECT_EQ(back.n_replicas, 16u);
  EXPECT_EQ(back.protocol, "2chs");
  EXPECT_EQ(back.bsize, 800u);
}

}  // namespace
}  // namespace bamboo
