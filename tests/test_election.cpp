// Tests for leader election strategies and the factory.

#include <gtest/gtest.h>

#include <map>

#include "election/leader_election.h"

namespace bamboo {
namespace {

TEST(RoundRobin, RotatesThroughAllReplicas) {
  election::RoundRobinElection e(4);
  EXPECT_EQ(e.leader(0), 0u);
  EXPECT_EQ(e.leader(1), 1u);
  EXPECT_EQ(e.leader(4), 0u);
  EXPECT_EQ(e.leader(7), 3u);
  EXPECT_EQ(e.leader(1000001), 1u);
}

TEST(RoundRobin, EveryReplicaLeadsEqually) {
  election::RoundRobinElection e(8);
  std::map<types::NodeId, int> counts;
  for (types::View v = 1; v <= 800; ++v) counts[e.leader(v)]++;
  for (const auto& [id, count] : counts) EXPECT_EQ(count, 100) << id;
}

TEST(Static, AlwaysSameLeader) {
  election::StaticElection e(2);
  for (types::View v = 0; v < 100; ++v) EXPECT_EQ(e.leader(v), 2u);
}

TEST(Hash, DeterministicAndInRange) {
  election::HashElection e(42, 8);
  for (types::View v = 1; v <= 200; ++v) {
    const auto l1 = e.leader(v);
    const auto l2 = e.leader(v);
    EXPECT_EQ(l1, l2);
    EXPECT_LT(l1, 8u);
  }
}

TEST(Hash, RoughlyUniform) {
  election::HashElection e(7, 4);
  std::map<types::NodeId, int> counts;
  for (types::View v = 1; v <= 4000; ++v) counts[e.leader(v)]++;
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [id, count] : counts) {
    EXPECT_GT(count, 800) << id;  // expected 1000 each
    EXPECT_LT(count, 1200) << id;
  }
}

TEST(Hash, DifferentSeedsDifferentSchedules) {
  election::HashElection a(1, 8);
  election::HashElection b(2, 8);
  int same = 0;
  for (types::View v = 1; v <= 100; ++v) {
    if (a.leader(v) == b.leader(v)) ++same;
  }
  EXPECT_LT(same, 40);  // ~1/8 expected
}

TEST(Factory, ParsesSpecs) {
  EXPECT_EQ(election::make_election("roundrobin", 4, 0)->name(),
            "round-robin");
  EXPECT_EQ(election::make_election("", 4, 0)->name(), "round-robin");
  EXPECT_EQ(election::make_election("hash", 4, 0)->name(), "hash");
  const auto st = election::make_election("static:2", 4, 0);
  EXPECT_EQ(st->name(), "static");
  EXPECT_EQ(st->leader(17), 2u);
}

TEST(Factory, RejectsBadSpecs) {
  EXPECT_THROW(election::make_election("bogus", 4, 0),
               std::invalid_argument);
  EXPECT_THROW(election::make_election("static:9", 4, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace bamboo
