// Tests for blocks, certificates, messages, quorum sizing, wire sizes.

#include <gtest/gtest.h>

#include "crypto/signer.h"
#include "types/block.h"
#include "types/certificates.h"
#include "types/ids.h"
#include "types/messages.h"

namespace bamboo {
namespace {

types::BlockPtr make_child(const types::BlockPtr& parent, types::View view,
                           types::NodeId proposer,
                           std::vector<types::Transaction> txns = {}) {
  types::Block::Fields f;
  f.parent_hash = parent->hash();
  f.view = view;
  f.height = parent->height() + 1;
  f.proposer = proposer;
  f.justify.view = parent->view();
  f.justify.block_hash = parent->hash();
  f.txns = std::move(txns);
  return std::make_shared<const types::Block>(std::move(f));
}

TEST(QuorumSizing, MatchesBftBounds) {
  EXPECT_EQ(types::max_faulty(4), 1u);
  EXPECT_EQ(types::quorum_size(4), 3u);
  EXPECT_EQ(types::max_faulty(7), 2u);
  EXPECT_EQ(types::quorum_size(7), 5u);
  EXPECT_EQ(types::max_faulty(8), 2u);
  EXPECT_EQ(types::quorum_size(8), 6u);
  EXPECT_EQ(types::max_faulty(32), 10u);
  EXPECT_EQ(types::quorum_size(32), 22u);
  EXPECT_EQ(types::max_faulty(64), 21u);
  EXPECT_EQ(types::quorum_size(64), 43u);
}

TEST(QuorumSizing, TwoQuorumsIntersectInHonestNode) {
  // 2q - n >= f + 1 must hold for safety.
  for (std::uint32_t n = 4; n <= 100; ++n) {
    const std::uint32_t q = types::quorum_size(n);
    const std::uint32_t f = types::max_faulty(n);
    EXPECT_GE(2 * q, n + f + 1) << "n=" << n;
  }
}

TEST(Block, GenesisIsSingletonWithFixedShape) {
  const auto g1 = types::Block::genesis();
  const auto g2 = types::Block::genesis();
  EXPECT_EQ(g1.get(), g2.get());
  EXPECT_EQ(g1->view(), types::kGenesisView);
  EXPECT_EQ(g1->height(), 0u);
  EXPECT_TRUE(g1->is_genesis());
  EXPECT_EQ(types::Block::genesis_qc().block_hash, g1->hash());
}

TEST(Block, HashCoversParentViewAndTxns) {
  const auto g = types::Block::genesis();
  const auto a = make_child(g, 1, 0);
  const auto b = make_child(g, 2, 0);  // different view
  EXPECT_NE(a->hash(), b->hash());

  types::Transaction tx;
  tx.id = 42;
  const auto c = make_child(g, 1, 0, {tx});  // different txns
  EXPECT_NE(a->hash(), c->hash());

  const auto d = make_child(a, 3, 1);  // different parent
  const auto e = make_child(b, 3, 1);
  EXPECT_NE(d->hash(), e->hash());
}

TEST(Block, HashIsDeterministic) {
  const auto g = types::Block::genesis();
  const auto a = make_child(g, 1, 2);
  const auto b = make_child(g, 1, 2);
  EXPECT_EQ(a->hash(), b->hash());
}

TEST(Block, JustifyIsParentDetectsDirectLink) {
  const auto g = types::Block::genesis();
  const auto a = make_child(g, 1, 0);
  EXPECT_TRUE(a->justify_is_parent());

  // Build a block whose justify certifies the grandparent (a fork).
  types::Block::Fields f;
  f.parent_hash = a->hash();
  f.view = 2;
  f.height = a->height() + 1;
  f.proposer = 1;
  f.justify.view = 0;
  f.justify.block_hash = g->hash();  // not the parent
  const types::Block fork(std::move(f));
  EXPECT_FALSE(fork.justify_is_parent());
}

TEST(Block, WireSizeGrowsWithTxnsAndPayload) {
  const auto g = types::Block::genesis();
  const auto empty = make_child(g, 1, 0);

  types::Transaction tx;
  tx.payload_size = 0;
  const auto one = make_child(g, 1, 0, {tx});
  EXPECT_EQ(one->wire_size(), empty->wire_size() + types::kTxOverheadBytes);

  tx.payload_size = 1024;
  const auto big = make_child(g, 1, 0, {tx});
  EXPECT_EQ(big->wire_size(), one->wire_size() + 1024);
}

TEST(Certificates, QcWireSizeGrowsWithSignatures) {
  types::QuorumCert qc;
  const auto base = qc.wire_size();
  qc.sigs.resize(3);
  EXPECT_EQ(qc.wire_size(), base + 3 * crypto::kSignatureWireBytes);
}

TEST(Certificates, VoteDigestBindsViewAndBlock) {
  const auto h1 = crypto::Sha256::hash("block1");
  const auto h2 = crypto::Sha256::hash("block2");
  EXPECT_NE(types::vote_digest(1, h1), types::vote_digest(2, h1));
  EXPECT_NE(types::vote_digest(1, h1), types::vote_digest(1, h2));
  EXPECT_EQ(types::vote_digest(1, h1), types::vote_digest(1, h1));
}

TEST(Certificates, TimeoutDigestBindsReportedQcView) {
  EXPECT_NE(types::timeout_digest(5, 3), types::timeout_digest(5, 4));
  EXPECT_NE(types::timeout_digest(5, 3), types::timeout_digest(6, 3));
}

TEST(Messages, WireSizesAreOrdered) {
  const auto g = types::Block::genesis();
  std::vector<types::Transaction> txns(10);
  const auto block = make_child(g, 1, 0, std::move(txns));

  types::ProposalMsg proposal;
  proposal.block = block;
  types::VoteMsg vote;
  types::ClientRequestMsg request;
  request.tx.payload_size = 128;

  const auto proposal_size = types::wire_size(types::Message(proposal));
  const auto vote_size = types::wire_size(types::Message(vote));
  const auto request_size = types::wire_size(types::Message(request));

  EXPECT_GT(proposal_size, vote_size);
  EXPECT_GT(proposal_size, request_size);
  EXPECT_EQ(request_size, types::kTxOverheadBytes + 128);
  EXPECT_GT(vote_size, crypto::kSignatureWireBytes);
}

TEST(Messages, ProposalCarriesTcBytes) {
  const auto g = types::Block::genesis();
  types::ProposalMsg p;
  p.block = make_child(g, 1, 0);
  const auto without = types::wire_size(types::Message(p));
  types::TimeoutCert tc;
  tc.sigs.resize(3);
  p.tc = tc;
  EXPECT_GT(types::wire_size(types::Message(p)), without);
}

TEST(Messages, KindNames) {
  types::VoteMsg vote;
  EXPECT_STREQ(types::kind_name(types::Message(vote)), "vote");
  types::TimeoutMsg timeout;
  EXPECT_STREQ(types::kind_name(types::Message(timeout)), "timeout");
  types::ClientRequestMsg req;
  EXPECT_STREQ(types::kind_name(types::Message(req)), "request");
  types::ChainRequestMsg creq;
  EXPECT_STREQ(types::kind_name(types::Message(creq)), "chainreq");
  types::ChainResponseMsg cresp;
  EXPECT_STREQ(types::kind_name(types::Message(cresp)), "chainresp");
}

TEST(Messages, ChainSyncWireSizesScaleWithTheBatch) {
  const auto g = types::Block::genesis();
  const auto b1 = make_child(g, 1, 0);
  const auto b2 = make_child(b1, 2, 0);

  // The request is one fixed-size locator whatever the batch cap asks for.
  types::ChainRequestMsg req;
  req.batch = 64;
  EXPECT_EQ(types::wire_size(types::Message(req)), 48u);

  types::ChainResponseMsg one;
  one.blocks = {b1};
  types::ChainResponseMsg two;
  two.blocks = {b1, b2};
  const auto one_size = types::wire_size(types::Message(one));
  // A single-block response costs exactly framing + the block — the
  // legacy per-block response size, which keeps sync_batch=1 runs
  // byte-identical on the wire.
  EXPECT_EQ(one_size, 16 + b1->wire_size());
  EXPECT_EQ(types::wire_size(types::Message(two)),
            one_size + b2->wire_size());
}

TEST(Transaction, WireSizeIsOverheadPlusPayload) {
  types::Transaction tx;
  tx.payload_size = 512;
  EXPECT_EQ(tx.wire_size(), types::kTxOverheadBytes + 512);
}

}  // namespace
}  // namespace bamboo
