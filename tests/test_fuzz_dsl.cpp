// Deterministic fuzz harness for every string DSL the config surface
// parses (PR 9): the churn schedule, topology scenario specs, the
// open-loop arrival process, the mempool admission policy, and the
// commit-share sparse codec. Two properties:
//
//   1. Valid inputs round-trip canonically. For the churn DSL that is
//      the strong form — parse(format(parse(s))) == parse(s) — since
//      format_churn defines the canonical rendering; the other parsers
//      must at minimum be stable (re-parsing an accepted spec yields an
//      equal value, twice).
//   2. No input crashes the parser. Mutated and garbage inputs must
//      either parse or throw std::invalid_argument — nothing else: no
//      other exception type, no UB the sanitizers would trip on, no
//      hang. This is the "a schedule either parses completely or the
//      run refuses to start" contract from core/churn.h, enforced
//      mechanically across thousands of adversarial strings.
//
// The mutation engine is a fixed-seed xorshift LCG — no wall-clock or
// std::random_device anywhere — so a failure reproduces bit-for-bit from
// the (corpus index, round) pair gtest prints.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "client/workload.h"
#include "core/churn.h"
#include "harness/experiment.h"
#include "mempool/mempool.h"
#include "net/topology.h"

namespace bamboo {
namespace {

// --- deterministic mutation engine ----------------------------------------

struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>(next() % n);
  }
};

// Bytes that show up in the DSLs — mutations drawn from this alphabet hit
// parser edge cases far more often than uniform bytes would.
const char kAlphabet[] = "0123456789.:;@|=-+xsmabcdefghilnoprtuw ";

std::string mutate(const std::string& input, Rng& rng) {
  std::string out = input;
  const std::uint32_t edits = 1 + rng.below(4);
  for (std::uint32_t e = 0; e < edits; ++e) {
    const std::uint32_t op = rng.below(5);
    const std::uint32_t at =
        out.empty() ? 0 : rng.below(static_cast<std::uint32_t>(out.size()));
    const char c = kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
    switch (op) {
      case 0:  // replace a byte
        if (!out.empty()) out[at] = c;
        break;
      case 1:  // insert a byte
        out.insert(out.begin() + at, c);
        break;
      case 2:  // delete a byte
        if (!out.empty()) out.erase(out.begin() + at);
        break;
      case 3:  // truncate
        out.resize(at);
        break;
      case 4:  // duplicate a tail segment
        out += out.substr(at);
        break;
    }
    if (out.size() > 512) out.resize(512);
  }
  return out;
}

std::string garbage(Rng& rng) {
  std::string out;
  const std::uint32_t len = rng.below(64);
  out.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    // Mostly alphabet bytes, occasionally arbitrary ones.
    out.push_back(rng.below(8) == 0
                      ? static_cast<char>(1 + rng.below(255))
                      : kAlphabet[rng.below(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

/// Feed one input to a parser that must either accept or throw
/// std::invalid_argument. Any other escape fails the test.
template <typename Fn>
void must_not_crash(const Fn& parse, const std::string& input,
                    const char* which) {
  try {
    parse(input);
  } catch (const std::invalid_argument&) {
    // the contract: malformed input is a refusal, not a crash
  } catch (const std::exception& e) {
    FAIL() << which << " threw " << e.what() << " (not invalid_argument) on "
           << testing::PrintToString(input);
  }
}

template <typename Fn>
void fuzz_parser(const Fn& parse, const std::vector<std::string>& corpus,
                 const char* which, std::uint64_t seed) {
  Rng rng{seed};
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    for (int round = 0; round < 400; ++round) {
      must_not_crash(parse, mutate(corpus[i], rng), which);
    }
  }
  for (int round = 0; round < 2000; ++round) {
    must_not_crash(parse, garbage(rng), which);
  }
}

// --- corpora ---------------------------------------------------------------

const std::vector<std::string> kChurnCorpus = {
    "degrade@0.3s:leader=follow:+40ms",
    "degrade@100ms:link=0>3:+5ms;restore@0.5s:link=0>3",
    "partition@0.2s:groups=0-1|2-3;heal@0.45s",
    "partition@1s:regions=0|1-2:of=3;heal@2s",
    "burst@0.15s:loss=0.3:for=0.2s",
    "burst@0.1s:replica=2:loss=0.05:for=50ms:every=0.4s",
    "fluct@0.3s:for=0.2s:lo=5ms:hi=20ms",
    "crash@0.2s:replica=1;silence@0.3s:replica=2",
    "degrade@0.1s:region=1/3:+10ms;restore@0.9s",
    "crash@timeout:replica=1",
    "degrade@timeout:leader=follow:+40ms",
    "crash-restart@0.2s:replica=1:for=0.1s",
    "crash-restart@timeout:replica=2",
};

const std::vector<std::string> kTopologyCorpus = {
    "", "uniform", "wan:3:10", "wan:2:25:0.5", "slow-leader:0:30",
    "slow-replica:2:15", "wan", "slow-leader",
};

const std::vector<std::string> kArrivalCorpus = {
    "poisson", "fixed", "burst:2x0.5,0.5x1",   "burst:10x0.1",
    "trace:500@1,2000@0.5,100@2", "trace:1000@1",
};

const std::vector<std::string> kAdmissionCorpus = {
    "", "drop", "backoff:50", "backoff:2.5", "priority:0.25", "priority:0.9",
};

const std::vector<std::string> kCommitShareCorpus = {
    "", "0:5", "0:5;3:2;7:19", "15:1000000",
};

// --- the DSL fuzz tests ----------------------------------------------------

TEST(FuzzDsl, ChurnParserNeverCrashes) {
  fuzz_parser([](const std::string& s) { (void)core::parse_churn(s); },
              kChurnCorpus, "parse_churn", 0x9e3779b97f4a7c15ull);
}

TEST(FuzzDsl, ChurnRoundTripsCanonically) {
  for (const std::string& spec : kChurnCorpus) {
    const core::ChurnSchedule parsed = core::parse_churn(spec);
    const std::string canonical = core::format_churn(parsed);
    // The canonical rendering is a fixed point: parse o format is the
    // identity on schedules, format o parse is the identity on canonical
    // strings.
    EXPECT_EQ(core::parse_churn(canonical), parsed) << spec;
    EXPECT_EQ(core::format_churn(core::parse_churn(canonical)), canonical)
        << spec;
  }
}

TEST(FuzzDsl, TopologyParserNeverCrashes) {
  const net::LinkSpec base;
  fuzz_parser(
      [&base](const std::string& s) {
        (void)net::make_topology(s, 8, 6, base);
      },
      kTopologyCorpus, "make_topology", 0xda942042e4dd58b5ull);
}

TEST(FuzzDsl, TopologyAcceptedSpecsAreStable) {
  const net::LinkSpec base;
  for (const std::string& spec : kTopologyCorpus) {
    try {
      const net::LinkMatrix a = net::make_topology(spec, 8, 6, base);
      const net::LinkMatrix b = net::make_topology(spec, 8, 6, base);
      ASSERT_EQ(a.size(), b.size()) << spec;
    } catch (const std::invalid_argument&) {
      // half-specified corpus entries ("wan", "slow-leader") refuse —
      // also acceptable, as long as it is the contracted exception
    }
  }
}

TEST(FuzzDsl, ArrivalParserNeverCrashes) {
  fuzz_parser([](const std::string& s) { (void)client::parse_arrival(s); },
              kArrivalCorpus, "parse_arrival", 0xc2b2ae3d27d4eb4full);
}

TEST(FuzzDsl, ArrivalAcceptedSpecsAreStable) {
  for (const std::string& spec : kArrivalCorpus) {
    EXPECT_EQ(client::parse_arrival(spec), client::parse_arrival(spec))
        << spec;
  }
}

TEST(FuzzDsl, AdmissionParserNeverCrashes) {
  fuzz_parser(
      [](const std::string& s) { (void)mempool::parse_admission(s); },
      kAdmissionCorpus, "parse_admission", 0x165667b19e3779f9ull);
}

TEST(FuzzDsl, AdmissionAcceptedSpecsAreStable) {
  for (const std::string& spec : kAdmissionCorpus) {
    EXPECT_EQ(mempool::parse_admission(spec), mempool::parse_admission(spec))
        << spec;
  }
}

TEST(FuzzDsl, CommitShareCodecNeverCrashes) {
  fuzz_parser(
      [](const std::string& s) { (void)harness::decode_commit_share(s); },
      kCommitShareCorpus, "decode_commit_share", 0x27d4eb2f165667c5ull);
}

TEST(FuzzDsl, CommitShareRoundTripsCanonically) {
  for (const std::string& text : kCommitShareCorpus) {
    const auto counts = harness::decode_commit_share(text);
    EXPECT_EQ(harness::encode_commit_share(counts), text) << text;
    EXPECT_EQ(harness::decode_commit_share(harness::encode_commit_share(counts)),
              counts)
        << text;
  }
}

}  // namespace
}  // namespace bamboo
