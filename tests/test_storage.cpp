// Tests for the durable ledger subsystem (storage/block_store.h): the
// block codec, the in-memory and file-backed stores (append/read/replay,
// hash dedup, byte accounting), torn-write recovery of the file log, and
// the end-to-end crash-restart path through the harness — a replica
// rebuilt from the store it appended to before it died, with the disk
// accounting columns populated and deterministic across thread counts.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "client/workload.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "storage/block_store.h"
#include "types/block.h"

namespace bamboo {
namespace {

using storage::BlockStore;
using storage::FileBlockStore;
using storage::MemoryBlockStore;
using types::BlockPtr;

BlockPtr child_of(const BlockPtr& parent, types::View view,
                  std::uint32_t txns = 0) {
  types::Block::Fields f;
  f.parent_hash = parent->hash();
  f.view = view;
  f.height = parent->height() + 1;
  f.proposer = static_cast<types::NodeId>(view % 4);
  f.justify.view = parent->view();
  f.justify.height = parent->height();
  f.justify.block_hash = parent->hash();
  for (std::uint32_t i = 0; i < txns; ++i) {
    types::Transaction tx;
    tx.id = view * 1000 + i + 1;
    tx.session = i;
    tx.payload_size = 16;
    f.txns.push_back(tx);
  }
  return std::make_shared<const types::Block>(std::move(f));
}

/// Genesis + a chain of `n` blocks (every third carrying transactions);
/// returns the blocks tip-last.
std::vector<BlockPtr> make_chain(std::size_t n) {
  std::vector<BlockPtr> chain;
  BlockPtr cursor = types::Block::genesis();
  for (std::size_t i = 0; i < n; ++i) {
    cursor = child_of(cursor, static_cast<types::View>(i + 1),
                      i % 3 == 0 ? 5 : 0);
    chain.push_back(cursor);
  }
  return chain;
}

/// A unique temp log path per test, removed on scope exit.
struct TempLog {
  explicit TempLog(const char* tag)
      : path((std::filesystem::temp_directory_path() /
              ("bamboo-test-store-" + std::to_string(::getpid()) + "-" +
               tag + ".blk"))
                 .string()) {
    std::filesystem::remove(path);
  }
  ~TempLog() { std::filesystem::remove(path); }
  const std::string path;
};

// ---------------------------------------------------------------------------
// Block codec
// ---------------------------------------------------------------------------

TEST(BlockCodec, EncodeDecodeRoundTripsEverything) {
  const auto chain = make_chain(4);
  for (const BlockPtr& b : chain) {
    const auto payload = storage::encode_block(*b);
    const BlockPtr back = storage::decode_block(payload.data(),
                                                payload.size());
    // The Block constructor re-derives the hash, so hash equality covers
    // every hashed field at once.
    EXPECT_EQ(back->hash(), b->hash());
    EXPECT_EQ(back->height(), b->height());
    EXPECT_EQ(back->parent_hash(), b->parent_hash());
    EXPECT_EQ(back->justify().block_hash, b->justify().block_hash);
    EXPECT_EQ(back->txns().size(), b->txns().size());
  }
}

TEST(BlockCodec, RejectsTruncatedAndEmptyPayloads) {
  const auto chain = make_chain(1);
  const auto payload = storage::encode_block(*chain[0]);
  for (std::size_t keep : {std::size_t{0}, std::size_t{3},
                           payload.size() / 2, payload.size() - 1}) {
    EXPECT_THROW(
        static_cast<void>(storage::decode_block(payload.data(), keep)),
        std::invalid_argument)
        << "kept " << keep << " of " << payload.size();
  }
}

// ---------------------------------------------------------------------------
// Stores
// ---------------------------------------------------------------------------

TEST(MemoryStore, AppendsDedupeAndAccountLogicalBytes) {
  MemoryBlockStore store;
  const auto chain = make_chain(3);
  for (const BlockPtr& b : chain) store.append(b);
  store.append(chain[0]);  // duplicate: idempotent on the hash
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.stats().appends, 3u);
  // The in-memory store accounts the bytes a durable store WOULD have
  // written, with no framing: write amplification is exactly 1.
  EXPECT_GT(store.stats().bytes_written, 0u);
  EXPECT_EQ(store.stats().bytes_written, store.stats().logical_bytes);

  EXPECT_TRUE(store.contains(chain[1]->hash()));
  const BlockPtr got = store.read(chain[1]->hash());
  ASSERT_TRUE(got);
  EXPECT_EQ(got->hash(), chain[1]->hash());
  EXPECT_FALSE(store.read(crypto::Sha256::hash("nowhere")));

  std::vector<types::Height> heights;
  store.replay([&](const BlockPtr& b) { heights.push_back(b->height()); });
  EXPECT_EQ(heights, (std::vector<types::Height>{1, 2, 3}));
  EXPECT_GT(store.stats().reads, 0u);
}

TEST(FileStore, RoundTripsBlocksAcrossReopen) {
  TempLog log("roundtrip");
  const auto chain = make_chain(8);
  {
    FileBlockStore store(log.path);
    EXPECT_TRUE(store.empty());
    for (const BlockPtr& b : chain) store.append(b);
    store.append(chain[2]);  // dedup: the log must not grow
    EXPECT_EQ(store.size(), 8u);
    EXPECT_EQ(store.stats().appends, 8u);
    // Physical bytes are the real file size; logical bytes follow the
    // wire model, which also charges the simulated transaction payloads —
    // so the two legitimately diverge (framing up, compact records down).
    EXPECT_GT(store.stats().bytes_written, 0u);
    EXPECT_EQ(store.stats().bytes_written,
              std::filesystem::file_size(log.path));
    EXPECT_NE(store.stats().bytes_written, store.stats().logical_bytes);
  }
  // Reopen: recovery rebuilds the index from the log alone.
  FileBlockStore reopened(log.path);
  EXPECT_EQ(reopened.size(), 8u);
  std::vector<crypto::Digest> replayed;
  reopened.replay([&](const BlockPtr& b) { replayed.push_back(b->hash()); });
  ASSERT_EQ(replayed.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(replayed[i], chain[i]->hash()) << "position " << i;
    EXPECT_TRUE(reopened.contains(chain[i]->hash()));
  }
  const BlockPtr got = reopened.read(chain[5]->hash());
  ASSERT_TRUE(got);
  EXPECT_EQ(got->height(), 6u);
  EXPECT_EQ(got->txns().size(), chain[5]->txns().size());
}

TEST(FileStore, TornWriteIsTruncatedToTheValidPrefix) {
  TempLog log("torn");
  const auto chain = make_chain(5);
  {
    FileBlockStore store(log.path);
    for (const BlockPtr& b : chain) store.append(b);
  }
  // Simulate a crash mid-write: chop the tail of the last record.
  const auto full = std::filesystem::file_size(log.path);
  std::filesystem::resize_file(log.path, full - 7);

  FileBlockStore recovered(log.path);
  EXPECT_EQ(recovered.size(), 4u);
  EXPECT_TRUE(recovered.contains(chain[3]->hash()));
  EXPECT_FALSE(recovered.contains(chain[4]->hash()));
  // The store keeps working after recovery: re-append the lost block and
  // it survives the next reopen.
  recovered.append(chain[4]);
  EXPECT_EQ(recovered.size(), 5u);
  FileBlockStore again(log.path);
  EXPECT_EQ(again.size(), 5u);
  EXPECT_TRUE(again.contains(chain[4]->hash()));
}

TEST(FileStore, ChecksumMismatchRejectsTheCorruptedSuffix) {
  TempLog log("corrupt");
  const auto chain = make_chain(5);
  {
    FileBlockStore store(log.path);
    for (const BlockPtr& b : chain) store.append(b);
  }
  // Flip the last payload byte: length and magic still parse, but the
  // FNV-1a checksum catches the rot and recovery stops at record 4.
  {
    std::fstream f(log.path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(-1, std::ios::end);
    char byte = 0;
    f.get(byte);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(byte ^ 0x5a));
  }
  FileBlockStore recovered(log.path);
  EXPECT_EQ(recovered.size(), 4u);
  EXPECT_FALSE(recovered.contains(chain[4]->hash()));
}

TEST(StoreFactory, MakesBothKindsAndRejectsUnknown) {
  TempLog log("factory");
  const auto mem = storage::make_store("memory", "");
  EXPECT_TRUE(dynamic_cast<MemoryBlockStore*>(mem.get()) != nullptr);
  const auto file = storage::make_store("file", log.path);
  EXPECT_TRUE(dynamic_cast<FileBlockStore*>(file.get()) != nullptr);
  EXPECT_THROW(static_cast<void>(storage::make_store("cloud", "")),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// End-to-end: crash-restart recovery from the durable store
// ---------------------------------------------------------------------------

harness::RunSpec storage_spec(const std::string& store,
                              std::uint32_t retention) {
  harness::RunSpec spec;
  spec.cfg.n_replicas = 4;
  spec.cfg.bsize = 100;
  spec.cfg.memsize = 200000;
  spec.cfg.seed = 47;
  spec.cfg.store = store;  // store_path empty: a fresh dir per cluster
  spec.cfg.retention = retention;
  spec.cfg.sync_batch = 8;
  spec.cfg.sync_timeout = sim::milliseconds(80);
  spec.cfg.sync_retries = 4;
  // Kill replica 3 mid-run and rebuild it from its store after 0.15 s of
  // downtime; it must chain-sync whatever committed while it was dead.
  spec.cfg.churn = "crash-restart@0.25s:replica=3:for=0.15s";
  spec.workload.mode = client::LoadMode::kClosedLoop;
  spec.workload.concurrency = 64;
  spec.opts.warmup_s = 0.1;
  spec.opts.measure_s = 0.6;
  return spec;
}

TEST(StorageRecovery, CrashRestartRebuildsFromTheFileStore) {
  const auto r = harness::execute(storage_spec("file", 0));
  EXPECT_EQ(r.restarts, 1u);
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GT(r.blocks_committed, 0u);
  // Real bytes hit the log. The compact record encoding undercuts the
  // wire model (which charges simulated transaction payload bytes), so
  // the file store's amplification sits strictly between 0 and 1 here —
  // unlike the memory store's exact 1.0.
  EXPECT_GT(r.disk_bytes_written, 0u);
  EXPECT_GT(r.write_amplification, 0.0);
  EXPECT_LT(r.write_amplification, 1.0);
  // The rebuild replayed the persisted prefix back into the forest.
  EXPECT_GT(r.store_reads, 0u);
}

TEST(StorageRecovery, MemoryStoreModelsTheSameRecovery) {
  // The default store survives a crash-restart too (it outlives the
  // replica instance); accounting shows the no-framing baseline.
  const auto r = harness::execute(storage_spec("memory", 0));
  EXPECT_EQ(r.restarts, 1u);
  EXPECT_TRUE(r.consistent);
  EXPECT_GT(r.disk_bytes_written, 0u);
  EXPECT_DOUBLE_EQ(r.write_amplification, 1.0);
}

TEST(StorageRecovery, RetentionPruningSurvivesCrashRestart) {
  // Aggressive retention (keep 8 committed blocks in memory) with the
  // same crash-restart: the pruned bodies live only in the store, so the
  // rebuild exercises the reload path the pruning relies on.
  const auto r = harness::execute(storage_spec("file", 8));
  EXPECT_EQ(r.restarts, 1u);
  EXPECT_TRUE(r.consistent);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GT(r.blocks_committed, 0u);
  EXPECT_GT(r.store_reads, 0u);
}

TEST(StorageRecovery, DeterministicAcrossThreadCounts) {
  // The acceptance bar: restart-from-disk runs are bit-identical across
  // --threads values (each cluster owns a private store directory).
  std::vector<harness::RunSpec> grid = {
      storage_spec("file", 0), storage_spec("file", 8),
      storage_spec("memory", 0)};
  harness::ParallelRunner one(1);
  harness::ParallelRunner four(4);
  const auto a = one.run(grid);
  const auto b = four.run(grid);
  EXPECT_EQ(a, b);
}

TEST(StorageRecovery, DiskColumnsReachPersistedRecords) {
  const auto spec = storage_spec("file", 16);
  const auto result = harness::execute(spec);
  const auto rec = harness::report::make_run_record("t", "a", "s", 0, spec,
                                                    0, 1, result);
  const std::string row = harness::report::csv_row(rec);
  const auto json = harness::report::to_json(rec);
  const auto back = harness::report::record_from_json(json);
  EXPECT_EQ(back.result.disk_bytes_written, result.disk_bytes_written);
  EXPECT_DOUBLE_EQ(back.result.write_amplification,
                   result.write_amplification);
  EXPECT_EQ(back.result.store_reads, result.store_reads);
  EXPECT_EQ(back.result.restarts, result.restarts);
  EXPECT_EQ(back.prov.store, "file");
  EXPECT_EQ(back.prov.retention, 16u);
  // The CSV row has one cell per column.
  std::size_t cells = 1;
  bool quoted = false;
  for (char c : row) {
    if (c == '"') quoted = !quoted;
    if (c == ',' && !quoted) ++cells;
  }
  EXPECT_EQ(cells, harness::report::csv_columns().size());
}

}  // namespace
}  // namespace bamboo
