// Pinned whole-run captures guarding the perf-engine hot paths (PR 6).
//
// The inline-callback event queue, the SimNetwork envelope pool, the
// broadcast single-sizing and the cached Block::wire_size() are pure
// mechanical optimizations: they must not move a single event, RNG draw or
// byte. These full-precision RunResult captures were recorded on the
// pre-optimization build (std::function callbacks, per-recipient sizing,
// per-message envelope lambdas) and every optimized build must reproduce
// them bit-for-bit — across all three protocols and the WAN + churn
// configurations that exercise delay families, loss, partitions and the
// chain-sync path.
//
// The LAN/default captures for hotstuff and streamlet live in
// test_link_model.cpp (pinned there since PR 3); this file covers the
// remaining protocol × scenario grid.
//
// If a change legitimately alters the schedule (a new RNG draw, a
// different event ordering), re-record with the generator pattern from
// DESIGN.md and say so loudly in the PR — these literals are the proof
// that a perf PR is schedule-preserving.

#include <gtest/gtest.h>

#include <string>

#include "client/workload.h"
#include "harness/experiment.h"

namespace bamboo {
namespace {

/// The compat-spec shape shared with bench_perf's end-to-end metrics.
harness::RunSpec base_spec(const std::string& protocol) {
  core::Config cfg;
  cfg.protocol = protocol;
  cfg.n_replicas = 4;
  cfg.bsize = 400;
  cfg.psize = 128;
  cfg.memsize = 200000;
  cfg.seed = 11;
  client::WorkloadConfig wl;
  wl.mode = client::LoadMode::kClosedLoop;
  wl.concurrency = 256;
  harness::RunSpec spec;
  spec.cfg = cfg;
  spec.workload = wl;
  spec.opts.warmup_s = 0.25;
  spec.opts.measure_s = 0.75;
  return spec;
}

/// 6 replicas over a 3-region WAN, lognormal links, 1% ambient loss.
harness::RunSpec wan_spec(const std::string& protocol) {
  harness::RunSpec spec = base_spec(protocol);
  spec.cfg.n_replicas = 6;
  spec.cfg.topology = "wan:3:10";
  spec.cfg.link_model = "lognormal";
  spec.cfg.link_loss = 0.01;
  spec.cfg.timeout = sim::milliseconds(300);
  return spec;
}

/// Full churn grammar in one run: degrade, Gilbert-Elliott bursts, a loss
/// burst, a partition + heal (driving the Syncer), and a fluct window.
harness::RunSpec churn_spec(const std::string& protocol) {
  harness::RunSpec spec = base_spec(protocol);
  spec.cfg.timeout = sim::milliseconds(200);
  spec.cfg.ge_p = 0.01;
  spec.cfg.ge_r = 0.3;
  spec.cfg.ge_loss_bad = 0.5;
  spec.cfg.sync_batch = 4;
  spec.cfg.churn =
      "degrade@0.35s:link=0-1:+5ms;"
      "burst@0.45s:loss=0.3:for=100ms;"
      "partition@0.6s:groups=0-1|2-3;heal@0.7s;"
      "fluct@0.75s:for=100ms:lo=2ms:hi=8ms";
  return spec;
}

TEST(PerfPinned, HotstuffWan) {
  const harness::RunResult r = harness::execute(wan_spec("hotstuff"));
  EXPECT_DOUBLE_EQ(r.throughput_tps, 446.66666666666669);
  EXPECT_DOUBLE_EQ(r.latency_ms_mean, 511.14843873432812);
  EXPECT_DOUBLE_EQ(r.latency_ms_p50, 664.69554500000004);
  EXPECT_DOUBLE_EQ(r.latency_ms_p99, 764.16890190000004);
  EXPECT_DOUBLE_EQ(r.cgr_per_view, 0.90909090909090906);
  EXPECT_DOUBLE_EQ(r.cgr_per_block, 1.1111111111111112);
  EXPECT_DOUBLE_EQ(r.block_interval, 3.3000000000000003);
  EXPECT_EQ(r.latency_samples, 335u);
  EXPECT_EQ(r.views, 11u);
  EXPECT_EQ(r.blocks_committed, 10u);
  EXPECT_EQ(r.blocks_received, 9u);
  EXPECT_EQ(r.blocks_forked, 0u);
  EXPECT_EQ(r.timeouts, 12u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.net_bytes, 643540u);
  EXPECT_EQ(r.sync_requests, 1u);
  EXPECT_EQ(r.sync_blocks, 0u);
  EXPECT_EQ(r.sync_bytes, 11371u);
  EXPECT_DOUBLE_EQ(r.recovery_ms, 0);
  EXPECT_EQ(r.certs_verified, 111u);
  EXPECT_EQ(r.certs_rejected, 0u);
  EXPECT_TRUE(r.consistent);
}

TEST(PerfPinned, HotstuffChurn) {
  const harness::RunResult r = harness::execute(churn_spec("hotstuff"));
  EXPECT_DOUBLE_EQ(r.throughput_tps, 1124);
  EXPECT_DOUBLE_EQ(r.latency_ms_mean, 203.90749827402149);
  EXPECT_DOUBLE_EQ(r.latency_ms_p50, 20.494797999999999);
  EXPECT_DOUBLE_EQ(r.latency_ms_p99, 821.66869969999993);
  EXPECT_DOUBLE_EQ(r.cgr_per_view, 0.93333333333333335);
  EXPECT_DOUBLE_EQ(r.cgr_per_block, 0.96551724137931039);
  EXPECT_DOUBLE_EQ(r.block_interval, 3.4999999999999996);
  EXPECT_EQ(r.latency_samples, 843u);
  EXPECT_EQ(r.views, 30u);
  EXPECT_EQ(r.blocks_committed, 28u);
  EXPECT_EQ(r.blocks_received, 29u);
  EXPECT_EQ(r.blocks_forked, 1u);
  EXPECT_EQ(r.timeouts, 12u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.net_bytes, 1401875u);
  EXPECT_EQ(r.sync_requests, 10u);
  EXPECT_EQ(r.sync_blocks, 7u);
  EXPECT_EQ(r.sync_bytes, 270849u);
  EXPECT_DOUBLE_EQ(r.recovery_ms, 0);
  EXPECT_EQ(r.certs_verified, 156u);
  EXPECT_EQ(r.certs_rejected, 0u);
  EXPECT_TRUE(r.consistent);
}

TEST(PerfPinned, TwoChainDefault) {
  const harness::RunResult r = harness::execute(base_spec("2chs"));
  EXPECT_DOUBLE_EQ(r.throughput_tps, 26821.333333333332);
  EXPECT_DOUBLE_EQ(r.latency_ms_mean, 9.5321883514614996);
  EXPECT_DOUBLE_EQ(r.latency_ms_p50, 9.3935250000000003);
  EXPECT_DOUBLE_EQ(r.latency_ms_p99, 12.7287341);
  EXPECT_DOUBLE_EQ(r.cgr_per_view, 1);
  EXPECT_DOUBLE_EQ(r.cgr_per_block, 1);
  EXPECT_DOUBLE_EQ(r.block_interval, 2);
  EXPECT_EQ(r.latency_samples, 20116u);
  EXPECT_EQ(r.views, 433u);
  EXPECT_EQ(r.blocks_committed, 433u);
  EXPECT_EQ(r.blocks_received, 433u);
  EXPECT_EQ(r.blocks_forked, 0u);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.net_bytes, 24433414u);
  EXPECT_EQ(r.sync_requests, 0u);
  EXPECT_EQ(r.sync_blocks, 0u);
  EXPECT_EQ(r.sync_bytes, 0u);
  EXPECT_DOUBLE_EQ(r.recovery_ms, 0);
  EXPECT_EQ(r.certs_verified, 1298u);
  EXPECT_EQ(r.certs_rejected, 0u);
  EXPECT_TRUE(r.consistent);
}

TEST(PerfPinned, TwoChainWan) {
  const harness::RunResult r = harness::execute(wan_spec("2chs"));
  EXPECT_DOUBLE_EQ(r.throughput_tps, 3090.6666666666665);
  EXPECT_DOUBLE_EQ(r.latency_ms_mean, 62.075482171699825);
  EXPECT_DOUBLE_EQ(r.latency_ms_p50, 61.871888499999997);
  EXPECT_DOUBLE_EQ(r.latency_ms_p99, 100.00571373999999);
  EXPECT_DOUBLE_EQ(r.cgr_per_view, 1);
  EXPECT_DOUBLE_EQ(r.cgr_per_block, 1);
  EXPECT_DOUBLE_EQ(r.block_interval, 2.0158730158730158);
  EXPECT_EQ(r.latency_samples, 2318u);
  EXPECT_EQ(r.views, 63u);
  EXPECT_EQ(r.blocks_committed, 63u);
  EXPECT_EQ(r.blocks_received, 63u);
  EXPECT_EQ(r.blocks_forked, 0u);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.net_bytes, 4333095u);
  EXPECT_EQ(r.sync_requests, 9u);
  EXPECT_EQ(r.sync_blocks, 7u);
  EXPECT_EQ(r.sync_bytes, 107872u);
  EXPECT_DOUBLE_EQ(r.recovery_ms, 0);
  EXPECT_EQ(r.certs_verified, 321u);
  EXPECT_EQ(r.certs_rejected, 0u);
  EXPECT_TRUE(r.consistent);
}

TEST(PerfPinned, TwoChainChurn) {
  const harness::RunResult r = harness::execute(churn_spec("2chs"));
  EXPECT_DOUBLE_EQ(r.throughput_tps, 330.66666666666669);
  EXPECT_DOUBLE_EQ(r.latency_ms_mean, 424.80088305241918);
  EXPECT_DOUBLE_EQ(r.latency_ms_p50, 416.51151749999997);
  EXPECT_DOUBLE_EQ(r.latency_ms_p99, 838.80428565);
  EXPECT_DOUBLE_EQ(r.cgr_per_view, 0.84615384615384615);
  EXPECT_DOUBLE_EQ(r.cgr_per_block, 1);
  EXPECT_DOUBLE_EQ(r.block_interval, 2.6363636363636362);
  EXPECT_EQ(r.latency_samples, 248u);
  EXPECT_EQ(r.views, 13u);
  EXPECT_EQ(r.blocks_committed, 11u);
  EXPECT_EQ(r.blocks_received, 11u);
  EXPECT_EQ(r.blocks_forked, 0u);
  EXPECT_EQ(r.timeouts, 16u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.net_bytes, 417422u);
  EXPECT_EQ(r.sync_requests, 3u);
  EXPECT_EQ(r.sync_blocks, 3u);
  EXPECT_EQ(r.sync_bytes, 69225u);
  EXPECT_DOUBLE_EQ(r.recovery_ms, 80.000000000000071);
  EXPECT_EQ(r.certs_verified, 94u);
  EXPECT_EQ(r.certs_rejected, 0u);
  EXPECT_TRUE(r.consistent);
}

TEST(PerfPinned, StreamletWan) {
  const harness::RunResult r = harness::execute(wan_spec("streamlet"));
  EXPECT_DOUBLE_EQ(r.throughput_tps, 4546.666666666667);
  EXPECT_DOUBLE_EQ(r.latency_ms_mean, 42.359339260997039);
  EXPECT_DOUBLE_EQ(r.latency_ms_p50, 42.314746);
  EXPECT_DOUBLE_EQ(r.latency_ms_p99, 68.42667299);
  EXPECT_DOUBLE_EQ(r.cgr_per_view, 1);
  EXPECT_DOUBLE_EQ(r.cgr_per_block, 1);
  EXPECT_DOUBLE_EQ(r.block_interval, 2);
  EXPECT_EQ(r.latency_samples, 3410u);
  EXPECT_EQ(r.views, 93u);
  EXPECT_EQ(r.blocks_committed, 93u);
  EXPECT_EQ(r.blocks_received, 93u);
  EXPECT_EQ(r.blocks_forked, 0u);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.net_bytes, 39035132u);
  EXPECT_EQ(r.sync_requests, 0u);
  EXPECT_EQ(r.sync_blocks, 0u);
  EXPECT_EQ(r.sync_bytes, 0u);
  EXPECT_DOUBLE_EQ(r.recovery_ms, 0);
  EXPECT_EQ(r.certs_verified, 3236u);
  EXPECT_EQ(r.certs_rejected, 0u);
  EXPECT_TRUE(r.consistent);
}

TEST(PerfPinned, StreamletChurn) {
  const harness::RunResult r = harness::execute(churn_spec("streamlet"));
  EXPECT_DOUBLE_EQ(r.throughput_tps, 2070.6666666666665);
  EXPECT_DOUBLE_EQ(r.latency_ms_mean, 10.49201182678687);
  EXPECT_DOUBLE_EQ(r.latency_ms_p50, 9.8845340000000004);
  EXPECT_DOUBLE_EQ(r.latency_ms_p99, 19.646548920000029);
  EXPECT_DOUBLE_EQ(r.cgr_per_view, 0.99509803921568629);
  EXPECT_DOUBLE_EQ(r.cgr_per_block, 1.004950495049505);
  EXPECT_DOUBLE_EQ(r.block_interval, 2.0197044334975378);
  EXPECT_EQ(r.latency_samples, 1553u);
  EXPECT_EQ(r.views, 204u);
  EXPECT_EQ(r.blocks_committed, 203u);
  EXPECT_EQ(r.blocks_received, 202u);
  EXPECT_EQ(r.blocks_forked, 0u);
  EXPECT_EQ(r.timeouts, 4u);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.net_bytes, 10166149u);
  EXPECT_EQ(r.sync_requests, 1u);
  EXPECT_EQ(r.sync_blocks, 0u);
  EXPECT_EQ(r.sync_bytes, 0u);
  EXPECT_DOUBLE_EQ(r.recovery_ms, 0);
  EXPECT_EQ(r.certs_verified, 2990u);
  EXPECT_EQ(r.certs_rejected, 0u);
  EXPECT_TRUE(r.consistent);
}

/// events_executed is engine accounting, not a metric: it must be stable
/// across repeated executions of the same spec (determinism) and nonzero.
TEST(PerfPinned, EventsExecutedDeterministic) {
  const harness::RunOutput a = harness::execute_full(base_spec("hotstuff"));
  const harness::RunOutput b = harness::execute_full(base_spec("hotstuff"));
  EXPECT_GT(a.events_executed, 0u);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_TRUE(a.result == b.result);
}

}  // namespace
}  // namespace bamboo
