// Figure 17 (extension): post-churn recovery latency under batched chain
// sync.
//
// PR 4's churn engine creates lagging replicas (partitioned minorities,
// loss-burst victims); the sync subsystem (sync/syncer.h) is what brings
// them back. This bench makes recovery itself the measured axis: it
// sweeps protocol x churn scenario x sync_batch and records
//
//   recovery_ms     heal-to-caught-up latency (RecoveryProbe: time from
//                   the healing churn event until every lagging honest
//                   replica has committed up to the height the rest of
//                   the cluster held at the heal)
//   sync_requests / sync_blocks / sync_bytes
//                   the fetch traffic that recovery cost
//
// plus the usual whole-run throughput timeline per cell (the stall and
// the catch-up spike are visible per bucket, exactly as in fig15b).
//
// Scenarios (the recovery recipes of docs/SCENARIOS.md):
//
//   partition    2|2 split at T1 healed at T2, under 2% ambient link
//                loss — the minority misses the majority's whole window
//                and must range-fetch it back through a lossy network
//   crash-heal   replica 3 is isolated by a partition at T1; the
//                partition heals at T2 and replica 1 crashes right
//                after — recovery must route around the dead peer
//                (timeout + rotation), not wedge on it
//   bursty-loss  a 90% loss burst on replica 3's links for [T1, T2);
//                the burst end is the healing moment
//   flaky-soak   a repeating loss burst (every= in the churn DSL):
//                every period strands replica 3 a little and the syncer
//                pulls it back — steady-state recovery churn
//
// Expected shape: sync_batch = 1 (the legacy one-block-per-round path)
// pays one round trip per missed block, so recovery grows with the
// outage length; batched sync (sync_batch = 8) collapses the same range
// into a handful of locator rounds and recovers several times faster,
// with the same sync_blocks but far fewer sync_requests.

#include "bench_common.h"
#include "client/workload.h"
#include "core/churn.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  // --duration S compresses the scenario to an 8S horizon (smoke runs).
  const double horizon = args.duration > 0 ? std::max(2.0, 8 * args.duration)
                                           : (args.full ? 20.0 : 10.0);
  const double t1 = horizon / 4.0;  // incident start
  const double t2 = horizon / 2.0;  // heal
  const double bucket = horizon / 32.0;

  bench::print_header(
      "Figure 17 — post-churn recovery latency under batched chain sync",
      "incident [" + harness::TextTable::num(t1, 1) + "s, " +
          harness::TextTable::num(t2, 1) +
          "s); recovery_ms = heal -> caught-up");

  const auto fmt = [](double at, const char* body) {
    return harness::TextTable::num(at, 3) + "s" + body;
  };
  struct Scenario {
    const char* tag;
    std::function<void(core::Config&)> apply;
  };
  const std::vector<Scenario> scenarios = {
      {"partition",
       [&](core::Config& cfg) {
         // 3|1: the majority keeps its quorum and commits through the
         // window; replica 3 must range-fetch the window back after heal,
         // through 2% ambient loss.
         cfg.link_loss = 0.02;
         cfg.churn = "partition@" + fmt(t1, ":groups=0-1-2|3;heal@") +
                     harness::TextTable::num(t2, 3) + "s";
       }},
      {"crash-heal",
       [&](core::Config& cfg) {
         // Replica 3 misses the window alone; replica 1 dies right after
         // the heal, so any fetch routed at it must time out and rotate.
         cfg.churn = "partition@" + fmt(t1, ":groups=0-1-2|3;heal@") +
                     fmt(t2, ";crash@") +
                     harness::TextTable::num(t2 + bucket, 3) +
                     "s:replica=1";
       }},
      {"bursty-loss",
       [&](core::Config& cfg) {
         cfg.churn = "burst@" + fmt(t1, ":replica=3:loss=0.9:for=") +
                     harness::TextTable::num(t2 - t1, 3) + "s";
       }},
      {"flaky-soak",
       [&](core::Config& cfg) {
         cfg.churn = "burst@" +
                     fmt(t1, ":replica=3:loss=0.85:for=") +
                     harness::TextTable::num(bucket * 4, 3) + "s:every=" +
                     harness::TextTable::num((t2 - t1), 3) + "s";
       }},
  };
  const std::vector<std::uint32_t> batches = {1, 8};

  std::vector<harness::RunSpec> grid;
  for (const Scenario& scenario : scenarios) {
    for (const std::string& protocol : bench::evaluated_protocols()) {
      for (std::uint32_t batch : batches) {
        core::Config cfg;
        cfg.protocol = protocol;
        cfg.n_replicas = 4;
        cfg.bsize = 400;
        cfg.memsize = 200000;
        cfg.timeout = sim::milliseconds(100);
        cfg.seed = bench::seed_or(args, 177);
        // Tight fetch timer so lost requests retry quickly relative to
        // the horizon; the sweep axis is the batch size.
        cfg.sync_batch = batch;
        cfg.sync_timeout = sim::milliseconds(100);
        cfg.sync_retries = 4;
        scenario.apply(cfg);

        client::WorkloadConfig wl;
        wl.mode = client::LoadMode::kOpenLoop;
        wl.arrival_rate_tps = 10000;

        auto spec = harness::timeline_spec(cfg, wl, horizon, bucket,
                                           /*fluct_start_s=*/-1,
                                           /*fluct_end_s=*/-1, 0, 0,
                                           /*crash_at_s=*/-1, 0);
        spec.offered = batch;  // sweep label: the batch size
        grid.push_back(std::move(spec));
      }
    }
  }

  bench::Reporter reporter(args, "fig17_recovery");
  const std::size_t protocols = bench::evaluated_protocols().size();
  const std::size_t per_scenario = protocols * batches.size();
  const auto series_of = [&](std::size_t index) {
    const std::size_t scenario = index / per_scenario;
    const std::size_t protocol = (index % per_scenario) / batches.size();
    const std::size_t batch = index % batches.size();
    return std::string(scenarios[scenario].tag) + "-" +
           bench::short_name(bench::evaluated_protocols()[protocol]) + "-b" +
           std::to_string(batches[batch]);
  };
  const auto outputs = reporter.run_full("fig17_recovery", grid, series_of);

  harness::TextTable table({"scenario", "series", "batch", "recovery(ms)",
                            "sync_req", "sync_blocks", "sync_KB",
                            "thr(KTx/s)", "timeouts", "safety"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!outputs[i]) continue;  // another shard's cell
    const harness::RunResult& r = outputs[i]->result;
    table.add_row({scenarios[i / per_scenario].tag, series_of(i),
                   std::to_string(batches[i % batches.size()]),
                   harness::TextTable::num(r.recovery_ms, 1),
                   std::to_string(r.sync_requests),
                   std::to_string(r.sync_blocks),
                   harness::TextTable::num(
                       static_cast<double>(r.sync_bytes) / 1e3, 1),
                   harness::TextTable::num(r.throughput_tps / 1e3, 1),
                   std::to_string(r.timeouts),
                   r.consistent ? "ok" : "VIOLATED"});
  }
  table.print(std::cout);
  std::cout << "\nresult: batched sync (b8) collapses the per-block round\n"
               "trips of the legacy path (b1) into a few locator rounds —\n"
               "fewer sync_requests for the same sync_blocks and a lower\n"
               "recovery_ms, retries routing around loss and dead peers.\n";
  reporter.finish();
  return 0;
}
