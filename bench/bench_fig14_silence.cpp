// Figure 14: the silence attack — 32 replicas, 0..10 silent leaders,
// view timeout 50 ms (chosen so only the attack triggers timeouts).
// Expected shapes: HS and 2CHS share the same throughput/CGR pattern (the
// withheld QC costs the tail block either way); SL's CGR stays 1 (votes
// are broadcast, nothing can be withheld) and it degrades gracefully,
// overtaking the others on latency once byz >= 4; BI grows faster than
// under forking for everyone.

#include "bench_common.h"
#include "client/workload.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  bench::print_header(
      "Figure 14 — silence attack (32 replicas, byz 0..10, timeout 50 ms)",
      "CGR = committed blocks / appended blocks; CGRv = per view (Eq. 1)");

  std::vector<std::uint32_t> byz_counts = {0, 2, 4, 6, 8, 10};
  if (args.full) byz_counts = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

  harness::RunOptions opts;
  opts.warmup_s = 0.5;
  opts.measure_s = args.full ? 6.0 : 2.5;

  harness::TextTable table({"series", "byz", "thr(KTx/s)", "lat(ms)", "CGR",
                            "CGRv", "BI", "timeouts", "safety"});
  for (const std::string& protocol : bench::evaluated_protocols()) {
    for (std::uint32_t byz : byz_counts) {
      core::Config cfg;
      cfg.protocol = protocol;
      cfg.n_replicas = 32;
      cfg.byz_no = byz;
      cfg.strategy = "silence";
      cfg.bsize = 400;
      cfg.psize = 128;
      cfg.memsize = 200000;
      cfg.timeout = sim::milliseconds(50);
      cfg.seed = 14;

      client::WorkloadConfig wl;
      wl.concurrency = 512;
      wl.session_timeout = sim::milliseconds(300);

      const auto r = harness::run_experiment(cfg, wl, opts);
      table.add_row({std::string(bench::short_name(protocol)),
                     std::to_string(byz),
                     harness::TextTable::num(r.throughput_tps / 1e3, 1),
                     harness::TextTable::num(r.latency_ms_mean, 1),
                     harness::TextTable::num(r.cgr_per_block, 2),
                     harness::TextTable::num(r.cgr_per_view, 2),
                     harness::TextTable::num(r.block_interval, 1),
                     std::to_string(r.timeouts),
                     r.consistent ? "ok" : "VIOLATED"});
    }
  }
  table.print(std::cout);
  std::cout << "\nresult: HS/2CHS share the CGR & throughput pattern; SL\n"
               "keeps CGR = 1 and degrades gracefully; BI grows faster than\n"
               "under forking (paper Fig. 14).\n";
  return 0;
}
