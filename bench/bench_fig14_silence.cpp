// Figure 14: the silence attack — 32 replicas, 0..10 silent leaders,
// view timeout 50 ms (chosen so only the attack triggers timeouts).
// Expected shapes: HS and 2CHS share the same throughput/CGR pattern (the
// withheld QC costs the tail block either way); SL's CGR stays 1 (votes
// are broadcast, nothing can be withheld) and it degrades gracefully,
// overtaking the others on latency once byz >= 4; BI grows faster than
// under forking for everyone.
//
// One RunSpec per (protocol, byz) cell, fanned across the ParallelRunner.

#include "bench_common.h"
#include "client/workload.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  bench::print_header(
      "Figure 14 — silence attack (32 replicas, byz 0..10, timeout 50 ms)",
      "CGR = committed blocks / appended blocks; CGRv = per view (Eq. 1)");

  std::vector<std::uint32_t> byz_counts = {0, 2, 4, 6, 8, 10};
  if (args.full) byz_counts = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

  harness::RunOptions opts;
  opts.warmup_s = 0.5;
  opts.measure_s = args.full ? 6.0 : 2.5;

  std::vector<harness::RunSpec> grid;
  for (const std::string& protocol : bench::evaluated_protocols()) {
    for (std::uint32_t byz : byz_counts) {
      harness::RunSpec spec;
      spec.cfg.protocol = protocol;
      spec.cfg.n_replicas = 32;
      spec.cfg.byz_no = byz;
      spec.cfg.strategy = "silence";
      spec.cfg.bsize = 400;
      spec.cfg.psize = 128;
      spec.cfg.memsize = 200000;
      spec.cfg.timeout = sim::milliseconds(50);
      spec.cfg.seed = bench::seed_or(args, 14);
      spec.workload.concurrency = 512;
      spec.workload.session_timeout = sim::milliseconds(300);
      spec.opts = opts;
      spec.offered = byz;
      grid.push_back(std::move(spec));
    }
  }

  bench::apply_duration(grid, args);
  bench::Reporter reporter(args, "fig14_silence");
  const std::size_t per_series = byz_counts.size();
  const auto series_of = [&](std::size_t index) {
    return std::string(
        bench::short_name(bench::evaluated_protocols()[index / per_series]));
  };
  const auto aggs = reporter.run("fig14_silence", grid, series_of);

  harness::TextTable table({"series", "byz", "thr(KTx/s)", "lat(ms)", "CGR",
                            "CGRv", "BI", "timeouts", "safety"});
  std::size_t i = 0;
  for (const std::string& protocol : bench::evaluated_protocols()) {
    for (std::uint32_t byz : byz_counts) {
      const std::size_t index = i++;
      if (!aggs[index]) continue;  // another shard's cell
      const harness::Aggregate& a = *aggs[index];
      const double timeouts = bench::mean_of(
          a, [](const harness::RunResult& r) { return r.timeouts; });
      table.add_row({std::string(bench::short_name(protocol)),
                     std::to_string(byz),
                     bench::ci_cell(a.throughput_tps, 1e-3, 1),
                     bench::ci_cell(a.latency_ms_mean, 1.0, 1),
                     bench::ci_cell(a.cgr_per_block, 1.0, 2),
                     bench::ci_cell(a.cgr_per_view, 1.0, 2),
                     bench::ci_cell(a.block_interval, 1.0, 1),
                     harness::TextTable::num(timeouts, 0),
                     a.all_consistent ? "ok" : "VIOLATED"});
    }
  }
  table.print(std::cout);
  std::cout << "\nresult: HS/2CHS share the CGR & throughput pattern; SL\n"
               "keeps CGR = 1 and degrades gracefully; BI grows faster than\n"
               "under forking (paper Fig. 14).\n";
  reporter.finish();
  return 0;
}
