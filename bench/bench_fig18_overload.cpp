// Figure 18 (extension): the overload regime. Open-loop Poisson load is
// swept PAST saturation against a bounded mempool, exposing what the
// closed-loop figures cannot: goodput plateaus (or collapses) while
// offered load keeps rising, exact p99/p999 tail latencies explode, and
// the mempool's admission policy decides who absorbs the overflow.
//
//   fig18_saturation — protocol x λ ladder (fractions of the analytic
//       saturation throughput, 0.25x .. 3x): goodput-vs-offered curves
//       with histogram-exact p50/p99/p999 columns.
//   fig18_admission  — admission policy (drop | backoff:5 | priority:0.1)
//       x λ ladder at and past the knee, HotStuff only: how the
//       backpressure strategy shifts goodput, tails, and rejections.
//
// --full adds a 3-region WAN series per protocol to fig18_saturation and
// densifies both ladders. All quantile columns come from the merged
// log-scale histogram (util/histogram.h), so sharded runs reproduce them
// bit-identically.

#include "bench_common.h"
#include "client/workload.h"
#include "model/perf_model.h"
#include "util/histogram.h"

namespace {

/// Histogram-backed sweep row: offered vs goodput plus exact tails. The
/// quantiles come from the merge of every rep's histogram — the same fold
/// the persisted aggregate rows use — not from averaging per-rep quantiles.
void add_overload_row(bamboo::harness::TextTable& table,
                      const std::string& label, double lambda,
                      const bamboo::harness::Aggregate& agg) {
  using bamboo::harness::TextTable;
  bamboo::util::LatencyHistogram hist;
  for (const bamboo::harness::RunResult& r : agg.results) {
    if (!r.latency_hist.empty()) {
      hist.merge(bamboo::util::LatencyHistogram::decode(r.latency_hist));
    }
  }
  const double offered = bamboo::bench::mean_of(
      agg, [](const bamboo::harness::RunResult& r) { return r.offered_tps; });
  const double rejected = bamboo::bench::mean_of(
      agg, [](const bamboo::harness::RunResult& r) { return r.mem_rejected; });
  table.add_row({label, TextTable::num(lambda, 0),
                 TextTable::num(offered / 1e3, 1),
                 bamboo::bench::ci_cell(agg.throughput_tps, 1e-3, 1),
                 TextTable::num(hist.empty() ? 0 : hist.quantile(0.50), 1),
                 TextTable::num(hist.empty() ? 0 : hist.quantile(0.99), 1),
                 TextTable::num(hist.empty() ? 0 : hist.quantile(0.999), 1),
                 TextTable::num(rejected, 0),
                 agg.all_consistent ? "ok" : "VIOLATED"});
}

const std::vector<std::string>& overload_headers() {
  static const std::vector<std::string> h = {
      "series",   "lambda(Tx/s)", "offered(K/s)", "goodput(K/s)", "p50(ms)",
      "p99(ms)",  "p999(ms)",     "rejected",     "safety"};
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  bench::print_header(
      "Figure 18 — open-loop overload & mempool backpressure",
      "λ swept past analytic saturation; bounded mempool (memsize 4000); "
      "1M-client open-loop population");

  std::vector<double> load_fractions = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0};
  if (args.full) {
    load_fractions = {0.25, 0.5, 0.75, 0.9, 1.0, 1.25, 1.5, 2.0, 3.0, 4.0};
  }
  std::vector<double> admission_fractions = {1.0, 1.5, 2.0, 3.0};
  if (args.full) admission_fractions = {0.75, 1.0, 1.25, 1.5, 2.0, 3.0, 4.0};

  harness::RunOptions opts;
  opts.warmup_s = 0.3;
  opts.measure_s = args.full ? 3.0 : 1.0;

  const auto base_config = [&](const std::string& protocol) {
    core::Config cfg;
    cfg.protocol = protocol;
    cfg.bsize = 400;
    // Bounded pool: small enough that past-saturation load overflows it
    // within the window, so admission policy is load-bearing.
    cfg.memsize = 4000;
    cfg.seed = bench::seed_or(args, 18);
    return cfg;
  };
  const auto base_workload = [] {
    client::WorkloadConfig wl;
    wl.mode = client::LoadMode::kOpenLoop;
    // One aggregate arrival process standing in for a million logical
    // clients; only session ids are materialized.
    wl.client_population = 1'000'000;
    return wl;
  };
  const auto rates_of = [](const core::Config& cfg,
                           const std::vector<double>& fractions) {
    const model::PerfModel pm(cfg);
    const double saturation = pm.saturation_tps();
    std::vector<double> rates;
    rates.reserve(fractions.size());
    for (double f : fractions) rates.push_back(f * saturation);
    return rates;
  };

  // --- artifact 1: protocol x offered-load ladder ------------------------
  std::vector<harness::RunSpec> sat_grid;
  std::vector<bench::SeriesSlice> sat_series;
  for (const std::string& protocol : bench::evaluated_protocols()) {
    core::Config cfg = base_config(protocol);
    bench::append_series(sat_grid, sat_series, bench::short_name(protocol),
                         harness::open_loop_specs(
                             cfg, base_workload(),
                             rates_of(cfg, load_fractions), opts));
    if (args.full) {
      cfg.topology = "wan:3:40";
      bench::append_series(
          sat_grid, sat_series,
          std::string(bench::short_name(protocol)) + "-wan",
          harness::open_loop_specs(cfg, base_workload(),
                                   rates_of(cfg, load_fractions), opts));
    }
  }

  // --- artifact 2: admission policy x offered load (HotStuff) -----------
  const std::vector<std::string> policies = {"drop", "backoff:5",
                                             "priority:0.1"};
  std::vector<harness::RunSpec> adm_grid;
  std::vector<bench::SeriesSlice> adm_series;
  for (const std::string& policy : policies) {
    core::Config cfg = base_config("hotstuff");
    cfg.admission = policy;
    bench::append_series(adm_grid, adm_series, policy,
                         harness::open_loop_specs(
                             cfg, base_workload(),
                             rates_of(cfg, admission_fractions), opts));
  }

  bench::apply_duration(sat_grid, args);
  bench::apply_duration(adm_grid, args);
  bench::Reporter reporter(args, "fig18_overload");

  const auto sat_aggs =
      reporter.run("fig18_saturation", sat_grid, bench::series_labels(sat_series));
  const auto adm_aggs =
      reporter.run("fig18_admission", adm_grid, bench::series_labels(adm_series));

  std::cout << "--- saturation: goodput & tails vs offered load ---\n";
  harness::TextTable sat_table(overload_headers());
  for (const bench::SeriesSlice& s : sat_series) {
    for (std::size_t i = 0; i < s.count; ++i) {
      if (!sat_aggs[s.begin + i]) continue;  // another shard's point
      add_overload_row(sat_table, s.label, sat_grid[s.begin + i].offered,
                       *sat_aggs[s.begin + i]);
    }
  }
  sat_table.print(std::cout);

  std::cout << "\n--- admission policy under overload (HotStuff) ---\n";
  harness::TextTable adm_table(overload_headers());
  for (const bench::SeriesSlice& s : adm_series) {
    for (std::size_t i = 0; i < s.count; ++i) {
      if (!adm_aggs[s.begin + i]) continue;
      add_overload_row(adm_table, s.label, adm_grid[s.begin + i].offered,
                       *adm_aggs[s.begin + i]);
    }
  }
  adm_table.print(std::cout);

  std::cout
      << "\nresult: goodput tracks offered load up to the saturation knee,\n"
         "then plateaus while offered keeps rising; histogram-exact p99 and\n"
         "p999 explode past the knee, and the mempool starts rejecting —\n"
         "drop sheds load cheapest, backoff trades rejections for client\n"
         "retry latency, priority reserves recycle headroom.\n";
  reporter.finish();
  return 0;
}
