// Figure 8: analytic model vs Bamboo implementation. Four network-size /
// block-size configurations (4/100, 8/100, 4/400, 8/400), three protocols,
// open-loop Poisson load swept toward saturation. For every point we print
// the measured throughput and latency next to the model's latency
// prediction at that arrival rate. The validation criterion is that the
// curves overlay: same latency floor region and the same saturation knee.
//
// All 12 λ-ladders (4 setups x 3 protocols) are built as one RunSpec grid
// and executed through the ParallelRunner in a single submission.

#include "bench_common.h"
#include "client/workload.h"
#include "model/perf_model.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  bench::print_header(
      "Figure 8 — model vs implementation",
      "configs: replicas/bsize in {4,8} x {100,400}; protocols HS, 2CHS, SL");

  struct Setup {
    std::uint32_t n;
    std::uint32_t bsize;
  };
  const std::vector<Setup> setups = {{4, 100}, {8, 100}, {4, 400}, {8, 400}};
  std::vector<double> load_fractions = {0.2, 0.4, 0.6, 0.8, 0.9};
  if (args.full) load_fractions.push_back(0.95);

  harness::RunOptions opts;
  opts.warmup_s = 0.3;
  opts.measure_s = args.full ? 3.0 : 1.0;

  struct Ladder {
    double saturation = 0;
    std::size_t begin = 0;
    std::size_t count = 0;
  };
  std::vector<harness::RunSpec> grid;
  std::vector<Ladder> ladders;  // setup-major, protocol-minor

  for (const Setup& setup : setups) {
    for (const std::string& protocol : bench::evaluated_protocols()) {
      core::Config cfg;
      cfg.protocol = protocol;
      cfg.n_replicas = setup.n;
      cfg.bsize = setup.bsize;
      cfg.memsize = 200000;
      cfg.seed = bench::seed_or(args, 88);

      const model::PerfModel pm(cfg);
      const double saturation = pm.saturation_tps();

      std::vector<double> rates;
      rates.reserve(load_fractions.size());
      for (double f : load_fractions) rates.push_back(f * saturation);

      client::WorkloadConfig wl;
      wl.mode = client::LoadMode::kOpenLoop;
      auto specs = harness::open_loop_specs(cfg, wl, rates, opts);
      ladders.push_back(Ladder{saturation, grid.size(), specs.size()});
      for (auto& spec : specs) grid.push_back(std::move(spec));
    }
  }

  bench::apply_duration(grid, args);
  bench::Reporter reporter(args, "fig08_model");
  const auto series_of = [&](std::size_t index) {
    const std::size_t protocols = bench::evaluated_protocols().size();
    for (std::size_t li = 0; li < ladders.size(); ++li) {
      const Ladder& ladder = ladders[li];
      if (index >= ladder.begin && index < ladder.begin + ladder.count) {
        return std::string(
            bench::short_name(bench::evaluated_protocols()[li % protocols]));
      }
    }
    return std::string("?");
  };
  const auto aggs = reporter.run("fig08_model", grid, series_of);

  std::size_t ladder_index = 0;
  for (const Setup& setup : setups) {
    std::cout << "--- " << setup.n << " replicas, block size " << setup.bsize
              << " ---\n";
    harness::TextTable table({"series", "lambda(Tx/s)", "thr(KTx/s)",
                              "impl lat(ms)", "model lat(ms)", "ratio"});
    for (const std::string& protocol : bench::evaluated_protocols()) {
      const Ladder& ladder = ladders[ladder_index++];
      // Predict from the exact config that was measured, so the overlay
      // cannot drift if the grid-building loop changes.
      const model::PerfModel pm(grid[ladder.begin].cfg);

      for (std::size_t i = 0; i < ladder.count; ++i) {
        const auto& spec = grid[ladder.begin + i];
        if (!aggs[ladder.begin + i]) continue;  // another shard's point
        const harness::Aggregate& a = *aggs[ladder.begin + i];
        const double predicted = pm.latency_ms(spec.offered);
        const double measured = a.latency_ms_mean.mean();
        table.add_row(
            {bench::short_name(protocol),
             harness::TextTable::num(spec.offered, 0),
             bench::ci_cell(a.throughput_tps, 1e-3, 1),
             bench::ci_cell(a.latency_ms_mean, 1.0, 1),
             harness::TextTable::num(predicted, 1),
             harness::TextTable::num(
                 measured > 0 ? predicted / measured : 0.0, 2)});
      }
      table.add_row({bench::short_name(protocol), "saturation ->",
                     harness::TextTable::num(ladder.saturation / 1e3, 1), "",
                     "", ""});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "result: model and implementation share the latency floor\n"
               "and the saturation knee per configuration (paper Fig. 8).\n";
  reporter.finish();
  return 0;
}
