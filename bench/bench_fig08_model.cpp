// Figure 8: analytic model vs Bamboo implementation. Four network-size /
// block-size configurations (4/100, 8/100, 4/400, 8/400), three protocols,
// open-loop Poisson load swept toward saturation. For every point we print
// the measured throughput and latency next to the model's latency
// prediction at that arrival rate. The validation criterion is that the
// curves overlay: same latency floor region and the same saturation knee.

#include "bench_common.h"
#include "client/workload.h"
#include "model/perf_model.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  bench::print_header(
      "Figure 8 — model vs implementation",
      "configs: replicas/bsize in {4,8} x {100,400}; protocols HS, 2CHS, SL");

  struct Setup {
    std::uint32_t n;
    std::uint32_t bsize;
  };
  const std::vector<Setup> setups = {{4, 100}, {8, 100}, {4, 400}, {8, 400}};
  std::vector<double> load_fractions = {0.2, 0.4, 0.6, 0.8, 0.9};
  if (args.full) load_fractions.push_back(0.95);

  harness::RunOptions opts;
  opts.warmup_s = 0.3;
  opts.measure_s = args.full ? 3.0 : 1.0;

  for (const Setup& setup : setups) {
    std::cout << "--- " << setup.n << " replicas, block size " << setup.bsize
              << " ---\n";
    harness::TextTable table({"series", "lambda(Tx/s)", "thr(KTx/s)",
                              "impl lat(ms)", "model lat(ms)", "ratio"});
    for (const std::string& protocol : bench::evaluated_protocols()) {
      core::Config cfg;
      cfg.protocol = protocol;
      cfg.n_replicas = setup.n;
      cfg.bsize = setup.bsize;
      cfg.memsize = 200000;
      cfg.seed = 88;

      const model::PerfModel pm(cfg);
      const double saturation = pm.saturation_tps();

      std::vector<double> rates;
      rates.reserve(load_fractions.size());
      for (double f : load_fractions) rates.push_back(f * saturation);

      client::WorkloadConfig wl;
      wl.mode = client::LoadMode::kOpenLoop;
      const auto points = harness::sweep_open_loop(cfg, wl, rates, opts);
      for (const auto& p : points) {
        const double predicted = pm.latency_ms(p.offered);
        const double measured = p.result.latency_ms_mean;
        table.add_row(
            {bench::short_name(protocol),
             harness::TextTable::num(p.offered, 0),
             harness::TextTable::num(p.result.throughput_tps / 1e3, 1),
             harness::TextTable::num(measured, 1),
             harness::TextTable::num(predicted, 1),
             harness::TextTable::num(
                 measured > 0 ? predicted / measured : 0.0, 2)});
      }
      table.add_row({bench::short_name(protocol), "saturation ->",
                     harness::TextTable::num(saturation / 1e3, 1), "", "",
                     ""});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "result: model and implementation share the latency floor\n"
               "and the saturation knee per configuration (paper Fig. 8).\n";
  return 0;
}
