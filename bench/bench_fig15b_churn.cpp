// Figure 15b (extension): responsiveness under STAGED network churn.
//
// The paper's Fig. 15 injects one global fluctuation window and one
// crash. Real WAN incidents are staged — individual links degrade on a
// schedule, loss arrives in bursts, regions partition and heal — and
// "Unraveling Responsiveness of Chained BFT Consensus with Network
// Delay" (PAPERS.md) shows exactly these time-varying patterns separate
// optimistically-responsive protocols from the rest. This bench sweeps
// protocol x churn scenario and records throughput timelines:
//
//   baseline        no churn (reference)
//   leader-degrade  leader 0's OUTBOUND links +40 ms at T1, restored at T2
//   partition       2|2 split at T1 (no side has a quorum), healed at T2
//   loss-burst      90% loss on every link of replica 3 for the window
//   bursty-loss     Gilbert-Elliott channel on all links the whole run
//   staged          the compound incident: link degrade, then a
//                   partition on top, heal, restore (the ISSUE's example)
//
// Expected shapes: the partition stalls every protocol flat until heal
// (4 replicas, quorum 3); leader-degrade hurts chained protocols on the
// degraded leader's views and recovers instantly at restore; loss bursts
// and Gilbert-Elliott dent throughput without stalling; the staged
// scenario composes the partition stall inside the degrade window.
//
// Every (scenario x protocol) cell is one timeline RunSpec executed
// through the ParallelRunner; timelines persist as per-bucket "timeline"
// records that survive bench_merge (smoke_shard_merge_fig15b).

#include "bench_common.h"
#include "client/workload.h"
#include "core/churn.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  // --duration S compresses the scenario to an 8S horizon (smoke runs).
  const double horizon = args.duration > 0 ? std::max(2.0, 8 * args.duration)
                                           : (args.full ? 24.0 : 12.0);
  const double t1 = horizon / 4.0;  // incident start
  const double t2 = horizon / 2.0;  // incident end / heal
  const double bucket = horizon / 32.0;

  bench::print_header(
      "Figure 15b — responsiveness under staged network churn",
      "incident window [" + harness::TextTable::num(t1, 1) + "s, " +
          harness::TextTable::num(t2, 1) + "s); churn DSL in provenance");

  struct Scenario {
    const char* tag;
    std::function<void(core::Config&)> apply;
  };
  const auto dsl = [](core::ChurnSchedule s) { return core::format_churn(s); };
  const auto event = [](core::ChurnKind kind, double at) {
    core::ChurnEvent ev;
    ev.kind = kind;
    ev.at_s = at;
    return ev;
  };
  const auto leader_degrade = [&](double at, double extra_ms) {
    auto ev = event(core::ChurnKind::kLinkDegrade, at);
    ev.target = core::ChurnTarget::kLeader;
    ev.extra_ms = extra_ms;
    return ev;
  };
  const auto leader_restore = [&](double at) {
    auto ev = event(core::ChurnKind::kLinkRestore, at);
    ev.target = core::ChurnTarget::kLeader;
    return ev;
  };
  const auto split22 = [&](double at) {
    auto ev = event(core::ChurnKind::kPartitionStart, at);
    ev.groups = {{0, 1}, {2, 3}};
    return ev;
  };

  const std::vector<Scenario> scenarios = {
      {"baseline", [](core::Config&) {}},
      {"leader-degrade",
       [&](core::Config& cfg) {
         cfg.churn = dsl({leader_degrade(t1, 40), leader_restore(t2)});
       }},
      {"partition",
       [&](core::Config& cfg) {
         cfg.churn =
             dsl({split22(t1), event(core::ChurnKind::kPartitionHeal, t2)});
       }},
      {"loss-burst",
       [&](core::Config& cfg) {
         auto ev = event(core::ChurnKind::kLossBurst, t1);
         ev.target = core::ChurnTarget::kReplica;
         ev.a = 3;
         ev.loss = 0.9;
         ev.for_s = t2 - t1;
         cfg.churn = dsl({ev});
       }},
      {"bursty-loss",
       [](core::Config& cfg) {
         // Gilbert-Elliott on every link: stationary loss p*h/(p+r) ~ 5.6%
         // arriving in mean-1/r = 3.3-message bursts.
         cfg.ge_p = 0.02;
         cfg.ge_r = 0.3;
         cfg.ge_loss_bad = 0.9;
       }},
      {"staged",
       [&](core::Config& cfg) {
         // The compound incident of the churn-DSL reference: a link pair
         // degrades, a partition lands on top, heals, then full restore.
         auto degrade = event(core::ChurnKind::kLinkDegrade, t1);
         degrade.target = core::ChurnTarget::kLink;
         degrade.a = 0;
         degrade.b = 3;
         degrade.extra_ms = 40;
         cfg.churn = dsl({degrade, split22((t1 + t2) / 2),
                          event(core::ChurnKind::kPartitionHeal, t2),
                          event(core::ChurnKind::kLinkRestore, t2)});
       }},
  };

  std::vector<harness::RunSpec> grid;
  for (const Scenario& scenario : scenarios) {
    for (const std::string& protocol : bench::evaluated_protocols()) {
      core::Config cfg;
      cfg.protocol = protocol;
      cfg.n_replicas = 4;
      cfg.bsize = 400;
      cfg.memsize = 200000;
      cfg.timeout = sim::milliseconds(100);
      cfg.seed = bench::seed_or(args, 155);
      scenario.apply(cfg);

      // 10 kTx/s offered: enough headroom to see every dent, low enough
      // that the loss scenarios' backlog doesn't dominate the runtime.
      client::WorkloadConfig wl;
      wl.mode = client::LoadMode::kOpenLoop;
      wl.arrival_rate_tps = 10000;

      grid.push_back(harness::timeline_spec(cfg, wl, horizon, bucket,
                                            /*fluct_start_s=*/-1,
                                            /*fluct_end_s=*/-1, 0, 0,
                                            /*crash_at_s=*/-1, 0));
    }
  }

  bench::Reporter reporter(args, "fig15b_churn");
  const std::size_t protocols = bench::evaluated_protocols().size();
  const auto series_of = [&](std::size_t index) {
    return std::string(scenarios[index / protocols].tag) + "-" +
           bench::short_name(bench::evaluated_protocols()[index % protocols]);
  };
  const auto outputs = reporter.run_full("fig15b_churn", grid, series_of);

  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    harness::TextTable table(
        {"t(s)", "HS(KTx/s)", "2CHS(KTx/s)", "SL(KTx/s)"});
    const std::size_t base = si * protocols;
    std::size_t buckets = 0;
    for (std::size_t p = 0; p < protocols; ++p) {
      if (outputs[base + p]) {
        buckets = std::max(buckets, outputs[base + p]->tx_per_s.size());
      }
    }
    for (std::size_t i = 0; i < buckets; ++i) {
      std::vector<std::string> row;
      row.push_back(harness::TextTable::num(i * bucket, 1));
      for (std::size_t p = 0; p < protocols; ++p) {
        if (!outputs[base + p]) {
          row.push_back("-");  // another shard's timeline
          continue;
        }
        const auto& s = outputs[base + p]->tx_per_s;
        row.push_back(
            harness::TextTable::num((i < s.size() ? s[i] : 0.0) / 1e3, 1));
      }
      table.add_row(std::move(row));
    }
    std::cout << "--- scenario " << scenarios[si].tag << " ---\n";
    table.print(std::cout);
    std::cout << "\n";
  }

  harness::TextTable summary({"scenario", "series", "thr(KTx/s)", "lat(ms)",
                              "timeouts", "committed", "safety"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!outputs[i]) continue;
    const harness::RunResult& r = outputs[i]->result;
    summary.add_row({scenarios[i / protocols].tag, series_of(i),
                     harness::TextTable::num(r.throughput_tps / 1e3, 1),
                     harness::TextTable::num(r.latency_ms_mean, 1),
                     std::to_string(r.timeouts),
                     std::to_string(r.blocks_committed),
                     r.consistent ? "ok" : "VIOLATED"});
  }
  std::cout << "--- whole-run summary ---\n";
  summary.print(std::cout);
  std::cout << "\nresult: the 2|2 partition stalls every protocol flat until\n"
               "heal; leader-degrade dents throughput only on the degraded\n"
               "leader's views and snaps back at restore; loss bursts and\n"
               "Gilbert-Elliott degrade gracefully without stalling.\n";
  reporter.finish();
  return 0;
}
