// Figure 17b (extension): chain-sync vs snapshot state transfer as the
// outage gap grows.
//
// PR 10's durable-ledger subsystem adds checkpoint state transfer: a
// laggard whose gap to the cluster head exceeds cfg.snapshot_gap fetches
// one snapshot (the committed hash chain + a certified anchor QC) instead
// of range-fetching every missed block. This bench makes the trade-off
// the measured axis: it sweeps protocol x transfer mode x outage window
// and records
//
//   recovery_ms       heal-to-caught-up latency (RecoveryProbe, as fig17)
//   snapshot_bytes / snapshot_chunks / snapshots_installed
//                     the state-transfer traffic the snapshot path cost
//   sync_requests / sync_blocks
//                     the per-block fetch traffic the chain path cost
//
// Scenario: a 3|1 partition strands replica 3 at T1 and heals after a
// window W; the majority keeps committing through the window, so the gap
// the laggard must close is proportional to W. "chain" mode
// (snapshot_gap = 0) replays the gap block by block through batched
// range fetches; "snapshot" mode (snapshot_gap = 16) jumps the committed
// prefix in one certified transfer and chain-syncs only the tail beyond
// the anchor.
//
// Expected shape: below the snapshot_gap threshold the two modes are
// identical (the syncer falls back to chain-sync). Beyond it there is a
// crossover: chain-sync recovery grows with the gap (more blocks, more
// locator rounds), while the snapshot path stays near-flat — one request,
// a few chunks, one QC verification — so for long outages the snapshot
// column wins on recovery_ms and total bytes moved.

#include "bench_common.h"
#include "client/workload.h"
#include "core/churn.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  // --duration S compresses the scenario to an 8S horizon (smoke runs).
  const double horizon = args.duration > 0 ? std::max(2.0, 8 * args.duration)
                                           : (args.full ? 24.0 : 12.0);
  const double t1 = horizon / 8.0;  // outage start
  const double bucket = horizon / 32.0;
  // The gap axis: three outage windows, the longest committing a gap far
  // beyond the snapshot threshold.
  const std::vector<double> windows = {horizon / 24.0, horizon / 4.0,
                                       horizon * 5.0 / 12.0};

  bench::print_header(
      "Figure 17b — chain-sync vs snapshot state transfer vs outage gap",
      "3|1 partition at " + harness::TextTable::num(t1, 2) +
          "s healed after W; recovery_ms = heal -> caught-up");

  struct Mode {
    const char* tag;
    std::uint32_t snapshot_gap;  ///< 0 = chain-sync only
  };
  const std::vector<Mode> modes = {{"chain", 0}, {"snapshot", 16}};

  std::vector<harness::RunSpec> grid;
  for (double window : windows) {
    for (const std::string& protocol : bench::evaluated_protocols()) {
      for (const Mode& mode : modes) {
        core::Config cfg;
        cfg.protocol = protocol;
        cfg.n_replicas = 4;
        // A static leader inside the majority: under round-robin the
        // stranded replica keeps winning election every 4th view and the
        // majority all but stalls on its timeouts, leaving no gap for the
        // transfer modes to disagree over.
        cfg.election = "static:0";
        cfg.bsize = 400;
        cfg.memsize = 200000;
        cfg.timeout = sim::milliseconds(100);
        cfg.seed = bench::seed_or(args, 1017);
        cfg.sync_batch = 8;
        cfg.sync_timeout = sim::milliseconds(100);
        cfg.sync_retries = 4;
        cfg.snapshot_gap = mode.snapshot_gap;
        cfg.snapshot_chunk = 512;
        cfg.churn = "partition@" + harness::TextTable::num(t1, 3) +
                    "s:groups=0-1-2|3;heal@" +
                    harness::TextTable::num(t1 + window, 3) + "s";

        client::WorkloadConfig wl;
        wl.mode = client::LoadMode::kOpenLoop;
        wl.arrival_rate_tps = 10000;

        auto spec = harness::timeline_spec(cfg, wl, horizon, bucket,
                                           /*fluct_start_s=*/-1,
                                           /*fluct_end_s=*/-1, 0, 0,
                                           /*crash_at_s=*/-1, 0);
        spec.offered = window;  // sweep label: the outage window (s)
        grid.push_back(std::move(spec));
      }
    }
  }

  bench::Reporter reporter(args, "fig17b_snapshot");
  const std::size_t protocols = bench::evaluated_protocols().size();
  const std::size_t per_window = protocols * modes.size();
  const auto series_of = [&](std::size_t index) {
    const std::size_t protocol = (index % per_window) / modes.size();
    const std::size_t mode = index % modes.size();
    return std::string(bench::short_name(
               bench::evaluated_protocols()[protocol])) +
           "-" + modes[mode].tag;
  };
  const auto outputs = reporter.run_full("fig17b_snapshot", grid, series_of);

  harness::TextTable table({"window(s)", "series", "recovery(ms)", "snaps",
                            "snap_chunks", "snap_KB", "sync_req",
                            "sync_blocks", "thr(KTx/s)", "safety"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!outputs[i]) continue;  // another shard's cell
    const harness::RunResult& r = outputs[i]->result;
    table.add_row(
        {harness::TextTable::num(windows[i / per_window], 2), series_of(i),
         harness::TextTable::num(r.recovery_ms, 1),
         std::to_string(r.snapshots_installed),
         std::to_string(r.snapshot_chunks),
         harness::TextTable::num(static_cast<double>(r.snapshot_bytes) / 1e3,
                                 1),
         std::to_string(r.sync_requests), std::to_string(r.sync_blocks),
         harness::TextTable::num(r.throughput_tps / 1e3, 1),
         r.consistent ? "ok" : "VIOLATED"});
  }
  table.print(std::cout);

  // Per-protocol crossover summary: the first window where the snapshot
  // column's recovery beats chain-sync (only meaningful unsharded).
  if (!reporter.sharded()) {
    std::cout << "\ncrossover (snapshot recovery < chain recovery):\n";
    for (std::size_t p = 0; p < protocols; ++p) {
      const std::string name =
          bench::short_name(bench::evaluated_protocols()[p]);
      std::string at = "none observed";
      for (std::size_t w = 0; w < windows.size(); ++w) {
        const std::size_t base = w * per_window + p * modes.size();
        if (!outputs[base] || !outputs[base + 1]) continue;
        const double chain = outputs[base]->result.recovery_ms;
        const double snap = outputs[base + 1]->result.recovery_ms;
        if (snap > 0 && chain > 0 && snap < chain) {
          at = "window >= " + harness::TextTable::num(windows[w], 2) + "s (" +
               harness::TextTable::num(snap, 1) + "ms vs " +
               harness::TextTable::num(chain, 1) + "ms chain)";
          break;
        }
      }
      std::cout << "  " << name << ": " << at << "\n";
    }
  }

  std::cout << "\nresult: below the snapshot_gap threshold both modes run\n"
               "the identical chain-sync path; beyond it the certified\n"
               "snapshot replaces per-block range fetches with one anchor\n"
               "transfer, so recovery stays near-flat as the gap grows\n"
               "while chain-sync recovery keeps climbing.\n";
  reporter.finish();
  return 0;
}
