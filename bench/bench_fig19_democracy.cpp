// Figure 19 (extension): leadership democracy — who actually gets blocks
// committed. 16 replicas; every registered protocol family (including the
// multi-leader FnF-BFT under a width-4 election) crossed with adversarial
// scenarios: calm, the Fig. 13 forking attack, a targeted degrade that
// follows the current leader, and both at once. Reported per cell:
// chain quality (honest fraction of committed blocks), the largest single
// replica's commit share, and the Gini coefficient of per-replica commit
// counts (0 = perfectly even proposer representation).
//
// Expected shapes: single-leader rotation is even (Gini near the byz-only
// floor) until the forking attack deletes honest tail blocks; FnF-BFT's
// parallel slots keep certified early-slot blocks through view changes,
// so its chain quality degrades more slowly under the leader-targeted
// degrade than single-leader protocols whose whole view stalls.

#include "bench_common.h"
#include "client/workload.h"
#include "harness/experiment.h"

namespace {

struct Scenario {
  const char* label;
  std::uint32_t byz;
  const char* strategy;
  const char* churn;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  bench::print_header(
      "Figure 19 — leadership democracy (16 replicas, protocol x scenario)",
      "CQ = honest fraction of committed blocks; share-max = largest single"
      "\nreplica's commit share; Gini over per-replica commit counts"
      " (0 = even)");

  const std::vector<std::string> protocols = {
      "hotstuff", "2chs", "streamlet", "fasthotstuff", "fnfbft"};
  // The leader-follow degrade chases whoever currently leads — the
  // targeted attack SCENARIOS.md recipe 16 builds on.
  std::vector<Scenario> scenarios = {
      {"calm", 0, "silence", ""},
      {"fork", 4, "forking", ""},
      {"degrade", 0, "silence", "degrade@0.3s:leader=follow:+40ms"},
      {"fork+degrade", 4, "forking", "degrade@0.3s:leader=follow:+40ms"},
  };
  if (args.full) {
    scenarios.push_back({"fork-heavy", 5, "forking", ""});
    scenarios.push_back(
        {"degrade-heavy", 0, "silence", "degrade@0.3s:leader=follow:+90ms"});
  }

  harness::RunOptions opts;
  opts.warmup_s = 0.4;
  opts.measure_s = args.full ? 4.0 : 1.5;

  std::vector<harness::RunSpec> grid;
  for (const std::string& protocol : protocols) {
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      const Scenario& sc = scenarios[s];
      harness::RunSpec spec;
      spec.cfg.protocol = protocol;
      // FnF-BFT needs a multi-leader election; width 4, epoch 8 views so
      // a degraded set rotates out within the measurement window.
      spec.cfg.election = protocol == "fnfbft" ? "multi:4:8" : "roundrobin";
      spec.cfg.n_replicas = 16;
      spec.cfg.byz_no = sc.byz;
      spec.cfg.strategy = sc.strategy;
      spec.cfg.churn = sc.churn;
      spec.cfg.bsize = 400;
      spec.cfg.psize = 128;
      spec.cfg.memsize = 200000;
      spec.cfg.seed = bench::seed_or(args, 19);
      spec.workload.concurrency = 256;
      spec.workload.session_timeout = sim::milliseconds(300);
      spec.opts = opts;
      spec.offered = static_cast<double>(s);
      grid.push_back(std::move(spec));
    }
  }

  bench::apply_duration(grid, args);
  bench::Reporter reporter(args, "fig19_democracy");
  const std::size_t per_series = scenarios.size();
  const auto series_of = [&](std::size_t index) {
    return std::string(bench::short_name(protocols[index / per_series]));
  };
  const auto aggs = reporter.run("fig19_democracy", grid, series_of);

  harness::TextTable table({"series", "scenario", "thr(KTx/s)", "CQ",
                            "share-max", "gini", "commits", "views",
                            "safety"});
  std::size_t i = 0;
  for (const std::string& protocol : protocols) {
    for (const Scenario& sc : scenarios) {
      const std::size_t index = i++;
      if (!aggs[index]) continue;  // another shard's cell
      const harness::Aggregate& a = *aggs[index];
      // Pool the per-rep proposer counts and recompute the scalars from
      // the pooled map — the same fold the report aggregate row uses.
      std::map<types::NodeId, std::uint64_t> counts;
      for (const harness::RunResult& r : a.results) {
        for (const auto& [id, c] : harness::decode_commit_share(r.commit_share)) {
          counts[id] += c;
        }
      }
      const harness::DemocracyScalars dem =
          harness::democracy_scalars(counts, 16, sc.byz);
      const double commits = bench::mean_of(
          a, [](const harness::RunResult& r) { return r.blocks_committed; });
      const double views = bench::mean_of(
          a, [](const harness::RunResult& r) { return r.views; });
      table.add_row({std::string(bench::short_name(protocol)), sc.label,
                     bench::ci_cell(a.throughput_tps, 1e-3, 1),
                     harness::TextTable::num(dem.chain_quality, 3),
                     harness::TextTable::num(dem.commit_share_max, 3),
                     harness::TextTable::num(dem.proposer_gini, 3),
                     harness::TextTable::num(commits, 0),
                     harness::TextTable::num(views, 0),
                     a.all_consistent ? "ok" : "VIOLATED"});
    }
  }
  table.print(std::cout);
  std::cout << "\nresult: rotation keeps single-leader Gini at the byz-only\n"
               "floor until forking deletes honest tails; FnF-BFT's slot\n"
               "chains hold chain quality up under the leader-chasing\n"
               "degrade (certified early-slot blocks survive view changes).\n";
  reporter.finish();
  return 0;
}
