// Figure 10: throughput vs latency for transaction payload sizes 0, 128,
// and 1024 bytes (block size 400). Expected shapes: all protocols lose
// throughput as payloads grow (NIC bytes dominate); Streamlet is the most
// payload-sensitive (message echoing multiplies the bytes); the HS-vs-2CHS
// latency gap narrows at p1024 because transmission delay dominates the
// extra voting round.

#include "bench_common.h"
#include "client/workload.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  bench::print_header("Figure 10 — throughput vs latency by payload size",
                      "series <proto>-p<bytes>; block size 400");

  const std::vector<std::uint32_t> payloads = {0, 128, 1024};
  std::vector<std::uint32_t> ladder = {64, 256, 1024, 2048, 4096};
  if (args.full) ladder.push_back(8192);

  harness::RunOptions opts;
  opts.warmup_s = 0.3;
  opts.measure_s = args.full ? 2.0 : 0.8;

  harness::TextTable table(bench::sweep_headers("clients"));
  for (const std::string& protocol : bench::evaluated_protocols()) {
    for (std::uint32_t psize : payloads) {
      core::Config cfg;
      cfg.protocol = protocol;
      cfg.n_replicas = 4;
      cfg.bsize = 400;
      cfg.psize = psize;
      cfg.memsize = 200000;
      cfg.seed = 10;
      client::WorkloadConfig wl;
      const auto points = harness::sweep_closed_loop(cfg, wl, ladder, opts);
      const std::string label =
          std::string(bench::short_name(protocol)) + "-p" +
          std::to_string(psize);
      for (const auto& p : points) {
        bench::add_sweep_row(table, label, p.offered, p);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nresult: larger payloads cut saturation throughput for\n"
               "every protocol; SL most sensitive; HS/2CHS latency gap\n"
               "narrows with payload (paper Fig. 10).\n";
  return 0;
}
