// Figure 10: throughput vs latency for transaction payload sizes 0, 128,
// and 1024 bytes (block size 400). Expected shapes: all protocols lose
// throughput as payloads grow (NIC bytes dominate); Streamlet is the most
// payload-sensitive (message echoing multiplies the bytes); the HS-vs-2CHS
// latency gap narrows at p1024 because transmission delay dominates the
// extra voting round.
//
// The full (protocol, psize, concurrency) grid runs through the
// ParallelRunner in a single submission.

#include "bench_common.h"
#include "client/workload.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  bench::print_header("Figure 10 — throughput vs latency by payload size",
                      "series <proto>-p<bytes>; block size 400");

  const std::vector<std::uint32_t> payloads = {0, 128, 1024};
  std::vector<std::uint32_t> ladder = {64, 256, 1024, 2048, 4096};
  if (args.full) ladder.push_back(8192);

  harness::RunOptions opts;
  opts.warmup_s = 0.3;
  opts.measure_s = args.full ? 2.0 : 0.8;

  std::vector<harness::RunSpec> grid;
  std::vector<bench::SeriesSlice> series;
  for (const std::string& protocol : bench::evaluated_protocols()) {
    for (std::uint32_t psize : payloads) {
      core::Config cfg;
      cfg.protocol = protocol;
      cfg.n_replicas = 4;
      cfg.bsize = 400;
      cfg.psize = psize;
      cfg.memsize = 200000;
      cfg.seed = bench::seed_or(args, 10);
      client::WorkloadConfig wl;
      const std::string label =
          std::string(bench::short_name(protocol)) + "-p" +
          std::to_string(psize);
      bench::append_series(grid, series, label,
                           harness::closed_loop_specs(cfg, wl, ladder, opts));
    }
  }

  bench::apply_duration(grid, args);
  bench::Reporter reporter(args, "fig10_payload");
  const auto aggs =
      reporter.run("fig10_payload", grid, bench::series_labels(series));

  harness::TextTable table(bench::sweep_headers("clients"));
  bench::print_series(table, grid, series, aggs);
  table.print(std::cout);
  std::cout << "\nresult: larger payloads cut saturation throughput for\n"
               "every protocol; SL most sensitive; HS/2CHS latency gap\n"
               "narrows with payload (paper Fig. 10).\n";
  reporter.finish();
  return 0;
}
