// Figure 12: scalability — peak throughput and latency for 4..64 replicas
// (block size 400, payload 128 B, no added delay). Expected shapes:
// throughput falls and latency rises with N for everyone; HS and 2CHS stay
// comparable (their latency gap narrows); Streamlet collapses first — the
// paper calls its >= 64-replica numbers "meaningless" — because of its
// O(n^3) message complexity.
//
// Every (protocol, N) cell is one independent RunSpec; the whole grid is
// submitted to the ParallelRunner at once, so the big-N Streamlet cells
// overlap with everything else instead of serializing the sweep.

#include "bench_common.h"
#include "client/workload.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  bench::print_header(
      "Figure 12 — scalability (4..64 replicas, b=400, p=128)",
      "per (protocol, N): near-saturation throughput and latency");

  const std::vector<std::uint32_t> sizes = {4, 8, 16, 32, 64};

  struct Cell {
    std::string protocol;
    std::uint32_t n = 0;
    bool skipped = false;   ///< heavy cell deferred to --full
    std::size_t index = 0;  ///< into the spec grid when !skipped
  };
  std::vector<Cell> cells;
  std::vector<harness::RunSpec> grid;

  for (const std::string& protocol : bench::evaluated_protocols()) {
    for (std::uint32_t n : sizes) {
      Cell cell{protocol, n, false, 0};
      if (protocol == "streamlet" && !args.full && n > 32) {
        // SL at 64 replicas floods the simulator with ~N^3 echoes per view
        // (the very pathology the paper reports); run it under --full.
        cell.skipped = true;
        cells.push_back(cell);
        continue;
      }
      core::Config cfg;
      cfg.protocol = protocol;
      cfg.n_replicas = n;
      cfg.bsize = 400;
      cfg.psize = 128;
      cfg.memsize = 200000;
      cfg.seed = bench::seed_or(args, 12);

      harness::RunSpec spec;
      spec.cfg = cfg;
      // The paper raises client concurrency until each configuration
      // saturates. Peak throughput falls with N roughly as fast as
      // latency rises, so a fixed in-flight population of ~4k sits at the
      // knee across the whole sweep (verified against per-N ladders).
      spec.workload.concurrency = 4096;
      spec.workload.session_timeout = sim::seconds(5);
      spec.opts.warmup_s = n >= 32 ? 1.0 : 0.4;
      spec.opts.measure_s = args.full ? 6.0 : (n >= 32 ? 2.5 : 1.2);
      spec.offered = n;

      cell.index = grid.size();
      grid.push_back(std::move(spec));
      cells.push_back(cell);
    }
  }

  bench::apply_duration(grid, args);
  bench::Reporter reporter(args, "fig12_scalability");
  const auto series_of = [&](std::size_t index) {
    for (const Cell& cell : cells) {
      if (!cell.skipped && cell.index == index) {
        return std::string(bench::short_name(cell.protocol));
      }
    }
    return std::string("?");
  };
  const auto aggs = reporter.run("fig12_scalability", grid, series_of);

  harness::TextTable table({"series", "replicas", "thr(KTx/s)", "lat(ms)",
                            "p99(ms)", "views/s", "safety"});
  for (const Cell& cell : cells) {
    if (cell.skipped) {
      table.add_row({std::string(bench::short_name(cell.protocol)),
                     std::to_string(cell.n), "(--full)", "", "", "", ""});
      continue;
    }
    if (!aggs[cell.index]) continue;  // another shard's cell
    const harness::Aggregate& a = *aggs[cell.index];
    const double views_per_s = bench::mean_of(a, [](const harness::RunResult& r) {
      return r.measured_s > 0 ? static_cast<double>(r.views) / r.measured_s
                              : 0.0;
    });
    table.add_row({std::string(bench::short_name(cell.protocol)),
                   std::to_string(cell.n),
                   bench::ci_cell(a.throughput_tps, 1e-3, 1),
                   bench::ci_cell(a.latency_ms_mean, 1.0, 1),
                   bench::ci_cell(a.latency_ms_p99, 1.0, 1),
                   harness::TextTable::num(views_per_s, 0),
                   a.all_consistent ? "ok" : "VIOLATED"});
  }
  table.print(std::cout);
  std::cout << "\nresult: throughput decreases / latency increases with N;\n"
               "SL degrades fastest and is unusable at 64 (paper Fig. 12).\n";
  reporter.finish();
  return 0;
}
