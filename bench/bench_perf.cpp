// Perf-regression driver: the simulator's raw-speed benchmarks, emitted as
// one canonical BENCH_<n>.json per PR so engine speed is a tracked,
// regression-gated number (ROADMAP item "Simulator raw speed").
//
// Unlike the figure benches this binary measures WALL time of the harness
// itself: end-to-end events/sec for a fixed RunSpec per protocol, broadcast
// fan-out cost, chain-sync batch apply, per-link delay sampling, churn
// dispatch, event-queue churn, and block wire sizing. Iteration counts are
// pinned (--quick scales them down for smoke tests) and every metric is a
// higher-is-better rate. A fixed integer-arithmetic calibration metric is
// included so tools/check_perf.py can normalize away machine-speed
// differences before gating.
//
// Usage:
//   bench_perf [--quick] [--out FILE] [--label NAME] [--baseline FILE]
//
// --baseline embeds a previous BENCH json's metric values (e.g. numbers
// recorded on the pre-optimization build of the same PR) into the output
// under "baseline", with per-metric speedup ratios.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unistd.h>

#include <vector>

#include "client/workload.h"
#include "core/churn.h"
#include "harness/cluster.h"
#include "harness/experiment.h"
#include "model/perf_model.h"
#include "net/link_model.h"
#include "net/network.h"
#include "quorum/cert_verifier.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "storage/block_store.h"
#include "sync/syncer.h"
#include "types/block.h"
#include "types/messages.h"
#include "util/json.h"

namespace {

using namespace bamboo;

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

struct Metric {
  std::string name;
  double value = 0;  ///< higher is better
  std::string unit;
  std::uint64_t iters = 0;
  double wall_s = 0;
};

struct Options {
  bool quick = false;
  std::string out;
  std::string label = "BENCH";
  std::string baseline;
};

/// Scale a pinned iteration count down for --quick smoke runs.
std::uint64_t scaled(const Options& opt, std::uint64_t full) {
  return opt.quick ? (full + 19) / 20 : full;
}

// ---------------------------------------------------------------------------
// Calibration: fixed integer arithmetic, proportional to raw CPU speed.
// ---------------------------------------------------------------------------

Metric bm_calibration(const Options& opt) {
  const std::uint64_t iters = scaled(opt, 400'000'000);
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  const double t0 = now_s();
  for (std::uint64_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  const double wall = now_s() - t0;
  // The sink keeps the loop alive under optimization.
  volatile std::uint64_t sink = x;
  (void)sink;
  return {"calibration", static_cast<double>(iters) / wall / 1e6, "Mops/s",
          iters, wall};
}

// ---------------------------------------------------------------------------
// Event queue churn: schedule + pop through the inline-callback hot path.
// ---------------------------------------------------------------------------

Metric bm_event_queue(const Options& opt) {
  const std::uint64_t rounds = scaled(opt, 200'000);
  sim::EventQueue queue;
  std::uint64_t fired = 0;
  sim::Time t = 0;
  const double t0 = now_s();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (int i = 0; i < 64; ++i) {
      queue.schedule(t + (i * 37) % 1000, [&fired] { ++fired; });
    }
    while (!queue.empty()) {
      auto ev = queue.pop();
      t = ev.at;
      ev.fn();
    }
  }
  const double wall = now_s() - t0;
  return {"event_queue", static_cast<double>(fired) / wall / 1e6, "Mevents/s",
          fired, wall};
}

// ---------------------------------------------------------------------------
// Broadcast fan-out: one sender fanning a message to 31 peers through the
// NIC queues, link sampling, and delivery scheduling.
// ---------------------------------------------------------------------------

Metric bm_broadcast(const Options& opt, bool proposal) {
  const std::uint64_t rounds = scaled(opt, proposal ? 25'000 : 20'000);
  constexpr std::uint32_t kEndpoints = 32;
  sim::Simulator s(7);
  net::NetConfig nc;
  net::SimNetwork n(s, kEndpoints, nc);
  std::uint64_t delivered = 0;
  for (types::NodeId id = 0; id < kEndpoints; ++id) {
    n.set_handler(id, [&delivered](const net::Envelope&) { ++delivered; });
  }
  types::MessagePtr msg;
  if (proposal) {
    types::Block::Fields f;
    f.parent_hash = types::Block::genesis()->hash();
    f.view = 1;
    f.height = 1;
    f.txns.resize(400);
    for (std::size_t i = 0; i < f.txns.size(); ++i) f.txns[i].id = i;
    types::ProposalMsg prop;
    prop.block = std::make_shared<const types::Block>(std::move(f));
    msg = types::make_message(std::move(prop));
  } else {
    msg = types::make_message(types::VoteMsg{});
  }
  const double t0 = now_s();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    s.schedule_at(s.now(), [&n, &msg] { n.broadcast(0, kEndpoints, msg); });
    s.run_all();
  }
  const double wall = now_s() - t0;
  return {proposal ? "broadcast_proposal" : "broadcast_vote",
          static_cast<double>(delivered) / wall / 1e6, "Mmsgs/s", delivered,
          wall};
}

// ---------------------------------------------------------------------------
// Per-link delay sampling (net/link_model hot path; PR 3).
// ---------------------------------------------------------------------------

Metric bm_link_sampling(const Options& opt) {
  const std::uint64_t iters = scaled(opt, 20'000'000);
  net::LinkSpec base;
  base.base = 0.5e6;
  base.spread = 0.07e6;
  net::LinkMatrix m(32, base);
  util::Rng rng(11);
  const double t0 = now_s();
  sim::Duration acc = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    acc += m.sample(static_cast<types::NodeId>(i % 31),
                    static_cast<types::NodeId>((i + 1) % 32), rng);
  }
  const double wall = now_s() - t0;
  volatile sim::Duration sink = acc;
  (void)sink;
  return {"link_sampling", static_cast<double>(iters) / wall / 1e6,
          "Msamples/s", iters, wall};
}

// ---------------------------------------------------------------------------
// Block wire sizing (types/block.h; cached at construction).
// ---------------------------------------------------------------------------

Metric bm_block_wire_size(const Options& opt) {
  const std::uint64_t iters = scaled(opt, 100'000'000);
  // A pool of distinct heap blocks (varying txn counts) so the compiler
  // cannot hoist or fold the wire_size() call out of the loop.
  std::vector<types::BlockPtr> blocks;
  for (std::uint32_t b = 0; b < 64; ++b) {
    types::Block::Fields f;
    f.parent_hash = types::Block::genesis()->hash();
    f.view = b + 1;
    f.height = b + 1;
    f.txns.resize(300 + (b % 8) * 25);
    for (std::size_t i = 0; i < f.txns.size(); ++i) f.txns[i].id = i;
    blocks.push_back(std::make_shared<const types::Block>(std::move(f)));
  }
  std::uint64_t acc = 0;
  const double t0 = now_s();
  for (std::uint64_t i = 0; i < iters; ++i) {
    acc += blocks[i & 63]->wire_size();
  }
  const double wall = now_s() - t0;
  volatile std::uint64_t sink = acc;
  (void)sink;
  return {"block_wire_size", static_cast<double>(iters) / wall / 1e6,
          "Mcalls/s", iters, wall};
}

// ---------------------------------------------------------------------------
// Certificate verification (quorum/cert_verifier.h): real HMAC checks per
// wall second over a pool of honestly signed QCs and TCs at n = 16
// (11-signature quorum) — the host-side cost every received certificate
// now pays on the replica hot path.
// ---------------------------------------------------------------------------

Metric bm_verify_pipeline(const Options& opt) {
  const std::uint64_t iters = scaled(opt, 120'000);
  constexpr std::uint32_t n = 16;
  const std::uint32_t q = types::quorum_size(n);
  const crypto::KeyStore keys(11, n);
  std::vector<types::QuorumCert> qcs;
  std::vector<types::TimeoutCert> tcs;
  for (std::uint32_t v = 1; v <= 32; ++v) {
    types::QuorumCert qc;
    qc.view = v;
    qc.height = v;
    qc.block_hash = crypto::Sha256::hash("block" + std::to_string(v));
    const crypto::Digest digest = types::vote_digest(v, qc.block_hash);
    for (std::uint32_t i = 0; i < q; ++i) qc.sigs.push_back(keys.sign(i, digest));
    types::TimeoutCert tc;
    tc.view = v + 1;
    for (std::uint32_t i = 0; i < q; ++i) {
      tc.reported_qc_views.push_back(v);
      tc.sigs.push_back(keys.sign(i, types::timeout_digest(tc.view, v)));
    }
    tc.high_qc = qc;
    qcs.push_back(std::move(qc));
    tcs.push_back(std::move(tc));
  }
  quorum::CertVerifier verifier(keys, n);
  std::uint64_t ok = 0;
  const double t0 = now_s();
  for (std::uint64_t i = 0; i < iters; ++i) {
    ok += verifier.check_qc(qcs[i & 31]) == quorum::CertCheck::kOk;
    ok += verifier.check_tc(tcs[i & 31]) == quorum::CertCheck::kOk;
  }
  const double wall = now_s() - t0;
  if (ok != 2 * iters) {
    std::cerr << "bench_perf: verify_pipeline rejected a valid cert\n";
    std::exit(1);
  }
  return {"verify_pipeline", static_cast<double>(2 * iters) / wall / 1e6,
          "Mchecks/s", 2 * iters, wall};
}

// ---------------------------------------------------------------------------
// End-to-end whole runs: simulated events per WALL second for a fixed
// RunSpec per protocol, plus a WAN+churn scenario and a chain-sync
// recovery scenario. These are the headline numbers — the whole harness
// (consensus, transport, workload, metrics) at real benchmark scale.
// ---------------------------------------------------------------------------

harness::RunSpec e2e_spec(const std::string& protocol) {
  core::Config cfg;
  cfg.protocol = protocol;
  cfg.n_replicas = 4;
  cfg.bsize = 400;
  cfg.psize = 128;
  cfg.memsize = 200000;
  cfg.seed = 11;
  client::WorkloadConfig wl;
  wl.mode = client::LoadMode::kClosedLoop;
  wl.concurrency = 256;
  harness::RunSpec spec;
  spec.cfg = cfg;
  spec.workload = wl;
  spec.opts.warmup_s = 0.25;
  spec.opts.measure_s = 0.75;
  return spec;
}

/// Run `spec` `reps` times back to back and report simulated events per
/// wall second (plus a throughput sanity print the first time).
Metric bm_e2e(const Options& opt, const std::string& name,
              const harness::RunSpec& spec, std::uint64_t full_reps) {
  const std::uint64_t reps = std::max<std::uint64_t>(1, scaled(opt, full_reps));
  std::uint64_t events = 0;
  const double t0 = now_s();
  for (std::uint64_t r = 0; r < reps; ++r) {
    const harness::RunOutput out = harness::execute_full(spec);
    events += out.events_executed;
    if (!out.result.consistent) {
      std::cerr << "bench_perf: " << name << " run violated safety\n";
      std::exit(1);
    }
  }
  const double wall = now_s() - t0;
  return {name, static_cast<double>(events) / wall / 1e6, "Mevents/s", events,
          wall};
}

Metric bm_e2e_protocol(const Options& opt, const std::string& protocol) {
  return bm_e2e(opt, "e2e_" + protocol, e2e_spec(protocol), 6);
}

Metric bm_e2e_wan_churn(const Options& opt) {
  harness::RunSpec spec = e2e_spec("hotstuff");
  spec.cfg.n_replicas = 6;
  spec.cfg.topology = "wan:3:10";
  spec.cfg.link_model = "lognormal";
  spec.cfg.link_loss = 0.01;
  spec.cfg.timeout = sim::milliseconds(300);
  spec.cfg.churn =
      "degrade@0.3s:link=0-1:+5ms:every=200ms;"
      "restore@0.4s:link=0-1:every=200ms;"
      "fluct@0.5s:for=100ms:lo=2ms:hi=8ms";
  return bm_e2e(opt, "e2e_wan_churn", spec, 40);
}

/// Chain-sync batch apply under partition + heal: replicas 2-3 miss the
/// partition window and batch-fetch the gap afterwards (sync_batch = 8).
Metric bm_chain_sync(const Options& opt) {
  harness::RunSpec spec = e2e_spec("hotstuff");
  spec.cfg.timeout = sim::milliseconds(200);
  spec.cfg.sync_batch = 8;
  spec.cfg.link_loss = 0.02;
  spec.cfg.churn = "partition@0.4s:groups=0-1|2-3;heal@0.6s";
  return bm_e2e(opt, "e2e_chain_sync", spec, 40);
}

/// CPU-bound consensus: batch certificate verification priced at 160 us
/// per signature with a 2-worker verify pool — the cpu_dispatch /
/// charge_qc hot path under real backpressure.
Metric bm_e2e_cpu_bound(const Options& opt) {
  harness::RunSpec spec = e2e_spec("hotstuff");
  spec.cfg.verify_strategy = "batch";
  spec.cfg.cpu_verify_per_sig = sim::microseconds(160);
  spec.cfg.cpu_verify_batch_base = sim::microseconds(160);
  spec.cfg.cpu_verify_batch_per_sig = sim::microseconds(16);
  spec.cfg.cpu_workers = 2;
  return bm_e2e(opt, "e2e_cpu_bound", spec, 8);
}

/// Open-loop saturated regime: Poisson arrivals at ~1.5x the analytic
/// saturation rate against a bounded mempool with a 1M-client population —
/// the arrival scheduler, admission rejections, and per-completion
/// histogram recording all on the hot path.
Metric bm_e2e_openloop_saturated(const Options& opt) {
  harness::RunSpec spec = e2e_spec("hotstuff");
  spec.workload.mode = client::LoadMode::kOpenLoop;
  spec.workload.concurrency = 0;
  spec.workload.client_population = 1'000'000;
  spec.cfg.memsize = 4000;
  const model::PerfModel pm(spec.cfg);
  spec.workload.arrival_rate_tps = 1.5 * pm.saturation_tps();
  spec.offered = spec.workload.arrival_rate_tps;
  return bm_e2e(opt, "e2e_openloop_saturated", spec, 8);
}

// ---------------------------------------------------------------------------
// Churn-event dispatch: a dense repeating degrade/restore schedule with no
// client workload — the run is dominated by churn firing + link mutation.
// ---------------------------------------------------------------------------

Metric bm_churn_dispatch(const Options& opt) {
  const std::uint64_t reps = std::max<std::uint64_t>(1, scaled(opt, 80));
  core::Config cfg;
  cfg.seed = 11;
  cfg.churn =
      "degrade@1ms:link=0-1:+1ms:every=2ms;"
      "restore@2ms:link=0-1:every=2ms;"
      "burst@1ms:link=2-3:loss=0.5:for=1ms:every=2ms;"
      "fluct@1ms:for=1ms:lo=1ms:hi=2ms:every=2ms";
  std::uint64_t events = 0;
  const double t0 = now_s();
  for (std::uint64_t r = 0; r < reps; ++r) {
    harness::Cluster cluster(cfg);
    harness::install_churn(cluster, harness::effective_churn({}, cfg));
    cluster.start();
    cluster.simulator().run_for(sim::seconds(1));
    events += cluster.simulator().events_executed();
  }
  const double wall = now_s() - t0;
  return {"churn_dispatch", static_cast<double>(events) / wall / 1e6,
          "Mevents/s", events, wall};
}

// ---------------------------------------------------------------------------
// Durable ledger append: the file-backed block store's hot path (encode +
// checksum + buffered write), the per-commit cost of store = "file" runs.
// ---------------------------------------------------------------------------

Metric bm_store_append(const Options& opt) {
  const std::uint64_t iters = scaled(opt, 20'000);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("bamboo-perf-store-" + std::to_string(::getpid()) + ".blk"))
          .string();
  // Distinct blocks built outside the timed loop: append() dedupes by
  // hash, so a repeated block would measure the no-op path.
  std::vector<types::BlockPtr> blocks;
  blocks.reserve(iters);
  crypto::Digest parent = types::Block::genesis()->hash();
  for (std::uint64_t i = 0; i < iters; ++i) {
    types::Block::Fields f;
    f.parent_hash = parent;
    f.view = i + 1;
    f.height = i + 1;
    f.txns.resize(128);
    for (std::size_t t = 0; t < f.txns.size(); ++t) f.txns[t].id = t;
    blocks.push_back(std::make_shared<const types::Block>(std::move(f)));
    parent = blocks.back()->hash();
  }
  double wall = 0;
  {
    storage::FileBlockStore store(path);
    const double t0 = now_s();
    for (const types::BlockPtr& block : blocks) store.append(block);
    wall = now_s() - t0;
  }
  std::filesystem::remove(path);
  return {"store_append", static_cast<double>(iters) / wall / 1e3,
          "Kappends/s", iters, wall};
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

util::Json metric_json(const Metric& m) {
  util::Json::Object o;
  o["name"] = m.name;
  o["value"] = m.value;
  o["unit"] = m.unit;
  o["iters"] = static_cast<double>(m.iters);
  o["wall_s"] = m.wall_s;
  return util::Json(std::move(o));
}

int run(const Options& opt) {
  std::vector<Metric> metrics;
  const auto add = [&metrics](Metric m) {
    std::cout << "  " << m.name << ": " << m.value << " " << m.unit << "  ("
              << m.iters << " iters, " << m.wall_s << " s)\n";
    metrics.push_back(std::move(m));
  };

  std::cout << "bench_perf (" << (opt.quick ? "quick" : "full")
            << " iteration counts)\n";
  add(bm_calibration(opt));
  add(bm_event_queue(opt));
  add(bm_broadcast(opt, /*proposal=*/false));
  add(bm_broadcast(opt, /*proposal=*/true));
  add(bm_link_sampling(opt));
  add(bm_block_wire_size(opt));
  add(bm_verify_pipeline(opt));
  add(bm_churn_dispatch(opt));
  add(bm_store_append(opt));
  for (const char* protocol : {"hotstuff", "2chs", "streamlet"}) {
    add(bm_e2e_protocol(opt, protocol));
  }
  add(bm_e2e_wan_churn(opt));
  add(bm_chain_sync(opt));
  add(bm_e2e_cpu_bound(opt));
  add(bm_e2e_openloop_saturated(opt));

  util::Json::Object root;
  root["schema"] = "bamboo-perf/1";
  root["label"] = opt.label;
  root["mode"] = opt.quick ? "quick" : "full";
  util::Json::Array arr;
  for (const Metric& m : metrics) arr.push_back(metric_json(m));
  root["metrics"] = util::Json(std::move(arr));

  if (!opt.baseline.empty()) {
    std::ifstream in(opt.baseline);
    if (!in) {
      std::cerr << "bench_perf: cannot read --baseline " << opt.baseline
                << "\n";
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const util::Json prev = util::Json::parse(buf.str());
    util::Json::Object base;
    util::Json::Object speedup;
    if (const util::Json* pm = prev.find("metrics"); pm && pm->is_array()) {
      for (const util::Json& entry : pm->as_array()) {
        const std::string name = entry.get_string("name", "");
        const double value = entry.get_number("value", 0);
        if (name.empty() || value <= 0) continue;
        base[name] = value;
        for (const Metric& m : metrics) {
          if (m.name == name) speedup[name] = m.value / value;
        }
      }
    }
    util::Json::Object b;
    b["label"] = prev.get_string("label", "");
    b["metrics"] = util::Json(std::move(base));
    b["speedup"] = util::Json(std::move(speedup));
    root["baseline"] = util::Json(std::move(b));
  }

  const std::string text = util::Json(std::move(root)).dump();
  if (opt.out.empty()) {
    std::cout << text << "\n";
  } else {
    std::ofstream out(opt.out);
    if (!out) {
      std::cerr << "bench_perf: cannot write " << opt.out << "\n";
      return 1;
    }
    out << text << "\n";
    std::cout << "wrote " << opt.out << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      opt.label = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      opt.baseline = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: bench_perf [--quick] [--out FILE] [--label NAME]"
                   " [--baseline FILE]\n"
                   "  --quick      ~20x fewer iterations (smoke tests)\n"
                   "  --out FILE   write the BENCH json here (default: stdout)\n"
                   "  --label L    json 'label' field (e.g. BENCH_6)\n"
                   "  --baseline F embed a previous BENCH json's metric\n"
                   "               values + speedup ratios under 'baseline'\n";
      return 0;
    } else {
      std::cerr << "bench_perf: unknown argument '" << argv[i] << "'\n";
      return 2;
    }
  }
  return run(opt);
}
