// Figure 13: the forking attack — 32 replicas, 0..10 Byzantine proposers
// forking the uncommitted tail. Four panels: throughput, latency, chain
// growth rate, block intervals. Expected shapes: Streamlet flat on every
// metric (immune); 2CHS strictly better than HS on every metric (its
// attacker overwrites one block per fork, HS's two); BI starts at 3 (HS)
// vs 2 (2CHS); HS latency grows fastest (forked transactions recycle
// through the mempool).

#include "bench_common.h"
#include "client/workload.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  bench::print_header(
      "Figure 13 — forking attack (32 replicas, byz 0..10)",
      "CGR = committed blocks / appended blocks (see DESIGN.md metric note);"
      "\nCGRv = committed blocks / views (Eq. 1)");

  std::vector<std::uint32_t> byz_counts = {0, 2, 4, 6, 8, 10};
  if (args.full) byz_counts = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

  harness::RunOptions opts;
  opts.warmup_s = 0.4;
  opts.measure_s = args.full ? 4.0 : 1.5;

  harness::TextTable table({"series", "byz", "thr(KTx/s)", "lat(ms)", "CGR",
                            "CGRv", "BI", "forked", "safety"});
  for (const std::string& protocol : bench::evaluated_protocols()) {
    for (std::uint32_t byz : byz_counts) {
      core::Config cfg;
      cfg.protocol = protocol;
      cfg.n_replicas = 32;
      cfg.byz_no = byz;
      cfg.strategy = "forking";
      cfg.bsize = 400;
      cfg.psize = 128;
      cfg.memsize = 200000;
      cfg.seed = 13;

      client::WorkloadConfig wl;
      wl.concurrency = 512;
      wl.session_timeout = sim::milliseconds(300);

      const auto r = harness::run_experiment(cfg, wl, opts);
      table.add_row({std::string(bench::short_name(protocol)),
                     std::to_string(byz),
                     harness::TextTable::num(r.throughput_tps / 1e3, 1),
                     harness::TextTable::num(r.latency_ms_mean, 1),
                     harness::TextTable::num(r.cgr_per_block, 2),
                     harness::TextTable::num(r.cgr_per_view, 2),
                     harness::TextTable::num(r.block_interval, 1),
                     std::to_string(r.blocks_forked),
                     r.consistent ? "ok" : "VIOLATED"});
    }
  }
  table.print(std::cout);
  std::cout << "\nresult: SL flat across metrics; 2CHS > HS everywhere; BI\n"
               "starts at 3 (HS) / 2 (2CHS); HS latency grows fastest\n"
               "(paper Fig. 13).\n";
  return 0;
}
