// Figure 13: the forking attack — 32 replicas, 0..10 Byzantine proposers
// forking the uncommitted tail. Four panels: throughput, latency, chain
// growth rate, block intervals. Expected shapes: Streamlet flat on every
// metric (immune); 2CHS strictly better than HS on every metric (its
// attacker overwrites one block per fork, HS's two); BI starts at 3 (HS)
// vs 2 (2CHS); HS latency grows fastest (forked transactions recycle
// through the mempool).
//
// One RunSpec per (protocol, byz) cell, fanned across the ParallelRunner.

#include "bench_common.h"
#include "client/workload.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  bench::print_header(
      "Figure 13 — forking attack (32 replicas, byz 0..10)",
      "CGR = committed blocks / appended blocks (see DESIGN.md metric note);"
      "\nCGRv = committed blocks / views (Eq. 1)");

  std::vector<std::uint32_t> byz_counts = {0, 2, 4, 6, 8, 10};
  if (args.full) byz_counts = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

  harness::RunOptions opts;
  opts.warmup_s = 0.4;
  opts.measure_s = args.full ? 4.0 : 1.5;

  std::vector<harness::RunSpec> grid;
  for (const std::string& protocol : bench::evaluated_protocols()) {
    for (std::uint32_t byz : byz_counts) {
      harness::RunSpec spec;
      spec.cfg.protocol = protocol;
      spec.cfg.n_replicas = 32;
      spec.cfg.byz_no = byz;
      spec.cfg.strategy = "forking";
      spec.cfg.bsize = 400;
      spec.cfg.psize = 128;
      spec.cfg.memsize = 200000;
      spec.cfg.seed = bench::seed_or(args, 13);
      spec.workload.concurrency = 512;
      spec.workload.session_timeout = sim::milliseconds(300);
      spec.opts = opts;
      spec.offered = byz;
      grid.push_back(std::move(spec));
    }
  }

  auto runner = bench::make_runner(args);
  const auto results = runner.run(grid);

  harness::TextTable table({"series", "byz", "thr(KTx/s)", "lat(ms)", "CGR",
                            "CGRv", "BI", "forked", "safety"});
  std::size_t i = 0;
  for (const std::string& protocol : bench::evaluated_protocols()) {
    for (std::uint32_t byz : byz_counts) {
      const harness::RunResult& r = results[i++];
      table.add_row({std::string(bench::short_name(protocol)),
                     std::to_string(byz),
                     harness::TextTable::num(r.throughput_tps / 1e3, 1),
                     harness::TextTable::num(r.latency_ms_mean, 1),
                     harness::TextTable::num(r.cgr_per_block, 2),
                     harness::TextTable::num(r.cgr_per_view, 2),
                     harness::TextTable::num(r.block_interval, 1),
                     std::to_string(r.blocks_forked),
                     r.consistent ? "ok" : "VIOLATED"});
    }
  }
  table.print(std::cout);
  std::cout << "\nresult: SL flat across metrics; 2CHS > HS everywhere; BI\n"
               "starts at 3 (HS) / 2 (2CHS); HS latency grows fastest\n"
               "(paper Fig. 13).\n";
  return 0;
}
