// Table II: transaction arrival rate vs transaction throughput, HotStuff,
// block size 400, 4 replicas. The paper's point: below saturation, observed
// blockchain throughput tracks the offered Poisson arrival rate almost
// exactly (queueing delays dominate, but no work is lost).
//
// Each arrival rate is one RunSpec; the ladder runs through the
// ParallelRunner.

#include "bench_common.h"
#include "client/workload.h"
#include "core/config.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  bench::print_header(
      "Table II — arrival rate vs throughput (HotStuff, 4 replicas, b=400)",
      "paper rows: 19,992/20,115 ... 131,232/131,275 Tx/s");

  core::Config cfg;
  cfg.protocol = "hotstuff";
  cfg.n_replicas = 4;
  cfg.bsize = 400;
  cfg.memsize = 200000;
  cfg.seed = bench::seed_or(args, 2021);

  client::WorkloadConfig wl;
  wl.mode = client::LoadMode::kOpenLoop;

  // Our simulated substrate saturates near 107 KTx/s at this configuration
  // (the paper's testbed: ~140 K); the sweep stays below the knee, where
  // the paper's observation (throughput == arrival rate) applies.
  std::vector<double> rates = {20000, 40000, 60000, 80000, 90000};
  if (args.full) rates.push_back(95000);

  harness::RunOptions opts;
  opts.warmup_s = 0.3;
  opts.measure_s = args.full ? 4.0 : 1.5;

  auto grid = harness::open_loop_specs(cfg, wl, rates, opts);
  bench::apply_duration(grid, args);
  bench::Reporter reporter(args, "table2_arrival");
  const auto aggs = reporter.run(
      "table2_arrival", grid, [](std::size_t) { return std::string("HS"); });

  harness::TextTable table({"Arrival rate (Tx/s)", "Throughput (Tx/s)",
                            "ratio", "lat(ms)"});
  bool all_tracking = true;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!aggs[i]) continue;  // another shard's row
    const harness::Aggregate& a = *aggs[i];
    const double offered = grid[i].offered;
    const double ratio = a.throughput_tps.mean() / offered;
    if (ratio < 0.97 || ratio > 1.03) all_tracking = false;
    table.add_row(
        {harness::TextTable::count(static_cast<std::uint64_t>(offered)),
         harness::TextTable::count(
             static_cast<std::uint64_t>(a.throughput_tps.mean())) +
             "±" +
             harness::TextTable::count(
                 static_cast<std::uint64_t>(a.throughput_tps.ci95())),
         harness::TextTable::num(ratio, 3),
         bench::ci_cell(a.latency_ms_mean, 1.0, 1)});
  }
  table.print(std::cout);
  std::cout << "\nresult: throughput "
            << (all_tracking ? "tracks" : "DOES NOT track")
            << " the arrival rate below saturation (paper: tracks)\n";
  reporter.finish();
  // Short smoke windows (--duration) are too noisy for a hard gate; the
  // published windows keep the strict exit code.
  return all_tracking || args.duration > 0 ? 0 : 1;
}
