// Ablations of the design choices the paper singles out (§V-E and §VI-E):
// what does each mechanism cost, holding everything else fixed?
//   1. Vote routing: Streamlet's broadcast+echo vs HotStuff's
//      next-leader unicast (the O(n^3) price of forking immunity).
//   2. Commit-rule depth: three-chain (HS) vs two-chain (2CHS/FHS) —
//      latency paid for responsiveness/fork budget.
//   3. Leader election: round-robin vs hash-based rotation.
//   4. Conservative proposing: the wait-Δ after view changes under a
//      silent leader (the responsiveness knob of Fig. 15).
//
// All nine ablation cells are independent RunSpecs executed through the
// ParallelRunner in one submission; the vote-routing section reads the
// cluster-wide byte counter now carried in RunResult::net_bytes.

#include "bench_common.h"
#include "client/workload.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);
  const double measure = args.full ? 3.0 : 1.0;
  const std::uint64_t seed = bench::seed_or(args, 42);

  bench::print_header("Ablations — the cost of each design choice",
                      "every row pair differs in exactly one mechanism");

  auto make_spec = [&](core::Config cfg, std::uint32_t concurrency,
                       double warmup_s) {
    cfg.seed = seed;
    harness::RunSpec spec;
    spec.cfg = std::move(cfg);
    spec.workload.concurrency = concurrency;
    spec.workload.session_timeout = sim::milliseconds(300);
    spec.opts.warmup_s = warmup_s;
    spec.opts.measure_s = measure;
    return spec;
  };

  std::vector<harness::RunSpec> grid;

  // 1. vote routing (N=8, b=400): 2CHS (next-leader unicast) vs SL
  // (broadcast+echo). High concurrency, no session watchdog — mirror the
  // raw driver setup this section used before the RunSpec port.
  for (const std::string protocol : {"2chs", "streamlet"}) {
    core::Config cfg;
    cfg.protocol = protocol;
    cfg.n_replicas = 8;
    auto spec = make_spec(cfg, 2048, 0.3);
    spec.workload.session_timeout = 0;
    grid.push_back(std::move(spec));
  }

  // 2. commit-rule depth (N=4, b=400).
  for (const std::string protocol : {"2chs", "hotstuff"}) {
    core::Config cfg;
    cfg.protocol = protocol;
    grid.push_back(make_spec(cfg, 256, 0.3));
  }

  // 3. leader election (HS, N=8).
  for (const std::string election : {"roundrobin", "hash"}) {
    core::Config cfg;
    cfg.election = election;
    cfg.n_replicas = 8;
    grid.push_back(make_spec(cfg, 1024, 0.3));
  }

  // 4. conservative proposing under a silent leader (2CHS, N=4).
  const sim::Duration waits[] = {sim::Duration{0}, sim::milliseconds(10),
                                 sim::milliseconds(20)};
  for (const sim::Duration wait : waits) {
    core::Config cfg;
    cfg.protocol = "2chs";
    cfg.byz_no = 1;
    cfg.strategy = "silence";
    cfg.timeout = sim::milliseconds(40);
    cfg.propose_wait_after_vc = wait;
    grid.push_back(make_spec(cfg, 256, 0.3));
  }

  bench::apply_duration(grid, args);
  bench::Reporter reporter(args, "ablation");
  static const char* kLabels[] = {
      "routing-2chs", "routing-sl", "rule-2chs",  "rule-hs", "elect-rr",
      "elect-hash",   "wait-0ms",   "wait-10ms", "wait-20ms"};
  const auto aggs = reporter.run(
      "ablation", grid,
      [](std::size_t index) { return std::string(kLabels[index]); });

  std::size_t i = 0;

  {
    std::cout << "--- vote routing: unicast-to-next-leader vs "
                 "broadcast+echo (N=8, b=400) ---\n";
    harness::TextTable table({"routing", "thr(KTx/s)", "lat(ms)",
                              "net MB/s", "forking-immune"});
    for (const std::string protocol : {"2chs", "streamlet"}) {
      const std::size_t index = i++;
      if (!aggs[index]) continue;  // another shard's cell
      const harness::Aggregate& a = *aggs[index];
      const double mb_per_s = bench::mean_of(a, [](const harness::RunResult& r) {
        return r.measured_s > 0
                   ? static_cast<double>(r.net_bytes) / r.measured_s / 1e6
                   : 0.0;
      });
      table.add_row(
          {protocol == "streamlet" ? "broadcast+echo" : "next leader",
           bench::ci_cell(a.throughput_tps, 1e-3, 1),
           bench::ci_cell(a.latency_ms_mean, 1.0, 1),
           harness::TextTable::num(mb_per_s, 0),
           protocol == "streamlet" ? "yes" : "no"});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  {
    std::cout << "--- commit-rule depth: two-chain vs three-chain "
                 "(N=4, b=400) ---\n";
    harness::TextTable table(
        {"rule", "lat(ms)", "BI", "fork budget(blocks)"});
    for (const std::string protocol : {"2chs", "hotstuff"}) {
      const std::size_t index = i++;
      if (!aggs[index]) continue;
      const harness::Aggregate& a = *aggs[index];
      table.add_row({protocol == "hotstuff" ? "three-chain" : "two-chain",
                     bench::ci_cell(a.latency_ms_mean, 1.0, 1),
                     bench::ci_cell(a.block_interval, 1.0, 1),
                     protocol == "hotstuff" ? "2" : "1"});
    }
    table.print(std::cout);
    std::cout << "(one commit-chain link ~= one t_s of client latency)\n\n";
  }

  {
    std::cout << "--- leader election: round-robin vs hash rotation "
                 "(HS, N=8) ---\n";
    harness::TextTable table({"election", "thr(KTx/s)", "lat(ms)", "CGR"});
    for (const std::string election : {"roundrobin", "hash"}) {
      const std::size_t index = i++;
      if (!aggs[index]) continue;
      const harness::Aggregate& a = *aggs[index];
      table.add_row({election,
                     bench::ci_cell(a.throughput_tps, 1e-3, 1),
                     bench::ci_cell(a.latency_ms_mean, 1.0, 1),
                     bench::ci_cell(a.cgr_per_block, 1.0, 2)});
    }
    table.print(std::cout);
    std::cout << "(hash rotation can elect the same leader twice in a row;\n"
                 "throughput is unchanged in the happy path)\n\n";
  }

  {
    std::cout << "--- conservative proposing under a silent leader "
                 "(2CHS, N=4, timeout 40 ms) ---\n";
    harness::TextTable table({"wait-after-VC", "thr(KTx/s)", "lat(ms)",
                              "timeouts"});
    for (const sim::Duration wait : waits) {
      const std::size_t index = i++;
      if (!aggs[index]) continue;
      const harness::Aggregate& a = *aggs[index];
      const double timeouts = bench::mean_of(a, [](const harness::RunResult& r) {
        return static_cast<double>(r.timeouts);
      });
      table.add_row({harness::TextTable::num(sim::to_milliseconds(wait), 0) +
                         " ms",
                     bench::ci_cell(a.throughput_tps, 1e-3, 1),
                     bench::ci_cell(a.latency_ms_mean, 1.0, 1),
                     harness::TextTable::num(timeouts, 0)});
    }
    table.print(std::cout);
    std::cout << "(every ms of Δ is paid on every timeout-driven view\n"
                 "change — the price of non-responsiveness, §VI-D)\n";
  }
  reporter.finish();
  return 0;
}
