// Ablations of the design choices the paper singles out (§V-E and §VI-E):
// what does each mechanism cost, holding everything else fixed?
//   1. Vote routing: Streamlet's broadcast+echo vs HotStuff's
//      next-leader unicast (the O(n^3) price of forking immunity).
//   2. Commit-rule depth: three-chain (HS) vs two-chain (2CHS/FHS) —
//      latency paid for responsiveness/fork budget.
//   3. Leader election: round-robin vs hash-based rotation.
//   4. Conservative proposing: the wait-Δ after view changes under a
//      silent leader (the responsiveness knob of Fig. 15).

#include "bench_common.h"
#include "client/workload.h"

namespace {

using namespace bamboo;

harness::RunResult run(core::Config cfg, std::uint32_t concurrency,
                       double measure_s) {
  client::WorkloadConfig wl;
  wl.concurrency = concurrency;
  wl.session_timeout = sim::milliseconds(300);
  harness::RunOptions opts;
  opts.warmup_s = 0.3;
  opts.measure_s = measure_s;
  return harness::run_experiment(cfg, wl, opts);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const double measure = args.full ? 3.0 : 1.0;

  bench::print_header("Ablations — the cost of each design choice",
                      "every row pair differs in exactly one mechanism");

  {
    std::cout << "--- vote routing: unicast-to-next-leader vs "
                 "broadcast+echo (N=8, b=400) ---\n";
    harness::TextTable table({"routing", "thr(KTx/s)", "lat(ms)",
                              "net MB/s", "forking-immune"});
    for (const std::string protocol : {"2chs", "streamlet"}) {
      core::Config cfg;
      cfg.protocol = protocol;
      cfg.n_replicas = 8;
      cfg.seed = 42;
      // Measure bytes through a dedicated cluster run for the rate.
      harness::Cluster cluster(cfg);
      client::WorkloadConfig wl;
      wl.concurrency = 2048;
      client::WorkloadDriver driver(cluster.simulator(), cluster.network(),
                                    cluster.config(), wl);
      driver.install();
      cluster.start();
      driver.start();
      cluster.simulator().run_for(sim::from_seconds(0.3));
      const auto bytes0 = cluster.network().bytes_sent();
      driver.begin_measurement();
      cluster.simulator().run_for(sim::from_seconds(measure));
      driver.end_measurement();
      const double mb_per_s =
          static_cast<double>(cluster.network().bytes_sent() - bytes0) /
          measure / 1e6;
      table.add_row(
          {protocol == "streamlet" ? "broadcast+echo" : "next leader",
           harness::TextTable::num(
               driver.measured_completed() / measure / 1e3, 1),
           harness::TextTable::num(driver.latencies_ms().mean(), 1),
           harness::TextTable::num(mb_per_s, 0),
           protocol == "streamlet" ? "yes" : "no"});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  {
    std::cout << "--- commit-rule depth: two-chain vs three-chain "
                 "(N=4, b=400) ---\n";
    harness::TextTable table(
        {"rule", "lat(ms)", "BI", "fork budget(blocks)"});
    for (const std::string protocol : {"2chs", "hotstuff"}) {
      core::Config cfg;
      cfg.protocol = protocol;
      cfg.seed = 42;
      const auto r = run(cfg, 256, measure);
      table.add_row({protocol == "hotstuff" ? "three-chain" : "two-chain",
                     harness::TextTable::num(r.latency_ms_mean, 1),
                     harness::TextTable::num(r.block_interval, 1),
                     protocol == "hotstuff" ? "2" : "1"});
    }
    table.print(std::cout);
    std::cout << "(one commit-chain link ~= one t_s of client latency)\n\n";
  }

  {
    std::cout << "--- leader election: round-robin vs hash rotation "
                 "(HS, N=8) ---\n";
    harness::TextTable table({"election", "thr(KTx/s)", "lat(ms)", "CGR"});
    for (const std::string election : {"roundrobin", "hash"}) {
      core::Config cfg;
      cfg.election = election;
      cfg.n_replicas = 8;
      cfg.seed = 42;
      const auto r = run(cfg, 1024, measure);
      table.add_row({election,
                     harness::TextTable::num(r.throughput_tps / 1e3, 1),
                     harness::TextTable::num(r.latency_ms_mean, 1),
                     harness::TextTable::num(r.cgr_per_block, 2)});
    }
    table.print(std::cout);
    std::cout << "(hash rotation can elect the same leader twice in a row;\n"
                 "throughput is unchanged in the happy path)\n\n";
  }

  {
    std::cout << "--- conservative proposing under a silent leader "
                 "(2CHS, N=4, timeout 40 ms) ---\n";
    harness::TextTable table({"wait-after-VC", "thr(KTx/s)", "lat(ms)",
                              "timeouts"});
    for (const sim::Duration wait :
         {sim::Duration{0}, sim::milliseconds(10), sim::milliseconds(20)}) {
      core::Config cfg;
      cfg.protocol = "2chs";
      cfg.byz_no = 1;
      cfg.strategy = "silence";
      cfg.timeout = sim::milliseconds(40);
      cfg.propose_wait_after_vc = wait;
      cfg.seed = 42;
      const auto r = run(cfg, 256, measure);
      table.add_row({harness::TextTable::num(sim::to_milliseconds(wait), 0) +
                         " ms",
                     harness::TextTable::num(r.throughput_tps / 1e3, 1),
                     harness::TextTable::num(r.latency_ms_mean, 1),
                     std::to_string(r.timeouts)});
    }
    table.print(std::cout);
    std::cout << "(every ms of Δ is paid on every timeout-driven view\n"
                 "change — the price of non-responsiveness, §VI-D)\n";
  }
  return 0;
}
