// Figure 11: throughput vs latency with additional network delays of 0 ms,
// 5 ms (± 1 ms), and 10 ms (± 2 ms). Expected shapes: every protocol
// suffers as delay grows; the SL-vs-2CHS gap closes at d10 because link
// delay swamps the cost of Streamlet's message echoing.
//
// The full (protocol, delay, concurrency) grid runs through the
// ParallelRunner in a single submission.

#include "bench_common.h"
#include "client/workload.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  bench::print_header(
      "Figure 11 — throughput vs latency with added network delay",
      "series <proto>-d<ms>; one-way delay added per message");

  struct DelaySetting {
    sim::Duration delay;
    sim::Duration jitter;
    const char* tag;
  };
  const std::vector<DelaySetting> delays = {
      {0, 0, "d0"},
      {sim::milliseconds(5), sim::milliseconds(1), "d5"},
      {sim::milliseconds(10), sim::milliseconds(2), "d10"},
  };
  std::vector<std::uint32_t> ladder = {256, 1024, 4096};
  if (args.full) ladder = {64, 256, 1024, 2048, 4096, 8192};

  harness::RunOptions opts;
  opts.warmup_s = 0.4;
  opts.measure_s = args.full ? 2.5 : 1.0;

  std::vector<harness::RunSpec> grid;
  std::vector<bench::SeriesSlice> series;
  for (const std::string& protocol : bench::evaluated_protocols()) {
    for (const DelaySetting& d : delays) {
      core::Config cfg;
      cfg.protocol = protocol;
      cfg.n_replicas = 4;
      cfg.bsize = 400;
      cfg.psize = 128;
      cfg.delay = d.delay;
      cfg.delay_jitter = d.jitter;
      cfg.memsize = 200000;
      cfg.seed = bench::seed_or(args, 11);
      // The added delay flows through the LinkModel subsystem's default
      // normal/uniform scenario, whose schedule is bit-identical to the
      // pre-LinkModel transport (pinned by tests/test_link_model.cpp).
      cfg.link_model = "normal";
      cfg.topology = "uniform";
      client::WorkloadConfig wl;
      const std::string label =
          std::string(bench::short_name(protocol)) + "-" + d.tag;
      bench::append_series(grid, series, label,
                           harness::closed_loop_specs(cfg, wl, ladder, opts));
    }
  }

  bench::apply_duration(grid, args);
  bench::Reporter reporter(args, "fig11_netdelay");
  const auto aggs =
      reporter.run("fig11_netdelay", grid, bench::series_labels(series));

  harness::TextTable table(bench::sweep_headers("clients"));
  bench::print_series(table, grid, series, aggs);
  table.print(std::cout);
  std::cout << "\nresult: latency rises with added delay for all protocols;\n"
               "SL approaches 2CHS at d10 (paper Fig. 11).\n";
  reporter.finish();
  return 0;
}
