// Component microbenchmarks (google-benchmark): the substrate costs that
// feed the calibration constants in Config and DESIGN.md §5. Not a paper
// figure; kept so regressions in the hot paths are visible.

#include <benchmark/benchmark.h>

#include "core/churn.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "forest/block_forest.h"
#include "harness/cluster.h"
#include "harness/experiment.h"
#include "mempool/mempool.h"
#include "model/order_stats.h"
#include "net/link_model.h"
#include "quorum/vote_aggregator.h"
#include "sim/event_queue.h"
#include "sync/syncer.h"
#include "util/rng.h"

namespace {

using namespace bamboo;

void BM_Sha256(benchmark::State& state) {
  const std::vector<std::uint8_t> data(
      static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_SignVerify(benchmark::State& state) {
  crypto::KeyStore keys(1, 4);
  const auto digest = crypto::Sha256::hash("message");
  const auto sig = keys.sign(0, digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys.verify(sig, digest));
  }
}
BENCHMARK(BM_SignVerify);

void BM_BlockHash(benchmark::State& state) {
  std::vector<types::Transaction> txns(
      static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < txns.size(); ++i) txns[i].id = i;
  const auto genesis = types::Block::genesis();
  for (auto _ : state) {
    types::Block::Fields f;
    f.parent_hash = genesis->hash();
    f.view = 1;
    f.height = 1;
    f.txns = txns;
    types::Block block(std::move(f));
    benchmark::DoNotOptimize(block.hash());
  }
}
BENCHMARK(BM_BlockHash)->Arg(100)->Arg(400)->Arg(800);

void BM_ForestChainAddCommitPrune(benchmark::State& state) {
  for (auto _ : state) {
    forest::BlockForest forest;
    types::BlockPtr tip = types::Block::genesis();
    for (types::View v = 1; v <= 256; ++v) {
      types::Block::Fields f;
      f.parent_hash = tip->hash();
      f.view = v;
      f.height = tip->height() + 1;
      f.justify.view = tip->view();
      f.justify.block_hash = tip->hash();
      tip = std::make_shared<const types::Block>(std::move(f));
      forest.add(tip);
    }
    benchmark::DoNotOptimize(forest.commit(tip->hash()));
    benchmark::DoNotOptimize(forest.prune());
  }
}
BENCHMARK(BM_ForestChainAddCommitPrune);

void BM_MempoolAddTake(benchmark::State& state) {
  mempool::Mempool pool(100000);
  types::TxId next = 1;
  for (auto _ : state) {
    for (int i = 0; i < 400; ++i) {
      types::Transaction tx;
      tx.id = next++;
      pool.add_new(tx);
    }
    benchmark::DoNotOptimize(pool.take(400));
  }
}
BENCHMARK(BM_MempoolAddTake);

void BM_VoteAggregationToQc(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto hash = crypto::Sha256::hash("block");
  types::View view = 1;
  quorum::VoteAggregator agg(n);
  for (auto _ : state) {
    ++view;
    for (types::NodeId voter = 0; voter < n; ++voter) {
      types::VoteMsg vote;
      vote.view = view;
      vote.block_hash = hash;
      vote.sig.signer = voter;
      benchmark::DoNotOptimize(agg.add(vote));
    }
    if (view % 64 == 0) agg.gc_below(view - 32);
  }
}
BENCHMARK(BM_VoteAggregationToQc)->Arg(4)->Arg(32);

void BM_EventQueueChurn(benchmark::State& state) {
  sim::EventQueue queue;
  sim::Time t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.schedule(t + (i * 37) % 1000, [] {});
    }
    while (!queue.empty()) {
      auto fired = queue.pop();
      t = fired.at;
    }
  }
}
BENCHMARK(BM_EventQueueChurn);

void BM_BlockWireSize(benchmark::State& state) {
  // Pool of distinct blocks so the cached size cannot be hoisted.
  std::vector<types::BlockPtr> blocks;
  for (std::uint32_t b = 0; b < 64; ++b) {
    types::Block::Fields f;
    f.parent_hash = types::Block::genesis()->hash();
    f.view = b + 1;
    f.height = b + 1;
    f.txns.resize(static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < f.txns.size(); ++i) f.txns[i].id = i;
    blocks.push_back(std::make_shared<const types::Block>(std::move(f)));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(blocks[i++ & 63]->wire_size());
  }
}
BENCHMARK(BM_BlockWireSize)->Arg(100)->Arg(400);

void BM_LinkDelaySampling(benchmark::State& state) {
  // The per-message hot path of the WAN engine (PR 3): one LinkMatrix
  // sample per link traversal, family set by the arg index.
  static constexpr net::DelayFamily kFamilies[] = {
      net::DelayFamily::kNormal, net::DelayFamily::kUniform,
      net::DelayFamily::kLogNormal, net::DelayFamily::kPareto};
  net::LinkSpec spec;
  spec.family = kFamilies[state.range(0)];
  spec.base = 0.5e6;
  spec.spread = 0.07e6;
  spec.shape = 0.25;
  net::LinkMatrix matrix(32, spec);
  util::Rng rng(11);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matrix.sample(
        static_cast<types::NodeId>(i % 31),
        static_cast<types::NodeId>((i + 1) % 32), rng));
    ++i;
  }
}
BENCHMARK(BM_LinkDelaySampling)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_ChurnDispatch(benchmark::State& state) {
  // Churn-event firing + link mutation (PR 4): a dense repeating
  // degrade/restore/burst/fluct schedule on an otherwise idle cluster,
  // one simulated second per iteration.
  core::Config cfg;
  cfg.seed = 11;
  cfg.churn =
      "degrade@1ms:link=0-1:+1ms:every=2ms;"
      "restore@2ms:link=0-1:every=2ms;"
      "burst@1ms:link=2-3:loss=0.5:for=1ms:every=2ms;"
      "fluct@1ms:for=1ms:lo=1ms:hi=2ms:every=2ms";
  for (auto _ : state) {
    harness::Cluster cluster(cfg);
    harness::install_churn(cluster, harness::effective_churn({}, cfg));
    cluster.start();
    cluster.simulator().run_for(sim::seconds(1));
    benchmark::DoNotOptimize(cluster.simulator().events_executed());
  }
}
BENCHMARK(BM_ChurnDispatch);

void BM_SyncerBatchApply(benchmark::State& state) {
  // Chain-sync validation + batch apply (PR 5): one ChainResponseMsg of
  // `batch` certified parent-first blocks through Syncer::on_response.
  const auto batch = static_cast<std::uint32_t>(state.range(0));
  std::vector<types::BlockPtr> chain;
  types::BlockPtr tip = types::Block::genesis();
  for (std::uint32_t v = 1; v <= batch; ++v) {
    types::Block::Fields f;
    f.parent_hash = tip->hash();
    f.view = v;
    f.height = tip->height() + 1;
    f.justify.view = tip->view();
    f.justify.block_hash = tip->hash();
    f.txns.resize(64);
    tip = std::make_shared<const types::Block>(std::move(f));
    chain.push_back(tip);
  }
  types::ChainResponseMsg resp;
  resp.blocks = chain;
  for (auto _ : state) {
    sim::Simulator simulator(11);
    forest::BlockForest forest;
    sync::Syncer::Hooks hooks;
    hooks.send = [](types::NodeId, types::MessagePtr) {};
    hooks.apply_block = [&forest](const types::BlockPtr& b, types::NodeId) {
      return forest.add(b);
    };
    sync::Syncer syncer(simulator, forest,
                        sync::Syncer::Settings{batch, sim::milliseconds(500), 3},
                        /*id=*/0, /*n_replicas=*/4, hooks);
    syncer.request(chain.back()->hash(), /*from=*/1);
    syncer.on_response(resp, /*from=*/1);
    benchmark::DoNotOptimize(syncer.stats().blocks_applied);
  }
}
BENCHMARK(BM_SyncerBatchApply)->Arg(1)->Arg(8)->Arg(64);

void BM_RngGaussian(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.gaussian(1.0, 0.1));
  }
}
BENCHMARK(BM_RngGaussian);

void BM_NormalOrderStatistic(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::normal_order_statistic(
        static_cast<std::uint32_t>(2 * state.range(0) / 3),
        static_cast<std::uint32_t>(state.range(0))));
  }
}
BENCHMARK(BM_NormalOrderStatistic)->Arg(7)->Arg(31)->Arg(63);

}  // namespace

BENCHMARK_MAIN();
