// Component microbenchmarks (google-benchmark): the substrate costs that
// feed the calibration constants in Config and DESIGN.md §5. Not a paper
// figure; kept so regressions in the hot paths are visible.

#include <benchmark/benchmark.h>

#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "forest/block_forest.h"
#include "mempool/mempool.h"
#include "model/order_stats.h"
#include "quorum/vote_aggregator.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace {

using namespace bamboo;

void BM_Sha256(benchmark::State& state) {
  const std::vector<std::uint8_t> data(
      static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_SignVerify(benchmark::State& state) {
  crypto::KeyStore keys(1, 4);
  const auto digest = crypto::Sha256::hash("message");
  const auto sig = keys.sign(0, digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys.verify(sig, digest));
  }
}
BENCHMARK(BM_SignVerify);

void BM_BlockHash(benchmark::State& state) {
  std::vector<types::Transaction> txns(
      static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < txns.size(); ++i) txns[i].id = i;
  const auto genesis = types::Block::genesis();
  for (auto _ : state) {
    types::Block::Fields f;
    f.parent_hash = genesis->hash();
    f.view = 1;
    f.height = 1;
    f.txns = txns;
    types::Block block(std::move(f));
    benchmark::DoNotOptimize(block.hash());
  }
}
BENCHMARK(BM_BlockHash)->Arg(100)->Arg(400)->Arg(800);

void BM_ForestChainAddCommitPrune(benchmark::State& state) {
  for (auto _ : state) {
    forest::BlockForest forest;
    types::BlockPtr tip = types::Block::genesis();
    for (types::View v = 1; v <= 256; ++v) {
      types::Block::Fields f;
      f.parent_hash = tip->hash();
      f.view = v;
      f.height = tip->height() + 1;
      f.justify.view = tip->view();
      f.justify.block_hash = tip->hash();
      tip = std::make_shared<const types::Block>(std::move(f));
      forest.add(tip);
    }
    benchmark::DoNotOptimize(forest.commit(tip->hash()));
    benchmark::DoNotOptimize(forest.prune());
  }
}
BENCHMARK(BM_ForestChainAddCommitPrune);

void BM_MempoolAddTake(benchmark::State& state) {
  mempool::Mempool pool(100000);
  types::TxId next = 1;
  for (auto _ : state) {
    for (int i = 0; i < 400; ++i) {
      types::Transaction tx;
      tx.id = next++;
      pool.add_new(tx);
    }
    benchmark::DoNotOptimize(pool.take(400));
  }
}
BENCHMARK(BM_MempoolAddTake);

void BM_VoteAggregationToQc(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto hash = crypto::Sha256::hash("block");
  types::View view = 1;
  quorum::VoteAggregator agg(n);
  for (auto _ : state) {
    ++view;
    for (types::NodeId voter = 0; voter < n; ++voter) {
      types::VoteMsg vote;
      vote.view = view;
      vote.block_hash = hash;
      vote.sig.signer = voter;
      benchmark::DoNotOptimize(agg.add(vote));
    }
    if (view % 64 == 0) agg.gc_below(view - 32);
  }
}
BENCHMARK(BM_VoteAggregationToQc)->Arg(4)->Arg(32);

void BM_EventQueueChurn(benchmark::State& state) {
  sim::EventQueue queue;
  sim::Time t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.schedule(t + (i * 37) % 1000, [] {});
    }
    while (!queue.empty()) {
      auto fired = queue.pop();
      t = fired.at;
    }
  }
}
BENCHMARK(BM_EventQueueChurn);

void BM_RngGaussian(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.gaussian(1.0, 0.1));
  }
}
BENCHMARK(BM_RngGaussian);

void BM_NormalOrderStatistic(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::normal_order_statistic(
        static_cast<std::uint32_t>(2 * state.range(0) / 3),
        static_cast<std::uint32_t>(state.range(0))));
  }
}
BENCHMARK(BM_NormalOrderStatistic)->Arg(7)->Arg(31)->Arg(63);

}  // namespace

BENCHMARK_MAIN();
