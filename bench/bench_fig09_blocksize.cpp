// Figure 9: throughput vs latency for block sizes 100/400/800, protocols
// HS / 2CHS / SL plus the original-HotStuff (OHS) baseline profile at
// b100/b800. Closed-loop concurrency is raised until saturation, exactly
// the paper's methodology. Expected shapes: L-curves; a large gain from
// b100 -> b400 and a small one from b400 -> b800; SL lowest throughput;
// OHS slightly ahead of Bamboo-HS.
//
// Every (protocol, bsize, concurrency) point is an independent RunSpec;
// the whole grid is submitted to the ParallelRunner in one call.

#include <algorithm>

#include "bench_common.h"
#include "client/workload.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  bench::print_header("Figure 9 — throughput vs latency by block size",
                      "series <proto>-b<bsize>; zero-payload transactions");

  const std::vector<std::uint32_t> block_sizes = {100, 400, 800};
  std::vector<std::uint32_t> ladder = {64, 256, 1024, 2048, 4096};
  if (args.full) ladder.push_back(8192);

  harness::RunOptions opts;
  opts.warmup_s = 0.3;
  opts.measure_s = args.full ? 2.0 : 0.8;

  std::vector<harness::RunSpec> grid;
  std::vector<bench::SeriesSlice> series;
  auto add_series = [&](const std::string& protocol, std::uint32_t bsize) {
    core::Config cfg;
    cfg.protocol = protocol;
    cfg.n_replicas = 4;
    cfg.bsize = bsize;
    cfg.psize = 0;
    cfg.memsize = 200000;
    cfg.seed = bench::seed_or(args, 9);
    client::WorkloadConfig wl;
    const std::string label =
        std::string(bench::short_name(protocol)) + "-b" +
        std::to_string(bsize);
    bench::append_series(grid, series, label,
                         harness::closed_loop_specs(cfg, wl, ladder, opts));
  };

  for (const std::string& protocol : bench::evaluated_protocols()) {
    for (std::uint32_t bsize : block_sizes) add_series(protocol, bsize);
  }
  add_series("ohs", 100);
  add_series("ohs", 800);

  bench::apply_duration(grid, args);
  bench::Reporter reporter(args, "fig09_blocksize");
  const auto aggs =
      reporter.run("fig09_blocksize", grid, bench::series_labels(series));

  harness::TextTable table(bench::sweep_headers("clients"));
  bench::print_series(table, grid, series, aggs);
  table.print(std::cout);

  double ohs_b100_peak = 0;
  for (const auto& s : series) {
    if (s.label != "OHS-b100") continue;
    for (std::size_t i = 0; i < s.count; ++i) {
      if (!aggs[s.begin + i]) continue;
      ohs_b100_peak =
          std::max(ohs_b100_peak, aggs[s.begin + i]->throughput_tps.mean());
    }
  }

  std::cout << "\nresult: expect b100 << b400, b400 -> b800 marginal, SL\n"
               "lowest, OHS >= Bamboo-HS (paper Fig. 9). OHS-b100 peak: "
            << static_cast<long>(ohs_b100_peak / 1e3) << " KTx/s\n";
  reporter.finish();
  return 0;
}
