// Figure 9b (companion study): where does certificate verification move the
// bottleneck from the network to the CPU, and how much does batch
// verification buy back?
//
// The paper's Fig. 9 sweeps block size with signature verification priced
// at a flat per-message cost. This bench prices the k signatures inside
// every QC/TC (Config::verify_strategy) and sweeps the per-signature
// verify cost λ, block size, worker count and — in a second artifact —
// the cluster size (quorum k = 2f+1 is what eager verification actually
// pays per certificate). Expected shapes:
//
//   * λ = 0: all strategies identical (network-bound; the zero-surcharge
//     default is byte-identical to the pre-pipeline simulator).
//   * λ large: throughput collapses under eager verification — the run is
//     CPU-bound; extra verify workers (w4) recover part of the loss.
//   * batch verification pays base + k·(λ/10) per certificate and beats
//     eager increasingly with quorum size (fig09b_quorum artifact).

#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.h"
#include "client/workload.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  bench::print_header(
      "Figure 9b — CPU-bound verification: strategy / workers / quorum",
      "series <strategy>-w<workers>-b<bsize>; x = per-signature verify "
      "cost (us)");

  const std::vector<std::string> strategies = {"eager", "batch",
                                               "amortized-qc"};

  // x axis: the simulated cost of verifying one secp256k1 signature.
  // 40 us ~ a mid-range core; 320 us ~ an embedded-class one.
  std::vector<std::uint32_t> lambda_us = {0, 40, 160, 320};
  if (args.full) lambda_us.push_back(640);

  harness::RunOptions opts;
  opts.warmup_s = 0.3;
  opts.measure_s = args.full ? 2.0 : 0.8;

  std::vector<harness::RunSpec> grid;
  std::vector<bench::SeriesSlice> series;

  auto spec_for = [&](const std::string& strategy, std::uint32_t workers,
                      std::uint32_t n, std::uint32_t bsize,
                      std::uint32_t lambda) {
    core::Config cfg;
    cfg.protocol = "hotstuff";
    cfg.n_replicas = n;
    cfg.bsize = bsize;
    cfg.psize = 0;
    cfg.memsize = 200000;
    cfg.seed = bench::seed_or(args, 9);
    cfg.verify_strategy = strategy;
    cfg.cpu_workers = workers;
    cfg.cpu_verify_per_sig = sim::microseconds(lambda);
    // Batch verification amortizes: one λ-sized base pass per certificate
    // plus λ/10 per signature (the ~10x speedup of batched Schnorr/BLS-style
    // verification over k independent checks).
    cfg.cpu_verify_batch_base = sim::microseconds(lambda);
    cfg.cpu_verify_batch_per_sig = sim::microseconds(lambda / 10);

    harness::RunSpec spec;
    spec.cfg = cfg;
    spec.workload.mode = client::LoadMode::kClosedLoop;
    spec.workload.concurrency = 1024;
    spec.opts = opts;
    spec.offered = lambda;
    return spec;
  };

  // Artifact 1: λ sweep across strategy x workers x block size at n = 4.
  for (const std::string& strategy : strategies) {
    for (std::uint32_t workers : {1u, 4u}) {
      for (std::uint32_t bsize : {100u, 400u}) {
        std::vector<harness::RunSpec> specs;
        for (std::uint32_t lambda : lambda_us) {
          specs.push_back(spec_for(strategy, workers, 4, bsize, lambda));
        }
        const std::string label = strategy + "-w" + std::to_string(workers) +
                                  "-b" + std::to_string(bsize);
        bench::append_series(grid, series, label, std::move(specs));
      }
    }
  }

  // Artifact 2: quorum-size sweep at a fixed λ = 80 us — the per-
  // certificate bill is k·λ eager vs λ + k·(λ/10) batch, so the batch
  // advantage grows with the quorum k = 2f+1.
  const std::vector<std::uint32_t> cluster_sizes = {4, 8, 16};
  std::vector<harness::RunSpec> quorum_grid;
  std::vector<bench::SeriesSlice> quorum_series;
  for (const std::string& strategy : strategies) {
    std::vector<harness::RunSpec> specs;
    for (std::uint32_t n : cluster_sizes) {
      harness::RunSpec spec = spec_for(strategy, 1, n, 400, 80);
      spec.offered = n;
      specs.push_back(std::move(spec));
    }
    bench::append_series(quorum_grid, quorum_series, strategy,
                         std::move(specs));
  }

  bench::apply_duration(grid, args);
  bench::apply_duration(quorum_grid, args);
  bench::Reporter reporter(args, "fig09b_cpu");
  const auto aggs =
      reporter.run("fig09b_cpu", grid, bench::series_labels(series));
  const auto quorum_aggs = reporter.run("fig09b_quorum", quorum_grid,
                                        bench::series_labels(quorum_series));

  harness::TextTable table(bench::sweep_headers("sig-us"));
  bench::print_series(table, grid, series, aggs);
  table.print(std::cout);

  std::cout << "\n";
  harness::TextTable quorum_table(bench::sweep_headers("replicas"));
  bench::print_series(quorum_table, quorum_grid, quorum_series, quorum_aggs);
  quorum_table.print(std::cout);

  // Crossover + batch-vs-eager summary over the points this process ran
  // (sharded runs only see their own slice; merge with bench_merge).
  auto series_peak = [&](const std::vector<bench::SeriesSlice>& slices,
                         const std::vector<harness::RunSpec>& g,
                         const std::vector<std::optional<harness::Aggregate>>&
                             a,
                         const std::string& label,
                         double offered) -> double {
    for (const auto& s : slices) {
      for (std::size_t i = 0; i < s.count; ++i) {
        if (s.label != label) continue;
        if (g[s.begin + i].offered != offered) continue;
        if (!a[s.begin + i]) continue;
        return a[s.begin + i]->throughput_tps.mean();
      }
    }
    return 0;
  };
  const double max_lambda = lambda_us.back();
  const double free_thr = series_peak(series, grid, aggs, "eager-w1-b400", 0);
  const double eager_thr =
      series_peak(series, grid, aggs, "eager-w1-b400", max_lambda);
  const double batch_thr =
      series_peak(series, grid, aggs, "batch-w1-b400", max_lambda);
  const double eager_n16 =
      series_peak(quorum_series, quorum_grid, quorum_aggs, "eager", 16);
  const double batch_n16 =
      series_peak(quorum_series, quorum_grid, quorum_aggs, "batch", 16);

  std::cout << "\nresult: expect a network->CPU-bound crossover as the\n"
               "per-signature cost grows, batch >= eager at high cost and\n"
               "large quorums, and w4 recovering part of the eager loss.\n";
  if (free_thr > 0 && eager_thr > 0) {
    std::cout << "eager-w1-b400: " << static_cast<long>(free_thr / 1e3)
              << " KTx/s free -> " << static_cast<long>(eager_thr / 1e3)
              << " KTx/s at " << static_cast<long>(max_lambda)
              << " us/sig (x"
              << harness::TextTable::num(free_thr / eager_thr, 1)
              << " drop); batch at same cost: "
              << static_cast<long>(batch_thr / 1e3) << " KTx/s (x"
              << harness::TextTable::num(batch_thr / std::max(eager_thr, 1.0),
                                         1)
              << " vs eager)\n";
  }
  if (eager_n16 > 0 && batch_n16 > 0) {
    std::cout << "n=16 @80us/sig: eager "
              << static_cast<long>(eager_n16 / 1e3) << " KTx/s, batch "
              << static_cast<long>(batch_n16 / 1e3) << " KTx/s (x"
              << harness::TextTable::num(batch_n16 / eager_n16, 1) << ")\n";
  }
  reporter.finish();
  return 0;
}
