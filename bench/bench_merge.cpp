// bench_merge: union the result files written by N `--shard i/n` bench
// processes (possibly on N machines) and regenerate the per-spec aggregate
// rows + 95% CIs. The merged directory is bit-identical to what the same
// bench writes unsharded: per-run rows are reordered by (artifact,
// spec_index, rep) and aggregates are refolded in rep order through the
// exact RunningStats::merge path the unsharded run uses.
//
//   bench_merge --out merged/ shards/            # dir: reads manifest*.json
//   bench_merge --out merged/ a/manifest.shard1of3.json b/... c/...

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/report.h"
#include "harness/table.h"
#include "util/json.h"

namespace {

namespace fs = std::filesystem;
using bamboo::harness::report::Record;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read: " + path.string());
  }
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

/// Expand an input argument into manifest paths (sorted for determinism).
std::vector<fs::path> find_manifests(const std::string& arg) {
  std::vector<fs::path> manifests;
  const fs::path p(arg);
  if (fs::is_directory(p)) {
    for (const auto& entry : fs::directory_iterator(p)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("manifest", 0) == 0 && entry.path().extension() == ".json") {
        manifests.push_back(entry.path());
      }
    }
    std::sort(manifests.begin(), manifests.end());
  } else {
    manifests.push_back(p);
  }
  return manifests;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bamboo;

  std::string out_dir;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: " << argv[0]
                << " --out DIR <shard-dir-or-manifest.json>...\n"
                << "Unions per-run result rows from --shard i/n bench runs\n"
                << "and recomputes aggregate rows + 95% CIs; the merged\n"
                << "directory is bit-identical to the unsharded run's.\n";
      return 0;
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (out_dir.empty() || inputs.empty()) {
    std::cerr << "usage: " << argv[0]
              << " --out DIR <shard-dir-or-manifest.json>...\n";
    return 2;
  }

  try {
    std::vector<Record> rows;
    std::string bench;
    std::vector<std::string> formats;
    std::size_t manifests_read = 0;

    for (const std::string& input : inputs) {
      for (const fs::path& manifest_path : find_manifests(input)) {
        const util::Json manifest =
            util::Json::parse(read_file(manifest_path));
        const std::string this_bench = manifest.get_string("bench", "");
        if (bench.empty()) {
          bench = this_bench;
        } else if (bench != this_bench) {
          throw std::runtime_error("manifests from different benches: '" +
                                   bench + "' vs '" + this_bench + "' in " +
                                   manifest_path.string());
        }
        if (formats.empty()) {
          if (const util::Json* fmts = manifest.find("formats");
              fmts != nullptr && fmts->is_array()) {
            for (const util::Json& f : fmts->as_array()) {
              formats.push_back(f.as_string());
            }
          }
        }
        const util::Json* artifacts = manifest.find("artifacts");
        if (artifacts == nullptr || !artifacts->is_array()) continue;
        for (const util::Json& artifact : artifacts->as_array()) {
          const util::Json* files = artifact.find("files");
          if (files == nullptr || !files->is_array()) continue;
          for (const util::Json& file : files->as_array()) {
            if (file.get_string("format", "") != "json") continue;
            const fs::path path =
                manifest_path.parent_path() / file.get_string("path", "");
            const util::Json doc = util::Json::parse(read_file(path));
            if (doc.find("records") == nullptr) {
              std::cerr << "note: skipping non-record artifact "
                        << path.filename().string() << "\n";
              continue;
            }
            for (const util::Json& j : doc.find("records")->as_array()) {
              rows.push_back(harness::report::record_from_json(j));
            }
          }
        }
        ++manifests_read;
      }
    }
    if (manifests_read == 0) {
      throw std::runtime_error("no manifest*.json found in the inputs");
    }
    if (formats.empty()) formats = {"csv", "json"};

    const std::vector<Record> merged =
        harness::report::merge_records(std::move(rows));

    harness::report::ArtifactWriter writer(out_dir, bench, formats);
    for (const Record& r : merged) writer.add(r.artifact, r);
    const auto written = writer.finish();

    std::cout << "merged " << manifests_read << " shard manifest(s) of '"
              << bench << "' -> " << out_dir << "\n\n";
    harness::TextTable table({"artifact", "series", "offered", "reps",
                              "thr(KTx/s)", "lat(ms)", "safety"});
    for (const Record& r : merged) {
      if (r.kind != "aggregate") continue;
      table.add_row(
          {r.artifact, r.series, harness::TextTable::num(r.prov.offered, 0),
           std::to_string(r.reps),
           harness::TextTable::num(r.result.throughput_tps / 1e3, 1) + "±" +
               harness::TextTable::num(r.ci.throughput_tps / 1e3, 1),
           harness::TextTable::num(r.result.latency_ms_mean, 1) + "±" +
               harness::TextTable::num(r.ci.latency_ms_mean, 1),
           r.result.consistent ? "ok" : "VIOLATED"});
    }
    table.print(std::cout);
    std::cout << "\nfiles:\n";
    for (const auto& f : written) std::cout << "  " << f.path << "\n";
  } catch (const std::exception& e) {
    std::cerr << "bench_merge: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
