#pragma once

// Shared plumbing for the per-figure bench binaries: flag parsing, the
// shared ParallelRunner controls (--threads/--seed), and the standard
// column set printed for latency/throughput sweeps.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/runner.h"
#include "harness/table.h"

namespace bamboo::bench {

struct Args {
  bool full = false;       ///< longer windows / more points
  unsigned threads = 0;    ///< 0 = auto (BAMBOO_THREADS or all cores)
  std::uint64_t seed = 0;  ///< 0 = keep each bench's published default
};

inline Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      args.full = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout
          << "usage: " << argv[0] << " [--full] [--threads N] [--seed S]\n"
          << "  --full       longer measurement windows and denser sweeps\n"
          << "  --threads N  worker threads for the run grid (default:\n"
          << "               BAMBOO_THREADS env var, else all cores)\n"
          << "  --seed S     override the bench's default base seed\n";
      std::exit(0);
    }
  }
  return args;
}

/// The runner every bench binary fans its RunSpec grid across.
inline harness::ParallelRunner make_runner(const Args& args) {
  return harness::ParallelRunner(
      harness::RunnerOptions{args.threads});
}

/// The bench's published default seed unless --seed overrode it.
inline std::uint64_t seed_or(const Args& args, std::uint64_t fallback) {
  return args.seed != 0 ? args.seed : fallback;
}

inline void print_header(const std::string& title,
                         const std::string& subtitle) {
  std::cout << "\n=== " << title << " ===\n";
  if (!subtitle.empty()) std::cout << subtitle << "\n";
  std::cout << "\n";
}

/// Append one sweep point to a table with the standard columns.
inline void add_sweep_row(harness::TextTable& table, const std::string& label,
                          double offered, const harness::SweepPoint& p) {
  table.add_row({label, harness::TextTable::num(offered, 0),
                 harness::TextTable::num(p.result.throughput_tps / 1e3, 1),
                 harness::TextTable::num(p.result.latency_ms_mean, 1),
                 harness::TextTable::num(p.result.latency_ms_p99, 1),
                 p.result.consistent ? "ok" : "VIOLATED"});
}

inline std::vector<std::string> sweep_headers(const std::string& offered) {
  return {"series", offered, "thr(KTx/s)", "lat(ms)", "p99(ms)", "safety"};
}

/// A labelled slice of one flat RunSpec grid: bench binaries append every
/// series' specs into a single vector, submit it to the ParallelRunner in
/// one call (maximum overlap across series), then print per-series slices.
struct SeriesSlice {
  std::string label;
  std::size_t begin = 0;
  std::size_t count = 0;
};

inline void append_series(std::vector<harness::RunSpec>& grid,
                          std::vector<SeriesSlice>& series,
                          const std::string& label,
                          std::vector<harness::RunSpec> specs) {
  series.push_back(SeriesSlice{label, grid.size(), specs.size()});
  for (auto& spec : specs) grid.push_back(std::move(spec));
}

/// Print every series slice of a sweep grid with the standard columns.
inline void print_series(harness::TextTable& table,
                         const std::vector<harness::RunSpec>& grid,
                         const std::vector<SeriesSlice>& series,
                         const std::vector<harness::RunResult>& results) {
  for (const SeriesSlice& s : series) {
    for (std::size_t i = 0; i < s.count; ++i) {
      const auto& spec = grid[s.begin + i];
      add_sweep_row(table, s.label, spec.offered,
                    {spec.offered, results[s.begin + i]});
    }
  }
}

/// The paper's three evaluated protocols.
inline const std::vector<std::string>& evaluated_protocols() {
  static const std::vector<std::string> names = {"hotstuff", "2chs",
                                                 "streamlet"};
  return names;
}

inline const char* short_name(const std::string& protocol) {
  if (protocol == "hotstuff") return "HS";
  if (protocol == "2chs") return "2CHS";
  if (protocol == "streamlet") return "SL";
  if (protocol == "fasthotstuff") return "FHS";
  if (protocol == "ohs") return "OHS";
  return protocol.c_str();
}

}  // namespace bamboo::bench
