#pragma once

// Shared plumbing for the per-figure bench binaries: flag parsing and the
// standard column set printed for latency/throughput sweeps.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"

namespace bamboo::bench {

struct Args {
  bool full = false;  ///< longer windows / more points
};

inline Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) args.full = true;
    if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: " << argv[0] << " [--full]\n"
                << "  --full   longer measurement windows and denser sweeps\n";
      std::exit(0);
    }
  }
  return args;
}

inline void print_header(const std::string& title,
                         const std::string& subtitle) {
  std::cout << "\n=== " << title << " ===\n";
  if (!subtitle.empty()) std::cout << subtitle << "\n";
  std::cout << "\n";
}

/// Append one sweep point to a table with the standard columns.
inline void add_sweep_row(harness::TextTable& table, const std::string& label,
                          double offered, const harness::SweepPoint& p) {
  table.add_row({label, harness::TextTable::num(offered, 0),
                 harness::TextTable::num(p.result.throughput_tps / 1e3, 1),
                 harness::TextTable::num(p.result.latency_ms_mean, 1),
                 harness::TextTable::num(p.result.latency_ms_p99, 1),
                 p.result.consistent ? "ok" : "VIOLATED"});
}

inline std::vector<std::string> sweep_headers(const std::string& offered) {
  return {"series", offered, "thr(KTx/s)", "lat(ms)", "p99(ms)", "safety"};
}

/// The paper's three evaluated protocols.
inline const std::vector<std::string>& evaluated_protocols() {
  static const std::vector<std::string> names = {"hotstuff", "2chs",
                                                 "streamlet"};
  return names;
}

inline const char* short_name(const std::string& protocol) {
  if (protocol == "hotstuff") return "HS";
  if (protocol == "2chs") return "2CHS";
  if (protocol == "streamlet") return "SL";
  if (protocol == "fasthotstuff") return "FHS";
  if (protocol == "ohs") return "OHS";
  return protocol.c_str();
}

}  // namespace bamboo::bench
