#pragma once

// Shared plumbing for the per-figure bench binaries: one CLI layer
// (--full/--threads/--seed/--reps/--duration/--out/--format/--shard), the
// Reporter that routes every RunSpec grid through multi-seed repetition +
// the report sinks (so tables show 95% CIs and every run lands on disk),
// and the standard column set printed for latency/throughput sweeps.

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "harness/table.h"

namespace bamboo::bench {

struct Args {
  bool full = false;       ///< longer windows / more points
  unsigned threads = 0;    ///< 0 = auto (BAMBOO_THREADS or all cores)
  std::uint64_t seed = 0;  ///< 0 = keep each bench's published default
  std::uint32_t reps = 1;  ///< seeds per spec (CIs need >= 2)
  double duration = 0;     ///< >0 overrides every measurement window (s)
  std::string out;         ///< artifact directory; empty = don't persist
  std::vector<std::string> formats = {"csv", "json"};
  harness::Shard shard;    ///< --shard i/n cross-process slice
};

inline std::vector<std::string> parse_formats(const std::string& list) {
  std::vector<std::string> formats;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string f = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (f != "csv" && f != "json") {
      std::cerr << "unknown --format '" << f << "' (want csv and/or json)\n";
      std::exit(2);
    }
    formats.push_back(f);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return formats;
}

inline Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      args.full = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      args.reps = static_cast<std::uint32_t>(
          std::strtoul(argv[++i], nullptr, 10));
      if (args.reps == 0) args.reps = 1;
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      args.duration = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      args.out = argv[++i];
    } else if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      args.formats = parse_formats(argv[++i]);
    } else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
      try {
        args.shard = harness::Shard::parse(argv[++i]);
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout
          << "usage: " << argv[0]
          << " [--full] [--threads N] [--seed S] [--reps R]\n"
          << "       [--duration S] [--out DIR] [--format csv,json]"
          << " [--shard i/n]\n"
          << "  --full        longer measurement windows and denser sweeps\n"
          << "  --threads N   worker threads for the run grid (default:\n"
          << "                BAMBOO_THREADS env var, else all cores)\n"
          << "  --seed S      override the bench's default base seed\n"
          << "  --reps R      repetitions per sweep point under seeds\n"
          << "                S..S+R-1; tables then show mean ± 95% CI\n"
          << "  --duration S  override every measurement window (smoke runs)\n"
          << "  --out DIR     persist results: one CSV/JSON file per\n"
          << "                figure/table plus manifest.json\n"
          << "  --format F    comma list of csv,json (default both)\n"
          << "  --shard i/n   run only the i-th of n deterministic slices of\n"
          << "                the (spec x rep) grid; merge the per-shard\n"
          << "                files with bench_merge\n";
      std::exit(0);
    }
  }
  return args;
}

/// The bench's published default seed unless --seed overrode it.
inline std::uint64_t seed_or(const Args& args, std::uint64_t fallback) {
  return args.seed != 0 ? args.seed : fallback;
}

/// Apply the global --duration override to a built grid.
inline void apply_duration(std::vector<harness::RunSpec>& grid,
                           const Args& args) {
  if (args.duration <= 0) return;
  for (harness::RunSpec& spec : grid) {
    spec.opts.measure_s = args.duration;
    spec.opts.warmup_s = std::min(spec.opts.warmup_s, args.duration / 2);
  }
}

inline void print_header(const std::string& title,
                         const std::string& subtitle) {
  std::cout << "\n=== " << title << " ===\n";
  if (!subtitle.empty()) std::cout << subtitle << "\n";
  std::cout << "\n";
}

/// Mean of a per-run accounting value across the reps of one aggregate
/// (for RunResult fields — views, timeouts, forks — that Aggregate does
/// not track as headline metrics).
template <typename Field>
double mean_of(const harness::Aggregate& agg, Field&& field) {
  if (agg.results.empty()) return 0.0;
  double sum = 0;
  for (const harness::RunResult& r : agg.results) {
    sum += static_cast<double>(field(r));
  }
  return sum / static_cast<double>(agg.runs);
}

/// "mean±ci" cell for one aggregated metric (scale applied to both).
inline std::string ci_cell(const harness::MetricSummary& m, double scale,
                           int precision) {
  return harness::TextTable::num(m.mean() * scale, precision) + "±" +
         harness::TextTable::num(m.ci95() * scale, precision);
}

/// Append one sweep point (multi-seed aggregate) with the standard columns.
inline void add_sweep_row(harness::TextTable& table, const std::string& label,
                          double offered, const harness::Aggregate& agg) {
  table.add_row({label, harness::TextTable::num(offered, 0),
                 ci_cell(agg.throughput_tps, 1e-3, 1),
                 ci_cell(agg.latency_ms_mean, 1.0, 1),
                 ci_cell(agg.latency_ms_p99, 1.0, 1),
                 agg.all_consistent ? "ok" : "VIOLATED"});
}

inline std::vector<std::string> sweep_headers(const std::string& offered) {
  return {"series", offered, "thr(KTx/s)", "lat(ms)", "p99(ms)", "safety"};
}

/// A labelled slice of one flat RunSpec grid: bench binaries append every
/// series' specs into a single vector, submit it to the ParallelRunner in
/// one call (maximum overlap across series), then print per-series slices.
struct SeriesSlice {
  std::string label;
  std::size_t begin = 0;
  std::size_t count = 0;
};

inline void append_series(std::vector<harness::RunSpec>& grid,
                          std::vector<SeriesSlice>& series,
                          const std::string& label,
                          std::vector<harness::RunSpec> specs) {
  series.push_back(SeriesSlice{label, grid.size(), specs.size()});
  for (auto& spec : specs) grid.push_back(std::move(spec));
}

/// Label lookup over the series slices for a flat grid index.
inline std::function<std::string(std::size_t)> series_labels(
    const std::vector<SeriesSlice>& series) {
  return [&series](std::size_t index) {
    for (const SeriesSlice& s : series) {
      if (index >= s.begin && index < s.begin + s.count) return s.label;
    }
    return std::string("?");
  };
}

/// Print every series slice of a sweep grid with the standard columns.
inline void print_series(
    harness::TextTable& table, const std::vector<harness::RunSpec>& grid,
    const std::vector<SeriesSlice>& series,
    const std::vector<std::optional<harness::Aggregate>>& aggs) {
  for (const SeriesSlice& s : series) {
    for (std::size_t i = 0; i < s.count; ++i) {
      const auto& spec = grid[s.begin + i];
      if (!aggs[s.begin + i]) continue;  // not owned by this shard
      add_sweep_row(table, s.label, spec.offered, *aggs[s.begin + i]);
    }
  }
}

/// Runs grids through multi-seed repetition + the result sinks: the glue
/// every bench binary shares. One Reporter per binary; run() per figure
/// artifact; finish() writes the artifact directory.
class Reporter {
 public:
  Reporter(Args args, std::string bench)
      : args_(std::move(args)),
        bench_(std::move(bench)),
        runner_(harness::RunnerOptions{args_.threads}),
        writer_(args_.out, bench_, args_.formats, args_.shard) {}

  [[nodiscard]] const Args& args() const { return args_; }
  [[nodiscard]] harness::ParallelRunner& runner() { return runner_; }
  [[nodiscard]] bool sharded() const { return args_.shard.enabled(); }

  /// Execute grid x --reps (this shard's slice) in one submission; persist
  /// one run row per (spec, rep) plus one aggregate row per complete spec.
  /// Returns per-spec aggregates; disengaged entries belong to other shards.
  std::vector<std::optional<harness::Aggregate>> run(
      const std::string& artifact, const std::vector<harness::RunSpec>& grid,
      const std::function<std::string(std::size_t)>& series_of) {
    auto grid_run = runner_.run_repeated_grid(grid, args_.reps, args_.shard);
    if (writer_.enabled()) {
      std::size_t i = 0;
      while (i < grid_run.jobs.size()) {
        const std::uint32_t s = grid_run.jobs[i].spec_index;
        std::size_t end = i;
        while (end < grid_run.jobs.size() &&
               grid_run.jobs[end].spec_index == s) {
          ++end;
        }
        const std::string label = series_of(s);
        for (std::size_t j = i; j < end; ++j) {
          writer_.add(artifact, harness::report::make_run_record(
                                    bench_, artifact, label, s, grid[s],
                                    grid_run.jobs[j].rep, args_.reps,
                                    grid_run.jobs[j].result));
        }
        if (grid_run.aggregates[s]) {
          writer_.add(artifact,
                      harness::report::make_aggregate_record(
                          bench_, artifact, label, s, grid[s],
                          grid_run.aggregates[s]->results));
        }
        i = end;
      }
    }
    executed_ += grid_run.jobs.size();
    total_ += grid.size() * args_.reps;
    return std::move(grid_run.aggregates);
  }

  /// Single-seed execute_full for timeline benches, sharded per spec;
  /// persists one run + one (1-rep) aggregate row per owned spec, plus —
  /// when the spec captured a timeline — one "timeline" record per bucket
  /// under the `<artifact>_timeline` artifact. Timeline records survive
  /// bench_merge (unlike free-form side tables), so a sharded timeline
  /// bench merges bit-identically to the unsharded run.
  std::vector<std::optional<harness::RunOutput>> run_full(
      const std::string& artifact, const std::vector<harness::RunSpec>& grid,
      const std::function<std::string(std::size_t)>& series_of) {
    std::vector<harness::RunSpec> owned;
    std::vector<std::size_t> owned_index;
    for (std::size_t s = 0; s < grid.size(); ++s) {
      if (!args_.shard.owns(s)) continue;
      owned.push_back(grid[s]);
      owned_index.push_back(s);
    }
    const auto outputs = runner_.run_full(owned);
    std::vector<std::optional<harness::RunOutput>> out(grid.size());
    for (std::size_t k = 0; k < outputs.size(); ++k) {
      const std::size_t s = owned_index[k];
      if (writer_.enabled()) {
        const std::string label = series_of(s);
        const auto idx = static_cast<std::uint32_t>(s);
        writer_.add(artifact, harness::report::make_run_record(
                                  bench_, artifact, label, idx, grid[s], 0, 1,
                                  outputs[k].result));
        writer_.add(artifact, harness::report::make_aggregate_record(
                                  bench_, artifact, label, idx, grid[s],
                                  {outputs[k].result}));
        if (!outputs[k].tx_per_s.empty()) {
          const std::string timeline_artifact = artifact + "_timeline";
          for (auto& rec : harness::report::make_timeline_records(
                   bench_, timeline_artifact, label, idx, grid[s],
                   outputs[k])) {
            writer_.add(timeline_artifact, rec);
          }
        }
      }
      out[s] = outputs[k];
    }
    executed_ += outputs.size();
    total_ += grid.size();
    return out;
  }

  /// Free-form side table (e.g. a timeline) persisted next to the records.
  void add_table(const std::string& artifact,
                 std::vector<std::string> headers,
                 std::vector<std::vector<std::string>> rows) {
    writer_.add_table(artifact, std::move(headers), std::move(rows));
  }

  /// Write the artifact directory (if --out) and print what happened.
  void finish() {
    if (sharded()) {
      std::cout << "\nshard " << args_.shard.index + 1 << "/"
                << args_.shard.count << ": executed " << executed_ << " of "
                << total_ << " jobs; merge shard files with bench_merge\n";
    }
    const auto files = writer_.finish();
    if (!files.empty()) {
      std::cout << "\nartifacts (" << bench_ << ") -> " << args_.out << ":\n";
      for (const auto& f : files) {
        std::cout << "  " << f.path << "\n";
      }
    }
  }

 private:
  Args args_;
  std::string bench_;
  harness::ParallelRunner runner_;
  harness::report::ArtifactWriter writer_;
  std::size_t executed_ = 0;
  std::size_t total_ = 0;
};

/// The paper's three evaluated protocols.
inline const std::vector<std::string>& evaluated_protocols() {
  static const std::vector<std::string> names = {"hotstuff", "2chs",
                                                 "streamlet"};
  return names;
}

inline const char* short_name(const std::string& protocol) {
  if (protocol == "hotstuff") return "HS";
  if (protocol == "2chs") return "2CHS";
  if (protocol == "streamlet") return "SL";
  if (protocol == "fasthotstuff") return "FHS";
  if (protocol == "fnfbft") return "FnF";
  if (protocol == "ohs") return "OHS";
  return protocol.c_str();
}

}  // namespace bamboo::bench
