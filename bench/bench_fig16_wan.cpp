// Figure 16 (extension): chained-BFT under WAN scenarios, driven by the
// pluggable LinkModel/Topology subsystem (net/link_model.h, net/topology.h).
//
// Two artifacts:
//   fig16_wan_dist — delay distribution family x protocol on a 3-region
//     WAN: every family is parameterized to the SAME mean one-way delay,
//     so differences isolate the *shape* of the distribution (the
//     heavy-tail Pareto stresses view timers hardest; cf. "Unraveling
//     Responsiveness of Chained BFT Consensus with Network Delay").
//   fig16_wan_topo — topology scenario x protocol at fixed load: uniform
//     LAN vs 3-region WAN vs a single slow replica vs an asymmetric slow
//     leader uplink (the FnF-BFT heterogeneous-leader condition).
//
// Chain growth rate is reported alongside latency/throughput: delay shape
// and link asymmetry move CGR before they move throughput.

#include "bench_common.h"
#include "client/workload.h"

namespace {

bamboo::core::Config base_config(const std::string& protocol,
                                 std::uint64_t seed) {
  bamboo::core::Config cfg;
  cfg.protocol = protocol;
  cfg.n_replicas = 6;
  cfg.bsize = 400;
  cfg.psize = 128;
  cfg.memsize = 200000;
  // Cross-region hops add ~20 ms one-way; give view timers WAN headroom.
  cfg.timeout = bamboo::sim::milliseconds(300);
  cfg.seed = seed;
  return cfg;
}

void add_wan_row(bamboo::harness::TextTable& table, const std::string& label,
                 double offered, const bamboo::harness::Aggregate& agg) {
  table.add_row({label, bamboo::harness::TextTable::num(offered, 0),
                 bamboo::bench::ci_cell(agg.throughput_tps, 1e-3, 1),
                 bamboo::bench::ci_cell(agg.latency_ms_mean, 1.0, 1),
                 bamboo::bench::ci_cell(agg.latency_ms_p99, 1.0, 1),
                 bamboo::bench::ci_cell(agg.cgr_per_block, 1.0, 3),
                 agg.all_consistent ? "ok" : "VIOLATED"});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  bench::print_header(
      "Figure 16 — WAN scenarios: delay distributions & topologies",
      "3-region WAN (40 ms inter-region RTT); families share one mean");

  const std::vector<std::string> families = {"normal", "uniform", "lognormal",
                                             "pareto"};
  const char* kWan = "wan:3:40";
  std::vector<std::uint32_t> ladder = {256, 1024};
  if (args.full) ladder = {64, 256, 1024, 4096};

  harness::RunOptions opts;
  opts.warmup_s = 0.4;
  opts.measure_s = args.full ? 2.5 : 1.0;

  // --- artifact 1: delay distribution x protocol on the WAN --------------
  std::vector<harness::RunSpec> dist_grid;
  std::vector<bench::SeriesSlice> dist_series;
  for (const std::string& protocol : bench::evaluated_protocols()) {
    for (const std::string& family : families) {
      core::Config cfg = base_config(protocol, bench::seed_or(args, 16));
      cfg.link_model = family;
      cfg.topology = kWan;
      client::WorkloadConfig wl;
      bench::append_series(
          dist_grid, dist_series,
          std::string(bench::short_name(protocol)) + "-" + family,
          harness::closed_loop_specs(cfg, wl, ladder, opts));
    }
  }

  // --- artifact 2: topology scenario x protocol at fixed load ------------
  struct Scenario {
    const char* tag;
    const char* topology;
  };
  const std::vector<Scenario> scenarios = {
      {"lan", "uniform"},
      {"wan", kWan},
      {"slowrep", "slow-replica:5:20"},
      {"slowleader", "slow-leader:20:0"},
  };
  const std::vector<std::uint32_t> topo_ladder = {1024};
  std::vector<harness::RunSpec> topo_grid;
  std::vector<bench::SeriesSlice> topo_series;
  for (const std::string& protocol : bench::evaluated_protocols()) {
    for (const Scenario& scenario : scenarios) {
      core::Config cfg = base_config(protocol, bench::seed_or(args, 16));
      cfg.topology = scenario.topology;
      client::WorkloadConfig wl;
      bench::append_series(
          topo_grid, topo_series,
          std::string(bench::short_name(protocol)) + "-" + scenario.tag,
          harness::closed_loop_specs(cfg, wl, topo_ladder, opts));
    }
  }

  bench::apply_duration(dist_grid, args);
  bench::apply_duration(topo_grid, args);
  bench::Reporter reporter(args, "fig16_wan");
  const auto dist_aggs = reporter.run("fig16_wan_dist", dist_grid,
                                      bench::series_labels(dist_series));
  const auto topo_aggs = reporter.run("fig16_wan_topo", topo_grid,
                                      bench::series_labels(topo_series));

  const std::vector<std::string> headers = {
      "series", "clients", "thr(KTx/s)", "lat(ms)", "p99(ms)", "cgr", "safety"};
  {
    std::cout << "--- delay distribution x protocol (" << kWan << ") ---\n";
    harness::TextTable table(headers);
    for (const bench::SeriesSlice& s : dist_series) {
      for (std::size_t i = 0; i < s.count; ++i) {
        if (!dist_aggs[s.begin + i]) continue;  // another shard's spec
        add_wan_row(table, s.label, dist_grid[s.begin + i].offered,
                    *dist_aggs[s.begin + i]);
      }
    }
    table.print(std::cout);
  }
  {
    std::cout << "\n--- topology scenario x protocol ---\n";
    harness::TextTable table(headers);
    for (const bench::SeriesSlice& s : topo_series) {
      for (std::size_t i = 0; i < s.count; ++i) {
        if (!topo_aggs[s.begin + i]) continue;
        add_wan_row(table, s.label, topo_grid[s.begin + i].offered,
                    *topo_aggs[s.begin + i]);
      }
    }
    table.print(std::cout);
  }

  std::cout << "\nresult: heavy-tail (pareto) delays cut chain growth and\n"
               "raise p99 hardest; the slow-leader uplink degrades CGR with\n"
               "little throughput warning (heterogeneous-leader effect).\n";
  reporter.finish();
  return 0;
}
