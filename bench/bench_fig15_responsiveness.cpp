// Figure 15: responsiveness — throughput over time for two settings:
//   t10 : 10 ms view timeout, every protocol proposes as soon as 2f+1
//         view-change messages arrive (responsive proposing),
//   t100: 100 ms timeout, every protocol waits the full timeout after a
//         view change (conservative proposing).
// A 10-second window of network fluctuation (extra one-way delay uniform
// in [10 ms, 100 ms]) hits mid-run; afterwards one replica turns silent.
// Expected shapes: under t10 everyone stalls during the fluctuation; the
// responsive HotStuff resumes at network speed afterwards, with throughput
// waves from the silent leader; the non-responsive protocols recover far
// worse. Under t100 all three stay live throughout, at lower throughput.
//
// All six timelines (2 settings x 3 protocols) are independent RunSpecs
// executed through the ParallelRunner in one submission.

#include "bench_common.h"
#include "client/workload.h"

int main(int argc, char** argv) {
  using namespace bamboo;
  const auto args = bench::parse_args(argc, argv);

  // --duration S compresses the whole scenario to an 8S horizon (smoke
  // runs); otherwise the published 24 s / 40 s (--full) timelines.
  const double horizon =
      args.duration > 0 ? std::max(2.0, 8 * args.duration)
                        : (args.full ? 40.0 : 24.0);
  const double fluct_start = horizon / 4.0;
  const double fluct_end = horizon / 2.0;
  const double fault_at = fluct_end + (args.duration > 0 ? horizon / 12.0 : 2.0);
  const double bucket = args.full ? horizon / 40.0 : horizon / 48.0;

  bench::print_header(
      "Figure 15 — responsiveness under fluctuation + silent replica",
      "fluctuation [" + harness::TextTable::num(fluct_start, 0) + "s, " +
          harness::TextTable::num(fluct_end, 0) + "s), replica turns " +
          "silent at " + harness::TextTable::num(fault_at, 0) + "s");

  struct Setting {
    const char* tag;
    sim::Duration timeout;
    sim::Duration propose_wait;
  };
  // t100's conservative wait is the assumed maximal network delay; it must
  // stay below the view timer or the delayed proposal always loses the
  // race against peers' timeouts and no view can ever complete.
  const Setting settings[] = {
      {"t10", sim::milliseconds(10), 0},
      {"t100", sim::milliseconds(100), sim::milliseconds(50)},
  };

  std::vector<harness::RunSpec> grid;
  for (const Setting& setting : settings) {
    for (const std::string& protocol : bench::evaluated_protocols()) {
      core::Config cfg;
      cfg.protocol = protocol;
      cfg.n_replicas = 4;
      cfg.bsize = 400;
      cfg.memsize = 200000;
      cfg.timeout = setting.timeout;
      cfg.propose_wait_after_vc = setting.propose_wait;
      cfg.seed = bench::seed_or(args, 15);
      // Baseline network through the LinkModel subsystem: the default
      // normal/uniform pair is bit-compatible with the original transport,
      // and the mid-run fluctuation is injected on top of whatever link
      // model the scenario configures.
      cfg.link_model = "normal";
      cfg.topology = "uniform";

      client::WorkloadConfig wl;
      wl.mode = client::LoadMode::kOpenLoop;
      wl.arrival_rate_tps = 20000;

      grid.push_back(harness::timeline_spec(
          cfg, wl, horizon, bucket, fluct_start, fluct_end,
          sim::milliseconds(10), sim::milliseconds(100), fault_at,
          cfg.n_replicas - 1, harness::FaultKind::kSilence));
    }
  }

  bench::Reporter reporter(args, "fig15_responsiveness");
  const std::size_t protocols = bench::evaluated_protocols().size();
  const auto series_of = [&](std::size_t index) {
    return std::string(settings[index / protocols].tag) + "-" +
           bench::short_name(bench::evaluated_protocols()[index % protocols]);
  };
  const auto outputs =
      reporter.run_full("fig15_responsiveness", grid, series_of);

  for (std::size_t si = 0; si < std::size(settings); ++si) {
    const Setting& setting = settings[si];
    harness::TextTable table({"t(s)", "HS(KTx/s)", "2CHS(KTx/s)",
                              "SL(KTx/s)"});
    const std::size_t base = si * protocols;
    std::size_t buckets = 0;
    for (std::size_t p = 0; p < protocols; ++p) {
      if (outputs[base + p]) {
        buckets = std::max(buckets, outputs[base + p]->tx_per_s.size());
      }
    }
    for (std::size_t i = 0; i < buckets; ++i) {
      std::vector<std::string> row;
      row.push_back(harness::TextTable::num(i * bucket, 1));
      for (std::size_t p = 0; p < protocols; ++p) {
        if (!outputs[base + p]) {
          row.push_back("-");  // another shard's timeline
          continue;
        }
        const auto& s = outputs[base + p]->tx_per_s;
        row.push_back(harness::TextTable::num(
            (i < s.size() ? s[i] : 0.0) / 1e3, 1));
      }
      table.add_row(std::move(row));
    }
    // Timelines persist as per-bucket "timeline" Records (artifact
    // fig15_responsiveness_timeline) via Reporter::run_full — flat rows
    // that bench_merge recombines bit-identically, replacing the side
    // tables sharded runs used to skip.
    std::cout << "--- setting " << setting.tag << " (timeout "
              << sim::to_milliseconds(setting.timeout) << " ms, wait "
              << sim::to_milliseconds(setting.propose_wait)
              << " ms after view change) ---\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "result: t10 stalls everyone during fluctuation, HS recovers\n"
               "at network speed with waves under the silent leader; t100\n"
               "keeps all protocols live at lower throughput (paper "
               "Fig. 15).\n";
  reporter.finish();
  return 0;
}
