// Model explorer: the paper's queuing model (§V) as a design tool — the
// "back-of-the-envelope guide" for dissecting a cBFT deployment before
// building it. Sweeps one parameter at a time and prints the predicted
// latency decomposition (Eq. 3) and saturation point.
//
//   ./build/examples/model_explorer

#include <iostream>

#include "client/workload.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "model/order_stats.h"
#include "model/perf_model.h"

int main() {
  using namespace bamboo;

  std::cout << "The paper's Eq. 3: latency = t_L + t_s + t_commit + w_Q\n"
               "with t_s = CPU stages + NIC hops + t_Q (Eq. 4) and w_Q from\n"
               "an M/D/1 queue (Eq. 5). All constants from Config.\n\n";

  {
    std::cout << "--- t_Q: quorum wait as the cluster grows (RTT 1ms "
                 "± 0.1ms) ---\n";
    harness::TextTable table({"replicas", "quorum", "t_Q(ms)"});
    for (std::uint32_t n : {4u, 8u, 16u, 32u, 64u, 128u}) {
      table.add_row({std::to_string(n),
                     std::to_string(types::quorum_size(n)),
                     harness::TextTable::num(
                         model::quorum_delay(n, 1.0, 0.1), 3)});
    }
    table.print(std::cout);
    std::cout << "(the (2N/3-1)-th order statistic of N-1 normal delays —\n"
                 "it grows, but slowly: the tail quantile flattens)\n\n";
  }

  {
    std::cout << "--- latency decomposition per protocol (N=4, b=400, "
                 "50% load) ---\n";
    harness::TextTable table({"protocol", "t_L", "t_s", "t_commit", "w_Q",
                              "turn-wait", "total(ms)", "sat(KTx/s)"});
    for (const std::string protocol : {"hotstuff", "2chs", "streamlet",
                                       "fasthotstuff"}) {
      core::Config cfg;
      cfg.protocol = protocol;
      const model::PerfModel pm(cfg);
      const double lambda = 0.5 * pm.saturation_tps();
      table.add_row(
          {protocol, harness::TextTable::num(sim::to_milliseconds(cfg.rtt_mean), 2),
           harness::TextTable::num(pm.t_s_ms(), 2),
           harness::TextTable::num(pm.t_commit_ms(), 2),
           harness::TextTable::num(pm.w_q_ms(lambda), 2),
           harness::TextTable::num(pm.turn_wait_ms(), 2),
           harness::TextTable::num(pm.latency_ms(lambda), 1),
           harness::TextTable::num(pm.saturation_tps() / 1e3, 1)});
    }
    table.print(std::cout);
    std::cout << "(HotStuff's extra t_s of commit wait vs the two-chain\n"
                 "protocols is the paper's central latency trade-off)\n\n";
  }

  {
    std::cout << "--- what-if: faster NICs (N=16, b=400, p=128) ---\n";
    harness::TextTable table({"bandwidth", "saturation(KTx/s)",
                              "lat@50%(ms)"});
    for (double gbps : {1.0, 2.5, 10.0, 25.0}) {
      core::Config cfg;
      cfg.n_replicas = 16;
      cfg.psize = 128;
      cfg.bandwidth_bps = gbps * 1e9;
      const model::PerfModel pm(cfg);
      table.add_row({harness::TextTable::num(gbps, 1) + " Gb/s",
                     harness::TextTable::num(pm.saturation_tps() / 1e3, 1),
                     harness::TextTable::num(
                         pm.latency_ms(0.5 * pm.saturation_tps()), 1)});
    }
    table.print(std::cout);
    std::cout << "(leader egress fan-out is the scalability wall; past a\n"
                 "few Gb/s the CPU pipeline takes over as the bottleneck)\n\n";
  }

  {
    std::cout << "--- what-if: batching vs latency (N=4, 30% load) ---\n";
    harness::TextTable table({"bsize", "saturation(KTx/s)", "lat(ms)"});
    for (std::uint32_t bsize : {50u, 100u, 200u, 400u, 800u, 1600u}) {
      core::Config cfg;
      cfg.bsize = bsize;
      const model::PerfModel pm(cfg);
      table.add_row({std::to_string(bsize),
                     harness::TextTable::num(pm.saturation_tps() / 1e3, 1),
                     harness::TextTable::num(
                         pm.latency_ms(0.3 * pm.saturation_tps()), 1)});
    }
    table.print(std::cout);
    std::cout << "(throughput gains flatten past b=400 while batching keeps\n"
                 "adding latency — why the paper settles on 400)\n\n";
  }

  {
    std::cout << "--- sanity: model vs engine at 50% load (N=4, b=400, "
                 "3 seeds) ---\n";
    // Three quick simulated seeds per protocol through the multi-seed grid
    // runner, to show the paper-style overlay (with 95% CIs) the full
    // Fig. 8 bench sweeps.
    std::vector<harness::RunSpec> grid;
    const std::vector<std::string> protocols = {"hotstuff", "2chs",
                                                "streamlet"};
    for (const std::string& protocol : protocols) {
      harness::RunSpec spec;
      spec.cfg.protocol = protocol;
      spec.cfg.memsize = 200000;
      spec.cfg.seed = 5;
      spec.workload.mode = client::LoadMode::kOpenLoop;
      const model::PerfModel pm(spec.cfg);
      spec.workload.arrival_rate_tps = 0.5 * pm.saturation_tps();
      spec.offered = spec.workload.arrival_rate_tps;
      spec.opts.warmup_s = 0.2;
      spec.opts.measure_s = 0.6;
      grid.push_back(std::move(spec));
    }
    harness::ParallelRunner runner;
    const auto grid_run = runner.run_repeated_grid(grid, 3);

    harness::TextTable table({"protocol", "lambda(Tx/s)", "engine lat(ms)",
                              "±95% CI", "model lat(ms)"});
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      // Predict from the exact config that was measured.
      const model::PerfModel pm(grid[i].cfg);
      const harness::Aggregate& agg = *grid_run.aggregates[i];
      table.add_row({protocols[i],
                     harness::TextTable::num(grid[i].offered, 0),
                     harness::TextTable::num(agg.latency_ms_mean.mean(), 1),
                     harness::TextTable::num(agg.latency_ms_mean.ci95(), 1),
                     harness::TextTable::num(
                         pm.latency_ms(grid[i].offered), 1)});
    }
    table.print(std::cout);
    std::cout << "(the engine run and Eq. 3 should land in the same regime;\n"
                 "bench_fig08_model sweeps the full overlay)\n";
  }
  return 0;
}
