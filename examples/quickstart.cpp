// Quickstart: spin up a 4-replica HotStuff cluster on the simulated
// network, offer closed-loop load for one simulated second, and print the
// paper's four metrics plus a cross-replica consistency check.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/quickstart [protocol] [topology] [link_model] [churn-dsl]
// where protocol is one of: hotstuff (default), 2chs, streamlet,
// fasthotstuff; topology is a WAN scenario spec (e.g. "wan:3:40",
// "slow-leader:20"); link_model is normal | uniform | lognormal | pareto;
// churn-dsl is a network-churn schedule (docs/SCENARIOS.md). Try:
//   ./build/quickstart hotstuff wan:3:40 pareto
//   ./build/quickstart hotstuff uniform normal 'partition@0.5s:...;heal@0.8s'
// (the trailing argument takes any churn-DSL schedule)

#include <iostream>
#include <string>

#include "client/workload.h"
#include "core/config.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace bamboo;

  core::Config cfg;
  cfg.protocol = argc > 1 ? argv[1] : "hotstuff";
  cfg.n_replicas = 4;
  cfg.bsize = 400;
  cfg.seed = 2021;
  if (argc > 2) cfg.topology = argv[2];
  if (argc > 3) cfg.link_model = argv[3];
  if (argc > 4) cfg.churn = argv[4];
  // WAN scenarios add tens of ms per hop; keep view timers clear of it.
  if (cfg.topology != "uniform") cfg.timeout = sim::milliseconds(300);

  client::WorkloadConfig wl;
  wl.mode = client::LoadMode::kClosedLoop;
  wl.concurrency = 256;

  harness::RunOptions opts;
  opts.warmup_s = 0.25;
  opts.measure_s = 1.0;

  std::cout << "protocol   : " << cfg.protocol << "\n"
            << "network    : " << cfg.topology << " / " << cfg.link_model
            << " links\n"
            << "churn      : " << (cfg.churn.empty() ? "none" : cfg.churn)
            << "\n"
            << "replicas   : " << cfg.n_replicas << " (quorum "
            << cfg.quorum() << ")\n"
            << "block size : " << cfg.bsize << " txns\n"
            << "clients    : " << wl.concurrency << " closed-loop sessions\n"
            << "\nrunning " << opts.warmup_s + opts.measure_s
            << "s of simulated time...\n\n";

  // Config parsing, topology construction and churn installation all
  // throw std::invalid_argument on user typos — exit cleanly, not via
  // std::terminate.
  harness::RunResult r;
  try {
    r = harness::run_experiment(cfg, wl, opts);
  } catch (const std::exception& e) {
    std::cerr << "invalid configuration: " << e.what() << "\n";
    return 2;
  }

  std::cout << "throughput     : " << static_cast<long>(r.throughput_tps)
            << " tx/s\n"
            << "latency (mean) : " << r.latency_ms_mean << " ms\n"
            << "latency (p99)  : " << r.latency_ms_p99 << " ms\n"
            << "chain growth   : " << r.cgr_per_block
            << " committed/appended (" << r.cgr_per_view << " per view)\n"
            << "block interval : " << r.block_interval << " views\n"
            << "views          : " << r.views << ", committed blocks: "
            << r.blocks_committed << ", timeouts: " << r.timeouts << "\n"
            << "consistency    : "
            << (r.consistent ? "all honest replicas agree" : "VIOLATED!")
            << "\n";

  return (r.consistent && r.safety_violations == 0 && r.blocks_committed > 0)
             ? 0
             : 1;
}
