// Quickstart: spin up a 4-replica HotStuff cluster on the simulated
// network, offer closed-loop load for one simulated second, and print the
// paper's four metrics plus a cross-replica consistency check.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/quickstart [protocol] [topology] [link_model] [churn-dsl] \
//                      [workload] [mempool] [store]
// where protocol is one of: hotstuff (default), 2chs, streamlet,
// fasthotstuff; topology is a WAN scenario spec (e.g. "wan:3:40",
// "slow-leader:20"); link_model is normal | uniform | lognormal | pareto;
// churn-dsl is a network-churn schedule (docs/SCENARIOS.md); workload is
// "closed[:sessions]" (default closed:256) or "open:<tps>[:arrival-dsl]"
// (docs/OVERLOAD.md, e.g. "open:40000:burst:1x0.2,4x0.1"); mempool is
// "<memsize>[:admission-dsl]" (e.g. "2000:priority:0.1"); store is
// "memory" (default) or "file[:retention]" — the durable block store that
// crash-restart churn replays on restart (docs/SCENARIOS.md recipe 17).
// Try:
//   ./build/quickstart hotstuff wan:3:40 pareto
//   ./build/quickstart hotstuff uniform normal 'partition@0.5s:...;heal@0.8s'
//   ./build/quickstart hotstuff uniform normal '' open:120000 2000:backoff:5
//   ./build/quickstart hotstuff uniform normal \
//       'crash-restart@0.5s:replica=2:for=0.2s' '' '' file

#include <cstdlib>
#include <iostream>
#include <string>

#include "client/workload.h"
#include "core/config.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace bamboo;

  core::Config cfg;
  cfg.protocol = argc > 1 ? argv[1] : "hotstuff";
  cfg.n_replicas = 4;
  cfg.bsize = 400;
  cfg.seed = 2021;
  if (argc > 2) cfg.topology = argv[2];
  if (argc > 3) cfg.link_model = argv[3];
  if (argc > 4) cfg.churn = argv[4];
  // WAN scenarios add tens of ms per hop; keep view timers clear of it.
  if (cfg.topology != "uniform") cfg.timeout = sim::milliseconds(300);

  client::WorkloadConfig wl;
  wl.mode = client::LoadMode::kClosedLoop;
  wl.concurrency = 256;
  if (argc > 5) {
    const std::string spec = argv[5];
    if (spec.rfind("open:", 0) == 0) {
      wl.mode = client::LoadMode::kOpenLoop;
      wl.client_population = 1'000'000;
      const std::string body = spec.substr(5);
      const std::size_t colon = body.find(':');
      wl.arrival_rate_tps = std::atof(body.substr(0, colon).c_str());
      if (colon != std::string::npos) wl.arrival = body.substr(colon + 1);
    } else if (spec.rfind("closed", 0) == 0) {
      const std::size_t colon = spec.find(':');
      if (colon != std::string::npos) {
        wl.concurrency = static_cast<std::uint32_t>(
            std::atoi(spec.c_str() + colon + 1));
      }
    } else if (!spec.empty()) {
      std::cerr << "invalid workload '" << spec
                << "': want closed[:sessions] or open:<tps>[:arrival]\n";
      return 2;
    }
  }
  if (argc > 6 && argv[6][0] != '\0') {
    const std::string spec = argv[6];
    const std::size_t colon = spec.find(':');
    cfg.memsize = static_cast<std::uint32_t>(
        std::atoi(spec.substr(0, colon).c_str()));
    if (colon != std::string::npos) cfg.admission = spec.substr(colon + 1);
  }
  if (argc > 7 && argv[7][0] != '\0') {
    const std::string spec = argv[7];
    const std::size_t colon = spec.find(':');
    cfg.store = spec.substr(0, colon);
    if (colon != std::string::npos) {
      cfg.retention = static_cast<std::uint32_t>(
          std::atoi(spec.c_str() + colon + 1));
    }
  }

  harness::RunOptions opts;
  opts.warmup_s = 0.25;
  opts.measure_s = 1.0;

  std::cout << "protocol   : " << cfg.protocol << "\n"
            << "network    : " << cfg.topology << " / " << cfg.link_model
            << " links\n"
            << "churn      : " << (cfg.churn.empty() ? "none" : cfg.churn)
            << "\n"
            << "replicas   : " << cfg.n_replicas << " (quorum "
            << cfg.quorum() << ")\n"
            << "block size : " << cfg.bsize << " txns\n"
            << "clients    : "
            << (wl.mode == client::LoadMode::kClosedLoop
                    ? std::to_string(wl.concurrency) + " closed-loop sessions"
                    : "open loop, " + wl.arrival +
                          " arrivals at base " +
                          std::to_string(
                              static_cast<long>(wl.arrival_rate_tps)) +
                          " tx/s (admission " + cfg.admission + ")")
            << "\n"
            << "\nrunning " << opts.warmup_s + opts.measure_s
            << "s of simulated time...\n\n";

  // Config parsing, topology construction and churn installation all
  // throw std::invalid_argument on user typos — exit cleanly, not via
  // std::terminate.
  harness::RunResult r;
  try {
    r = harness::run_experiment(cfg, wl, opts);
  } catch (const std::exception& e) {
    std::cerr << "invalid configuration: " << e.what() << "\n";
    return 2;
  }

  std::cout << "throughput     : " << static_cast<long>(r.throughput_tps)
            << " tx/s\n";
  if (wl.mode == client::LoadMode::kOpenLoop) {
    std::cout << "offered        : " << static_cast<long>(r.offered_tps)
              << " tx/s (mempool admitted " << r.mem_admitted
              << ", rejected " << r.mem_rejected << ")\n"
              << "latency (hist) : p50 " << r.hist_p50_ms << " / p99 "
              << r.hist_p99_ms << " / p999 " << r.hist_p999_ms << " ms\n";
  }
  if (cfg.store != "memory" || r.restarts > 0) {
    std::cout << "durability     : " << r.disk_bytes_written << " B to the "
              << cfg.store << " store (write amp " << r.write_amplification
              << "), " << r.store_reads << " store reads, " << r.restarts
              << " crash-restart(s) replayed from disk\n";
  }
  std::cout << "latency (mean) : " << r.latency_ms_mean << " ms\n"
            << "latency (p99)  : " << r.latency_ms_p99 << " ms\n"
            << "chain growth   : " << r.cgr_per_block
            << " committed/appended (" << r.cgr_per_view << " per view)\n"
            << "block interval : " << r.block_interval << " views\n"
            << "views          : " << r.views << ", committed blocks: "
            << r.blocks_committed << ", timeouts: " << r.timeouts << "\n"
            << "consistency    : "
            << (r.consistent ? "all honest replicas agree" : "VIOLATED!")
            << "\n";

  return (r.consistent && r.safety_violations == 0 && r.blocks_committed > 0)
             ? 0
             : 1;
}
