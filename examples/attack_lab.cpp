// Attack lab: subject a protocol to the paper's two Byzantine strategies
// (§IV-A) and watch the micro-metrics — chain growth rate and block
// interval — separate the protocols the way Figures 13/14 do.
//
//   ./build/examples/attack_lab [n_replicas] [byz_no]
//
// Defaults: 16 replicas, 4 Byzantine. Try `attack_lab 32 10` for the
// paper's exact setting (slower).

#include <iostream>
#include <string>
#include <vector>

#include "client/workload.h"
#include "core/config.h"
#include "harness/experiment.h"
#include "harness/runner.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace bamboo;

  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(
                                         std::stoul(argv[1]))
                                   : 16;
  const std::uint32_t byz =
      argc > 2 ? static_cast<std::uint32_t>(std::stoul(argv[2])) : 4;

  std::cout << "Attack lab: " << n << " replicas, " << byz
            << " Byzantine, block size 400\n"
            << "CGR = committed/appended blocks; BI = views from proposal "
               "to commit\n\n";

  harness::TextTable table({"protocol", "attack", "thr(KTx/s)", "CGR", "BI",
                            "forked", "timeouts", "safety"});

  // Every (protocol, attack) cell is an independent RunSpec; submit the
  // whole grid to the parallel engine in one call.
  const std::vector<std::string> protocols = {"hotstuff", "2chs", "streamlet",
                                              "fasthotstuff"};
  const std::vector<std::string> attacks = {"honest", "forking", "silence"};
  std::vector<harness::RunSpec> grid;
  for (const std::string& protocol : protocols) {
    for (const std::string& attack : attacks) {
      harness::RunSpec spec;
      spec.cfg.protocol = protocol;
      spec.cfg.n_replicas = n;
      spec.cfg.byz_no = attack == "honest" ? 0 : byz;
      spec.cfg.strategy = attack == "honest" ? "silence" : attack;
      spec.cfg.bsize = 400;
      spec.cfg.timeout = sim::milliseconds(50);
      spec.cfg.seed = 7;
      spec.workload.concurrency = 512;
      spec.workload.session_timeout = sim::milliseconds(300);
      spec.opts.warmup_s = 0.4;
      spec.opts.measure_s = 1.5;
      grid.push_back(std::move(spec));
    }
  }

  harness::ParallelRunner runner;
  const auto results = runner.run(grid);

  std::size_t i = 0;
  for (const std::string& protocol : protocols) {
    for (const std::string& attack : attacks) {
      const harness::RunResult& r = results[i++];
      table.add_row({protocol, attack,
                     harness::TextTable::num(r.throughput_tps / 1e3, 1),
                     harness::TextTable::num(r.cgr_per_block, 2),
                     harness::TextTable::num(r.block_interval, 1),
                     std::to_string(r.blocks_forked),
                     std::to_string(r.timeouts),
                     r.consistent && r.safety_violations == 0 ? "ok"
                                                              : "VIOLATED"});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nWhat to look for (paper §VI-C):\n"
      << "  * forking: HS forks ~2 blocks per attacker slot, 2CHS ~1,\n"
      << "    Streamlet and Fast-HotStuff none (vote rules make the fork\n"
      << "    unvotable);\n"
      << "  * silence: every protocol times out at silent leaders, but\n"
      << "    only the next-leader-vote protocols (HS/2CHS) lose the tail\n"
      << "    block -- Streamlet's broadcast votes keep CGR at 1;\n"
      << "  * BI starts at the commit-rule chain length (3 for HS, 2 for\n"
      << "    the two-chain protocols) and stretches under both attacks.\n";
  return 0;
}
