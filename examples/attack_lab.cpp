// Attack lab: subject a protocol to the paper's two Byzantine strategies
// (§IV-A) and watch the micro-metrics — chain growth rate and block
// interval — separate the protocols the way Figures 13/14 do.
//
//   ./build/examples/attack_lab [n_replicas] [byz_no]
//
// Defaults: 16 replicas, 4 Byzantine. Try `attack_lab 32 10` for the
// paper's exact setting (slower).

#include <iostream>
#include <string>

#include "client/workload.h"
#include "core/config.h"
#include "harness/experiment.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace bamboo;

  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(
                                         std::stoul(argv[1]))
                                   : 16;
  const std::uint32_t byz =
      argc > 2 ? static_cast<std::uint32_t>(std::stoul(argv[2])) : 4;

  std::cout << "Attack lab: " << n << " replicas, " << byz
            << " Byzantine, block size 400\n"
            << "CGR = committed/appended blocks; BI = views from proposal "
               "to commit\n\n";

  harness::TextTable table({"protocol", "attack", "thr(KTx/s)", "CGR", "BI",
                            "forked", "timeouts", "safety"});

  for (const std::string protocol : {"hotstuff", "2chs", "streamlet",
                                     "fasthotstuff"}) {
    for (const std::string attack : {"honest", "forking", "silence"}) {
      core::Config cfg;
      cfg.protocol = protocol;
      cfg.n_replicas = n;
      cfg.byz_no = attack == "honest" ? 0 : byz;
      cfg.strategy = attack == "honest" ? "silence" : attack;
      cfg.bsize = 400;
      cfg.timeout = sim::milliseconds(50);
      cfg.seed = 7;

      client::WorkloadConfig wl;
      wl.concurrency = 512;
      wl.session_timeout = sim::milliseconds(300);

      harness::RunOptions opts;
      opts.warmup_s = 0.4;
      opts.measure_s = 1.5;

      const auto r = harness::run_experiment(cfg, wl, opts);
      table.add_row({protocol, attack,
                     harness::TextTable::num(r.throughput_tps / 1e3, 1),
                     harness::TextTable::num(r.cgr_per_block, 2),
                     harness::TextTable::num(r.block_interval, 1),
                     std::to_string(r.blocks_forked),
                     std::to_string(r.timeouts),
                     r.consistent && r.safety_violations == 0 ? "ok"
                                                              : "VIOLATED"});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nWhat to look for (paper §VI-C):\n"
      << "  * forking: HS forks ~2 blocks per attacker slot, 2CHS ~1,\n"
      << "    Streamlet and Fast-HotStuff none (vote rules make the fork\n"
      << "    unvotable);\n"
      << "  * silence: every protocol times out at silent leaders, but\n"
      << "    only the next-leader-vote protocols (HS/2CHS) lose the tail\n"
      << "    block -- Streamlet's broadcast votes keep CGR at 1;\n"
      << "  * BI starts at the commit-rule chain length (3 for HS, 2 for\n"
      << "    the two-chain protocols) and stretches under both attacks.\n";
  return 0;
}
