// Protocol designer: Bamboo's core promise is that a new chained-BFT
// protocol is just four rules — Proposing, Voting, State-Updating, Commit
// (paper §III-C). This example writes one from scratch, registers it, and
// races it against the stock protocols on the identical substrate.
//
// The new protocol, "OneChain", commits a block the moment it is certified
// (commit chain length 1). In a fault-free run that makes it the fastest
// protocol here — and under a forking leader it commits conflicting blocks,
// which the harness's cross-replica consistency check catches immediately.
// That failure is the whole reason the real protocols pay for two- and
// three-chain commit rules.

#include <iostream>

#include "client/workload.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "protocols/registry.h"

namespace {

using namespace bamboo;

/// A complete cBFT protocol in ~40 lines: the Safety API surface.
class OneChain final : public core::SafetyProtocol {
 public:
  std::string name() const override { return "onechain"; }

  // Proposing rule: extend the highest certified block.
  std::optional<core::ProposalPlan> plan_proposal(
      types::View, const core::ProtocolContext& ctx) override {
    const types::BlockPtr parent = ctx.forest.high_qc_block();
    if (!parent) return std::nullopt;
    return core::ProposalPlan{parent, ctx.forest.high_qc()};
  }

  // Voting rule: one vote per view; the justify must certify the parent.
  bool should_vote(const types::ProposalMsg& p,
                   const core::ProtocolContext&) override {
    return p.block->view() > last_voted_ && p.block->justify_is_parent();
  }
  void did_vote(const types::Block& b) override {
    last_voted_ = std::max(last_voted_, b.view());
  }

  // State-updating rule: track the highest certified view.
  void update_state(const types::QuorumCert& qc,
                    const core::ProtocolContext&) override {
    high_view_ = std::max(high_view_, qc.view);
  }

  // Commit rule: certified == committed. (This is the unsafe part.)
  std::optional<crypto::Digest> commit_target(
      const types::QuorumCert& qc,
      const core::ProtocolContext& ctx) override {
    const auto block = ctx.forest.get(qc.block_hash);
    if (!block || block->height() <= ctx.forest.committed_height()) {
      return std::nullopt;
    }
    return qc.block_hash;
  }

  std::uint32_t fork_depth() const override { return 2; }
  std::uint32_t commit_chain_length() const override { return 1; }
  types::View locked_view() const override { return high_view_; }
  types::View last_voted_view() const override { return last_voted_; }

 private:
  types::View last_voted_ = 0;
  types::View high_view_ = 0;
};

/// One (protocol, attack) cell as a self-contained RunSpec: the custom
/// protocol races the stock ones through the same parallel engine the
/// bench suite uses.
harness::RunSpec race_spec(const std::string& protocol, std::uint32_t byz) {
  harness::RunSpec spec;
  spec.cfg.protocol = protocol;
  spec.cfg.n_replicas = 4;
  spec.cfg.byz_no = byz;
  spec.cfg.strategy = "forking";
  spec.cfg.bsize = 100;
  spec.cfg.seed = 21;
  spec.workload.concurrency = 256;
  // Forked-out replicas starve their clients; abandon stuck requests fast
  // so the throughput column reflects the surviving capacity.
  spec.workload.session_timeout = sim::milliseconds(200);
  spec.opts.warmup_s = 0.2;
  spec.opts.measure_s = 0.8;
  return spec;
}

}  // namespace

int main() {
  std::cout
      << "Protocol designer: a new cBFT protocol is just four rules.\n"
         "OneChain commits every certified block instantly. Watch it beat\n"
         "the stock protocols on latency while honest — then break when a\n"
         "forking leader shows up.\n\n";

  // One call makes the custom protocol a first-class citizen: usable from
  // Config::protocol, the cluster harness, sweeps, everything.
  protocols::register_protocol(
      "onechain", [] { return std::make_unique<OneChain>(); });

  // The whole (protocol, attack) race grid is six independent RunSpecs —
  // including the freshly registered custom protocol — fanned across the
  // parallel engine in one submission.
  const std::vector<std::string> protocols = {"onechain", "2chs", "hotstuff"};
  std::vector<harness::RunSpec> grid;
  for (const std::string& protocol : protocols) {
    for (std::uint32_t byz : {0u, 1u}) grid.push_back(race_spec(protocol, byz));
  }
  harness::ParallelRunner runner;
  const auto results = runner.run(grid);

  harness::TextTable table({"protocol", "attack", "thr(KTx/s)", "lat(ms)",
                            "consistent", "violations"});
  bool onechain_broke = false;
  bool stock_held = true;
  std::size_t i = 0;
  for (const std::string& protocol : protocols) {
    for (std::uint32_t byz : {0u, 1u}) {
      const harness::RunResult& r = results[i++];
      table.add_row({protocol, byz ? "forking" : "none",
                     harness::TextTable::num(r.throughput_tps / 1e3, 1),
                     harness::TextTable::num(r.latency_ms_mean, 1),
                     r.consistent ? "yes" : "NO",
                     std::to_string(r.safety_violations)});
      const bool broke = !r.consistent || r.safety_violations > 0;
      if (protocol == "onechain" && byz > 0) onechain_broke = broke;
      if (protocol != "onechain" && broke) stock_held = false;
    }
  }
  table.print(std::cout);

  std::cout
      << "\nThe lesson (paper §II): commit rules trade latency for fork\n"
         "tolerance. OneChain's one-chain commit is fastest and unsafe;\n"
         "2CHS pays one extra certified block, HotStuff two — and both\n"
         "stay consistent under the same attack.\n";
  return (onechain_broke && stock_held) ? 0 : 1;
}
