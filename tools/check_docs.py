#!/usr/bin/env python3
"""Documentation checks, run by the CI docs job and the docs_check ctest.

1. Every intra-repo markdown link in every tracked .md file must resolve
   to an existing file or directory (http(s)/mailto/pure-anchor links are
   skipped; fragments are stripped before the existence check).
2. Every figure bench binary (bench/bench_*.cpp, minus the bench_merge
   tool and the optional bench_micro) must appear in the README
   reproduction matrix.
3. Every `bench_<name>` mentioned anywhere in the docs must correspond to
   an existing bench source — catches stale binary names left behind by
   renames.
4. Handbook docs that other docs are contractually required to link
   (REQUIRED_DOC_LINKS) must exist and be linked from each named page.
5. Every recipe line inside a fenced code block that invokes a
   `build/bench_*` binary must name an existing bench and use only flags
   the shared CLI (or bench_perf's own CLI) actually accepts — catches
   handbook recipes that rot as flags are renamed.

Usage: check_docs.py [repo-root]   (default: the parent of this script)
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", ".claude", "node_modules"}
# Bench sources that are tools or optional, not figure reproductions.
NON_FIGURE_BENCHES = {"bench_merge", "bench_micro", "bench_perf"}
# Benches the docs may reference as FUTURE work (ROADMAP items) without a
# source existing yet; remove an entry once its bench lands.
PLANNED_BENCHES = set()

# Doc -> pages that must link to it (paths relative to the repo root).
REQUIRED_DOC_LINKS = {
    "docs/OVERLOAD.md": ["README.md", "docs/ARCHITECTURE.md"],
}

# Flags bench_common.h's parse_args accepts (every figure bench + tools).
KNOWN_BENCH_FLAGS = {"--full", "--threads", "--seed", "--reps", "--duration",
                     "--out", "--format", "--shard", "--help"}
# bench_perf has its own CLI.
KNOWN_PERF_FLAGS = {"--quick", "--out", "--label", "--baseline", "--help"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BENCH_REF_RE = re.compile(r"\b(bench_[a-z0-9_]+)\b")
RECIPE_RE = re.compile(r"(?:^|[\s./])build/(bench_[a-z0-9_]+)(\s[^\n]*)?$")
FLAG_RE = re.compile(r"(--[a-z-]+)")


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_links(root):
    errors = []
    for path in md_files(root):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target.split("#")[0])
            )
            if not os.path.exists(resolved):
                rel = os.path.relpath(path, root)
                errors.append(f"{rel}: broken link -> {target}")
    return errors


def bench_sources(root):
    bench_dir = os.path.join(root, "bench")
    return {
        name[: -len(".cpp")]
        for name in os.listdir(bench_dir)
        if name.startswith("bench_") and name.endswith(".cpp")
    }


def check_readme_matrix(root, benches):
    # Scope the completeness check to the matrix TABLE itself — a bench
    # mentioned only in surrounding prose must still fail the gate.
    errors = []
    readme = os.path.join(root, "README.md")
    with open(readme, encoding="utf-8") as f:
        lines = f.read().splitlines()
    table = [
        line
        for line in lines
        if line.lstrip().startswith("|") and "Paper artifact" not in line
    ]
    if not table:
        return ["README.md: no reproduction-matrix table found "
                "(rows starting with '|')"]
    text = "\n".join(table)
    for bench in sorted(benches - NON_FIGURE_BENCHES):
        if bench not in text:
            errors.append(
                f"README.md: bench binary '{bench}' is missing from the "
                "reproduction matrix table"
            )
    return errors


def check_stale_bench_refs(root, benches):
    errors = []
    for path in md_files(root):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for ref in set(BENCH_REF_RE.findall(text)):
            if (
                ref not in benches
                and ref != "bench_common"
                and ref not in PLANNED_BENCHES
            ):
                rel = os.path.relpath(path, root)
                errors.append(f"{rel}: stale bench reference '{ref}' (no "
                              f"bench/{ref}.cpp)")
    return errors


def check_required_doc_links(root):
    errors = []
    for doc, pages in sorted(REQUIRED_DOC_LINKS.items()):
        doc_path = os.path.join(root, doc)
        if not os.path.exists(doc_path):
            errors.append(f"{doc}: required handbook doc does not exist")
            continue
        doc_name = os.path.basename(doc)
        for page in pages:
            page_path = os.path.join(root, page)
            with open(page_path, encoding="utf-8") as f:
                targets = LINK_RE.findall(f.read())
            if not any(t.split("#")[0].endswith(doc_name) for t in targets):
                errors.append(f"{page}: must link to {doc}")
    return errors


def fenced_lines(text):
    """Lines inside ``` fences, with the fence markers themselves skipped."""
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            yield line


def check_recipes(root, benches):
    errors = []
    for path in md_files(root):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        rel = os.path.relpath(path, root)
        for line in fenced_lines(text):
            match = RECIPE_RE.search(line)
            if not match:
                continue
            bench, tail = match.group(1), match.group(2) or ""
            if bench not in benches:
                errors.append(
                    f"{rel}: recipe invokes '{bench}' but there is no "
                    f"bench/{bench}.cpp")
                continue
            known = (KNOWN_PERF_FLAGS if bench == "bench_perf"
                     else KNOWN_BENCH_FLAGS)
            for flag in FLAG_RE.findall(tail):
                if flag not in known:
                    errors.append(
                        f"{rel}: recipe for {bench} uses unknown flag "
                        f"'{flag}' (known: {', '.join(sorted(known))})")
    return errors


def main():
    root = os.path.abspath(
        sys.argv[1]
        if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), os.pardir)
    )
    benches = bench_sources(root)
    errors = (
        check_links(root)
        + check_readme_matrix(root, benches)
        + check_stale_bench_refs(root, benches)
        + check_required_doc_links(root)
        + check_recipes(root, benches)
    )
    if errors:
        for err in errors:
            print(f"error: {err}", file=sys.stderr)
        print(f"\n{len(errors)} docs error(s)", file=sys.stderr)
        return 1
    print("docs OK: links resolve, README matrix covers every bench "
          "binary, required handbook links present, recipes runnable")
    return 0


if __name__ == "__main__":
    sys.exit(main())
