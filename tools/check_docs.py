#!/usr/bin/env python3
"""Documentation checks, run by the CI docs job and the docs_check ctest.

1. Every intra-repo markdown link in every tracked .md file must resolve
   to an existing file or directory (http(s)/mailto/pure-anchor links are
   skipped; fragments are stripped before the existence check).
2. Every figure bench binary (bench/bench_*.cpp, minus the bench_merge
   tool and the optional bench_micro) must appear in the README
   reproduction matrix.
3. Every `bench_<name>` mentioned anywhere in the docs must correspond to
   an existing bench source — catches stale binary names left behind by
   renames.

Usage: check_docs.py [repo-root]   (default: the parent of this script)
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", ".claude", "node_modules"}
# Bench sources that are tools or optional, not figure reproductions.
NON_FIGURE_BENCHES = {"bench_merge", "bench_micro", "bench_perf"}
# Benches the docs may reference as FUTURE work (ROADMAP items) without a
# source existing yet; remove an entry once its bench lands.
PLANNED_BENCHES = {"bench_fig18_overload"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BENCH_REF_RE = re.compile(r"\b(bench_[a-z0-9_]+)\b")


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_links(root):
    errors = []
    for path in md_files(root):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target.split("#")[0])
            )
            if not os.path.exists(resolved):
                rel = os.path.relpath(path, root)
                errors.append(f"{rel}: broken link -> {target}")
    return errors


def bench_sources(root):
    bench_dir = os.path.join(root, "bench")
    return {
        name[: -len(".cpp")]
        for name in os.listdir(bench_dir)
        if name.startswith("bench_") and name.endswith(".cpp")
    }


def check_readme_matrix(root, benches):
    # Scope the completeness check to the matrix TABLE itself — a bench
    # mentioned only in surrounding prose must still fail the gate.
    errors = []
    readme = os.path.join(root, "README.md")
    with open(readme, encoding="utf-8") as f:
        lines = f.read().splitlines()
    table = [
        line
        for line in lines
        if line.lstrip().startswith("|") and "Paper artifact" not in line
    ]
    if not table:
        return ["README.md: no reproduction-matrix table found "
                "(rows starting with '|')"]
    text = "\n".join(table)
    for bench in sorted(benches - NON_FIGURE_BENCHES):
        if bench not in text:
            errors.append(
                f"README.md: bench binary '{bench}' is missing from the "
                "reproduction matrix table"
            )
    return errors


def check_stale_bench_refs(root, benches):
    errors = []
    for path in md_files(root):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for ref in set(BENCH_REF_RE.findall(text)):
            if (
                ref not in benches
                and ref != "bench_common"
                and ref not in PLANNED_BENCHES
            ):
                rel = os.path.relpath(path, root)
                errors.append(f"{rel}: stale bench reference '{ref}' (no "
                              f"bench/{ref}.cpp)")
    return errors


def main():
    root = os.path.abspath(
        sys.argv[1]
        if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), os.pardir)
    )
    benches = bench_sources(root)
    errors = (
        check_links(root)
        + check_readme_matrix(root, benches)
        + check_stale_bench_refs(root, benches)
    )
    if errors:
        for err in errors:
            print(f"error: {err}", file=sys.stderr)
        print(f"\n{len(errors)} docs error(s)", file=sys.stderr)
        return 1
    print("docs OK: links resolve, README matrix covers every bench binary")
    return 0


if __name__ == "__main__":
    sys.exit(main())
