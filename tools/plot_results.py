#!/usr/bin/env python3
"""Render SVG figures from bench --out artifact directories.

Walks the given directories for ``manifest*.json`` files (written by the
bench binaries' ArtifactWriter or by bench_merge), loads every CSV artifact,
and renders one SVG per figure/table into --svg-dir:

* record artifacts (rows with a ``kind`` column):
  - ``aggregate`` rows -> latency/throughput curves vs the ``offered`` sweep
    label, one line per ``series``, error bars from the ``*_ci95`` columns
    (Student-t 95% half-widths);
  - ``timeline`` rows (Fig. 15 buckets) -> committed-tx rate vs time, one
    line per ``series``;
  - recovery artifacts (aggregate rows whose name contains ``recovery``,
    e.g. bench_fig17_recovery) -> a recovery-latency panel: ``recovery_ms``
    and ``sync_requests`` vs the ``offered`` label (the sync_batch sweep),
    one line per series;
  - snapshot artifacts (aggregate rows whose name contains ``snapshot``,
    from bench_fig17b_snapshot) -> a state-transfer panel: ``recovery_ms``
    (log axis) and bytes moved vs the outage window, chain-sync series
    dashed vs snapshot series solid — the crossover figure;
  - overload artifacts (aggregate rows whose name contains ``fig18``,
    from bench_fig18_overload) -> a saturation panel: goodput vs measured
    offered load against the ideal diagonal, plus histogram-exact
    p99/p999 tails vs offered on a log axis.
* free-form side tables (no ``kind`` column) -> first column as x, every
  other numeric column as a line.

With ``--perf`` the inputs are instead the committed ``BENCH_<n>.json``
perf artifacts (or a directory holding them, e.g. the repo root) and one
trajectory SVG is rendered: every metric's calibration-normalized rate
across PRs, indexed by the BENCH number, so speedups and regressions are
visible over the repo's history.

Usage:
    tools/plot_results.py build/smoke --svg-dir build/plots
    tools/plot_results.py --list build/smoke      # dry run, no matplotlib
    tools/plot_results.py --perf . --svg-dir build/plots

Only the actual rendering needs matplotlib; ``--list`` works without it.
"""

from __future__ import annotations

import argparse
import csv
import json
import re
import sys
from collections import defaultdict
from pathlib import Path


def find_manifests(roots: list[str]) -> list[Path]:
    manifests: list[Path] = []
    for root in roots:
        path = Path(root)
        if path.is_file():
            manifests.append(path)
            continue
        manifests.extend(sorted(path.rglob("manifest*.json")))
    return manifests


def load_artifacts(manifests: list[Path]) -> dict[str, dict]:
    """\"bench.artifact\" -> {"bench", "name", "path", "rows"} from CSVs.

    An unsharded (or bench_merge'd) manifest is authoritative for its
    artifacts. When only ``--shard i/n`` manifests are present, the shard
    slices are unioned so the full row set is still plotted; a shard slice
    never overrides or double-counts an authoritative row set.
    """
    artifacts: dict[str, dict] = {}
    for manifest_path in manifests:
        manifest = json.loads(manifest_path.read_text())
        sharded = manifest.get("shard", {}).get("count", 1) > 1
        for artifact in manifest.get("artifacts", []):
            name = artifact.get("name", "")
            key = f"{manifest.get('bench', 'bench')}.{name}"
            for file in artifact.get("files", []):
                if file.get("format") != "csv":
                    continue
                path = manifest_path.parent / file["path"]
                with path.open(newline="") as handle:
                    rows = list(csv.DictReader(handle))
                entry = artifacts.get(key)
                if entry is None or (entry["sharded"] and not sharded):
                    artifacts[key] = {
                        "bench": manifest.get("bench", "bench"),
                        "name": name,
                        "path": path,
                        "rows": rows,
                        "sharded": sharded,
                    }
                elif sharded and entry["sharded"]:
                    entry["rows"].extend(rows)  # union the shard slices
                # else: authoritative set already loaded; skip the slice
    return artifacts


def classify(rows: list[dict], name: str = "") -> str:
    if not rows:
        return "empty"
    if "kind" not in rows[0]:
        return "table"
    kinds = {row["kind"] for row in rows}
    if "timeline" in kinds:
        return "timeline"
    if "aggregate" in kinds:
        if "snapshot" in name and "snapshots_installed" in rows[0]:
            return "snapshot"
        if "recovery" in name and "recovery_ms" in rows[0]:
            return "recovery"
        if "fig18" in name and "hist_p999_ms" in rows[0]:
            return "saturation"
        if "democracy" in name and "proposer_gini" in rows[0]:
            return "democracy"
        return "sweep"
    return "runs"


def series_of(rows: list[dict], kind: str) -> dict[str, list[dict]]:
    grouped: dict[str, list[dict]] = defaultdict(list)
    for row in rows:
        if row["kind"] != kind:
            continue
        grouped[row["series"]].append(row)
    for label in grouped:
        grouped[label].sort(key=lambda r: float(r["offered"]))
    return grouped


def floats(rows: list[dict], column: str) -> list[float]:
    return [float(row[column]) for row in rows]


def plot_sweep(plt, artifact: dict, out_path: Path) -> None:
    grouped = series_of(artifact["rows"], "aggregate")
    fig, (ax_thr, ax_lat) = plt.subplots(1, 2, figsize=(11, 4.2))
    for label, rows in grouped.items():
        offered = floats(rows, "offered")
        thr = [t / 1e3 for t in floats(rows, "throughput_tps")]
        thr_ci = [c / 1e3 for c in floats(rows, "throughput_tps_ci95")]
        lat = floats(rows, "latency_ms_mean")
        lat_ci = floats(rows, "latency_ms_mean_ci95")
        ax_thr.errorbar(offered, thr, yerr=thr_ci, marker="o", capsize=3,
                        label=label)
        ax_lat.errorbar(offered, lat, yerr=lat_ci, marker="o", capsize=3,
                        label=label)
    ax_thr.set_xlabel("offered load")
    ax_thr.set_ylabel("throughput (KTx/s)")
    ax_lat.set_xlabel("offered load")
    ax_lat.set_ylabel("latency, mean (ms)")
    for ax in (ax_thr, ax_lat):
        ax.grid(True, alpha=0.3)
    ax_thr.legend(fontsize=7)
    fig.suptitle(artifact["name"])
    fig.tight_layout()
    fig.savefig(out_path)
    plt.close(fig)


def plot_timeline(plt, artifact: dict, out_path: Path) -> None:
    grouped = series_of(artifact["rows"], "timeline")
    fig, ax = plt.subplots(figsize=(9, 4.2))
    for label, rows in grouped.items():
        t = floats(rows, "offered")  # bucket start (s)
        rate = [r / 1e3 for r in floats(rows, "throughput_tps")]
        ax.plot(t, rate, label=label)
    ax.set_xlabel("time (s)")
    ax.set_ylabel("committed (KTx/s)")
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=7)
    ax.set_title(artifact["name"])
    fig.tight_layout()
    fig.savefig(out_path)
    plt.close(fig)


def plot_recovery(plt, artifact: dict, out_path: Path) -> None:
    """Recovery-latency panel: heal->caught-up latency and the fetch
    traffic that recovery cost, vs the sync_batch sweep label.

    Series labels carry a per-cell "-b<batch>" suffix (each grid cell is
    one aggregate row); strip it so the batch sweep connects into one
    line per scenario/protocol instead of isolated points."""
    merged: dict[str, list[dict]] = defaultdict(list)
    for label, rows in series_of(artifact["rows"], "aggregate").items():
        merged[re.sub(r"-b\d+$", "", label)].extend(rows)
    fig, (ax_rec, ax_req) = plt.subplots(1, 2, figsize=(11, 4.2))
    for label, rows in merged.items():
        rows.sort(key=lambda r: float(r["offered"]))
        offered = floats(rows, "offered")
        ax_rec.plot(offered, floats(rows, "recovery_ms"), marker="o",
                    label=label)
        ax_req.plot(offered, floats(rows, "sync_requests"), marker="o",
                    label=label)
    ax_rec.set_xlabel("sync_batch")
    ax_rec.set_ylabel("recovery, heal -> caught-up (ms)")
    ax_req.set_xlabel("sync_batch")
    ax_req.set_ylabel("sync requests")
    for ax in (ax_rec, ax_req):
        ax.grid(True, alpha=0.3)
    ax_rec.legend(fontsize=7)
    fig.suptitle(artifact["name"])
    fig.tight_layout()
    fig.savefig(out_path)
    plt.close(fig)


def plot_snapshot(plt, artifact: dict, out_path: Path) -> None:
    """State-transfer panel (bench_fig17b_snapshot): heal->caught-up
    latency vs the outage window for the chain-sync and snapshot series
    (log y; the crossover is the whole point), and the bytes each mode
    moved to close the gap -- per-block fetch traffic for chain-sync,
    chunk traffic for the snapshot path."""
    grouped = series_of(artifact["rows"], "aggregate")
    fig, (ax_rec, ax_bytes) = plt.subplots(1, 2, figsize=(11, 4.2))
    for label, rows in grouped.items():
        window = floats(rows, "offered")
        style = "--" if label.endswith("-chain") else "-"
        ax_rec.plot(window, floats(rows, "recovery_ms"), style, marker="o",
                    label=label)
        moved = [(s + y) / 1e3 for s, y in zip(floats(rows, "snapshot_bytes"),
                                               floats(rows, "sync_bytes"))]
        ax_bytes.plot(window, moved, style, marker="o", label=label)
    ax_rec.set_xlabel("outage window (s)")
    ax_rec.set_ylabel("recovery, heal -> caught-up (ms)")
    ax_rec.set_yscale("log")
    ax_bytes.set_xlabel("outage window (s)")
    ax_bytes.set_ylabel("transfer traffic (KB)")
    for ax in (ax_rec, ax_bytes):
        ax.grid(True, alpha=0.3)
    ax_rec.legend(fontsize=7)
    fig.suptitle(artifact["name"])
    fig.tight_layout()
    fig.savefig(out_path)
    plt.close(fig)


def plot_saturation(plt, artifact: dict, out_path: Path) -> None:
    """Overload panel (bench_fig18_overload): goodput vs offered load with
    the ideal goodput == offered diagonal, and the histogram-exact tail
    quantiles (p99, p999) vs offered load on a log axis. The gap between
    the diagonal and a series' curve is the shed load; the tail panel shows
    where the latency distribution detonates past the knee."""
    grouped = series_of(artifact["rows"], "aggregate")
    fig, (ax_good, ax_tail) = plt.subplots(1, 2, figsize=(11, 4.2))
    max_offered = 0.0
    for label, rows in grouped.items():
        offered = [o / 1e3 for o in floats(rows, "offered_tps")]
        max_offered = max(max_offered, *offered, 0.0)
        goodput = [t / 1e3 for t in floats(rows, "throughput_tps")]
        ax_good.plot(offered, goodput, marker="o", label=label)
        ax_tail.plot(offered, floats(rows, "hist_p99_ms"), marker="o",
                     label=f"{label} p99")
        ax_tail.plot(offered, floats(rows, "hist_p999_ms"), marker=".",
                     linestyle="--", label=f"{label} p999")
    if max_offered > 0:
        ax_good.plot([0, max_offered], [0, max_offered], color="gray",
                     linestyle=":", alpha=0.6, label="ideal")
    ax_good.set_xlabel("offered (KTx/s)")
    ax_good.set_ylabel("goodput (KTx/s)")
    ax_tail.set_xlabel("offered (KTx/s)")
    ax_tail.set_ylabel("latency (ms), histogram-exact")
    ax_tail.set_yscale("log")
    for ax in (ax_good, ax_tail):
        ax.grid(True, alpha=0.3)
    ax_good.legend(fontsize=7)
    ax_tail.legend(fontsize=6, ncol=2)
    fig.suptitle(artifact["name"])
    fig.tight_layout()
    fig.savefig(out_path)
    plt.close(fig)


def decode_commit_share(encoded: str) -> dict[int, int]:
    """Decode the sparse "id:count;id:count" commit-share column."""
    counts: dict[int, int] = {}
    for part in str(encoded).split(";"):
        if not part:
            continue
        replica, _, count = part.partition(":")
        counts[int(replica)] = int(count)
    return counts


def plot_democracy(plt, artifact: dict, out_path: Path) -> None:
    """Democracy panel (bench_fig19_democracy): chain quality (solid) and
    proposer Gini (dashed) across the adversarial scenario grid, and the
    per-replica commit-share distribution in the last (most adversarial)
    scenario. A flat right panel is an even proposer lottery; spikes mean
    a few replicas own the committed chain."""
    grouped = series_of(artifact["rows"], "aggregate")
    fig, (ax_q, ax_share) = plt.subplots(1, 2, figsize=(11, 4.2))
    n_series = max(len(grouped), 1)
    bar_w = 0.8 / n_series
    for idx, (label, rows) in enumerate(grouped.items()):
        scenario = floats(rows, "offered")
        ax_q.plot(scenario, floats(rows, "chain_quality"), marker="o",
                  label=f"{label} CQ")
        ax_q.plot(scenario, floats(rows, "proposer_gini"), marker=".",
                  linestyle="--", alpha=0.7, label=f"{label} gini")
        counts = decode_commit_share(rows[-1].get("commit_share", ""))
        total = sum(counts.values())
        if total:
            ids = sorted(counts)
            xs = [r + (idx - (n_series - 1) / 2) * bar_w for r in ids]
            ax_share.bar(xs, [counts[r] / total for r in ids], width=bar_w,
                         label=label)
    ax_q.set_xlabel("scenario index")
    ax_q.set_ylabel("chain quality / proposer Gini")
    ax_q.set_ylim(bottom=0)
    ax_share.set_xlabel("replica id")
    ax_share.set_ylabel("commit share (last scenario)")
    for ax in (ax_q, ax_share):
        ax.grid(True, alpha=0.3)
    ax_q.legend(fontsize=6, ncol=2)
    ax_share.legend(fontsize=7)
    fig.suptitle(artifact["name"])
    fig.tight_layout()
    fig.savefig(out_path)
    plt.close(fig)


def plot_table(plt, artifact: dict, out_path: Path) -> None:
    rows = artifact["rows"]
    headers = list(rows[0].keys())
    x_name, y_names = headers[0], headers[1:]
    fig, ax = plt.subplots(figsize=(9, 4.2))
    x = [float(row[x_name]) for row in rows]
    for y_name in y_names:
        try:
            y = [float(row[y_name]) for row in rows]
        except ValueError:
            continue  # non-numeric column (e.g. another shard's "-")
        ax.plot(x, y, label=y_name)
    ax.set_xlabel(x_name)
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=7)
    ax.set_title(artifact["name"])
    fig.tight_layout()
    fig.savefig(out_path)
    plt.close(fig)


def find_bench_jsons(roots: list[str]) -> list[tuple[int, Path]]:
    name_re = re.compile(r"^BENCH_(\d+)\.json$")
    found: dict[int, Path] = {}
    for root in roots:
        path = Path(root)
        candidates = [path] if path.is_file() else sorted(path.glob(
            "BENCH_*.json"))
        for candidate in candidates:
            match = name_re.match(candidate.name)
            if match:
                found[int(match.group(1))] = candidate
    return sorted(found.items())


def load_perf_trajectory(roots: list[str]) -> list[dict]:
    points = []
    for number, path in find_bench_jsons(roots):
        doc = json.loads(path.read_text())
        metrics = {m["name"]: float(m["value"])
                   for m in doc.get("metrics", [])}
        if "calibration" not in metrics:
            print(f"plot_results: {path} has no calibration metric, "
                  "skipping", file=sys.stderr)
            continue
        points.append({"number": number, "path": path, "metrics": metrics})
    return points


def plot_perf_trajectory(plt, points: list[dict], out_path: Path) -> None:
    """Calibration-normalized rate per metric, vs BENCH number.

    Each metric is scaled by its run's calibration rate (machine speed)
    and then by its own first appearance, so every line starts at 1.0 and
    the y-axis reads as "speedup since first measured". e2e metrics
    (whole-run events/sec) get solid lines; component metrics dashed."""
    names = sorted({name for p in points for name in p["metrics"]
                    if name != "calibration"})
    fig, ax = plt.subplots(figsize=(9, 4.8))
    for name in names:
        xs, ys, first = [], [], None
        for p in points:
            if name not in p["metrics"]:
                continue
            normalized = p["metrics"][name] / p["metrics"]["calibration"]
            if first is None:
                first = normalized
            xs.append(p["number"])
            ys.append(normalized / first)
        style = "-o" if name.startswith("e2e_") else "--."
        ax.plot(xs, ys, style, label=name, alpha=0.9)
    ax.set_xlabel("BENCH number (PR)")
    ax.set_ylabel("speedup vs first measurement (calibration-normalized)")
    ax.set_yscale("log")
    ax.grid(True, alpha=0.3, which="both")
    ax.legend(fontsize=7, ncol=2)
    ax.set_title("perf trajectory")
    fig.tight_layout()
    fig.savefig(out_path)
    plt.close(fig)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+",
                        help="artifact directories (searched recursively) "
                             "or manifest.json files")
    parser.add_argument("--svg-dir", default="plots",
                        help="output directory for the SVGs")
    parser.add_argument("--list", action="store_true",
                        help="only list what would be plotted (no matplotlib)")
    parser.add_argument("--perf", action="store_true",
                        help="inputs are BENCH_<n>.json perf artifacts (or a "
                             "directory of them); render the perf trajectory")
    args = parser.parse_args()

    if args.perf:
        points = load_perf_trajectory(args.inputs)
        if not points:
            print("plot_results: no BENCH_<n>.json found under inputs",
                  file=sys.stderr)
            return 2
        if args.list:
            for p in points:
                print(f"BENCH_{p['number']}: {p['path']} "
                      f"({len(p['metrics'])} metrics)")
            return 0
        try:
            import matplotlib
            matplotlib.use("Agg")
            import matplotlib.pyplot as plt
        except ImportError:
            print("plot_results: matplotlib is required for rendering "
                  "(pip install matplotlib), or use --list", file=sys.stderr)
            return 3
        out_dir = Path(args.svg_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        out_path = out_dir / "perf_trajectory.svg"
        plot_perf_trajectory(plt, points, out_path)
        print(f"wrote {out_path}")
        return 0

    manifests = find_manifests(args.inputs)
    if not manifests:
        print("plot_results: no manifest*.json found under inputs",
              file=sys.stderr)
        return 2
    artifacts = load_artifacts(manifests)

    plan = []
    for key, artifact in sorted(artifacts.items()):
        shape = classify(artifact["rows"], artifact["name"])
        if shape == "empty":
            continue
        plan.append((key, shape, artifact))
    if args.list:
        for key, shape, artifact in plan:
            print(f"{key}: {shape} ({len(artifact['rows'])} rows)")
        return 0

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("plot_results: matplotlib is required for rendering "
              "(pip install matplotlib), or use --list", file=sys.stderr)
        return 3

    out_dir = Path(args.svg_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    renderers = {"sweep": plot_sweep, "timeline": plot_timeline,
                 "democracy": plot_democracy, "snapshot": plot_snapshot,
                 "recovery": plot_recovery, "saturation": plot_saturation,
                 "table": plot_table}
    written = 0
    for key, shape, artifact in plan:
        if shape == "runs":
            continue  # no aggregate rows to plot (per-run rows only)
        out_path = out_dir / f"{key}.svg"
        renderers[shape](plt, artifact, out_path)
        print(f"wrote {out_path}")
        written += 1
    if written == 0:
        print("plot_results: nothing plottable found", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
