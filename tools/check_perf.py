#!/usr/bin/env python3
"""Perf-regression gate over the tracked BENCH_<n>.json trajectory.

Every PR commits one BENCH_<n>.json at the repo root (emitted by
`bench_perf --label BENCH_<n> --out BENCH_<n>.json`). This script compares
a candidate run against the highest-numbered committed BENCH_*.json and
fails on large regressions, so simulator speed can only ratchet forward.

Machines differ, so raw rates are not compared directly: every metric is
first divided by the run's own `calibration` metric (a fixed
integer-arithmetic loop that scales with single-core speed). The gate
fires only when the calibration-normalized ratio of candidate/reference
drops below 1 - tolerance (default 0.25 — generous enough for CI-runner
noise, tight enough to catch a lost optimization).

Modes:
  check_perf.py --candidate NEW.json [--reference OLD.json] [--tolerance F]
      Gate NEW against OLD (default: latest BENCH_*.json in the repo root
      that is not the candidate itself). Exit 1 on regression.
  check_perf.py --validate FILE.json
      Schema-validate one emitted file (the smoke_bench_perf ctest uses
      this so the emitter itself cannot rot). Exit 1 on malformed output.
"""

import argparse
import glob
import json
import os
import re
import sys

SCHEMA = "bamboo-perf/1"
# Metrics are rates (higher is better); `calibration` is the normalizer
# and is exempt from gating.
CALIBRATION = "calibration"
BENCH_NAME_RE = re.compile(r"BENCH_(\d+)\.json$")


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    problems = validate(doc)
    if problems:
        for p in problems:
            print(f"error: {path}: {p}", file=sys.stderr)
        sys.exit(1)
    return doc


def validate(doc):
    problems = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        return problems + ["no metrics array"]
    names = set()
    for m in metrics:
        name = m.get("name")
        if not name:
            problems.append("metric without a name")
            continue
        if name in names:
            problems.append(f"duplicate metric {name!r}")
        names.add(name)
        value = m.get("value")
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(f"metric {name!r}: non-positive value {value!r}")
        if not isinstance(m.get("unit"), str):
            problems.append(f"metric {name!r}: missing unit")
    if CALIBRATION not in names:
        problems.append(f"missing the {CALIBRATION!r} normalizer metric")
    return problems


def metric_map(doc):
    return {m["name"]: float(m["value"]) for m in doc["metrics"]}


def latest_reference(root, exclude):
    exclude = os.path.abspath(exclude)
    best, best_n = None, -1
    for path in glob.glob(os.path.join(root, "BENCH_*.json")):
        if os.path.abspath(path) == exclude:
            continue
        m = BENCH_NAME_RE.search(os.path.basename(path))
        if m and int(m.group(1)) > best_n:
            best, best_n = path, int(m.group(1))
    return best


def compare(candidate, reference, tolerance):
    cand, ref = metric_map(candidate), metric_map(reference)
    cal_c, cal_r = cand[CALIBRATION], ref[CALIBRATION]
    print(f"calibration: candidate {cal_c:.1f} vs reference {cal_r:.1f} "
          f"Mops/s (machine-speed ratio {cal_c / cal_r:.3f})")
    regressions = []
    for name in sorted(ref):
        if name == CALIBRATION:
            continue
        if name not in cand:
            regressions.append(f"metric {name!r} disappeared from the "
                               "candidate run")
            continue
        # Normalized ratio: how the metric moved relative to how the
        # machine moved. 1.0 = same speed per unit of CPU.
        ratio = (cand[name] / cal_c) / (ref[name] / cal_r)
        status = "ok"
        if ratio < 1.0 - tolerance:
            status = "REGRESSION"
            regressions.append(
                f"{name}: normalized ratio {ratio:.3f} < "
                f"{1.0 - tolerance:.3f} (raw {cand[name]:.4g} vs "
                f"{ref[name]:.4g})"
            )
        print(f"  {name}: {ref[name]:.4g} -> {cand[name]:.4g} "
              f"(normalized x{ratio:.3f}) {status}")
    for name in sorted(set(cand) - set(ref) - {CALIBRATION}):
        print(f"  {name}: new metric ({cand[name]:.4g}), no reference")
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--candidate", help="BENCH json to gate")
    ap.add_argument("--reference",
                    help="BENCH json to gate against (default: "
                         "highest-numbered BENCH_*.json in --root)")
    ap.add_argument("--root", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir),
        help="repo root holding the committed BENCH_*.json trajectory")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed normalized slowdown (default 0.25)")
    ap.add_argument("--validate", metavar="FILE",
                    help="only schema-validate FILE and exit")
    args = ap.parse_args()

    if args.validate:
        doc = load(args.validate)
        n = len(doc["metrics"])
        print(f"{args.validate}: valid ({n} metrics, label "
              f"{doc.get('label')!r}, mode {doc.get('mode')!r})")
        return 0

    if not args.candidate:
        ap.error("--candidate is required unless --validate is used")
    candidate = load(args.candidate)
    ref_path = args.reference or latest_reference(
        os.path.abspath(args.root), args.candidate)
    if ref_path is None:
        print("no reference BENCH_*.json found: nothing to gate against "
              "(first tracked PR)")
        return 0
    print(f"reference: {ref_path}")
    reference = load(ref_path)
    regressions = compare(candidate, reference, args.tolerance)
    if regressions:
        print(f"\n{len(regressions)} perf regression(s):", file=sys.stderr)
        for r in regressions:
            print(f"error: {r}", file=sys.stderr)
        return 1
    print("\nperf OK: no metric regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
