#pragma once

#include <cstdint>

#include "crypto/sha256.h"
#include "sim/time.h"
#include "types/ids.h"

namespace bamboo::types {

/// Fixed wire overhead of a transaction besides its payload: id, client
/// metadata, timestamp, framing. Approximates Bamboo's JSON/HTTP encoding.
inline constexpr std::uint64_t kTxOverheadBytes = 150;

/// A client transaction. The simulation carries no application payload
/// bytes, only their size (payload content never affects control flow;
/// Bamboo's execution layer is an in-memory KV store).
struct Transaction {
  TxId id = 0;
  /// Workload session that issued the transaction (for closed-loop clients).
  std::uint32_t session = 0;
  /// Replica the client submitted to; the one that will respond.
  NodeId serving_replica = 0;
  /// Network endpoint of the client host that issued the transaction
  /// (where the commit confirmation is sent).
  NodeId client_endpoint = 0;
  /// Client-side submission timestamp (for end-to-end latency).
  sim::Time submitted_at = 0;
  /// Payload size in bytes (Table I "psize").
  std::uint32_t payload_size = 0;

  [[nodiscard]] std::uint64_t wire_size() const {
    return kTxOverheadBytes + payload_size;
  }

  /// Digest contribution for block hashing.
  void absorb_into(crypto::Sha256& h) const {
    h.update_u64(id);
    h.update_u32(session);
    h.update_u32(serving_replica);
    h.update_u32(payload_size);
  }

  friend bool operator==(const Transaction&, const Transaction&) = default;
};

}  // namespace bamboo::types
