#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/sha256.h"
#include "types/certificates.h"
#include "types/ids.h"
#include "types/transaction.h"

namespace bamboo::types {

/// Fixed wire overhead of a block header (hashes, view, height, proposer,
/// framing), excluding the embedded QC and transactions.
inline constexpr std::uint64_t kBlockHeaderBytes = 120;

/// An immutable block: a batch of transactions, a parent link, and the
/// proposer's justification QC ("hQC" at proposal time). Construct via
/// BlockBuilder or Block::genesis(); blocks are shared as BlockPtr and
/// never mutated after construction.
class Block {
 public:
  struct Fields {
    crypto::Digest parent_hash{};
    View view = 0;
    Height height = 0;
    /// Proposal slot within the view. 0 (the single-leader default) is
    /// elided from the hash and the wire size, so every pre-slot block is
    /// bit-identical under the extended encoding.
    Slot slot = 0;
    NodeId proposer = 0;
    QuorumCert justify;
    std::vector<Transaction> txns;
  };

  explicit Block(Fields f)
      : parent_hash_(f.parent_hash),
        view_(f.view),
        height_(f.height),
        slot_(f.slot),
        proposer_(f.proposer),
        justify_(std::move(f.justify)),
        txns_(std::move(f.txns)),
        hash_(compute_hash(parent_hash_, view_, height_, slot_, proposer_,
                           justify_, txns_)),
        wire_size_(compute_wire_size(slot_, justify_, txns_)) {}

  [[nodiscard]] const crypto::Digest& hash() const { return hash_; }
  [[nodiscard]] const crypto::Digest& parent_hash() const {
    return parent_hash_;
  }
  [[nodiscard]] View view() const { return view_; }
  [[nodiscard]] Height height() const { return height_; }
  [[nodiscard]] Slot slot() const { return slot_; }
  [[nodiscard]] NodeId proposer() const { return proposer_; }
  [[nodiscard]] const QuorumCert& justify() const { return justify_; }
  [[nodiscard]] const std::vector<Transaction>& txns() const { return txns_; }
  [[nodiscard]] bool is_genesis() const { return view_ == kGenesisView; }

  /// True when the justify QC certifies the direct parent (a "one-chain
  /// link"; the building block of the HotStuff commit rules).
  [[nodiscard]] bool justify_is_parent() const {
    return justify_.block_hash == parent_hash_;
  }

  /// Cached at construction like the hash: blocks are immutable and the
  /// transport sizes every proposal it forwards, so the O(txns) sum would
  /// otherwise be repaid on each send.
  [[nodiscard]] std::uint64_t wire_size() const { return wire_size_; }

  static crypto::Digest compute_hash(const crypto::Digest& parent_hash,
                                     View view, Height height, Slot slot,
                                     NodeId proposer,
                                     const QuorumCert& justify,
                                     const std::vector<Transaction>& txns);

  /// The unique genesis block (view 0, height 0, zero parent).
  static std::shared_ptr<const Block> genesis();

  /// The conventional QC certifying genesis.
  static QuorumCert genesis_qc();

 private:
  crypto::Digest parent_hash_;
  View view_;
  Height height_;
  Slot slot_;
  NodeId proposer_;
  QuorumCert justify_;
  [[nodiscard]] static std::uint64_t compute_wire_size(
      Slot slot, const QuorumCert& justify,
      const std::vector<Transaction>& txns) {
    // Slot rides as a proto3-style default-elided varint field: absent at
    // 0, one tag byte + 4-byte value otherwise.
    std::uint64_t bytes = kBlockHeaderBytes + (slot == 0 ? 0 : 5) +
                          justify.wire_size();
    for (const Transaction& tx : txns) bytes += tx.wire_size();
    return bytes;
  }

  std::vector<Transaction> txns_;
  crypto::Digest hash_;
  std::uint64_t wire_size_;
};

using BlockPtr = std::shared_ptr<const Block>;

}  // namespace bamboo::types
