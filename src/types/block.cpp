#include "types/block.h"

namespace bamboo::types {

crypto::Digest Block::compute_hash(const crypto::Digest& parent_hash,
                                   View view, Height height, Slot slot,
                                   NodeId proposer,
                                   const QuorumCert& justify,
                                   const std::vector<Transaction>& txns) {
  crypto::Sha256 h;
  h.update("bamboo-block");
  h.update(parent_hash);
  h.update_u64(view);
  h.update_u64(height);
  // Default-elided: slot 0 absorbs nothing, so pre-slot hashes (and the
  // hash-keyed container iteration orders downstream) are unchanged.
  if (slot != 0) {
    h.update("slot");
    h.update_u32(slot);
  }
  h.update_u32(proposer);
  h.update_u64(justify.view);
  h.update(justify.block_hash);
  h.update_u64(txns.size());
  for (const Transaction& tx : txns) tx.absorb_into(h);
  return h.finish();
}

BlockPtr Block::genesis() {
  static const BlockPtr g = [] {
    Fields f;
    f.view = kGenesisView;
    f.height = 0;
    f.proposer = kNoNode;
    return std::make_shared<const Block>(std::move(f));
  }();
  return g;
}

QuorumCert Block::genesis_qc() {
  QuorumCert qc;
  qc.view = kGenesisView;
  qc.height = 0;
  qc.block_hash = genesis()->hash();
  return qc;
}

}  // namespace bamboo::types
