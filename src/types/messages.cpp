#include "types/messages.h"

namespace bamboo::types {

namespace {

struct WireSizeVisitor {
  std::uint64_t operator()(const ProposalMsg& m) const {
    std::uint64_t bytes = 16 + crypto::kSignatureWireBytes;
    if (m.block) bytes += m.block->wire_size();
    if (m.tc) bytes += m.tc->wire_size();
    return bytes;
  }
  std::uint64_t operator()(const VoteMsg& m) const {
    // view + height + hash + signature + framing; the slot field is
    // default-elided like the block's (absent at 0).
    return 16 + 32 + crypto::kSignatureWireBytes + 16 +
           (m.slot == 0 ? 0 : 5);
  }
  std::uint64_t operator()(const TimeoutMsg& m) const {
    return 16 + m.high_qc.wire_size() + crypto::kSignatureWireBytes;
  }
  std::uint64_t operator()(const TcMsg& m) const {
    return 8 + m.tc.wire_size();
  }
  std::uint64_t operator()(const ClientRequestMsg& m) const {
    return m.tx.wire_size();
  }
  std::uint64_t operator()(const ClientResponseMsg&) const { return 64; }
  std::uint64_t operator()(const ChainRequestMsg& m) const {
    // want hash + committed height + batch cap + framing; matches the
    // legacy single-block request size, so sync_batch == 1 runs are
    // byte-identical on the wire. The pipelined-sync skip count rides as
    // a default-elided field (absent at 0, tag byte + u32 otherwise).
    return 48 + (m.skip == 0 ? 0 : 5);
  }
  std::uint64_t operator()(const ChainResponseMsg& m) const {
    std::uint64_t bytes = 16;
    for (const BlockPtr& b : m.blocks) {
      if (b) bytes += b->wire_size();
    }
    // The (want_hash, skip) echo only travels on pipelined mid-gap
    // segments; the legacy serial path stays byte-identical.
    return bytes + (m.skip == 0 ? 0 : 37);
  }
  std::uint64_t operator()(const QcMsg& m) const {
    return 8 + m.qc.wire_size();
  }
  std::uint64_t operator()(const SnapshotRequestMsg&) const {
    // want hash + committed height + framing, like ChainRequestMsg.
    return 48;
  }
  std::uint64_t operator()(const SnapshotChunkMsg& m) const {
    std::uint64_t bytes = 16 + 32 + 8 + 32 * m.hashes.size();
    if (m.anchor) bytes += m.anchor->wire_size() + m.anchor_qc.wire_size();
    return bytes;
  }
};

struct KindVisitor {
  const char* operator()(const ProposalMsg&) const { return "proposal"; }
  const char* operator()(const VoteMsg&) const { return "vote"; }
  const char* operator()(const TimeoutMsg&) const { return "timeout"; }
  const char* operator()(const TcMsg&) const { return "tc"; }
  const char* operator()(const ClientRequestMsg&) const { return "request"; }
  const char* operator()(const ClientResponseMsg&) const { return "response"; }
  const char* operator()(const ChainRequestMsg&) const { return "chainreq"; }
  const char* operator()(const ChainResponseMsg&) const { return "chainresp"; }
  const char* operator()(const QcMsg&) const { return "qc"; }
  const char* operator()(const SnapshotRequestMsg&) const {
    return "snapreq";
  }
  const char* operator()(const SnapshotChunkMsg&) const { return "snapchunk"; }
};

}  // namespace

std::uint64_t wire_size(const Message& msg) {
  return std::visit(WireSizeVisitor{}, msg);
}

const char* kind_name(const Message& msg) {
  return std::visit(KindVisitor{}, msg);
}

}  // namespace bamboo::types
