#include "types/certificates.h"

namespace bamboo::types {

crypto::Digest vote_digest(View view, const crypto::Digest& block_hash) {
  crypto::Sha256 h;
  h.update("bamboo-vote");
  h.update_u64(view);
  h.update(block_hash);
  return h.finish();
}

crypto::Digest timeout_digest(View view, View high_qc_view) {
  crypto::Sha256 h;
  h.update("bamboo-timeout");
  h.update_u64(view);
  h.update_u64(high_qc_view);
  return h.finish();
}

}  // namespace bamboo::types
