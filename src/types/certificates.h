#pragma once

#include <cstdint>
#include <vector>

#include "crypto/signer.h"
#include "types/ids.h"

namespace bamboo::types {

/// Quorum certificate: n-f matching votes for one block in one view.
/// A block with a valid QC is *certified* (Streamlet: *notarized*).
struct QuorumCert {
  View view = kGenesisView;
  Height height = 0;
  /// Proposal slot of the certified block (multi-leader protocols). 0 —
  /// the single-leader default — is elided from the wire size, keeping
  /// legacy certificates byte-identical. The signed vote digest already
  /// binds the slot through the block hash.
  Slot slot = 0;
  crypto::Digest block_hash{};
  std::vector<crypto::Signature> sigs;

  /// Genesis QC carries no signatures and is valid by convention.
  [[nodiscard]] bool is_genesis() const { return view == kGenesisView; }

  [[nodiscard]] std::uint64_t wire_size() const {
    return 48 + (slot == 0 ? 0 : 5) +
           crypto::kSignatureWireBytes * sigs.size();
  }

  friend bool operator==(const QuorumCert&, const QuorumCert&) = default;
};

/// Timeout certificate: n-f ⟨TIMEOUT, v⟩ messages. Carries the highest QC
/// seen among the aggregated timeout messages (the view-change justification;
/// Fast-HotStuff's AggQC additionally exposes the per-sender QC views).
struct TimeoutCert {
  View view = 0;
  std::vector<crypto::Signature> sigs;
  QuorumCert high_qc;
  /// QC view reported by each aggregated timeout (parallel to sigs);
  /// Fast-HotStuff uses this as the AggQC proof.
  std::vector<View> reported_qc_views;

  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + crypto::kSignatureWireBytes * sigs.size() +
           high_qc.wire_size() + 8 * reported_qc_views.size();
  }

  friend bool operator==(const TimeoutCert&, const TimeoutCert&) = default;
};

/// Digest a replica signs when voting for (view, block).
[[nodiscard]] crypto::Digest vote_digest(View view,
                                         const crypto::Digest& block_hash);

/// Digest a replica signs for a ⟨TIMEOUT, view⟩ message; binds the reported
/// high-QC view so AggQC proofs cannot be spoofed in-simulation.
[[nodiscard]] crypto::Digest timeout_digest(View view, View high_qc_view);

}  // namespace bamboo::types
