#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "crypto/signer.h"
#include "types/block.h"
#include "types/certificates.h"
#include "types/ids.h"
#include "types/transaction.h"

namespace bamboo::types {

/// Leader's block proposal for a view. After a timeout-driven view change
/// the proposal carries the TC that justifies entering the view.
struct ProposalMsg {
  BlockPtr block;
  std::optional<TimeoutCert> tc;
  crypto::Signature sig;
};

/// A replica's vote for (view, block). Routed to the next leader in the
/// HotStuff family; broadcast in Streamlet; routed to the block's own
/// proposer in multi-leader protocols (each slot leader aggregates the
/// QCs for its own proposals).
struct VoteMsg {
  View view = 0;
  Height height = 0;
  /// Slot of the voted block; 0 (single-leader default) is wire-elided.
  Slot slot = 0;
  crypto::Digest block_hash{};
  crypto::Signature sig;

  [[nodiscard]] NodeId voter() const { return sig.signer; }
};

/// ⟨TIMEOUT, view⟩, broadcast when a replica's view timer fires. Carries
/// the sender's highest QC so a new leader can adopt the freshest state.
struct TimeoutMsg {
  View view = 0;
  QuorumCert high_qc;
  crypto::Signature sig;

  [[nodiscard]] NodeId sender() const { return sig.signer; }
};

/// A formed timeout certificate, forwarded to the leader of view+1 (and
/// broadcast so lagging replicas catch up).
struct TcMsg {
  TimeoutCert tc;
};

/// Client -> replica transaction submission.
struct ClientRequestMsg {
  Transaction tx;
};

/// Replica -> client commit confirmation (or mempool rejection).
struct ClientResponseMsg {
  TxId tx_id = 0;
  std::uint32_t session = 0;
  sim::Time submitted_at = 0;
  bool rejected = false;
  /// Retry-after hint on rejections under the "backoff:<ms>" admission
  /// policy (0 = no hint; closed-loop clients fall back to their own
  /// retry_backoff). Rides in the modeled payload — wire_size unchanged.
  double backoff_ms = 0;
};

/// Batched chain-sync fetch (sync::Syncer): ask a peer for the block
/// `want_hash` plus up to `batch - 1` of its ancestors above the
/// requester's committed height — the chain locator. With batch == 1 this
/// degenerates to the legacy one-block-per-round request (same wire size).
struct ChainRequestMsg {
  crypto::Digest want_hash{};
  Height committed_height = 0;  ///< requester's committed tip (exclusive)
  std::uint32_t batch = 1;      ///< max blocks the responder may return
  /// Pipelined sync: ancestors of `want_hash` the responder walks past
  /// before serving `batch` blocks — so several segments of one long gap
  /// can be in flight at once. 0 (the legacy serial walk) is wire-elided.
  std::uint32_t skip = 0;
};

/// Answer to ChainRequestMsg: up to `batch` blocks, PARENT-FIRST, ending
/// at the requested hash (`blocks.back()->hash()` identifies the request).
/// Each block's justify QC certifies its parent, so applying a fetched
/// chain in order fast-paths QC application without extra round trips.
struct ChainResponseMsg {
  std::vector<BlockPtr> blocks;
  /// Pipelined sync: echo of the request's (want_hash, skip) so the
  /// requester can match a mid-gap segment (whose top block is NOT the
  /// wanted hash). Both zero — and wire-elided — on the legacy path.
  crypto::Digest want_hash{};
  std::uint32_t skip = 0;
};

/// A freshly formed QC, broadcast by the slot leader that aggregated it
/// (multi-leader protocols only — single-leader protocols disseminate QCs
/// embedded in the next proposal, so legacy traffic never carries this).
struct QcMsg {
  QuorumCert qc;
};

/// Snapshot/checkpoint state transfer (storage subsystem): a replica too
/// far behind `want_hash` asks a peer for its committed checkpoint instead
/// of chain-syncing the whole gap block-by-block.
struct SnapshotRequestMsg {
  crypto::Digest want_hash{};   ///< the block that exposed the gap
  Height committed_height = 0;  ///< requester's committed tip
};

/// One chunk of a snapshot: a slice of the server's committed-hash chain
/// [0, anchor.height], bound to a state root (the hash over the whole
/// chain). The FINAL chunk carries the anchor block and its certifying QC
/// — the part the receiver validates through quorum::CertVerifier before
/// installing anything. Chunks are self-describing (seq/total/root), so a
/// tampered or reordered stream is detected without peer state.
struct SnapshotChunkMsg {
  std::uint32_t seq = 0;    ///< chunk index, 0-based
  std::uint32_t total = 0;  ///< chunk count for this snapshot
  crypto::Digest root{};    ///< state root over the full hash chain
  Height base_height = 0;   ///< height of hashes.front()
  std::vector<crypto::Digest> hashes;  ///< committed-hash slice
  BlockPtr anchor;          ///< final chunk only: the checkpoint block
  QuorumCert anchor_qc;     ///< final chunk only: QC certifying `anchor`
};

using Message =
    std::variant<ProposalMsg, VoteMsg, TimeoutMsg, TcMsg, ClientRequestMsg,
                 ClientResponseMsg, ChainRequestMsg, ChainResponseMsg, QcMsg,
                 SnapshotRequestMsg, SnapshotChunkMsg>;

/// Messages are immutable and shared between broadcast recipients.
using MessagePtr = std::shared_ptr<const Message>;

/// Wire size of a message in bytes (drives the NIC/bandwidth model).
[[nodiscard]] std::uint64_t wire_size(const Message& msg);

/// Human-readable message kind for logs and statistics.
[[nodiscard]] const char* kind_name(const Message& msg);

template <typename T>
MessagePtr make_message(T msg) {
  return std::make_shared<const Message>(std::move(msg));
}

}  // namespace bamboo::types
