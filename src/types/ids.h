#pragma once

#include <cstdint>
#include <limits>

namespace bamboo::types {

/// Index of a replica within the cluster [0, N). Client hosts get ids
/// >= N in the network's endpoint space.
using NodeId = std::uint32_t;

/// Protocol view number. Views start at 1; view 0 is reserved for genesis.
using View = std::uint64_t;

/// Block height (genesis = 0). Height increases by one per parent link;
/// views may skip numbers (timeouts) but heights never do.
using Height = std::uint64_t;

/// Globally unique transaction id, assigned by the workload driver.
using TxId = std::uint64_t;

/// Proposal slot within a view. Single-leader protocols use slot 0 only;
/// multi-leader protocols (FnF-BFT) give each of the view's W leaders its
/// own slot [0, W). Slot 0 is the wire/hash default and is elided, so
/// single-leader traffic is byte-identical to the pre-slot encoding.
using Slot = std::uint32_t;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
inline constexpr View kGenesisView = 0;

/// Byzantine fault budget for a cluster of n replicas: f = floor((n-1)/3).
[[nodiscard]] constexpr std::uint32_t max_faulty(std::uint32_t n) {
  return (n - 1) / 3;
}

/// Quorum size n - f (equals 2f+1 when n = 3f+1; stays safe for other n).
[[nodiscard]] constexpr std::uint32_t quorum_size(std::uint32_t n) {
  return n - max_faulty(n);
}

}  // namespace bamboo::types
