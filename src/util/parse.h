#pragma once

// Tiny shared parsing helpers for the spec-string grammars (topology
// scenarios, churn DSL). Centralized so strictness fixes — e.g. the
// rejection of "nan"/"inf", which strtod happily accepts but every range
// check silently passes — reach every grammar at once.

#include <cmath>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

namespace bamboo::util {

/// Split on every occurrence of `sep`; adjacent separators yield empty
/// strings, so callers can reject them with context.
inline std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t next = text.find(sep, start);
    parts.push_back(text.substr(
        start, next == std::string::npos ? std::string::npos : next - start));
    if (next == std::string::npos) break;
    start = next + 1;
  }
  return parts;
}

/// Strict finite double: the whole string must parse and the value must
/// be finite (no "nan"/"inf" — those defeat range checks downstream).
/// nullopt on anything else; callers format their own error context.
inline std::optional<double> parse_finite_double(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !std::isfinite(v)) {
    return std::nullopt;
  }
  return v;
}

}  // namespace bamboo::util
