#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace bamboo::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Minimal leveled logger. Single-threaded by design (the simulator is
/// single-threaded); benches set the level to kWarn to keep hot paths quiet.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, const std::string& msg);

 private:
  LogLevel level_ = LogLevel::kWarn;
};

/// Stream-style log statement builder; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace bamboo::util

#define BAMBOO_LOG(level)                                       \
  if (!::bamboo::util::Logger::instance().enabled(level)) {     \
  } else                                                        \
    ::bamboo::util::LogLine(level)

#define LOG_TRACE BAMBOO_LOG(::bamboo::util::LogLevel::kTrace)
#define LOG_DEBUG BAMBOO_LOG(::bamboo::util::LogLevel::kDebug)
#define LOG_INFO BAMBOO_LOG(::bamboo::util::LogLevel::kInfo)
#define LOG_WARN BAMBOO_LOG(::bamboo::util::LogLevel::kWarn)
#define LOG_ERROR BAMBOO_LOG(::bamboo::util::LogLevel::kError)
