#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace bamboo::util {

/// Deterministic pseudo-random generator: xoshiro256++ seeded via SplitMix64.
///
/// The standard library distributions are not guaranteed to produce identical
/// streams across implementations, so everything that needs randomness in the
/// simulator goes through this class. A given seed reproduces a run
/// bit-for-bit.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
    has_cached_gaussian_ = false;
  }

  /// Next raw 64-bit value (xoshiro256++).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_u64(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (cached pair).
  double gaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return -std::log(u) / rate;
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace bamboo::util
