#include "util/logging.h"

namespace bamboo::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& msg) {
  if (!enabled(level)) return;
  const char* tag = "?";
  switch (level) {
    case LogLevel::kTrace: tag = "TRACE"; break;
    case LogLevel::kDebug: tag = "DEBUG"; break;
    case LogLevel::kInfo: tag = "INFO"; break;
    case LogLevel::kWarn: tag = "WARN"; break;
    case LogLevel::kError: tag = "ERROR"; break;
    case LogLevel::kOff: return;
  }
  std::cerr << "[" << tag << "] " << msg << "\n";
}

}  // namespace bamboo::util
