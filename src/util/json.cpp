#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace bamboo::util {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError(what, line_, pos_ - line_start_ + 1);
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }

  char peek() const {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      line_start_ = pos_;
    }
    return c;
  }

  void expect(char c) {
    if (at_end() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    advance();
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else {
        break;
      }
    }
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': return parse_literal("true", Json(true));
      case 'f': return parse_literal("false", Json(false));
      case 'n': return parse_literal("null", Json(nullptr));
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  Json parse_literal(std::string_view word, Json value) {
    for (char expected : word) {
      if (at_end() || text_[pos_] != expected) fail("invalid literal");
      advance();
    }
    return value;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && text_[pos_] == '-') advance();
    if (at_end() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      fail("invalid number");
    while (!at_end() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
      advance();
    if (!at_end() && text_[pos_] == '.') {
      advance();
      if (at_end() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("invalid number: expected digit after '.'");
      while (!at_end() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        advance();
    }
    if (!at_end() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      advance();
      if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) advance();
      if (at_end() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("invalid number: empty exponent");
      while (!at_end() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        advance();
    }
    const std::string token(text_.substr(start, pos_ - start));
    return Json(std::strtod(token.c_str(), nullptr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = advance();
      if (c == '"') break;
      if (c == '\\') {
        if (at_end()) fail("unterminated escape");
        const char e = advance();
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              if (at_end()) fail("truncated \\u escape");
              const char h = advance();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                fail("invalid \\u escape");
            }
            // Encode as UTF-8 (basic multilingual plane only; surrogate
            // pairs are rejected — config files do not need them).
            if (code >= 0xd800 && code <= 0xdfff)
              fail("surrogate pairs are not supported");
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json parse_array() {
    expect('[');
    Json::Array items;
    skip_whitespace();
    if (!at_end() && text_[pos_] == ']') {
      advance();
      return Json(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        advance();
      } else if (c == ']') {
        advance();
        break;
      } else {
        fail("expected ',' or ']' in array");
      }
    }
    return Json(std::move(items));
  }

  Json parse_object() {
    expect('{');
    Json::Object members;
    skip_whitespace();
    if (!at_end() && text_[pos_] == '}') {
      advance();
      return Json(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.insert_or_assign(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        advance();
      } else if (c == '}') {
        advance();
        break;
      } else {
        fail("expected ',' or '}' in object");
      }
    }
    return Json(std::move(members));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t line_start_ = 0;
};

void dump_string(const std::string& s, std::ostringstream& out) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* digits = "0123456789abcdef";
          out << "\\u00" << digits[(c >> 4) & 0xf] << digits[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

std::string Json::number_to_string(double value) {
  std::ostringstream out;
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      std::abs(value) < 1e15) {
    out << static_cast<std::int64_t>(value);
  } else {
    out.precision(17);
    out << value;
  }
  return out.str();
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

double Json::get_number(std::string_view key, double fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::int64_t Json::get_int(std::string_view key, std::int64_t fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_int() : fallback;
}

bool Json::get_bool(std::string_view key, bool fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

std::string Json::get_string(std::string_view key, std::string fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string()
                                          : std::move(fallback);
}

std::string Json::dump() const {
  std::ostringstream out;
  struct Visitor {
    std::ostringstream& out;
    void operator()(std::nullptr_t) const { out << "null"; }
    void operator()(bool b) const { out << (b ? "true" : "false"); }
    void operator()(double d) const { out << Json::number_to_string(d); }
    void operator()(const std::string& s) const { dump_string(s, out); }
    void operator()(const Json::Array& a) const {
      out << '[';
      bool first = true;
      for (const Json& item : a) {
        if (!first) out << ',';
        first = false;
        out << item.dump();
      }
      out << ']';
    }
    void operator()(const Json::Object& o) const {
      out << '{';
      bool first = true;
      for (const auto& [key, value] : o) {
        if (!first) out << ',';
        first = false;
        dump_string(key, out);
        out << ':' << value.dump();
      }
      out << '}';
    }
  };
  // dump() recursion goes through the public API, so rebuild the visitor on
  // each level; fine for config-sized documents.
  std::visit(Visitor{out}, value_);
  return out.str();
}

}  // namespace bamboo::util
