#pragma once

// Deterministic fixed-bucket log-scale latency histogram (HDR-histogram
// style log-linear bucketing). The domain is latency in integer
// microseconds; bucket boundaries are pure bit arithmetic, so two runs
// that record the same multiset of samples produce byte-identical
// histograms regardless of insertion order, thread count, or sharding.
// Merging is integer addition of per-bucket counts — associative and
// commutative — which is what makes p50/p99/p999 on merged aggregate rows
// bit-identical between sharded and unsharded executions (the property
// util::Samples' exact-but-unmergeable percentile cannot provide).
//
// Layout: values below 2^6 = 64 µs land in width-1 buckets (exact);
// above that, each power-of-two octave is split into 64 linear
// sub-buckets, bounding the relative quantization error by 1/64 ≈ 1.6%.

#include <cstdint>
#include <map>
#include <string>

namespace bamboo::util {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits linear buckets per octave.
  static constexpr std::uint32_t kSubBits = 6;
  static constexpr std::uint64_t kSubCount = 1ull << kSubBits;

  /// Bucket index of a microsecond value (total order, contiguous).
  [[nodiscard]] static std::uint32_t index_of(std::uint64_t us);
  /// Lowest microsecond value mapping to `index` (the bucket's
  /// representative; quantiles report it, so sub-64µs values round-trip
  /// exactly).
  [[nodiscard]] static std::uint64_t value_of(std::uint32_t index);

  /// Record one latency sample (milliseconds; rounded to integer µs).
  void add(double ms);
  /// Add every bucket count of `other` into this histogram.
  void merge(const LatencyHistogram& other);
  void clear();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Quantile q in [0, 1] as milliseconds: the representative value of the
  /// bucket holding the ceil(q * count)-th smallest sample (rank 1-based,
  /// clamped). 0 on an empty histogram. Exact for sub-64µs samples,
  /// within 1/64 below the true value otherwise.
  [[nodiscard]] double quantile(double q) const;

  /// Sparse text encoding "index:count;index:count;..." in ascending index
  /// order ("" when empty) — the merge-safe persistence format carried in
  /// report rows. decode() inverts it and throws std::invalid_argument on
  /// malformed input.
  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static LatencyHistogram decode(const std::string& text);

  /// Ascending (index, count) view, for tests and renderers.
  [[nodiscard]] const std::map<std::uint32_t, std::uint64_t>& buckets() const {
    return buckets_;
  }

  bool operator==(const LatencyHistogram&) const = default;

 private:
  std::map<std::uint32_t, std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
};

}  // namespace bamboo::util
