#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bamboo::util {

/// Lowercase hex encoding of a byte span.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

/// Decode hex (upper or lower case). Returns nullopt on odd length or
/// non-hex characters.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> from_hex(
    std::string_view hex);

}  // namespace bamboo::util
