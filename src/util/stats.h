#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bamboo::util {

/// Two-sided Student-t critical value at 95% confidence for `df` degrees
/// of freedom (t_{0.975, df}); converges to the normal 1.96 for large df.
/// Benchmarks repeat each point under only a handful of seeds, where the
/// normal approximation understates the interval badly (df = 1 needs
/// 12.706, not 1.96).
[[nodiscard]] double t_critical_95(std::size_t df);

/// Streaming mean/variance/min/max via Welford's algorithm.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Half-width of the 95% confidence interval on the mean,
  /// t_{0.975, n-1} σ/√n with Student-t critical values (exact for the
  /// small rep counts benches run with); 0 for fewer than two samples.
  [[nodiscard]] double ci95() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  void clear();

  /// Merge another accumulator into this one.
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Sample container with exact percentile queries (sorts lazily).
class Samples {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;

  /// Exact percentile by linear interpolation; p in [0, 100].
  [[nodiscard]] double percentile(double p);

  [[nodiscard]] double median() { return percentile(50.0); }
  [[nodiscard]] double p99() { return percentile(99.0); }

  void clear() {
    values_.clear();
    sorted_ = false;
  }

  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted();

  std::vector<double> values_;
  bool sorted_ = false;
};

/// Fixed-width time-bucket counter used for throughput timelines
/// (e.g. the responsiveness experiment, Fig. 15).
class TimelineCounter {
 public:
  /// bucket_width and horizon share whatever unit the caller uses.
  TimelineCounter(double bucket_width, double horizon);

  /// Add `amount` events at time t (ignored if outside the horizon).
  void add(double t, double amount = 1.0);

  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  [[nodiscard]] double bucket_width() const { return width_; }
  /// Events per unit time within bucket i.
  [[nodiscard]] double rate(std::size_t i) const;
  /// Start time of bucket i.
  [[nodiscard]] double bucket_start(std::size_t i) const;

 private:
  double width_;
  std::vector<double> buckets_;
};

}  // namespace bamboo::util
