#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace bamboo::util {

double t_critical_95(std::size_t df) {
  // Two-sided t_{0.975, df}, exact table for df <= 30, then the standard
  // coarse steps (40/60/120) down to the normal limit.
  static constexpr double kTable[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df - 1];
  if (df <= 40) return 2.021;
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.96;
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95() const {
  if (count_ < 2) return 0.0;
  return t_critical_95(count_ - 1) * stddev() /
         std::sqrt(static_cast<double>(count_));
}

void RunningStats::clear() {
  count_ = 0;
  mean_ = m2_ = min_ = max_ = sum_ = 0.0;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size() - 1));
}

void Samples::ensure_sorted() {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::percentile(double p) {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  if (p <= 0.0) return values_.front();
  if (p >= 100.0) return values_.back();
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

TimelineCounter::TimelineCounter(double bucket_width, double horizon)
    : width_(bucket_width) {
  const auto n = static_cast<std::size_t>(horizon / bucket_width) + 1;
  buckets_.assign(n, 0.0);
}

void TimelineCounter::add(double t, double amount) {
  if (t < 0.0 || width_ <= 0.0) return;
  const auto i = static_cast<std::size_t>(t / width_);
  if (i < buckets_.size()) buckets_[i] += amount;
}

double TimelineCounter::rate(std::size_t i) const {
  if (i >= buckets_.size() || width_ <= 0.0) return 0.0;
  return buckets_[i] / width_;
}

double TimelineCounter::bucket_start(std::size_t i) const {
  return static_cast<double>(i) * width_;
}

}  // namespace bamboo::util
