#include "util/histogram.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace bamboo::util {

std::uint32_t LatencyHistogram::index_of(std::uint64_t us) {
  if (us < kSubCount) return static_cast<std::uint32_t>(us);
  // msb >= kSubBits: octave o = msb - kSubBits + 1, sub-bucket = the
  // kSubBits bits below the leading one.
  const auto msb = static_cast<std::uint32_t>(std::bit_width(us) - 1);
  const std::uint32_t octave = msb - kSubBits + 1;
  const auto sub = static_cast<std::uint32_t>(
      (us >> (msb - kSubBits)) & (kSubCount - 1));
  return (octave << kSubBits) | sub;
}

std::uint64_t LatencyHistogram::value_of(std::uint32_t index) {
  if (index < kSubCount) return index;
  const std::uint32_t octave = index >> kSubBits;
  const std::uint64_t sub = index & (kSubCount - 1);
  return (kSubCount + sub) << (octave - 1);
}

void LatencyHistogram::add(double ms) {
  const double us = ms * 1e3;
  const std::uint64_t v =
      us <= 0 ? 0 : static_cast<std::uint64_t>(std::llround(us));
  ++buckets_[index_of(v)];
  ++count_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
  count_ += other.count_;
}

void LatencyHistogram::clear() {
  buckets_.clear();
  count_ = 0;
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t cum = 0;
  for (const auto& [index, n] : buckets_) {
    cum += n;
    if (cum >= rank) {
      return static_cast<double>(value_of(index)) / 1e3;
    }
  }
  return 0.0;  // unreachable: counts sum to count_
}

std::string LatencyHistogram::encode() const {
  std::string out;
  for (const auto& [index, n] : buckets_) {
    if (!out.empty()) out += ';';
    out += std::to_string(index);
    out += ':';
    out += std::to_string(n);
  }
  return out;
}

LatencyHistogram LatencyHistogram::decode(const std::string& text) {
  LatencyHistogram h;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(';', pos);
    if (end == std::string::npos) end = text.size();
    const std::string entry = text.substr(pos, end - pos);
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= entry.size()) {
      throw std::invalid_argument("histogram entry '" + entry +
                                  "' is not index:count");
    }
    char* stop = nullptr;
    const unsigned long long index =
        std::strtoull(entry.c_str(), &stop, 10);
    if (stop != entry.c_str() + colon) {
      throw std::invalid_argument("bad histogram bucket index in '" +
                                  entry + "'");
    }
    const std::string count_str = entry.substr(colon + 1);
    const unsigned long long n = std::strtoull(count_str.c_str(), &stop, 10);
    if (stop != count_str.c_str() + count_str.size() || n == 0) {
      throw std::invalid_argument("bad histogram bucket count in '" +
                                  entry + "'");
    }
    h.buckets_[static_cast<std::uint32_t>(index)] += n;
    h.count_ += n;
    pos = end + 1;
  }
  return h;
}

}  // namespace bamboo::util
