#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace bamboo::util {

/// Error thrown by the JSON parser, with 1-based line/column info.
class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& what, std::size_t line, std::size_t col)
      : std::runtime_error(what + " at line " + std::to_string(line) +
                           ", column " + std::to_string(col)),
        line_(line),
        col_(col) {}

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return col_; }

 private:
  std::size_t line_;
  std::size_t col_;
};

/// A parsed JSON value. Bamboo configurations are JSON files distributed to
/// every node (paper §III-D); this is a dependency-free subset parser:
/// objects, arrays, strings (with escapes), numbers, booleans, null.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json, std::less<>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  /// Parse a complete JSON document; trailing garbage is an error.
  static Json parse(std::string_view text);

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(value_);
  }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_number() const { return std::get<double>(value_); }
  [[nodiscard]] std::int64_t as_int() const {
    return static_cast<std::int64_t>(std::get<double>(value_));
  }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(value_); }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(value_);
  }

  /// Object member lookup; returns nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Convenience typed getters with defaults (for config loading).
  [[nodiscard]] double get_number(std::string_view key, double fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string fallback) const;

  /// Serialize (compact; stable key order because Object is a std::map).
  [[nodiscard]] std::string dump() const;

  /// The exact textual form dump() uses for numbers: integral values print
  /// as integers, everything else at 17 significant digits (lossless
  /// double round-trip). Shared with the CSV result emitter so both
  /// formats serialize a double to identical bytes.
  [[nodiscard]] static std::string number_to_string(double value);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace bamboo::util
