#include "crypto/signer.h"

namespace bamboo::crypto {

KeyStore::KeyStore(std::uint64_t cluster_seed, SignerId num_signers) {
  keys_.reserve(num_signers);
  midstates_.reserve(num_signers);
  for (SignerId id = 0; id < num_signers; ++id) {
    Sha256 h;
    h.update("bamboo-key");
    h.update_u64(cluster_seed);
    h.update_u32(id);
    keys_.push_back(h.finish());
    midstates_.push_back(hmac_midstates(keys_.back()));
  }
}

Signature KeyStore::sign(SignerId signer, const Digest& message) const {
  Signature sig;
  sig.signer = signer;
  const auto& [inner, outer] = midstates_.at(signer);
  sig.tag = hmac_sha256(inner, outer, message);
  return sig;
}

bool KeyStore::verify(const Signature& sig, const Digest& message) const {
  if (sig.signer >= keys_.size()) return false;
  const auto& [inner, outer] = midstates_[sig.signer];
  return hmac_sha256(inner, outer, message) == sig.tag;
}

}  // namespace bamboo::crypto
