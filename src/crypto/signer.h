#pragma once

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"

namespace bamboo::crypto {

/// Index of a node (replica or client host) within a cluster.
using SignerId = std::uint32_t;

/// A simulated signature: the signer's id plus an HMAC tag over the signed
/// digest.
///
/// SUBSTITUTION NOTE (see DESIGN.md §1): the paper's Bamboo uses secp256k1.
/// Inside a deterministic simulation, signatures must only be (a) bound to
/// signer + message and (b) unforgeable by any simulated adversary — HMAC
/// over a per-node secret derived from a cluster seed provides both, and a
/// Byzantine strategy that does fabricate tags (forge-qc) is caught because
/// every received QC/TC is structurally validated and HMAC-verified
/// (quorum/cert_verifier.h). The CPU cost of real ECDSA is modeled
/// separately: flat per-message charges (Config::cpu_sign / cpu_verify)
/// plus the strategy-aware per-signature certificate costs
/// (Config::verify_strategy, cpu_verify_per_sig, cpu_verify_batch_*), so
/// performance results are faithful for certificates too.
struct Signature {
  SignerId signer = 0;
  Digest tag{};

  friend bool operator==(const Signature&, const Signature&) = default;
};

/// Wire size of one signature (secp256k1 compact encoding + signer id),
/// used by the network byte accounting.
inline constexpr std::uint64_t kSignatureWireBytes = 69;

/// Holds the per-node signing secrets for one simulated cluster.
class KeyStore {
 public:
  /// Create keys for `num_signers` nodes from a cluster seed.
  KeyStore(std::uint64_t cluster_seed, SignerId num_signers);

  [[nodiscard]] SignerId num_signers() const {
    return static_cast<SignerId>(keys_.size());
  }

  /// Sign a digest as `signer`.
  [[nodiscard]] Signature sign(SignerId signer, const Digest& message) const;

  /// Verify that `sig` is a valid signature by `sig.signer` over `message`.
  [[nodiscard]] bool verify(const Signature& sig, const Digest& message) const;

 private:
  std::vector<Digest> keys_;  // per-node secrets
  // Per-key HMAC prefix states (ipad/opad blocks pre-compressed): halves
  // the SHA-256 compressions of every sign/verify on the hot path.
  std::vector<std::pair<Sha256Midstate, Sha256Midstate>> midstates_;
};

}  // namespace bamboo::crypto
