#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>

namespace bamboo::crypto {

/// A 256-bit digest. Blocks, transactions, votes, and simulated signatures
/// are all identified by one of these.
using Digest = std::array<std::uint8_t, 32>;

/// Compression state captured after a whole number of 64-byte blocks.
/// Resuming from a midstate yields exactly the digest the full computation
/// would — it only skips re-compressing the captured prefix. HMAC uses this
/// to cache each key's one-block ipad/opad prefixes (KeyStore).
struct Sha256Midstate {
  std::array<std::uint32_t, 8> state{};
  std::uint64_t processed = 0;  ///< prefix length in bytes; multiple of 64
};

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch and verified
/// against the NIST test vectors in tests/test_crypto.cpp.
class Sha256 {
 public:
  Sha256() { reset(); }
  /// Resume hashing after an already-compressed prefix.
  explicit Sha256(const Sha256Midstate& mid)
      : state_(mid.state), total_len_(mid.processed) {}

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  }
  /// Append an integer in little-endian byte order (convenience for hashing
  /// structured data deterministically).
  void update_u64(std::uint64_t v);
  void update_u32(std::uint32_t v);

  /// Finalize and return the digest. The object must be reset() before reuse.
  [[nodiscard]] Digest finish();

  /// Capture the state after the bytes hashed so far; only valid on block
  /// boundaries (total length a multiple of 64 bytes).
  [[nodiscard]] Sha256Midstate midstate() const;

  /// One-shot helpers.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(std::string_view text);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// HMAC-SHA256 (RFC 2104); backs the simulated signature scheme.
[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message);

/// Per-key HMAC prefix states: .first resumes the inner hash after the
/// ipad block, .second the outer hash after the opad block.
[[nodiscard]] std::pair<Sha256Midstate, Sha256Midstate> hmac_midstates(
    std::span<const std::uint8_t> key);

/// HMAC-SHA256 from precomputed key midstates — bit-identical to
/// hmac_sha256(key, message) at half the compressions (2 instead of 4 for
/// digest-sized messages).
[[nodiscard]] Digest hmac_sha256(const Sha256Midstate& inner,
                                 const Sha256Midstate& outer,
                                 std::span<const std::uint8_t> message);

/// Short human-readable prefix of a digest (for logs and debugging).
[[nodiscard]] std::string short_hex(const Digest& d);

/// Full hex encoding.
[[nodiscard]] std::string to_hex(const Digest& d);

}  // namespace bamboo::crypto

// Hash support so Digest can key unordered containers.
template <>
struct std::hash<bamboo::crypto::Digest> {
  std::size_t operator()(const bamboo::crypto::Digest& d) const noexcept {
    // The digest is already uniform; fold the first 8 bytes.
    std::size_t h = 0;
    for (int i = 0; i < 8; ++i) h = (h << 8) | d[static_cast<std::size_t>(i)];
    return h;
  }
};
