#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace bamboo::sim {

/// Move-only `void()` callable with small-buffer storage: captures up to
/// `Capacity` bytes live inline, so scheduling an event allocates nothing.
///
/// `std::function` heap-allocates any capture larger than its tiny
/// implementation-defined SBO (16 bytes under libstdc++) and drags in
/// copy-ability machinery the event queue never uses — every scheduled
/// event paid an allocation. The simulator's delivery/timer lambdas capture
/// 16-64 bytes (`[this, slot]`, `[this, session, tx]`, churn closures), so a
/// 64-byte buffer keeps all hot-path captures inline; oversized or
/// over-aligned or throwing-move captures transparently fall back to one
/// heap cell, preserving `std::function`'s universality.
///
/// Dispatch is a single shared vtable pointer per callable type:
///   - invoke: call the capture
///   - relocate: move into a new buffer + destroy the source
///               (null => the capture is trivially relocatable: memcpy)
///   - destroy: destructor (null => trivial)
/// Null entries let moves of trivially-copyable captures compile down to a
/// memcpy with no indirect call.
template <std::size_t Capacity = 64>
class InlineFunction {
  static_assert(Capacity >= sizeof(void*), "buffer must fit a pointer");

  struct Ops {
    void (*invoke)(void* storage);
    void (*relocate)(void* dst, void* src) noexcept;  ///< null => memcpy
    void (*destroy)(void* storage) noexcept;          ///< null => trivial
  };

  /// A capture is stored inline iff it fits, is not over-aligned, and can
  /// be relocated without throwing (moves must be noexcept: the event
  /// queue relocates entries while rebalancing state).
  template <typename D>
  static constexpr bool kInline = sizeof(D) <= Capacity &&
                                  alignof(D) <= alignof(std::max_align_t) &&
                                  std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  struct InlineOps {
    static void invoke(void* s) { (*std::launder(static_cast<D*>(s)))(); }
    static void relocate(void* dst, void* src) noexcept {
      D* from = std::launder(static_cast<D*>(src));
      ::new (dst) D(std::move(*from));
      from->~D();
    }
    static void destroy(void* s) noexcept {
      std::launder(static_cast<D*>(s))->~D();
    }
    static constexpr Ops value{
        &invoke,
        std::is_trivially_copyable_v<D> ? nullptr : &relocate,
        std::is_trivially_destructible_v<D> ? nullptr : &destroy};
  };

  /// Heap fallback: the buffer holds one `D*`. The pointer itself is
  /// trivially relocatable, so relocate stays null (ownership moves with
  /// the bytes) and only destroy pays an indirect call.
  template <typename D>
  struct HeapOps {
    static D*& cell(void* s) { return *std::launder(static_cast<D**>(s)); }
    static void invoke(void* s) { (*cell(s))(); }
    static void destroy(void* s) noexcept { delete cell(s); }
    static constexpr Ops value{&invoke, nullptr, &destroy};
  };

 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
             std::is_invocable_v<std::remove_cvref_t<F>&>)
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::remove_cvref_t<F>;
    if constexpr (kInline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::value;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::value;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { steal(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  /// Destroy the held capture (heap cell included); *this becomes empty.
  void reset() noexcept {
    if (ops_ != nullptr && ops_->destroy != nullptr) ops_->destroy(buf_);
    ops_ = nullptr;
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr);
    ops_->invoke(buf_);
  }

  /// Capacity in bytes of the inline buffer (for tests / sizing asserts).
  static constexpr std::size_t capacity() { return Capacity; }

  /// Whether a capture of type D would be stored inline (no allocation).
  template <typename D>
  static constexpr bool stores_inline() {
    return kInline<std::remove_cvref_t<D>>;
  }

 private:
  void steal(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (ops_->relocate != nullptr) {
      ops_->relocate(buf_, other.buf_);
    } else {
      std::memcpy(buf_, other.buf_, Capacity);
    }
    other.ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace bamboo::sim
