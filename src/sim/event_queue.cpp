#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace bamboo::sim {

EventId EventQueue::schedule(Time at, Callback fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Cancelled entries stay in the heap as tombstones; pop() and next_time()
  // skip anything whose id is no longer pending.
  return pending_.erase(id) > 0;
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty() && pending_.find(heap_.top().id) == pending_.end()) {
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  drop_cancelled_head();
  assert(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty());
  // priority_queue::top() is const; move out of the head before popping
  // (the entry is discarded by the pop, so the move is safe).
  auto& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.at, top.id, std::move(top.fn)};
  heap_.pop();
  pending_.erase(fired.id);
  return fired;
}

}  // namespace bamboo::sim
