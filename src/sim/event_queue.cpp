#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace bamboo::sim {

EventQueue::EventQueue() {
  heap_.reserve(kReserveAhead);
  slots_.reserve(kReserveAhead);
  free_slots_.reserve(kReserveAhead);
}

EventId EventQueue::schedule(Time at, Callback fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  ++s.gen;
  s.live = true;
  s.fn = std::move(fn);

  heap_.push_back(Entry{at, ++seq_, slot, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return encode(slot, s.gen);
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffULL) - 1;
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.gen != gen || !s.live) return false;
  // The heap entry stays behind as a tombstone; the slot is recyclable
  // immediately because any new occupant bumps the generation. The capture
  // is destroyed now so cancellation releases owned resources promptly.
  s.live = false;
  s.fn.reset();
  release_slot(slot);
  --live_;
  return true;
}

void EventQueue::drop_dead_head() const {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() const {
  drop_dead_head();
  assert(!heap_.empty());
  return heap_.front().at;
}

EventQueue::Fired EventQueue::pop() {
  drop_dead_head();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry top = heap_.back();
  Slot& s = slots_[top.slot];
  Fired fired{top.at, encode(top.slot, top.gen), std::move(s.fn)};
  s.live = false;
  release_slot(top.slot);
  heap_.pop_back();
  --live_;
  return fired;
}

void EventQueue::release_slot(std::uint32_t slot) {
  // Retire a slot whose generation counter saturated instead of letting it
  // wrap: a wrapped generation could make a stale EventId held across 2^32
  // reuses alias a live event. Retirement costs 2 bytes per ~4e9 events.
  if (slots_[slot].gen != kMaxGeneration) free_slots_.push_back(slot);
}

}  // namespace bamboo::sim
