#pragma once

#include <cstdint>
#include <functional>
#include <thread>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "util/rng.h"

namespace bamboo::sim {

/// Single-threaded discrete-event simulator: a clock, an event queue, and a
/// deterministic RNG. Every component in a simulated cluster shares one
/// Simulator; all nondeterminism flows from its seed.
///
/// Parallelism lives strictly ABOVE this class: many Simulators may run on
/// many threads (one run per thread — see harness::ParallelRunner), but one
/// Simulator instance must only ever be touched from a single thread. Debug
/// builds assert this affinity on every schedule/cancel/step.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] util::Rng& rng() { return rng_; }

  /// Schedule at an absolute simulated time (clamped to now).
  EventId schedule_at(Time at, EventQueue::Callback fn) {
    assert_thread_affinity();
    return queue_.schedule(at < now_ ? now_ : at, std::move(fn));
  }

  /// Schedule after a relative delay (clamped to non-negative).
  EventId schedule_after(Duration delay, EventQueue::Callback fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  bool cancel(EventId id) {
    assert_thread_affinity();
    return queue_.cancel(id);
  }

  /// Execute the next event, if any. Returns false when the queue is empty.
  bool step();

  /// Run events until the queue empties or the clock passes `deadline`.
  /// Events at exactly `deadline` are executed. The clock is advanced to
  /// `deadline` on return if the queue drained earlier.
  void run_until(Time deadline);

  /// Run for a relative duration.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Run until the queue is completely empty (use with care in open systems).
  void run_all();

  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }

 private:
#ifdef NDEBUG
  void assert_thread_affinity() const {}
#else
  /// First touch pins the simulator to the calling thread; any later touch
  /// from another thread is a run-level parallelism bug.
  void assert_thread_affinity() const;
#endif

  Time now_ = 0;
  EventQueue queue_;
  util::Rng rng_;
  std::uint64_t events_executed_ = 0;
  // Present in all build types (only the check compiles out) so the class
  // layout never diverges between TUs built with and without NDEBUG.
  mutable std::thread::id owner_thread_{};
};

}  // namespace bamboo::sim
