#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "util/rng.h"

namespace bamboo::sim {

/// Single-threaded discrete-event simulator: a clock, an event queue, and a
/// deterministic RNG. Every component in a simulated cluster shares one
/// Simulator; all nondeterminism flows from its seed.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] util::Rng& rng() { return rng_; }

  /// Schedule at an absolute simulated time (clamped to now).
  EventId schedule_at(Time at, EventQueue::Callback fn) {
    return queue_.schedule(at < now_ ? now_ : at, std::move(fn));
  }

  /// Schedule after a relative delay (clamped to non-negative).
  EventId schedule_after(Duration delay, EventQueue::Callback fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Execute the next event, if any. Returns false when the queue is empty.
  bool step();

  /// Run events until the queue empties or the clock passes `deadline`.
  /// Events at exactly `deadline` are executed. The clock is advanced to
  /// `deadline` on return if the queue drained earlier.
  void run_until(Time deadline);

  /// Run for a relative duration.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Run until the queue is completely empty (use with care in open systems).
  void run_all();

  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }

 private:
  Time now_ = 0;
  EventQueue queue_;
  util::Rng rng_;
  std::uint64_t events_executed_ = 0;
};

}  // namespace bamboo::sim
