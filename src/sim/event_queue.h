#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_function.h"
#include "sim/time.h"

namespace bamboo::sim {

/// Identifier of a scheduled event; usable for cancellation. Encodes a
/// storage slot plus a generation stamp, so ids stay unique even though
/// slots are recycled: an id for a fired or cancelled event can never
/// alias a later event that reuses the same slot.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Priority queue of timestamped callbacks with deterministic tie-breaking
/// (FIFO among events scheduled for the same instant) and O(1) cancellation.
///
/// Hot-path design: entries carry a (slot, generation) stamp checked against
/// a flat slot table, replacing the previous unordered_set membership lookup
/// per schedule/cancel/pop. Cancelled entries stay in the heap as tombstones
/// and are skipped when they surface; all storage is reserve-ahead vectors,
/// so the steady state allocates only when the sim's event population grows
/// past any previous high-water mark.
///
/// Allocation-free steady state: callbacks are InlineFunction (captures up
/// to 64 bytes live inline, no per-event heap cell like std::function) and
/// they live in the slot table, not the heap — heap entries are 24-byte
/// PODs {at, seq, slot, gen}, so sift-up/down moves plain words and the
/// callback is touched exactly twice (moved in at schedule, moved out at
/// fire). cancel() destroys the capture immediately, releasing whatever it
/// owns without waiting for the tombstone to surface.
class EventQueue {
 public:
  using Callback = InlineFunction<64>;

  EventQueue();

  /// Schedule `fn` at absolute time `at`. Returns an id for cancel().
  EventId schedule(Time at, Callback fn);

  /// Cancel a pending event. Returns false (no-op) if the event already
  /// fired, was already cancelled, or the id is unknown.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Earliest pending event time; only valid when !empty().
  [[nodiscard]] Time next_time() const;

  /// Pop the earliest live event and return it. Precondition: !empty().
  struct Fired {
    Time at;
    EventId id;
    Callback fn;
  };
  Fired pop();

  /// Total events ever scheduled (statistics).
  [[nodiscard]] std::uint64_t total_scheduled() const { return seq_; }

 private:
  /// POD heap node; the callback lives in slots_[slot], so heap moves
  /// during sift-up/down never touch it.
  struct Entry {
    Time at;
    std::uint64_t seq;   ///< schedule order: FIFO among equal timestamps
    std::uint32_t slot;
    std::uint32_t gen;
  };
  /// Heap comparator for std::push_heap/pop_heap: the "largest" element
  /// (the heap top) is the earliest (at, seq).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// One recyclable identity plus the pending event's callback. An entry
  /// is live iff its stamp matches the slot's current generation and the
  /// slot is marked live.
  struct Slot {
    std::uint32_t gen = 0;
    bool live = false;
    Callback fn;
  };

  static constexpr std::size_t kReserveAhead = 1024;
  /// A slot reaching this generation is retired, never recycled, so stale
  /// ids can never alias a later event through generation wrap-around.
  static constexpr std::uint32_t kMaxGeneration = 0xffffffffu;

  [[nodiscard]] static EventId encode(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  [[nodiscard]] bool entry_live(const Entry& e) const {
    const Slot& s = slots_[e.slot];
    return s.gen == e.gen && s.live;
  }

  /// Discard cancelled tombstones sitting at the heap head (their slots
  /// were already released by cancel()).
  void drop_dead_head() const;

  /// Return a vacated slot to the free list (or retire it on generation
  /// saturation).
  void release_slot(std::uint32_t slot);

  // Mutable so next_time() can shed tombstones; logically const.
  mutable std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace bamboo::sim
