#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace bamboo::sim {

/// Identifier of a scheduled event; usable for cancellation.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Priority queue of timestamped callbacks with deterministic tie-breaking
/// (FIFO among events scheduled for the same instant) and lazy cancellation.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `at`. Returns an id for cancel().
  EventId schedule(Time at, Callback fn);

  /// Cancel a pending event. Returns false (no-op) if the event already
  /// fired, was already cancelled, or the id is unknown.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  /// Earliest pending event time; only valid when !empty().
  [[nodiscard]] Time next_time() const;

  /// Pop the earliest live event and return it. Precondition: !empty().
  struct Fired {
    Time at;
    EventId id;
    Callback fn;
  };
  Fired pop();

  /// Total events ever scheduled (statistics).
  [[nodiscard]] std::uint64_t total_scheduled() const { return next_id_ - 1; }

 private:
  struct Entry {
    Time at;
    EventId id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  void drop_cancelled_head() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;
  EventId next_id_ = 1;
};

}  // namespace bamboo::sim
