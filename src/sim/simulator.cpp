#include "sim/simulator.h"

namespace bamboo::sim {

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  now_ = fired.at;
  ++events_executed_;
  fired.fn();
  return true;
}

void Simulator::run_until(Time deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_all() {
  while (step()) {
  }
}

}  // namespace bamboo::sim
