#include "sim/simulator.h"

#include <cassert>

namespace bamboo::sim {

#ifndef NDEBUG
void Simulator::assert_thread_affinity() const {
  const std::thread::id self = std::this_thread::get_id();
  if (owner_thread_ == std::thread::id{}) {
    owner_thread_ = self;
    return;
  }
  assert(owner_thread_ == self &&
         "Simulator touched from a second thread; parallelize at the run "
         "level (one Simulator per thread), never inside one simulation");
}
#endif

bool Simulator::step() {
  assert_thread_affinity();
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  now_ = fired.at;
  ++events_executed_;
  fired.fn();
  return true;
}

void Simulator::run_until(Time deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_all() {
  while (step()) {
  }
}

}  // namespace bamboo::sim
