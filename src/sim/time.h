#pragma once

#include <cstdint>

namespace bamboo::sim {

/// Simulated time in integer nanoseconds. Integer time keeps event ordering
/// exact and runs reproducible; doubles are used only at the metrics edge.
using Time = std::int64_t;
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

[[nodiscard]] constexpr Duration microseconds(std::int64_t n) {
  return n * kMicrosecond;
}
[[nodiscard]] constexpr Duration milliseconds(std::int64_t n) {
  return n * kMillisecond;
}
[[nodiscard]] constexpr Duration seconds(std::int64_t n) { return n * kSecond; }

[[nodiscard]] constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
[[nodiscard]] constexpr double to_milliseconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
[[nodiscard]] constexpr double to_microseconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/// Convert a floating-point quantity of seconds to simulated time,
/// rounding to the nearest nanosecond.
[[nodiscard]] constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond) + 0.5);
}
[[nodiscard]] constexpr Time from_milliseconds(double ms) {
  return static_cast<Time>(ms * static_cast<double>(kMillisecond) + 0.5);
}

}  // namespace bamboo::sim
