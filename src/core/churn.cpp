#include "core/churn.h"

#include <charconv>
#include <cmath>
#include <stdexcept>

#include "util/parse.h"

namespace bamboo::core {

const char* churn_kind_name(ChurnKind kind) {
  switch (kind) {
    case ChurnKind::kLinkDegrade: return "degrade";
    case ChurnKind::kLinkRestore: return "restore";
    case ChurnKind::kPartitionStart: return "partition";
    case ChurnKind::kPartitionHeal: return "heal";
    case ChurnKind::kLossBurst: return "burst";
    case ChurnKind::kFluctuation: return "fluct";
    case ChurnKind::kCrash: return "crash";
    case ChurnKind::kCrashRestart: return "crash-restart";
    case ChurnKind::kSilence: return "silence";
  }
  return "?";
}

namespace {

[[noreturn]] void fail(const std::string& event, const std::string& why) {
  throw std::invalid_argument("churn event '" + event + "': " + why);
}

using util::split;

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

double parse_number(const std::string& text, const std::string& event,
                    const std::string& what) {
  const std::optional<double> v = util::parse_finite_double(text);
  if (!v) fail(event, "bad " + what + ": '" + text + "'");
  return *v;
}

std::uint32_t parse_id(const std::string& text, const std::string& event,
                       const std::string& what) {
  const double v = parse_number(text, event, what);
  // Range-check BEFORE the cast: double -> uint32 of an unrepresentable
  // value is UB, not a detectable wrap. Every uint32 is exact in double.
  if (v < 0 || v > 4294967295.0 || v != std::floor(v)) {
    fail(event, what + " must be a non-negative integer: '" + text + "'");
  }
  return static_cast<std::uint32_t>(v);
}

/// Split "<number>s" / "<number>ms" into (value, is_ms). The value is
/// returned in the unit the user WROTE and scaled by the caller exactly
/// once — the canonical formatter emits each field in its native unit
/// (times in s, delays in ms), so canonical strings re-parse with no
/// scaling at all and the DSL round-trip is bit-exact.
double parse_unit(const std::string& text, const std::string& event,
                  const std::string& what, bool& is_ms) {
  std::string num = text;
  if (num.size() > 2 && num.compare(num.size() - 2, 2, "ms") == 0) {
    is_ms = true;
    num.resize(num.size() - 2);
  } else if (num.size() > 1 && num.back() == 's') {
    is_ms = false;
    num.pop_back();
  } else {
    fail(event, what + " needs an 's' or 'ms' unit: '" + text + "'");
  }
  return parse_number(num, event, what);
}

/// "<number>s" | "<number>ms" -> seconds.
double parse_time_s(const std::string& text, const std::string& event,
                    const std::string& what) {
  bool is_ms = false;
  const double v = parse_unit(text, event, what, is_ms);
  return is_ms ? v * 1e-3 : v;
}

/// "<number>s" | "<number>ms" -> milliseconds.
double parse_time_ms(const std::string& text, const std::string& event,
                     const std::string& what) {
  bool is_ms = false;
  const double v = parse_unit(text, event, what, is_ms);
  return is_ms ? v : v * 1e3;
}

/// Parse a "<target>=<value>" arg into the event's target fields.
/// Returns false if `arg` is not a target form.
bool parse_target(const std::string& arg, ChurnEvent& ev,
                  const std::string& event) {
  if (arg == "leader") {
    ev.target = ChurnTarget::kLeader;
    ev.a = 0;
    return true;
  }
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos) return false;
  const std::string key = arg.substr(0, eq);
  const std::string value = arg.substr(eq + 1);
  if (key == "link") {
    ev.target = ChurnTarget::kLink;
    std::size_t sep = value.find('>');
    ev.directed = sep != std::string::npos;
    if (!ev.directed) sep = value.find('-', 1);  // skip a leading sign
    if (sep == std::string::npos) {
      fail(event, "link target wants 'A-B' or 'A>B': '" + value + "'");
    }
    ev.a = parse_id(value.substr(0, sep), event, "link endpoint");
    ev.b = parse_id(value.substr(sep + 1), event, "link endpoint");
    if (ev.a == ev.b) fail(event, "link endpoints must differ");
    return true;
  }
  if (key == "replica") {
    ev.target = ChurnTarget::kReplica;
    ev.a = parse_id(value, event, "replica id");
    return true;
  }
  if (key == "region") {
    const std::size_t slash = value.find('/');
    if (slash == std::string::npos) {
      fail(event, "region target wants 'R/N' (region R of N): '" + value +
                      "'");
    }
    ev.target = ChurnTarget::kRegion;
    ev.region = parse_id(value.substr(0, slash), event, "region id");
    ev.regions = parse_id(value.substr(slash + 1), event, "region count");
    if (ev.regions < 1) fail(event, "region count must be >= 1");
    if (ev.region >= ev.regions) {
      fail(event, "region id " + value.substr(0, slash) +
                      " out of range for " + std::to_string(ev.regions) +
                      " regions");
    }
    return true;
  }
  if (key == "leader") {
    if (value == "follow") {
      ev.target = ChurnTarget::kLeaderFollow;
      ev.a = 0;
      return true;
    }
    ev.target = ChurnTarget::kLeader;
    ev.a = parse_id(value, event, "replica id");
    return true;
  }
  return false;
}

std::vector<std::vector<std::uint32_t>> parse_groups(
    const std::string& value, const std::string& event,
    const std::string& what) {
  std::vector<std::vector<std::uint32_t>> groups;
  for (const std::string& part : split(value, '|')) {
    std::vector<std::uint32_t> members;
    for (const std::string& id : split(part, '-')) {
      members.push_back(parse_id(id, event, what + " member"));
    }
    if (members.empty()) fail(event, "empty " + what + " group");
    groups.push_back(std::move(members));
  }
  if (groups.size() < 2) {
    fail(event, what + " needs at least two '|'-separated groups");
  }
  return groups;
}

ChurnEvent parse_event(const std::string& raw) {
  const std::string text = trim(raw);
  const std::vector<std::string> parts = split(text, ':');
  const std::string& head = parts[0];
  const std::size_t at = head.find('@');
  if (at == std::string::npos) {
    fail(text, "expected '<kind>@<time>'");
  }
  const std::string kind_name = head.substr(0, at);

  ChurnEvent ev;
  const std::string when = head.substr(at + 1);
  if (when == "timeout") {
    // Conditional trigger: fires at the first observed pacemaker timeout.
    // Must be recognized before parse_time_s, which demands an s/ms unit.
    ev.on_timeout = true;
    ev.at_s = 0;
  } else {
    ev.at_s = parse_time_s(when, text, "event time");
    if (ev.at_s < 0) fail(text, "event time must be >= 0");
  }

  bool have_target = false, have_delta = false, have_loss = false,
       have_for = false, have_lo = false, have_hi = false,
       have_replica = false, have_every = false;

  const auto parse_common = [&](const std::string& arg) {
    if (arg.empty()) fail(text, "empty argument");
    if (arg[0] == '+' || arg[0] == '-') {
      if (have_delta) fail(text, "duplicate delay delta");
      have_delta = true;
      ev.extra_ms = parse_time_ms(arg, text, "delay delta");
      return;
    }
    const std::size_t eq = arg.find('=');
    const std::string key =
        eq == std::string::npos ? arg : arg.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "loss") {
      if (have_loss) fail(text, "duplicate loss=");
      have_loss = true;
      ev.loss = parse_number(value, text, "loss probability");
      if (ev.loss < 0 || ev.loss >= 1) {
        fail(text, "loss probability must be in [0, 1)");
      }
    } else if (key == "for") {
      if (have_for) fail(text, "duplicate for=");
      have_for = true;
      ev.for_s = parse_time_s(value, text, "window length");
      if (ev.for_s <= 0) fail(text, "window length must be > 0");
    } else if (key == "lo") {
      if (have_lo) fail(text, "duplicate lo=");
      have_lo = true;
      ev.lo_ms = parse_time_ms(value, text, "fluctuation lower bound");
    } else if (key == "hi") {
      if (have_hi) fail(text, "duplicate hi=");
      have_hi = true;
      ev.hi_ms = parse_time_ms(value, text, "fluctuation upper bound");
    } else if (key == "every") {
      if (have_every) fail(text, "duplicate every=");
      have_every = true;
      ev.every_s = parse_time_s(value, text, "repeat period");
      if (ev.every_s <= 0) fail(text, "repeat period must be > 0");
    } else if (parse_target(arg, ev, text)) {
      if (have_target) fail(text, "duplicate target");
      have_target = true;
      have_replica = ev.target == ChurnTarget::kReplica;
    } else {
      fail(text, "unknown argument '" + arg + "'");
    }
  };

  if (kind_name == "degrade") {
    ev.kind = ChurnKind::kLinkDegrade;
    for (std::size_t i = 1; i < parts.size(); ++i) parse_common(parts[i]);
    // No target = every link (kAll), mirroring restore/burst — so any
    // engine-accepted event round-trips through the DSL.
    if (!have_delta) fail(text, "degrade needs a delay delta (e.g. '+40ms')");
    if (have_loss || have_for || have_lo || have_hi) {
      fail(text, "degrade takes only a target, a delay delta and every=");
    }
  } else if (kind_name == "restore") {
    ev.kind = ChurnKind::kLinkRestore;
    for (std::size_t i = 1; i < parts.size(); ++i) parse_common(parts[i]);
    if (have_delta || have_loss || have_for || have_lo || have_hi) {
      fail(text, "restore takes only an optional target");
    }
  } else if (kind_name == "partition") {
    ev.kind = ChurnKind::kPartitionStart;
    std::uint32_t of = 0;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const std::string& arg = parts[i];
      const std::size_t eq = arg.find('=');
      const std::string key =
          eq == std::string::npos ? arg : arg.substr(0, eq);
      const std::string value =
          eq == std::string::npos ? "" : arg.substr(eq + 1);
      if (key == "groups") {
        if (!ev.groups.empty()) fail(text, "duplicate groups");
        ev.groups = parse_groups(value, text, "replica");
      } else if (key == "regions") {
        if (!ev.groups.empty()) fail(text, "duplicate groups");
        ev.groups = parse_groups(value, text, "region");
        ev.regions = 1;  // marked region-form; patched by of= below
      } else if (key == "of") {
        of = parse_id(value, text, "region count");
      } else {
        fail(text, "unknown argument '" + arg + "'");
      }
    }
    if (ev.groups.empty()) {
      fail(text, "partition needs groups=… or regions=…:of=N");
    }
    if (ev.regions > 0) {  // region form
      if (of < 1) fail(text, "regions=… needs of=<region count>");
      ev.regions = of;
      for (const auto& group : ev.groups) {
        for (std::uint32_t r : group) {
          if (r >= ev.regions) {
            fail(text, "region id " + std::to_string(r) +
                           " out of range for " + std::to_string(ev.regions) +
                           " regions");
          }
        }
      }
    } else if (of != 0) {
      fail(text, "of= only applies to regions=… groups");
    }
  } else if (kind_name == "heal") {
    ev.kind = ChurnKind::kPartitionHeal;
    if (parts.size() > 1) fail(text, "heal takes no arguments");
  } else if (kind_name == "burst") {
    ev.kind = ChurnKind::kLossBurst;
    for (std::size_t i = 1; i < parts.size(); ++i) parse_common(parts[i]);
    if (!have_loss) fail(text, "burst needs loss=<probability>");
    if (!have_for) fail(text, "burst needs for=<duration>");
    if (have_delta || have_lo || have_hi) {
      fail(text, "burst takes a target, loss=, for= and every= only");
    }
    if (ev.target == ChurnTarget::kLeaderFollow) {
      fail(text, "leader=follow is only valid on degrade/restore");
    }
  } else if (kind_name == "fluct") {
    ev.kind = ChurnKind::kFluctuation;
    for (std::size_t i = 1; i < parts.size(); ++i) parse_common(parts[i]);
    // All three window parameters are mandatory: the old FaultPlan
    // silently ignored a half-specified fluctuation window, which is
    // exactly the bug this parser refuses to reproduce.
    if (!have_for || !have_lo || !have_hi) {
      fail(text, "fluct needs all of for=, lo= and hi= (half-specified "
                 "windows are rejected, not ignored)");
    }
    if (have_target || have_delta || have_loss) {
      fail(text, "fluct takes for=, lo= and hi= only");
    }
    if (ev.lo_ms < 0 || ev.hi_ms < ev.lo_ms) {
      fail(text, "fluctuation bounds want 0 <= lo <= hi");
    }
  } else if (kind_name == "crash" || kind_name == "silence" ||
             kind_name == "crash-restart") {
    ev.kind = kind_name == "crash"
                  ? ChurnKind::kCrash
                  : kind_name == "silence" ? ChurnKind::kSilence
                                           : ChurnKind::kCrashRestart;
    for (std::size_t i = 1; i < parts.size(); ++i) parse_common(parts[i]);
    if (!have_replica) fail(text, kind_name + " needs replica=<id>");
    if (ev.kind == ChurnKind::kCrashRestart) {
      if (have_delta || have_loss || have_lo || have_hi || have_every) {
        fail(text, "crash-restart takes replica=<id> and an optional "
                   "for=<downtime> only");
      }
    } else if (have_delta || have_loss || have_for || have_lo || have_hi ||
               have_every) {
      fail(text, kind_name + " takes only replica=<id>");
    }
  } else {
    fail(text, "unknown event kind '" + kind_name + "'");
  }
  if (ev.on_timeout && ev.kind != ChurnKind::kLinkDegrade &&
      ev.kind != ChurnKind::kCrash && ev.kind != ChurnKind::kCrashRestart) {
    fail(text, "@timeout is only valid on degrade, crash and crash-restart");
  }
  if (ev.on_timeout && ev.every_s > 0) {
    fail(text, "@timeout events are one-shot: every= is not allowed");
  }
  return ev;
}

/// Shortest decimal that round-trips the double exactly (std::to_chars):
/// "0.3" stays "0.3" in the canonical DSL, not "0.29999999999999999",
/// while parse_churn(format_churn(s)) == s still holds bit-for-bit.
std::string num(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc() ? std::string(buf, ptr) : std::to_string(v);
}

std::string format_target(const ChurnEvent& ev) {
  switch (ev.target) {
    case ChurnTarget::kAll:
      return "";
    case ChurnTarget::kLink:
      return ":link=" + std::to_string(ev.a) + (ev.directed ? ">" : "-") +
             std::to_string(ev.b);
    case ChurnTarget::kReplica:
      return ":replica=" + std::to_string(ev.a);
    case ChurnTarget::kRegion:
      return ":region=" + std::to_string(ev.region) + "/" +
             std::to_string(ev.regions);
    case ChurnTarget::kLeader:
      return ":leader=" + std::to_string(ev.a);
    case ChurnTarget::kLeaderFollow:
      return ":leader=follow";
  }
  return "";
}

std::string format_event(const ChurnEvent& ev) {
  std::string out = churn_kind_name(ev.kind);
  out += ev.on_timeout ? "@timeout" : "@" + num(ev.at_s) + "s";
  switch (ev.kind) {
    case ChurnKind::kLinkDegrade:
      out += format_target(ev);
      out += ":" + std::string(ev.extra_ms < 0 ? "" : "+") +
             num(ev.extra_ms) + "ms";
      break;
    case ChurnKind::kLinkRestore:
      out += format_target(ev);
      break;
    case ChurnKind::kPartitionStart: {
      out += ev.regions > 0 ? ":regions=" : ":groups=";
      for (std::size_t g = 0; g < ev.groups.size(); ++g) {
        if (g) out += '|';
        for (std::size_t m = 0; m < ev.groups[g].size(); ++m) {
          if (m) out += '-';
          out += std::to_string(ev.groups[g][m]);
        }
      }
      if (ev.regions > 0) out += ":of=" + std::to_string(ev.regions);
      break;
    }
    case ChurnKind::kPartitionHeal:
      break;
    case ChurnKind::kLossBurst:
      out += format_target(ev);
      out += ":loss=" + num(ev.loss) + ":for=" + num(ev.for_s) + "s";
      break;
    case ChurnKind::kFluctuation:
      out += ":for=" + num(ev.for_s) + "s:lo=" + num(ev.lo_ms) +
             "ms:hi=" + num(ev.hi_ms) + "ms";
      break;
    case ChurnKind::kCrash:
    case ChurnKind::kSilence:
      out += ":replica=" + std::to_string(ev.a);
      break;
    case ChurnKind::kCrashRestart:
      out += ":replica=" + std::to_string(ev.a);
      if (ev.for_s > 0) out += ":for=" + num(ev.for_s) + "s";
      break;
  }
  if (ev.every_s > 0) out += ":every=" + num(ev.every_s) + "s";
  return out;
}

}  // namespace

ChurnSchedule parse_churn(const std::string& dsl) {
  ChurnSchedule schedule;
  if (trim(dsl).empty()) return schedule;
  for (const std::string& part : split(dsl, ';')) {
    if (trim(part).empty()) {
      throw std::invalid_argument("churn schedule has an empty event "
                                  "(stray ';'): '" + dsl + "'");
    }
    schedule.push_back(parse_event(part));
  }
  return schedule;
}

std::string format_churn(const ChurnSchedule& schedule) {
  std::string out;
  for (const ChurnEvent& ev : schedule) {
    if (!out.empty()) out += ';';
    out += format_event(ev);
  }
  return out;
}

std::string canonical_churn(const std::string& dsl) {
  return format_churn(parse_churn(dsl));
}

}  // namespace bamboo::core
