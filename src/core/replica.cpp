#include "core/replica.h"

#include <algorithm>

#include "util/logging.h"

namespace bamboo::core {

using types::BlockPtr;
using types::MessagePtr;
using types::NodeId;
using types::View;

Replica::Replica(sim::Simulator& simulator, net::SimNetwork& network,
                 const crypto::KeyStore& keys, const Config& config,
                 NodeId id, std::unique_ptr<SafetyProtocol> safety,
                 const election::LeaderElection& election, Hooks hooks)
    : sim_(simulator),
      net_(network),
      keys_(keys),
      cfg_(config),
      id_(id),
      safety_(std::move(safety)),
      election_(election),
      hooks_(std::move(hooks)),
      strategy_(config.is_byzantine(id) ? parse_strategy(config.strategy)
                                        : ByzStrategy::kHonest),
      mempool_(config.memsize, mempool::parse_admission(config.admission)),
      votes_(config.n_replicas),
      timeouts_(config.n_replicas),
      cert_verifier_(keys, config.n_replicas),
      pacemaker_(
          simulator,
          pacemaker::Pacemaker::Settings{config.timeout,
                                         config.timeout_backoff,
                                         config.max_timeout,
                                         election.width()},
          pacemaker::Pacemaker::Callbacks{
              [this](View v) { broadcast_timeout(v); },
              [this](View v, pacemaker::AdvanceReason r) {
                enter_view(v, r);
              },
              [this](View v, types::Slot s) { on_slot_stuck(v, s); }}),
      syncer_(simulator, forest_,
              sync::Syncer::Settings{config.sync_batch, config.sync_timeout,
                                     config.sync_retries, config.sync_pipeline,
                                     config.snapshot_gap,
                                     config.snapshot_chunk},
              id, config.n_replicas,
              sync::Syncer::Hooks{
                  [this](types::NodeId to, types::MessagePtr msg) {
                    net_.send(id_, to, std::move(msg));
                  },
                  [this](const types::BlockPtr& block, types::NodeId from) {
                    return ingest_synced_block(block, from);
                  },
                  [this](const types::QuorumCert& qc) { return verify_qc(qc); },
                  [this](const types::BlockPtr& anchor,
                         const types::QuorumCert& qc,
                         const std::vector<crypto::Digest>& hashes) {
                    if (!forest_.install_snapshot(anchor, qc, hashes)) {
                      return false;
                    }
                    // Adopt the anchor certificate into protocol state: it is
                    // the freshest QC this replica knows, so processing it
                    // catches the pacemaker (and safety rules) up to the
                    // serving peer's view in one step.
                    if (store_) store_->append(anchor);
                    process_qc(qc, id_);
                    retry_pending_proposals();
                    return true;
                  }}) {
  verify_strategy_ = parse_verify_strategy(config.verify_strategy);
}

void Replica::start() {
  net_.set_handler(id_, [this](const net::Envelope& env) {
    handle_envelope(env);
  });
  if (strategy_ == ByzStrategy::kCrash) {
    crash();
    return;
  }
  pacemaker_.start(1);
}

void Replica::crash() {
  crashed_ = true;
  pacemaker_.stop();
  syncer_.stop();
  cpu_queue_.clear();
  net_.set_down(id_, true);
}

ProtocolContext Replica::context() {
  return ProtocolContext{id_, pacemaker_.current_view(), forest_, cfg_};
}

// --------------------------------------------------------------------------
// CPU queue
// --------------------------------------------------------------------------

void Replica::enqueue_cpu(sim::Duration cost, std::function<void()> fn) {
  if (crashed_) return;
  cpu_queue_.push_back(CpuWork{cost, std::move(fn)});
  cpu_dispatch();
}

void Replica::cpu_dispatch() {
  // Hand the head of the FIFO to every idle worker. With cpu_workers == 1
  // this is the legacy single-server queue, event-for-event: the service
  // charge lands at the same instant and completions dispatch the next item
  // only after the finished item's continuation ran (so work enqueued by
  // that continuation observes the worker still busy, as before).
  while (!crashed_ && !cpu_queue_.empty() &&
         cpu_busy_workers_ < cfg_.cpu_workers) {
    ++cpu_busy_workers_;
    CpuWork work = std::move(cpu_queue_.front());
    cpu_queue_.pop_front();
    stats_.cpu_busy += work.cost;
    sim_.schedule_after(work.cost, [this, fn = std::move(work.fn)] {
      if (crashed_) return;  // crash() already drained the queue
      fn();
      --cpu_busy_workers_;
      cpu_dispatch();
    });
  }
}

sim::Duration Replica::cert_cost(std::size_t k) const {
  if (k == 0) return 0;
  switch (verify_strategy_) {
    case VerifyStrategy::kEager:
    case VerifyStrategy::kAmortizedQc:
      return static_cast<sim::Duration>(k) * cfg_.cpu_verify_per_sig;
    case VerifyStrategy::kBatch:
      return cfg_.cpu_verify_batch_base +
             static_cast<sim::Duration>(k) * cfg_.cpu_verify_batch_per_sig;
  }
  return 0;
}

sim::Duration Replica::charge_qc(const types::QuorumCert& qc) {
  if (qc.is_genesis() || qc.sigs.empty()) return 0;
  if (verify_strategy_ == VerifyStrategy::kAmortizedQc &&
      !charged_qcs_[qc.view].insert(qc.block_hash).second) {
    return 0;  // this certificate was already paid for once
  }
  return cert_cost(qc.sigs.size());
}

sim::Duration Replica::charge_tc(const types::TimeoutCert& tc) {
  sim::Duration cost = charge_qc(tc.high_qc);
  if (tc.sigs.empty()) return cost;
  if (verify_strategy_ == VerifyStrategy::kAmortizedQc &&
      !charged_tcs_.insert(tc.view).second) {
    return cost;
  }
  return cost + cert_cost(tc.sigs.size());
}

sim::Duration Replica::cost_of(const types::Message& msg) {
  struct Visitor {
    Replica& self;
    const Config& cfg;
    sim::Duration operator()(const types::ClientRequestMsg&) const {
      return cfg.cpu_ingest_per_tx;
    }
    sim::Duration operator()(const types::ProposalMsg& p) const {
      const auto ntx =
          static_cast<sim::Duration>(p.block ? p.block->txns().size() : 0);
      // proposer signature + flat QC handling + per-tx validation, plus the
      // strategy-aware per-signature cost of the carried certificates
      sim::Duration cost = 2 * cfg.cpu_verify + ntx * cfg.cpu_validate_per_tx;
      if (p.block) cost += self.charge_qc(p.block->justify());
      if (p.tc) cost += self.charge_tc(*p.tc);
      return cost;
    }
    sim::Duration operator()(const types::VoteMsg&) const {
      return cfg.cpu_verify;
    }
    sim::Duration operator()(const types::TimeoutMsg& t) const {
      // timeout signature + the embedded high_qc's quorum of signatures
      return cfg.cpu_verify + self.charge_qc(t.high_qc);
    }
    sim::Duration operator()(const types::TcMsg& m) const {
      // a TC carries quorum signatures (and a high_qc), not one signature
      return cfg.cpu_verify + self.charge_tc(m.tc);
    }
    sim::Duration operator()(const types::ClientResponseMsg&) const {
      return sim::microseconds(1);
    }
    sim::Duration operator()(const types::ChainRequestMsg& r) const {
      // The serve cost scales with the range the responder may walk and
      // ship (capped like the server itself caps the batch); at the
      // legacy batch of 1 this is exactly the old flat request cost.
      const auto batch = static_cast<sim::Duration>(
          std::clamp<std::uint32_t>(r.batch, 1, sync::kMaxServeBatch));
      return batch * sim::microseconds(2);
    }
    sim::Duration operator()(const types::ChainResponseMsg& r) const {
      // One QC verification + per-tx validation per carried block (the
      // batch fast path pays CPU proportional to what it ships).
      sim::Duration cost = 0;
      for (const types::BlockPtr& b : r.blocks) {
        const auto ntx =
            static_cast<sim::Duration>(b ? b->txns().size() : 0);
        cost += cfg.cpu_verify + ntx * cfg.cpu_validate_per_tx;
        if (b) cost += self.charge_qc(b->justify());
      }
      return cost;
    }
    sim::Duration operator()(const types::QcMsg& m) const {
      // The carried quorum of signatures, under the strategy cost model.
      return cfg.cpu_verify + self.charge_qc(m.qc);
    }
    sim::Duration operator()(const types::SnapshotRequestMsg&) const {
      // Serving a snapshot scans the committed-hash chain to slice it into
      // chunks: a small flat charge plus a per-committed-block scan cost.
      return sim::microseconds(2) +
             static_cast<sim::Duration>(self.forest_.committed_height()) * 10;
    }
    sim::Duration operator()(const types::SnapshotChunkMsg& m) const {
      // Hashing the chunk's digest payload into the state root, plus — on
      // the final chunk — the anchor block's signature/QC verification.
      sim::Duration cost = static_cast<sim::Duration>(m.hashes.size()) * 50;
      if (m.anchor) {
        cost += cfg.cpu_verify + self.charge_qc(m.anchor_qc);
      }
      return cost;
    }
  };
  return std::visit(Visitor{*this, cfg_}, msg);
}

// --------------------------------------------------------------------------
// Certificate verification
// --------------------------------------------------------------------------

bool Replica::verify_qc(const types::QuorumCert& qc) {
  if (qc.is_genesis()) return true;  // valid by convention (check_qc agrees)
  // Memo: a byte-identical certificate that already passed needs no second
  // HMAC pass. Certificates are formed once and then echoed broadly
  // (Streamlet echoes, timeout storms attaching the same high-QC, sync
  // responses), so repeats dominate in exactly the runs that are slowest.
  // Only full equality hits — a forged look-alike never matches — and only
  // successes are memoized, so verdicts and counters are unchanged.
  std::vector<types::QuorumCert>& seen = verified_qcs_[qc.view];
  if (std::find(seen.begin(), seen.end(), qc) != seen.end()) {
    ++stats_.certs_verified;
    return true;
  }
  if (cert_verifier_.check_qc(qc) == quorum::CertCheck::kOk) {
    seen.push_back(qc);
    ++stats_.certs_verified;
    return true;
  }
  ++stats_.certs_rejected;
  return false;
}

bool Replica::verify_tc(const types::TimeoutCert& tc) {
  std::vector<types::TimeoutCert>& seen = verified_tcs_[tc.view];
  if (std::find(seen.begin(), seen.end(), tc) != seen.end()) {
    ++stats_.certs_verified;
    return true;
  }
  if (cert_verifier_.check_tc(tc) == quorum::CertCheck::kOk) {
    seen.push_back(tc);
    ++stats_.certs_verified;
    return true;
  }
  ++stats_.certs_rejected;
  return false;
}

// --------------------------------------------------------------------------
// Inbound path
// --------------------------------------------------------------------------

void Replica::handle_envelope(const net::Envelope& env) {
  if (crashed_ || !env.msg) return;
  ++stats_.msgs_handled;

  // Backpressure: overloaded replicas refuse new client work instead of
  // queueing unboundedly (TCP accept-queue analogue).
  if (std::holds_alternative<types::ClientRequestMsg>(*env.msg) &&
      cpu_queue_.size() + cpu_busy_workers_ >= cfg_.cpu_queue_limit) {
    const auto& req = std::get<types::ClientRequestMsg>(*env.msg);
    ++stats_.client_rejections;
    send_client_response(req.tx, /*rejected=*/true);
    return;
  }

  enqueue_cpu(cost_of(*env.msg), [this, env] { dispatch(env); });
}

void Replica::dispatch(const net::Envelope& env) {
  const types::Message& msg = *env.msg;
  if (std::holds_alternative<types::ClientRequestMsg>(msg)) {
    on_client_request(std::get<types::ClientRequestMsg>(msg));
  } else if (std::holds_alternative<types::ProposalMsg>(msg)) {
    if (safety_->echo_messages() &&
        std::get<types::ProposalMsg>(msg).block) {
      echo(env.msg, std::get<types::ProposalMsg>(msg).block->view(),
           std::get<types::ProposalMsg>(msg).block->hash());
    }
    on_proposal(std::get<types::ProposalMsg>(msg), env.from, false);
  } else if (std::holds_alternative<types::VoteMsg>(msg)) {
    const auto& vote = std::get<types::VoteMsg>(msg);
    if (safety_->echo_messages()) echo(env.msg, vote.view, vote.sig.tag);
    on_vote(vote, env.from);
  } else if (std::holds_alternative<types::TimeoutMsg>(msg)) {
    const auto& t = std::get<types::TimeoutMsg>(msg);
    if (safety_->echo_messages()) echo(env.msg, t.view, t.sig.tag);
    on_timeout_msg(t, env.from);
  } else if (std::holds_alternative<types::TcMsg>(msg)) {
    on_tc_msg(std::get<types::TcMsg>(msg), env.from);
  } else if (std::holds_alternative<types::ChainRequestMsg>(msg)) {
    syncer_.on_request(std::get<types::ChainRequestMsg>(msg), env.from);
  } else if (std::holds_alternative<types::ChainResponseMsg>(msg)) {
    syncer_.on_response(std::get<types::ChainResponseMsg>(msg), env.from);
  } else if (std::holds_alternative<types::SnapshotRequestMsg>(msg)) {
    syncer_.on_snapshot_request(std::get<types::SnapshotRequestMsg>(msg),
                                env.from);
  } else if (std::holds_alternative<types::SnapshotChunkMsg>(msg)) {
    syncer_.on_snapshot_chunk(std::get<types::SnapshotChunkMsg>(msg),
                              env.from);
  } else if (std::holds_alternative<types::QcMsg>(msg)) {
    on_qc_msg(std::get<types::QcMsg>(msg), env.from);
  }
}

void Replica::on_qc_msg(const types::QcMsg& m, NodeId from) {
  // A broadcast certificate from a slot leader: full ingress verification
  // before any state transition, like every other certificate path.
  if (m.qc.is_genesis() || !verify_qc(m.qc)) return;
  note_public_qc(m.qc);
  process_qc(m.qc, from);
}

void Replica::echo(const MessagePtr& msg, View view,
                   const crypto::Digest& dedup_key) {
  auto& seen = echo_seen_[view];
  if (!seen.insert(dedup_key).second) return;
  // Forward once to every other replica (Streamlet's O(n^3) pattern). The
  // forward itself is cheap on CPU; the cost is NIC bytes, which the
  // network model charges in full.
  net_.broadcast(id_, cfg_.n_replicas, msg);
}

void Replica::on_client_request(const types::ClientRequestMsg& req) {
  if (!mempool_.add_new(req.tx)) {
    ++stats_.client_rejections;
    send_client_response(req.tx, /*rejected=*/true);
  }
}

void Replica::send_client_response(const types::Transaction& tx,
                                   bool rejected) {
  types::ClientResponseMsg resp;
  resp.tx_id = tx.id;
  resp.session = tx.session;
  resp.submitted_at = tx.submitted_at;
  resp.rejected = rejected;
  // Under the backoff admission policy, rejections carry the server's
  // retry-after hint; acceptances and the drop policy leave it at 0.
  if (rejected) resp.backoff_ms = mempool_.admission().backoff_ms;
  net_.send(id_, tx.client_endpoint,
            types::make_message(std::move(resp)));
}

// --------------------------------------------------------------------------
// Proposals and voting
// --------------------------------------------------------------------------

void Replica::on_proposal(const types::ProposalMsg& p, NodeId from,
                          bool self) {
  if (!p.block) return;
  const BlockPtr& block = p.block;

  if (!self) {
    // Authenticity + leadership checks, per slot: single-leader elections
    // only ever see slot 0, where slot_leader degenerates to leader().
    if (block->slot() >= election_.width() ||
        p.sig.signer != block->proposer() ||
        block->proposer() !=
            election_.slot_leader(block->view(), block->slot()) ||
        !keys_.verify(p.sig, block->hash())) {
      return;
    }
    // Certificate verification: the justify QC and any piggybacked TC must
    // check out before any of their state transitions run — a forged
    // certificate must not advance the pacemaker, enter the forest, or
    // earn a vote.
    if (!verify_qc(block->justify())) return;
    if (p.tc && !verify_tc(*p.tc)) return;
  }

  if (p.tc) handle_tc(*p.tc);
  if (!self) note_public_qc(block->justify());
  process_qc(block->justify(), from);

  const forest::AddResult result = forest_.add(block);
  switch (result) {
    case forest::AddResult::kAdded: {
      ++stats_.blocks_received;
      // A QC may have arrived before the block (votes travel fast under
      // broadcast); apply it now that the block is connected.
      if (const types::QuorumCert* qc = forest_.qc_for(block->hash());
          qc != nullptr && !qc->is_genesis()) {
        apply_qc(*qc);
      }
      maybe_vote(p);
      // Multi-leader pipelining: if we lead the NEXT slot of this view, we
      // extend this block optimistically (before its QC forms) — one
      // network hop per slot block instead of two.
      if (election_.width() > 1) maybe_propose_slot(block);
      retry_pending_proposals();
      break;
    }
    case forest::AddResult::kOrphaned:
      pending_proposals_.emplace(block->hash(), p);
      request_block(block->parent_hash(), from);
      break;
    case forest::AddResult::kDuplicate:
    case forest::AddResult::kInvalid:
      break;
  }
}

void Replica::retry_pending_proposals() {
  // Orphans connected by the forest may now be votable.
  if (pending_proposals_.empty()) return;
  std::vector<crypto::Digest> ready;
  for (const auto& [hash, proposal] : pending_proposals_) {
    if (forest_.contains(hash)) ready.push_back(hash);
  }
  for (const crypto::Digest& hash : ready) {
    const auto it = pending_proposals_.find(hash);
    if (it == pending_proposals_.end()) continue;
    types::ProposalMsg p = it->second;
    pending_proposals_.erase(it);
    ++stats_.blocks_received;
    if (const types::QuorumCert* qc = forest_.qc_for(hash);
        qc != nullptr && !qc->is_genesis()) {
      apply_qc(*qc);
    }
    maybe_vote(p);
  }
}

void Replica::maybe_vote(const types::ProposalMsg& p) {
  if (crashed_) return;
  const BlockPtr& block = p.block;
  // Stale proposals are never votable. Proposals *ahead* of our pacemaker
  // are: the paper's voting rule gates only on lastVotedView and the lock
  // (§II-B), and the Fig. 5 forking attack depends on it — the attacker
  // holds the only QC that would advance honest pacemakers, so honest
  // replicas necessarily vote from the previous view.
  if (block->view() < pacemaker_.current_view()) return;

  const ProtocolContext ctx = context();
  if (!safety_->should_vote(p, ctx)) return;
  safety_->did_vote(*block);
  if (safety_->multi_leader() &&
      (!slot_voted_tip_ || block->view() > slot_voted_tip_->view() ||
       (block->view() == slot_voted_tip_->view() &&
        block->slot() > slot_voted_tip_->slot()))) {
    slot_voted_tip_ = block;
  }

  types::VoteMsg vote;
  vote.view = block->view();
  vote.height = block->height();
  vote.slot = block->slot();
  vote.block_hash = block->hash();
  // Multi-leader protocols route each vote to the voted block's own
  // proposer (every slot leader aggregates the QCs for its own blocks).
  const NodeId collector = safety_->multi_leader()
                               ? block->proposer()
                               : election_.leader(vote.view + 1);

  enqueue_cpu(cfg_.cpu_sign, [this, vote, collector]() mutable {
    vote.sig = keys_.sign(id_, types::vote_digest(vote.view, vote.block_hash));
    ++stats_.votes_sent;
    if (safety_->broadcast_votes()) {
      const MessagePtr msg = types::make_message(vote);
      net_.broadcast(id_, cfg_.n_replicas, msg);
      on_vote(vote, id_);  // count our own vote
    } else {
      if (collector == id_) {
        on_vote(vote, id_);
      } else {
        net_.send(id_, collector, types::make_message(vote));
      }
    }
  });
}

void Replica::on_vote(const types::VoteMsg& v, NodeId from) {
  if (from != id_ &&
      !keys_.verify(v.sig, types::vote_digest(v.view, v.block_hash))) {
    return;
  }
  if (auto qc = votes_.add(v)) {
    // Multi-leader: single-leader protocols disseminate a fresh QC inside
    // the next proposal, but a slot leader's successor may already have
    // proposed (optimistic chaining), so the collector broadcasts the QC
    // explicitly. Every recipient re-verifies it at ingress (on_qc_msg).
    if (safety_->multi_leader()) {
      net_.broadcast(id_, cfg_.n_replicas,
                     types::make_message(types::QcMsg{*qc}));
    }
    // Forming the certificate from n-f verified votes costs real CPU under
    // the strategy cost model; charge it before the QC's transitions run.
    // Zero cost (the default) keeps the legacy inline path event-for-event.
    if (const sim::Duration cost = charge_qc(*qc); cost > 0) {
      enqueue_cpu(cost, [this, qc = std::move(*qc), from] {
        process_qc(qc, from);
      });
    } else {
      process_qc(*qc, from);
    }
  }
}

// --------------------------------------------------------------------------
// QCs, state updates, commits
// --------------------------------------------------------------------------

void Replica::process_qc(const types::QuorumCert& qc, NodeId from) {
  if (qc.is_genesis()) return;
  const bool fresh = forest_.add_qc(qc);
  // Advance the view before running the commit rule: a QC for view v is
  // what carries us into view v+1, and commits it unlocks are observed
  // *during* that view (this ordering is what makes measured block
  // intervals start at 3 for HotStuff and 2 for 2CHS, as in Fig. 13).
  // Multi-leader: only the FINAL slot's QC ends the view; a mid-view QC
  // resets that slot's timer (and catches a lagging replica up into the
  // view) without advancing past it. Width-1 elections always take the
  // first branch (slot 0 is the final slot), byte-identical to before.
  if (qc.slot + 1 >= election_.width()) {
    pacemaker_.on_qc(qc.view);
  } else {
    pacemaker_.on_slot_qc(qc.view, qc.slot);
  }
  if (forest_.contains(qc.block_hash)) {
    if (fresh) apply_qc(qc);
  } else {
    request_block(qc.block_hash, from);
  }
}

void Replica::apply_qc(const types::QuorumCert& qc) {
  const ProtocolContext ctx = context();
  safety_->update_state(qc, ctx);
  if (const auto target = safety_->commit_target(qc, ctx)) {
    do_commit(*target);
  }
}

void Replica::do_commit(const crypto::Digest& target) {
  auto chain = forest_.commit(target);
  if (!chain) {
    // The protocol asked to commit a block that conflicts with the main
    // chain: a safety violation (never happens for the shipped protocols;
    // counted so tests and the protocol_designer example can observe it).
    ++stats_.safety_violations;
    return;
  }
  for (const BlockPtr& block : *chain) {
    ++stats_.blocks_committed;
    // Durable ledger: commit order IS append order, so the store doubles as
    // a write-ahead commit log for crash-restart recovery. The simulated
    // write stall (0 by default) occupies a CPU worker like any other work.
    if (store_ && !block->is_genesis()) {
      store_->append(block);
      if (cfg_.store_append_latency > 0) {
        enqueue_cpu(cfg_.store_append_latency, [] {});
      }
    }
    if (hooks_.on_commit_block) {
      hooks_.on_commit_block(block, pacemaker_.current_view(), sim_.now());
    }
    for (const types::Transaction& tx : block->txns()) {
      if (tx.serving_replica != id_) continue;
      mempool_.mark_committed(tx.id);
      ++stats_.txs_committed;
      send_client_response(tx, /*rejected=*/false);
      if (hooks_.on_tx_committed) hooks_.on_tx_committed(tx, sim_.now());
    }
  }
  if (chain->empty()) return;

  // Garbage-collect forked-out branches; recycle our own transactions to
  // the front of the mempool (paper §III-E).
  const std::vector<BlockPtr> dropped = forest_.prune();
  for (const BlockPtr& block : dropped) {
    ++stats_.blocks_forked;
    if (block->proposer() != id_) continue;
    std::vector<types::Transaction> mine;
    mine.reserve(block->txns().size());
    for (const types::Transaction& tx : block->txns()) {
      if (tx.serving_replica == id_) mine.push_back(tx);
    }
    if (!mine.empty()) mempool_.recycle(mine);
  }

  // Retention pruning: cap the in-memory forest to the last `retention`
  // committed blocks; older bodies live only in the store (0 = keep all).
  if (cfg_.retention > 0 && forest_.committed_height() > cfg_.retention) {
    forest_.prune_below(forest_.committed_height() - cfg_.retention);
  }
}

void Replica::reload_from_store() {
  if (!store_ || store_->empty()) return;
  // Append-order replay: each record connects to the already-rebuilt prefix
  // unless the log has a snapshot hole (blocks after an installed anchor
  // whose gap bodies were never fetched) — those buffer as orphans and
  // reconnect via live sync once the gap closes again.
  BlockPtr best;
  store_->replay([this, &best](const BlockPtr& block) {
    if (!block || block->is_genesis()) return;
    if (forest_.add(block) != forest::AddResult::kAdded) return;
    // Each block's justify certifies its parent; restoring them makes the
    // rebuilt replica able to serve chain-sync (and snapshots) again.
    forest_.add_qc(block->justify());
    if (!best || block->height() > best->height()) best = block;
  });
  if (cfg_.store_read_latency > 0) {
    enqueue_cpu(
        static_cast<sim::Duration>(store_->size()) * cfg_.store_read_latency,
        [] {});
  }
  if (!best) return;
  // Commit the recovered prefix directly (no hooks / stats: the pre-crash
  // instance already counted these commits and answered their clients).
  forest_.commit(best->hash());
  if (const types::QuorumCert* qc = forest_.qc_for(best->hash())) {
    forest_.add_qc(*qc);
  }
  if (cfg_.retention > 0 && forest_.committed_height() > cfg_.retention) {
    forest_.prune_below(forest_.committed_height() - cfg_.retention);
  }
}

// --------------------------------------------------------------------------
// View changes
// --------------------------------------------------------------------------

void Replica::broadcast_timeout(View view) {
  if (crashed_) return;
  types::TimeoutMsg msg;
  msg.view = view;
  msg.high_qc = reported_high_qc();
  last_timeout_sent_ = std::max(last_timeout_sent_, view);

  enqueue_cpu(cfg_.cpu_sign, [this, msg]() mutable {
    msg.sig = keys_.sign(
        id_, types::timeout_digest(msg.view, msg.high_qc.view));
    const MessagePtr wire = types::make_message(msg);
    net_.broadcast(id_, cfg_.n_replicas, wire);
    on_timeout_msg(msg, id_);  // aggregate our own timeout
  });
}

types::QuorumCert Replica::reported_high_qc() const {
  const types::QuorumCert& hqc = forest_.high_qc();
  if (strategy_ == ByzStrategy::kHonest) return hqc;
  // Byzantine replicas under-report: they hide the newest QC (which they
  // may exclusively hold as the previous view's vote collector) by
  // advertising its parent's QC instead. Lying low is undetectable —
  // withholding cannot be proven — and is what makes the silence attack
  // overwrite the tail block (paper Fig. 6).
  const BlockPtr hqc_block = forest_.get(hqc.block_hash);
  if (!hqc_block || hqc_block->is_genesis()) return hqc;
  return hqc_block->justify();
}

void Replica::on_timeout_msg(const types::TimeoutMsg& t, NodeId from) {
  if (from != id_ &&
      !keys_.verify(t.sig, types::timeout_digest(t.view, t.high_qc.view))) {
    return;
  }
  // The embedded high_qc must verify before it advances anything — and
  // before the timeout counts toward a TC or the f+1 early join, since a
  // forged certificate invalidates the whole timeout message.
  if (from != id_ && !verify_qc(t.high_qc)) return;
  if (from != id_) note_public_qc(t.high_qc);
  process_qc(t.high_qc, from);

  if (auto tc = timeouts_.add(t)) {
    if (const sim::Duration cost = charge_tc(*tc); cost > 0) {
      enqueue_cpu(cost, [this, tc = std::move(*tc)] { handle_tc(tc); });
    } else {
      handle_tc(*tc);
    }
    return;
  }
  // Early join: if f+1 peers are timing out at or above our view, our own
  // timer is likely late — join the view change now.
  if (t.view >= pacemaker_.current_view() && t.view > last_timeout_sent_ &&
      timeouts_.count(t.view) > cfg_.f()) {
    pacemaker_.join_timeout(t.view);
  }
}

void Replica::handle_tc(const types::TimeoutCert& tc) {
  process_qc(tc.high_qc, id_ /*self: high_qc block requests go nowhere*/);
  if (!last_tc_ || tc.view > last_tc_->view) last_tc_ = tc;
  pacemaker_.on_tc(tc.view);
}

void Replica::on_tc_msg(const types::TcMsg& m, NodeId) {
  if (!verify_tc(m.tc)) return;
  handle_tc(m.tc);
}

void Replica::enter_view(View view, pacemaker::AdvanceReason reason) {
  if (hooks_.on_enter_view) hooks_.on_enter_view(view);
  // Garbage collection of per-view state.
  const View gc_horizon = view > 64 ? view - 64 : 0;
  votes_.gc_below(gc_horizon);
  timeouts_.gc_below(gc_horizon);
  echo_seen_.erase(echo_seen_.begin(), echo_seen_.lower_bound(gc_horizon));
  charged_qcs_.erase(charged_qcs_.begin(),
                     charged_qcs_.lower_bound(gc_horizon));
  charged_tcs_.erase(charged_tcs_.begin(),
                     charged_tcs_.lower_bound(gc_horizon));
  verified_qcs_.erase(verified_qcs_.begin(),
                      verified_qcs_.lower_bound(gc_horizon));
  verified_tcs_.erase(verified_tcs_.begin(),
                      verified_tcs_.lower_bound(gc_horizon));
  if (!pending_proposals_.empty()) {
    for (auto it = pending_proposals_.begin();
         it != pending_proposals_.end();) {
      it = (it->second.block->view() + 64 < view)
               ? pending_proposals_.erase(it)
               : std::next(it);
    }
  }
  try_propose(view, reason);
}

void Replica::try_propose(View view, pacemaker::AdvanceReason reason) {
  if (crashed_ || election_.leader(view) != id_) return;
  if (view <= last_proposed_view_) return;
  if (strategy_ == ByzStrategy::kSilence) return;  // the silence attack

  if (reason == pacemaker::AdvanceReason::kTimeoutCert &&
      cfg_.propose_wait_after_vc > 0) {
    // Non-responsive mode: wait Δ after a view change so that slow honest
    // replicas' high QCs reach us (paper §II-C; §VI-D "t100").
    sim_.schedule_after(cfg_.propose_wait_after_vc, [this, view] {
      if (!crashed_ && pacemaker_.current_view() == view &&
          view > last_proposed_view_) {
        do_propose(view);
      }
    });
    return;
  }
  do_propose(view);
}

void Replica::do_propose(View view) {
  const std::size_t batch =
      std::min<std::size_t>(cfg_.bsize, mempool_.size());
  const sim::Duration cost =
      cfg_.cpu_sign +
      static_cast<sim::Duration>(batch) * cfg_.cpu_validate_per_tx;

  enqueue_cpu(cost, [this, view] {
    if (crashed_ || pacemaker_.current_view() != view ||
        view <= last_proposed_view_) {
      return;  // the cluster moved on while we were queued
    }
    const auto plan = plan_with_attack(view);
    if (!plan) return;

    types::Block::Fields fields;
    fields.parent_hash = plan->parent->hash();
    fields.view = view;
    fields.height = plan->parent->height() + 1;
    fields.proposer = id_;
    fields.justify = plan->justify;
    fields.txns = mempool_.take(cfg_.bsize);

    auto block = std::make_shared<const types::Block>(std::move(fields));
    types::ProposalMsg p;
    p.block = block;
    if (last_tc_ && last_tc_->view + 1 == view) p.tc = *last_tc_;
    p.sig = keys_.sign(id_, block->hash());

    last_proposed_view_ = view;
    ++stats_.blocks_proposed;

    net_.broadcast(id_, cfg_.n_replicas, types::make_message(p));
    on_proposal(p, id_, /*self=*/true);
  });
}

void Replica::maybe_propose_slot(const BlockPtr& prev) {
  // Multi-leader pipelining: `prev` (the slot s block of its view) just
  // connected; if we lead slot s+1 of the same view, extend it now —
  // optimistically, without waiting for prev's QC.
  const View view = prev->view();
  const types::Slot next = prev->slot() + 1;
  if (next >= election_.width()) return;
  if (election_.slot_leader(view, next) != id_) return;
  if (crashed_ || view != pacemaker_.current_view()) return;
  if (view <= last_proposed_view_) return;
  if (strategy_ == ByzStrategy::kSilence) return;  // the silence attack
  do_propose_slot(view, next, prev);
}

void Replica::on_slot_stuck(View view, types::Slot stuck) {
  if (crashed_ || view != pacemaker_.current_view()) return;
  if (election_.width() <= 1) return;
  if (view <= last_proposed_view_) return;
  if (strategy_ == ByzStrategy::kSilence) return;
  // Only the immediate successor repairs the pipeline — later leaders
  // proposing concurrently would split the (view, slot)-monotone vote.
  const types::Slot mine = stuck + 1;
  if (mine >= election_.width()) return;
  if (election_.slot_leader(view, mine) != id_) return;
  // do_propose_slot picks the parent (our voted tip of this view, else
  // the certified tip) — exactly the skip-over-the-bad-slot rule.
  do_propose_slot(view, mine, nullptr);
}

void Replica::do_propose_slot(View view, types::Slot slot, BlockPtr prev) {
  const std::size_t batch =
      std::min<std::size_t>(cfg_.bsize, mempool_.size());
  const sim::Duration cost =
      cfg_.cpu_sign +
      static_cast<sim::Duration>(batch) * cfg_.cpu_validate_per_tx;

  enqueue_cpu(cost, [this, view, slot, prev] {
    if (crashed_ || pacemaker_.current_view() != view ||
        view <= last_proposed_view_) {
      return;  // the view moved on while we were queued
    }
    // An honest slot leader extends the last block it *voted for* in this
    // view, not blindly the slot s-1 block: if that block was an
    // equivocating fork the replica refused, the new block skips the bad
    // slot and chains the view's honest prefix instead. The slot gap is
    // safe — votes are (view, slot)-monotone and the commit rule
    // certifies whole prefixes — and it restores liveness: without the
    // skip a single forking slot leader poisons every later slot of the
    // view and the final-slot QC can never form. When nothing of this
    // view was votable at all, fall back to the certified tip the slot-0
    // proposal rule uses.
    BlockPtr parent = prev;
    if (slot_voted_tip_ && slot_voted_tip_->view() == view) {
      parent = slot_voted_tip_;
    } else if (BlockPtr certified = forest_.high_qc_block()) {
      parent = std::move(certified);
    }
    // The protocol owns the justification choice (FnF-BFT: the forest's
    // high QC — the freshest certificate this slot leader holds).
    types::QuorumCert justify = forest_.high_qc();
    if (const auto plan = safety_->plan_slot_proposal(view, slot, context())) {
      justify = plan->justify;
    }
    if (strategy_ != ByzStrategy::kHonest) {
      // Byzantine slot leaders run the same attack planner as slot-0
      // leaders (forking from the public high QC, forging the justify).
      const auto plan = plan_with_attack(view);
      if (!plan) return;
      parent = plan->parent;
      justify = plan->justify;
    }
    if (!parent || !forest_.contains(parent->hash())) return;

    types::Block::Fields fields;
    fields.parent_hash = parent->hash();
    fields.view = view;
    fields.height = parent->height() + 1;
    fields.slot = slot;
    fields.proposer = id_;
    fields.justify = justify;
    fields.txns = mempool_.take(cfg_.bsize);

    auto block = std::make_shared<const types::Block>(std::move(fields));
    types::ProposalMsg p;
    p.block = block;
    p.sig = keys_.sign(id_, block->hash());

    last_proposed_view_ = view;
    ++stats_.blocks_proposed;

    net_.broadcast(id_, cfg_.n_replicas, types::make_message(p));
    on_proposal(p, id_, /*self=*/true);
  });
}

void Replica::note_public_qc(const types::QuorumCert& qc) {
  if (qc.view > public_high_qc_.view) public_high_qc_ = qc;
}

std::optional<ProposalPlan> Replica::plan_with_attack(View view) {
  const ProtocolContext ctx = context();
  auto honest = safety_->plan_proposal(view, ctx);
  if (strategy_ == ByzStrategy::kForgeQc) {
    // Forged-certificate attack: propose on the honest parent, but justify
    // the block with a fabricated QC carrying quorum-many garbage tags —
    // the forgery certificate verification exists to stop. Honest replicas
    // must reject the proposal outright; the view then times out and the
    // next leader recovers. (At view 1 the honest justify is the genesis
    // QC, which carries no signatures — nothing to forge yet.)
    if (!honest || view < 2) return honest;
    types::QuorumCert forged;
    forged.view = view - 1;  // claim the freshest certificate possible
    forged.height = honest->parent->height();
    forged.block_hash = honest->parent->hash();
    forged.sigs.resize(cfg_.quorum());
    for (std::uint32_t i = 0; i < cfg_.quorum(); ++i) {
      forged.sigs[i].signer = i;
      forged.sigs[i].tag = forged.block_hash;  // not a valid HMAC tag
    }
    return ProposalPlan{honest->parent, forged};
  }
  if (strategy_ != ByzStrategy::kForking || safety_->fork_depth() == 0) {
    return honest;
  }
  // Forking attack (paper §IV-A1, Fig. 5): build on the head of the honest
  // replicas' locked chain instead of the tip. Honest locks derive from
  // *public* QCs only — the freshest QC is private to this attacker, who
  // gathered it as the previous view's vote collector — so the fork base
  // is fork_depth-1 ancestors below the public high-QC block: in Fig. 5
  // the attacker holds QC_3 privately, the public high QC certifies B2,
  // and B4 is proposed on B1 = parent(B2), overwriting B2 and B3.
  const BlockPtr public_tip = forest_.get(public_high_qc_.block_hash);
  if (!public_tip) return honest;
  const BlockPtr base =
      forest_.ancestor(public_tip, safety_->fork_depth() - 1);
  // Note: no check against this replica's own committed chain — a
  // Byzantine proposer happily forks blocks it has privately committed
  // (its withheld QC completes commit chains early). For the stock
  // protocols the base never lies below the attacker's committed tip
  // anyway; for weaker commit rules (examples/protocol_designer.cpp) the
  // fork is exactly what exposes their unsafety.
  if (!base) return honest;
  const types::QuorumCert* base_qc = forest_.qc_for(base->hash());
  if (base_qc == nullptr) return honest;
  return ProposalPlan{base, *base_qc};
}

// --------------------------------------------------------------------------
// Chain sync
// --------------------------------------------------------------------------

void Replica::request_block(const crypto::Digest& hash, NodeId from) {
  // The Syncer owns the fetch lifecycle: in-flight dedupe, the chain
  // locator (committed height + sync_batch), timeouts, and peer rotation.
  syncer_.request(hash, from);
}

forest::AddResult Replica::ingest_synced_block(const types::BlockPtr& block,
                                               NodeId from) {
  if (!block) return forest::AddResult::kInvalid;
  // Synced blocks come from arbitrary peers: the carried justify must
  // check out before the block can enter the forest.
  if (!verify_qc(block->justify())) return forest::AddResult::kInvalid;
  const forest::AddResult result = forest_.add(block);
  if (result == forest::AddResult::kAdded) {
    ++stats_.blocks_received;
    note_public_qc(block->justify());
    process_qc(block->justify(), from);
    if (const types::QuorumCert* qc = forest_.qc_for(block->hash());
        qc != nullptr && !qc->is_genesis()) {
      apply_qc(*qc);
    }
    retry_pending_proposals();
  }
  return result;
}

}  // namespace bamboo::core
