#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/config.h"
#include "forest/block_forest.h"
#include "types/block.h"
#include "types/messages.h"

namespace bamboo::core {

/// What a leader should build on (Proposing rule output).
struct ProposalPlan {
  types::BlockPtr parent;
  types::QuorumCert justify;
};

/// One proposal opportunity: single-leader protocols propose exactly once
/// per view (slot 0); multi-leader protocols give each of the view's W
/// slot leaders its own slot.
struct SlotRef {
  types::View view = 0;
  types::Slot slot = 0;

  friend bool operator==(const SlotRef&, const SlotRef&) = default;
  /// Lexicographic (view, slot) order — the multi-leader "newer than" used
  /// by voting rules.
  friend bool operator<(const SlotRef& a, const SlotRef& b) {
    return a.view != b.view ? a.view < b.view : a.slot < b.slot;
  }
};

/// Read-only view of replica state handed to the safety rules.
struct ProtocolContext {
  types::NodeId id;
  types::View current_view;
  forest::BlockForest& forest;
  const Config& config;
};

/// The paper's Safety module (§III-C): a chained-BFT protocol is fully
/// specified by its Proposing, Voting, State-Updating, and Commit rules.
/// Everything else (block forest, pacemaker, quorum, network, mempool) is
/// shared infrastructure provided by the Replica engine — which is what
/// makes cross-protocol comparisons apples-to-apples.
///
/// Implementations: protocols/hotstuff.h, protocols/twochain.h,
/// protocols/streamlet.h, protocols/fast_hotstuff.h. See
/// examples/protocol_designer.cpp for a walkthrough of writing a new one.
class SafetyProtocol {
 public:
  virtual ~SafetyProtocol() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Proposing rule: choose the parent block and justification for a
  /// proposal in `view`. Returns nullopt when the replica cannot propose
  /// (e.g. the high-QC block has not been synced yet).
  [[nodiscard]] virtual std::optional<ProposalPlan> plan_proposal(
      types::View view, const ProtocolContext& ctx) = 0;

  /// Multi-leader Proposing rule: the plan for one slot of `view`. The
  /// default forwards to the single-leader rule (slot 0 is the only slot
  /// a width-1 election ever asks for), so existing protocols need not
  /// know slots exist.
  [[nodiscard]] virtual std::optional<ProposalPlan> plan_slot_proposal(
      types::View view, types::Slot /*slot*/, const ProtocolContext& ctx) {
    return plan_proposal(view, ctx);
  }

  /// Voting rule: whether to vote for this proposal. Must be side-effect
  /// free; the engine calls did_vote() after it actually votes.
  [[nodiscard]] virtual bool should_vote(const types::ProposalMsg& proposal,
                                         const ProtocolContext& ctx) = 0;

  /// Record that the replica voted for `block` (updates lastVotedView etc.).
  virtual void did_vote(const types::Block& block) = 0;

  /// State-Updating rule: a QC certifying a block present in the forest was
  /// observed (locks move here).
  virtual void update_state(const types::QuorumCert& qc,
                            const ProtocolContext& ctx) = 0;

  /// Commit rule: given the newly observed QC, return the hash of the
  /// highest block that becomes committed (its whole prefix commits with
  /// it), or nullopt.
  [[nodiscard]] virtual std::optional<crypto::Digest> commit_target(
      const types::QuorumCert& qc, const ProtocolContext& ctx) = 0;

  // --- protocol shape switches -------------------------------------------

  /// Multi-leader protocols (FnF-BFT) run one proposer per slot and route
  /// votes to each block's own proposer; they require an election whose
  /// width() matches their expectations (validated at cluster start).
  [[nodiscard]] virtual bool multi_leader() const { return false; }

  /// Streamlet broadcasts votes; the HotStuff family sends them to the next
  /// leader.
  [[nodiscard]] virtual bool broadcast_votes() const { return false; }

  /// Streamlet echoes every first-seen message to all peers (the O(n^3)
  /// communication pattern).
  [[nodiscard]] virtual bool echo_messages() const { return false; }

  /// How many uncommitted tail blocks a forking attacker can overwrite
  /// while still passing honest voting rules (paper §IV-A1): HotStuff 2,
  /// two-chain HotStuff 1, Streamlet/Fast-HotStuff 0 (immune).
  [[nodiscard]] virtual std::uint32_t fork_depth() const = 0;

  /// Happy-path commit latency in chained views (block intervals start
  /// here under no attack): 3 for HotStuff, 2 for two-chain variants.
  [[nodiscard]] virtual std::uint32_t commit_chain_length() const = 0;

  // --- introspection (tests, metrics) ------------------------------------
  [[nodiscard]] virtual types::View locked_view() const = 0;
  [[nodiscard]] virtual types::View last_voted_view() const = 0;
};

}  // namespace bamboo::core
