#include "core/config.h"

#include <stdexcept>

#include "core/churn.h"
#include "mempool/mempool.h"

namespace bamboo::core {

ByzStrategy parse_strategy(const std::string& name) {
  if (name == "silence") return ByzStrategy::kSilence;
  if (name == "forking") return ByzStrategy::kForking;
  if (name == "crash") return ByzStrategy::kCrash;
  if (name == "forge-qc") return ByzStrategy::kForgeQc;
  if (name == "honest" || name.empty()) return ByzStrategy::kHonest;
  throw std::invalid_argument("unknown Byzantine strategy: " + name);
}

const char* strategy_name(ByzStrategy s) {
  switch (s) {
    case ByzStrategy::kHonest: return "honest";
    case ByzStrategy::kSilence: return "silence";
    case ByzStrategy::kForking: return "forking";
    case ByzStrategy::kCrash: return "crash";
    case ByzStrategy::kForgeQc: return "forge-qc";
  }
  return "?";
}

VerifyStrategy parse_verify_strategy(const std::string& name) {
  if (name == "eager" || name.empty()) return VerifyStrategy::kEager;
  if (name == "batch") return VerifyStrategy::kBatch;
  if (name == "amortized-qc") return VerifyStrategy::kAmortizedQc;
  throw std::invalid_argument("unknown verify strategy: " + name);
}

const char* verify_strategy_name(VerifyStrategy s) {
  switch (s) {
    case VerifyStrategy::kEager: return "eager";
    case VerifyStrategy::kBatch: return "batch";
    case VerifyStrategy::kAmortizedQc: return "amortized-qc";
  }
  return "?";
}

void Config::validate() const {
  if (n_replicas < 1) throw std::invalid_argument("n_replicas must be >= 1");
  if (byz_no > n_replicas)
    throw std::invalid_argument("byz_no exceeds n_replicas");
  if (bsize == 0) throw std::invalid_argument("bsize must be >= 1");
  if (memsize == 0) throw std::invalid_argument("memsize must be >= 1");
  if (bandwidth_bps <= 0)
    throw std::invalid_argument("bandwidth must be positive");
  if (timeout <= 0) throw std::invalid_argument("timeout must be positive");
  if (n_client_hosts == 0)
    throw std::invalid_argument("need at least one client host");
  if (link_loss < 0 || link_loss >= 1)
    throw std::invalid_argument("link_loss must be in [0, 1)");
  if (ge_p < 0 || ge_p >= 1 || ge_r < 0 || ge_r >= 1)
    throw std::invalid_argument("ge_p / ge_r must be in [0, 1)");
  if (ge_loss_good < 0 || ge_loss_good > 1 || ge_loss_bad < 0 ||
      ge_loss_bad > 1)
    throw std::invalid_argument("ge_loss_good / ge_loss_bad must be in [0, 1]");
  if (sync_batch == 0)
    throw std::invalid_argument("sync_batch must be >= 1");
  if (sync_timeout <= 0)
    throw std::invalid_argument("sync_timeout must be positive");
  if (sync_pipeline == 0)
    throw std::invalid_argument("sync_pipeline must be >= 1");
  if (snapshot_chunk < 32)
    throw std::invalid_argument(
        "snapshot_chunk must hold at least one 32-byte hash");
  if (store != "memory" && store != "file")
    throw std::invalid_argument("unknown block store kind: " + store);
  if (store_append_latency < 0 || store_read_latency < 0)
    throw std::invalid_argument("store latencies must be >= 0");
  (void)parse_strategy(strategy);  // throws on unknown strategy
  (void)parse_verify_strategy(verify_strategy);  // throws on unknown strategy
  if (cpu_workers == 0)
    throw std::invalid_argument("cpu_workers must be >= 1");
  if (cpu_verify_per_sig < 0 || cpu_verify_batch_base < 0 ||
      cpu_verify_batch_per_sig < 0)
    throw std::invalid_argument("certificate verify costs must be >= 0");
  // A churn schedule either parses completely or the experiment refuses to
  // start — the old FaultPlan silently ignored half-specified windows.
  (void)parse_churn(churn);  // throws std::invalid_argument with the event
  // Same contract for the mempool-overflow policy: half-specified
  // ("backoff" without a delay) or out-of-range specs refuse to start.
  (void)mempool::parse_admission(admission);
  // link_model / topology strings are validated where they are consumed
  // (net::parse_delay_family / net::make_topology at cluster construction).
}

Config Config::from_json(const util::Json& j) {
  Config c;
  c.n_replicas = static_cast<std::uint32_t>(j.get_int("n", c.n_replicas));
  c.election = j.get_string("election", c.election);
  // Table I compatibility: "master" 0 = rotating, otherwise a static leader.
  if (const util::Json* master = j.find("master");
      master != nullptr && master->is_number()) {
    const auto id = master->as_int();
    c.election = id == 0 ? "roundrobin" : "static:" + std::to_string(id);
  }
  c.strategy = j.get_string("strategy", c.strategy);
  c.byz_no = static_cast<std::uint32_t>(j.get_int("byzNo", c.byz_no));
  c.bsize = static_cast<std::uint32_t>(j.get_int("bsize", c.bsize));
  c.memsize = static_cast<std::uint32_t>(j.get_int("memsize", c.memsize));
  c.psize = static_cast<std::uint32_t>(j.get_int("psize", c.psize));
  c.delay = sim::from_milliseconds(j.get_number(
      "delay", sim::to_milliseconds(c.delay)));
  c.delay_jitter = sim::from_milliseconds(j.get_number(
      "delay_jitter", sim::to_milliseconds(c.delay_jitter)));
  c.timeout = sim::from_milliseconds(j.get_number(
      "timeout", sim::to_milliseconds(c.timeout)));
  c.runtime_s = j.get_number("runtime", c.runtime_s);
  c.concurrency =
      static_cast<std::uint32_t>(j.get_int("concurrency", c.concurrency));
  c.protocol = j.get_string("protocol", c.protocol);
  c.propose_wait_after_vc = sim::from_milliseconds(j.get_number(
      "propose_wait_ms", sim::to_milliseconds(c.propose_wait_after_vc)));
  c.timeout_backoff = j.get_number("timeout_backoff", c.timeout_backoff);
  c.seed = static_cast<std::uint64_t>(j.get_int("seed", static_cast<std::int64_t>(c.seed)));
  c.bandwidth_bps = j.get_number("bandwidth_bps", c.bandwidth_bps);
  c.link_model = j.get_string("link_model", c.link_model);
  c.link_shape = j.get_number("link_shape", c.link_shape);
  c.link_loss = j.get_number("link_loss", c.link_loss);
  c.topology = j.get_string("topology", c.topology);
  c.churn = j.get_string("churn", c.churn);
  c.ge_p = j.get_number("ge_p", c.ge_p);
  c.ge_r = j.get_number("ge_r", c.ge_r);
  c.ge_loss_good = j.get_number("ge_loss_good", c.ge_loss_good);
  c.ge_loss_bad = j.get_number("ge_loss_bad", c.ge_loss_bad);
  c.admission = j.get_string("admission", c.admission);
  c.sync_batch =
      static_cast<std::uint32_t>(j.get_int("sync_batch", c.sync_batch));
  c.sync_timeout = sim::from_milliseconds(j.get_number(
      "sync_timeout_ms", sim::to_milliseconds(c.sync_timeout)));
  c.sync_retries =
      static_cast<std::uint32_t>(j.get_int("sync_retries", c.sync_retries));
  c.sync_pipeline =
      static_cast<std::uint32_t>(j.get_int("sync_pipeline", c.sync_pipeline));
  c.snapshot_gap =
      static_cast<std::uint32_t>(j.get_int("snapshot_gap", c.snapshot_gap));
  c.snapshot_chunk =
      static_cast<std::uint32_t>(j.get_int("snapshot_chunk", c.snapshot_chunk));
  c.store = j.get_string("store", c.store);
  c.store_path = j.get_string("store_path", c.store_path);
  c.retention =
      static_cast<std::uint32_t>(j.get_int("retention", c.retention));
  c.store_append_latency = sim::microseconds(j.get_int(
      "store_append_us", c.store_append_latency / sim::kMicrosecond));
  c.store_read_latency = sim::microseconds(j.get_int(
      "store_read_us", c.store_read_latency / sim::kMicrosecond));
  c.rtt_mean = sim::from_milliseconds(
      j.get_number("rtt_ms", sim::to_milliseconds(c.rtt_mean)));
  c.rtt_stddev = sim::from_milliseconds(j.get_number(
      "rtt_stddev_ms", sim::to_milliseconds(c.rtt_stddev)));
  c.cpu_sign = sim::microseconds(j.get_int(
      "cpu_sign_us", c.cpu_sign / sim::kMicrosecond));
  c.cpu_verify = sim::microseconds(j.get_int(
      "cpu_verify_us", c.cpu_verify / sim::kMicrosecond));
  c.cpu_ingest_per_tx = sim::microseconds(j.get_int(
      "cpu_ingest_us", c.cpu_ingest_per_tx / sim::kMicrosecond));
  c.cpu_validate_per_tx = sim::microseconds(j.get_int(
      "cpu_validate_us", c.cpu_validate_per_tx / sim::kMicrosecond));
  c.verify_strategy = j.get_string("verify_strategy", c.verify_strategy);
  c.cpu_workers =
      static_cast<std::uint32_t>(j.get_int("cpu_workers", c.cpu_workers));
  c.cpu_verify_per_sig = sim::microseconds(j.get_int(
      "cpu_verify_per_sig_us", c.cpu_verify_per_sig / sim::kMicrosecond));
  c.cpu_verify_batch_base = sim::microseconds(j.get_int(
      "cpu_verify_batch_base_us",
      c.cpu_verify_batch_base / sim::kMicrosecond));
  c.cpu_verify_batch_per_sig = sim::microseconds(j.get_int(
      "cpu_verify_batch_per_sig_us",
      c.cpu_verify_batch_per_sig / sim::kMicrosecond));
  c.validate();
  return c;
}

util::Json Config::to_json() const {
  util::Json::Object o;
  o.emplace("n", util::Json(static_cast<std::int64_t>(n_replicas)));
  o.emplace("election", util::Json(election));
  o.emplace("strategy", util::Json(strategy));
  o.emplace("byzNo", util::Json(static_cast<std::int64_t>(byz_no)));
  o.emplace("bsize", util::Json(static_cast<std::int64_t>(bsize)));
  o.emplace("memsize", util::Json(static_cast<std::int64_t>(memsize)));
  o.emplace("psize", util::Json(static_cast<std::int64_t>(psize)));
  o.emplace("delay", util::Json(sim::to_milliseconds(delay)));
  o.emplace("timeout", util::Json(sim::to_milliseconds(timeout)));
  o.emplace("runtime", util::Json(runtime_s));
  o.emplace("concurrency", util::Json(static_cast<std::int64_t>(concurrency)));
  o.emplace("protocol", util::Json(protocol));
  o.emplace("seed", util::Json(static_cast<std::int64_t>(seed)));
  o.emplace("bandwidth_bps", util::Json(bandwidth_bps));
  o.emplace("link_model", util::Json(link_model));
  o.emplace("link_shape", util::Json(link_shape));
  o.emplace("link_loss", util::Json(link_loss));
  o.emplace("topology", util::Json(topology));
  o.emplace("churn", util::Json(churn));
  o.emplace("ge_p", util::Json(ge_p));
  o.emplace("ge_r", util::Json(ge_r));
  o.emplace("ge_loss_good", util::Json(ge_loss_good));
  o.emplace("ge_loss_bad", util::Json(ge_loss_bad));
  o.emplace("admission", util::Json(admission));
  o.emplace("sync_batch", util::Json(static_cast<std::int64_t>(sync_batch)));
  o.emplace("sync_timeout_ms",
            util::Json(sim::to_milliseconds(sync_timeout)));
  o.emplace("sync_retries",
            util::Json(static_cast<std::int64_t>(sync_retries)));
  o.emplace("sync_pipeline",
            util::Json(static_cast<std::int64_t>(sync_pipeline)));
  o.emplace("snapshot_gap",
            util::Json(static_cast<std::int64_t>(snapshot_gap)));
  o.emplace("snapshot_chunk",
            util::Json(static_cast<std::int64_t>(snapshot_chunk)));
  o.emplace("store", util::Json(store));
  o.emplace("retention", util::Json(static_cast<std::int64_t>(retention)));
  o.emplace("store_append_us",
            util::Json(store_append_latency / sim::kMicrosecond));
  o.emplace("store_read_us",
            util::Json(store_read_latency / sim::kMicrosecond));
  o.emplace("rtt_ms", util::Json(sim::to_milliseconds(rtt_mean)));
  o.emplace("verify_strategy", util::Json(verify_strategy));
  o.emplace("cpu_workers",
            util::Json(static_cast<std::int64_t>(cpu_workers)));
  o.emplace("cpu_verify_per_sig_us",
            util::Json(cpu_verify_per_sig / sim::kMicrosecond));
  o.emplace("cpu_verify_batch_base_us",
            util::Json(cpu_verify_batch_base / sim::kMicrosecond));
  o.emplace("cpu_verify_batch_per_sig_us",
            util::Json(cpu_verify_batch_per_sig / sim::kMicrosecond));
  return util::Json(std::move(o));
}

}  // namespace bamboo::core
