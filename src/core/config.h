#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"
#include "types/ids.h"
#include "util/json.h"

namespace bamboo::core {

/// Byzantine strategies (paper §IV-A). Both are implemented by modifying the
/// Proposing rule, exactly as in Bamboo; `kCrash` additionally drops all
/// traffic (used by the responsiveness study, §VI-D).
enum class ByzStrategy {
  kHonest,
  kSilence,  ///< stay silent when selected as leader (withholds the QC it
             ///< gathered as the previous view's vote collector)
  kForking,  ///< propose from the deepest ancestor honest replicas still
             ///< accept, overwriting uncommitted blocks
  kCrash,    ///< full fail-stop
  kForgeQc,  ///< propose with a fabricated QC (quorum-many garbage
             ///< signatures) — must be rejected by certificate verification
};

[[nodiscard]] ByzStrategy parse_strategy(const std::string& name);
[[nodiscard]] const char* strategy_name(ByzStrategy s);

/// How replicas charge (and verify) the k signatures inside a QC/TC
/// (quorum/cert_verifier.h + the Replica cost model).
enum class VerifyStrategy {
  kEager,        ///< k independent verifications: k * cpu_verify_per_sig
  kBatch,        ///< batch verification (batch-ECDSA / BLS aggregate):
                 ///< cpu_verify_batch_base + k * cpu_verify_batch_per_sig
  kAmortizedQc,  ///< eager cost, but each distinct certificate is charged
                 ///< only the first time this replica sees it
};

[[nodiscard]] VerifyStrategy parse_verify_strategy(const std::string& name);
[[nodiscard]] const char* verify_strategy_name(VerifyStrategy s);

/// One experiment's complete configuration: the paper's Table I parameters
/// plus the simulation-substrate parameters that replace the physical
/// testbed (see DESIGN.md §1 and §5).
struct Config {
  // --- Table I -----------------------------------------------------------
  std::uint32_t n_replicas = 4;   ///< "address": number of peers
  /// "master": 0 means rotating leaders; here expressed as an election spec
  /// ("roundrobin", "static:<id>", "hash").
  std::string election = "roundrobin";
  std::string strategy = "silence";  ///< Byzantine strategy for byz nodes
  std::uint32_t byz_no = 0;          ///< number of Byzantine nodes
  std::uint32_t bsize = 400;         ///< transactions per block
  /// "memsize": transactions held in the memory pool. Table I defaults to
  /// 1000; we default higher so the pool is not the bottleneck at the
  /// concurrency levels the paper sweeps to (documented in DESIGN.md).
  std::uint32_t memsize = 20000;
  std::uint32_t psize = 0;              ///< transaction payload bytes
  sim::Duration delay = 0;              ///< added one-way network delay
  sim::Duration delay_jitter = 0;       ///< stddev of the added delay
  sim::Duration timeout = sim::milliseconds(100);  ///< view timeout
  double runtime_s = 30.0;              ///< client run period (simulated)
  std::uint32_t concurrency = 10;       ///< closed-loop client sessions

  // --- protocol ----------------------------------------------------------
  std::string protocol = "hotstuff";  ///< hotstuff | 2chs | streamlet |
                                      ///< fasthotstuff | ohs
  /// Wait Δ after a timeout-driven view change before proposing
  /// (non-responsive mode; 0 = propose as soon as the TC forms).
  sim::Duration propose_wait_after_vc = 0;
  double timeout_backoff = 1.0;  ///< multiplier per consecutive timeout
  sim::Duration max_timeout = sim::seconds(10);

  // --- simulation substrate (model parameters, §V) ------------------------
  std::uint64_t seed = 1;
  double bandwidth_bps = 1e9;                         ///< NIC bandwidth b
  sim::Duration rtt_mean = sim::milliseconds(1);      ///< µ
  sim::Duration rtt_stddev = sim::microseconds(100);  ///< σ
  sim::Duration min_one_way_delay = sim::microseconds(20);

  // --- WAN scenario engine (net/link_model.h, net/topology.h) -------------
  // String-keyed + scalar so report provenance / CSV schemas stay flat.
  /// Per-link delay distribution family: "normal" (default; bit-compatible
  /// with the original transport), "uniform", "lognormal", "pareto".
  std::string link_model = "normal";
  /// Family shape parameter: lognormal log-σ / pareto tail index α /
  /// uniform half-width as a fraction of the mean. 0 = family default.
  double link_shape = 0;
  /// Independent per-message loss probability in [0, 1) on every link.
  double link_loss = 0;
  /// Named topology scenario generating the per-link matrix: "uniform",
  /// "wan:<regions>:<rtt_ms>[,...]", "slow-replica:<id>:<extra_ms>",
  /// "slow-leader:<extra_ms>[:<id>]" (see net/topology.h).
  std::string topology = "uniform";

  // --- network-churn engine (core/churn.h) --------------------------------
  /// Scheduled mid-run network churn, as the compact event DSL — e.g.
  /// "degrade@2s:link=0-3:+40ms;partition@4s:groups=0-1|2-3;heal@6s".
  /// Empty = no churn (bit-compatible with the pre-churn engine).
  /// validate() rejects any unparseable or half-specified schedule.
  std::string churn;
  /// Gilbert-Elliott two-state bursty-loss channel, per directed link,
  /// layered UNDER the independent Bernoulli `link_loss`. ge_p > 0 enables
  /// the channel; with it at 0 (default) no extra RNG is drawn and the
  /// schedule stays bit-compatible.
  double ge_p = 0;  ///< per-message P(good -> bad) transition, [0, 1)
  double ge_r = 0;  ///< per-message P(bad -> good) transition, [0, 1)
  double ge_loss_good = 0;  ///< per-message loss rate in the good state
  double ge_loss_bad = 1.0;  ///< per-message loss rate in the bad state

  // --- recovery & state sync (sync/syncer.h) ------------------------------
  /// Max certified blocks per ChainResponseMsg. 1 (default) keeps the
  /// legacy one-block-per-round semantics and wire sizes; larger values
  /// let lagging replicas fetch whole missed ranges in few round trips.
  std::uint32_t sync_batch = 1;
  /// Outstanding-fetch timer: an unanswered ChainRequestMsg is retried
  /// against the next peer after this long (loss cannot wedge recovery).
  sim::Duration sync_timeout = sim::milliseconds(500);
  /// Peer-rotating retries per fetch after the first attempt; the entry
  /// expires afterwards so a later trigger starts fresh.
  std::uint32_t sync_retries = 3;
  /// Max parallel in-flight range fetches the syncer issues against one
  /// known gap (proactive pipelined sync). 1 (default) keeps the legacy
  /// serial locator walk: one request, one response, one continuation.
  std::uint32_t sync_pipeline = 1;
  /// Catch-up gap (blocks) at or beyond which the syncer requests a
  /// snapshot instead of chain-syncing the whole range. 0 (default) =
  /// snapshot transfer disabled; every gap chain-syncs.
  std::uint32_t snapshot_gap = 0;
  /// Committed-hash payload bytes carried per SnapshotChunkMsg.
  std::uint32_t snapshot_chunk = 4096;

  // --- durable ledger (storage/block_store.h) -----------------------------
  /// Committed-block store backing each replica: "memory" (default; no
  /// file I/O, schedules bit-compatible with the pre-storage engine) or
  /// "file" (append log + index, one log per replica under store_path).
  std::string store = "memory";
  /// Directory for file-backed stores. Empty (default) = a per-cluster
  /// scratch directory under the system temp dir, removed on teardown.
  std::string store_path;
  /// Committed blocks kept in the in-memory forest behind the committed
  /// tip; older vertices are pruned to the store. 0 (default) = infinite
  /// retention, the legacy keep-everything behavior.
  std::uint32_t retention = 0;
  /// Simulated latency charged through the replica's CPU workers per
  /// store append / point read. 0 (default) models an async write-behind
  /// log that never stalls consensus — and adds no simulated events, so
  /// default schedules stay byte-identical.
  sim::Duration store_append_latency = 0;
  sim::Duration store_read_latency = 0;
  sim::Duration cpu_sign = sim::microseconds(50);     ///< secp256k1 sign
  sim::Duration cpu_verify = sim::microseconds(80);   ///< secp256k1 verify
  /// Per-transaction server-side request handling (HTTP parse, mempool
  /// insert, response write). Dominates t_CPU at large block sizes; the
  /// `ohs` profile lowers it (TCP pipelining in libhotstuff).
  sim::Duration cpu_ingest_per_tx = sim::microseconds(18);
  /// Per-transaction batching/validation cost inside proposals.
  sim::Duration cpu_validate_per_tx = sim::microseconds(1);
  /// Backpressure limit on a replica's CPU work queue; client requests
  /// beyond it are rejected (TCP accept-queue analogue).
  std::size_t cpu_queue_limit = 200000;

  // --- certificate-verification pipeline (quorum/cert_verifier.h) ---------
  /// Cost strategy for the k signatures inside a QC/TC: "eager", "batch",
  /// "amortized-qc". The default (eager with cpu_verify_per_sig = 0) adds a
  /// zero surcharge on top of the legacy flat cost_of charges, keeping
  /// pre-pipeline captures byte-identical.
  std::string verify_strategy = "eager";
  /// Simulated verify workers per replica serving the CPU queue. 1 keeps
  /// the legacy single-server FIFO semantics.
  std::uint32_t cpu_workers = 1;
  /// Eager / amortized-qc per-signature certificate verification cost.
  sim::Duration cpu_verify_per_sig = 0;
  /// Batch-verification cost model: base + k * per_sig per certificate.
  sim::Duration cpu_verify_batch_base = sim::microseconds(100);
  sim::Duration cpu_verify_batch_per_sig = sim::microseconds(2);

  // --- mempool admission control (mempool/mempool.h) ----------------------
  /// What a full mempool does with fresh client transactions — the overflow
  /// behavior, made explicit: "drop" (default; the legacy silent-reject
  /// semantics), "backoff:<ms>" (reject with a retry-after hint carried in
  /// the client response), "priority:<frac>" (reserve that fraction of
  /// memsize for recycled forked-out transactions). validate() rejects
  /// unknown or half-specified policies with the same strictness as the
  /// churn DSL.
  std::string admission = "drop";

  std::uint32_t n_client_hosts = 2;  ///< paper: "2 VMs as clients"

  // --- derived -----------------------------------------------------------
  [[nodiscard]] std::uint32_t f() const { return types::max_faulty(n_replicas); }
  [[nodiscard]] std::uint32_t quorum() const {
    return types::quorum_size(n_replicas);
  }
  /// Network endpoint ids: replicas [0, n), client hosts [n, n + hosts).
  [[nodiscard]] std::uint32_t num_endpoints() const {
    return n_replicas + n_client_hosts;
  }
  [[nodiscard]] types::NodeId client_endpoint(std::uint32_t session) const {
    return n_replicas + (session % n_client_hosts);
  }
  /// Replicas [n_replicas - byz_no, n_replicas) are Byzantine; replica 0 is
  /// always honest and serves as the metrics observer.
  [[nodiscard]] bool is_byzantine(types::NodeId id) const {
    return id < n_replicas && id >= n_replicas - byz_no && byz_no > 0;
  }

  /// Validate invariants (byz_no <= f is NOT required — the paper sweeps
  /// beyond f — but structural bounds are).
  void validate() const;

  /// Load overrides from a Bamboo-style JSON object; unknown keys ignored.
  static Config from_json(const util::Json& j);
  [[nodiscard]] util::Json to_json() const;
};

}  // namespace bamboo::core
