#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "core/config.h"
#include "core/safety.h"
#include "crypto/signer.h"
#include "election/leader_election.h"
#include "forest/block_forest.h"
#include "mempool/mempool.h"
#include "net/network.h"
#include "pacemaker/pacemaker.h"
#include "quorum/cert_verifier.h"
#include "quorum/vote_aggregator.h"
#include "sim/simulator.h"
#include "storage/block_store.h"
#include "sync/syncer.h"

namespace bamboo::core {

/// Counters exported by a replica (inputs to the paper's metrics: CGR, BI,
/// fork counts; plus engine health numbers asserted by tests).
struct ReplicaStats {
  std::uint64_t blocks_proposed = 0;
  std::uint64_t blocks_received = 0;  ///< connected into the forest
  std::uint64_t blocks_committed = 0;
  std::uint64_t blocks_forked = 0;  ///< pruned off the main chain
  std::uint64_t txs_committed = 0;  ///< txs this replica served & committed
  std::uint64_t votes_sent = 0;
  std::uint64_t msgs_handled = 0;
  std::uint64_t client_rejections = 0;
  std::uint64_t safety_violations = 0;  ///< commit target off the main chain
  std::uint64_t certs_verified = 0;  ///< received QCs/TCs that checked out
  std::uint64_t certs_rejected = 0;  ///< forged/malformed certificates dropped
  sim::Duration cpu_busy = 0;
};

/// The protocol-agnostic replica engine. It wires the shared modules —
/// block forest, mempool, pacemaker, vote/timeout aggregation, simulated
/// network and CPU — around a SafetyProtocol that supplies the four
/// protocol-specific rules. Byzantine strategies modify the Proposing rule
/// (and, for crash, drop all traffic), as in the paper.
///
/// CPU model: every inbound message and every signing action is serviced by
/// a FIFO queue drained by Config::cpu_workers simulated workers (1 by
/// default — the single-server queue of the paper's M/D/1 model) whose
/// service times come from Config (cpu_verify, cpu_sign, cpu_ingest_per_tx,
/// the strategy-aware certificate costs, ...). This is the t_CPU of the
/// paper's queuing model; together with the network's NIC queues it
/// produces the queuing behaviour the model predicts.
///
/// Certificate verification: every QC/TC received from another replica is
/// structurally validated and HMAC-checked (quorum/cert_verifier.h) before
/// any of its state transitions run; forgeries are dropped and counted in
/// ReplicaStats::certs_rejected.
class Replica {
 public:
  struct Hooks {
    /// A block was committed at this replica (once per block, ascending).
    std::function<void(const types::BlockPtr&, types::View commit_view,
                       sim::Time when)>
        on_commit_block;
    /// A transaction served by this replica committed.
    std::function<void(const types::Transaction&, sim::Time when)>
        on_tx_committed;
    /// This replica entered a view (before it proposes there). The churn
    /// engine's leader-follow target hangs off this.
    std::function<void(types::View)> on_enter_view;
  };

  Replica(sim::Simulator& simulator, net::SimNetwork& network,
          const crypto::KeyStore& keys, const Config& config,
          types::NodeId id, std::unique_ptr<SafetyProtocol> safety,
          const election::LeaderElection& election, Hooks hooks = {});

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Register the network handler and enter view 1.
  void start();

  /// Fail-stop this replica (responsiveness experiment). A crashed replica
  /// drops all traffic and fires no timers.
  void crash();

  /// Attach the durable block store committed blocks are appended to. The
  /// store outlives the replica (the Cluster owns it), which is what makes
  /// crash-restart recovery possible. Call before start().
  void set_store(storage::BlockStore* store) { store_ = store; }

  /// Crash-restart recovery: rebuild the committed chain from the attached
  /// store (append-order replay, then commit the deepest connected block).
  /// Blocks after a snapshot hole stay buffered as orphans and reconnect
  /// via live sync. Call after set_store() and before start().
  void reload_from_store();

  /// Switch the Byzantine strategy at runtime (the Fig. 15 experiment
  /// turns one replica silent mid-run). Not valid on a crashed replica.
  void set_strategy(ByzStrategy strategy) { strategy_ = strategy; }

  // --- accessors ----------------------------------------------------------
  [[nodiscard]] types::NodeId id() const { return id_; }
  [[nodiscard]] types::View current_view() const {
    return pacemaker_.current_view();
  }
  [[nodiscard]] const forest::BlockForest& forest() const { return forest_; }
  [[nodiscard]] mempool::Mempool& pool() { return mempool_; }
  [[nodiscard]] const mempool::Mempool& pool() const { return mempool_; }
  [[nodiscard]] const ReplicaStats& stats() const { return stats_; }
  [[nodiscard]] const SafetyProtocol& safety() const { return *safety_; }
  [[nodiscard]] const pacemaker::Pacemaker& pm() const { return pacemaker_; }
  [[nodiscard]] ByzStrategy strategy() const { return strategy_; }
  [[nodiscard]] bool is_byzantine() const {
    return strategy_ != ByzStrategy::kHonest;
  }
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] const sync::SyncStats& sync_stats() const {
    return syncer_.stats();
  }
  [[nodiscard]] const storage::BlockStore* store() const { return store_; }

 private:
  // --- CPU queue ----------------------------------------------------------
  struct CpuWork {
    sim::Duration cost;
    std::function<void()> fn;
  };
  void enqueue_cpu(sim::Duration cost, std::function<void()> fn);
  /// Hand queued work to idle verify workers (cpu_workers-server FIFO).
  void cpu_dispatch();
  [[nodiscard]] sim::Duration cost_of(const types::Message& msg);
  /// Strategy-aware simulated cost of verifying (or constructing) a
  /// k-signature certificate; the surcharge on top of the legacy flat
  /// charges. 0 under the default config (eager, cpu_verify_per_sig = 0).
  [[nodiscard]] sim::Duration cert_cost(std::size_t k) const;
  /// Per-certificate charge, honoring amortized-qc first-seen dedup.
  sim::Duration charge_qc(const types::QuorumCert& qc);
  sim::Duration charge_tc(const types::TimeoutCert& tc);

  // --- certificate verification -------------------------------------------
  /// Check a received certificate for real; counts the outcome and drops
  /// forgeries. Certificates this replica formed itself are trusted.
  bool verify_qc(const types::QuorumCert& qc);
  bool verify_tc(const types::TimeoutCert& tc);

  // --- inbound dispatch ----------------------------------------------------
  void handle_envelope(const net::Envelope& env);
  void dispatch(const net::Envelope& env);
  void on_client_request(const types::ClientRequestMsg& req);
  void on_proposal(const types::ProposalMsg& p, types::NodeId from,
                   bool self);
  void on_vote(const types::VoteMsg& v, types::NodeId from);
  /// Broadcast QC from a multi-leader slot collector (ingress-verified).
  void on_qc_msg(const types::QcMsg& m, types::NodeId from);
  /// Track the highest QC that travelled over the wire (i.e. is known to
  /// honest replicas) separately from QCs this replica formed itself as a
  /// vote collector — the distinction the forking attacker exploits.
  void note_public_qc(const types::QuorumCert& qc);
  void on_timeout_msg(const types::TimeoutMsg& t, types::NodeId from);
  void on_tc_msg(const types::TcMsg& m, types::NodeId from);
  /// Syncer ingestion hook: insert one fetched block and, when it
  /// connects, run the same QC/pending-proposal pipeline an inline block
  /// arrival runs.
  forest::AddResult ingest_synced_block(const types::BlockPtr& block,
                                        types::NodeId from);

  // --- consensus actions ---------------------------------------------------
  void enter_view(types::View view, pacemaker::AdvanceReason reason);
  void try_propose(types::View view, pacemaker::AdvanceReason reason);
  void do_propose(types::View view);
  /// Multi-leader chaining: called when a slot block connects; proposes
  /// the next slot of the same view if this replica leads it.
  void maybe_propose_slot(const types::BlockPtr& prev);
  /// Multi-leader pipeline repair: slot `stuck` has shown no certificate
  /// for half a timeout window (withheld, lost, or rejected at ingress —
  /// a forged-justify block never connects, so the connect-trigger chain
  /// breaks there). If this replica leads the immediate successor slot,
  /// propose over the stuck slot now.
  void on_slot_stuck(types::View view, types::Slot stuck);
  void do_propose_slot(types::View view, types::Slot slot,
                       types::BlockPtr prev);
  [[nodiscard]] std::optional<ProposalPlan> plan_with_attack(types::View view);
  void maybe_vote(const types::ProposalMsg& p);
  void process_qc(const types::QuorumCert& qc, types::NodeId from);
  void apply_qc(const types::QuorumCert& qc);
  void do_commit(const crypto::Digest& target);
  void broadcast_timeout(types::View view);
  void handle_tc(const types::TimeoutCert& tc);
  void request_block(const crypto::Digest& hash, types::NodeId from);
  void echo(const types::MessagePtr& msg, types::View view,
            const crypto::Digest& dedup_key);
  void retry_pending_proposals();
  void send_client_response(const types::Transaction& tx, bool rejected);
  [[nodiscard]] types::QuorumCert reported_high_qc() const;
  [[nodiscard]] ProtocolContext context();

  sim::Simulator& sim_;
  net::SimNetwork& net_;
  const crypto::KeyStore& keys_;
  const Config& cfg_;
  types::NodeId id_;
  std::unique_ptr<SafetyProtocol> safety_;
  const election::LeaderElection& election_;
  Hooks hooks_;
  ByzStrategy strategy_ = ByzStrategy::kHonest;

  storage::BlockStore* store_ = nullptr;  ///< owned by the Cluster
  forest::BlockForest forest_;
  mempool::Mempool mempool_;
  quorum::VoteAggregator votes_;
  quorum::TimeoutAggregator timeouts_;
  quorum::CertVerifier cert_verifier_;
  pacemaker::Pacemaker pacemaker_;
  sync::Syncer syncer_;

  // CPU
  std::deque<CpuWork> cpu_queue_;
  std::uint32_t cpu_busy_workers_ = 0;
  bool crashed_ = false;
  VerifyStrategy verify_strategy_ = VerifyStrategy::kEager;
  // amortized-qc: certificates already charged (first-seen dedup), keyed by
  // view for GC along the same 64-view horizon as the aggregators.
  std::map<types::View, std::unordered_set<crypto::Digest>> charged_qcs_;
  std::set<types::View> charged_tcs_;
  // Certificates that already passed full verification (byte-identical
  // matches skip the repeat HMAC pass; see verify_qc), same GC horizon.
  std::map<types::View, std::vector<types::QuorumCert>> verified_qcs_;
  std::map<types::View, std::vector<types::TimeoutCert>> verified_tcs_;

  // consensus bookkeeping
  types::View last_proposed_view_ = 0;
  types::View last_timeout_sent_ = 0;
  types::QuorumCert public_high_qc_;  ///< highest QC seen on the wire
  /// Multi-leader: the highest-(view, slot) block this replica voted for.
  /// An honest slot leader extends this tip, not blindly the previous
  /// slot's block — so one equivocating slot leader is skipped instead of
  /// dragging the rest of the view's slot chain onto an unvotable fork.
  types::BlockPtr slot_voted_tip_;
  std::optional<types::TimeoutCert> last_tc_;
  std::unordered_map<crypto::Digest, types::ProposalMsg> pending_proposals_;
  std::map<types::View, std::unordered_set<crypto::Digest>> echo_seen_;

  ReplicaStats stats_;
};

}  // namespace bamboo::core
