#pragma once

// The network-churn schedule: an ordered list of typed, timed events that
// the simulator executes mid-run — the generalization of the old
// two-event FaultPlan (one fluctuation window + one crash) into a full
// scenario language. Real WAN incidents are staged: individual links
// degrade on a schedule, loss arrives in bursts, regions partition and
// heal. Each stage is one ChurnEvent.
//
// Events are parsed from a compact string DSL carried in the flat
// core::Config::churn field (so schedules flow through provenance columns
// and shard merges untouched):
//
//   churn := event (';' event)*
//   event := kind '@' time (':' arg)*
//   time  := <number> 's' | <number> 'ms'        (simulated, from run start)
//
// Event kinds and their arguments:
//
//   degrade@T:[<target>:]+<delay> add one-way delay to the target's links
//                                 (delta form: "+40ms"; negative allowed;
//                                 no target = every link)
//   restore@T[:<target>]          reset the target's links (delay AND loss)
//                                 to their construction-time baseline;
//                                 no target = every link
//   partition@T:groups=0-1|2-3    split replicas into groups ('|' between
//                                 groups, '-' between members); messages
//                                 across groups are dropped. Unlisted
//                                 endpoints (client hosts) join the FIRST
//                                 group.
//   partition@T:regions=0|1-2:of=N  the same over round-robin region ids
//                                 (replica i is in region i % N)
//   heal@T                        clear the partition
//   burst@T:[<target>:]loss=P:for=D   set per-message Bernoulli loss P on
//                                 the target's links for duration D, then
//                                 restore the baseline loss
//   fluct@T:for=D:lo=L:hi=H       global fluctuation window: every message
//                                 gains extra one-way delay ~ Uniform[L, H]
//                                 for duration D (the paper's Fig. 15 knob)
//   crash@T:replica=I             fail-stop replica I
//   crash-restart@T:replica=I[:for=D]  fail-stop replica I, then after
//                                 downtime D (default 0s) rebuild it from
//                                 its durable BlockStore and restart it
//                                 (crash-recovery experiments)
//   silence@T:replica=I           replica I stops proposing (Fig. 15's
//                                 "silence attack (crash)")
//
// degrade, crash and crash-restart also accept the conditional trigger
// time '@timeout': the event fires at the FIRST pacemaker timeout
// observed anywhere in the cluster instead of at a wall-clock instant
// (checked on a fixed 5 ms cadence, so it stays deterministic). A
// conditional event is one-shot: combining '@timeout' with every= is
// rejected.
//
// degrade, restore, burst and fluct additionally accept every=<dur>: the
// event re-fires every <dur> of simulated time until the end of the run
// (flaky-link soak scenarios — pair a repeating degrade with a repeating
// restore half a period later). partition/heal/crash/silence reject it.
//
// Targets name a set of directed links:
//
//   link=A-B       both directions between endpoints A and B
//   link=A>B       the directed link A -> B only
//   replica=I      every link to AND from endpoint I
//   region=R/N     every link crossing the boundary of region R (replica
//                  i is in region i % N), both directions
//   leader[=I]     the OUTBOUND links of replica I (default 0) — the
//                  slow-leader role pinned to one replica
//   leader=follow  the OUTBOUND links of whoever currently leads: the
//                  degradation moves with the rotating leader via a
//                  view-entry hook (degrade/restore only; a restore with
//                  this target — or restore-all — stops the following)
//
// Parsing is strict: unknown kinds/args, half-specified windows (a fluct
// without lo, hi AND for; a burst without loss AND for), malformed times
// and out-of-range probabilities all throw std::invalid_argument — a
// schedule either parses completely or the run refuses to start
// (Config::validate()). Replica/endpoint ids are range-checked later, at
// install time, when the cluster size is known.
//
// format_churn() renders a schedule back into the canonical DSL (times in
// seconds, durations in "for=…s", delays in ms, shortest round-trip
// number formatting); parse_churn(format_churn(s)) == s for every valid
// schedule, which is what lets provenance carry schedules losslessly.

#include <cstdint>
#include <string>
#include <vector>

namespace bamboo::core {

enum class ChurnKind {
  kLinkDegrade,
  kLinkRestore,
  kPartitionStart,
  kPartitionHeal,
  kLossBurst,
  kFluctuation,
  kCrash,
  kCrashRestart,
  kSilence,
};

[[nodiscard]] const char* churn_kind_name(ChurnKind kind);

/// Which set of directed links an event applies to.
enum class ChurnTarget {
  kAll,      ///< every link (restore / burst default)
  kLink,     ///< endpoints a—b (directed ? a->b only : both directions)
  kReplica,  ///< every link touching endpoint a
  kRegion,   ///< links crossing region `region` of `regions` round-robin
  kLeader,   ///< outbound links of replica a (slow-leader role)
  kLeaderFollow,  ///< outbound links of the CURRENT leader, re-targeted
                  ///< as leadership rotates (degrade/restore only)
};

/// One scheduled churn event. A plain value: field-for-field comparable,
/// losslessly round-trippable through the DSL.
struct ChurnEvent {
  ChurnKind kind = ChurnKind::kLinkDegrade;
  double at_s = 0;  ///< simulated seconds from run start
  /// Conditional trigger ('@timeout'): fire at the first pacemaker
  /// timeout observed cluster-wide instead of at at_s (which is 0 then).
  /// Only degrade / crash / crash-restart support it.
  bool on_timeout = false;

  // --- link target (degrade / restore / burst) ---------------------------
  ChurnTarget target = ChurnTarget::kAll;
  std::uint32_t a = 0;      ///< link endpoint / replica id
  std::uint32_t b = 0;      ///< second link endpoint
  bool directed = false;    ///< link=A>B (one direction) vs link=A-B
  std::uint32_t region = 0;   ///< region id (target == kRegion)
  std::uint32_t regions = 0;  ///< region count (round-robin, i % regions)

  // --- per-kind parameters ----------------------------------------------
  double extra_ms = 0;  ///< degrade: one-way delay delta (may be negative)
  double loss = 0;      ///< burst: per-message loss probability [0, 1)
  double for_s = 0;  ///< burst / fluct: window length (s), > 0;
                     ///< crash-restart: downtime before the rebuild (>= 0)
  double lo_ms = 0;     ///< fluct: extra delay lower bound (one-way ms)
  double hi_ms = 0;     ///< fluct: extra delay upper bound (>= lo)
  /// degrade / restore / burst / fluct: re-fire period (s); 0 = one-shot.
  double every_s = 0;
  /// partition: replica (or region, when `regions` > 0) id groups.
  std::vector<std::vector<std::uint32_t>> groups;

  bool operator==(const ChurnEvent&) const = default;
};

using ChurnSchedule = std::vector<ChurnEvent>;

/// Parse the churn DSL. Empty input yields an empty schedule; anything
/// unparseable or half-specified throws std::invalid_argument with a
/// message naming the offending event.
[[nodiscard]] ChurnSchedule parse_churn(const std::string& dsl);

/// Render the canonical DSL string (parse_churn round-trips it exactly).
[[nodiscard]] std::string format_churn(const ChurnSchedule& schedule);

/// parse + format in one step: the canonical spelling of a user-written
/// schedule string (empty in, empty out). Provenance records this form.
[[nodiscard]] std::string canonical_churn(const std::string& dsl);

}  // namespace bamboo::core
