#include "mempool/mempool.h"

#include <cstdlib>
#include <stdexcept>

namespace bamboo::mempool {

namespace {

double parse_param(const std::string& spec, std::size_t colon,
                   const char* what) {
  const std::string value = spec.substr(colon + 1);
  char* stop = nullptr;
  const double v = std::strtod(value.c_str(), &stop);
  if (value.empty() || stop != value.c_str() + value.size()) {
    throw std::invalid_argument("admission '" + spec + "': bad " +
                                std::string(what) + " '" + value + "'");
  }
  return v;
}

}  // namespace

Admission parse_admission(const std::string& spec) {
  Admission a;
  if (spec.empty() || spec == "drop") return a;
  const std::size_t colon = spec.find(':');
  const std::string policy = spec.substr(0, colon);
  if (policy == "backoff") {
    if (colon == std::string::npos) {
      throw std::invalid_argument(
          "admission 'backoff' is half-specified: want backoff:<ms>");
    }
    a.policy = AdmissionPolicy::kBackoff;
    a.backoff_ms = parse_param(spec, colon, "delay (ms)");
    if (a.backoff_ms <= 0) {
      throw std::invalid_argument("admission '" + spec +
                                  "': delay must be > 0 ms");
    }
    return a;
  }
  if (policy == "priority") {
    if (colon == std::string::npos) {
      throw std::invalid_argument(
          "admission 'priority' is half-specified: want priority:<frac>");
    }
    a.policy = AdmissionPolicy::kPriority;
    a.reserve_frac = parse_param(spec, colon, "reserved fraction");
    if (a.reserve_frac <= 0 || a.reserve_frac >= 1) {
      throw std::invalid_argument("admission '" + spec +
                                  "': fraction must be in (0, 1)");
    }
    return a;
  }
  throw std::invalid_argument("unknown admission policy: " + spec);
}

const char* admission_policy_name(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kDrop: return "drop";
    case AdmissionPolicy::kBackoff: return "backoff";
    case AdmissionPolicy::kPriority: return "priority";
  }
  return "?";
}

bool Mempool::add_new(types::Transaction tx) {
  if (live_ + reserve_ >= capacity_ || present_.count(tx.id) > 0) {
    ++rejected_;
    return false;
  }
  present_.insert(tx.id);
  queue_.push_back(std::move(tx));
  ++live_;
  ++admitted_;
  return true;
}

std::size_t Mempool::recycle(const std::vector<types::Transaction>& txns) {
  // Insert at the front preserving order: walk the batch backwards and
  // push_front each element.
  std::size_t inserted = 0;
  for (auto it = txns.rbegin(); it != txns.rend(); ++it) {
    const types::Transaction& tx = *it;
    if (present_.count(tx.id) > 0 || tombstoned_.count(tx.id) > 0) continue;
    if (live_ >= capacity_) {
      ++rejected_;
      continue;
    }
    present_.insert(tx.id);
    queue_.push_front(tx);
    ++live_;
    ++inserted;
  }
  recycled_ += inserted;
  return inserted;
}

std::vector<types::Transaction> Mempool::take(std::size_t max_n) {
  std::vector<types::Transaction> out;
  out.reserve(max_n < live_ ? max_n : live_);
  while (out.size() < max_n && !queue_.empty()) {
    types::Transaction tx = std::move(queue_.front());
    queue_.pop_front();
    present_.erase(tx.id);
    if (tombstoned_.erase(tx.id) > 0) {
      continue;  // committed while pooled; drop silently
    }
    --live_;
    out.push_back(std::move(tx));
  }
  return out;
}

void Mempool::mark_committed(types::TxId id) {
  if (present_.count(id) > 0 && tombstoned_.insert(id).second) {
    --live_;
  }
}

}  // namespace bamboo::mempool
