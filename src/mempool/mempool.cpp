#include "mempool/mempool.h"

namespace bamboo::mempool {

bool Mempool::add_new(types::Transaction tx) {
  if (live_ >= capacity_ || present_.count(tx.id) > 0) {
    ++rejected_;
    return false;
  }
  present_.insert(tx.id);
  queue_.push_back(std::move(tx));
  ++live_;
  return true;
}

std::size_t Mempool::recycle(const std::vector<types::Transaction>& txns) {
  // Insert at the front preserving order: walk the batch backwards and
  // push_front each element.
  std::size_t inserted = 0;
  for (auto it = txns.rbegin(); it != txns.rend(); ++it) {
    const types::Transaction& tx = *it;
    if (present_.count(tx.id) > 0 || tombstoned_.count(tx.id) > 0) continue;
    if (live_ >= capacity_) {
      ++rejected_;
      continue;
    }
    present_.insert(tx.id);
    queue_.push_front(tx);
    ++live_;
    ++inserted;
  }
  recycled_ += inserted;
  return inserted;
}

std::vector<types::Transaction> Mempool::take(std::size_t max_n) {
  std::vector<types::Transaction> out;
  out.reserve(max_n < live_ ? max_n : live_);
  while (out.size() < max_n && !queue_.empty()) {
    types::Transaction tx = std::move(queue_.front());
    queue_.pop_front();
    present_.erase(tx.id);
    if (tombstoned_.erase(tx.id) > 0) {
      continue;  // committed while pooled; drop silently
    }
    --live_;
    out.push_back(std::move(tx));
  }
  return out;
}

void Mempool::mark_committed(types::TxId id) {
  if (present_.count(id) > 0 && tombstoned_.insert(id).second) {
    --live_;
  }
}

}  // namespace bamboo::mempool
