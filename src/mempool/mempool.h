#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "types/transaction.h"

namespace bamboo::mempool {

/// What a full pool does with a fresh client transaction (the overflow
/// behavior that used to be implicit). Configured through the
/// `core::Config::admission` DSL; "drop" reproduces the legacy semantics
/// bit-for-bit.
enum class AdmissionPolicy {
  kDrop,      ///< reject silently; the client sees a plain rejection
  kBackoff,   ///< reject and attach a retry-after hint to the response
  kPriority,  ///< reserve a slice of capacity for recycled (forked-out)
              ///< transactions so recovery work is never crowded out
};

/// Parsed admission spec: "drop" | "backoff:<ms>" | "priority:<frac>".
struct Admission {
  AdmissionPolicy policy = AdmissionPolicy::kDrop;
  double backoff_ms = 0;     ///< retry-after hint (backoff policy)
  double reserve_frac = 0;   ///< capacity fraction reserved (priority policy)

  bool operator==(const Admission&) const = default;
};

/// Parse the admission DSL. Same strictness as the churn DSL: an unknown
/// policy, a half-specified one ("backoff" without a delay, "priority"
/// without a fraction) or an out-of-range parameter throws
/// std::invalid_argument. "" and "drop" mean the legacy drop policy.
[[nodiscard]] Admission parse_admission(const std::string& spec);
[[nodiscard]] const char* admission_policy_name(AdmissionPolicy p);

/// The paper's memory pool (§III-E): a bidirectional queue. New transactions
/// enter at the back; transactions recovered from forked-out blocks re-enter
/// at the front so they are re-proposed first. Each replica owns one local
/// pool (clients submit to exactly one replica), which makes duplicate
/// checks local. Capacity is a hard bound (Table I "memsize"); the
/// admission policy decides how overflow is refused.
class Mempool {
 public:
  /// capacity = Table I "memsize" (maximum transactions held).
  explicit Mempool(std::size_t capacity, Admission admission = {})
      : capacity_(capacity),
        admission_(admission),
        reserve_(admission.policy == AdmissionPolicy::kPriority
                     ? static_cast<std::size_t>(
                           static_cast<double>(capacity) *
                           admission.reserve_frac)
                     : 0) {}

  /// Append a fresh client transaction. Returns false (rejected) when the
  /// id is already present or the pool's new-transaction budget is
  /// exhausted (full, minus any priority reserve held for recycling).
  bool add_new(types::Transaction tx);

  /// Re-insert transactions from a forked-out block at the *front*, keeping
  /// their relative order. Already-present or already-committed ids are
  /// skipped. Recycling may use the full capacity, including the priority
  /// reserve. Returns how many were re-inserted.
  std::size_t recycle(const std::vector<types::Transaction>& txns);

  /// Remove and return up to `max_n` transactions from the front.
  std::vector<types::Transaction> take(std::size_t max_n);

  /// Record that a transaction committed; if it is still pooled it will be
  /// dropped instead of proposed again.
  void mark_committed(types::TxId id);

  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const Admission& admission() const { return admission_; }

  [[nodiscard]] std::uint64_t admitted_count() const { return admitted_; }
  [[nodiscard]] std::uint64_t rejected_count() const { return rejected_; }
  [[nodiscard]] std::uint64_t recycled_count() const { return recycled_; }

 private:
  std::size_t capacity_;
  Admission admission_;
  std::size_t reserve_;  ///< capacity slice reserved for recycle()
  std::deque<types::Transaction> queue_;
  std::unordered_set<types::TxId> present_;     // ids currently in queue_
  std::unordered_set<types::TxId> tombstoned_;  // committed while pooled
  std::size_t live_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t recycled_ = 0;
};

}  // namespace bamboo::mempool
