#pragma once

#include <cstddef>
#include <deque>
#include <unordered_set>
#include <vector>

#include "types/transaction.h"

namespace bamboo::mempool {

/// The paper's memory pool (§III-E): a bidirectional queue. New transactions
/// enter at the back; transactions recovered from forked-out blocks re-enter
/// at the front so they are re-proposed first. Each replica owns one local
/// pool (clients submit to exactly one replica), which makes duplicate
/// checks local.
class Mempool {
 public:
  /// capacity = Table I "memsize" (maximum transactions held).
  explicit Mempool(std::size_t capacity) : capacity_(capacity) {}

  /// Append a fresh client transaction. Returns false (rejected) when the
  /// pool is full or the id is already present.
  bool add_new(types::Transaction tx);

  /// Re-insert transactions from forked-out blocks at the *front*, keeping
  /// their relative order. Already-present or already-committed ids are
  /// skipped. Returns how many were re-inserted.
  std::size_t recycle(const std::vector<types::Transaction>& txns);

  /// Remove and return up to `max_n` transactions from the front.
  std::vector<types::Transaction> take(std::size_t max_n);

  /// Record that a transaction committed; if it is still pooled it will be
  /// dropped instead of proposed again.
  void mark_committed(types::TxId id);

  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::uint64_t rejected_count() const { return rejected_; }
  [[nodiscard]] std::uint64_t recycled_count() const { return recycled_; }

 private:
  std::size_t capacity_;
  std::deque<types::Transaction> queue_;
  std::unordered_set<types::TxId> present_;     // ids currently in queue_
  std::unordered_set<types::TxId> tombstoned_;  // committed while pooled
  std::size_t live_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t recycled_ = 0;
};

}  // namespace bamboo::mempool
