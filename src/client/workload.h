#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/histogram.h"
#include "util/stats.h"

namespace bamboo::client {

/// How load is offered to the cluster.
enum class LoadMode {
  /// The paper's benchmark mode: `concurrency` client sessions, each with
  /// one outstanding request; a session issues its next request when the
  /// previous one is confirmed. Raising concurrency raises offered load
  /// until the system saturates (§VI: "the clients' concurrency level is
  /// increased until the network is saturated").
  kClosedLoop,
  /// Aggregate arrival process at a configured rate — independent of how
  /// the system responds, which is what exposes the overload regime. The
  /// process shape comes from the `arrival` DSL (Poisson by default, the
  /// arrival process assumed by the analytic model §V-A3).
  kOpenLoop,
};

/// One segment of a modulated arrival process: `value` is a rate
/// multiplier (burst) or an absolute rate in tx/s (trace), held for
/// `dur_s` simulated seconds.
struct ArrivalPhase {
  double value = 1;
  double dur_s = 0;

  bool operator==(const ArrivalPhase&) const = default;
};

/// Parsed open-loop arrival process.
struct ArrivalProcess {
  enum class Kind {
    kPoisson,  ///< exponential gaps at arrival_rate_tps (legacy default)
    kFixed,    ///< deterministic 1/λ spacing — draws no randomness
    kBurst,    ///< cyclic rate-multiplier phases, Poisson within a phase
    kTrace,    ///< absolute-rate schedule replayed once; holds the last rate
  };
  Kind kind = Kind::kPoisson;
  std::vector<ArrivalPhase> phases;  ///< burst/trace segments
  double cycle_s = 0;                ///< total burst cycle length

  bool operator==(const ArrivalProcess&) const = default;
};

/// Parse the arrival DSL: "poisson" | "fixed" |
/// "burst:<mult>x<dur_s>[,<mult>x<dur_s>...]" |
/// "trace:<tps>@<dur_s>[,<tps>@<dur_s>...]".
/// Throws std::invalid_argument on unknown, half-specified, or
/// out-of-range specs (multipliers/rates/durations must be > 0) — the
/// same strictness as the churn and admission DSLs.
[[nodiscard]] ArrivalProcess parse_arrival(const std::string& spec);

struct WorkloadConfig {
  LoadMode mode = LoadMode::kClosedLoop;
  std::uint32_t concurrency = 10;   ///< sessions (closed loop)
  double arrival_rate_tps = 1000;   ///< λ (open loop; base rate for burst)
  /// Open-loop arrival-process DSL (see parse_arrival). "poisson" keeps
  /// the legacy schedule bit-identical.
  std::string arrival = "poisson";
  /// Open loop: number of logical clients the aggregate process stands in
  /// for. 0 (default) = the legacy single anonymous session, drawing no
  /// extra randomness; > 0 tags each arrival with a session id drawn
  /// uniformly from the population (millions of clients without
  /// per-client objects — only the id is materialized).
  std::uint64_t client_population = 0;
  std::uint32_t payload_size = 0;   ///< psize
  sim::Duration retry_backoff = sim::milliseconds(1);
  /// Closed-loop session watchdog: if a request is unanswered for this
  /// long, the session abandons it and issues a fresh one (REST client
  /// timeout). 0 disables. Needed under attacks that starve individual
  /// replicas, or sessions drain into the starved mempools and offered
  /// load collapses to zero.
  sim::Duration session_timeout = 0;
};

/// Issues transactions from the simulated client hosts, receives commit
/// confirmations, and records client-side latency — the Bamboo client
/// library + benchmarker (§III-D), minus HTTP.
class WorkloadDriver {
 public:
  struct Stats {
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t stale_responses = 0;  ///< answers to abandoned requests
    std::uint64_t abandoned = 0;        ///< session-timeout give-ups
  };

  WorkloadDriver(sim::Simulator& simulator, net::SimNetwork& network,
                 const core::Config& config, WorkloadConfig workload);

  /// Register handlers on the client endpoints. Call before start().
  void install();

  /// Begin issuing requests.
  void start();

  /// Stop issuing new requests (in-flight ones still complete).
  void stop() { stopped_ = true; }

  /// Latency samples are recorded only between begin/end_measurement
  /// (warm-up exclusion).
  void begin_measurement();
  void end_measurement();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] util::Samples& latencies_ms() { return latencies_ms_; }
  /// Log-scale latency histogram over the measurement window — the
  /// merge-safe source of exact p50/p99/p999 (util/histogram.h).
  [[nodiscard]] const util::LatencyHistogram& latency_hist() const {
    return latency_hist_;
  }
  /// Transactions confirmed inside the measurement window.
  [[nodiscard]] std::uint64_t measured_completed() const {
    return measured_completed_;
  }
  /// Transactions issued inside the measurement window (offered load).
  [[nodiscard]] std::uint64_t measured_issued() const {
    return measured_issued_;
  }
  [[nodiscard]] double measured_seconds() const;

  /// Optional: count every confirmation into a timeline (Fig. 15).
  void set_timeline(util::TimelineCounter* timeline) { timeline_ = timeline; }

 private:
  void issue(std::uint32_t session);
  void schedule_next_arrival();
  /// Instantaneous arrival rate at simulated time `now` (burst phases
  /// cycle; a trace holds its last segment's rate after the replay ends).
  [[nodiscard]] double rate_at(sim::Time now) const;
  void on_response(const types::ClientResponseMsg& resp);
  void arm_watchdog(std::uint32_t session, types::TxId tx);

  sim::Simulator& sim_;
  net::SimNetwork& net_;
  const core::Config& cfg_;
  WorkloadConfig wl_;
  ArrivalProcess arrival_;

  bool stopped_ = false;
  bool measuring_ = false;
  sim::Time window_start_ = 0;
  sim::Time window_end_ = 0;
  sim::Time arrival_start_ = 0;  ///< t=0 of the burst/trace clock
  std::uint64_t measured_completed_ = 0;
  std::uint64_t measured_issued_ = 0;
  std::uint64_t next_tx_id_ = 1;
  Stats stats_;
  util::Samples latencies_ms_;
  util::LatencyHistogram latency_hist_;
  util::TimelineCounter* timeline_ = nullptr;
  /// Closed loop: the tx id each session is currently waiting on (0 = not
  /// waiting) and its watchdog timer.
  std::vector<types::TxId> outstanding_;
  std::vector<sim::EventId> watchdogs_;
};

}  // namespace bamboo::client
