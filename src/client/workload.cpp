#include "client/workload.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "types/messages.h"

namespace bamboo::client {

namespace {

double parse_positive(const std::string& token, const std::string& spec,
                      const char* what) {
  char* stop = nullptr;
  const double v = std::strtod(token.c_str(), &stop);
  if (token.empty() || stop != token.c_str() + token.size() || v <= 0 ||
      !std::isfinite(v)) {
    throw std::invalid_argument("arrival '" + spec + "': bad " +
                                std::string(what) + " '" + token + "'");
  }
  return v;
}

/// Parse "a<sep>b[,a<sep>b...]" segments after the policy prefix.
std::vector<ArrivalPhase> parse_phases(const std::string& spec,
                                       std::size_t colon, char sep,
                                       const char* value_name) {
  if (colon == std::string::npos || colon + 1 >= spec.size()) {
    throw std::invalid_argument(
        "arrival '" + spec + "' is half-specified: want " +
        spec.substr(0, colon) + ":<" + value_name + ">" + sep + "<dur_s>,...");
  }
  std::vector<ArrivalPhase> phases;
  const std::string body = spec.substr(colon + 1);
  std::size_t pos = 0;
  while (pos <= body.size()) {
    std::size_t end = body.find(',', pos);
    if (end == std::string::npos) end = body.size();
    const std::string segment = body.substr(pos, end - pos);
    const std::size_t mid = segment.find(sep);
    if (mid == std::string::npos) {
      throw std::invalid_argument("arrival '" + spec + "': segment '" +
                                  segment + "' wants <" + value_name + ">" +
                                  sep + "<dur_s>");
    }
    ArrivalPhase phase;
    phase.value = parse_positive(segment.substr(0, mid), spec, value_name);
    phase.dur_s =
        parse_positive(segment.substr(mid + 1), spec, "duration (s)");
    phases.push_back(phase);
    pos = end + 1;
  }
  return phases;
}

}  // namespace

ArrivalProcess parse_arrival(const std::string& spec) {
  ArrivalProcess p;
  if (spec.empty() || spec == "poisson") return p;
  if (spec == "fixed") {
    p.kind = ArrivalProcess::Kind::kFixed;
    return p;
  }
  const std::size_t colon = spec.find(':');
  const std::string policy = spec.substr(0, colon);
  if (policy == "burst") {
    p.kind = ArrivalProcess::Kind::kBurst;
    p.phases = parse_phases(spec, colon, 'x', "mult");
    for (const ArrivalPhase& phase : p.phases) p.cycle_s += phase.dur_s;
    return p;
  }
  if (policy == "trace") {
    p.kind = ArrivalProcess::Kind::kTrace;
    p.phases = parse_phases(spec, colon, '@', "tps");
    return p;
  }
  throw std::invalid_argument("unknown arrival process: " + spec);
}

WorkloadDriver::WorkloadDriver(sim::Simulator& simulator,
                               net::SimNetwork& network,
                               const core::Config& config,
                               WorkloadConfig workload)
    : sim_(simulator),
      net_(network),
      cfg_(config),
      wl_(workload),
      arrival_(parse_arrival(workload.arrival)) {
  if (wl_.mode == LoadMode::kClosedLoop) {
    outstanding_.assign(wl_.concurrency, 0);
    watchdogs_.assign(wl_.concurrency, sim::kInvalidEventId);
  }
}

void WorkloadDriver::install() {
  for (std::uint32_t host = 0; host < cfg_.n_client_hosts; ++host) {
    const types::NodeId endpoint = cfg_.n_replicas + host;
    net_.set_handler(endpoint, [this](const net::Envelope& env) {
      if (env.msg &&
          std::holds_alternative<types::ClientResponseMsg>(*env.msg)) {
        on_response(std::get<types::ClientResponseMsg>(*env.msg));
      }
    });
  }
}

void WorkloadDriver::start() {
  stopped_ = false;
  if (wl_.mode == LoadMode::kClosedLoop) {
    for (std::uint32_t s = 0; s < wl_.concurrency; ++s) {
      // Stagger session starts across a millisecond to avoid a thundering
      // herd at t=0.
      sim_.schedule_after(
          static_cast<sim::Duration>(sim_.rng().uniform_u64(
              static_cast<std::uint64_t>(sim::kMillisecond))),
          [this, s] { issue(s); });
    }
  } else {
    arrival_start_ = sim_.now();
    schedule_next_arrival();
  }
}

double WorkloadDriver::rate_at(sim::Time now) const {
  const double base = wl_.arrival_rate_tps;
  switch (arrival_.kind) {
    case ArrivalProcess::Kind::kPoisson:
    case ArrivalProcess::Kind::kFixed:
      return base;
    case ArrivalProcess::Kind::kBurst: {
      double t = std::fmod(sim::to_seconds(now - arrival_start_),
                           arrival_.cycle_s);
      for (const ArrivalPhase& phase : arrival_.phases) {
        if (t < phase.dur_s) return base * phase.value;
        t -= phase.dur_s;
      }
      return base * arrival_.phases.back().value;  // fmod edge
    }
    case ArrivalProcess::Kind::kTrace: {
      double t = sim::to_seconds(now - arrival_start_);
      for (const ArrivalPhase& phase : arrival_.phases) {
        if (t < phase.dur_s) return phase.value;
        t -= phase.dur_s;
      }
      return arrival_.phases.back().value;  // replay over: hold last rate
    }
  }
  return base;
}

void WorkloadDriver::schedule_next_arrival() {
  if (stopped_) return;
  const double rate = rate_at(sim_.now());
  if (rate <= 0) return;
  // Fixed spacing draws no randomness; every other process is Poisson at
  // the instantaneous rate (gap drawn at schedule time).
  const double gap_s = arrival_.kind == ArrivalProcess::Kind::kFixed
                           ? 1.0 / rate
                           : sim_.rng().exponential(rate);
  sim_.schedule_after(sim::from_seconds(gap_s), [this] {
    if (stopped_) return;
    // The aggregate process stands in for client_population logical
    // clients; only the session id is materialized, never a client
    // object. 0 keeps the legacy single-session path (no extra draw).
    const std::uint32_t session =
        wl_.client_population > 0
            ? static_cast<std::uint32_t>(
                  sim_.rng().uniform_u64(wl_.client_population))
            : 0;
    issue(session);
    schedule_next_arrival();
  });
}

void WorkloadDriver::issue(std::uint32_t session) {
  if (stopped_) return;
  types::Transaction tx;
  tx.id = next_tx_id_++;
  tx.session = session;
  tx.serving_replica = static_cast<types::NodeId>(
      sim_.rng().uniform_u64(cfg_.n_replicas));
  tx.client_endpoint = cfg_.client_endpoint(session);
  tx.submitted_at = sim_.now();
  tx.payload_size = wl_.payload_size;
  ++stats_.issued;
  if (measuring_) ++measured_issued_;

  if (wl_.mode == LoadMode::kClosedLoop) {
    outstanding_[session] = tx.id;
    arm_watchdog(session, tx.id);
  }

  net_.send(tx.client_endpoint, tx.serving_replica,
            types::make_message(types::ClientRequestMsg{tx}));
}

void WorkloadDriver::arm_watchdog(std::uint32_t session, types::TxId tx) {
  if (wl_.session_timeout <= 0) return;
  if (watchdogs_[session] != sim::kInvalidEventId) {
    sim_.cancel(watchdogs_[session]);
  }
  watchdogs_[session] =
      sim_.schedule_after(wl_.session_timeout, [this, session, tx] {
        watchdogs_[session] = sim::kInvalidEventId;
        if (stopped_ || outstanding_[session] != tx) return;
        // Give up on the stuck request and move on (it may still commit
        // later; such late answers are counted as stale, not completed).
        ++stats_.abandoned;
        outstanding_[session] = 0;
        issue(session);
      });
}

void WorkloadDriver::on_response(const types::ClientResponseMsg& resp) {
  const bool closed = wl_.mode == LoadMode::kClosedLoop;
  if (closed) {
    if (resp.session >= outstanding_.size() ||
        outstanding_[resp.session] != resp.tx_id) {
      ++stats_.stale_responses;  // answer to an abandoned request
      return;
    }
    outstanding_[resp.session] = 0;
    if (watchdogs_[resp.session] != sim::kInvalidEventId) {
      sim_.cancel(watchdogs_[resp.session]);
      watchdogs_[resp.session] = sim::kInvalidEventId;
    }
  }

  if (resp.rejected) {
    ++stats_.rejected;
    if (closed && !stopped_) {
      const std::uint32_t session = resp.session;
      // Honor the server's retry-after hint (backoff admission policy);
      // without one, fall back to the client's own backoff.
      const sim::Duration wait =
          resp.backoff_ms > 0 ? sim::from_milliseconds(resp.backoff_ms)
                              : wl_.retry_backoff;
      sim_.schedule_after(wait, [this, session] { issue(session); });
    }
    return;
  }

  ++stats_.completed;
  const double latency_ms =
      sim::to_milliseconds(sim_.now() - resp.submitted_at);
  if (measuring_) {
    latencies_ms_.add(latency_ms);
    latency_hist_.add(latency_ms);
    ++measured_completed_;
  }
  if (timeline_ != nullptr) {
    timeline_->add(sim::to_seconds(sim_.now()));
  }
  if (closed && !stopped_) {
    issue(resp.session);
  }
}

void WorkloadDriver::begin_measurement() {
  measuring_ = true;
  window_start_ = sim_.now();
  measured_completed_ = 0;
  measured_issued_ = 0;
  latencies_ms_.clear();
  latency_hist_.clear();
}

void WorkloadDriver::end_measurement() {
  measuring_ = false;
  window_end_ = sim_.now();
}

double WorkloadDriver::measured_seconds() const {
  const sim::Time end = window_end_ > 0 ? window_end_ : sim_.now();
  return sim::to_seconds(end - window_start_);
}

}  // namespace bamboo::client
