#include "client/workload.h"

#include "types/messages.h"

namespace bamboo::client {

WorkloadDriver::WorkloadDriver(sim::Simulator& simulator,
                               net::SimNetwork& network,
                               const core::Config& config,
                               WorkloadConfig workload)
    : sim_(simulator), net_(network), cfg_(config), wl_(workload) {
  if (wl_.mode == LoadMode::kClosedLoop) {
    outstanding_.assign(wl_.concurrency, 0);
    watchdogs_.assign(wl_.concurrency, sim::kInvalidEventId);
  }
}

void WorkloadDriver::install() {
  for (std::uint32_t host = 0; host < cfg_.n_client_hosts; ++host) {
    const types::NodeId endpoint = cfg_.n_replicas + host;
    net_.set_handler(endpoint, [this](const net::Envelope& env) {
      if (env.msg &&
          std::holds_alternative<types::ClientResponseMsg>(*env.msg)) {
        on_response(std::get<types::ClientResponseMsg>(*env.msg));
      }
    });
  }
}

void WorkloadDriver::start() {
  stopped_ = false;
  if (wl_.mode == LoadMode::kClosedLoop) {
    for (std::uint32_t s = 0; s < wl_.concurrency; ++s) {
      // Stagger session starts across a millisecond to avoid a thundering
      // herd at t=0.
      sim_.schedule_after(
          static_cast<sim::Duration>(sim_.rng().uniform_u64(
              static_cast<std::uint64_t>(sim::kMillisecond))),
          [this, s] { issue(s); });
    }
  } else {
    schedule_next_arrival();
  }
}

void WorkloadDriver::schedule_next_arrival() {
  if (stopped_ || wl_.arrival_rate_tps <= 0) return;
  const double gap_s = sim_.rng().exponential(wl_.arrival_rate_tps);
  sim_.schedule_after(sim::from_seconds(gap_s), [this] {
    if (stopped_) return;
    issue(0);
    schedule_next_arrival();
  });
}

void WorkloadDriver::issue(std::uint32_t session) {
  if (stopped_) return;
  types::Transaction tx;
  tx.id = next_tx_id_++;
  tx.session = session;
  tx.serving_replica = static_cast<types::NodeId>(
      sim_.rng().uniform_u64(cfg_.n_replicas));
  tx.client_endpoint = cfg_.client_endpoint(session);
  tx.submitted_at = sim_.now();
  tx.payload_size = wl_.payload_size;
  ++stats_.issued;

  if (wl_.mode == LoadMode::kClosedLoop) {
    outstanding_[session] = tx.id;
    arm_watchdog(session, tx.id);
  }

  net_.send(tx.client_endpoint, tx.serving_replica,
            types::make_message(types::ClientRequestMsg{tx}));
}

void WorkloadDriver::arm_watchdog(std::uint32_t session, types::TxId tx) {
  if (wl_.session_timeout <= 0) return;
  if (watchdogs_[session] != sim::kInvalidEventId) {
    sim_.cancel(watchdogs_[session]);
  }
  watchdogs_[session] =
      sim_.schedule_after(wl_.session_timeout, [this, session, tx] {
        watchdogs_[session] = sim::kInvalidEventId;
        if (stopped_ || outstanding_[session] != tx) return;
        // Give up on the stuck request and move on (it may still commit
        // later; such late answers are counted as stale, not completed).
        ++stats_.abandoned;
        outstanding_[session] = 0;
        issue(session);
      });
}

void WorkloadDriver::on_response(const types::ClientResponseMsg& resp) {
  const bool closed = wl_.mode == LoadMode::kClosedLoop;
  if (closed) {
    if (resp.session >= outstanding_.size() ||
        outstanding_[resp.session] != resp.tx_id) {
      ++stats_.stale_responses;  // answer to an abandoned request
      return;
    }
    outstanding_[resp.session] = 0;
    if (watchdogs_[resp.session] != sim::kInvalidEventId) {
      sim_.cancel(watchdogs_[resp.session]);
      watchdogs_[resp.session] = sim::kInvalidEventId;
    }
  }

  if (resp.rejected) {
    ++stats_.rejected;
    if (closed && !stopped_) {
      const std::uint32_t session = resp.session;
      sim_.schedule_after(wl_.retry_backoff,
                          [this, session] { issue(session); });
    }
    return;
  }

  ++stats_.completed;
  const double latency_ms =
      sim::to_milliseconds(sim_.now() - resp.submitted_at);
  if (measuring_) {
    latencies_ms_.add(latency_ms);
    ++measured_completed_;
  }
  if (timeline_ != nullptr) {
    timeline_->add(sim::to_seconds(sim_.now()));
  }
  if (closed && !stopped_) {
    issue(resp.session);
  }
}

void WorkloadDriver::begin_measurement() {
  measuring_ = true;
  window_start_ = sim_.now();
  measured_completed_ = 0;
  latencies_ms_.clear();
}

void WorkloadDriver::end_measurement() {
  measuring_ = false;
  window_end_ = sim_.now();
}

double WorkloadDriver::measured_seconds() const {
  const sim::Time end = window_end_ > 0 ? window_end_ : sim_.now();
  return sim::to_seconds(end - window_start_);
}

}  // namespace bamboo::client
