#pragma once

// Named topology scenarios: generate the per-ordered-pair LinkSpec matrix
// a SimNetwork samples from. Construction is registry-style (like
// protocols/registry): a scenario spec string "name" or "name:arg:arg..."
// selects a factory; user scenarios can be registered at runtime.
//
// Built-in scenarios (extra delays are one-way; RTT args are round-trip):
//
//   uniform
//     Every pair gets the base (LAN) link — the paper's Table I network.
//
//   wan:<regions>:<rtt_ms>[,<rtt_ms>...]
//     Replicas round-robin into <regions> regions (replica i -> region
//     i % regions). Same-region links stay at base; cross-region links
//     add rtt_ms/2 one-way, where the comma list indexes ring distance
//     between the regions (distance d uses the d-th entry, clamped to the
//     last) — so "wan:3:40,120" is three regions with 40 ms RTT between
//     neighbours and 120 ms across. Client-host endpoints keep base links
//     (the measurement harness is colocated, as in the paper's testbed).
//
//   slow-replica:<id>:<extra_ms>
//     Every link to AND from replica <id> adds extra_ms one-way (a
//     degraded replica NIC, both directions — the single-slow-replica
//     scenario of the responsiveness literature).
//
//   slow-leader:<extra_ms>[:<id>]
//     Only the OUTBOUND links of replica <id> (default 0) add extra_ms
//     one-way — an asymmetric slow leader uplink, the condition under
//     which chained-BFT chain growth degrades leader-by-leader.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/link_model.h"

namespace bamboo::net {

/// Everything a scenario factory needs to lay out a matrix.
struct TopologyContext {
  std::uint32_t n_endpoints = 0;  ///< replicas + client hosts
  std::uint32_t n_replicas = 0;   ///< endpoints [0, n_replicas) are replicas
  LinkSpec base;                  ///< the LAN link every pair starts from
  /// Colon-separated args following the scenario name in the spec string.
  std::vector<std::string> args;
};

using TopologyFactory = std::function<LinkMatrix(const TopologyContext&)>;

/// Build the matrix for a scenario spec "name[:arg...]". Empty spec means
/// "uniform". Throws std::invalid_argument on unknown names or bad args.
[[nodiscard]] LinkMatrix make_topology(const std::string& spec,
                                       std::uint32_t n_endpoints,
                                       std::uint32_t n_replicas,
                                       const LinkSpec& base);

/// Names accepted by make_topology (built-ins plus registrations).
[[nodiscard]] std::vector<std::string> topology_names();

/// Register a custom scenario generator under `name` (no ':' allowed).
/// Re-registering replaces the factory; built-ins cannot be shadowed.
void register_topology(const std::string& name, TopologyFactory factory);

}  // namespace bamboo::net
