#include "net/link_model.h"

#include <cmath>
#include <stdexcept>

namespace bamboo::net {

DelayFamily parse_delay_family(const std::string& name) {
  if (name == "normal" || name.empty()) return DelayFamily::kNormal;
  if (name == "uniform") return DelayFamily::kUniform;
  if (name == "lognormal") return DelayFamily::kLogNormal;
  if (name == "pareto") return DelayFamily::kPareto;
  throw std::invalid_argument("unknown link delay model: " + name);
}

const char* delay_family_name(DelayFamily family) {
  switch (family) {
    case DelayFamily::kNormal: return "normal";
    case DelayFamily::kUniform: return "uniform";
    case DelayFamily::kLogNormal: return "lognormal";
    case DelayFamily::kPareto: return "pareto";
  }
  return "?";
}

const std::vector<std::string>& delay_family_names() {
  static const std::vector<std::string> names = {"normal", "uniform",
                                                 "lognormal", "pareto"};
  return names;
}

bool gilbert_elliott_step(const LinkSpec& link, bool& bad, util::Rng& rng) {
  const double rate = bad ? link.ge_loss_bad : link.ge_loss_good;
  const bool lost = rate > 0 && rng.bernoulli(rate);
  const double flip = bad ? link.ge_r : link.ge_p;
  if (flip > 0 && rng.bernoulli(flip)) bad = !bad;
  return lost;
}

void shift_link(LinkSpec& link, double extra_ns) {
  link.base += extra_ns;
  if (link.family == DelayFamily::kUniform) link.spread += extra_ns;
}

namespace {

double lognormal_sigma(const LinkSpec& link) {
  return link.shape > 0 ? link.shape : kDefaultLogNormalSigma;
}

double pareto_alpha(const LinkSpec& link) {
  return link.shape > 1 ? link.shape : kDefaultParetoAlpha;
}

}  // namespace

sim::Duration sample_delay(const LinkSpec& link, util::Rng& rng) {
  sim::Duration delay = 0;
  switch (link.family) {
    case DelayFamily::kNormal:
      delay = static_cast<sim::Duration>(rng.gaussian(link.base, link.spread));
      break;
    case DelayFamily::kUniform:
      delay = static_cast<sim::Duration>(rng.uniform(link.base, link.spread));
      break;
    case DelayFamily::kLogNormal: {
      // Location chosen so the distribution's mean is `base`:
      // E = exp(µ + σ²/2)  ⇒  µ = ln(base) − σ²/2.
      const double sigma = lognormal_sigma(link);
      const double mean = link.base > 1.0 ? link.base : 1.0;
      const double mu = std::log(mean) - sigma * sigma / 2.0;
      delay = static_cast<sim::Duration>(std::exp(rng.gaussian(mu, sigma)));
      break;
    }
    case DelayFamily::kPareto: {
      // Scale x_m chosen so the mean is `base`: E = αx_m/(α−1).
      const double alpha = pareto_alpha(link);
      const double mean = link.base > 1.0 ? link.base : 1.0;
      const double xm = mean * (alpha - 1.0) / alpha;
      // Inverse CDF over u ∈ [0, 1): x_m (1 − u)^(−1/α).
      delay = static_cast<sim::Duration>(
          xm * std::pow(1.0 - rng.uniform(), -1.0 / alpha));
      break;
    }
  }
  if (link.add_mean > 0 || link.add_jitter > 0) {
    delay += static_cast<sim::Duration>(
        rng.gaussian(link.add_mean, link.add_jitter));
  }
  return delay;
}

double link_mean_ns(const LinkSpec& link) {
  double mean = 0;
  switch (link.family) {
    case DelayFamily::kNormal:
    case DelayFamily::kLogNormal:
    case DelayFamily::kPareto:
      mean = link.base;
      break;
    case DelayFamily::kUniform:
      mean = (link.base + link.spread) / 2.0;
      break;
  }
  return mean + link.add_mean;
}

LinkMatrix::LinkMatrix(std::uint32_t n, const LinkSpec& fill)
    : n_(n), links_(static_cast<std::size_t>(n) * n, fill) {}

LinkSpec& LinkMatrix::at(types::NodeId from, types::NodeId to) {
  return links_.at(static_cast<std::size_t>(from) * n_ + to);
}

const LinkSpec& LinkMatrix::at(types::NodeId from, types::NodeId to) const {
  return links_.at(static_cast<std::size_t>(from) * n_ + to);
}

sim::Duration LinkMatrix::sample(types::NodeId from, types::NodeId to,
                                 util::Rng& rng) const {
  return sample_delay(at(from, to), rng);
}

double LinkMatrix::loss(types::NodeId from, types::NodeId to) const {
  return at(from, to).loss;
}

}  // namespace bamboo::net
