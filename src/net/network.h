#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "net/link_model.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "types/messages.h"

namespace bamboo::net {

/// Network-level parameters (a subset of core::Config, duplicated here so
/// the transport has no dependency on the consensus configuration).
struct NetConfig {
  double bandwidth_bps = 1e9;       ///< per-endpoint NIC, each direction
  sim::Duration rtt_mean = sim::milliseconds(1);      ///< µ (round trip)
  sim::Duration rtt_stddev = sim::microseconds(100);  ///< σ (round trip)
  sim::Duration added_delay = 0;         ///< Table I "delay" (one-way)
  sim::Duration added_delay_jitter = 0;  ///< stddev of the added delay
  sim::Duration min_one_way = sim::microseconds(20);

  // --- WAN scenario engine ------------------------------------------------
  /// Link delay distribution family ("normal" | "uniform" | "lognormal" |
  /// "pareto"). "normal" is bit-compatible with the original transport.
  std::string link_model = "normal";
  /// Family shape: lognormal log-σ / pareto tail α / uniform half-width as
  /// a fraction of the mean. 0 = family default.
  double link_shape = 0;
  /// Independent per-message loss probability applied to every link.
  double link_loss = 0;
  /// Named topology scenario (see topology.h): "uniform", "wan:...",
  /// "slow-replica:...", "slow-leader:...".
  std::string topology = "uniform";
  /// Gilbert-Elliott bursty-loss channel applied to every link (see
  /// LinkSpec); ge_p == 0 disables it and costs no RNG.
  double ge_p = 0;
  double ge_r = 0;
  double ge_loss_good = 0;
  double ge_loss_bad = 1.0;
  /// Endpoints [0, n_replicas) are replicas (topology scenarios only
  /// perturb replica links); 0 means every endpoint is a replica.
  std::uint32_t n_replicas = 0;
};

/// Derive the base (LAN) LinkSpec the topology replicates: the configured
/// family centered on the one-way delay rtt_mean/2. For the normal family
/// the Table I added delay stays a separate conditional draw
/// (bit-compatibility with the pre-LinkModel schedule); the other families
/// fold its mean into their location so distributions compare at equal
/// mean, with the delay jitter riding as a zero-mean Normal component.
[[nodiscard]] LinkSpec base_link_spec(const NetConfig& config);

/// A delivered message with its transport metadata.
struct Envelope {
  types::NodeId from = 0;
  types::NodeId to = 0;
  sim::Time sent_at = 0;
  std::uint64_t bytes = 0;
  types::MessagePtr msg;
};

/// Simulated message-passing transport (replaces Bamboo's Paxi-derived
/// TCP/Go-channel network; DESIGN.md §1). Per endpoint it models a
/// single-server egress queue and ingress queue at NIC bandwidth — giving
/// t_NIC = 2m/b exactly as in the paper's model — plus a per-message
/// one-way link delay and loss drawn from the per-ordered-pair LinkMatrix
/// (default: every pair ~ Normal(µ/2, σ/√2), bit-compatible with the
/// original single-distribution transport), runtime-adjustable extra
/// delays (the "slow" command / network fluctuation), partitions, and
/// crash drops.
///
/// Broadcast fans out as unicast copies through the sender's egress queue,
/// which is what makes leader bandwidth the scalability bottleneck.
class SimNetwork {
 public:
  using Handler = std::function<void(const Envelope&)>;

  SimNetwork(sim::Simulator& simulator, std::uint32_t num_endpoints,
             NetConfig config);

  void set_handler(types::NodeId endpoint, Handler handler);

  /// Queue a message from -> to. Self-sends bypass the NIC and the link.
  void send(types::NodeId from, types::NodeId to, types::MessagePtr msg);

  /// Send to every replica in [0, n_replicas) except `from`.
  void broadcast(types::NodeId from, std::uint32_t n_replicas,
                 const types::MessagePtr& msg);

  /// Crash / recover an endpoint: a down endpoint neither sends nor
  /// receives; in-flight messages to it are dropped on arrival.
  void set_down(types::NodeId endpoint, bool down);
  [[nodiscard]] bool is_down(types::NodeId endpoint) const;

  /// Inject symmetric extra one-way delay sampled uniformly from [lo, hi]
  /// per message (the paper's 10–100 ms network fluctuation). Pass (0, 0)
  /// to clear.
  void set_fluctuation(sim::Duration lo, sim::Duration hi);

  /// Assign endpoints to partition groups; messages across groups are
  /// dropped. Empty vector = no partition.
  void set_partition(std::vector<int> group_of_endpoint);

  // --- runtime link mutation (the churn engine) ---------------------------
  // The construction-time matrix is kept as the baseline; degradations and
  // loss overrides mutate the live matrix and restore_* resets from the
  // baseline. Mutations never touch the Gilbert-Elliott channel STATE —
  // a link that is mid-burst stays mid-burst.

  /// Shift the directed link's delay location by extra one-way ns
  /// (cumulative across calls; respects the family parameterization).
  void degrade_link(types::NodeId from, types::NodeId to, double extra_ns);
  /// Reset the directed link's full spec (delay, loss, GE parameters) to
  /// its construction-time baseline.
  void restore_link(types::NodeId from, types::NodeId to);
  /// Reset every link to the baseline matrix.
  void restore_all_links();
  /// Override the directed link's per-message Bernoulli loss probability.
  void set_link_loss(types::NodeId from, types::NodeId to, double loss);
  /// Reset the directed link's loss to its construction-time baseline,
  /// leaving delay mutations in place.
  void restore_link_loss(types::NodeId from, types::NodeId to);

  /// The per-ordered-pair delay/loss matrix this transport samples from.
  [[nodiscard]] const LinkMatrix& links() const { return links_; }
  /// The construction-time matrix restore_* resets from.
  [[nodiscard]] const LinkMatrix& base_links() const { return base_links_; }

  // --- statistics ---------------------------------------------------------
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t messages_dropped() const {
    return messages_dropped_;
  }
  /// Messages dropped by the per-link loss model alone (a subset of
  /// messages_dropped()).
  [[nodiscard]] std::uint64_t messages_lost() const { return messages_lost_; }

  [[nodiscard]] std::uint32_t num_endpoints() const {
    return static_cast<std::uint32_t>(endpoints_.size());
  }

 private:
  struct Outgoing {
    types::NodeId to = 0;
    std::uint64_t bytes = 0;
    types::MessagePtr msg;
    sim::Time queued_at = 0;
  };
  struct Endpoint {
    Handler handler;
    std::deque<Outgoing> egress;
    bool egress_busy = false;
    std::deque<Envelope> ingress;
    bool ingress_busy = false;
    bool down = false;
  };

  [[nodiscard]] sim::Duration serialization_delay(std::uint64_t bytes) const;
  [[nodiscard]] sim::Duration sample_one_way_delay(types::NodeId from,
                                                   types::NodeId to);

  /// Admission control shared by send()/broadcast(): counts the drop and
  /// returns nullptr when the sender is down or the pair is partitioned,
  /// otherwise the sender's endpoint. Lets broadcast() size the message
  /// once for all admitted recipients.
  Endpoint* admit(types::NodeId from, types::NodeId to);
  /// Post-admission path: stats, loopback scheduling, egress queueing.
  void enqueue(Endpoint& src, types::NodeId from, types::NodeId to,
               types::MessagePtr msg, std::uint64_t bytes);

  /// In-flight envelope pool. Messages traversing a link (and loopback
  /// deliveries) park their Envelope in a recycled pool slot so the
  /// scheduled delivery callback captures only [this, slot] — trivially
  /// copyable, inline in the event queue, no per-message allocation. A
  /// slot lives exactly from acquire (at schedule) to take (at fire).
  std::uint32_t acquire_envelope(Envelope env);
  Envelope take_envelope(std::uint32_t slot);

  void start_egress(types::NodeId id);
  void finish_egress(types::NodeId id);
  void deliver_loopback(std::uint32_t slot);
  void arrive(Envelope env);
  void start_ingress(types::NodeId id);
  void finish_ingress(types::NodeId id);

  sim::Simulator& sim_;
  NetConfig cfg_;
  LinkMatrix links_;
  LinkMatrix base_links_;  ///< construction-time copy; restore_* source
  /// Per-directed-link Gilbert-Elliott state (row-major, [from * n + to]);
  /// false = good. Mutated on every traversal of a GE-enabled link.
  std::vector<bool> ge_bad_;
  std::vector<Endpoint> endpoints_;
  std::vector<Envelope> pool_;  ///< in-flight envelopes, indexed by slot
  std::vector<std::uint32_t> pool_free_;
  std::vector<int> partition_;
  sim::Duration fluct_lo_ = 0;
  sim::Duration fluct_hi_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t messages_lost_ = 0;
};

}  // namespace bamboo::net
