#include "net/topology.h"

#include <map>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>

#include "sim/time.h"
#include "util/parse.h"

namespace bamboo::net {

namespace {

// Custom scenario factories are read by harness::ParallelRunner workers
// constructing clusters concurrently; registration takes the writer side.
std::shared_mutex& registry_mutex() {
  static std::shared_mutex mu;
  return mu;
}

std::map<std::string, TopologyFactory>& custom_registry() {
  static std::map<std::string, TopologyFactory> registry;
  return registry;
}

bool is_builtin(const std::string& name) {
  return name == "uniform" || name == "wan" || name == "slow-replica" ||
         name == "slow-leader";
}

using util::split;

double parse_number(const std::string& text, const std::string& what) {
  const std::optional<double> v = util::parse_finite_double(text);
  if (!v) {
    throw std::invalid_argument("topology: bad " + what + ": '" + text + "'");
  }
  return *v;
}

const std::string& arg_at(const TopologyContext& ctx, std::size_t i,
                          const std::string& scenario,
                          const std::string& what) {
  if (i >= ctx.args.size()) {
    throw std::invalid_argument("topology " + scenario + ": missing " + what);
  }
  return ctx.args[i];
}

LinkMatrix make_uniform(const TopologyContext& ctx) {
  return LinkMatrix(ctx.n_endpoints, ctx.base);
}

LinkMatrix make_wan(const TopologyContext& ctx) {
  const auto regions = static_cast<std::uint32_t>(
      parse_number(arg_at(ctx, 0, "wan", "region count"), "region count"));
  if (regions < 1) {
    throw std::invalid_argument("topology wan: region count must be >= 1");
  }
  // RTT list indexed by ring distance - 1, clamped to the last entry.
  std::vector<double> rtt_ms;
  for (const std::string& part :
       split(arg_at(ctx, 1, "wan", "inter-region RTT list"), ',')) {
    rtt_ms.push_back(parse_number(part, "inter-region RTT"));
  }

  LinkMatrix m(ctx.n_endpoints, ctx.base);
  const auto region_of = [&](types::NodeId id) { return id % regions; };
  for (types::NodeId from = 0; from < ctx.n_replicas; ++from) {
    for (types::NodeId to = 0; to < ctx.n_replicas; ++to) {
      if (from == to) continue;
      const std::uint32_t a = region_of(from);
      const std::uint32_t b = region_of(to);
      if (a == b) continue;
      const std::uint32_t gap = a > b ? a - b : b - a;
      const std::uint32_t distance = std::min(gap, regions - gap);
      const double rtt =
          rtt_ms[std::min<std::size_t>(distance - 1, rtt_ms.size() - 1)];
      shift_link(m.at(from, to),
                 rtt / 2.0 * static_cast<double>(sim::kMillisecond));
    }
  }
  return m;
}

LinkMatrix make_slow_replica(const TopologyContext& ctx) {
  const auto victim = static_cast<types::NodeId>(parse_number(
      arg_at(ctx, 0, "slow-replica", "replica id"), "replica id"));
  const double extra_ns =
      parse_number(arg_at(ctx, 1, "slow-replica", "extra delay (ms)"),
                   "extra delay") *
      static_cast<double>(sim::kMillisecond);
  if (victim >= ctx.n_replicas) {
    throw std::invalid_argument("topology slow-replica: replica id " +
                                std::to_string(victim) + " out of range");
  }
  LinkMatrix m(ctx.n_endpoints, ctx.base);
  for (types::NodeId other = 0; other < ctx.n_endpoints; ++other) {
    if (other == victim) continue;
    shift_link(m.at(victim, other), extra_ns);
    shift_link(m.at(other, victim), extra_ns);
  }
  return m;
}

LinkMatrix make_slow_leader(const TopologyContext& ctx) {
  const double extra_ns =
      parse_number(arg_at(ctx, 0, "slow-leader", "extra delay (ms)"),
                   "extra delay") *
      static_cast<double>(sim::kMillisecond);
  const types::NodeId leader =
      ctx.args.size() > 1
          ? static_cast<types::NodeId>(
                parse_number(ctx.args[1], "replica id"))
          : 0;
  if (leader >= ctx.n_replicas) {
    throw std::invalid_argument("topology slow-leader: replica id " +
                                std::to_string(leader) + " out of range");
  }
  LinkMatrix m(ctx.n_endpoints, ctx.base);
  for (types::NodeId to = 0; to < ctx.n_endpoints; ++to) {
    if (to == leader) continue;
    shift_link(m.at(leader, to), extra_ns);  // outbound only: asymmetric
  }
  return m;
}

}  // namespace

LinkMatrix make_topology(const std::string& spec, std::uint32_t n_endpoints,
                         std::uint32_t n_replicas, const LinkSpec& base) {
  TopologyContext ctx;
  ctx.n_endpoints = n_endpoints;
  ctx.n_replicas = n_replicas == 0 ? n_endpoints : n_replicas;
  ctx.base = base;

  std::string name = spec.empty() ? "uniform" : spec;
  if (const std::size_t colon = name.find(':');
      colon != std::string::npos) {
    ctx.args = split(name.substr(colon + 1), ':');
    name = name.substr(0, colon);
  }

  if (name == "uniform") return make_uniform(ctx);
  if (name == "wan") return make_wan(ctx);
  if (name == "slow-replica") return make_slow_replica(ctx);
  if (name == "slow-leader") return make_slow_leader(ctx);

  TopologyFactory factory;
  {
    std::shared_lock lock(registry_mutex());
    const auto it = custom_registry().find(name);
    if (it != custom_registry().end()) factory = it->second;
  }
  if (factory) return factory(ctx);
  throw std::invalid_argument("unknown topology: " + name);
}

std::vector<std::string> topology_names() {
  std::vector<std::string> names = {"uniform", "wan", "slow-replica",
                                    "slow-leader"};
  std::shared_lock lock(registry_mutex());
  for (const auto& [name, factory] : custom_registry()) {
    names.push_back(name);
  }
  return names;
}

void register_topology(const std::string& name, TopologyFactory factory) {
  if (is_builtin(name)) {
    throw std::invalid_argument("cannot shadow built-in topology: " + name);
  }
  if (!factory) {
    throw std::invalid_argument("topology factory must not be empty");
  }
  if (name.empty() || name.find(':') != std::string::npos) {
    throw std::invalid_argument("invalid topology name: '" + name + "'");
  }
  std::unique_lock lock(registry_mutex());
  custom_registry()[name] = std::move(factory);
}

}  // namespace bamboo::net
