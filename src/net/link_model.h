#pragma once

// Pluggable per-link delay/loss models — the WAN scenario engine's core.
//
// SimNetwork originally sampled every message's one-way delay from one
// global Normal distribution shared by all replica pairs. This header
// generalizes that central sampling path: each ordered endpoint pair
// (from, to) owns a LinkSpec — a delay distribution family (normal,
// uniform, lognormal, pareto heavy-tail), an optional additive Normal
// component (the Table I "delay" knob), and an independent per-message
// loss probability. A Topology (topology.h) generates the per-link
// parameter matrix for named scenarios; SimNetwork consults the matrix on
// every link traversal.
//
// Determinism: sampling draws from the run's single sim::Simulator RNG in
// message-schedule order, so the schedule is a pure function of the seed
// regardless of worker-thread count or shard layout. With the default
// configuration (uniform topology, normal family, zero loss) the draw
// sequence — and therefore the entire simulation schedule — is
// bit-identical to the pre-LinkModel transport (pinned by
// tests/test_link_model.cpp).

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "types/ids.h"
#include "util/rng.h"

namespace bamboo::net {

/// Delay distribution families selectable per directed link.
enum class DelayFamily {
  kNormal,     ///< Normal(base, spread) — the paper's Table I model
  kUniform,    ///< Uniform[base, spread]
  kLogNormal,  ///< LogNormal with mean `base`, log-scale σ `shape`
  kPareto,     ///< Pareto with mean `base`, tail index α `shape`
};

/// Parse a family name ("normal", "uniform", "lognormal", "pareto");
/// throws std::invalid_argument on unknown names.
[[nodiscard]] DelayFamily parse_delay_family(const std::string& name);
[[nodiscard]] const char* delay_family_name(DelayFamily family);
/// Canonical family names accepted by parse_delay_family.
[[nodiscard]] const std::vector<std::string>& delay_family_names();

/// Family default shape parameters, used when LinkSpec::shape is 0.
inline constexpr double kDefaultLogNormalSigma = 0.5;  ///< log-scale σ
inline constexpr double kDefaultParetoAlpha = 3.0;     ///< tail index α
/// Uniform half-width as a fraction of the mean when shape is 0.
inline constexpr double kDefaultUniformRelWidth = 0.5;

/// Parameters of ONE directed link. Delay parameters are doubles in
/// nanoseconds: the derivation from an RTT config involves non-integer
/// factors (µ/2, σ/√2) and rounding them would perturb the sampled
/// schedule.
struct LinkSpec {
  DelayFamily family = DelayFamily::kNormal;
  /// Location: normal mean / lognormal mean / pareto mean / uniform lower
  /// bound (one-way, ns).
  double base = 0;
  /// Scale: normal stddev / uniform upper bound; lognormal and pareto use
  /// `shape` instead.
  double spread = 0;
  /// lognormal: σ of the underlying normal; pareto: tail index α (> 1 for
  /// a finite mean). 0 selects the family default.
  double shape = 0;
  /// Additive Normal component, drawn ONLY when mean or jitter is nonzero
  /// — the Table I "delay" knob. Kept as a separate conditional draw so
  /// the default schedule stays bit-compatible with the original
  /// transport's two-draw structure.
  double add_mean = 0;
  double add_jitter = 0;
  /// Independent per-message drop probability in [0, 1). The loss draw is
  /// skipped entirely when 0, so lossless runs consume no extra RNG.
  double loss = 0;
  /// Gilbert-Elliott two-state bursty-loss channel, layered UNDER the
  /// independent Bernoulli loss above: each message first passes the
  /// stateful channel (loss rate picked by the link's current good/bad
  /// state, then one transition draw), then the memoryless `loss` draw.
  /// ge_p > 0 enables the channel; at the default 0 the message consumes
  /// no extra RNG and schedules stay bit-compatible with the pre-churn
  /// transport. Classic parameterization: stationary P(bad) = p/(p+r),
  /// stationary loss = (loss_good*r + loss_bad*p)/(p+r), mean bad-burst
  /// length 1/r messages (geometric).
  double ge_p = 0;          ///< per-message P(good -> bad), [0, 1)
  double ge_r = 0;          ///< per-message P(bad -> good), [0, 1)
  double ge_loss_good = 0;  ///< loss rate while in the good state, [0, 1]
  double ge_loss_bad = 1.0;  ///< loss rate while in the bad state, [0, 1]

  [[nodiscard]] bool gilbert_elliott_enabled() const { return ge_p > 0; }

  bool operator==(const LinkSpec&) const = default;
};

/// One Gilbert-Elliott step for a single message on `link`: decide loss
/// from the CURRENT state's rate, then draw the state transition. `bad` is
/// the link's mutable channel state (starts good == false). Consumes one
/// RNG draw for the loss only when the current state's rate is nonzero,
/// plus one draw for the transition when a transition out of the current
/// state is possible — so a disabled or inert channel costs no RNG.
[[nodiscard]] bool gilbert_elliott_step(const LinkSpec& link, bool& bad,
                                        util::Rng& rng);

/// Shift a link's delay location by `extra_ns` one-way nanoseconds,
/// respecting the family's parameterization (uniform shifts both bounds).
void shift_link(LinkSpec& link, double extra_ns);

/// Draw one one-way delay sample from a link spec (advances rng). May be
/// negative for normal links — SimNetwork clamps to its configured floor.
[[nodiscard]] sim::Duration sample_delay(const LinkSpec& link,
                                         util::Rng& rng);

/// Analytic mean of the link's delay distribution (including the additive
/// component) — used by tests and topology diagnostics.
[[nodiscard]] double link_mean_ns(const LinkSpec& link);

/// Per-ordered-pair link parameter matrix for n endpoints, row-major
/// (entry [from * n + to]). The diagonal is unused: self-sends bypass the
/// link layer.
class LinkMatrix {
 public:
  LinkMatrix() = default;
  LinkMatrix(std::uint32_t n, const LinkSpec& fill);

  [[nodiscard]] std::uint32_t size() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }

  [[nodiscard]] LinkSpec& at(types::NodeId from, types::NodeId to);
  [[nodiscard]] const LinkSpec& at(types::NodeId from, types::NodeId to) const;

  /// Sample the one-way delay for from -> to (advances rng).
  [[nodiscard]] sim::Duration sample(types::NodeId from, types::NodeId to,
                                     util::Rng& rng) const;
  /// Per-message loss probability for from -> to.
  [[nodiscard]] double loss(types::NodeId from, types::NodeId to) const;

 private:
  std::uint32_t n_ = 0;
  std::vector<LinkSpec> links_;
};

}  // namespace bamboo::net
