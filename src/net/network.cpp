#include "net/network.h"

#include <cmath>
#include <utility>

namespace bamboo::net {

LinkSpec base_link_spec(const NetConfig& config) {
  LinkSpec link;
  link.family = parse_delay_family(config.link_model);
  // RTT ~ Normal(µ, σ); a one-way hop gets half the mean and σ/√2 so two
  // hops compose back to the modeled RTT distribution.
  const double one_way = static_cast<double>(config.rtt_mean) / 2.0;
  switch (link.family) {
    case DelayFamily::kNormal:
      link.base = one_way;
      link.spread = static_cast<double>(config.rtt_stddev) / std::sqrt(2.0);
      link.add_mean = static_cast<double>(config.added_delay);
      link.add_jitter = static_cast<double>(config.added_delay_jitter);
      break;
    case DelayFamily::kUniform: {
      const double mean = one_way + static_cast<double>(config.added_delay);
      const double width =
          (config.link_shape > 0 ? config.link_shape
                                 : kDefaultUniformRelWidth) *
          mean;
      link.base = mean - width;
      link.spread = mean + width;
      // The added delay is folded into the location above; its jitter
      // rides as a zero-mean Normal component so a jittered condition is
      // never silently flattened.
      link.add_jitter = static_cast<double>(config.added_delay_jitter);
      break;
    }
    case DelayFamily::kLogNormal:
    case DelayFamily::kPareto:
      link.base = one_way + static_cast<double>(config.added_delay);
      link.shape = config.link_shape;
      link.add_jitter = static_cast<double>(config.added_delay_jitter);
      break;
  }
  link.loss = config.link_loss;
  link.ge_p = config.ge_p;
  link.ge_r = config.ge_r;
  link.ge_loss_good = config.ge_loss_good;
  link.ge_loss_bad = config.ge_loss_bad;
  return link;
}

SimNetwork::SimNetwork(sim::Simulator& simulator, std::uint32_t num_endpoints,
                       NetConfig config)
    : sim_(simulator),
      cfg_(std::move(config)),
      links_(make_topology(cfg_.topology, num_endpoints, cfg_.n_replicas,
                           base_link_spec(cfg_))),
      base_links_(links_),
      ge_bad_(static_cast<std::size_t>(num_endpoints) * num_endpoints, false),
      endpoints_(num_endpoints) {}

void SimNetwork::set_handler(types::NodeId endpoint, Handler handler) {
  endpoints_.at(endpoint).handler = std::move(handler);
}

sim::Duration SimNetwork::serialization_delay(std::uint64_t bytes) const {
  const double seconds =
      static_cast<double>(bytes) * 8.0 / cfg_.bandwidth_bps;
  return sim::from_seconds(seconds);
}

sim::Duration SimNetwork::sample_one_way_delay(types::NodeId from,
                                               types::NodeId to) {
  sim::Duration delay = links_.sample(from, to, sim_.rng());
  if (fluct_hi_ > fluct_lo_) {
    delay += sim_.rng().uniform_int(fluct_lo_, fluct_hi_);
  } else if (fluct_hi_ > 0 && fluct_hi_ == fluct_lo_) {
    delay += fluct_hi_;
  }
  return delay < cfg_.min_one_way ? cfg_.min_one_way : delay;
}

SimNetwork::Endpoint* SimNetwork::admit(types::NodeId from, types::NodeId to) {
  Endpoint& src = endpoints_.at(from);
  if (src.down) {
    ++messages_dropped_;
    return nullptr;
  }
  if (!partition_.empty() && from < partition_.size() &&
      to < partition_.size() && partition_[from] != partition_[to]) {
    ++messages_dropped_;
    return nullptr;
  }
  return &src;
}

void SimNetwork::enqueue(Endpoint& src, types::NodeId from, types::NodeId to,
                         types::MessagePtr msg, std::uint64_t bytes) {
  ++messages_sent_;
  bytes_sent_ += bytes;

  if (from == to) {
    // Loopback: deliver through the scheduler (keeps handler reentrancy
    // simple) but skip the NIC queues and the link.
    const std::uint32_t slot =
        acquire_envelope(Envelope{from, to, sim_.now(), bytes, std::move(msg)});
    sim_.schedule_after(0, [this, slot] { deliver_loopback(slot); });
    return;
  }

  src.egress.push_back(Outgoing{to, bytes, std::move(msg), sim_.now()});
  if (!src.egress_busy) start_egress(from);
}

void SimNetwork::send(types::NodeId from, types::NodeId to,
                      types::MessagePtr msg) {
  Endpoint* src = admit(from, to);
  if (src == nullptr) return;
  const std::uint64_t bytes = types::wire_size(*msg);
  enqueue(*src, from, to, std::move(msg), bytes);
}

void SimNetwork::broadcast(types::NodeId from, std::uint32_t n_replicas,
                           const types::MessagePtr& msg) {
  // The wire size is a pure function of the (immutable) message, so a
  // fan-out sizes it once for all admitted recipients instead of per copy
  // (a 400-txn proposal's size used to be summed n-1 times). Computed
  // lazily so a fully-dropped broadcast stays as cheap as before.
  std::uint64_t bytes = 0;
  bool sized = false;
  for (types::NodeId to = 0; to < n_replicas; ++to) {
    if (to == from) continue;
    Endpoint* src = admit(from, to);
    if (src == nullptr) continue;
    if (!sized) {
      bytes = types::wire_size(*msg);
      sized = true;
    }
    enqueue(*src, from, to, msg, bytes);
  }
}

std::uint32_t SimNetwork::acquire_envelope(Envelope env) {
  if (pool_free_.empty()) {
    pool_.push_back(std::move(env));
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }
  const std::uint32_t slot = pool_free_.back();
  pool_free_.pop_back();
  pool_[slot] = std::move(env);
  return slot;
}

Envelope SimNetwork::take_envelope(std::uint32_t slot) {
  Envelope env = std::move(pool_[slot]);
  pool_free_.push_back(slot);
  return env;
}

void SimNetwork::deliver_loopback(std::uint32_t slot) {
  const Envelope env = take_envelope(slot);
  Endpoint& ep = endpoints_[env.to];
  if (!ep.down && ep.handler) ep.handler(env);
}

void SimNetwork::start_egress(types::NodeId id) {
  Endpoint& ep = endpoints_[id];
  if (ep.egress.empty()) {
    ep.egress_busy = false;
    return;
  }
  ep.egress_busy = true;
  const sim::Duration tx_time = serialization_delay(ep.egress.front().bytes);
  sim_.schedule_after(tx_time, [this, id] { finish_egress(id); });
}

void SimNetwork::finish_egress(types::NodeId id) {
  Endpoint& ep = endpoints_[id];
  if (ep.egress.empty()) {
    ep.egress_busy = false;
    return;
  }
  Outgoing out = std::move(ep.egress.front());
  ep.egress.pop_front();

  if (!ep.down) {
    // Loss layering: the stateful Gilbert-Elliott channel first (loss rate
    // from the link's current good/bad state, then a transition draw),
    // then the independent per-message Bernoulli loss. Both draws are
    // skipped when their model is off, so lossless schedules consume no
    // extra RNG; a lost message still paid the sender-NIC serialization.
    const LinkSpec& spec = links_.at(id, out.to);
    bool lost = false;
    if (spec.gilbert_elliott_enabled()) {
      const std::size_t idx =
          static_cast<std::size_t>(id) * endpoints_.size() + out.to;
      bool bad = ge_bad_[idx];
      lost = gilbert_elliott_step(spec, bad, sim_.rng());
      ge_bad_[idx] = bad;
    }
    if (!lost && spec.loss > 0 && sim_.rng().bernoulli(spec.loss)) {
      lost = true;
    }
    if (lost) {
      ++messages_dropped_;
      ++messages_lost_;
    } else {
      // Park the envelope in the pool so the delivery callback is a
      // trivially-copyable [this, slot] — inline in the event queue, no
      // shared_ptr refcount churn while the message is in flight.
      const std::uint32_t slot = acquire_envelope(
          Envelope{id, out.to, out.queued_at, out.bytes, std::move(out.msg)});
      const sim::Duration link = sample_one_way_delay(id, out.to);
      sim_.schedule_after(link, [this, slot] { arrive(take_envelope(slot)); });
    }
  } else {
    ++messages_dropped_;
  }
  start_egress(id);
}

void SimNetwork::arrive(Envelope env) {
  const types::NodeId to = env.to;
  Endpoint& dst = endpoints_.at(to);
  if (dst.down) {
    ++messages_dropped_;
    return;
  }
  dst.ingress.push_back(std::move(env));
  if (!dst.ingress_busy) start_ingress(to);
}

void SimNetwork::start_ingress(types::NodeId id) {
  Endpoint& ep = endpoints_[id];
  if (ep.ingress.empty()) {
    ep.ingress_busy = false;
    return;
  }
  ep.ingress_busy = true;
  const sim::Duration rx_time = serialization_delay(ep.ingress.front().bytes);
  sim_.schedule_after(rx_time, [this, id] { finish_ingress(id); });
}

void SimNetwork::finish_ingress(types::NodeId id) {
  Endpoint& ep = endpoints_[id];
  if (ep.ingress.empty()) {
    ep.ingress_busy = false;
    return;
  }
  Envelope env = std::move(ep.ingress.front());
  ep.ingress.pop_front();
  if (!ep.down && ep.handler) {
    ep.handler(env);
  } else if (ep.down) {
    ++messages_dropped_;
  }
  start_ingress(id);
}

void SimNetwork::set_down(types::NodeId endpoint, bool down) {
  Endpoint& ep = endpoints_.at(endpoint);
  ep.down = down;
  if (down) {
    messages_dropped_ += ep.egress.size() + ep.ingress.size();
    ep.egress.clear();
    ep.ingress.clear();
  }
}

bool SimNetwork::is_down(types::NodeId endpoint) const {
  return endpoints_.at(endpoint).down;
}

void SimNetwork::set_fluctuation(sim::Duration lo, sim::Duration hi) {
  fluct_lo_ = lo;
  fluct_hi_ = hi;
}

void SimNetwork::set_partition(std::vector<int> group_of_endpoint) {
  partition_ = std::move(group_of_endpoint);
}

void SimNetwork::degrade_link(types::NodeId from, types::NodeId to,
                              double extra_ns) {
  shift_link(links_.at(from, to), extra_ns);
}

void SimNetwork::restore_link(types::NodeId from, types::NodeId to) {
  links_.at(from, to) = base_links_.at(from, to);
}

void SimNetwork::restore_all_links() { links_ = base_links_; }

void SimNetwork::set_link_loss(types::NodeId from, types::NodeId to,
                               double loss) {
  links_.at(from, to).loss = loss;
}

void SimNetwork::restore_link_loss(types::NodeId from, types::NodeId to) {
  links_.at(from, to).loss = base_links_.at(from, to).loss;
}

}  // namespace bamboo::net
