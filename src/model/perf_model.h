#pragma once

#include <string>

#include "core/config.h"

namespace bamboo::model {

/// The paper's §V queuing model, with constants derived from the same
/// Config that drives the simulator so that Fig. 8 (model vs
/// implementation) is an honest comparison.
///
/// Latency of a transaction (Eq. 3):
///   latency = t_L + t_s + t_commit + w_Q (+ turn-wait, see below)
/// where
///   t_L       — client/replica round trip (= µ),
///   t_s       — block service time: CPU stages + NIC hops + quorum wait
///               (Eq. 4: 3·t_CPU + 2·t_NIC + t_Q; we expand the three CPU
///               terms from the config's sign/verify/validate costs and use
///               the actual wire size per hop),
///   t_commit  — 2·t_s for HotStuff's three-chain, t_s for two-chain
///               HotStuff and Streamlet (§V-D),
///   w_Q       — M/D/1 waiting time ρ/(2u(1-ρ)) with u = 1/(N·S) and
///               ρ = λ·S/n, S being the per-view bottleneck service time
///               (leader CPU, leader NIC, or replica CPU — whichever
///               saturates first).
///
/// Refinement over the paper (allowed by §V-E "our analysis can be
/// generalized"): an explicit *turn-wait* term (N-1)/2 · V for the views a
/// transaction waits until its serving replica leads; the paper's
/// empirically-measured t_CPU absorbed this constant.
class PerfModel {
 public:
  explicit PerfModel(const core::Config& cfg, std::string protocol = "");

  // --- building blocks (milliseconds) -------------------------------------
  [[nodiscard]] double block_bytes() const;
  [[nodiscard]] double t_nic_block_ms() const;  ///< 2m/b for a proposal hop
  [[nodiscard]] double t_nic_vote_ms() const;   ///< 2m/b for a vote hop
  [[nodiscard]] double t_q_ms() const;          ///< quorum-wait order stat
  [[nodiscard]] double t_cpu_propose_ms() const;
  [[nodiscard]] double t_cpu_replica_ms() const;
  [[nodiscard]] double t_cpu_quorum_ms() const;

  /// Block pipeline latency t_s (Eq. 4 expanded).
  [[nodiscard]] double t_s_ms() const;
  /// Time from certification to commitment (protocol dependent, §V-C3/D).
  [[nodiscard]] double t_commit_ms() const;
  /// Per-view bottleneck service time S (drives saturation).
  [[nodiscard]] double service_ms() const;
  /// Saturation throughput n/S in tx/s.
  [[nodiscard]] double saturation_tps() const;
  /// M/D/1 waiting time at arrival rate λ (tx/s); infinite past saturation.
  [[nodiscard]] double w_q_ms(double lambda_tps) const;
  /// Mean wait for the serving replica's turn to lead.
  [[nodiscard]] double turn_wait_ms() const;

  /// End-to-end predicted latency at arrival rate λ (tx/s).
  [[nodiscard]] double latency_ms(double lambda_tps) const;

 private:
  core::Config cfg_;
  std::string protocol_;
  bool echo_ = false;         // Streamlet message pattern
  std::uint32_t commit_multiplier_ = 2;  // t_commit = multiplier * t_s
};

}  // namespace bamboo::model
