#pragma once

#include <cstdint>

#include "util/rng.h"

namespace bamboo::model {

/// Expected value of the k-th order statistic (1-based, k of n) of n i.i.d.
/// standard normal variables, by numerical integration of
///   E[X_(k:n)] = ∫ x · C(n,k) · k · Φ(x)^(k-1) · (1-Φ(x))^(n-k) · φ(x) dx.
/// Used for the paper's t_Q: the time for a leader to gather a quorum of
/// votes is the (⌈2N/3⌉-1)-th order statistic of N-1 normal delays (§V-B2).
[[nodiscard]] double normal_order_statistic(std::uint32_t k, std::uint32_t n);

/// Same expectation for Normal(mean, stddev).
[[nodiscard]] double normal_order_statistic(std::uint32_t k, std::uint32_t n,
                                            double mean, double stddev);

/// Monte-Carlo estimate (cross-check; the paper suggests this route too).
[[nodiscard]] double normal_order_statistic_mc(std::uint32_t k,
                                               std::uint32_t n, double mean,
                                               double stddev,
                                               std::uint32_t trials,
                                               util::Rng& rng);

/// The paper's quorum-delay term t_Q for N replicas with RTT ~ N(µ, σ):
/// the (⌈2N/3⌉-1)-th order statistic of N-1 i.i.d. Normal(µ, σ) delays
/// (the leader already holds its own vote).
[[nodiscard]] double quorum_delay(std::uint32_t n_replicas, double rtt_mean,
                                  double rtt_stddev);

}  // namespace bamboo::model
