#include "model/order_stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace bamboo::model {

namespace {

double std_normal_pdf(double x) {
  static const double kInvSqrt2Pi = 0.3989422804014326779399461;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double std_normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

}  // namespace

double normal_order_statistic(std::uint32_t k, std::uint32_t n) {
  if (k == 0 || k > n) {
    throw std::invalid_argument("order statistic index out of range");
  }
  // log of the coefficient n! / ((k-1)! (n-k)!)
  const double log_coeff = std::lgamma(static_cast<double>(n) + 1.0) -
                           std::lgamma(static_cast<double>(k)) -
                           std::lgamma(static_cast<double>(n - k) + 1.0);

  // Simpson's rule over [-8, 8]; the integrand decays like the normal tail.
  const double lo = -8.0;
  const double hi = 8.0;
  const std::uint32_t intervals = 16000;  // even
  const double h = (hi - lo) / intervals;

  auto integrand = [&](double x) {
    const double cdf = std_normal_cdf(x);
    const double sf = 1.0 - cdf;
    if (cdf <= 0.0 || sf <= 0.0) return 0.0;
    const double log_density = log_coeff +
                               static_cast<double>(k - 1) * std::log(cdf) +
                               static_cast<double>(n - k) * std::log(sf);
    return x * std::exp(log_density) * std_normal_pdf(x);
  };

  double sum = integrand(lo) + integrand(hi);
  for (std::uint32_t i = 1; i < intervals; ++i) {
    const double x = lo + h * i;
    sum += integrand(x) * ((i % 2 == 1) ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

double normal_order_statistic(std::uint32_t k, std::uint32_t n, double mean,
                              double stddev) {
  return mean + stddev * normal_order_statistic(k, n);
}

double normal_order_statistic_mc(std::uint32_t k, std::uint32_t n,
                                 double mean, double stddev,
                                 std::uint32_t trials, util::Rng& rng) {
  if (k == 0 || k > n) {
    throw std::invalid_argument("order statistic index out of range");
  }
  std::vector<double> sample(n);
  double total = 0.0;
  for (std::uint32_t t = 0; t < trials; ++t) {
    for (std::uint32_t i = 0; i < n; ++i) {
      sample[i] = rng.gaussian(mean, stddev);
    }
    std::nth_element(sample.begin(), sample.begin() + (k - 1), sample.end());
    total += sample[k - 1];
  }
  return total / trials;
}

double quorum_delay(std::uint32_t n_replicas, double rtt_mean,
                    double rtt_stddev) {
  if (n_replicas < 2) return 0.0;
  // k = ceil(2N/3) - 1 votes still needed out of n = N-1 peers (§V-B2).
  const auto k = static_cast<std::uint32_t>(
      (2 * n_replicas + 2) / 3 - 1);  // ceil(2N/3) - 1
  const std::uint32_t n = n_replicas - 1;
  const std::uint32_t k_clamped = std::min(std::max<std::uint32_t>(k, 1), n);
  return normal_order_statistic(k_clamped, n, rtt_mean, rtt_stddev);
}

}  // namespace bamboo::model
