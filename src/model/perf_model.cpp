#include "model/perf_model.h"

#include <algorithm>
#include <limits>

#include "crypto/signer.h"
#include "model/order_stats.h"
#include "types/block.h"
#include "types/transaction.h"

namespace bamboo::model {

namespace {
double ms(sim::Duration d) { return sim::to_milliseconds(d); }
}  // namespace

PerfModel::PerfModel(const core::Config& cfg, std::string protocol)
    : cfg_(cfg), protocol_(protocol.empty() ? cfg.protocol : protocol) {
  if (protocol_ == "streamlet" || protocol_ == "sl") {
    echo_ = true;
    commit_multiplier_ = 1;  // one more certified block commits (§V-D2)
  } else if (protocol_ == "2chs" || protocol_ == "twochain" ||
             protocol_ == "fasthotstuff" || protocol_ == "fhs") {
    commit_multiplier_ = 1;  // two-chain commit: t_commit = t_s (§V-D1)
  } else {
    commit_multiplier_ = 2;  // HotStuff three-chain: t_commit = 2 t_s
  }
}

double PerfModel::block_bytes() const {
  const double per_tx = types::kTxOverheadBytes + cfg_.psize;
  // header + justify QC (quorum signatures) + transactions
  return static_cast<double>(types::kBlockHeaderBytes) + 48.0 +
         static_cast<double>(crypto::kSignatureWireBytes) * cfg_.quorum() +
         per_tx * cfg_.bsize;
}

double PerfModel::t_nic_block_ms() const {
  return 2.0 * block_bytes() * 8.0 / cfg_.bandwidth_bps * 1e3;
}

double PerfModel::t_nic_vote_ms() const {
  const double vote_bytes = 16 + 32 + crypto::kSignatureWireBytes + 16;
  return 2.0 * vote_bytes * 8.0 / cfg_.bandwidth_bps * 1e3;
}

double PerfModel::t_q_ms() const {
  return quorum_delay(cfg_.n_replicas, ms(cfg_.rtt_mean),
                      ms(cfg_.rtt_stddev));
}

double PerfModel::t_cpu_propose_ms() const {
  return ms(cfg_.cpu_sign) + cfg_.bsize * ms(cfg_.cpu_validate_per_tx);
}

double PerfModel::t_cpu_replica_ms() const {
  return 2.0 * ms(cfg_.cpu_verify) +
         cfg_.bsize * ms(cfg_.cpu_validate_per_tx) + ms(cfg_.cpu_sign);
}

double PerfModel::t_cpu_quorum_ms() const { return ms(cfg_.cpu_verify); }

double PerfModel::t_s_ms() const {
  // Eq. 4 with the three CPU stages expanded and per-hop wire sizes.
  return t_cpu_propose_ms() + t_nic_block_ms() + t_q_ms() +
         t_cpu_replica_ms() + t_nic_vote_ms() + t_cpu_quorum_ms();
}

double PerfModel::t_commit_ms() const {
  return commit_multiplier_ * t_s_ms();
}

double PerfModel::service_ms() const {
  const double n = cfg_.n_replicas;
  const double m_bits = block_bytes() * 8.0;
  const double bw = cfg_.bandwidth_bps;
  const double ingest_per_view =
      static_cast<double>(cfg_.bsize) / n * ms(cfg_.cpu_ingest_per_tx);

  // Per-view CPU at the pipeline-critical replica — the next leader, which
  // in one view processes the current proposal, signs its vote, verifies
  // the arriving quorum, builds its own proposal, ingests its share of
  // client requests, and sits through the quorum gathering (t_Q does not
  // overlap with useful work at saturation).
  double cpu_pipeline = t_cpu_replica_ms() +
                        (cfg_.quorum() - 1) * ms(cfg_.cpu_verify) +
                        t_cpu_propose_ms() + ingest_per_view + t_q_ms();
  if (echo_) {
    // Streamlet replicas receive and verify N-2 echoed copies of every
    // proposal on top of the original (duplicates are only recognized
    // after signature verification).
    cpu_pipeline += (n - 2.0) * (2.0 * ms(cfg_.cpu_verify) +
                                 cfg_.bsize * ms(cfg_.cpu_validate_per_tx));
  }
  // Leader egress: N-1 unicast copies of the proposal.
  double nic = (n - 1.0) * m_bits / bw * 1e3;
  if (echo_) {
    // Streamlet: every replica both echoes the proposal to everyone and
    // absorbs N-1 echoed copies on ingress; vote broadcast+echo adds
    // ~N^2 small messages per node.
    const double vote_bits = (16 + 32 + crypto::kSignatureWireBytes + 16) * 8.0;
    const double ingress = (n - 1.0) * m_bits / bw * 1e3;
    const double vote_traffic = n * (n - 1.0) * vote_bits / bw * 1e3;
    nic = std::max(nic + ingress, ingress) + vote_traffic;
  }
  return std::max(cpu_pipeline, nic);
}

double PerfModel::saturation_tps() const {
  return cfg_.bsize / (service_ms() / 1e3);
}

double PerfModel::w_q_ms(double lambda_tps) const {
  const double s_ms = service_ms();
  const double rho = lambda_tps * (s_ms / 1e3) / cfg_.bsize;
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  // w_Q = ρ / (2 u (1-ρ)) with u = 1/(N·S)   (Eq. 5)
  const double u_per_ms = 1.0 / (cfg_.n_replicas * s_ms);
  return rho / (2.0 * u_per_ms * (1.0 - rho));
}

double PerfModel::turn_wait_ms() const {
  // A transaction waits for its replica's leadership turn: on average
  // (N-1)/2 views of duration ~ the view-advance critical path.
  const double view_ms = t_cpu_propose_ms() + t_nic_block_ms() / 2.0 +
                         t_q_ms() + t_cpu_replica_ms() + t_cpu_quorum_ms();
  const double v = std::max(view_ms, service_ms());
  return (cfg_.n_replicas - 1) / 2.0 * v;
}

double PerfModel::latency_ms(double lambda_tps) const {
  const double w = w_q_ms(lambda_tps);
  if (!std::isfinite(w)) return w;
  return ms(cfg_.rtt_mean) + t_s_ms() + t_commit_ms() + w + turn_wait_ms();
}

}  // namespace bamboo::model
