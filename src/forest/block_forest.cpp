#include "forest/block_forest.h"

#include <algorithm>

namespace bamboo::forest {

using types::Block;
using types::BlockPtr;
using types::QuorumCert;

BlockForest::BlockForest() {
  BlockPtr genesis = Block::genesis();
  Vertex v;
  v.block = genesis;
  v.committed = true;
  vertices_.emplace(genesis->hash(), std::move(v));
  committed_tip_ = genesis;
  committed_hashes_.push_back(genesis->hash());
  high_qc_ = Block::genesis_qc();
  qcs_.emplace(genesis->hash(), high_qc_);
  longest_certified_ = genesis;
}

AddResult BlockForest::add(BlockPtr block) {
  if (!block) return AddResult::kInvalid;
  if (vertices_.count(block->hash()) > 0) return AddResult::kDuplicate;

  const auto parent_it = vertices_.find(block->parent_hash());
  if (parent_it == vertices_.end()) {
    auto& bucket = orphans_[block->parent_hash()];
    // Avoid unbounded duplicates in the orphan buffer.
    for (const BlockPtr& existing : bucket) {
      if (existing->hash() == block->hash()) return AddResult::kOrphaned;
    }
    bucket.push_back(std::move(block));
    return AddResult::kOrphaned;
  }

  if (block->height() != parent_it->second.block->height() + 1) {
    return AddResult::kInvalid;
  }

  connect(std::move(block));
  return AddResult::kAdded;
}

void BlockForest::connect(BlockPtr block) {
  const crypto::Digest hash = block->hash();
  vertices_[block->parent_hash()].children.push_back(hash);
  Vertex v;
  v.block = std::move(block);
  vertices_.emplace(hash, std::move(v));
  // If this block was certified before it arrived (QC travelled faster),
  // refresh the certified-tip tracking now.
  if (qcs_.count(hash) > 0) {
    const BlockPtr& b = vertices_[hash].block;
    if (!longest_certified_ ||
        b->height() > longest_certified_->height() ||
        (b->height() == longest_certified_->height() &&
         b->view() > longest_certified_->view())) {
      longest_certified_ = b;
    }
  }
  flush_orphans_of(hash);
}

void BlockForest::flush_orphans_of(const crypto::Digest& parent_hash) {
  const auto it = orphans_.find(parent_hash);
  if (it == orphans_.end()) return;
  std::vector<BlockPtr> pending = std::move(it->second);
  orphans_.erase(it);
  for (BlockPtr& orphan : pending) {
    const auto parent_it = vertices_.find(parent_hash);
    if (parent_it != vertices_.end() &&
        orphan->height() == parent_it->second.block->height() + 1 &&
        vertices_.count(orphan->hash()) == 0) {
      connect(std::move(orphan));
    }
  }
}

bool BlockForest::contains(const crypto::Digest& hash) const {
  return vertices_.count(hash) > 0;
}

BlockPtr BlockForest::get(const crypto::Digest& hash) const {
  const auto it = vertices_.find(hash);
  return it == vertices_.end() ? nullptr : it->second.block;
}

bool BlockForest::add_qc(const QuorumCert& qc) {
  const auto [it, inserted] = qcs_.emplace(qc.block_hash, qc);
  if (!inserted && qc.view > it->second.view) it->second = qc;
  // (view, slot) lexicographic freshness: slot ties only arise under
  // multi-leader elections — single-leader QCs all carry slot 0, where
  // this is exactly the legacy view comparison.
  if (qc.view > high_qc_.view ||
      (qc.view == high_qc_.view && qc.slot > high_qc_.slot)) {
    high_qc_ = qc;
  }

  const BlockPtr block = get(qc.block_hash);
  if (block && inserted) {
    if (!longest_certified_ ||
        block->height() > longest_certified_->height() ||
        (block->height() == longest_certified_->height() &&
         block->view() > longest_certified_->view())) {
      longest_certified_ = block;
    }
  }
  return inserted;
}

bool BlockForest::is_certified(const crypto::Digest& hash) const {
  return qcs_.count(hash) > 0;
}

const QuorumCert* BlockForest::qc_for(const crypto::Digest& hash) const {
  const auto it = qcs_.find(hash);
  return it == qcs_.end() ? nullptr : &it->second;
}

BlockPtr BlockForest::high_qc_block() const { return get(high_qc_.block_hash); }

bool BlockForest::extends(const crypto::Digest& descendant,
                          const crypto::Digest& ancestor) const {
  const BlockPtr anc = get(ancestor);
  if (!anc) return false;
  BlockPtr cursor = get(descendant);
  while (cursor) {
    if (cursor->hash() == ancestor) return true;
    if (cursor->height() <= anc->height()) return false;
    cursor = get(cursor->parent_hash());
  }
  return false;
}

BlockPtr BlockForest::ancestor(const BlockPtr& block, std::uint32_t k) const {
  BlockPtr cursor = block;
  for (std::uint32_t i = 0; i < k && cursor; ++i) {
    cursor = get(cursor->parent_hash());
  }
  return cursor;
}

std::vector<BlockPtr> BlockForest::children(const crypto::Digest& hash) const {
  std::vector<BlockPtr> out;
  const auto it = vertices_.find(hash);
  if (it == vertices_.end()) return out;
  out.reserve(it->second.children.size());
  for (const crypto::Digest& child : it->second.children) {
    if (const BlockPtr b = get(child)) out.push_back(b);
  }
  return out;
}

std::optional<std::vector<BlockPtr>> BlockForest::commit(
    const crypto::Digest& target) {
  const BlockPtr tip = get(target);
  if (!tip) return std::nullopt;
  if (tip->height() <= committed_tip_->height()) {
    // Already committed (or conflicts below the committed tip).
    if (committed_hash_at(tip->height()) == tip->hash()) {
      return std::vector<BlockPtr>{};
    }
    return std::nullopt;
  }

  // Walk down from the target to the committed tip, collecting the chain.
  std::vector<BlockPtr> chain;
  BlockPtr cursor = tip;
  while (cursor && cursor->height() > committed_tip_->height()) {
    chain.push_back(cursor);
    cursor = get(cursor->parent_hash());
  }
  if (!cursor || cursor->hash() != committed_tip_->hash()) {
    return std::nullopt;  // does not extend the main chain: refuse
  }
  std::reverse(chain.begin(), chain.end());
  for (const BlockPtr& b : chain) {
    vertices_[b->hash()].committed = true;
    committed_hashes_.push_back(b->hash());
  }
  committed_tip_ = tip;
  return chain;
}

std::optional<crypto::Digest> BlockForest::committed_hash_at(
    types::Height h) const {
  if (h >= committed_hashes_.size()) return std::nullopt;
  return committed_hashes_[h];
}

std::vector<BlockPtr> BlockForest::prune() {
  // Keep: the committed chain (all heights; bodies of old committed blocks
  // could move to cold storage, but the simulation keeps hashes only via
  // committed_hashes_ and may drop old vertices), plus every descendant of
  // the committed tip.
  std::vector<BlockPtr> dropped;
  // Mark descendants of the committed tip.
  std::unordered_map<crypto::Digest, bool> keep;
  keep.reserve(vertices_.size());
  std::vector<crypto::Digest> stack{committed_tip_->hash()};
  while (!stack.empty()) {
    const crypto::Digest h = stack.back();
    stack.pop_back();
    keep[h] = true;
    const auto it = vertices_.find(h);
    if (it == vertices_.end()) continue;
    for (const crypto::Digest& child : it->second.children) stack.push_back(child);
  }

  for (auto it = vertices_.begin(); it != vertices_.end();) {
    const Vertex& v = it->second;
    if (v.committed || keep.count(it->first) > 0) {
      ++it;
      continue;
    }
    dropped.push_back(v.block);
    qcs_.erase(it->first);
    it = vertices_.erase(it);
  }

  // Remove dangling child links and stale orphans below the committed tip.
  for (auto& [hash, vertex] : vertices_) {
    auto& ch = vertex.children;
    ch.erase(std::remove_if(ch.begin(), ch.end(),
                            [this](const crypto::Digest& c) {
                              return vertices_.count(c) == 0;
                            }),
             ch.end());
  }
  for (auto it = orphans_.begin(); it != orphans_.end();) {
    auto& bucket = it->second;
    bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                                [this](const BlockPtr& b) {
                                  return b->height() <=
                                         committed_tip_->height();
                                }),
                 bucket.end());
    it = bucket.empty() ? orphans_.erase(it) : std::next(it);
  }

  // The longest certified tip may have been on a dropped branch.
  if (!longest_certified_ ||
      vertices_.count(longest_certified_->hash()) == 0) {
    longest_certified_ = committed_tip_;
    for (const auto& [hash, vertex] : vertices_) {
      if (qcs_.count(hash) == 0) continue;
      const BlockPtr& b = vertex.block;
      if (b->height() > longest_certified_->height() ||
          (b->height() == longest_certified_->height() &&
           b->view() > longest_certified_->view())) {
        longest_certified_ = b;
      }
    }
  }
  return dropped;
}

std::size_t BlockForest::prune_below(types::Height horizon) {
  if (horizon > committed_tip_->height()) horizon = committed_tip_->height();
  std::size_t dropped = 0;
  for (auto it = vertices_.begin(); it != vertices_.end();) {
    const Vertex& v = it->second;
    if (!v.committed || v.block->height() >= horizon) {
      ++it;
      continue;
    }
    qcs_.erase(it->first);
    it = vertices_.erase(it);
    ++dropped;
  }
  if (dropped == 0) return 0;
  for (auto& [hash, vertex] : vertices_) {
    auto& ch = vertex.children;
    ch.erase(std::remove_if(ch.begin(), ch.end(),
                            [this](const crypto::Digest& c) {
                              return vertices_.count(c) == 0;
                            }),
             ch.end());
  }
  // The certified-tip cache cannot point below the committed tip once
  // anything was dropped below it; refresh defensively anyway.
  if (!longest_certified_ ||
      vertices_.count(longest_certified_->hash()) == 0) {
    longest_certified_ = committed_tip_;
  }
  return dropped;
}

bool BlockForest::install_snapshot(const BlockPtr& anchor,
                                   const QuorumCert& anchor_qc,
                                   const std::vector<crypto::Digest>& hashes) {
  if (!anchor || anchor_qc.block_hash != anchor->hash()) return false;
  if (anchor->height() <= committed_tip_->height()) return false;  // stale
  if (hashes.size() != anchor->height() + 1) return false;
  if (hashes.back() != anchor->hash()) return false;
  // The snapshot must agree with everything this replica already
  // committed — a mismatched prefix is a Byzantine snapshot, not a merge.
  for (std::size_t h = 0; h < committed_hashes_.size(); ++h) {
    if (hashes[h] != committed_hashes_[h]) return false;
  }

  committed_hashes_ = hashes;
  Vertex v;
  v.block = anchor;
  v.committed = true;
  auto [it, inserted] = vertices_.emplace(anchor->hash(), std::move(v));
  if (!inserted) it->second.committed = true;
  // Mark any locally present blocks on the snapshot chain committed (the
  // gap region is absent by definition, but blocks near our old tip may
  // overlap the chain).
  for (const crypto::Digest& h : committed_hashes_) {
    const auto vit = vertices_.find(h);
    if (vit != vertices_.end()) vit->second.committed = true;
  }
  committed_tip_ = anchor;
  add_qc(anchor_qc);
  if (!longest_certified_ ||
      anchor->height() > longest_certified_->height()) {
    longest_certified_ = anchor;
  }
  // Buffered children of the anchor (from concurrent chain sync or live
  // traffic) can connect now.
  flush_orphans_of(anchor->hash());
  return true;
}

BlockPtr BlockForest::longest_certified_tip() const {
  return longest_certified_ ? longest_certified_ : committed_tip_;
}

std::vector<crypto::Digest> BlockForest::missing_parents() const {
  std::vector<crypto::Digest> out;
  out.reserve(orphans_.size());
  for (const auto& [parent_hash, bucket] : orphans_) {
    if (!bucket.empty()) out.push_back(parent_hash);
  }
  return out;
}

bool BlockForest::buffered(const crypto::Digest& hash) const {
  return buffered_get(hash) != nullptr;
}

types::BlockPtr BlockForest::buffered_get(const crypto::Digest& hash) const {
  for (const auto& [parent_hash, bucket] : orphans_) {
    for (const BlockPtr& b : bucket) {
      if (b->hash() == hash) return b;
    }
  }
  return nullptr;
}

std::size_t BlockForest::orphan_count() const {
  std::size_t n = 0;
  for (const auto& [parent_hash, bucket] : orphans_) n += bucket.size();
  return n;
}

}  // namespace bamboo::forest
