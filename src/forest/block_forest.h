#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "types/block.h"
#include "types/certificates.h"

namespace bamboo::forest {

/// Result of inserting a block.
enum class AddResult {
  kAdded,      ///< inserted and connected to its parent
  kDuplicate,  ///< already present
  kOrphaned,   ///< parent unknown; buffered until the parent arrives
  kInvalid,    ///< height does not equal parent height + 1
};

/// The paper's *data* module: a height-indexed forest of blocks with a QC
/// store, orphan buffering, main-chain (committed) tracking, and pruning.
///
/// Invariants maintained:
///  * every connected vertex has height == parent height + 1;
///  * committed blocks form a single chain from genesis (the main chain);
///  * after prune(), every stored block is the committed tip, one of its
///    ancestors on the main chain, or a descendant of the committed tip.
class BlockForest {
 public:
  BlockForest();

  /// Insert a block. Orphans (parent not yet known) are buffered and
  /// connected automatically when the parent arrives; the return value for
  /// the *triggering* block is still kOrphaned in that case.
  AddResult add(types::BlockPtr block);

  [[nodiscard]] bool contains(const crypto::Digest& hash) const;
  [[nodiscard]] types::BlockPtr get(const crypto::Digest& hash) const;

  /// Record a QC. Keeps the highest-view QC reachable via high_qc().
  /// Returns true if this certifies a block for the first time.
  bool add_qc(const types::QuorumCert& qc);

  [[nodiscard]] bool is_certified(const crypto::Digest& hash) const;
  [[nodiscard]] const types::QuorumCert* qc_for(
      const crypto::Digest& hash) const;
  [[nodiscard]] const types::QuorumCert& high_qc() const { return high_qc_; }

  /// Block certified by the highest QC, if present in the forest.
  [[nodiscard]] types::BlockPtr high_qc_block() const;

  /// True if `descendant` has `ancestor` on its parent path (or equals it).
  /// Unknown hashes yield false.
  [[nodiscard]] bool extends(const crypto::Digest& descendant,
                             const crypto::Digest& ancestor) const;

  /// k-th ancestor of a block (k=0 returns the block itself); nullptr when
  /// the walk leaves the forest.
  [[nodiscard]] types::BlockPtr ancestor(const types::BlockPtr& block,
                                         std::uint32_t k) const;

  /// Direct children currently known.
  [[nodiscard]] std::vector<types::BlockPtr> children(
      const crypto::Digest& hash) const;

  /// Commit `target` and all its uncommitted ancestors. Returns the newly
  /// committed blocks in ascending height order. Returns nullopt — and
  /// commits nothing — if target does not extend the committed tip
  /// (a safety violation in the calling protocol).
  std::optional<std::vector<types::BlockPtr>> commit(
      const crypto::Digest& target);

  [[nodiscard]] types::BlockPtr committed_tip() const { return committed_tip_; }
  [[nodiscard]] types::Height committed_height() const {
    return committed_tip_->height();
  }

  /// Hash of the committed block at a height (consistency checks across
  /// replicas, paper §III-A); nullopt if not yet committed that far.
  [[nodiscard]] std::optional<crypto::Digest> committed_hash_at(
      types::Height h) const;

  /// The whole committed-hash chain, indexed by height (snapshot builds
  /// serve slices of this; never pruned, 32 bytes per committed block).
  [[nodiscard]] const std::vector<crypto::Digest>& committed_hashes() const {
    return committed_hashes_;
  }

  /// Drop every block that is not on the main chain and not a descendant of
  /// the committed tip. Returns the dropped blocks (the forked-out blocks
  /// whose transactions the replica recycles into its mempool).
  std::vector<types::BlockPtr> prune();

  /// Retention pruning (durable ledger): drop committed vertices strictly
  /// below `horizon` from the in-memory forest. Their bodies live in the
  /// replica's BlockStore; their hashes stay in committed_hashes_, so
  /// consistency checks and snapshot serving are unaffected. Returns the
  /// number of vertices dropped (these are NOT forks — their transactions
  /// committed — so they are not recycled).
  std::size_t prune_below(types::Height horizon);

  /// Snapshot install (state transfer): adopt `hashes` — the serving
  /// peer's committed-hash chain for heights [0, anchor->height()] — and
  /// `anchor` as the new committed tip, certified by `anchor_qc` (already
  /// verified by the caller through quorum::CertVerifier). Refuses (false,
  /// no change) when the snapshot is stale (anchor at or below our
  /// committed tip), internally inconsistent (length/tail mismatch), or
  /// conflicts with a hash this replica already committed.
  bool install_snapshot(const types::BlockPtr& anchor,
                        const types::QuorumCert& anchor_qc,
                        const std::vector<crypto::Digest>& hashes);

  /// Tip of the longest certified ("notarized") chain — Streamlet's
  /// proposing base. Ties break toward the higher view, then lower hash.
  [[nodiscard]] types::BlockPtr longest_certified_tip() const;

  /// Hashes whose parents are missing (targets for chain sync).
  [[nodiscard]] std::vector<crypto::Digest> missing_parents() const;

  /// True if `hash` sits in the orphan buffer: the block arrived (e.g.
  /// via a sync batch) but is not yet connected to the forest.
  [[nodiscard]] bool buffered(const crypto::Digest& hash) const;

  /// The buffered orphan with this hash, if any (pipelined sync descends
  /// through fetched-but-unconnected segments to the first real hole).
  [[nodiscard]] types::BlockPtr buffered_get(const crypto::Digest& hash) const;

  [[nodiscard]] std::size_t size() const { return vertices_.size(); }
  [[nodiscard]] std::size_t orphan_count() const;

 private:
  struct Vertex {
    types::BlockPtr block;
    std::vector<crypto::Digest> children;
    bool committed = false;
  };

  void connect(types::BlockPtr block);
  void flush_orphans_of(const crypto::Digest& parent_hash);

  std::unordered_map<crypto::Digest, Vertex> vertices_;
  std::unordered_map<crypto::Digest, types::QuorumCert> qcs_;
  std::unordered_map<crypto::Digest, std::vector<types::BlockPtr>> orphans_;
  types::QuorumCert high_qc_;
  types::BlockPtr committed_tip_;
  std::vector<crypto::Digest> committed_hashes_;  // indexed by height
  types::BlockPtr longest_certified_;
};

}  // namespace bamboo::forest
