#pragma once

// The recovery & state-sync subsystem: a per-replica chain-sync state
// machine that fetches ranges of missing certified blocks from peers.
//
// It replaces the replica's original ad-hoc request path (one
// BlockRequestMsg per missing parent, sent to a single peer, with no
// timeout — one lost response wedged recovery forever). The Syncer owns
// the whole fetch lifecycle:
//
//   request(want, from)   a hash referenced by `from` is missing locally.
//     │                   Deduped against in-flight fetches; `from`
//     ▼                   becomes the first peer asked.
//   ChainRequestMsg       chain locator: want hash + local committed
//     │                   height + batch cap (Config::sync_batch).
//     ▼
//   ChainResponseMsg      up to `batch` certified blocks, parent-first,
//     │                   ending at the requested hash. The responder
//     ▼                   walks parents from the wanted block down to the
//   apply, parent-first   requester's committed height.
//
// Outstanding requests carry a simulator timer (Config::sync_timeout):
// on expiry the fetch is retried against the NEXT peer (rotating past
// this replica and the peer that just failed), up to Config::sync_retries
// retries, after which the entry expires — a later trigger simply starts
// a fresh fetch, so message loss can delay recovery but never wedge it.
//
// Responses are validated before anything touches the forest: a response
// whose tip was never requested (or was already satisfied) is rejected
// wholesale, and the blocks must form one contiguous parent chain — a
// Byzantine peer cannot pollute the forest with unrequested or unchained
// blocks. Each accepted block is handed to the replica's ingestion hook
// (forest insert + justify-QC processing), so a fetched certified chain
// fast-paths QC application the moment it connects.
//
// Two catch-up accelerators sit on top of the serial locator walk, both
// off by default:
//
//   Pipelined sync (Config::sync_pipeline > 1). The first locator round
//   reveals the gap length (fetched bottom height minus committed
//   height). Instead of walking it one batch per round trip, the syncer
//   fans out up to `pipeline` parallel segment fetches — the same want
//   hash with ascending `skip` counts, each served `batch` blocks deeper
//   down the parent chain — so one round trip fills several segments of
//   the gap at once. Segments land in the orphan buffer and connect
//   when the bottom of the gap arrives.
//
//   Snapshot transfer (Config::snapshot_gap > 0). When the revealed gap
//   is at least `snapshot_gap` blocks, fetching every block is slower
//   than adopting a checkpoint: the syncer sends SnapshotRequestMsg and
//   the peer streams its committed-hash chain in SnapshotChunkMsg pieces
//   (snapshot_chunk payload bytes each), the final chunk carrying the
//   anchor block — its committed tip — and the QC certifying it. The
//   receiver recomputes the state root over the reassembled chain,
//   validates the anchor certificate through the replica's
//   quorum::CertVerifier hook, and only then installs the snapshot and
//   resumes chain-sync from the anchor. A tampered chunk, root, or
//   anchor rejects the whole snapshot and rotates to the next peer,
//   bounded by the same retry budget as chain fetches.
//
// With sync_batch == 1 (and both accelerators off) the protocol
// degenerates to the legacy semantics (one block per round, requested
// from the peer that revealed the hash, identical wire sizes), which
// keeps default no-loss runs byte-identical to the pre-Syncer engine.

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "forest/block_forest.h"
#include "sim/simulator.h"
#include "types/messages.h"

namespace bamboo::sync {

/// Server-side ceiling on one response, whatever batch a (possibly
/// Byzantine) requester asks for; the serve CPU cost is capped to match.
inline constexpr std::uint32_t kMaxServeBatch = 1024;

/// Counters exported per replica (summed into RunResult::sync_*).
struct SyncStats {
  std::uint64_t requests_sent = 0;  ///< ChainRequestMsg sent (incl. retries)
  std::uint64_t timeouts = 0;       ///< request timers that fired
  std::uint64_t retries = 0;        ///< timeout-driven re-requests
  std::uint64_t exhausted = 0;      ///< fetches dropped after max retries
  std::uint64_t responses_applied = 0;
  std::uint64_t responses_rejected = 0;  ///< stale / duplicate / unrequested
  std::uint64_t blocks_applied = 0;      ///< blocks accepted into the forest
  std::uint64_t blocks_rejected = 0;     ///< invalid / unchained blocks
  std::uint64_t bytes_received = 0;      ///< wire bytes of accepted responses
  std::uint64_t requests_served = 0;     ///< server side: requests answered
  std::uint64_t blocks_served = 0;       ///< server side: blocks shipped
  // --- snapshot state transfer --------------------------------------------
  std::uint64_t snapshots_requested = 0;  ///< SnapshotRequestMsg sent
  std::uint64_t snapshots_served = 0;     ///< server side: snapshots built
  std::uint64_t snapshot_chunks_received = 0;  ///< chunks accepted
  std::uint64_t snapshot_bytes_received = 0;   ///< wire bytes of those chunks
  std::uint64_t snapshots_installed = 0;  ///< snapshots adopted into forest
  std::uint64_t snapshots_rejected = 0;   ///< tampered / stale / mismatched
};

class Syncer {
 public:
  struct Settings {
    std::uint32_t batch = 1;  ///< blocks per response (Config::sync_batch)
    sim::Duration timeout = sim::milliseconds(500);
    std::uint32_t retries = 3;  ///< peer-rotating retries after first send
    /// Max parallel in-flight segment fetches per gap (Config::
    /// sync_pipeline); 1 = the legacy serial locator walk.
    std::uint32_t pipeline = 1;
    /// Gap length at which catch-up switches to snapshot transfer
    /// (Config::snapshot_gap); 0 = snapshots disabled.
    std::uint32_t snapshot_gap = 0;
    /// Committed-hash payload bytes per chunk (Config::snapshot_chunk).
    std::uint32_t snapshot_chunk = 4096;
  };

  struct Hooks {
    /// Transport: send one message to a peer.
    std::function<void(types::NodeId, types::MessagePtr)> send;
    /// Ingest one fetched block through the replica's pipeline (forest
    /// insert, justify-QC processing, pending-proposal retry). Returns
    /// the forest's verdict; kInvalid aborts the rest of the response.
    std::function<forest::AddResult(const types::BlockPtr&, types::NodeId)>
        apply_block;
    /// Verify a snapshot anchor certificate through the replica's
    /// quorum::CertVerifier (counted in certs_verified/rejected there).
    /// Unset = accept (unit rigs without a verifier).
    std::function<bool(const types::QuorumCert&)> verify_qc;
    /// Install a validated snapshot (forest::BlockForest::install_snapshot
    /// plus whatever replica-side bookkeeping rides on adoption).
    std::function<bool(const types::BlockPtr&, const types::QuorumCert&,
                       const std::vector<crypto::Digest>&)>
        install_snapshot;
  };

  Syncer(sim::Simulator& simulator, const forest::BlockForest& forest,
         Settings settings, types::NodeId id, std::uint32_t n_replicas,
         Hooks hooks);
  ~Syncer() { stop(); }
  Syncer(const Syncer&) = delete;
  Syncer& operator=(const Syncer&) = delete;

  /// Ensure a fetch for `want` is in flight. `from` (the peer whose
  /// message referenced the hash) is asked first; self/client/unknown
  /// sources and already-present or already-in-flight hashes are no-ops.
  void request(const crypto::Digest& want, types::NodeId from);

  /// Serve a peer's chain request from the local forest (no-op when the
  /// wanted block is unknown; the requester's timer handles it).
  void on_request(const types::ChainRequestMsg& req, types::NodeId from);

  /// Validate and apply a chain response (see file comment).
  void on_response(const types::ChainResponseMsg& resp, types::NodeId from);

  /// Serve a snapshot of the local committed state (see file comment).
  void on_snapshot_request(const types::SnapshotRequestMsg& req,
                           types::NodeId from);

  /// Accept one snapshot chunk; the final chunk triggers root + anchor
  /// validation and, on success, snapshot install + chain-sync resume.
  void on_snapshot_chunk(const types::SnapshotChunkMsg& chunk,
                         types::NodeId from);

  /// Cancel every outstanding timer (crash / teardown).
  void stop();

  [[nodiscard]] const SyncStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t in_flight() const { return pending_.size(); }
  [[nodiscard]] bool snapshot_in_flight() const { return snap_.active; }

  /// State root binding a committed-hash chain (SHA-256 over the
  /// concatenated hashes) — what SnapshotChunkMsg::root carries.
  [[nodiscard]] static crypto::Digest snapshot_root(
      const std::vector<crypto::Digest>& hashes);

 private:
  /// Fetches are keyed by (want hash, skip): the serial walk always uses
  /// skip 0; pipelined segment fetches share the want hash with ascending
  /// skips. std::map (not unordered) so iteration order — and thus retry
  /// scheduling — is deterministic across platforms.
  using Key = std::pair<crypto::Digest, std::uint32_t>;

  struct Pending {
    types::NodeId peer = 0;     ///< peer the live request went to
    std::uint32_t attempt = 0;  ///< 0 = first send, 1.. = retries
    sim::EventId timer = sim::kInvalidEventId;
  };

  /// One snapshot transfer in flight (at most one at a time). Chunks are
  /// collected by sequence number (links may reorder under jitter) and
  /// assembled once all `total` arrived.
  struct SnapshotSession {
    bool active = false;
    types::NodeId peer = 0;
    std::uint32_t attempt = 0;
    crypto::Digest want{};  ///< the hash whose gap triggered the transfer
    crypto::Digest root{};  ///< root announced by the first chunk
    std::uint32_t total = 0;
    std::map<std::uint32_t, std::vector<crypto::Digest>> chunks;
    types::BlockPtr anchor;
    types::QuorumCert anchor_qc;
    sim::EventId timer = sim::kInvalidEventId;
  };

  void send_request(const Key& key, Pending& pending);
  void on_timer(const Key& key);
  /// Continuation after a fetched batch that still hangs below a missing
  /// ancestor: serial walk, pipelined fan-out, or snapshot request.
  void continue_gap(const types::BlockPtr& bottom, types::NodeId from);
  void start_snapshot(const crypto::Digest& want, types::NodeId peer);
  void send_snapshot_request();
  /// Rotate to the next peer and re-request, bounded by the retry budget;
  /// on exhaustion fall back to plain chain-sync for the gap.
  void snapshot_retry();
  void snapshot_failed();
  void on_snapshot_timer();
  /// Next replica id after `prev`, skipping this replica — the rotation
  /// that routes a retry around a suspected-dead peer.
  [[nodiscard]] types::NodeId rotate_peer(types::NodeId prev) const;

  sim::Simulator& sim_;
  const forest::BlockForest& forest_;
  Settings settings_;
  types::NodeId id_;
  std::uint32_t n_replicas_;
  Hooks hooks_;
  bool stopped_ = false;
  std::map<Key, Pending> pending_;
  SnapshotSession snap_;
  SyncStats stats_;
};

}  // namespace bamboo::sync
