#pragma once

// The recovery & state-sync subsystem: a per-replica chain-sync state
// machine that fetches ranges of missing certified blocks from peers.
//
// It replaces the replica's original ad-hoc request path (one
// BlockRequestMsg per missing parent, sent to a single peer, with no
// timeout — one lost response wedged recovery forever). The Syncer owns
// the whole fetch lifecycle:
//
//   request(want, from)   a hash referenced by `from` is missing locally.
//     │                   Deduped against in-flight fetches; `from`
//     ▼                   becomes the first peer asked.
//   ChainRequestMsg       chain locator: want hash + local committed
//     │                   height + batch cap (Config::sync_batch).
//     ▼
//   ChainResponseMsg      up to `batch` certified blocks, parent-first,
//     │                   ending at the requested hash. The responder
//     ▼                   walks parents from the wanted block down to the
//   apply, parent-first   requester's committed height.
//
// Outstanding requests carry a simulator timer (Config::sync_timeout):
// on expiry the fetch is retried against the NEXT peer (rotating past
// this replica and the peer that just failed), up to Config::sync_retries
// retries, after which the entry expires — a later trigger simply starts
// a fresh fetch, so message loss can delay recovery but never wedge it.
//
// Responses are validated before anything touches the forest: a response
// whose tip was never requested (or was already satisfied) is rejected
// wholesale, and the blocks must form one contiguous parent chain — a
// Byzantine peer cannot pollute the forest with unrequested or unchained
// blocks. Each accepted block is handed to the replica's ingestion hook
// (forest insert + justify-QC processing), so a fetched certified chain
// fast-paths QC application the moment it connects.
//
// With sync_batch == 1 the protocol degenerates to the legacy semantics
// (one block per round, requested from the peer that revealed the hash,
// identical wire sizes), which keeps default no-loss runs byte-identical
// to the pre-Syncer engine.

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "forest/block_forest.h"
#include "sim/simulator.h"
#include "types/messages.h"

namespace bamboo::sync {

/// Server-side ceiling on one response, whatever batch a (possibly
/// Byzantine) requester asks for; the serve CPU cost is capped to match.
inline constexpr std::uint32_t kMaxServeBatch = 1024;

/// Counters exported per replica (summed into RunResult::sync_*).
struct SyncStats {
  std::uint64_t requests_sent = 0;  ///< ChainRequestMsg sent (incl. retries)
  std::uint64_t timeouts = 0;       ///< request timers that fired
  std::uint64_t retries = 0;        ///< timeout-driven re-requests
  std::uint64_t exhausted = 0;      ///< fetches dropped after max retries
  std::uint64_t responses_applied = 0;
  std::uint64_t responses_rejected = 0;  ///< stale / duplicate / unrequested
  std::uint64_t blocks_applied = 0;      ///< blocks accepted into the forest
  std::uint64_t blocks_rejected = 0;     ///< invalid / unchained blocks
  std::uint64_t bytes_received = 0;      ///< wire bytes of accepted responses
  std::uint64_t requests_served = 0;     ///< server side: requests answered
  std::uint64_t blocks_served = 0;       ///< server side: blocks shipped
};

class Syncer {
 public:
  struct Settings {
    std::uint32_t batch = 1;  ///< blocks per response (Config::sync_batch)
    sim::Duration timeout = sim::milliseconds(500);
    std::uint32_t retries = 3;  ///< peer-rotating retries after first send
  };

  struct Hooks {
    /// Transport: send one message to a peer.
    std::function<void(types::NodeId, types::MessagePtr)> send;
    /// Ingest one fetched block through the replica's pipeline (forest
    /// insert, justify-QC processing, pending-proposal retry). Returns
    /// the forest's verdict; kInvalid aborts the rest of the response.
    std::function<forest::AddResult(const types::BlockPtr&, types::NodeId)>
        apply_block;
  };

  Syncer(sim::Simulator& simulator, const forest::BlockForest& forest,
         Settings settings, types::NodeId id, std::uint32_t n_replicas,
         Hooks hooks);
  ~Syncer() { stop(); }
  Syncer(const Syncer&) = delete;
  Syncer& operator=(const Syncer&) = delete;

  /// Ensure a fetch for `want` is in flight. `from` (the peer whose
  /// message referenced the hash) is asked first; self/client/unknown
  /// sources and already-present or already-in-flight hashes are no-ops.
  void request(const crypto::Digest& want, types::NodeId from);

  /// Serve a peer's chain request from the local forest (no-op when the
  /// wanted block is unknown; the requester's timer handles it).
  void on_request(const types::ChainRequestMsg& req, types::NodeId from);

  /// Validate and apply a chain response (see file comment).
  void on_response(const types::ChainResponseMsg& resp, types::NodeId from);

  /// Cancel every outstanding timer (crash / teardown).
  void stop();

  [[nodiscard]] const SyncStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t in_flight() const { return pending_.size(); }

 private:
  struct Pending {
    types::NodeId peer = 0;     ///< peer the live request went to
    std::uint32_t attempt = 0;  ///< 0 = first send, 1.. = retries
    sim::EventId timer = sim::kInvalidEventId;
  };

  void send_request(const crypto::Digest& want, Pending& pending);
  void on_timer(const crypto::Digest& want);
  /// Next replica id after `prev`, skipping this replica — the rotation
  /// that routes a retry around a suspected-dead peer.
  [[nodiscard]] types::NodeId rotate_peer(types::NodeId prev) const;

  sim::Simulator& sim_;
  const forest::BlockForest& forest_;
  Settings settings_;
  types::NodeId id_;
  std::uint32_t n_replicas_;
  Hooks hooks_;
  bool stopped_ = false;
  std::unordered_map<crypto::Digest, Pending> pending_;
  SyncStats stats_;
};

}  // namespace bamboo::sync
