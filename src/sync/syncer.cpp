#include "sync/syncer.h"

#include <algorithm>

namespace bamboo::sync {

Syncer::Syncer(sim::Simulator& simulator, const forest::BlockForest& forest,
               Settings settings, types::NodeId id, std::uint32_t n_replicas,
               Hooks hooks)
    : sim_(simulator),
      forest_(forest),
      settings_(settings),
      id_(id),
      n_replicas_(n_replicas),
      hooks_(std::move(hooks)) {
  if (settings_.batch == 0) settings_.batch = 1;
}

void Syncer::stop() {
  stopped_ = true;
  for (auto& [want, pending] : pending_) {
    if (pending.timer != sim::kInvalidEventId) sim_.cancel(pending.timer);
  }
  pending_.clear();
}

types::NodeId Syncer::rotate_peer(types::NodeId prev) const {
  types::NodeId next = (prev + 1) % n_replicas_;
  if (next == id_) next = (next + 1) % n_replicas_;
  return next;
}

void Syncer::send_request(const crypto::Digest& want, Pending& pending) {
  types::ChainRequestMsg req;
  req.want_hash = want;
  req.committed_height = forest_.committed_height();
  req.batch = settings_.batch;
  ++stats_.requests_sent;
  pending.timer = sim_.schedule_after(settings_.timeout,
                                      [this, want] { on_timer(want); });
  hooks_.send(pending.peer, types::make_message(std::move(req)));
}

void Syncer::request(const crypto::Digest& want, types::NodeId from) {
  if (stopped_ || from == id_ || from >= n_replicas_) return;
  if (forest_.contains(want)) return;
  if (pending_.count(want) > 0) return;  // dedupe in-flight fetches
  Pending pending;
  pending.peer = from;
  send_request(want, pending);
  pending_.emplace(want, pending);
}

void Syncer::on_timer(const crypto::Digest& want) {
  const auto it = pending_.find(want);
  if (it == pending_.end()) return;
  ++stats_.timeouts;
  it->second.timer = sim::kInvalidEventId;
  if (forest_.contains(want) || forest_.buffered(want)) {
    // Connected via another path, or the block itself already arrived and
    // waits in the orphan buffer for its ancestors (which have their own
    // fetches): re-fetching bytes we hold is pointless.
    pending_.erase(it);
    return;
  }
  if (it->second.attempt >= settings_.retries) {
    // Expire the entry: a later trigger starts a fresh fetch instead of
    // being deduped against a fetch that will never complete.
    ++stats_.exhausted;
    pending_.erase(it);
    return;
  }
  ++it->second.attempt;
  ++stats_.retries;
  it->second.peer = rotate_peer(it->second.peer);
  send_request(want, it->second);
}

void Syncer::on_request(const types::ChainRequestMsg& req,
                        types::NodeId from) {
  if (stopped_ || from == id_ || from >= n_replicas_) return;
  const types::BlockPtr tip = forest_.get(req.want_hash);
  if (!tip) return;

  // Walk parents from the wanted block down to the requester's committed
  // height, newest first, then reverse to parent-first order.
  const std::uint32_t batch =
      std::min(std::max<std::uint32_t>(req.batch, 1), kMaxServeBatch);
  types::ChainResponseMsg resp;
  resp.blocks.push_back(tip);
  types::BlockPtr cursor = tip;
  while (resp.blocks.size() < batch) {
    const types::BlockPtr parent = forest_.get(cursor->parent_hash());
    if (!parent || parent->height() <= req.committed_height) break;
    resp.blocks.push_back(parent);
    cursor = parent;
  }
  std::reverse(resp.blocks.begin(), resp.blocks.end());

  ++stats_.requests_served;
  stats_.blocks_served += resp.blocks.size();
  hooks_.send(from, types::make_message(std::move(resp)));
}

void Syncer::on_response(const types::ChainResponseMsg& resp,
                         types::NodeId from) {
  if (stopped_) return;
  if (resp.blocks.empty() || !resp.blocks.back() ||
      resp.blocks.size() > settings_.batch) {
    // Empty, or more blocks than the locator asked for — an honest peer
    // never exceeds the requested batch cap.
    ++stats_.responses_rejected;
    return;
  }
  const crypto::Digest want = resp.blocks.back()->hash();
  const auto it = pending_.find(want);
  if (it == pending_.end()) {
    // Stale (already satisfied or expired) or never requested at all: a
    // Byzantine peer cannot push blocks we did not ask for.
    ++stats_.responses_rejected;
    return;
  }
  // The batch must be one contiguous parent chain ending at the wanted
  // hash; anything else is rejected wholesale before touching the forest.
  for (std::size_t i = 0; i < resp.blocks.size(); ++i) {
    if (!resp.blocks[i] ||
        (i > 0 &&
         resp.blocks[i]->parent_hash() != resp.blocks[i - 1]->hash())) {
      ++stats_.responses_rejected;
      stats_.blocks_rejected += resp.blocks.size();
      return;
    }
  }

  if (it->second.timer != sim::kInvalidEventId) {
    sim_.cancel(it->second.timer);
    it->second.timer = sim::kInvalidEventId;
  }
  ++stats_.responses_applied;
  stats_.bytes_received += types::wire_size(types::Message(resp));

  for (const types::BlockPtr& block : resp.blocks) {
    const forest::AddResult result = hooks_.apply_block(block, from);
    if (result == forest::AddResult::kInvalid) {
      ++stats_.blocks_rejected;
      pending_.erase(want);
      return;  // no forest pollution: drop the rest of the batch
    }
    // A fetched block counts as applied whether it connected immediately
    // or was buffered for the deeper range still in flight (kOrphaned);
    // only duplicate deliveries don't count.
    if (result == forest::AddResult::kAdded ||
        result == forest::AddResult::kOrphaned) {
      ++stats_.blocks_applied;
    }
  }

  // Drop every fetch this batch satisfied — including entries for other
  // hashes the orphan flush just connected transitively.
  std::erase_if(pending_, [this](auto& entry) {
    if (!forest_.contains(entry.first)) return false;
    if (entry.second.timer != sim::kInvalidEventId) {
      sim_.cancel(entry.second.timer);
    }
    return true;
  });
  if (forest_.contains(want)) return;
  // The whole batch hangs below a still-missing ancestor. Keep the entry
  // (it dedupes further triggers for `want` while the gap persists — the
  // legacy semantics), re-arm its timer so a stalled continuation still
  // expires, and continue the fetch from the same peer, one chain
  // locator per round.
  const auto kept = pending_.find(want);
  if (kept != pending_.end()) {
    kept->second.timer = sim_.schedule_after(settings_.timeout,
                                             [this, want] { on_timer(want); });
  }
  request(resp.blocks.front()->parent_hash(), from);
}

}  // namespace bamboo::sync
