#include "sync/syncer.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace bamboo::sync {

Syncer::Syncer(sim::Simulator& simulator, const forest::BlockForest& forest,
               Settings settings, types::NodeId id, std::uint32_t n_replicas,
               Hooks hooks)
    : sim_(simulator),
      forest_(forest),
      settings_(settings),
      id_(id),
      n_replicas_(n_replicas),
      hooks_(std::move(hooks)) {
  if (settings_.batch == 0) settings_.batch = 1;
  if (settings_.pipeline == 0) settings_.pipeline = 1;
  if (settings_.snapshot_chunk < 32) settings_.snapshot_chunk = 32;
}

void Syncer::stop() {
  stopped_ = true;
  for (auto& [key, pending] : pending_) {
    if (pending.timer != sim::kInvalidEventId) sim_.cancel(pending.timer);
  }
  pending_.clear();
  if (snap_.timer != sim::kInvalidEventId) sim_.cancel(snap_.timer);
  snap_ = SnapshotSession{};
}

types::NodeId Syncer::rotate_peer(types::NodeId prev) const {
  types::NodeId next = (prev + 1) % n_replicas_;
  if (next == id_) next = (next + 1) % n_replicas_;
  return next;
}

crypto::Digest Syncer::snapshot_root(
    const std::vector<crypto::Digest>& hashes) {
  crypto::Sha256 h;
  for (const crypto::Digest& d : hashes) {
    h.update(std::span<const std::uint8_t>(d.data(), d.size()));
  }
  return h.finish();
}

void Syncer::send_request(const Key& key, Pending& pending) {
  types::ChainRequestMsg req;
  req.want_hash = key.first;
  req.committed_height = forest_.committed_height();
  req.batch = settings_.batch;
  req.skip = key.second;
  ++stats_.requests_sent;
  pending.timer = sim_.schedule_after(settings_.timeout,
                                      [this, key] { on_timer(key); });
  hooks_.send(pending.peer, types::make_message(std::move(req)));
}

void Syncer::request(const crypto::Digest& want, types::NodeId from) {
  if (stopped_ || from == id_ || from >= n_replicas_) return;
  if (forest_.contains(want)) return;
  // Pipelined mode already fetched buffered blocks as gap segments;
  // re-fetching bytes sitting in the orphan buffer is pointless. (Gated
  // so the legacy serial schedule stays byte-identical.)
  if (settings_.pipeline > 1 && forest_.buffered(want)) return;
  const Key key{want, 0};
  if (pending_.count(key) > 0) return;  // dedupe in-flight fetches
  Pending pending;
  pending.peer = from;
  send_request(key, pending);
  pending_.emplace(key, pending);
}

void Syncer::on_timer(const Key& key) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;
  ++stats_.timeouts;
  it->second.timer = sim::kInvalidEventId;
  if (forest_.contains(key.first) ||
      (key.second == 0 && forest_.buffered(key.first))) {
    // Connected via another path, or the block itself already arrived and
    // waits in the orphan buffer for its ancestors (which have their own
    // fetches): re-fetching bytes we hold is pointless. (A mid-gap
    // segment — skip > 0 — is only provably satisfied once the want hash
    // connects, which pulls its whole ancestor chain in.)
    pending_.erase(it);
    return;
  }
  if (it->second.attempt >= settings_.retries) {
    // Expire the entry: a later trigger starts a fresh fetch instead of
    // being deduped against a fetch that will never complete.
    ++stats_.exhausted;
    pending_.erase(it);
    return;
  }
  ++it->second.attempt;
  ++stats_.retries;
  it->second.peer = rotate_peer(it->second.peer);
  send_request(key, it->second);
}

void Syncer::on_request(const types::ChainRequestMsg& req,
                        types::NodeId from) {
  if (stopped_ || from == id_ || from >= n_replicas_) return;
  const types::BlockPtr tip = forest_.get(req.want_hash);
  if (!tip) return;

  // Pipelined segments: walk `skip` ancestors below the wanted block
  // before serving (each in-flight segment of a long gap lands `batch`
  // blocks deeper down the parent chain).
  types::BlockPtr top = tip;
  for (std::uint32_t i = 0; i < req.skip && top; ++i) {
    top = forest_.get(top->parent_hash());
  }
  if (!top || top->height() <= req.committed_height) return;

  // Walk parents from the segment top down to the requester's committed
  // height, newest first, then reverse to parent-first order.
  const std::uint32_t batch =
      std::min(std::max<std::uint32_t>(req.batch, 1), kMaxServeBatch);
  types::ChainResponseMsg resp;
  resp.blocks.push_back(top);
  types::BlockPtr cursor = top;
  while (resp.blocks.size() < batch) {
    const types::BlockPtr parent = forest_.get(cursor->parent_hash());
    if (!parent || parent->height() <= req.committed_height) break;
    resp.blocks.push_back(parent);
    cursor = parent;
  }
  std::reverse(resp.blocks.begin(), resp.blocks.end());
  if (req.skip > 0) {
    // Echo the segment coordinates so the requester can match a response
    // whose top block is not the wanted hash itself.
    resp.want_hash = req.want_hash;
    resp.skip = req.skip;
  }

  ++stats_.requests_served;
  stats_.blocks_served += resp.blocks.size();
  hooks_.send(from, types::make_message(std::move(resp)));
}

void Syncer::on_response(const types::ChainResponseMsg& resp,
                         types::NodeId from) {
  if (stopped_) return;
  if (resp.blocks.empty() || !resp.blocks.back() ||
      resp.blocks.size() > settings_.batch) {
    // Empty, or more blocks than the locator asked for — an honest peer
    // never exceeds the requested batch cap.
    ++stats_.responses_rejected;
    return;
  }
  const Key key = resp.skip > 0 ? Key{resp.want_hash, resp.skip}
                                : Key{resp.blocks.back()->hash(), 0};
  const auto it = pending_.find(key);
  if (it == pending_.end()) {
    // Stale (already satisfied or expired) or never requested at all: a
    // Byzantine peer cannot push blocks we did not ask for.
    ++stats_.responses_rejected;
    return;
  }
  // The batch must be one contiguous parent chain ending at the wanted
  // hash; anything else is rejected wholesale before touching the forest.
  for (std::size_t i = 0; i < resp.blocks.size(); ++i) {
    if (!resp.blocks[i] ||
        (i > 0 &&
         resp.blocks[i]->parent_hash() != resp.blocks[i - 1]->hash())) {
      ++stats_.responses_rejected;
      stats_.blocks_rejected += resp.blocks.size();
      return;
    }
  }

  if (it->second.timer != sim::kInvalidEventId) {
    sim_.cancel(it->second.timer);
    it->second.timer = sim::kInvalidEventId;
  }
  ++stats_.responses_applied;
  stats_.bytes_received += types::wire_size(types::Message(resp));

  for (const types::BlockPtr& block : resp.blocks) {
    const forest::AddResult result = hooks_.apply_block(block, from);
    if (result == forest::AddResult::kInvalid) {
      ++stats_.blocks_rejected;
      pending_.erase(key);
      return;  // no forest pollution: drop the rest of the batch
    }
    // A fetched block counts as applied whether it connected immediately
    // or was buffered for the deeper range still in flight (kOrphaned);
    // only duplicate deliveries don't count.
    if (result == forest::AddResult::kAdded ||
        result == forest::AddResult::kOrphaned) {
      ++stats_.blocks_applied;
    }
  }
  // A mid-gap segment is complete once its one response was applied; the
  // serial entry below owns the continuation.
  if (key.second > 0) pending_.erase(key);

  // Drop every fetch this batch satisfied — including entries for other
  // hashes the orphan flush just connected transitively.
  std::erase_if(pending_, [this](auto& entry) {
    if (!forest_.contains(entry.first.first)) return false;
    if (entry.second.timer != sim::kInvalidEventId) {
      sim_.cancel(entry.second.timer);
    }
    return true;
  });
  if (key.second > 0) return;
  const crypto::Digest& want = key.first;
  if (forest_.contains(want)) return;
  // The whole batch hangs below a still-missing ancestor. Keep the entry
  // (it dedupes further triggers for `want` while the gap persists — the
  // legacy semantics), re-arm its timer so a stalled continuation still
  // expires, and continue the fetch: serially from the same peer, one
  // chain locator per round — or, with the accelerators on, a pipelined
  // fan-out / snapshot transfer sized to the now-known gap.
  const auto kept = pending_.find(key);
  if (kept != pending_.end()) {
    kept->second.timer = sim_.schedule_after(
        settings_.timeout, [this, key] { on_timer(key); });
  }
  continue_gap(resp.blocks.front(), from);
}

void Syncer::continue_gap(const types::BlockPtr& bottom, types::NodeId from) {
  crypto::Digest next = bottom->parent_hash();
  types::Height above = bottom->height();
  if (settings_.pipeline > 1) {
    // Segments fetched in earlier rounds sit in the orphan buffer: descend
    // through the contiguous buffered prefix so the serial continuation
    // targets the first ancestor actually missing — otherwise the walk
    // would stall on a hash we already hold and the gap would only close
    // when fresh protocol traffic re-triggered it.
    while (const types::BlockPtr held = forest_.buffered_get(next)) {
      next = held->parent_hash();
      above = held->height();
    }
  }
  const types::Height committed = forest_.committed_height();
  const std::uint64_t gap =
      above > committed + 1 ? above - 1 - committed : 0;

  if (settings_.snapshot_gap > 0 && !snap_.active &&
      gap >= settings_.snapshot_gap) {
    start_snapshot(next, from);
    return;
  }

  request(next, from);

  if (settings_.pipeline > 1 && gap > settings_.batch) {
    // Fan out parallel segment fetches across the rest of the gap,
    // rotating peers so one slow server cannot serialize the pipeline.
    // Bounded by the retry budget's spirit: at most `pipeline` segments
    // in flight for this gap.
    const std::uint64_t segments =
        (gap + settings_.batch - 1) / settings_.batch;
    const std::uint32_t fan = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(segments, settings_.pipeline));
    types::NodeId peer = from;
    for (std::uint32_t i = 1; i < fan; ++i) {
      const Key key{next, i * settings_.batch};
      if (pending_.count(key) > 0) continue;
      Pending pending;
      pending.peer = peer;
      send_request(key, pending);
      pending_.emplace(key, pending);
      peer = rotate_peer(peer);
    }
  }
}

// --- snapshot state transfer ------------------------------------------------

void Syncer::start_snapshot(const crypto::Digest& want, types::NodeId peer) {
  snap_ = SnapshotSession{};
  snap_.active = true;
  snap_.peer = peer;
  snap_.want = want;
  send_snapshot_request();
}

void Syncer::send_snapshot_request() {
  snap_.root = crypto::Digest{};
  snap_.total = 0;
  snap_.chunks.clear();
  snap_.anchor = nullptr;
  snap_.anchor_qc = types::QuorumCert{};
  types::SnapshotRequestMsg req;
  req.want_hash = snap_.want;
  req.committed_height = forest_.committed_height();
  ++stats_.snapshots_requested;
  snap_.timer = sim_.schedule_after(settings_.timeout,
                                    [this] { on_snapshot_timer(); });
  hooks_.send(snap_.peer, types::make_message(req));
}

void Syncer::snapshot_retry() {
  if (snap_.timer != sim::kInvalidEventId) {
    sim_.cancel(snap_.timer);
    snap_.timer = sim::kInvalidEventId;
  }
  if (snap_.attempt >= settings_.retries) {
    // Exhausted: fall back to plain chain-sync for the gap so recovery
    // degrades to the slow path instead of wedging.
    const crypto::Digest want = snap_.want;
    const types::NodeId peer = rotate_peer(snap_.peer);
    snap_ = SnapshotSession{};
    request(want, peer);
    return;
  }
  ++snap_.attempt;
  ++stats_.retries;
  snap_.peer = rotate_peer(snap_.peer);
  send_snapshot_request();
}

void Syncer::snapshot_failed() {
  ++stats_.snapshots_rejected;
  snapshot_retry();
}

void Syncer::on_snapshot_timer() {
  if (!snap_.active) return;
  snap_.timer = sim::kInvalidEventId;
  ++stats_.timeouts;
  snapshot_retry();
}

void Syncer::on_snapshot_request(const types::SnapshotRequestMsg& req,
                                 types::NodeId from) {
  if (stopped_ || from == id_ || from >= n_replicas_) return;
  const types::BlockPtr anchor = forest_.committed_tip();
  if (!anchor || anchor->height() <= req.committed_height) return;
  const types::QuorumCert* qc = forest_.qc_for(anchor->hash());
  if (qc == nullptr) return;  // tip not certified here; requester retries

  const std::vector<crypto::Digest>& chain = forest_.committed_hashes();
  const std::size_t count = std::min<std::size_t>(
      chain.size(), static_cast<std::size_t>(anchor->height()) + 1);
  const std::vector<crypto::Digest> hashes(chain.begin(),
                                           chain.begin() + count);
  if (hashes.empty() || hashes.back() != anchor->hash()) return;

  const crypto::Digest root = snapshot_root(hashes);
  const std::uint32_t per_chunk =
      std::max<std::uint32_t>(settings_.snapshot_chunk / 32, 1);
  const std::uint32_t total = static_cast<std::uint32_t>(
      (hashes.size() + per_chunk - 1) / per_chunk);

  ++stats_.snapshots_served;
  for (std::uint32_t seq = 0; seq < total; ++seq) {
    types::SnapshotChunkMsg chunk;
    chunk.seq = seq;
    chunk.total = total;
    chunk.root = root;
    chunk.base_height = static_cast<types::Height>(seq) * per_chunk;
    const std::size_t begin = static_cast<std::size_t>(seq) * per_chunk;
    const std::size_t end =
        std::min<std::size_t>(begin + per_chunk, hashes.size());
    chunk.hashes.assign(hashes.begin() + begin, hashes.begin() + end);
    if (seq + 1 == total) {
      chunk.anchor = anchor;
      chunk.anchor_qc = *qc;
    }
    hooks_.send(from, types::make_message(std::move(chunk)));
  }
}

void Syncer::on_snapshot_chunk(const types::SnapshotChunkMsg& chunk,
                               types::NodeId from) {
  if (stopped_) return;
  if (!snap_.active || from != snap_.peer) {
    // Unsolicited chunk — a peer cannot push us a snapshot we did not
    // request (or one from a session already rotated away from).
    ++stats_.responses_rejected;
    return;
  }
  // Self-description checks: a chunk that disagrees with the session's
  // announced (root, total) — or is malformed — fails the whole transfer
  // and rotates to the next peer.
  if (chunk.total == 0 || chunk.seq >= chunk.total || chunk.hashes.empty()) {
    snapshot_failed();
    return;
  }
  if (snap_.total == 0) {
    snap_.total = chunk.total;
    snap_.root = chunk.root;
  } else if (chunk.total != snap_.total || chunk.root != snap_.root) {
    snapshot_failed();
    return;
  }
  if (snap_.chunks.contains(chunk.seq)) return;  // duplicate delivery
  snap_.chunks.emplace(chunk.seq, chunk.hashes);
  if (chunk.anchor) {
    snap_.anchor = chunk.anchor;
    snap_.anchor_qc = chunk.anchor_qc;
  }
  ++stats_.snapshot_chunks_received;
  stats_.snapshot_bytes_received +=
      types::wire_size(types::Message(chunk));
  // Progress re-arms the transfer timer (a large snapshot is many NIC-
  // serialized chunks; per-chunk progress is the liveness signal).
  if (snap_.timer != sim::kInvalidEventId) sim_.cancel(snap_.timer);
  snap_.timer = sim_.schedule_after(settings_.timeout,
                                    [this] { on_snapshot_timer(); });
  if (static_cast<std::uint32_t>(snap_.chunks.size()) < snap_.total) return;

  // All chunks arrived: assemble in sequence order and validate the whole
  // snapshot before anything touches the forest.
  std::vector<crypto::Digest> hashes;
  for (const auto& [seq, slice] : snap_.chunks) {
    hashes.insert(hashes.end(), slice.begin(), slice.end());
  }
  const bool shape_ok =
      snap_.anchor && snap_.anchor_qc.block_hash == snap_.anchor->hash() &&
      hashes.size() == snap_.anchor->height() + 1 &&
      hashes.back() == snap_.anchor->hash() &&
      snapshot_root(hashes) == snap_.root;
  const bool anchor_ok =
      shape_ok && (!hooks_.verify_qc || hooks_.verify_qc(snap_.anchor_qc));
  const bool installed =
      anchor_ok && hooks_.install_snapshot &&
      hooks_.install_snapshot(snap_.anchor, snap_.anchor_qc, hashes);
  if (!installed) {
    snapshot_failed();
    return;
  }
  ++stats_.snapshots_installed;
  if (snap_.timer != sim::kInvalidEventId) sim_.cancel(snap_.timer);
  const crypto::Digest want = snap_.want;
  snap_ = SnapshotSession{};
  // The committed height just jumped past every in-flight fetch; clear
  // them and resume plain chain-sync for the hash that exposed the gap.
  for (auto& [key, pending] : pending_) {
    if (pending.timer != sim::kInvalidEventId) sim_.cancel(pending.timer);
  }
  pending_.clear();
  request(want, from);
}

}  // namespace bamboo::sync
