#include "pacemaker/pacemaker.h"

#include <cmath>

namespace bamboo::pacemaker {

void Pacemaker::start(types::View initial_view) {
  running_ = true;
  view_ = initial_view;
  arm_timer();
  if (callbacks_.on_enter_view) {
    callbacks_.on_enter_view(view_, AdvanceReason::kInitial);
  }
}

void Pacemaker::stop() {
  running_ = false;
  cancel_timer();
}

void Pacemaker::on_qc(types::View qc_view) {
  if (!running_) return;
  consecutive_timeouts_ = 0;
  if (qc_view + 1 > view_) {
    ++views_via_qc_;
    advance_to(qc_view + 1, AdvanceReason::kQuorumCert);
  }
}

void Pacemaker::on_tc(types::View tc_view) {
  if (!running_) return;
  if (tc_view + 1 > view_) {
    ++views_via_tc_;
    advance_to(tc_view + 1, AdvanceReason::kTimeoutCert);
  }
}

void Pacemaker::join_timeout(types::View view) {
  if (!running_ || view < view_) return;
  // Fire our own timeout for that view immediately.
  if (view > view_) {
    // We lag: jump our view forward so the timeout we broadcast matches the
    // cluster's. Entering the view proper still requires a QC/TC.
    view_ = view;
    arm_timer();
  }
  local_timeout();
}

void Pacemaker::advance_to(types::View view, AdvanceReason reason) {
  view_ = view;
  arm_timer();
  if (callbacks_.on_enter_view) callbacks_.on_enter_view(view_, reason);
}

sim::Duration Pacemaker::current_timeout() const {
  double t = static_cast<double>(settings_.base_timeout);
  if (settings_.backoff > 1.0 && consecutive_timeouts_ > 0) {
    t *= std::pow(settings_.backoff,
                  static_cast<double>(consecutive_timeouts_));
  }
  const auto d = static_cast<sim::Duration>(t);
  return d > settings_.max_timeout ? settings_.max_timeout : d;
}

void Pacemaker::arm_timer() {
  cancel_timer();
  if (!running_) return;
  timer_ = sim_.schedule_after(current_timeout(), [this] {
    timer_ = sim::kInvalidEventId;
    local_timeout();
  });
}

void Pacemaker::cancel_timer() {
  if (timer_ != sim::kInvalidEventId) {
    sim_.cancel(timer_);
    timer_ = sim::kInvalidEventId;
  }
}

void Pacemaker::local_timeout() {
  if (!running_) return;
  ++timeouts_fired_;
  ++consecutive_timeouts_;
  if (callbacks_.broadcast_timeout) callbacks_.broadcast_timeout(view_);
  // Stay in the view; re-arm so we re-broadcast the timeout if the cluster
  // stays stuck (lost messages, lagging peers).
  arm_timer();
}

}  // namespace bamboo::pacemaker
