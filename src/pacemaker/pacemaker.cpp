#include "pacemaker/pacemaker.h"

#include <cmath>

namespace bamboo::pacemaker {

void Pacemaker::start(types::View initial_view) {
  running_ = true;
  view_ = initial_view;
  arm_timer();
  if (callbacks_.on_enter_view) {
    callbacks_.on_enter_view(view_, AdvanceReason::kInitial);
  }
}

void Pacemaker::stop() {
  running_ = false;
  cancel_timer();
}

void Pacemaker::on_qc(types::View qc_view) {
  if (!running_) return;
  consecutive_timeouts_ = 0;
  if (qc_view + 1 > view_) {
    ++views_via_qc_;
    advance_to(qc_view + 1, AdvanceReason::kQuorumCert);
  }
}

void Pacemaker::on_slot_qc(types::View view, types::Slot slot) {
  if (!running_ || view < view_) return;
  consecutive_timeouts_ = 0;
  if (view > view_) {
    // We lag the cluster: a mid-view QC proves `view` is live, so join it
    // (advance INTO the view, not past it — only the final slot's QC or a
    // TC moves the cluster on).
    ++views_via_qc_;
    advance_to(view, AdvanceReason::kQuorumCert);
  }
  // Slots up to `slot` have demonstrably made progress; their timers are
  // no longer needed.
  for (types::Slot s = 0; s <= slot && s < slot_timers_.size(); ++s) {
    if (slot_timers_[s] != sim::kInvalidEventId) {
      sim_.cancel(slot_timers_[s]);
      slot_timers_[s] = sim::kInvalidEventId;
    }
  }
  // Re-anchor the later slots' deadlines to *this* progress point: slot j
  // now gets (j - slot) timeout windows from the freshest QC instead of
  // (j + 1) from view entry. Without this, a Byzantine final-slot leader
  // makes every view of its epoch burn width x base_timeout even though
  // the first width-1 slots certified within milliseconds.
  const auto base = current_timeout();
  for (types::Slot j = slot + 1; j < slot_timers_.size(); ++j) {
    if (slot_timers_[j] == sim::kInvalidEventId) continue;
    sim_.cancel(slot_timers_[j]);
    slot_timers_[j] = sim_.schedule_after(
        base * static_cast<sim::Duration>(j - slot), [this, j] {
          slot_timers_[j] = sim::kInvalidEventId;
          ++slot_timeouts_;
          local_timeout();
        });
  }
  if (slot + 1 > next_expected_slot_) next_expected_slot_ = slot + 1;
  arm_stuck_probe();
}

void Pacemaker::on_tc(types::View tc_view) {
  if (!running_) return;
  if (tc_view + 1 > view_) {
    ++views_via_tc_;
    advance_to(tc_view + 1, AdvanceReason::kTimeoutCert);
  }
}

void Pacemaker::join_timeout(types::View view) {
  if (!running_ || view < view_) return;
  // Fire our own timeout for that view immediately.
  if (view > view_) {
    // We lag: jump our view forward so the timeout we broadcast matches the
    // cluster's. Entering the view proper still requires a QC/TC.
    view_ = view;
    arm_timer();
  }
  local_timeout();
}

void Pacemaker::advance_to(types::View view, AdvanceReason reason) {
  view_ = view;
  next_expected_slot_ = 0;
  arm_timer();
  if (callbacks_.on_enter_view) callbacks_.on_enter_view(view_, reason);
}

sim::Duration Pacemaker::current_timeout() const {
  double t = static_cast<double>(settings_.base_timeout);
  if (settings_.backoff > 1.0 && consecutive_timeouts_ > 0) {
    t *= std::pow(settings_.backoff,
                  static_cast<double>(consecutive_timeouts_));
  }
  const auto d = static_cast<sim::Duration>(t);
  return d > settings_.max_timeout ? settings_.max_timeout : d;
}

void Pacemaker::arm_timer() {
  cancel_timer();
  if (!running_) return;
  if (settings_.slots <= 1) {
    timer_ = sim_.schedule_after(current_timeout(), [this] {
      timer_ = sim::kInvalidEventId;
      local_timeout();
    });
    return;
  }
  // Multi-leader: slot s is expected to show a QC within (s+1) view
  // timeouts of view entry. The earliest still-armed timer that fires
  // times the whole view out (local_timeout re-arms the full set with
  // backoff, exactly like the legacy re-broadcast loop).
  const auto base = current_timeout();
  slot_timers_.assign(settings_.slots, sim::kInvalidEventId);
  for (types::Slot s = 0; s < settings_.slots; ++s) {
    slot_timers_[s] = sim_.schedule_after(
        base * static_cast<sim::Duration>(s + 1), [this, s] {
          slot_timers_[s] = sim::kInvalidEventId;
          ++slot_timeouts_;
          local_timeout();
        });
  }
  arm_stuck_probe();
}

void Pacemaker::arm_stuck_probe() {
  if (stuck_timer_ != sim::kInvalidEventId) {
    sim_.cancel(stuck_timer_);
    stuck_timer_ = sim::kInvalidEventId;
  }
  if (!running_ || settings_.slots <= 1 || !callbacks_.on_slot_stuck) return;
  // No successor exists past the final slot; its stall is the view-closing
  // timeout's to handle.
  if (next_expected_slot_ + 1 >= settings_.slots) return;
  stuck_timer_ = sim_.schedule_after(
      current_timeout() / 2, [this, slot = next_expected_slot_] {
        stuck_timer_ = sim::kInvalidEventId;
        callbacks_.on_slot_stuck(view_, slot);
      });
}

void Pacemaker::cancel_timer() {
  if (timer_ != sim::kInvalidEventId) {
    sim_.cancel(timer_);
    timer_ = sim::kInvalidEventId;
  }
  for (sim::EventId& t : slot_timers_) {
    if (t != sim::kInvalidEventId) {
      sim_.cancel(t);
      t = sim::kInvalidEventId;
    }
  }
  slot_timers_.clear();
  if (stuck_timer_ != sim::kInvalidEventId) {
    sim_.cancel(stuck_timer_);
    stuck_timer_ = sim::kInvalidEventId;
  }
}

void Pacemaker::local_timeout() {
  if (!running_) return;
  ++timeouts_fired_;
  ++consecutive_timeouts_;
  if (callbacks_.broadcast_timeout) callbacks_.broadcast_timeout(view_);
  // Stay in the view; re-arm so we re-broadcast the timeout if the cluster
  // stays stuck (lost messages, lagging peers).
  arm_timer();
}

}  // namespace bamboo::pacemaker
