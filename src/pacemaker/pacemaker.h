#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/simulator.h"
#include "types/certificates.h"
#include "types/ids.h"

namespace bamboo::pacemaker {

/// Why a view was entered — drives the proposing mode (responsive protocols
/// propose immediately after a timeout view-change; non-responsive ones wait
/// Δ to hear from all honest replicas, paper §II-C / §VI-D).
enum class AdvanceReason { kInitial, kQuorumCert, kTimeoutCert };

/// The paper's Pacemaker module (§III-B), after LibraBFT: keeps enough
/// honest replicas in the same view for long enough to make progress.
/// On local timeout it asks the replica to broadcast ⟨TIMEOUT, v⟩; the
/// replica aggregates 2f+1 of them into a TC and calls on_tc(). Catch-up
/// happens via on_qc()/on_tc() from any received message.
///
/// The pacemaker owns only timers and the current view; signing,
/// aggregation, and transport live in the replica.
class Pacemaker {
 public:
  struct Settings {
    sim::Duration base_timeout = sim::milliseconds(100);
    double backoff = 1.0;  ///< multiplier per consecutive timeout (>= 1)
    sim::Duration max_timeout = sim::seconds(10);
    /// Proposal slots per view (election width). 1 keeps the legacy
    /// single-timer pacemaker byte-identical; > 1 arms one timer per slot
    /// (slot s must show a QC within (s+1) x the view timeout) so a
    /// stalled slot leader times the view out even when earlier slots
    /// made progress.
    types::Slot slots = 1;
  };
  struct Callbacks {
    /// Broadcast a ⟨TIMEOUT, view⟩ message (the replica signs and attaches
    /// its high QC).
    std::function<void(types::View)> broadcast_timeout;
    /// The view changed; the replica proposes if it leads `view`.
    std::function<void(types::View, AdvanceReason)> on_enter_view;
    /// Multi-leader only: slot `slot` of `view` has shown no certificate
    /// for half a timeout window since the last slot progress — its
    /// proposal was withheld, lost, or rejected at ingress (a forged
    /// certificate never connects, so the next slot's connect-trigger
    /// never fires). The immediate successor's leader repairs the
    /// pipeline by proposing over the stuck slot. Fires well before the
    /// slot's own timeout so the repair can certify before a TC forms.
    std::function<void(types::View, types::Slot)> on_slot_stuck;
  };

  Pacemaker(sim::Simulator& simulator, Settings settings, Callbacks callbacks)
      : sim_(simulator),
        settings_(settings),
        callbacks_(std::move(callbacks)) {}

  ~Pacemaker() { cancel_timer(); }
  Pacemaker(const Pacemaker&) = delete;
  Pacemaker& operator=(const Pacemaker&) = delete;

  /// Enter the first view and arm the timer.
  void start(types::View initial_view = 1);

  /// Halt all timers (crash simulation / end of run).
  void stop();

  [[nodiscard]] types::View current_view() const { return view_; }

  /// A QC for `qc_view` was observed: advance to qc_view + 1 if that is
  /// ahead. Resets the timeout backoff (progress!).
  void on_qc(types::View qc_view);

  /// Multi-leader only: a QC formed for a NON-final slot of `view` — the
  /// view is progressing but not over. Cancels the timers of slots up to
  /// and including `slot`, resets the backoff, and catches a lagging
  /// replica up into `view` (entering it with kQuorumCert) without
  /// advancing past it. Never called on the single-slot path.
  void on_slot_qc(types::View view, types::Slot slot);

  /// A TC for `tc_view` formed or was received: advance to tc_view + 1.
  void on_tc(types::View tc_view);

  /// f+1 distinct replicas are timing out at `view` >= ours: join them
  /// early (Bracha-style amplification) so slow replicas do not lag one
  /// timeout behind the cluster.
  void join_timeout(types::View view);

  [[nodiscard]] std::uint64_t timeouts_fired() const { return timeouts_fired_; }
  [[nodiscard]] std::uint64_t views_via_qc() const { return views_via_qc_; }
  [[nodiscard]] std::uint64_t views_via_tc() const { return views_via_tc_; }
  /// Per-slot timer expirations (multi-leader mode; 0 on the legacy path).
  [[nodiscard]] std::uint64_t slot_timeouts() const { return slot_timeouts_; }

 private:
  void advance_to(types::View view, AdvanceReason reason);
  void arm_timer();
  void cancel_timer();
  void local_timeout();
  [[nodiscard]] sim::Duration current_timeout() const;

  sim::Simulator& sim_;
  Settings settings_;
  Callbacks callbacks_;
  void arm_stuck_probe();

  types::View view_ = 0;
  sim::EventId timer_ = sim::kInvalidEventId;
  /// One timer per slot in multi-leader mode (slots > 1); timer_ unused.
  std::vector<sim::EventId> slot_timers_;
  /// Multi-leader: the first slot of the current view with no QC yet —
  /// the slot the stuck probe watches.
  types::Slot next_expected_slot_ = 0;
  sim::EventId stuck_timer_ = sim::kInvalidEventId;
  std::uint32_t consecutive_timeouts_ = 0;
  bool running_ = false;
  std::uint64_t timeouts_fired_ = 0;
  std::uint64_t views_via_qc_ = 0;
  std::uint64_t views_via_tc_ = 0;
  std::uint64_t slot_timeouts_ = 0;
};

}  // namespace bamboo::pacemaker
