#include "quorum/cert_verifier.h"

#include <algorithm>

namespace bamboo::quorum {

const char* check_name(CertCheck c) {
  switch (c) {
    case CertCheck::kOk: return "ok";
    case CertCheck::kTooFewSigs: return "too-few-sigs";
    case CertCheck::kSignerOutOfRange: return "signer-out-of-range";
    case CertCheck::kDuplicateSigner: return "duplicate-signer";
    case CertCheck::kBadSignature: return "bad-signature";
    case CertCheck::kMalformed: return "malformed";
  }
  return "?";
}

CertVerifier::CertVerifier(const crypto::KeyStore& keys,
                           std::uint32_t n_replicas)
    : keys_(keys),
      n_(n_replicas),
      quorum_(types::quorum_size(n_replicas)),
      seen_epoch_(n_replicas, 0) {}

CertCheck CertVerifier::check_signers(
    const std::vector<crypto::Signature>& sigs) {
  if (sigs.size() < quorum_) return CertCheck::kTooFewSigs;
  ++epoch_;
  for (const crypto::Signature& sig : sigs) {
    if (sig.signer >= n_) return CertCheck::kSignerOutOfRange;
    if (seen_epoch_[sig.signer] == epoch_) return CertCheck::kDuplicateSigner;
    seen_epoch_[sig.signer] = epoch_;
  }
  return CertCheck::kOk;
}

CertCheck CertVerifier::check_qc(const types::QuorumCert& qc) {
  if (qc.is_genesis()) return CertCheck::kOk;
  if (const CertCheck c = check_signers(qc.sigs); c != CertCheck::kOk)
    return c;
  const crypto::Digest digest = types::vote_digest(qc.view, qc.block_hash);
  for (const crypto::Signature& sig : qc.sigs) {
    if (!keys_.verify(sig, digest)) return CertCheck::kBadSignature;
  }
  return CertCheck::kOk;
}

CertCheck CertVerifier::check_tc(const types::TimeoutCert& tc) {
  if (tc.reported_qc_views.size() != tc.sigs.size())
    return CertCheck::kMalformed;
  if (const CertCheck c = check_signers(tc.sigs); c != CertCheck::kOk)
    return c;
  // AggQC invariant: the attached high_qc must be exactly the freshest QC
  // any aggregated timeout reported (Fast-HotStuff's proof of freshness).
  const types::View max_reported = *std::max_element(
      tc.reported_qc_views.begin(), tc.reported_qc_views.end());
  if (tc.high_qc.view != max_reported) return CertCheck::kMalformed;
  for (std::size_t i = 0; i < tc.sigs.size(); ++i) {
    const crypto::Digest digest =
        types::timeout_digest(tc.view, tc.reported_qc_views[i]);
    if (!keys_.verify(tc.sigs[i], digest)) return CertCheck::kBadSignature;
  }
  return check_qc(tc.high_qc);
}

}  // namespace bamboo::quorum
