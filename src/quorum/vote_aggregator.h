#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "types/certificates.h"
#include "types/messages.h"

namespace bamboo::quorum {

/// The paper's Quorum component: collects votes (voted()) and produces QCs
/// (certified()) once n-f matching votes arrive. Duplicate votes are
/// ignored; equivocating votes (same voter, same view, different blocks)
/// are counted as Byzantine evidence.
class VoteAggregator {
 public:
  explicit VoteAggregator(std::uint32_t num_replicas)
      : quorum_(types::quorum_size(num_replicas)) {}

  /// Add a vote. Returns a freshly formed QC exactly once per (view, block)
  /// when the quorum threshold is crossed.
  std::optional<types::QuorumCert> add(const types::VoteMsg& vote);

  /// True if this (view, voter) pair was already seen for a different block.
  [[nodiscard]] std::uint64_t equivocation_count() const {
    return equivocations_;
  }
  [[nodiscard]] std::uint64_t duplicate_count() const { return duplicates_; }

  /// Drop all state for views strictly below `view` (garbage collection).
  void gc_below(types::View view);

  [[nodiscard]] std::uint32_t quorum() const { return quorum_; }

 private:
  struct Bucket {
    types::Height height = 0;
    std::vector<crypto::Signature> sigs;
    std::unordered_map<types::NodeId, bool> voters;
    bool formed = false;
  };

  std::uint32_t quorum_;
  // view -> block hash -> bucket. std::map gives cheap ordered GC by view.
  std::map<types::View, std::unordered_map<crypto::Digest, Bucket>> buckets_;
  std::map<types::View, std::unordered_map<types::NodeId, crypto::Digest>>
      votes_by_voter_;
  std::uint64_t equivocations_ = 0;
  std::uint64_t duplicates_ = 0;
};

/// Collects ⟨TIMEOUT, view⟩ messages into timeout certificates, tracking the
/// highest QC reported by the timing-out replicas (the view-change
/// justification / Fast-HotStuff AggQC).
class TimeoutAggregator {
 public:
  explicit TimeoutAggregator(std::uint32_t num_replicas)
      : quorum_(types::quorum_size(num_replicas)) {}

  /// Add a timeout message. Returns a TC exactly once per view when the
  /// threshold is crossed.
  std::optional<types::TimeoutCert> add(const types::TimeoutMsg& msg);

  /// Distinct senders seen timing out at `view` (f+1 triggers early join).
  [[nodiscard]] std::size_t count(types::View view) const;

  void gc_below(types::View view);

  [[nodiscard]] std::uint32_t quorum() const { return quorum_; }

 private:
  struct Bucket {
    std::vector<crypto::Signature> sigs;
    std::vector<types::View> reported_qc_views;
    std::unordered_map<types::NodeId, bool> senders;
    types::QuorumCert high_qc;
    bool formed = false;
  };

  std::uint32_t quorum_;
  std::map<types::View, Bucket> buckets_;
};

}  // namespace bamboo::quorum
