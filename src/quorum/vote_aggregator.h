#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "types/certificates.h"
#include "types/messages.h"

namespace bamboo::quorum {

/// The paper's Quorum component: collects votes (voted()) and produces QCs
/// (certified()) once n-f matching votes arrive. Forming certificates are
/// keyed by (view, slot, block) — multi-leader protocols collect one QC
/// per proposal slot concurrently; single-leader traffic only ever uses
/// slot 0, which degenerates to the legacy per-view keying. Duplicate
/// votes are ignored; equivocating votes (same voter, same (view, slot),
/// different blocks) are counted as Byzantine evidence.
class VoteAggregator {
 public:
  explicit VoteAggregator(std::uint32_t num_replicas)
      : quorum_(types::quorum_size(num_replicas)) {}

  /// Add a vote. Returns a freshly formed QC exactly once per
  /// (view, slot, block) when the quorum threshold is crossed.
  std::optional<types::QuorumCert> add(const types::VoteMsg& vote);

  /// Votes by a voter who already voted a different block in the same
  /// (view, slot). Cumulative Byzantine evidence: per-view voter state is
  /// GC'd by gc_below, so the same voter equivocating in two consecutive
  /// views is counted once per view (see test_quorum).
  [[nodiscard]] std::uint64_t equivocation_count() const {
    return equivocations_;
  }
  [[nodiscard]] std::uint64_t duplicate_count() const { return duplicates_; }

  /// Drop all state for views strictly below `view` (garbage collection).
  void gc_below(types::View view);

  [[nodiscard]] std::uint32_t quorum() const { return quorum_; }

 private:
  struct Bucket {
    types::Height height = 0;
    std::vector<crypto::Signature> sigs;
    std::unordered_map<types::NodeId, bool> voters;
    bool formed = false;
  };

  std::uint32_t quorum_;
  // view -> slot -> block hash -> bucket. The outer std::map gives cheap
  // ordered GC by view; the slot map is a std::map too (tiny: at most the
  // election width).
  std::map<types::View,
           std::map<types::Slot, std::unordered_map<crypto::Digest, Bucket>>>
      buckets_;
  std::map<types::View,
           std::map<types::Slot,
                    std::unordered_map<types::NodeId, crypto::Digest>>>
      votes_by_voter_;
  std::uint64_t equivocations_ = 0;
  std::uint64_t duplicates_ = 0;
};

/// Collects ⟨TIMEOUT, view⟩ messages into timeout certificates, tracking the
/// highest QC reported by the timing-out replicas (the view-change
/// justification / Fast-HotStuff AggQC).
class TimeoutAggregator {
 public:
  explicit TimeoutAggregator(std::uint32_t num_replicas)
      : quorum_(types::quorum_size(num_replicas)) {}

  /// Add a timeout message. Returns a TC exactly once per view when the
  /// threshold is crossed.
  std::optional<types::TimeoutCert> add(const types::TimeoutMsg& msg);

  /// Distinct senders seen timing out at `view` (f+1 triggers early join).
  [[nodiscard]] std::size_t count(types::View view) const;

  void gc_below(types::View view);

  [[nodiscard]] std::uint32_t quorum() const { return quorum_; }

 private:
  struct Bucket {
    std::vector<crypto::Signature> sigs;
    std::vector<types::View> reported_qc_views;
    std::unordered_map<types::NodeId, bool> senders;
    types::QuorumCert high_qc;
    bool formed = false;
  };

  std::uint32_t quorum_;
  std::map<types::View, Bucket> buckets_;
};

}  // namespace bamboo::quorum
