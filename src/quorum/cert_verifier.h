#pragma once

#include <cstdint>
#include <vector>

#include "crypto/signer.h"
#include "types/certificates.h"
#include "types/ids.h"

namespace bamboo::quorum {

/// Outcome of one certificate check, most specific failure wins: structural
/// problems are reported before any HMAC is evaluated.
enum class CertCheck {
  kOk,
  kTooFewSigs,       ///< fewer than quorum_size(n) signatures
  kSignerOutOfRange, ///< a signer id >= n_replicas
  kDuplicateSigner,  ///< the same replica counted twice toward the quorum
  kBadSignature,     ///< an HMAC tag does not verify against the digest
  kMalformed,        ///< TC invariants broken (reported views / high_qc)
};

[[nodiscard]] const char* check_name(CertCheck c);

/// Verifies received QuorumCerts / TimeoutCerts against the cluster
/// KeyStore: >= quorum signatures, distinct in-range signers, every HMAC
/// checked against the vote/timeout digest it claims to sign. This is the
/// real-verification half of the certificate pipeline; the *simulated* CPU
/// cost of the same work is charged separately by the Replica cost model
/// (Config::verify_strategy).
///
/// The verifier is stateless apart from a reusable signer-dedup scratch
/// buffer, so one instance per replica is cheap and hot-path allocation-free.
class CertVerifier {
 public:
  CertVerifier(const crypto::KeyStore& keys, std::uint32_t n_replicas);

  /// Genesis QCs (view == kGenesisView) are valid by convention.
  [[nodiscard]] CertCheck check_qc(const types::QuorumCert& qc);

  /// Checks the timeout signatures against their reported high-QC views,
  /// the AggQC invariant high_qc.view == max(reported_qc_views), and the
  /// embedded high_qc itself (as a QC).
  [[nodiscard]] CertCheck check_tc(const types::TimeoutCert& tc);

 private:
  /// Structural half shared by QCs and TCs: quorum size, signer range,
  /// signer distinctness. kOk means "structurally sound", not verified.
  CertCheck check_signers(const std::vector<crypto::Signature>& sigs);

  const crypto::KeyStore& keys_;
  std::uint32_t n_;
  std::uint32_t quorum_;
  // Epoch-tagged scratch marks: seen_epoch_[id] == epoch_ iff `id` already
  // signed the certificate under inspection (no per-call clear/alloc).
  std::vector<std::uint32_t> seen_epoch_;
  std::uint32_t epoch_ = 0;
};

}  // namespace bamboo::quorum
