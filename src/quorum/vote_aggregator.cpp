#include "quorum/vote_aggregator.h"

namespace bamboo::quorum {

std::optional<types::QuorumCert> VoteAggregator::add(
    const types::VoteMsg& vote) {
  const types::NodeId voter = vote.voter();

  auto& by_voter = votes_by_voter_[vote.view][vote.slot];
  const auto [voter_it, first_vote_this_slot] =
      by_voter.emplace(voter, vote.block_hash);
  if (!first_vote_this_slot) {
    if (voter_it->second != vote.block_hash) {
      ++equivocations_;
    } else {
      ++duplicates_;
    }
    return std::nullopt;
  }

  Bucket& bucket = buckets_[vote.view][vote.slot][vote.block_hash];
  // The certificate stops growing once formed (long views would otherwise
  // accumulate signatures unboundedly).
  if (bucket.formed) return std::nullopt;
  if (bucket.sigs.empty()) {
    // Pin the height at bucket creation: a later vote carrying a mismatched
    // height for the same block must not poison the formed QC's height.
    bucket.height = vote.height;
  } else if (vote.height != bucket.height) {
    ++equivocations_;
    return std::nullopt;
  }
  bucket.voters.emplace(voter, true);
  bucket.sigs.push_back(vote.sig);

  if (bucket.sigs.size() >= quorum_) {
    bucket.formed = true;
    types::QuorumCert qc;
    qc.view = vote.view;
    qc.height = bucket.height;
    qc.slot = vote.slot;
    qc.block_hash = vote.block_hash;
    qc.sigs = bucket.sigs;
    return qc;
  }
  return std::nullopt;
}

void VoteAggregator::gc_below(types::View view) {
  buckets_.erase(buckets_.begin(), buckets_.lower_bound(view));
  votes_by_voter_.erase(votes_by_voter_.begin(),
                        votes_by_voter_.lower_bound(view));
}

std::optional<types::TimeoutCert> TimeoutAggregator::add(
    const types::TimeoutMsg& msg) {
  Bucket& bucket = buckets_[msg.view];
  const auto [it, inserted] = bucket.senders.emplace(msg.sender(), true);
  if (!inserted) return std::nullopt;
  // `senders` keeps growing above — count() drives the f+1 early join —
  // but the certificate itself stops accumulating once formed.
  if (bucket.formed) return std::nullopt;

  bucket.sigs.push_back(msg.sig);
  bucket.reported_qc_views.push_back(msg.high_qc.view);
  if (bucket.sigs.size() == 1 || msg.high_qc.view > bucket.high_qc.view) {
    bucket.high_qc = msg.high_qc;
  }

  if (bucket.sigs.size() >= quorum_) {
    bucket.formed = true;
    types::TimeoutCert tc;
    tc.view = msg.view;
    tc.sigs = bucket.sigs;
    tc.reported_qc_views = bucket.reported_qc_views;
    tc.high_qc = bucket.high_qc;
    return tc;
  }
  return std::nullopt;
}

std::size_t TimeoutAggregator::count(types::View view) const {
  const auto it = buckets_.find(view);
  return it == buckets_.end() ? 0 : it->second.senders.size();
}

void TimeoutAggregator::gc_below(types::View view) {
  buckets_.erase(buckets_.begin(), buckets_.lower_bound(view));
}

}  // namespace bamboo::quorum
