#pragma once

// Durable ledger subsystem (ROADMAP item 5): the committed prefix of every
// replica's chain, persisted behind a small BlockStore interface.
//
// Two implementations:
//
//   MemoryBlockStore   the default — an in-process append log. Keeps the
//                      default configuration byte-identical to the pre-
//                      storage engine (no file I/O, no extra simulated
//                      events) while still accounting the bytes a durable
//                      store WOULD have written (write-amplification and
//                      disk-byte columns stay meaningful under "memory").
//
//   FileBlockStore     a real append-only log + in-memory index. Every
//                      committed block is framed as
//
//                        magic u32 | payload_len u32 | fnv1a64 checksum u64
//                        | payload
//
//                      (little-endian throughout; the payload is the full
//                      block encoding of encode_block below, including the
//                      justify QC's signatures — enough to rebuild the
//                      exact BlockPtr, whose constructor re-derives the
//                      hash). On open, the log is scanned record-by-record
//                      and the valid prefix is kept: a torn write (bad
//                      magic, short payload, checksum mismatch, malformed
//                      encoding) truncates recovery at the last good
//                      record instead of poisoning it — the crash-restart
//                      churn scenario rebuilds a replica from this file.
//
// Simulated latency: the store itself performs no simulated waiting. When
// Config::store_append_latency / store_read_latency are nonzero the
// *replica* charges them through its CPU-worker queue (the same machinery
// that models signature verification cost), so storage stalls contend with
// consensus work exactly like every other modeled cost. Real bytes are
// accounted here either way.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/sha256.h"
#include "types/block.h"

namespace bamboo::storage {

/// Byte/operation accounting one store accumulates over its lifetime.
/// bytes_written is physical (record framing included for the file store);
/// logical_bytes is the wire-model size of the appended blocks — their
/// ratio is the write amplification RunResult reports.
struct StoreStats {
  std::uint64_t appends = 0;        ///< blocks appended (after hash dedup)
  std::uint64_t reads = 0;          ///< point lookups + replay blocks served
  std::uint64_t bytes_written = 0;  ///< physical bytes written
  std::uint64_t logical_bytes = 0;  ///< wire-model bytes of appended blocks
  std::uint64_t bytes_read = 0;     ///< physical bytes read back
};

/// Append-only committed-block log. Blocks arrive in commit order
/// (ascending height); append is idempotent on the block hash so a
/// restarted replica re-committing its reloaded prefix does not double
/// the log.
class BlockStore {
 public:
  virtual ~BlockStore() = default;

  virtual void append(const types::BlockPtr& block) = 0;

  /// Point lookup by hash; counts a read. nullptr when absent.
  [[nodiscard]] virtual types::BlockPtr read(const crypto::Digest& hash) = 0;

  [[nodiscard]] virtual bool contains(const crypto::Digest& hash) const = 0;

  /// Visit every stored block in append order (ascending height for a log
  /// written by commits). Restart-from-disk recovery replays this into a
  /// fresh BlockForest.
  virtual void replay(
      const std::function<void(const types::BlockPtr&)>& fn) = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const StoreStats& stats() const { return stats_; }

 protected:
  StoreStats stats_;
};

/// The default in-process store; accounts logical bytes as physical.
class MemoryBlockStore final : public BlockStore {
 public:
  void append(const types::BlockPtr& block) override;
  [[nodiscard]] types::BlockPtr read(const crypto::Digest& hash) override;
  [[nodiscard]] bool contains(const crypto::Digest& hash) const override;
  void replay(
      const std::function<void(const types::BlockPtr&)>& fn) override;
  [[nodiscard]] std::size_t size() const override { return log_.size(); }

 private:
  std::vector<types::BlockPtr> log_;
  std::unordered_map<crypto::Digest, std::size_t> index_;
};

/// File-backed append log + index. Construction opens (or creates) the log
/// at `path` and recovers the valid record prefix; see the header comment
/// for the framing and torn-write policy.
class FileBlockStore final : public BlockStore {
 public:
  explicit FileBlockStore(std::string path);

  void append(const types::BlockPtr& block) override;
  [[nodiscard]] types::BlockPtr read(const crypto::Digest& hash) override;
  [[nodiscard]] bool contains(const crypto::Digest& hash) const override;
  void replay(
      const std::function<void(const types::BlockPtr&)>& fn) override;
  [[nodiscard]] std::size_t size() const override { return log_.size(); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void recover();

  std::string path_;
  std::vector<types::BlockPtr> log_;
  std::unordered_map<crypto::Digest, std::size_t> index_;
};

/// Serialize one block into the record payload encoding (little-endian
/// fields, justify QC signatures and transactions included).
[[nodiscard]] std::vector<std::uint8_t> encode_block(const types::Block& b);

/// Rebuild a block from an encode_block payload. Throws
/// std::invalid_argument on any malformed/truncated input.
[[nodiscard]] types::BlockPtr decode_block(const std::uint8_t* data,
                                           std::size_t len);

/// FNV-1a 64-bit checksum (the record integrity check; no new deps).
[[nodiscard]] std::uint64_t fnv1a64(const std::uint8_t* data,
                                    std::size_t len);

/// Factory for Config::store: "memory" (default) or "file" (at `path`).
/// Throws std::invalid_argument on an unknown kind.
[[nodiscard]] std::unique_ptr<BlockStore> make_store(const std::string& kind,
                                                     const std::string& path);

}  // namespace bamboo::storage
