#include "storage/block_store.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace bamboo::storage {
namespace {

constexpr std::uint32_t kRecordMagic = 0x314b4c42;  // "BLK1"
constexpr std::size_t kRecordHeaderBytes = 4 + 4 + 8;

// --- little-endian primitives ---------------------------------------------

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_digest(std::vector<std::uint8_t>& out, const crypto::Digest& d) {
  out.insert(out.end(), d.begin(), d.end());
}

/// Bounds-checked payload reader; every overrun is an invalid_argument so
/// a truncated record is a refusal, never UB.
struct Reader {
  const std::uint8_t* data;
  std::size_t len;
  std::size_t at = 0;

  void need(std::size_t n) const {
    if (at + n > len)
      throw std::invalid_argument("block record truncated");
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data[at + static_cast<std::size_t>(i)])
           << (8 * i);
    at += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data[at + static_cast<std::size_t>(i)])
           << (8 * i);
    at += 8;
    return v;
  }
  crypto::Digest digest() {
    need(32);
    crypto::Digest d{};
    std::memcpy(d.data(), data + at, 32);
    at += 32;
    return d;
  }
};

void encode_qc(std::vector<std::uint8_t>& out, const types::QuorumCert& qc) {
  put_u64(out, qc.view);
  put_u64(out, qc.height);
  put_u32(out, qc.slot);
  put_digest(out, qc.block_hash);
  put_u32(out, static_cast<std::uint32_t>(qc.sigs.size()));
  for (const crypto::Signature& sig : qc.sigs) {
    put_u32(out, sig.signer);
    put_digest(out, sig.tag);
  }
}

types::QuorumCert decode_qc(Reader& r) {
  types::QuorumCert qc;
  qc.view = r.u64();
  qc.height = r.u64();
  qc.slot = r.u32();
  qc.block_hash = r.digest();
  const std::uint32_t nsigs = r.u32();
  // A signature is 36 payload bytes; reject counts the buffer cannot hold
  // before reserving (a corrupt count must not balloon the allocation).
  if (static_cast<std::size_t>(nsigs) * 36 > r.len - r.at)
    throw std::invalid_argument("block record truncated (qc sigs)");
  qc.sigs.reserve(nsigs);
  for (std::uint32_t i = 0; i < nsigs; ++i) {
    crypto::Signature sig;
    sig.signer = r.u32();
    sig.tag = r.digest();
    qc.sigs.push_back(sig);
  }
  return qc;
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::vector<std::uint8_t> encode_block(const types::Block& b) {
  std::vector<std::uint8_t> out;
  out.reserve(128 + 32 * b.txns().size());
  put_digest(out, b.parent_hash());
  put_u64(out, b.view());
  put_u64(out, b.height());
  put_u32(out, b.slot());
  put_u32(out, b.proposer());
  encode_qc(out, b.justify());
  put_u32(out, static_cast<std::uint32_t>(b.txns().size()));
  for (const types::Transaction& tx : b.txns()) {
    put_u64(out, tx.id);
    put_u32(out, tx.session);
    put_u32(out, tx.serving_replica);
    put_u32(out, tx.client_endpoint);
    put_u64(out, static_cast<std::uint64_t>(tx.submitted_at));
    put_u32(out, tx.payload_size);
  }
  return out;
}

types::BlockPtr decode_block(const std::uint8_t* data, std::size_t len) {
  Reader r{data, len};
  types::Block::Fields f;
  f.parent_hash = r.digest();
  f.view = r.u64();
  f.height = r.u64();
  f.slot = r.u32();
  f.proposer = r.u32();
  f.justify = decode_qc(r);
  const std::uint32_t ntx = r.u32();
  if (static_cast<std::size_t>(ntx) * 32 > r.len - r.at)
    throw std::invalid_argument("block record truncated (txns)");
  f.txns.reserve(ntx);
  for (std::uint32_t i = 0; i < ntx; ++i) {
    types::Transaction tx;
    tx.id = r.u64();
    tx.session = r.u32();
    tx.serving_replica = r.u32();
    tx.client_endpoint = r.u32();
    tx.submitted_at = static_cast<sim::Time>(r.u64());
    tx.payload_size = r.u32();
    f.txns.push_back(tx);
  }
  if (r.at != len)
    throw std::invalid_argument("block record has trailing bytes");
  return std::make_shared<const types::Block>(std::move(f));
}

// --- MemoryBlockStore ------------------------------------------------------

void MemoryBlockStore::append(const types::BlockPtr& block) {
  if (index_.contains(block->hash())) return;
  index_.emplace(block->hash(), log_.size());
  log_.push_back(block);
  ++stats_.appends;
  stats_.bytes_written += block->wire_size();
  stats_.logical_bytes += block->wire_size();
}

types::BlockPtr MemoryBlockStore::read(const crypto::Digest& hash) {
  const auto it = index_.find(hash);
  if (it == index_.end()) return nullptr;
  ++stats_.reads;
  stats_.bytes_read += log_[it->second]->wire_size();
  return log_[it->second];
}

bool MemoryBlockStore::contains(const crypto::Digest& hash) const {
  return index_.contains(hash);
}

void MemoryBlockStore::replay(
    const std::function<void(const types::BlockPtr&)>& fn) {
  for (const types::BlockPtr& block : log_) {
    ++stats_.reads;
    stats_.bytes_read += block->wire_size();
    fn(block);
  }
}

// --- FileBlockStore --------------------------------------------------------

FileBlockStore::FileBlockStore(std::string path) : path_(std::move(path)) {
  recover();
}

void FileBlockStore::recover() {
  std::ifstream in(path_, std::ios::binary);
  if (!in.is_open()) return;  // fresh store
  std::vector<std::uint8_t> file((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  in.close();

  std::size_t at = 0;
  std::size_t good_end = 0;
  while (at + kRecordHeaderBytes <= file.size()) {
    Reader hdr{file.data() + at, kRecordHeaderBytes};
    const std::uint32_t magic = hdr.u32();
    const std::uint32_t plen = hdr.u32();
    const std::uint64_t sum = hdr.u64();
    if (magic != kRecordMagic) break;
    if (at + kRecordHeaderBytes + plen > file.size()) break;  // torn tail
    const std::uint8_t* payload = file.data() + at + kRecordHeaderBytes;
    if (fnv1a64(payload, plen) != sum) break;  // bit rot / torn write
    types::BlockPtr block;
    try {
      block = decode_block(payload, plen);
    } catch (const std::invalid_argument&) {
      break;  // checksum collided with garbage; stop at the last good record
    }
    if (!index_.contains(block->hash())) {
      index_.emplace(block->hash(), log_.size());
      log_.push_back(std::move(block));
    }
    at += kRecordHeaderBytes + plen;
    good_end = at;
  }
  // Drop the corrupt tail on disk too, so future appends extend the valid
  // prefix instead of burying good records behind garbage.
  if (good_end < file.size()) {
    std::error_code ec;
    std::filesystem::resize_file(path_, good_end, ec);
  }
}

void FileBlockStore::append(const types::BlockPtr& block) {
  if (index_.contains(block->hash())) return;
  const std::vector<std::uint8_t> payload = encode_block(*block);
  std::vector<std::uint8_t> record;
  record.reserve(kRecordHeaderBytes + payload.size());
  put_u32(record, kRecordMagic);
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  put_u64(record, fnv1a64(payload.data(), payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());

  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out.is_open())
    throw std::runtime_error("block store: cannot open " + path_);
  out.write(reinterpret_cast<const char*>(record.data()),
            static_cast<std::streamsize>(record.size()));
  out.flush();
  if (!out.good())
    throw std::runtime_error("block store: short write to " + path_);

  index_.emplace(block->hash(), log_.size());
  log_.push_back(block);
  ++stats_.appends;
  stats_.bytes_written += record.size();
  stats_.logical_bytes += block->wire_size();
}

types::BlockPtr FileBlockStore::read(const crypto::Digest& hash) {
  const auto it = index_.find(hash);
  if (it == index_.end()) return nullptr;
  const types::BlockPtr& block = log_[it->second];
  ++stats_.reads;
  stats_.bytes_read += kRecordHeaderBytes + encode_block(*block).size();
  return block;
}

bool FileBlockStore::contains(const crypto::Digest& hash) const {
  return index_.contains(hash);
}

void FileBlockStore::replay(
    const std::function<void(const types::BlockPtr&)>& fn) {
  for (const types::BlockPtr& block : log_) {
    ++stats_.reads;
    stats_.bytes_read += kRecordHeaderBytes + encode_block(*block).size();
    fn(block);
  }
}

std::unique_ptr<BlockStore> make_store(const std::string& kind,
                                       const std::string& path) {
  if (kind.empty() || kind == "memory")
    return std::make_unique<MemoryBlockStore>();
  if (kind == "file") return std::make_unique<FileBlockStore>(path);
  throw std::invalid_argument("unknown block store kind: " + kind);
}

}  // namespace bamboo::storage
