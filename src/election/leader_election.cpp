#include "election/leader_election.h"

#include <stdexcept>

#include "crypto/sha256.h"

namespace bamboo::election {

types::NodeId HashElection::leader(types::View view) const {
  crypto::Sha256 h;
  h.update("bamboo-election");
  h.update_u64(seed_);
  h.update_u64(view);
  const crypto::Digest d = h.finish();
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x = (x << 8) | d[static_cast<std::size_t>(i)];
  return static_cast<types::NodeId>(x % n_);
}

std::unique_ptr<LeaderElection> make_election(const std::string& spec,
                                              std::uint32_t num_replicas,
                                              std::uint64_t seed) {
  if (spec == "roundrobin" || spec.empty()) {
    return std::make_unique<RoundRobinElection>(num_replicas);
  }
  if (spec == "hash") {
    return std::make_unique<HashElection>(seed, num_replicas);
  }
  if (spec.rfind("multi:", 0) == 0) {
    const std::string body = spec.substr(6);
    const std::size_t colon = body.find(':');
    types::Slot width = 0;
    types::View epoch_len = 16;
    try {
      width = static_cast<types::Slot>(
          std::stoul(body.substr(0, colon)));
      if (colon != std::string::npos) {
        epoch_len = std::stoull(body.substr(colon + 1));
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("bad multi-leader election spec: " + spec);
    }
    if (width == 0 || width > num_replicas) {
      throw std::invalid_argument(
          "multi-leader width must be in [1, n_replicas]: " + spec);
    }
    if (epoch_len == 0) {
      throw std::invalid_argument(
          "multi-leader epoch length must be >= 1: " + spec);
    }
    return std::make_unique<MultiLeaderElection>(num_replicas, width,
                                                 epoch_len);
  }
  if (spec.rfind("static:", 0) == 0) {
    const auto id = static_cast<types::NodeId>(std::stoul(spec.substr(7)));
    if (id >= num_replicas) {
      throw std::invalid_argument("static leader id out of range: " + spec);
    }
    return std::make_unique<StaticElection>(id);
  }
  throw std::invalid_argument("unknown election spec: " + spec);
}

}  // namespace bamboo::election
